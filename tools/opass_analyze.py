#!/usr/bin/env python3
"""opass_analyze — concurrency-readiness static analysis over src/.

The parallelization roadmap item (worker-pool re-leveling, sharded executor
replay, parallel Dinic) runs under a strict determinism contract: parallel
execution must produce byte-identical output. This analyzer lays the static
floor for that work with three passes that a compiler cannot (or will not)
run for us:

  Pass 1 — include-graph layering
      Every `#include "..."` edge under src/ is checked against the declared
      layer DAG (see LAYERS below and DESIGN.md "Static analysis &
      layering"). Rules:
        include-unresolved  quoted include does not exist under src/
                            (projects includes are src-relative full paths)
        layer-undeclared    a src/ directory missing from the layer table —
                            new modules must declare their layer
        layer-upward        an include that points at a *higher* layer, or
                            sideways at a different directory of the same
                            rank: hidden coupling that turns into lock-order
                            and initialization-order hazards once threads
                            arrive
        include-cycle       a strongly-connected component in the file-level
                            include graph
      The pass also emits the dependency report (deterministic DOT + JSON)
      that CI archives on every run.

  Pass 2 — shared-mutable-state audit
      Thread-hostile state that a worker pool would race on:
        mutable-static-local   function-local `static` non-const variable
        mutable-global         namespace-scope mutable variable definition
        mutable-static-member  class-level `static` non-const data member
      Findings are suppressed either inline (`// opass-lint: allow(rule)`)
      or via the checked-in allowlist file tools/analyze_allow.txt
      (format: `<rule> <path>[:<line>]`, `#` comments). The allowlist is
      expected to stay empty — it exists so a future, justified exception is
      an explicit reviewed diff, not a silent drift.

  Pass 3 — unordered-iteration determinism
      unordered-emit: a range-for over a `std::unordered_map/set` whose body
      writes to an output channel (stream insertion, printf, exporter calls
      such as counter_add/gauge_set/observe, or push_back/emplace_back into
      a container that is never sorted afterwards). Hash iteration order is
      implementation-defined, so such a loop silently breaks bit-replayable
      experiments. Sort the keys first, collect-then-sort, or iterate an
      ordered mirror.

Usage:
  opass_analyze.py <repo-root> [--dot FILE] [--json FILE] [--allowlist FILE]
  opass_analyze.py --self-test

Exit status: 0 clean, 1 findings, 2 usage error. All three passes are
heuristic text analyses over scrubbed source (comments/strings blanked, see
tools/opass_cpp.py); they are tuned to zero false positives on this tree and
every rule has a positive and a near-miss negative case in --self-test.
"""

from __future__ import annotations

import json
import pathlib
import re
import sys
import tempfile

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
from opass_cpp import (  # noqa: E402
    Finding, apply_suppressions, line_of, scrub, source_files)

# --- the declared layer DAG -------------------------------------------------

# Directory -> rank. An include from directory A into directory B is legal
# iff A == B or rank[B] < rank[A]; equal-rank directories are independent
# peers and must not include each other. The bands, bottom to top:
#
#   0  common                          units, RNG, stats, error macros
#   1  graph, analysis                 pure algorithms & closed-form models
#   2  dfs                             HDFS metadata model + API shim
#   3  sim                             flow-level cluster simulator
#   4  runtime                         process/executor model over sim
#   5  workload, opass                 task generators; the planner
#   6  obs, mpi                        observability; MPI-style messaging
#   7  exp                             experiment harness (top of the world)
#
# This is the enforced truth of the codebase; DESIGN.md documents the same
# table and the reasoning (e.g. workload sits *above* runtime because its
# generators materialize Task vectors on a NameNode).
LAYERS = {
    "common": 0,
    "graph": 1,
    "analysis": 1,
    "dfs": 2,
    "sim": 3,
    "runtime": 4,
    "workload": 5,
    "opass": 5,
    "obs": 6,
    "mpi": 6,
    "exp": 7,
}

INCLUDE_Q = re.compile(r'^\s*#\s*include\s+"([^"]+)"', re.MULTILINE)


# --- pass 1: include-graph layering ----------------------------------------

def collect_includes(src_root: pathlib.Path, texts: dict) -> dict:
    """Map src-relative file path -> list of (src-relative include, line)."""
    edges: dict = {}
    for path, text in texts.items():
        rel = path.relative_to(src_root).as_posix()
        out = []
        for m in INCLUDE_Q.finditer(scrub(text, keep_strings=True)):
            out.append((m.group(1), line_of(text, m.start())))
        edges[rel] = out
    return edges


def check_layering(src_root: pathlib.Path, includes: dict, findings: list):
    for rel in sorted(includes):
        src_dir = rel.split("/", 1)[0] if "/" in rel else ""
        for target, line in includes[rel]:
            path = src_root / rel
            if not (src_root / target).exists():
                findings.append(Finding(
                    path, line, "include-unresolved",
                    f'"{target}" does not exist under src/ — project '
                    "includes are src-relative full paths"))
                continue
            tgt_dir = target.split("/", 1)[0] if "/" in target else ""
            for d in (src_dir, tgt_dir):
                if d not in LAYERS:
                    findings.append(Finding(
                        path, line, "layer-undeclared",
                        f"directory src/{d}/ is not in the layer table — "
                        "declare its rank in tools/opass_analyze.py LAYERS "
                        "and DESIGN.md"))
                    break
            else:
                if src_dir != tgt_dir and LAYERS[tgt_dir] >= LAYERS[src_dir]:
                    kind = ("sideways (same rank)"
                            if LAYERS[tgt_dir] == LAYERS[src_dir] else "upward")
                    findings.append(Finding(
                        path, line, "layer-upward",
                        f'src/{src_dir}/ (rank {LAYERS[src_dir]}) must not '
                        f'include "{target}" — src/{tgt_dir}/ is rank '
                        f"{LAYERS[tgt_dir]}, an {kind} edge in the layer DAG"))


def check_cycles(src_root: pathlib.Path, includes: dict, findings: list):
    """Tarjan SCC over the file-level include graph; any SCC with more than
    one member (or a self-include) is a cycle."""
    graph = {rel: sorted({t for t, _ in incs if (src_root / t).exists()})
             for rel, incs in includes.items()}
    for rel in list(graph):
        for t in graph[rel]:
            graph.setdefault(t, [])

    index: dict = {}
    low: dict = {}
    on_stack: set = set()
    stack: list = []
    sccs: list = []
    counter = [0]

    def strongconnect(v: str):
        # Iterative Tarjan — the include graph is shallow but recursion
        # limits are not a correctness tool.
        work = [(v, iter(graph[v]))]
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        while work:
            node, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(graph[w])))
                    advanced = True
                    break
                if w in on_stack:
                    low[node] = min(low[node], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                comp = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == node:
                        break
                sccs.append(sorted(comp))

    for v in sorted(graph):
        if v not in index:
            strongconnect(v)

    for comp in sorted(sccs):
        is_cycle = len(comp) > 1 or comp[0] in graph.get(comp[0], [])
        if is_cycle:
            findings.append(Finding(
                src_root / comp[0], 1, "include-cycle",
                "include cycle: " + " -> ".join(comp + [comp[0]])))


def dependency_report(includes: dict) -> dict:
    """Directory-condensed dependency report, deterministic ordering."""
    dir_edges: dict = {}
    file_edges = 0
    for rel in sorted(includes):
        src_dir = rel.split("/", 1)[0]
        for target, _ in includes[rel]:
            file_edges += 1
            tgt_dir = target.split("/", 1)[0]
            if src_dir != tgt_dir:
                key = (src_dir, tgt_dir)
                dir_edges[key] = dir_edges.get(key, 0) + 1
    return {
        "schema": 1,
        "layers": {d: LAYERS[d] for d in sorted(LAYERS)},
        "files": len(includes),
        "include_edges": file_edges,
        "directory_edges": [
            {"from": a, "to": b, "includes": n}
            for (a, b), n in sorted(dir_edges.items())
        ],
    }


def to_dot(report: dict) -> str:
    """GraphViz rendering of the directory graph, one rank row per layer."""
    lines = ["digraph opass_layers {", "  rankdir=BT;",
             '  node [shape=box, fontname="monospace"];']
    by_rank: dict = {}
    for d, r in sorted(report["layers"].items()):
        by_rank.setdefault(r, []).append(d)
    for r in sorted(by_rank):
        row = " ".join(f'"{d}";' for d in by_rank[r])
        lines.append(f"  {{ rank=same; {row} }}  // layer {r}")
    for e in report["directory_edges"]:
        lines.append(
            f'  "{e["from"]}" -> "{e["to"]}" [label="{e["includes"]}"];')
    lines.append("}")
    return "\n".join(lines) + "\n"


# --- scope tracking (shared by pass 2) --------------------------------------

_SCOPE_HEADER_CLASS = re.compile(r"\b(struct|class|union)\b(?![^{]*[()])")
_SCOPE_HEADER_ENUM = re.compile(r"\benum\b")
_SCOPE_HEADER_NAMESPACE = re.compile(r"\bnamespace\b")


def scope_map(scrubbed: str) -> list:
    """For each `{`...`}` region, classify what kind of scope it opens.

    Returns a list of (offset, kind) events where kind is one of
    'namespace', 'class', 'enum', 'other' for an opening brace and None for
    a closing brace. 'other' covers function bodies, control blocks,
    lambdas and initializers — everything that is *inside a function* for
    the purposes of the mutable-state audit. Preprocessor lines are blanked
    before scanning so `#include <map>` braces in macros cannot confuse the
    stack.
    """
    text = re.sub(r"^[ \t]*#[^\n]*", lambda m: " " * len(m.group(0)),
                  scrubbed, flags=re.MULTILINE)
    events = []
    last_break = 0  # offset just after the previous '{', '}' or ';'
    for m in re.finditer(r"[{};]", text):
        ch = m.group(0)
        if ch == ";":
            last_break = m.end()
            continue
        if ch == "}":
            events.append((m.start(), None))
            last_break = m.end()
            continue
        header = text[last_break:m.start()]
        # Strip a trailing initializer `=` so `int a[] = {` reads as 'other'.
        if _SCOPE_HEADER_NAMESPACE.search(header):
            kind = "namespace"
        elif _SCOPE_HEADER_ENUM.search(header):
            kind = "enum"
        elif _SCOPE_HEADER_CLASS.search(header):
            kind = "class"
        else:
            kind = "other"
        events.append((m.start(), kind))
        last_break = m.end()
    return events


def scope_at(events: list, offset: int) -> str:
    """Innermost scope kind at a byte offset: 'file' when outside every
    brace (namespace scope for the audit's purposes)."""
    stack = []
    for pos, kind in events:
        if pos >= offset:
            break
        if kind is None:
            if stack:
                stack.pop()
        else:
            stack.append(kind)
    return stack[-1] if stack else "file"


# --- pass 2: shared-mutable-state audit -------------------------------------

_STATIC_TOKEN = re.compile(r"(?<![\w_])static\s")
_CONST_MARK = re.compile(r"\b(?:const|constexpr|consteval|constinit)\b")

# A namespace-scope statement that can only be a declaration introducer we
# never flag: types, templates, aliases, linkage, asserts, access into
# another scope.
_NS_SKIP = re.compile(
    r"^\s*(?:using|typedef|template|struct|class|union|enum|namespace|"
    r"friend|extern|static_assert|public|private|protected|case|default|"
    r"return|goto|if|else|for|while|do|switch|break|continue|throw|try|"
    r"catch|\[\[)")

_IDENT = re.compile(r"[A-Za-z_]\w*")

# A declaration carrying an OPASS_GUARDED_BY / OPASS_PT_GUARDED_BY attribute
# has declared its lock discipline: clang's -Wthread-safety now enforces every
# access, which is a *stronger* guarantee than this textual audit can give —
# flagging it anyway would push people toward blanket suppressions.
_GUARDED = re.compile(r"\bOPASS(?:_PT)?_GUARDED_BY\s*\(")


def _decl_slice(text: str, start: int) -> tuple:
    """The declaration text from `start` to the first `;` or `{` at paren
    depth 0 (exclusive). Returns (decl, terminator)."""
    depth = 0
    i = start
    while i < len(text):
        c = text[i]
        if c in "([":
            depth += 1
        elif c in ")]":
            depth -= 1
        elif depth == 0 and c in ";{":
            return text[start:i], c
        elif c == "}":
            return text[start:i], "}"
        i += 1
    return text[start:], ""


def _is_function_decl(decl: str) -> bool:
    """A declarator with a top-level `(` before any `=` is a function."""
    head = decl.split("=", 1)[0]
    return "(" in head


def check_mutable_statics(path: pathlib.Path, text: str, findings: list):
    scrubbed = scrub(text)
    events = scope_map(scrubbed)
    for m in _STATIC_TOKEN.finditer(scrubbed):
        scope = scope_at(events, m.start())
        decl, _term = _decl_slice(scrubbed, m.start())
        if _CONST_MARK.search(decl):
            continue  # static const / constexpr: immutable, thread-safe
        if _is_function_decl(decl):
            continue  # static member function / static free function
        if "thread_local" in decl:
            continue  # per-thread by construction, not shared
        if _GUARDED.search(decl):
            continue  # lock discipline declared; -Wthread-safety enforces it
        line = line_of(scrubbed, m.start())
        if scope == "other":
            findings.append(Finding(
                path, line, "mutable-static-local",
                "function-local mutable `static` — one shared instance "
                "across all future worker threads; localize it, pass it in, "
                "or make it const"))
        elif scope == "class":
            findings.append(Finding(
                path, line, "mutable-static-member",
                "mutable `static` data member — process-wide shared state; "
                "make it per-instance, const, or justify it in "
                "tools/analyze_allow.txt"))
        elif scope in ("file", "namespace"):
            findings.append(Finding(
                path, line, "mutable-global",
                "namespace-scope mutable `static` variable — hidden global "
                "the worker pool would race on"))


def check_namespace_globals(path: pathlib.Path, text: str, findings: list):
    """Non-static namespace-scope variable definitions (`int g_count = 0;`
    at file or namespace scope). Statements are segmented on `;`/`{`/`}` at
    paren depth 0; anything with a top-level `(` before `=` is a function
    declaration and skipped."""
    scrubbed = scrub(text)
    no_pp = re.sub(r"^[ \t]*#[^\n]*", lambda m: " " * len(m.group(0)),
                   scrubbed, flags=re.MULTILINE)
    events = scope_map(scrubbed)
    # Statement start offsets: position after every top-level break char.
    for m in re.finditer(r"[^;{}]+", no_pp):
        start = m.start() + len(m.group(0)) - len(m.group(0).lstrip())
        stmt = m.group(0).strip()
        if not stmt:
            continue
        if scope_at(events, start) not in ("file", "namespace"):
            continue
        if _NS_SKIP.match(stmt) or _STATIC_TOKEN.match(stmt + " "):
            continue
        if stmt.startswith("static"):
            continue  # handled (with better wording) by check_mutable_statics
        if _CONST_MARK.search(stmt.split("=", 1)[0]):
            continue
        if _is_function_decl(stmt):
            continue
        if _GUARDED.search(stmt):
            continue  # lock discipline declared; -Wthread-safety enforces it
        # Require a plausible `type name` declarator: at least two identifier
        # tokens, the last one a variable name, and an initializer or plain
        # `;` termination (the regex segmentation guarantees the terminator).
        head = stmt.split("=", 1)[0].strip()
        idents = _IDENT.findall(head)
        if len(idents) < 2:
            continue
        if "operator" in idents:
            continue
        findings.append(Finding(
            path, line_of(no_pp, start), "mutable-global",
            f"namespace-scope mutable variable `{idents[-1]}` — global "
            "state the worker pool would race on; scope it into the owning "
            "object or make it constexpr"))


# --- pass 3: unordered-iteration determinism --------------------------------

_UNORDERED_DECL = re.compile(
    r"std\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<")
_RANGE_FOR = re.compile(r"(?<![\w_])for\s*\(")
_EMIT = re.compile(
    r"<<|\bf?printf\s*\(|\.write\s*\(|\.append\s*\(|"
    r"\bcounter_add\s*\(|\bgauge_set\s*\(|\bobserve\s*\(|\bgauge_add\s*\(")
_COLLECT = re.compile(r"(\w+)\s*\.\s*(?:push_back|emplace_back)\s*\(")
_SORT = re.compile(r"\bsort\s*\(")


def _unordered_names(scrubbed: str) -> set:
    """Identifiers declared anywhere in the file with an unordered container
    type (locals, members, params). Template arguments may nest, so the
    name is the first identifier after the matching `>`."""
    names = set()
    for m in _UNORDERED_DECL.finditer(scrubbed):
        i = m.end()
        depth = 1
        while i < len(scrubbed) and depth:
            if scrubbed[i] == "<":
                depth += 1
            elif scrubbed[i] == ">":
                depth -= 1
            i += 1
        tail = scrubbed[i:i + 120]
        nm = re.match(r"\s*&?\s*([A-Za-z_]\w*)", tail)
        if nm:
            names.add(nm.group(1))
    return names


def _balanced(text: str, open_idx: int, open_ch: str, close_ch: str) -> int:
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i
    return len(text) - 1


def check_unordered_emit(path: pathlib.Path, text: str, findings: list):
    scrubbed = scrub(text)
    names = _unordered_names(scrubbed)
    if not names:
        return
    for m in _RANGE_FOR.finditer(scrubbed):
        close = _balanced(scrubbed, m.end() - 1, "(", ")")
        header = scrubbed[m.end():close]
        if ";" in header or ":" not in header:
            continue  # classic for, or not a range-for
        range_expr = header.rsplit(":", 1)[1].strip()
        last_ident = _IDENT.findall(range_expr)
        if not last_ident or last_ident[-1] not in names:
            continue
        # Loop body: brace block or single statement.
        after = close + 1
        while after < len(scrubbed) and scrubbed[after] in " \t\n":
            after += 1
        if after < len(scrubbed) and scrubbed[after] == "{":
            body_end = _balanced(scrubbed, after, "{", "}")
        else:
            body_end = scrubbed.find(";", after)
            body_end = len(scrubbed) if body_end < 0 else body_end
        body = scrubbed[after:body_end + 1]
        if _SORT.search(body):
            continue  # sorted inside the loop — ordered emission
        line = line_of(scrubbed, m.start())
        if _EMIT.search(body):
            findings.append(Finding(
                path, line, "unordered-emit",
                f"range-for over unordered container `{last_ident[-1]}` "
                "writes to an output channel — hash order is "
                "implementation-defined and breaks bit-replayable output; "
                "sort keys first or collect-then-sort"))
            continue
        # push_back/emplace_back into a container never sorted afterwards
        # (searched to the end of the file — an over-approximation that
        # only ever errs toward silence within one TU).
        rest = scrubbed[body_end:]
        for c in _COLLECT.finditer(body):
            target = c.group(1)
            if not re.search(r"\bsort\s*\([^;]*\b" + re.escape(target) + r"\b",
                             rest):
                findings.append(Finding(
                    path, line, "unordered-emit",
                    f"range-for over unordered container `{last_ident[-1]}` "
                    f"appends to `{target}` which is never sorted — hash "
                    "order leaks into the output; sort the collected "
                    "entries before use"))
                break


# --- allowlist --------------------------------------------------------------

def load_allowlist(path: pathlib.Path) -> list:
    """Parse `<rule> <path>[:<line>]` entries; `#` starts a comment."""
    entries = []
    if not path.is_file():
        return entries
    for ln, raw in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 2:
            raise SystemExit(
                f"{path}:{ln}: malformed allowlist entry {raw!r} "
                "(expected '<rule> <path>[:<line>]')")
        rule, loc = parts
        if ":" in loc:
            file_part, line_part = loc.rsplit(":", 1)
            entries.append((rule, file_part, int(line_part)))
        else:
            entries.append((rule, loc, None))
    return entries


def apply_allowlist(findings: list, entries: list, root: pathlib.Path) -> list:
    kept = []
    for f in findings:
        rel = f.path.resolve().as_posix()
        try:
            rel = f.path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
        suppressed = any(
            rule == f.rule and rel == file_part
            and (line_part is None or line_part == f.line)
            for rule, file_part, line_part in entries)
        if not suppressed:
            kept.append(f)
    return kept


# --- driver -----------------------------------------------------------------

def analyze_tree(root: pathlib.Path, allowlist: pathlib.Path = None):
    """Run all passes; returns (findings, dependency_report)."""
    src_root = root / "src"
    findings: list = []
    if not src_root.is_dir():
        findings.append(Finding(root, 1, "layout",
                                f"no src/ directory under {root}"))
        return findings, {"schema": 1, "layers": {}, "files": 0,
                          "include_edges": 0, "directory_edges": []}
    texts = {p: p.read_text(encoding="utf-8") for p in source_files(src_root)}
    includes = collect_includes(src_root, texts)

    check_layering(src_root, includes, findings)
    check_cycles(src_root, includes, findings)
    for path in sorted(texts):
        check_mutable_statics(path, texts[path], findings)
        check_namespace_globals(path, texts[path], findings)
        check_unordered_emit(path, texts[path], findings)

    findings = apply_suppressions(findings, texts)
    allow_path = allowlist if allowlist else root / "tools" / "analyze_allow.txt"
    findings = apply_allowlist(findings, load_allowlist(allow_path), root)
    findings.sort(key=lambda f: (str(f.path), f.line, f.rule))
    return findings, dependency_report(includes)


# --- self test --------------------------------------------------------------

# One seeded violation and one near-miss negative per pass. File names carry
# the expectation: bad_* must fire exactly the named rule, ok_* must stay
# silent.
_CASES = {
    # Pass 1: layering ------------------------------------------------------
    "include-cycle": (
        # a.hpp <-> b.hpp in the same directory: legal by layer rank, still
        # a cycle the SCC pass must catch.
        ("common/bad_cycle_a.hpp",
         '#pragma once\n#include "common/bad_cycle_b.hpp"\n'),
        ("common/bad_cycle_b.hpp",
         '#pragma once\n#include "common/bad_cycle_a.hpp"\n'),
    ),
    "layer-upward": (
        # sim (rank 3) reaching up into obs (rank 6).
        ("sim/bad_upward.hpp",
         '#pragma once\n#include "obs/ok_shared.hpp"\n'),
    ),
    # Pass 2: shared mutable state ------------------------------------------
    "mutable-static-local": (
        ("runtime/bad_static_local.cpp",
         "void count_calls() {\n  static int calls = 0;\n  ++calls;\n}\n"),
    ),
    "mutable-global": (
        ("runtime/bad_global.cpp",
         "namespace opass {\nint g_active_jobs = 0;\n}\n"),
    ),
    "mutable-static-member": (
        ("runtime/bad_static_member.hpp",
         "#pragma once\nstruct Pool {\n  static int live_count_;\n};\n"),
    ),
    # Pass 3: unordered-iteration determinism -------------------------------
    "unordered-emit": (
        ("obs/bad_unordered_emit.cpp",
         "#include <ostream>\n#include <string>\n#include <unordered_map>\n"
         "void dump(std::ostream& out,\n"
         "          const std::unordered_map<std::string, int>& counts) {\n"
         "  for (const auto& kv : counts) {\n"
         "    out << kv.first << ' ' << kv.second << '\\n';\n"
         "  }\n"
         "}\n"),
    ),
}

# Near-miss negatives: structurally one step away from the violation and
# must NOT fire anything.
_NEGATIVES = (
    # Diamond, not a cycle: a -> c, b -> c.
    ("common/ok_diamond_a.hpp",
     '#pragma once\n#include "common/ok_diamond_c.hpp"\n'),
    ("common/ok_diamond_b.hpp",
     '#pragma once\n#include "common/ok_diamond_c.hpp"\n'),
    ("common/ok_diamond_c.hpp", "#pragma once\n"),
    # Downward include: obs (rank 6) may see sim (rank 3).
    ("obs/ok_shared.hpp", '#pragma once\n#include "sim/ok_downward.hpp"\n'),
    ("sim/ok_downward.hpp", "#pragma once\n"),
    # const static local: immutable after its (magic-static) init.
    ("runtime/ok_const_static.cpp",
     "int bounds() {\n  static const int k = 8;\n  return k;\n}\n"),
    # constexpr global + a function declaration: neither is mutable state.
    ("runtime/ok_constexpr_global.cpp",
     "namespace opass {\nconstexpr int kMaxJobs = 64;\n"
     "int helper(int x);\n}\n"),
    # static constexpr member and a static member *function*.
    ("runtime/ok_static_member.hpp",
     "#pragma once\nstruct Ok {\n  static constexpr int kN = 2;\n"
     "  static int make();\n};\n"),
    # OPASS_GUARDED_BY-annotated state: the lock discipline is declared and
    # clang's -Wthread-safety enforces it — the audit must not flag it.
    ("runtime/ok_guarded_member.hpp",
     "#pragma once\nstruct Guarded {\n"
     "  static int live_count_ OPASS_GUARDED_BY(mu_);\n"
     "  int* slots_ OPASS_PT_GUARDED_BY(mu_) = nullptr;\n"
     "};\n"),
    ("runtime/ok_guarded_global.cpp",
     "namespace opass {\nint g_pool_users OPASS_GUARDED_BY(g_pool_mu) = 0;\n}\n"),
    # Unordered loop that only *collects*, then sorts before emission.
    ("obs/ok_collect_then_sort.cpp",
     "#include <algorithm>\n#include <string>\n#include <unordered_map>\n"
     "#include <vector>\n"
     "std::vector<std::string> keys(\n"
     "    const std::unordered_map<std::string, int>& m) {\n"
     "  std::vector<std::string> out;\n"
     "  for (const auto& kv : m) {\n"
     "    out.push_back(kv.first);\n"
     "  }\n"
     "  std::sort(out.begin(), out.end());\n"
     "  return out;\n"
     "}\n"),
    # Range-for over an *ordered* map straight into a stream: fine.
    ("obs/ok_ordered_emit.cpp",
     "#include <map>\n#include <ostream>\n#include <string>\n"
     "void dump(std::ostream& out, const std::map<std::string, int>& m) {\n"
     "  for (const auto& kv : m) {\n"
     "    out << kv.first << ' ' << kv.second << '\\n';\n"
     "  }\n"
     "}\n"),
)

# Suppression fixtures: same violation three times — inline-suppressed,
# allowlisted, and bare (must still fire).
_SUPPRESSION_FILE = (
    "runtime/suppression_probe.cpp",
    "namespace opass {\n"
    "int g_inline_allowed = 0;  // opass-lint: allow(mutable-global)\n"
    "int g_allowlisted = 0;\n"
    "int g_unsuppressed = 0;\n"
    "}\n",
)
_SUPPRESSION_ALLOWLIST = (
    "# self-test allowlist\n"
    "mutable-global src/runtime/suppression_probe.cpp:3\n"
)
_SUPPRESSION_CAUGHT_LINE = 4


def self_test() -> int:
    failures = 0
    with tempfile.TemporaryDirectory(prefix="opass_analyze_selftest.") as tmp:
        root = pathlib.Path(tmp)
        src = root / "src"
        src.mkdir()
        expected: dict = {}
        for rule, files in _CASES.items():
            for name, content in files:
                (src / name).parent.mkdir(parents=True, exist_ok=True)
                (src / name).write_text(content, encoding="utf-8")
                expected.setdefault(rule, set()).add(pathlib.Path(name).name)
        for name, content in _NEGATIVES:
            (src / name).parent.mkdir(parents=True, exist_ok=True)
            (src / name).write_text(content, encoding="utf-8")
        sup_path = src / _SUPPRESSION_FILE[0]
        sup_path.parent.mkdir(parents=True, exist_ok=True)
        sup_path.write_text(_SUPPRESSION_FILE[1], encoding="utf-8")
        allow = root / "allow.txt"
        allow.write_text(_SUPPRESSION_ALLOWLIST, encoding="utf-8")

        findings, report = analyze_tree(root, allowlist=allow)

        for rule, names in sorted(expected.items()):
            hits = {f.path.name for f in findings if f.rule == rule}
            if hits & names:
                print(f"self-test: rule '{rule}' caught its seeded violation")
            else:
                print(f"self-test: FAIL — rule '{rule}' missed its seeded "
                      f"violation (findings: {[str(f) for f in findings]})")
                failures += 1
        neg_names = {pathlib.Path(n).name for n, _ in _NEGATIVES}
        false_pos = [f for f in findings if f.path.name in neg_names]
        if false_pos:
            print("self-test: FAIL — false positives on near-miss negatives: "
                  + "; ".join(map(str, false_pos)))
            failures += 1
        else:
            print(f"self-test: all {len(neg_names)} near-miss negatives "
                  "stayed clean")

        sup_hits = sorted(f.line for f in findings
                          if f.path.name == sup_path.name)
        if sup_hits == [_SUPPRESSION_CAUGHT_LINE]:
            print("self-test: inline + allowlist suppressions honored, bare "
                  "sibling still caught")
        else:
            print(f"self-test: FAIL — suppression probe expected only line "
                  f"{_SUPPRESSION_CAUGHT_LINE}, got {sup_hits}")
            failures += 1

        dot = to_dot(report)
        if report["directory_edges"] and dot.count("->") == len(
                report["directory_edges"]):
            print("self-test: dependency report emits one DOT edge per "
                  "directory edge")
        else:
            print("self-test: FAIL — DOT/JSON dependency report mismatch")
            failures += 1

    print("self-test:", "ok" if failures == 0 else f"{failures} failure(s)")
    return 1 if failures else 0


def main(argv: list) -> int:
    if len(argv) == 2 and argv[1] == "--self-test":
        return self_test()
    args = argv[1:]
    dot_path = json_path = allow_path = None
    positional = []
    i = 0
    while i < len(args):
        a = args[i]
        if a in ("--dot", "--json", "--allowlist"):
            if i + 1 >= len(args):
                print(f"missing value for {a}", file=sys.stderr)
                return 2
            val = args[i + 1]
            if a == "--dot":
                dot_path = val
            elif a == "--json":
                json_path = val
            else:
                allow_path = pathlib.Path(val)
            i += 2
        elif a.startswith("--"):
            print(__doc__, file=sys.stderr)
            return 2
        else:
            positional.append(a)
            i += 1
    if len(positional) != 1:
        print(__doc__, file=sys.stderr)
        return 2

    root = pathlib.Path(positional[0]).resolve()
    findings, report = analyze_tree(root, allowlist=allow_path)
    if json_path:
        pathlib.Path(json_path).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
    if dot_path:
        pathlib.Path(dot_path).write_text(to_dot(report), encoding="utf-8")
    for f in findings:
        print(f)
    if findings:
        print(f"opass_analyze: {len(findings)} finding(s)")
        return 1
    print(f"opass_analyze: clean ({report['files']} files, "
          f"{report['include_edges']} include edges, "
          f"{len(report['directory_edges'])} directory edges)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
