#!/usr/bin/env python3
"""Validate a run report pair (HTML + timeline JSON) written by opass_cli.

Usage:
    tools/check_report.py REPORT.html TIMELINE.json

Checks, in order:
  1. the timeline JSON parses, has schema 1, and carries both methods
     ("baseline" and "opass") with non-empty sampled series;
  2. every method exposes the cluster serve-rate and executor queue-depth
     series plus serve-bytes imbalance analytics;
  3. the Opass method's serve-bytes degree of imbalance is strictly lower
     than the baseline's (the paper's core claim, Figs. 2-3);
  4. the HTML embeds a serve-bytes and a queue-depth chart for each method
     and references no external resources (self-contained artifact).

Exit code 0 when the report is valid, 1 otherwise. Used by the
`cli_report_valid` ctest entry and the CI bench-smoke job.
"""

from __future__ import annotations

import json
import sys

REQUIRED_SERIES = (
    "timeline.cluster.serve_bytes_per_s",
    "timeline.executor.queue_depth",
)
REQUIRED_CHARTS = ("serve-bytes", "queue-depth")


def validate(html_path: str, json_path: str) -> list[str]:
    errors: list[str] = []
    try:
        with open(json_path, encoding="utf-8") as fh:
            timeline = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"cannot parse {json_path}: {exc}"]

    if not isinstance(timeline, dict) or timeline.get("schema") != 1:
        return [f"{json_path}: expected a schema-1 timeline object"]

    methods = {m.get("name"): m for m in timeline.get("methods", [])}
    for name in ("baseline", "opass"):
        method = methods.get(name)
        if method is None:
            errors.append(f"{json_path}: method '{name}' missing")
            continue
        series = {s.get("name"): s for s in method.get("series", [])}
        for required in REQUIRED_SERIES:
            values = series.get(required, {}).get("values")
            if not values:
                errors.append(f"{json_path}: {name} lacks samples for {required}")
        analytics = method.get("analytics", {})
        if "degree_of_imbalance" not in analytics.get("serve_bytes", {}):
            errors.append(f"{json_path}: {name} lacks serve-bytes imbalance analytics")

    if not errors:
        base_doi = methods["baseline"]["analytics"]["serve_bytes"]["degree_of_imbalance"]
        opass_doi = methods["opass"]["analytics"]["serve_bytes"]["degree_of_imbalance"]
        if not opass_doi < base_doi:
            errors.append(
                f"{json_path}: opass degree of imbalance {opass_doi} is not "
                f"strictly below baseline {base_doi}"
            )

    try:
        with open(html_path, encoding="utf-8") as fh:
            html = fh.read()
    except OSError as exc:
        errors.append(f"cannot read {html_path}: {exc}")
        return errors

    for name in ("baseline", "opass"):
        for chart in REQUIRED_CHARTS:
            marker = f'id="chart-{name}-{chart}"'
            if marker not in html:
                errors.append(f"{html_path}: missing {marker}")
    for external in ("http://", "https://", "<script"):
        if external in html:
            errors.append(f"{html_path}: not self-contained (found {external!r})")
    return errors


def main(argv: list[str]) -> int:
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    errors = validate(argv[1], argv[2])
    for err in errors:
        print(f"check_report: {err}")
    if errors:
        return 1
    print(f"check_report: {argv[1]} + {argv[2]} ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
