#!/usr/bin/env python3
"""Explain a makespan regression as a bottleneck-attribution delta.

Usage:
    tools/span_diff.py BASELINE.json CURRENT.json [--method NAME]

Both inputs are span documents written by `opass_cli --spans-out=...`
(schema 1: per-method span logs with integer-tick attribution sums that
reconcile bit-exactly with the span durations — DESIGN.md §13). For every
method present in both documents the tool prints the makespan delta, the
per-bucket attribution deltas and the per-node blame deltas, and names the
**regressed resource**: the causal bucket whose attributed time grew the
most. Because the sums are exact integers, the deltas are exact too — no
tolerance thresholds, no noise floor.

Output is deterministic (sorted by delta magnitude, ties by bucket/node
order) so it can be golden-tested; the `cli_span_diff` ctest entry runs it
on the two checked-in fixtures under bench/spans/ and checks that the
injected slow-node regression is blamed on the right bucket.

Exit codes: 0 = compared fine (regressions are reported, not failed on),
2 = bad input (unreadable, wrong schema, no common methods).
"""

from __future__ import annotations

import argparse
import json
import sys

TICKS_PER_SECOND = 1_000_000_000


def load(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise SystemExit(f"error: cannot read span document {path}: {e}")
    if doc.get("schema") != 1:
        raise SystemExit(f"error: {path}: unsupported schema {doc.get('schema')!r}")
    if doc.get("ticks_per_second") != TICKS_PER_SECOND:
        raise SystemExit(
            f"error: {path}: unexpected ticks_per_second {doc.get('ticks_per_second')!r}"
        )
    return doc


def methods_by_name(doc: dict) -> dict:
    return {m["name"]: m for m in doc.get("methods", [])}


def seconds(ticks: int) -> str:
    return f"{ticks / TICKS_PER_SECOND:+.9f}"


def diff_method(name: str, base: dict, cur: dict) -> None:
    d_makespan = cur["makespan_ticks"] - base["makespan_ticks"]
    print(f"method {name}: makespan {seconds(d_makespan)} s ({d_makespan:+d} ticks)")

    base_kinds = base["attribution"]["kinds"]
    cur_kinds = cur["attribution"]["kinds"]
    deltas = []
    for kind in cur_kinds:  # document order is the fixed AttrKind order
        d = cur_kinds.get(kind, 0) - base_kinds.get(kind, 0)
        if d != 0:
            deltas.append((kind, d))
    if deltas:
        regressed = max(deltas, key=lambda kd: kd[1])
        if regressed[1] > 0:
            print(f"  regressed resource: {regressed[0]} ({seconds(regressed[1])} s)")
        print("  attribution deltas:")
        for kind, d in sorted(deltas, key=lambda kd: -abs(kd[1])):
            print(f"    {kind} {seconds(d)} s")
    else:
        print("  attribution deltas: none")

    base_nodes = {int(k): v for k, v in base["attribution"]["nodes"].items()}
    cur_nodes = {int(k): v for k, v in cur["attribution"]["nodes"].items()}
    node_deltas = []
    for node in sorted(set(base_nodes) | set(cur_nodes)):
        d = cur_nodes.get(node, 0) - base_nodes.get(node, 0)
        if d != 0:
            node_deltas.append((node, d))
    if node_deltas:
        print("  node blame deltas:")
        for node, d in sorted(node_deltas, key=lambda nd: (-abs(nd[1]), nd[0]))[:8]:
            print(f"    node {node} {seconds(d)} s")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="span JSON of the reference run")
    parser.add_argument("current", help="span JSON of the run under test")
    parser.add_argument("--method", help="compare only this method")
    args = parser.parse_args()

    base = methods_by_name(load(args.baseline))
    cur = methods_by_name(load(args.current))
    names = [n for n in cur if n in base]
    if args.method is not None:
        names = [n for n in names if n == args.method]
    if not names:
        print("error: no common methods to compare", file=sys.stderr)
        return 2
    for name in names:
        diff_method(name, base[name], cur[name])
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `span_diff.py ... | head`
        sys.exit(0)
