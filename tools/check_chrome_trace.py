#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file (as written by obs::ChromeTraceBuilder).

Usage:
    tools/check_chrome_trace.py TRACE.json

Checks, in order:
  1. the file parses as JSON and is an object with a "traceEvents" array;
  2. every event is an object with a "ph" phase field;
  3. every "X" (complete) event has numeric ts >= 0 and dur >= 0, plus
     integer pid/tid and a non-empty name;
  4. the "X"-event ts sequence is non-decreasing (the builder sorts by
     timestamp so Perfetto/chrome://tracing streams them in order).

Exit code 0 when the trace is valid, 1 otherwise. Used by the
`cli_trace_valid` ctest entry and the CI bench-smoke job.
"""

from __future__ import annotations

import json
import sys


def validate(path: str) -> list[str]:
    errors: list[str] = []
    try:
        with open(path, encoding="utf-8") as fh:
            trace = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"cannot parse {path}: {exc}"]

    if not isinstance(trace, dict) or not isinstance(trace.get("traceEvents"), list):
        return [f"{path}: top level must be an object with a 'traceEvents' array"]

    events = trace["traceEvents"]
    complete = 0
    last_ts = None
    for i, ev in enumerate(events):
        if not isinstance(ev, dict) or "ph" not in ev:
            errors.append(f"event {i}: not an object with a 'ph' field")
            continue
        if ev["ph"] != "X":
            continue
        complete += 1
        ts, dur = ev.get("ts"), ev.get("dur")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
            errors.append(f"event {i}: ts {ts!r} is not a non-negative number")
            continue
        if not isinstance(dur, (int, float)) or isinstance(dur, bool) or dur < 0:
            errors.append(f"event {i}: dur {dur!r} is not a non-negative number")
        if not isinstance(ev.get("pid"), int) or not isinstance(ev.get("tid"), int):
            errors.append(f"event {i}: pid/tid must be integers")
        if not ev.get("name"):
            errors.append(f"event {i}: missing name")
        if last_ts is not None and ts < last_ts:
            errors.append(f"event {i}: ts {ts} < previous ts {last_ts} (not sorted)")
        last_ts = ts

    if complete == 0:
        errors.append(f"{path}: no 'X' (complete) events — empty trace")
    return errors


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    errors = validate(argv[1])
    for err in errors:
        print(f"check_chrome_trace: {err}")
    if errors:
        return 1
    print(f"check_chrome_trace: {argv[1]} ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
