"""opass_cpp — the shared C++ source lexer/scrubber for the project linters.

Both tools/opass_lint.py (textual hygiene rules) and tools/opass_analyze.py
(include-graph layering, shared-mutable-state audit, unordered-iteration
determinism) work on *scrubbed* source text: comments and — optionally —
string/char literals blanked out with spaces so that byte offsets and line
numbers still match the original file. This module owns that scrubbing, the
common Finding type, source-tree enumeration, and the inline-suppression
syntax honored by every pass:

    foo();  // opass-lint: allow(rule-name)          suppresses on this line
    // opass-lint: allow(rule-a, rule-b)             suppresses the next line

A suppression names the exact rule(s) it silences; there is no wildcard —
a blanket "allow everything" marker would rot silently as new rules land.
"""

from __future__ import annotations

import pathlib
import re

# --- source scrubbing -------------------------------------------------------

_COMMENT_OR_STRING = re.compile(
    r"""
      //[^\n]*                     # line comment
    | /\*.*?\*/                    # block comment
    | "(?:\\.|[^"\\\n])*"          # string literal
    | '(?:\\.|[^'\\\n])*'          # char literal
    """,
    re.DOTALL | re.VERBOSE,
)

_COMMENT_ONLY = re.compile(
    r"""
      //[^\n]*                     # line comment
    | /\*.*?\*/                    # block comment
    """,
    re.DOTALL | re.VERBOSE,
)


def scrub(text: str, keep_strings: bool = False) -> str:
    """Blank out comments (and, by default, literals), preserving line
    structure. `keep_strings` leaves literals intact — needed to see quoted
    #include paths."""

    def blank(m: re.Match) -> str:
        return re.sub(r"[^\n]", " ", m.group(0))

    pattern = _COMMENT_ONLY if keep_strings else _COMMENT_OR_STRING
    return pattern.sub(blank, text)


def line_of(text: str, offset: int) -> int:
    """1-based line number of a byte offset into `text`."""
    return text.count("\n", 0, offset) + 1


# --- findings ---------------------------------------------------------------

class Finding:
    def __init__(self, path: pathlib.Path, line: int, rule: str, message: str):
        self.path, self.line, self.rule, self.message = path, line, rule, message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# --- inline suppressions ----------------------------------------------------

_SUPPRESS = re.compile(r"//\s*opass-lint:\s*allow\(([^)]*)\)")


def suppressions(text: str) -> dict:
    """Map line number -> set of rule names suppressed on that line.

    The marker lives in a comment, so it is parsed from the *raw* text (the
    scrubbed text has comments blanked). A marker on a line of its own
    covers the following line; a trailing marker covers its own line. Both
    registrations are made for every marker — covering a line that has no
    finding is harmless.
    """
    out: dict = {}
    for m in _SUPPRESS.finditer(text):
        rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
        if not rules:
            continue
        line = line_of(text, m.start())
        for covered in (line, line + 1):
            out.setdefault(covered, set()).update(rules)
    return out


def apply_suppressions(findings: list, texts: dict) -> list:
    """Drop findings whose (file, line) carries an `opass-lint: allow(rule)`
    marker for that finding's rule. `texts` maps path -> raw file text."""
    kept = []
    cache: dict = {}
    for f in findings:
        if f.path not in cache:
            text = texts.get(f.path)
            cache[f.path] = suppressions(text) if text is not None else {}
        if f.rule in cache[f.path].get(f.line, ()):  # suppressed in source
            continue
        kept.append(f)
    return kept


# --- tree enumeration -------------------------------------------------------

def source_files(src_root: pathlib.Path, suffixes=(".hpp", ".cpp")) -> list:
    """All C++ sources under `src_root`, sorted for deterministic reports."""
    return [p for p in sorted(src_root.rglob("*")) if p.suffix in suffixes]
