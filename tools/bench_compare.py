#!/usr/bin/env python3
"""Compare two perf-harness JSON reports and flag regressions.

Usage:
    tools/bench_compare.py BASELINE.json CURRENT.json [--threshold=20]
                           [--gate NAME:PCT ...] [--gate-min NAME:PCT ...]

Both files must be BENCH_planner.json / BENCH_executor.json reports (schema 1)
from the same harness. Scenarios are matched by name; scenarios present in
only one file are reported but do not fail the comparison (the matrix may
grow). For every matched scenario the minimum wall time is compared, and the
exit code is 1 when any current time exceeds the baseline by more than
--threshold percent (default 20). Correctness fields (audit_ok, parity_ok)
must hold in the current report regardless of timing.

Embedded observability metrics (the nested "metrics" objects the harnesses
emit per scenario / per solver) are diffed informationally by default:
numeric drift is printed but never fails the comparison — wall times drift
with the host, and counters only change when behaviour changes, which the
tier-1 tests gate. Specific metrics can be promoted to hard gates with the
repeatable --gate option: `--gate metrics.degree_of_imbalance:10` fails the
comparison when the current value exceeds the baseline by more than 10% (a
baseline of 0 fails on any increase). The top-level "peak_rss_kb" resource
stamp participates under its own name (`--gate peak_rss_kb:50`), so memory
regressions gate alongside behavioural metrics. For metrics where *lower* is the
regression direction (throughput, locality percentages), --gate-min is the
mirror image: `--gate-min metrics.requests_per_sec:30` fails when the
current value falls below the baseline by more than 30%. Gated metrics are
host-independent simulation outputs, so a tight percentage is safe —
except throughput-style metrics, which share the host sensitivity of wall
times and want a generous margin. Fields this script does not recognise are
reported as warnings so schema growth is always visible in CI logs.
"""

from __future__ import annotations

import argparse
import json
import sys

# Known per-scenario / per-solver keys; anything else triggers a warning.
_KNOWN_SCENARIO_KEYS = {
    "name", "nodes", "tasks", "replication", "seed", "repeats", "threads",
    "wall_ms_min", "wall_ms_mean", "makespan_s", "local_pct",
    "peak_rss_kb", "parity_ok", "algorithms", "metrics",
}
_KNOWN_SOLVER_KEYS = {
    "wall_ms_min", "wall_ms_mean", "locally_matched", "locality_pct",
    "audit_ok", "metrics",
}


def load(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        report = json.load(fh)
    if report.get("schema") != 1:
        raise SystemExit(f"{path}: unsupported schema {report.get('schema')!r}")
    return report


def wall_times(scenario: dict) -> dict[str, float]:
    """Flatten a scenario into {metric_name: wall_ms_min}."""
    if "algorithms" in scenario:  # planner report: one entry per solver
        return {
            f"{algo}.wall_ms_min": data["wall_ms_min"]
            for algo, data in scenario["algorithms"].items()
        }
    return {"wall_ms_min": scenario["wall_ms_min"]}


def metric_values(scenario: dict) -> dict[str, float]:
    """Flatten the embedded "metrics" objects into {dotted_name: value}."""
    out: dict[str, float] = {}
    # Top-level resource footprint: every harness stamps its ru_maxrss, so
    # memory regressions can be gated with `--gate peak_rss_kb:PCT` the same
    # way as embedded metrics. RSS is host-sensitive (allocator, page size),
    # so gates want a generous margin, like throughput.
    rss = scenario.get("peak_rss_kb")
    if isinstance(rss, (int, float)) and not isinstance(rss, bool):
        out["peak_rss_kb"] = float(rss)
    for key, value in scenario.get("metrics", {}).items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            out[f"metrics.{key}"] = float(value)
    for algo, data in scenario.get("algorithms", {}).items():
        for key, value in data.get("metrics", {}).items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                out[f"{algo}.metrics.{key}"] = float(value)
    return out


def unknown_field_warnings(scenario: dict) -> list[str]:
    warnings = [f"unrecognised scenario field '{key}'"
                for key in sorted(scenario.keys() - _KNOWN_SCENARIO_KEYS)]
    for algo, data in sorted(scenario.get("algorithms", {}).items()):
        warnings.extend(f"unrecognised solver field '{algo}.{key}'"
                        for key in sorted(data.keys() - _KNOWN_SOLVER_KEYS))
    return warnings


def correctness_failures(scenario: dict) -> list[str]:
    bad = []
    if scenario.get("parity_ok") is False:
        bad.append("parity_ok=false")
    for algo, data in scenario.get("algorithms", {}).items():
        if data.get("audit_ok") is False:
            bad.append(f"{algo}.audit_ok=false")
    return bad


def parse_gate(spec: str) -> tuple[str, float]:
    """Parse a NAME:PCT gate spec, e.g. 'metrics.degree_of_imbalance:10'."""
    name, sep, pct = spec.rpartition(":")
    try:
        if not sep or not name:
            raise ValueError
        return name, float(pct)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"gate {spec!r} is not NAME:PCT (e.g. metrics.degree_of_imbalance:10)")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=20.0,
                        help="max allowed wall-time regression in percent")
    parser.add_argument("--gate", type=parse_gate, action="append", default=[],
                        metavar="NAME:PCT",
                        help="fail when embedded metric NAME exceeds the "
                             "baseline by more than PCT percent (repeatable)")
    parser.add_argument("--gate-min", type=parse_gate, action="append", default=[],
                        metavar="NAME:PCT",
                        help="fail when embedded metric NAME falls below the "
                             "baseline by more than PCT percent (repeatable)")
    args = parser.parse_args()

    base = load(args.baseline)
    curr = load(args.current)
    if base.get("bench") != curr.get("bench"):
        raise SystemExit(
            f"harness mismatch: {base.get('bench')!r} vs {curr.get('bench')!r}")

    base_by_name = {s["name"]: s for s in base["scenarios"]}
    curr_by_name = {s["name"]: s for s in curr["scenarios"]}

    failures = []
    for name in sorted(base_by_name.keys() | curr_by_name.keys()):
        if name not in base_by_name:
            print(f"  {name}: new scenario (no baseline)")
            continue
        if name not in curr_by_name:
            print(f"  {name}: missing from current report")
            continue

        for issue in correctness_failures(curr_by_name[name]):
            failures.append(f"{name}: {issue}")
        for warning in unknown_field_warnings(curr_by_name[name]):
            print(f"  {name}: WARNING: {warning}")

        base_times = wall_times(base_by_name[name])
        curr_times = wall_times(curr_by_name[name])
        for metric in sorted(base_times.keys() & curr_times.keys()):
            b, c = base_times[metric], curr_times[metric]
            delta = 100.0 * (c - b) / b if b > 0 else 0.0
            verdict = "ok"
            if delta > args.threshold:
                verdict = "REGRESSION"
                failures.append(f"{name}: {metric} {b:.3f} -> {c:.3f} ms (+{delta:.1f}%)")
            print(f"  {name}: {metric} {b:.3f} -> {c:.3f} ms ({delta:+.1f}%) {verdict}")

        # Embedded observability metrics: informational by default, hard
        # failures for metrics promoted with --gate.
        base_metrics = metric_values(base_by_name[name])
        curr_metrics = metric_values(curr_by_name[name])
        for metric in sorted(base_metrics.keys() & curr_metrics.keys()):
            b, c = base_metrics[metric], curr_metrics[metric]
            gate_pct = next((pct for gate_name, pct in args.gate
                             if metric == gate_name
                             or metric.endswith("." + gate_name)), None)
            gate_min_pct = next((pct for gate_name, pct in args.gate_min
                                 if metric == gate_name
                                 or metric.endswith("." + gate_name)), None)
            if gate_pct is None and gate_min_pct is None:
                if b != c:
                    print(f"  {name}: {metric} {b:g} -> {c:g} (informational)")
                continue
            gated_ok = True
            if gate_pct is not None and c > b * (1.0 + gate_pct / 100.0):
                gated_ok = False
                failures.append(f"{name}: {metric} {b:g} -> {c:g} "
                                f"(gate: at most +{gate_pct:g}%)")
            if gate_min_pct is not None and c < b * (1.0 - gate_min_pct / 100.0):
                gated_ok = False
                failures.append(f"{name}: {metric} {b:g} -> {c:g} "
                                f"(gate: at least -{gate_min_pct:g}%)")
            print(f"  {name}: {metric} {b:g} -> {c:g} "
                  f"{'ok (gated)' if gated_ok else 'GATED REGRESSION'}")
        for metric in sorted(curr_metrics.keys() - base_metrics.keys()):
            print(f"  {name}: {metric} new metric (no baseline)")

    if failures:
        print(f"\n{len(failures)} failure(s), threshold {args.threshold:.0f}%:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"\nno regressions beyond {args.threshold:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
