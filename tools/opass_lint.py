#!/usr/bin/env python3
"""opass_lint — project-specific hygiene rules static analyzers can't express.

Rules (all scoped to src/ unless noted):

  bare-assert       src/ must not use assert(); failures must throw through
                    OPASS_REQUIRE / OPASS_CHECK (src/common/require.hpp) so
                    release builds keep their invariants. static_assert is
                    fine (it is a compile-time check).
  nondeterminism    No std::rand / srand / std::random_device / system_clock /
                    time(...) seeding outside src/common/rng.* — every random
                    or time-derived value must flow through the seeded Rng so
                    experiments replay bit-identically.
  pragma-once       Every header carries #pragma once.
  include-order     In a .cpp: the first include is the file's own header
                    (self-containment witness); afterwards no <system>
                    include may follow a "project" include, i.e. the system
                    block precedes the project block.
  options-last      src/opass/ headers only: a `FooOptions` function
                    parameter must be the last parameter (the planner API
                    convention — options structs trail, usually defaulted
                    `= {}`). Internal .cpp helpers may order differently
                    (e.g. an accumulator out-param last).
  nodiscard-plan    src/opass/ headers only: every `struct FooPlan` /
                    `struct FooResult` must be declared
                    `struct [[nodiscard]] Foo...` — plans are computed for
                    their value; silently dropping one is always a bug.
  nodiscard-status  src/obs/ headers only: every `struct FooStatus` must be
                    declared `struct [[nodiscard]] Foo...` — an ignored
                    exporter status silently swallows an I/O failure.
  timeline-metric-name
                    String literals starting with "timeline." must follow the
                    series taxonomy `timeline.<subsystem>.<metric>` — at least
                    three dot-separated [a-z0-9_]+ segments — or be a prefix
                    form ending in "." (used to splice in a node/process id).
                    A malformed literal would pass compilation but throw at
                    recorder registration or silently miss exporter filters.
  facade-only       (scoped to src/ outside src/opass/, plus bench/ and
                    examples/) Planning goes through the core::plan() facade;
                    the per-planner entry points (assign_single_data,
                    assign_single_data_weighted, assign_single_data_rack_aware,
                    assign_multi_data) are implementation details reserved for
                    src/opass/ internals and unit tests. A direct call
                    elsewhere bypasses PlanOptions validation, workspace
                    reuse, and the one place where new planners get wired in.
                    Harnesses that deliberately measure a raw matcher carry an
                    inline allow(facade-only) marker.
  no-raw-thread     Raw threading primitives (std::thread / std::mutex /
                    std::atomic / std::condition_variable / the std lock
                    guards) are confined to src/common/thread_pool.* and
                    src/common/thread_annotations.hpp. Everything else
                    expresses concurrency through opass::ThreadPool and the
                    annotated opass::Mutex / opass::ScopedLock vocabulary, so
                    the thread-safety analysis and the determinism contract
                    (DESIGN.md §12) see every lock and every parallel region.
                    A deliberate exception carries an inline
                    allow(no-raw-thread) marker.
  pq-top-copy       No by-value initialization from `.top()`:
                    `auto fn = q.top();` (or a `std::function<...>` copy of
                    `.top().fn`) deep-copies the element — and since
                    priority_queue::top() returns a *const* reference,
                    std::move cannot rescue it either. Bind a const reference,
                    or use a vector heap (std::pop_heap + move from the back)
                    as the event loops in src/sim do.

Usage:
  opass_lint.py <repo-root>     lint the tree rooted there (exit 1 on findings)
  opass_lint.py --self-test     seed one violation per rule into a temp tree
                                and verify each is caught (exit 1 if not)

The per-header self-containment *compile* gate lives in
cmake/header_checks.cmake; this linter covers the textual rules.
"""

from __future__ import annotations

import pathlib
import re
import sys
import tempfile

# The C++ scrubber, the Finding type, and the inline-suppression syntax are
# shared with tools/opass_analyze.py (see tools/opass_cpp.py).
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
from opass_cpp import Finding, apply_suppressions, scrub  # noqa: E402

# --- rules ------------------------------------------------------------------

BARE_ASSERT = re.compile(r"(?<![\w_])assert\s*\(")
NONDETERMINISM = re.compile(
    r"std::rand\b|(?<![\w_])srand\s*\(|std::random_device\b"
    r"|std::chrono::system_clock\b|(?<![\w_])time\s*\(\s*(?:NULL|nullptr|0)\s*\)"
)
PRAGMA_ONCE = re.compile(r"^\s*#\s*pragma\s+once\s*$", re.MULTILINE)
INCLUDE = re.compile(r'^\s*#\s*include\s+(<[^>]+>|"[^"]+")\s*$', re.MULTILINE)
# An Options-typed parameter that is *followed by a comma*, i.e. not the last
# parameter: `FooOptions options,` / `const FooOptions& options,`. Brace
# inits (`FooOptions{...}`) and declarations (`FooOptions o;`) don't match —
# the type must be followed by a bare identifier and then a comma.
OPTIONS_NOT_LAST = re.compile(r"\b(\w+Options)\s*&?\s+\w+\s*,")
# `struct FooPlan` / `struct FooResult` with the name directly after
# `struct`; the compliant spelling `struct [[nodiscard]] FooPlan` puts the
# attribute in between and does not match.
PLAIN_PLAN_STRUCT = re.compile(r"\bstruct\s+(\w+(?:Plan|Result))\b")
# Same mechanics for exporter status types in src/obs/: `struct FooStatus`
# matches, `struct [[nodiscard]] FooStatus` does not.
PLAIN_STATUS_STRUCT = re.compile(r"\bstruct\s+(\w+Status)\b")
# Any string literal whose content starts with "timeline." — candidates for
# the series-name taxonomy check. The two compliant shapes are checked
# against the literal's content afterwards.
TIMELINE_LITERAL = re.compile(r'"(timeline\.[^"\n]*)"')
TIMELINE_FULL_NAME = re.compile(r"timeline\.[a-z0-9_]+(?:\.[a-z0-9_]+)+")
TIMELINE_PREFIX = re.compile(r"timeline\.(?:[a-z0-9_]+\.)*")
# Any string literal whose content starts with a span-layer prefix ("exec."
# or "svc.") — candidates for the span-name taxonomy check. The compliant
# shape is checked against the literal's content afterwards: exactly three
# dot-separated segments (layer.noun.verb), each [a-z][a-z0-9_]* — mirroring
# obs::valid_span_name, which SpanLog::add enforces at runtime.
SPAN_LITERAL = re.compile(r'"((?:exec|svc)\.[^"\n]*)"')
SPAN_FULL_NAME = re.compile(r"(?:exec|svc)\.[a-z][a-z0-9_]*\.[a-z][a-z0-9_]*")
# A direct call of a per-planner entry point: `assign_single_data(...)`,
# optionally `core::`-qualified. The facade spelling `core::plan(...)` does
# not match; prose mentions live in comments, which scrub() blanks out.
DIRECT_PLANNER_CALL = re.compile(
    r"\b(?:core\s*::\s*)?"
    r"(assign_(?:single_data(?:_weighted|_rack_aware)?|multi_data))\s*\(")
# A by-value declaration initialized from `.top()`: `auto fn = q.top();`,
# `std::function<void()> fn = q.top().fn;`. Reference bindings don't match —
# `auto` / `std::function<...>` must be directly followed by the identifier,
# so `const auto& fn = ...` and `auto& fn = ...` stay clean. `.top()` anywhere
# on the right-hand side triggers, including inside std::move(...), because
# priority_queue::top() returns a const reference and the "move" still copies.
PQ_TOP_COPY = re.compile(
    r"\b(?:auto|std::function\s*<[^;{}=]*>)\s+\w+\s*=\s*[^;{}\n]*\.top\s*\(\s*\)")
# Raw threading vocabulary. std::atomic covers std::atomic<T>, the _flag /
# _bool /... aliases and the free atomic_* functions via the \w* tail.
RAW_THREAD = re.compile(
    r"std::(?:jthread\b|thread\b|mutex\b|shared_mutex\b|recursive_mutex\b"
    r"|timed_mutex\b|condition_variable(?:_any)?\b|atomic\w*\b"
    r"|lock_guard\b|unique_lock\b|scoped_lock\b|shared_lock\b|call_once\b"
    r"|once_flag\b|future\b|promise\b|async\b|counting_semaphore\b"
    r"|binary_semaphore\b|barrier\b|latch\b)")
# The sanctioned homes: the pool implementation itself and the annotation
# vocabulary it is built on.
RAW_THREAD_EXEMPT = (
    "src/common/thread_pool.hpp",
    "src/common/thread_pool.cpp",
    "src/common/thread_annotations.hpp",
)


def _line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def check_bare_assert(path: pathlib.Path, text: str, findings: list):
    for m in BARE_ASSERT.finditer(scrub(text)):
        findings.append(
            Finding(path, _line_of(text, m.start()), "bare-assert",
                    "use OPASS_REQUIRE / OPASS_CHECK from common/require.hpp, "
                    "not assert()"))


def check_nondeterminism(path: pathlib.Path, text: str, findings: list):
    rel = path.as_posix()
    if "/common/rng." in rel:
        return  # the one sanctioned wrapper
    for m in NONDETERMINISM.finditer(scrub(text)):
        findings.append(
            Finding(path, _line_of(text, m.start()), "nondeterminism",
                    f"'{m.group(0).strip()}' bypasses common/rng — experiments "
                    "must replay from a seed"))


def check_pragma_once(path: pathlib.Path, text: str, findings: list):
    if path.suffix == ".hpp" and not PRAGMA_ONCE.search(text):
        findings.append(Finding(path, 1, "pragma-once", "header lacks #pragma once"))


def check_include_order(path: pathlib.Path, src_root: pathlib.Path, text: str, findings: list):
    if path.suffix != ".cpp":
        return
    includes = [(m.group(1), _line_of(text, m.start()))
                for m in INCLUDE.finditer(scrub(text, keep_strings=True))]
    if not includes:
        return
    own = path.relative_to(src_root).with_suffix(".hpp").as_posix()
    first, first_line = includes[0]
    has_own_header = (src_root / own).exists()
    if has_own_header and first != f'"{own}"':
        findings.append(
            Finding(path, first_line, "include-order",
                    f'first include must be the file\'s own header "{own}" '
                    "(self-containment witness)"))
        return
    rest = includes[1:] if has_own_header else includes
    seen_project = None
    for inc, line in rest:
        if inc.startswith('"') and inc != f'"{own}"':
            seen_project = (inc, line)
        elif inc.startswith("<") and seen_project is not None:
            findings.append(
                Finding(path, line, "include-order",
                        f"system include {inc} appears after project include "
                        f"{seen_project[0]} (line {seen_project[1]}); keep the "
                        "system block first"))
            return


def check_options_last(path: pathlib.Path, src_root: pathlib.Path, text: str, findings: list):
    if path.suffix != ".hpp" or "opass" not in path.relative_to(src_root).parts[:1]:
        return
    for m in OPTIONS_NOT_LAST.finditer(scrub(text)):
        findings.append(
            Finding(path, _line_of(text, m.start()), "options-last",
                    f"parameter of type {m.group(1)} must be the last parameter "
                    "(options-last convention)"))


def check_nodiscard_plan(path: pathlib.Path, src_root: pathlib.Path, text: str, findings: list):
    if path.suffix != ".hpp" or "opass" not in path.relative_to(src_root).parts[:1]:
        return
    for m in PLAIN_PLAN_STRUCT.finditer(scrub(text)):
        findings.append(
            Finding(path, _line_of(text, m.start()), "nodiscard-plan",
                    f"declare it 'struct [[nodiscard]] {m.group(1)}' — plan/result "
                    "types must not be silently dropped"))


def check_timeline_metric_name(path: pathlib.Path, text: str, findings: list):
    for m in TIMELINE_LITERAL.finditer(scrub(text, keep_strings=True)):
        name = m.group(1)
        if name.endswith("."):
            if TIMELINE_PREFIX.fullmatch(name):
                continue
        elif TIMELINE_FULL_NAME.fullmatch(name):
            continue
        findings.append(
            Finding(path, _line_of(text, m.start()), "timeline-metric-name",
                    f'"{name}" breaks the timeline.<subsystem>.<metric> '
                    "taxonomy (>= 3 dot-separated [a-z0-9_]+ segments, or a "
                    "splice prefix ending in '.')"))


def check_span_name(path: pathlib.Path, text: str, findings: list):
    for m in SPAN_LITERAL.finditer(scrub(text, keep_strings=True)):
        name = m.group(1)
        if SPAN_FULL_NAME.fullmatch(name):
            continue
        findings.append(
            Finding(path, _line_of(text, m.start()), "span-name",
                    f'"{name}" breaks the layer.noun.verb span taxonomy '
                    "(exactly 3 dot-separated [a-z][a-z0-9_]* segments; "
                    "SpanLog::add rejects it at runtime too)"))


def check_pq_top_copy(path: pathlib.Path, text: str, findings: list):
    for m in PQ_TOP_COPY.finditer(scrub(text)):
        findings.append(
            Finding(path, _line_of(text, m.start()), "pq-top-copy",
                    "by-value init from .top() deep-copies the element (top() "
                    "returns a const reference, so std::move cannot help); bind "
                    "a const reference or pop_heap and move from the back"))


def check_no_raw_thread(path: pathlib.Path, root: pathlib.Path, text: str, findings: list):
    rel = path.relative_to(root).as_posix()
    if rel in RAW_THREAD_EXEMPT:
        return
    for m in RAW_THREAD.finditer(scrub(text)):
        findings.append(
            Finding(path, _line_of(text, m.start()), "no-raw-thread",
                    f"'{m.group(0)}' outside common/thread_pool — express "
                    "concurrency through opass::ThreadPool and the annotated "
                    "opass::Mutex/ScopedLock vocabulary (common/"
                    "thread_annotations.hpp) so locks stay visible to "
                    "-Wthread-safety and the determinism contract"))


def check_facade_only(path: pathlib.Path, root: pathlib.Path, text: str, findings: list):
    rel = path.relative_to(root).as_posix()
    if rel.startswith("src/opass/"):
        return  # the planners' own home — definitions and the facade itself
    for m in DIRECT_PLANNER_CALL.finditer(scrub(text)):
        findings.append(
            Finding(path, _line_of(text, m.start()), "facade-only",
                    f"direct {m.group(1)}() call bypasses the core::plan() "
                    "facade; route through plan() (PlanOptions selects the "
                    "planner) or mark a deliberate raw-matcher measurement "
                    "with opass-lint: allow(facade-only)"))


def check_nodiscard_status(path: pathlib.Path, src_root: pathlib.Path, text: str, findings: list):
    if path.suffix != ".hpp" or "obs" not in path.relative_to(src_root).parts[:1]:
        return
    for m in PLAIN_STATUS_STRUCT.finditer(scrub(text)):
        findings.append(
            Finding(path, _line_of(text, m.start()), "nodiscard-status",
                    f"declare it 'struct [[nodiscard]] {m.group(1)}' — exporter "
                    "status must not be silently dropped"))


# --- driver -----------------------------------------------------------------

def lint_tree(root: pathlib.Path) -> list:
    src_root = root / "src"
    findings: list = []
    if not src_root.is_dir():
        findings.append(Finding(root, 1, "layout", f"no src/ directory under {root}"))
        return findings
    texts: dict = {}
    for path in sorted(src_root.rglob("*")):
        if path.suffix not in (".hpp", ".cpp"):
            continue
        text = path.read_text(encoding="utf-8")
        texts[path] = text
        check_bare_assert(path, text, findings)
        check_nondeterminism(path, text, findings)
        check_pragma_once(path, text, findings)
        check_include_order(path, src_root, text, findings)
        check_options_last(path, src_root, text, findings)
        check_nodiscard_plan(path, src_root, text, findings)
        check_nodiscard_status(path, src_root, text, findings)
        check_timeline_metric_name(path, text, findings)
        check_span_name(path, text, findings)
        check_pq_top_copy(path, text, findings)
        check_no_raw_thread(path, root, text, findings)
        check_facade_only(path, root, text, findings)
    # bench/ and examples/ consume the planner API, so only the API-usage
    # rule applies there; tests/ stays exempt (unit tests exercise the
    # per-planner entry points on purpose).
    for tree in ("bench", "examples"):
        tree_root = root / tree
        if not tree_root.is_dir():
            continue
        for path in sorted(tree_root.rglob("*")):
            if path.suffix not in (".hpp", ".cpp"):
                continue
            text = path.read_text(encoding="utf-8")
            texts[path] = text
            check_facade_only(path, root, text, findings)
    return apply_suppressions(findings, texts)


# --- self test --------------------------------------------------------------

_VIOLATIONS = {
    "bare-assert": ("bad_assert.cpp", "#include <cassert>\nvoid f(int x) { assert(x > 0); }\n"),
    "nondeterminism": ("bad_rand.cpp", "#include <cstdlib>\nint f() { return std::rand(); }\n"),
    "pragma-once": ("bad_guard.hpp", "struct NoGuard {};\n"),
    "include-order": (
        "bad_order.cpp",
        '#include "dfs/types.hpp"\n#include <vector>\nint g() { return 1; }\n',
    ),
    "options-last": (
        "opass/bad_options.hpp",
        "#pragma once\nvoid f(BadOptions options, int x);\n",
    ),
    "nodiscard-plan": (
        "opass/bad_plan.hpp",
        "#pragma once\nstruct BadPlan { int x; };\n",
    ),
    "nodiscard-status": (
        "obs/bad_status.hpp",
        "#pragma once\nstruct BadStatus { bool ok = true; };\n",
    ),
    "timeline-metric-name": (
        "obs/bad_series_name.cpp",
        "#include <string>\n"
        "// Two segments only, and uppercase — both break the taxonomy.\n"
        "const std::string kBad = \"timeline.ServeBytes\";\n",
    ),
    "span-name": (
        "obs/bad_span_name.cpp",
        "#include <string>\n"
        "// Two segments only, and a capitalized noun — both break the\n"
        "// layer.noun.verb taxonomy.\n"
        "const std::string kBadShort = \"exec.task\";\n"
        "const std::string kBadCase = \"svc.Job.queue\";\n",
    ),
    "facade-only": (
        "runtime/bad_direct_plan.cpp",
        '#include "opass/opass.hpp"\n'
        "int f() { return core::assign_single_data(nn, tasks, placement, rng).total; }\n",
    ),
    "no-raw-thread": (
        "sim/bad_raw_thread.cpp",
        "#include <mutex>\n"
        "std::mutex g_mu;\n"
        "void f() { std::lock_guard<std::mutex> lock(g_mu); }\n",
    ),
    "pq-top-copy": (
        "bad_top_copy.cpp",
        "#include <functional>\n#include <queue>\n"
        "void f(std::priority_queue<std::function<void()>>& q) {\n"
        "  auto fn = q.top();\n  q.pop();\n  fn();\n}\n",
    ),
}

_CLEANS = (
    (
        "clean.cpp",
        '#include <vector>\n\n#include "common/require.hpp"\n'
        "void h(int x) { OPASS_REQUIRE(x > 0, \"x\"); }\n",
    ),
    (
        # The compliant planner-API spellings the new rules must NOT flag:
        # options-last (defaulted, trailing), brace init, member declaration,
        # and a [[nodiscard]] plan struct.
        "opass/clean_api.hpp",
        "#pragma once\n"
        "struct GoodOptions { int knob = 0; };\n"
        "struct [[nodiscard]] GoodPlan { int value = 0; };\n"
        "GoodPlan g(int x, GoodOptions options = {});\n"
        "inline GoodPlan h(int x) { return g(x, GoodOptions{1}); }\n"
        "struct Holder { GoodOptions options_; };\n",
    ),
    (
        # The compliant exporter-status spelling nodiscard-status must NOT flag.
        "obs/clean_status.hpp",
        "#pragma once\n"
        "struct [[nodiscard]] GoodStatus { bool ok = true; };\n"
        "GoodStatus write_something(int x);\n",
    ),
    (
        # Compliant series-name spellings timeline-metric-name must NOT flag:
        # a full 3-segment name, a deeper name, and a splice prefix.
        "obs/clean_series_name.cpp",
        "#include <string>\n"
        "const std::string kRate = \"timeline.cluster.serve_bytes_per_s\";\n"
        "const std::string kDepth = \"timeline.executor.process.0.depth\";\n"
        "std::string per_node(int n) {\n"
        "  return \"timeline.cluster.node.\" + std::to_string(n);\n"
        "}\n",
    ),
    (
        # Compliant span-name spellings span-name must NOT flag: the five
        # taxonomy names SpanLog::add accepts (exactly three [a-z][a-z0-9_]*
        # segments). A literal like "executive.summary" has no exec./svc.
        # prefix, so it is out of the rule's scope by construction.
        "obs/clean_span_name.cpp",
        "#include <string>\n"
        "const std::string kTask = \"exec.task.run\";\n"
        "const std::string kRead = \"exec.read.serve\";\n"
        "const std::string kWait = \"exec.wave.wait\";\n"
        "const std::string kQueue = \"svc.job.queue\";\n"
        "const std::string kPlan = \"svc.job.plan\";\n",
    ),
    (
        # src/opass/ internals may call the per-planner entry points directly
        # (the facade is implemented in terms of them), and the facade
        # spelling core::plan(...) must never match facade-only anywhere.
        "opass/clean_internal_call.cpp",
        '#include "opass/planner.hpp"\n'
        "int internal() { return assign_single_data_weighted(nn, tasks, placement, rng).n; }\n"
        "int facade() { return core::plan(request).locally_matched; }\n",
    ),
    (
        # The sanctioned home: raw primitives inside src/common/thread_pool.*
        # are exempt from no-raw-thread.
        "common/thread_pool.cpp",
        '#include "common/thread_pool.hpp"\n\n#include <mutex>\n#include <thread>\n'
        "void pump() { std::mutex mu; std::unique_lock<std::mutex> lock(mu); }\n",
    ),
    (
        # The annotated vocabulary is the compliant spelling no-raw-thread
        # must NOT flag anywhere in src/.
        "sim/clean_annotated_lock.cpp",
        '#include "common/thread_annotations.hpp"\n'
        "opass::Mutex mu_;\n"
        "void locked() { opass::ScopedLock lock(mu_); }\n",
    ),
    (
        # Reference bindings from .top() are the compliant spelling pq-top-copy
        # must NOT flag; copying a cheap scalar after the reference is fine too.
        "clean_top_ref.cpp",
        "#include <queue>\n"
        "int peek(std::priority_queue<int>& q) {\n"
        "  const auto& t = q.top();\n"
        "  int copy = t;\n"
        "  return copy;\n"
        "}\n",
    ),
)


# Inline-suppression contract: the trailing marker on line 2 and the
# stand-alone marker above line 5 silence those two bare asserts; the
# unsuppressed sibling on line 7 must still be caught — a suppression must
# never widen beyond the line it covers. The allow(nondeterminism) marker on
# line 7 names the wrong rule, so it must not silence a bare-assert finding.
_SUPPRESSED = (
    "suppressed.cpp",
    "#include <cassert>\n"
    "void a(int x) { assert(x > 0); }  // opass-lint: allow(bare-assert)\n"
    "\n"
    "// opass-lint: allow(bare-assert)\n"
    "void b(int x) { assert(x > 1); }\n"
    "\n"
    "void c(int x) { assert(x > 2); }  // opass-lint: allow(nondeterminism)\n",
)
_SUPPRESSED_CAUGHT_LINE = 7


def self_test() -> int:
    failures = 0
    with tempfile.TemporaryDirectory(prefix="opass_lint_selftest.") as tmp:
        root = pathlib.Path(tmp)
        src = root / "src"
        src.mkdir()
        for _, (name, content) in _VIOLATIONS.items():
            (src / name).parent.mkdir(parents=True, exist_ok=True)
            (src / name).write_text(content, encoding="utf-8")
        clean_names = set()
        for name, content in _CLEANS:
            (src / name).parent.mkdir(parents=True, exist_ok=True)
            (src / name).write_text(content, encoding="utf-8")
            clean_names.add(pathlib.Path(name).name)
        (src / _SUPPRESSED[0]).write_text(_SUPPRESSED[1], encoding="utf-8")

        findings = lint_tree(root)
        suppressed_hits = sorted(
            f.line for f in findings if f.path.name == _SUPPRESSED[0])
        if suppressed_hits == [_SUPPRESSED_CAUGHT_LINE]:
            print("self-test: inline suppression silences its line, sibling "
                  "still caught")
        else:
            print(f"self-test: FAIL — suppression file expected a finding on "
                  f"line {_SUPPRESSED_CAUGHT_LINE} only, got {suppressed_hits}")
            failures += 1
        fired = {f.rule for f in findings}
        for rule in _VIOLATIONS:
            if rule in fired:
                print(f"self-test: rule '{rule}' caught its seeded violation")
            else:
                print(f"self-test: FAIL — rule '{rule}' missed its seeded violation")
                failures += 1
        clean_hits = [f for f in findings if f.path.name in clean_names]
        if clean_hits:
            print(f"self-test: FAIL — false positives on the clean files: "
                  f"{'; '.join(map(str, clean_hits))}")
            failures += 1
    print("self-test:", "ok" if failures == 0 else f"{failures} failure(s)")
    return 1 if failures else 0


def main(argv: list) -> int:
    if len(argv) == 2 and argv[1] == "--self-test":
        return self_test()
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    root = pathlib.Path(argv[1]).resolve()
    findings = lint_tree(root)
    for f in findings:
        print(f)
    if findings:
        print(f"opass_lint: {len(findings)} finding(s)")
        return 1
    print("opass_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
