# Byte-determinism check for fault-injected runs, run as a ctest entry (see
# examples/CMakeLists.txt). Invoked in script mode:
#
#   cmake -DCLI=<path-to-opass_cli> -DPLAN=<fault-plan.json> \
#         -DOUT_DIR=<scratch-dir> -P cmake/run_fault_check.cmake
#
# Runs the CLI twice with an identical fixed-seed crash scenario and
# requires the metrics, Chrome trace (fault instants included) and timeline
# outputs to be byte-identical. Recovery draws no RNG (DESIGN.md §11), so
# any drift — reassignment ordering, copy-queue ordering, map iteration —
# fails the test.
if(NOT DEFINED CLI OR NOT DEFINED PLAN OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR "usage: cmake -DCLI=<opass_cli> -DPLAN=<fault-plan.json> -DOUT_DIR=<dir> -P run_fault_check.cmake")
endif()

file(MAKE_DIRECTORY "${OUT_DIR}")

foreach(run 1 2)
  execute_process(
    COMMAND "${CLI}" --scenario=single --nodes=64 --tasks=640 --method=both
            --seed=42 --fault-plan=${PLAN}
            --metrics-out=${OUT_DIR}/metrics_${run}.json
            --trace-out=${OUT_DIR}/trace_${run}.json
            --timeline-out=${OUT_DIR}/timeline_${run}.json
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "opass_cli fault run ${run} failed with exit code ${rc}")
  endif()
endforeach()

foreach(kind metrics trace timeline)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            "${OUT_DIR}/${kind}_1.json" "${OUT_DIR}/${kind}_2.json"
    RESULT_VARIABLE same)
  if(NOT same EQUAL 0)
    message(FATAL_ERROR "${kind} output differs between identical fault-injected "
                        "runs — crash recovery is not byte-deterministic")
  endif()
endforeach()

message(STATUS "fault-injected metrics, trace and timeline are byte-identical across runs")
