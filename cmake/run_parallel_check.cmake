# Thread-count byte-identity gate for the worker-pool parallelism
# (DESIGN.md §12), run as a ctest entry (see examples/CMakeLists.txt).
# Invoked in script mode:
#
#   cmake -DCLI=<path-to-opass_cli> -DOUT_DIR=<scratch-dir> \
#         [-DPLAN=<fault-plan.json>] -P cmake/run_parallel_check.cmake
#
# Runs the same fixed-seed scenario once with --threads=1 (the serial path)
# and once with --threads=4, writing metrics, Chrome trace and timeline files
# to different paths, and requires every pair to be byte-identical. This is
# the determinism contract of PlanOptions::threads / ExecutorConfig::pool /
# FlowSimulator::set_parallelism: parallelism may change wall clock, never a
# single output byte. When PLAN is set, the scenario additionally runs under
# that fault plan, so crash-abort, re-plan and re-replication paths are held
# to the same contract.
if(NOT DEFINED CLI OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR "usage: cmake -DCLI=<opass_cli> -DOUT_DIR=<dir> [-DPLAN=<plan.json>] -P run_parallel_check.cmake")
endif()

file(MAKE_DIRECTORY "${OUT_DIR}")

set(nodes 16)
set(tasks 80)
set(extra_args)
if(DEFINED PLAN)
  # The checked-in fault plans crash nodes of a paper-scale cluster; keep the
  # cluster big enough for the victim ids while staying ctest-fast.
  set(nodes 24)
  set(tasks 120)
  list(APPEND extra_args --fault-plan=${PLAN})
endif()

foreach(threads 1 4)
  execute_process(
    COMMAND "${CLI}" --scenario=single --nodes=${nodes} --tasks=${tasks} --method=both
            --seed=42 --threads=${threads} ${extra_args}
            --metrics-out=${OUT_DIR}/metrics_t${threads}.json
            --trace-out=${OUT_DIR}/trace_t${threads}.json
            --timeline-out=${OUT_DIR}/timeline_t${threads}.json
    RESULT_VARIABLE rc
    OUTPUT_FILE "${OUT_DIR}/stdout_t${threads}.txt")
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "opass_cli --threads=${threads} failed with exit code ${rc}")
  endif()
endforeach()

foreach(kind metrics trace timeline)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            "${OUT_DIR}/${kind}_t1.json" "${OUT_DIR}/${kind}_t4.json"
    RESULT_VARIABLE same)
  if(NOT same EQUAL 0)
    message(FATAL_ERROR "${kind} output differs between --threads=1 and "
                        "--threads=4 — the worker pool broke byte-determinism")
  endif()
endforeach()

# The human-readable summary (tables, fractions, makespans) must match too.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${OUT_DIR}/stdout_t1.txt" "${OUT_DIR}/stdout_t4.txt"
  RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR "stdout differs between --threads=1 and --threads=4")
endif()

message(STATUS "threads=1 and threads=4 outputs are byte-identical")
