# Byte-determinism check for the run-report outputs, run as a ctest entry
# (see examples/CMakeLists.txt). Invoked in script mode:
#
#   cmake -DCLI=<path-to-opass_cli> -DOUT_DIR=<scratch-dir> \
#         -P cmake/run_report_check.cmake
#
# Runs the CLI twice with an identical fixed-seed scenario, writing the HTML
# report and timeline JSON to different paths, then requires both pairs to be
# byte-identical. The report embeds sampled time series and derived analytics,
# so any nondeterminism in the sampler, the analytics pass, or the renderer
# (container iteration order, float formatting) fails this test.
if(NOT DEFINED CLI OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR "usage: cmake -DCLI=<opass_cli> -DOUT_DIR=<dir> -P run_report_check.cmake")
endif()

file(MAKE_DIRECTORY "${OUT_DIR}")

foreach(run 1 2)
  execute_process(
    COMMAND "${CLI}" --scenario=single --nodes=16 --tasks=80 --method=both
            --seed=42 --report-html=${OUT_DIR}/report_${run}.html
            --timeline-out=${OUT_DIR}/timeline_${run}.json
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "opass_cli run ${run} failed with exit code ${rc}")
  endif()
endforeach()

foreach(kind report_ timeline_)
  if(kind STREQUAL "report_")
    set(ext html)
  else()
    set(ext json)
  endif()
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            "${OUT_DIR}/${kind}1.${ext}" "${OUT_DIR}/${kind}2.${ext}"
    RESULT_VARIABLE same)
  if(NOT same EQUAL 0)
    message(FATAL_ERROR "${kind}output differs between identical runs — "
                        "report emission is not byte-deterministic")
  endif()
endforeach()

message(STATUS "report and timeline outputs are byte-identical across runs")
