# Span-artifact byte-identity gate for the causal tracing layer
# (DESIGN.md §13), run as a ctest entry (see examples/CMakeLists.txt).
# Invoked in script mode:
#
#   cmake -DCLI=<path-to-opass_cli> -DOUT_DIR=<scratch-dir> \
#         [-DPLAN=<fault-plan.json>] -P cmake/run_span_check.cmake
#
# The span log and everything derived from it — the attribution sums, the
# critical path — are integer-tick reductions of byte-deterministic doubles,
# so the exported documents must be byte-identical across thread counts and
# across replays. This script runs the same fixed-seed scenario with
# --threads=1, --threads=4, and --threads=1 again (the replay), and requires
# every span and critical-path artifact pair to be byte-identical. When PLAN
# is set the scenario runs under that fault plan, holding the crash-abort /
# re-plan / degradation attribution paths to the same contract.
if(NOT DEFINED CLI OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR "usage: cmake -DCLI=<opass_cli> -DOUT_DIR=<dir> [-DPLAN=<plan.json>] -P run_span_check.cmake")
endif()

file(MAKE_DIRECTORY "${OUT_DIR}")

set(nodes 16)
set(tasks 80)
set(extra_args)
if(DEFINED PLAN)
  # The checked-in fault plans target nodes of a paper-scale cluster; keep
  # the cluster big enough for the victim ids while staying ctest-fast.
  set(nodes 24)
  set(tasks 120)
  list(APPEND extra_args --fault-plan=${PLAN})
endif()

# run 1: serial; run 2: pooled; run 3: serial replay of run 1.
set(labels t1 t4 replay)
set(thread_counts 1 4 1)
foreach(i RANGE 2)
  list(GET labels ${i} label)
  list(GET thread_counts ${i} threads)
  execute_process(
    COMMAND "${CLI}" --scenario=single --nodes=${nodes} --tasks=${tasks} --method=both
            --seed=42 --threads=${threads} ${extra_args}
            --spans-out=${OUT_DIR}/spans_${label}.json
            --critical-path=${OUT_DIR}/critical_path_${label}.json
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "opass_cli --threads=${threads} (${label}) failed with exit code ${rc}")
  endif()
endforeach()

foreach(kind spans critical_path)
  foreach(other t4 replay)
    execute_process(
      COMMAND ${CMAKE_COMMAND} -E compare_files
              "${OUT_DIR}/${kind}_t1.json" "${OUT_DIR}/${kind}_${other}.json"
      RESULT_VARIABLE same)
    if(NOT same EQUAL 0)
      message(FATAL_ERROR "${kind} output differs between t1 and ${other} — "
                          "the span log broke byte-determinism")
    endif()
  endforeach()
endforeach()

message(STATUS "span and critical-path artifacts are byte-identical across threads and replay")
