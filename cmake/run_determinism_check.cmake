# Byte-determinism check for the observability outputs, run as a ctest entry
# (see examples/CMakeLists.txt). Invoked in script mode:
#
#   cmake -DCLI=<path-to-opass_cli> -DOUT_DIR=<scratch-dir> \
#         -P cmake/run_determinism_check.cmake
#
# Runs the CLI twice with an identical fixed-seed scenario, writing metrics
# and Chrome-trace files to different paths, then requires both pairs to be
# byte-identical. Any drift — map iteration order, uninitialised padding,
# locale-dependent number formatting — fails the test.
if(NOT DEFINED CLI OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR "usage: cmake -DCLI=<opass_cli> -DOUT_DIR=<dir> -P run_determinism_check.cmake")
endif()

file(MAKE_DIRECTORY "${OUT_DIR}")

foreach(run 1 2)
  execute_process(
    COMMAND "${CLI}" --scenario=single --nodes=16 --tasks=80 --method=both
            --seed=42 --metrics-out=${OUT_DIR}/metrics_${run}.json
            --trace-out=${OUT_DIR}/trace_${run}.json
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "opass_cli run ${run} failed with exit code ${rc}")
  endif()
endforeach()

foreach(kind metrics trace)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            "${OUT_DIR}/${kind}_1.json" "${OUT_DIR}/${kind}_2.json"
    RESULT_VARIABLE same)
  if(NOT same EQUAL 0)
    message(FATAL_ERROR "${kind} output differs between identical runs — "
                        "observability emission is not byte-deterministic")
  endif()
endforeach()

message(STATUS "metrics and trace outputs are byte-identical across runs")
