# Public-header self-containment gate.
#
# Every header under src/ must compile on its own — no hidden dependency on
# includes a lucky consumer happens to provide first. The gate generates one
# trivial TU per header (`#include "<header>"`) into the build tree and
# compiles them all as an object library that is part of the default build,
# so a non-self-contained header breaks `cmake --build` immediately.
#
# The generated TU is only rewritten when its content changes, so repeated
# configures do not trigger rebuilds.

function(opass_add_header_checks)
  file(GLOB_RECURSE _opass_public_headers CONFIGURE_DEPENDS
       "${CMAKE_SOURCE_DIR}/src/*.hpp")
  set(_tu_dir "${CMAKE_BINARY_DIR}/header_checks")
  set(_tus "")
  foreach(_header IN LISTS _opass_public_headers)
    file(RELATIVE_PATH _rel "${CMAKE_SOURCE_DIR}/src" "${_header}")
    string(REPLACE "/" "__" _stem "${_rel}")
    string(REGEX REPLACE "\\.hpp$" ".check.cpp" _stem "${_stem}")
    set(_tu "${_tu_dir}/${_stem}")
    set(_content "#include \"${_rel}\"  // self-containment check\n")
    set(_old "")
    if(EXISTS "${_tu}")
      file(READ "${_tu}" _old)
    endif()
    if(NOT _old STREQUAL _content)
      file(WRITE "${_tu}" "${_content}")
    endif()
    list(APPEND _tus "${_tu}")
  endforeach()

  add_library(opass_header_checks OBJECT ${_tus})
  target_include_directories(opass_header_checks PRIVATE "${CMAKE_SOURCE_DIR}/src")
endfunction()
