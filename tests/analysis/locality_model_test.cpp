#include "analysis/locality_model.hpp"

#include <gtest/gtest.h>

namespace opass::analysis {
namespace {

// The paper's Section III-A configuration: 32 GB dataset = 512 chunks,
// 3-way replication. Default mode (kRandomReplica) matches the printed
// Fig. 3 numbers.
LocalityModel paper_model(std::uint32_t m) { return {m, 3, 512}; }

LocalityModel co_located_model(std::uint32_t m) {
  return {m, 3, 512, LocalityMode::kCoLocated};
}

TEST(LocalityModel, LocalProbabilityByMode) {
  EXPECT_DOUBLE_EQ(co_located_model(64).local_probability(), 3.0 / 64.0);
  EXPECT_DOUBLE_EQ(paper_model(64).local_probability(), 1.0 / 64.0);
  EXPECT_DOUBLE_EQ(paper_model(512).local_probability(), 1.0 / 512.0);
}

TEST(LocalityModel, RejectsBadParameters) {
  EXPECT_THROW((LocalityModel{0, 3, 10}.local_probability()), std::invalid_argument);
  EXPECT_THROW((LocalityModel{4, 0, 10}.local_probability()), std::invalid_argument);
  EXPECT_THROW((LocalityModel{4, 5, 10}.local_probability()), std::invalid_argument);
}

TEST(LocalityModel, PaperTailValues) {
  // Paper Section III-A: P(X > 5) for m = 64/128/256 is 81.09 / 21.43 /
  // 1.64 per cent — these are Binomial(512, 1/m) tails, matched to ~0.1 pp.
  EXPECT_NEAR(paper_model(64).sf_local_reads(5), 0.8109, 2e-3);
  EXPECT_NEAR(paper_model(128).sf_local_reads(5), 0.2143, 2e-3);
  EXPECT_NEAR(paper_model(256).sf_local_reads(5), 0.0164, 2e-3);
  // m = 512: the paper prints 0.46 %, the distribution gives 0.059 % —
  // the one value in the list that does not line up under any of the
  // candidate models (documented in EXPERIMENTS.md). Assert the computed
  // value stays sub-1%, which preserves the paper's qualitative point.
  EXPECT_LT(paper_model(512).sf_local_reads(5), 0.01);
}

TEST(LocalityModel, PaperNineChunkClaim) {
  // "with a cluster size m = 128, the probability of reading more than 9
  // chunks locally is about 2%". The distribution gives 0.8% — the paper's
  // "about 2%" is loose, but the claim it supports ("almost all data will be
  // accessed remotely in a large cluster") only needs the tail to be small.
  EXPECT_LT(paper_model(128).sf_local_reads(9), 0.03);
  EXPECT_GT(paper_model(128).sf_local_reads(9), 0.001);
}

TEST(LocalityModel, ExpectedLocalReads) {
  EXPECT_DOUBLE_EQ(paper_model(64).expected_local_reads(), 8.0);
  EXPECT_DOUBLE_EQ(co_located_model(64).expected_local_reads(), 24.0);
  EXPECT_DOUBLE_EQ(paper_model(512).expected_local_reads(), 1.0);
}

TEST(LocalityModel, CdfSeriesMatchesPointwise) {
  const auto model = paper_model(128);
  const auto series = model.cdf_series(20);
  ASSERT_EQ(series.size(), 21u);
  for (std::uint64_t k = 0; k <= 20; ++k)
    EXPECT_NEAR(series[k], model.cdf_local_reads(k), 1e-12) << "k=" << k;
}

TEST(LocalityModel, LocalityDecaysWithClusterSize) {
  // The paper's headline: locality probability decays as the cluster grows,
  // in both modes.
  for (auto mode : {LocalityMode::kRandomReplica, LocalityMode::kCoLocated}) {
    double prev = 1.0;
    for (std::uint32_t m : {64u, 128u, 256u, 512u}) {
      LocalityModel model{m, 3, 512, mode};
      const double sf = model.sf_local_reads(5);
      EXPECT_LT(sf, prev);
      prev = sf;
    }
  }
}

TEST(LocalityModel, CoLocatedModeDominatesRandomReplica) {
  // Having a local replica is necessary for a local read: P(X > k) under
  // kCoLocated bounds kRandomReplica from above for every k.
  for (std::uint64_t k = 0; k <= 30; k += 5)
    EXPECT_GE(co_located_model(128).sf_local_reads(k),
              paper_model(128).sf_local_reads(k));
}

TEST(LocalityModel, CdfIsMonotone) {
  const auto series = paper_model(64).cdf_series(40);
  for (std::size_t i = 1; i < series.size(); ++i) EXPECT_GE(series[i], series[i - 1]);
}

}  // namespace
}  // namespace opass::analysis
