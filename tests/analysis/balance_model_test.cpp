#include "analysis/balance_model.hpp"

#include <gtest/gtest.h>

#include "analysis/binomial.hpp"
#include "common/rng.hpp"

namespace opass::analysis {
namespace {

// The paper's Section III-B configuration.
const BalanceModel kPaper{128, 3, 512};

TEST(BalanceModel, ChunksHeldIsBinomial) {
  for (std::uint64_t a : {0ull, 5ull, 12ull, 30ull})
    EXPECT_NEAR(kPaper.pmf_chunks_held(a), binomial_pmf(512, a, 3.0 / 128.0), 1e-15);
}

TEST(BalanceModel, CdfIsAProbability) {
  double prev = 0;
  for (std::uint64_t k = 0; k <= 30; ++k) {
    const double c = kPaper.cdf_chunks_served(k);
    EXPECT_GE(c, prev);   // monotone
    EXPECT_LE(c, 1.0);
    prev = c;
  }
  EXPECT_NEAR(kPaper.cdf_chunks_served(512), 1.0, 1e-9);
}

TEST(BalanceModel, CompoundEqualsDirectBinomial) {
  // The law-of-total-probability compound (Y ~ Bin(n, r/m), Z|Y=a ~
  // Bin(a, 1/r)) collapses to Z ~ Bin(n, 1/m) exactly, because the chunks
  // are independent. This is a strong whole-distribution identity.
  for (std::uint64_t k : {0ull, 1ull, 4ull, 8ull, 16ull})
    EXPECT_NEAR(kPaper.cdf_chunks_served(k), binomial_cdf(512, k, 1.0 / 128.0), 1e-9)
        << "k=" << k;
}

TEST(BalanceModel, PaperExpectedNodeCounts) {
  // Paper Section III-B: "the expected number of nodes serving at most 1
  // chunk is 512 x P(Z <= 1) = 11 while the expected number of nodes serving
  // more than 8 chunks is 512 x (1 - P(Z <= 8)) = 6".
  //
  // The printed multiplier 512 is a slip — there are only m = 128 nodes, and
  // 128 * P(Z <= 1) = 11.8 is what actually reproduces the quoted 11 (with
  // the 512 multiplier the value would be 47). The ">8" count comes out at
  // ~2.7 rather than 6 under the paper's own model; same order of magnitude,
  // and the qualitative claim (a few nodes serve >8x what ~a dozen idle nodes
  // serve) holds either way. EXPERIMENTS.md records the comparison.
  EXPECT_NEAR(kPaper.expected_nodes_serving_at_most(1), 11.8, 0.5);
  EXPECT_GT(kPaper.expected_nodes_serving_more_than(8), 1.0);
  EXPECT_LT(kPaper.expected_nodes_serving_more_than(8), 7.0);
}

TEST(BalanceModel, ExpectedServedIsNOverM) {
  EXPECT_DOUBLE_EQ(kPaper.expected_chunks_served(), 4.0);
}

TEST(BalanceModel, MeanOfZMatchesExpectation) {
  // E[Z] computed from the distribution must equal n/m.
  double mean = 0;
  double prev_cdf = 0;
  for (std::uint64_t k = 0; k <= 60; ++k) {
    const double cdf = kPaper.cdf_chunks_served(k);
    mean += static_cast<double>(k) * (cdf - prev_cdf);
    prev_cdf = cdf;
  }
  EXPECT_NEAR(mean, 4.0, 0.01);
}

TEST(BalanceModel, MonteCarloAgreement) {
  // Property check: simulate the generative story (random replica placement,
  // uniformly chosen serving replica) and compare the empirical CDF.
  Rng rng(1234);
  const std::uint32_t m = 32, r = 3;
  const std::uint64_t n = 128;
  const int trials = 400;
  std::vector<std::uint64_t> served_le_k(3, 0);  // k = 1, 4, 8
  const std::uint64_t ks[3] = {1, 4, 8};

  for (int trial = 0; trial < trials; ++trial) {
    std::vector<std::uint32_t> served(m, 0);
    for (std::uint64_t c = 0; c < n; ++c) {
      const auto replicas = rng.sample_without_replacement(m, r);
      ++served[replicas[rng.uniform(r)]];
    }
    for (int i = 0; i < 3; ++i)
      for (std::uint32_t node = 0; node < m; ++node)
        if (served[node] <= ks[i]) ++served_le_k[i];
  }

  const BalanceModel model{m, r, n};
  for (int i = 0; i < 3; ++i) {
    const double empirical =
        static_cast<double>(served_le_k[i]) / (static_cast<double>(trials) * m);
    EXPECT_NEAR(empirical, model.cdf_chunks_served(ks[i]), 0.03) << "k=" << ks[i];
  }
}

TEST(BalanceModel, RejectsBadParameters) {
  EXPECT_THROW((BalanceModel{0, 3, 10}.pmf_chunks_held(0)), std::invalid_argument);
  EXPECT_THROW((BalanceModel{4, 9, 10}.pmf_chunks_held(0)), std::invalid_argument);
}

}  // namespace
}  // namespace opass::analysis
