#include "analysis/binomial.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace opass::analysis {
namespace {

TEST(LogChoose, SmallValues) {
  EXPECT_NEAR(std::exp(log_choose(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(log_choose(10, 0)), 1.0, 1e-9);
  EXPECT_NEAR(std::exp(log_choose(10, 10)), 1.0, 1e-9);
  EXPECT_NEAR(std::exp(log_choose(52, 5)), 2598960.0, 1e-3);
}

TEST(LogChoose, Symmetry) {
  EXPECT_NEAR(log_choose(100, 30), log_choose(100, 70), 1e-9);
}

TEST(LogChoose, RejectsKGreaterThanN) {
  EXPECT_THROW(log_choose(3, 4), std::invalid_argument);
}

TEST(BinomialPmf, FairCoin) {
  EXPECT_NEAR(binomial_pmf(4, 2, 0.5), 6.0 / 16.0, 1e-12);
  EXPECT_NEAR(binomial_pmf(4, 0, 0.5), 1.0 / 16.0, 1e-12);
}

TEST(BinomialPmf, DegenerateP) {
  EXPECT_EQ(binomial_pmf(5, 0, 0.0), 1.0);
  EXPECT_EQ(binomial_pmf(5, 1, 0.0), 0.0);
  EXPECT_EQ(binomial_pmf(5, 5, 1.0), 1.0);
  EXPECT_EQ(binomial_pmf(5, 4, 1.0), 0.0);
}

TEST(BinomialPmf, KAboveNIsZero) { EXPECT_EQ(binomial_pmf(3, 4, 0.5), 0.0); }

TEST(BinomialPmf, RejectsBadProbability) {
  EXPECT_THROW(binomial_pmf(3, 1, -0.1), std::invalid_argument);
  EXPECT_THROW(binomial_pmf(3, 1, 1.1), std::invalid_argument);
}

TEST(BinomialPmf, SumsToOne) {
  for (double p : {0.01, 0.3, 0.5, 0.9}) {
    double sum = 0;
    for (std::uint64_t k = 0; k <= 50; ++k) sum += binomial_pmf(50, k, p);
    EXPECT_NEAR(sum, 1.0, 1e-9) << "p=" << p;
  }
}

TEST(BinomialPmf, StableForLargeN) {
  // Would overflow naive factorials: n = 5000.
  const double v = binomial_pmf(5000, 2500, 0.5);
  EXPECT_GT(v, 0.0);
  EXPECT_LT(v, 1.0);
  // Stirling: peak pmf ~ 1/sqrt(pi*n/2)
  EXPECT_NEAR(v, 1.0 / std::sqrt(3.14159265 * 2500.0), 1e-4);
}

TEST(BinomialCdf, MatchesPmfSum) {
  double acc = 0;
  for (std::uint64_t k = 0; k <= 7; ++k) {
    acc += binomial_pmf(20, k, 0.3);
    EXPECT_NEAR(binomial_cdf(20, k, 0.3), acc, 1e-12);
  }
}

TEST(BinomialCdf, FullRangeIsOne) {
  EXPECT_EQ(binomial_cdf(10, 10, 0.42), 1.0);
  EXPECT_EQ(binomial_cdf(10, 99, 0.42), 1.0);
}

TEST(BinomialSf, ComplementsCdf) {
  for (std::uint64_t k = 0; k < 20; ++k) {
    EXPECT_NEAR(binomial_sf(20, k, 0.3) + binomial_cdf(20, k, 0.3), 1.0, 1e-9);
  }
}

TEST(BinomialSf, TailPrecision) {
  // Deep tail keeps relative precision because it sums the tail directly.
  const double sf = binomial_sf(512, 50, 3.0 / 512.0);
  EXPECT_GT(sf, 0.0);
  EXPECT_LT(sf, 1e-30);
}

TEST(BinomialCdf, MonotoneInK) {
  double prev = -1;
  for (std::uint64_t k = 0; k <= 30; ++k) {
    const double c = binomial_cdf(30, k, 0.4);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

}  // namespace
}  // namespace opass::analysis
