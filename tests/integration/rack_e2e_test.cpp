// End-to-end rack-aware execution on an oversubscribed multi-rack cluster.
#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "opass/opass.hpp"
#include "runtime/executor.hpp"
#include "runtime/task_source.hpp"
#include "workload/dataset.hpp"

namespace opass {
namespace {

TEST(RackEndToEnd, RackAwareMatcherCutsOffRackTraffic) {
  const std::uint32_t nodes = 16, racks = 4;
  const auto topo = dfs::Topology::uniform_racks(nodes, racks);
  dfs::NameNode nn(topo, /*replication=*/1, kDefaultChunkSize);
  dfs::RandomPlacement policy;
  Rng rng(41);
  const auto tasks = workload::make_single_data_workload(nn, 32, policy, rng);
  const auto placement = core::one_process_per_node(nn);

  sim::ClusterParams params;
  params.rack_uplink_bandwidth = 2.0 * params.nic_bandwidth;

  auto off_rack_reads = [&](const runtime::Assignment& a) {
    sim::Cluster cluster(topo, params);
    runtime::StaticAssignmentSource source(a);
    Rng exec_rng(13);
    const auto r = runtime::execute(cluster, nn, tasks, source, exec_rng);
    std::uint32_t off = 0;
    for (const auto& rec : r.trace.records())
      if (cluster.rack_of(rec.reader_node) != cluster.rack_of(rec.serving_node)) ++off;
    return std::pair{off, r.makespan};
  };

  Rng r1(5), r2(5);
  const auto node_only = core::assign_single_data(nn, tasks, placement, r1);
  const auto rack_aware = core::assign_single_data_rack_aware(nn, tasks, placement, r2);

  const auto [off_node, mk_node] = off_rack_reads(node_only.assignment);
  const auto [off_rack, mk_rack] = off_rack_reads(rack_aware.assignment);
  EXPECT_LE(off_rack, off_node);
  // Node-local matches are identical; the rack phase only adds.
  EXPECT_EQ(rack_aware.node_local, node_only.locally_matched);
  // Everything completes either way.
  EXPECT_GT(mk_node, 0.0);
  EXPECT_GT(mk_rack, 0.0);
}

TEST(RackEndToEnd, RackedAndFlatClustersAgreeWhenUplinksAreWide) {
  // With effectively infinite uplinks and zero cross-rack latency, the rack
  // model must reproduce flat-network timings exactly.
  const std::uint32_t nodes = 8;
  dfs::NameNode nn(dfs::Topology::uniform_racks(nodes, 2), 2, kDefaultChunkSize);
  dfs::RandomPlacement policy;
  Rng rng(43);
  const auto tasks = workload::make_single_data_workload(nn, 24, policy, rng);

  sim::ClusterParams flat;
  flat.cross_rack_latency = 0.0;
  sim::ClusterParams wide = flat;
  wide.rack_uplink_bandwidth = 1e12;

  auto io_times = [&](const dfs::Topology& topo, const sim::ClusterParams& p) {
    sim::Cluster cluster(topo, p);
    runtime::StaticAssignmentSource source(runtime::rank_interval_assignment(24, nodes));
    Rng exec_rng(17);
    return runtime::execute(cluster, nn, tasks, source, exec_rng).trace.io_times();
  };

  const auto flat_times = io_times(dfs::Topology::single_rack(nodes), flat);
  const auto racked_times = io_times(dfs::Topology::uniform_racks(nodes, 2), wide);
  ASSERT_EQ(flat_times.size(), racked_times.size());
  for (std::size_t i = 0; i < flat_times.size(); ++i)
    EXPECT_NEAR(flat_times[i], racked_times[i], 1e-6) << "op " << i;
}

}  // namespace
}  // namespace opass
