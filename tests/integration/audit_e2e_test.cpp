// End-to-end gate: every plan the library's assigners produce — across
// placement policies, seeds and scenario shapes — must pass the static
// auditor before it would be handed to the simulator or broadcast via
// plan_io. This is the integration hook ISSUE 1 asks for: the auditor runs
// against real optimizer output, not just hand-built fixtures.
#include <gtest/gtest.h>

#include "opass/multi_data.hpp"
#include "opass/plan_audit.hpp"
#include "opass/single_data.hpp"
#include "runtime/static_partitioner.hpp"
#include "workload/dataset.hpp"
#include "workload/multi_input.hpp"

namespace opass {
namespace {

TEST(AuditE2E, SingleDataPlansAuditCleanAcrossSeeds) {
  for (const auto kind : {dfs::PlacementKind::kRandom, dfs::PlacementKind::kHdfsDefault,
                          dfs::PlacementKind::kRoundRobin}) {
    for (std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
      dfs::NameNode nn(dfs::Topology::single_rack(16), 3, kDefaultChunkSize);
      auto policy = dfs::make_placement(kind);
      Rng rng(seed);
      auto tasks = workload::make_single_data_workload(nn, 160, *policy, rng);
      const auto placement = core::one_process_per_node(nn);

      Rng assign_rng(seed + 1);
      const auto plan = core::assign_single_data(nn, tasks, placement, assign_rng);

      core::AuditOptions opts;
      opts.enforce_capacity = true;  // flow network must respect TotalSize/m
      const auto report = core::audit_plan(nn, tasks, plan.assignment, placement, opts);
      EXPECT_TRUE(report.ok()) << "placement=" << dfs::placement_kind_name(kind)
                               << " seed=" << seed << '\n'
                               << report.to_string();
    }
  }
}

TEST(AuditE2E, MultiDataPlansAuditCleanAcrossSeeds) {
  for (std::uint64_t seed : {3ULL, 11ULL}) {
    dfs::NameNode nn(dfs::Topology::single_rack(8), 3, kDefaultChunkSize);
    auto policy = dfs::make_placement(dfs::PlacementKind::kRandom);
    Rng rng(seed);
    auto tasks = workload::make_multi_input_workload(nn, 64, *policy, rng);
    const auto placement = core::one_process_per_node(nn);

    const auto plan = core::assign_multi_data(nn, tasks, placement);
    const auto report = core::audit_plan(nn, tasks, plan.assignment, placement);
    EXPECT_TRUE(report.ok()) << "seed=" << seed << '\n' << report.to_string();

    // Algorithm 1's matched bytes are exactly the co-located bytes the
    // auditor recounts — the two modules must agree.
    ASSERT_TRUE(report.stats.has_value());
    EXPECT_EQ(report.stats->local_bytes, plan.matched_bytes);
    EXPECT_EQ(report.stats->total_bytes, plan.total_bytes);
  }
}

TEST(AuditE2E, BaselinePlanAuditsCleanWithoutCapacityGate) {
  dfs::NameNode nn(dfs::Topology::single_rack(8), 3, kDefaultChunkSize);
  auto policy = dfs::make_placement(dfs::PlacementKind::kRandom);
  Rng rng(5);
  auto tasks = workload::make_single_data_workload(nn, 80, *policy, rng);
  const auto placement = core::one_process_per_node(nn);
  const auto assignment = runtime::rank_interval_assignment(
      static_cast<std::uint32_t>(tasks.size()), static_cast<std::uint32_t>(placement.size()));
  core::AuditOptions opts;
  opts.enforce_capacity = true;  // rank intervals are equal shares too
  const auto report = core::audit_plan(nn, tasks, assignment, placement, opts);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

}  // namespace
}  // namespace opass
