// End-to-end integration: NameNode + workload + assigner + executor +
// simulator, asserting the paper's qualitative results hold on small
// instances (fast enough for CI).
#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "opass/opass.hpp"
#include "runtime/executor.hpp"
#include "runtime/task_source.hpp"
#include "workload/dataset.hpp"
#include "workload/multi_input.hpp"

namespace opass {
namespace {

struct EndToEnd : ::testing::Test {
  static constexpr std::uint32_t kNodes = 16;
  EndToEnd()
      : nn(dfs::Topology::single_rack(kNodes), 3, kDefaultChunkSize),
        placement_rng(11),
        exec_rng(13) {}

  runtime::ExecutionResult run(const std::vector<runtime::Task>& tasks,
                               const runtime::Assignment& assignment) {
    sim::Cluster cluster(kNodes);
    runtime::StaticAssignmentSource source(assignment);
    return runtime::execute(cluster, nn, tasks, source, exec_rng);
  }

  dfs::NameNode nn;
  dfs::RandomPlacement policy;
  Rng placement_rng, exec_rng;
};

TEST_F(EndToEnd, OpassBeatsBaselineOnIoTimeAndBalance) {
  const auto tasks = workload::make_single_data_workload(nn, 160, policy, placement_rng);
  const auto placement = core::one_process_per_node(nn);

  const auto base =
      run(tasks, runtime::rank_interval_assignment(160, kNodes));
  Rng assign_rng(7);
  const auto plan = core::assign_single_data(nn, tasks, placement, assign_rng);
  const auto opass = run(tasks, plan.assignment);

  // Locality: baseline near r/m, Opass near 1.
  EXPECT_LT(base.trace.local_fraction(), 0.5);
  EXPECT_GT(opass.trace.local_fraction(), 0.95);

  // I/O time: Opass strictly faster on average and at the tail.
  const auto bio = summarize(base.trace.io_times());
  const auto oio = summarize(opass.trace.io_times());
  EXPECT_LT(oio.mean * 1.5, bio.mean);
  EXPECT_LT(oio.max, bio.max);

  // Makespan: the paper's bottom line.
  EXPECT_LT(opass.makespan, base.makespan);

  // Balance: Jain index of served bytes close to 1 under Opass.
  std::vector<double> bs, os;
  for (auto b : base.trace.bytes_served_per_node(kNodes)) bs.push_back(double(b));
  for (auto b : opass.trace.bytes_served_per_node(kNodes)) os.push_back(double(b));
  EXPECT_GT(jain_fairness(os), jain_fairness(bs));
  EXPECT_GT(jain_fairness(os), 0.99);
}

TEST_F(EndToEnd, MultiDataOpassImprovesButLessThanSingle) {
  const auto tasks = workload::make_multi_input_workload(nn, 64, policy, placement_rng);
  const auto placement = core::one_process_per_node(nn);

  const auto base = run(tasks, runtime::rank_interval_assignment(64, kNodes));
  const auto plan = core::assign_multi_data(nn, tasks, placement);
  const auto opass = run(tasks, plan.assignment);

  const double base_local = base.trace.local_fraction();
  const double opass_local = opass.trace.local_fraction();
  EXPECT_GT(opass_local, base_local);
  // "part of data must be read remotely": not full locality.
  EXPECT_LT(opass_local, 1.0);
  const auto bio = summarize(base.trace.io_times());
  const auto oio = summarize(opass.trace.io_times());
  EXPECT_LT(oio.mean, bio.mean);
}

TEST_F(EndToEnd, DynamicOpassBeatsRandomMasterWorker) {
  const auto tasks = workload::make_single_data_workload(nn, 160, policy, placement_rng);
  const auto placement = core::one_process_per_node(nn);

  sim::Cluster c1(kNodes);
  Rng mw_rng(3);
  runtime::MasterWorkerSource mw(160, mw_rng);
  const auto base = runtime::execute(c1, nn, tasks, mw, exec_rng);

  Rng assign_rng(5);
  const auto plan = core::assign_single_data(nn, tasks, placement, assign_rng);
  sim::Cluster c2(kNodes);
  core::OpassDynamicSource dyn(plan.assignment, nn, tasks, placement);
  const auto opass = runtime::execute(c2, nn, tasks, dyn, exec_rng);

  EXPECT_EQ(base.tasks_executed, 160u);
  EXPECT_EQ(opass.tasks_executed, 160u);
  EXPECT_GT(opass.trace.local_fraction(), base.trace.local_fraction());
  EXPECT_LT(summarize(opass.trace.io_times()).mean,
            summarize(base.trace.io_times()).mean);
}

TEST_F(EndToEnd, ObservedLocalityMatchesBinomialModel) {
  // The executor's baseline locality should agree with Section III-A:
  // E[local fraction] = r/m.
  const auto tasks = workload::make_single_data_workload(nn, 320, policy, placement_rng);
  const auto base = run(tasks, runtime::rank_interval_assignment(320, kNodes));
  EXPECT_NEAR(base.trace.local_fraction(), 3.0 / kNodes, 0.08);
}

TEST_F(EndToEnd, EveryByteServedByAReplicaHolder) {
  const auto tasks = workload::make_single_data_workload(nn, 64, policy, placement_rng);
  const auto base = run(tasks, runtime::rank_interval_assignment(64, kNodes));
  for (const auto& r : base.trace.records())
    EXPECT_TRUE(nn.chunk(r.chunk).has_replica_on(r.serving_node));
}

}  // namespace
}  // namespace opass
