// End-to-end thread-count determinism (DESIGN.md §12): an exp-harness run
// with ExperimentConfig::threads > 1 must produce byte-identical results to
// the serial run — every I/O time, trace record, deterministic metric and
// fault-recovery counter — across every scenario, including a crash-fault
// run where recovery traffic, re-planning and aborted reads all ride the
// pooled simulator.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "obs/metrics_io.hpp"

namespace opass::exp {
namespace {

ExperimentConfig small_cfg(std::uint32_t threads) {
  ExperimentConfig cfg;
  cfg.nodes = 16;
  cfg.seed = 42;
  cfg.threads = threads;
  return cfg;
}

/// Exact comparison of two run outputs (EXPECT_EQ on doubles on purpose:
/// the contract is byte-identity, not closeness).
void expect_identical(const RunOutput& a, const RunOutput& b) {
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.tasks_executed, b.tasks_executed);
  EXPECT_EQ(a.local_fraction, b.local_fraction);
  EXPECT_EQ(a.planned_local_fraction, b.planned_local_fraction);
  EXPECT_EQ(a.io_times, b.io_times);
  EXPECT_EQ(a.served_mb, b.served_mb);
  EXPECT_EQ(a.io.count, b.io.count);
  EXPECT_EQ(a.io.mean, b.io.mean);
  EXPECT_EQ(a.io.max, b.io.max);
  EXPECT_EQ(a.io.sum, b.io.sum);
}

void expect_identical_raw(const runtime::ExecutionResult& a,
                          const runtime::ExecutionResult& b) {
  EXPECT_EQ(a.makespan, b.makespan);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  const auto& ra = a.trace.records();
  const auto& rb = b.trace.records();
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].serving_node, rb[i].serving_node) << "record " << i;
    EXPECT_EQ(ra[i].issue_time, rb[i].issue_time) << "record " << i;
    EXPECT_EQ(ra[i].end_time, rb[i].end_time) << "record " << i;
  }
}

TEST(ParallelDeterminism, SingleDataRunMatchesSerialBytes) {
  for (Method method : {Method::kBaseline, Method::kOpass}) {
    std::string serial_json;
    RunOutput serial;
    runtime::ExecutionResult serial_raw;
    {
      auto cfg = small_cfg(1);
      obs::MetricsRegistry metrics;
      cfg.metrics = &metrics;
      cfg.raw = &serial_raw;
      serial = run_single_data(cfg, 80, method);
      serial_json = obs::to_json(metrics);  // deterministic metrics only
    }
    for (std::uint32_t threads : {2u, 4u}) {
      auto cfg = small_cfg(threads);
      obs::MetricsRegistry metrics;
      runtime::ExecutionResult raw;
      cfg.metrics = &metrics;
      cfg.raw = &raw;
      const auto out = run_single_data(cfg, 80, method);
      expect_identical(out, serial);
      expect_identical_raw(raw, serial_raw);
      EXPECT_EQ(obs::to_json(metrics), serial_json)
          << method_name(method) << " threads=" << threads;
    }
  }
}

TEST(ParallelDeterminism, MultiDataRunMatchesSerialBytes) {
  auto run = [](std::uint32_t threads) {
    return run_multi_data(small_cfg(threads), 60, Method::kOpass);
  };
  const auto serial = run(1);
  expect_identical(run(4), serial);
}

TEST(ParallelDeterminism, CrashFaultRunMatchesSerialBytes) {
  // The hardest path: a mid-run crash aborts pooled in-flight reads, the
  // dynamic scheduler re-plans on the pooled Dinic, and re-replication
  // traffic re-levels through the pooled simulator.
  sim::FaultPlan plan;
  sim::FaultEvent crash;
  crash.at = 2.0;
  crash.kind = sim::FaultKind::kCrash;
  crash.node = 5;
  plan.events.push_back(crash);

  auto run = [&](std::uint32_t threads, sim::FaultStats& stats,
                 runtime::ExecutionResult& raw) {
    auto cfg = small_cfg(threads);
    cfg.faults = &plan;
    cfg.fault_stats = &stats;
    cfg.raw = &raw;
    return run_dynamic(cfg, 90, Method::kOpass);
  };
  sim::FaultStats serial_stats, pooled_stats;
  runtime::ExecutionResult serial_raw, pooled_raw;
  const auto serial = run(1, serial_stats, serial_raw);
  const auto pooled = run(4, pooled_stats, pooled_raw);

  expect_identical(pooled, serial);
  expect_identical_raw(pooled_raw, serial_raw);
  EXPECT_EQ(pooled_stats.crashes, serial_stats.crashes);
  EXPECT_EQ(pooled_stats.recoveries, serial_stats.recoveries);
  EXPECT_EQ(pooled_stats.lost_chunks, serial_stats.lost_chunks);
  EXPECT_EQ(pooled_stats.rereplicated_bytes, serial_stats.rereplicated_bytes);
}

TEST(ParallelDeterminism, ParaViewStepsMatchSerialBytes) {
  auto run = [](std::uint32_t threads) {
    return run_paraview(small_cfg(threads), Method::kOpass);
  };
  const auto serial = run(1);
  const auto pooled = run(4);
  expect_identical(pooled.run, serial.run);
  EXPECT_EQ(pooled.step_times, serial.step_times);
  EXPECT_EQ(pooled.total_time, serial.total_time);
}

TEST(ParallelDeterminism, IterativeEpochsMatchSerialBytes) {
  auto run = [](std::uint32_t threads) {
    return run_iterative(small_cfg(threads), 64, 3, Method::kOpass, 0.05);
  };
  const auto serial = run(1);
  const auto pooled = run(4);
  expect_identical(pooled.run, serial.run);
  EXPECT_EQ(pooled.epoch_times, serial.epoch_times);
  EXPECT_EQ(pooled.total_time, serial.total_time);
}

}  // namespace
}  // namespace opass::exp
