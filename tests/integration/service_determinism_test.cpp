// The PlannerService determinism contract, end to end: replaying the same
// job-arrival trace with the same seed must reproduce every assignment,
// counter, and exported metric byte for byte. This is the ctest gate behind
// DESIGN.md §10's "same trace + same seed => byte-identical" promise.
#include <gtest/gtest.h>

#include <string>

#include "exp/service_trace.hpp"
#include "obs/metrics_io.hpp"

namespace opass {
namespace {

const char* const kTrace =
    "# arrival tenant weight tasks\n"
    "0.0 0 1.0 24\n"
    "0.0 1 2.0 16\n"
    "0.4 0 1.0 8\n"
    "1.5 2 1.0 12\n"
    "1.6 1 2.0 20\n"
    "4.0 0 1.0 4\n";

exp::ServiceTraceConfig config(obs::MetricsRegistry* metrics) {
  exp::ServiceTraceConfig cfg;
  cfg.nodes = 24;
  cfg.replication = 2;
  cfg.seed = 1234;
  cfg.batch_window = 0.5;
  cfg.metrics = metrics;
  return cfg;
}

TEST(ServiceDeterminism, SameTraceAndSeedReplayByteIdentical) {
  const auto jobs = exp::parse_service_trace(kTrace);

  obs::MetricsRegistry m1, m2;
  const auto first = exp::replay_service_trace(config(&m1), jobs);
  const auto second = exp::replay_service_trace(config(&m2), jobs);

  // The rendered assignment listing is the byte-identity witness.
  EXPECT_EQ(first.rendered, second.rendered);
  EXPECT_FALSE(first.rendered.empty());

  // Counters and the exported metrics must agree exactly too.
  EXPECT_EQ(first.counters.jobs_planned, second.counters.jobs_planned);
  EXPECT_EQ(first.counters.locally_matched, second.counters.locally_matched);
  EXPECT_EQ(first.counters.randomly_filled, second.counters.randomly_filled);
  EXPECT_EQ(first.local_byte_fraction, second.local_byte_fraction);
  EXPECT_EQ(obs::to_json(m1), obs::to_json(m2));
}

TEST(ServiceDeterminism, DifferentSeedStillPlansEveryTask) {
  const auto jobs = exp::parse_service_trace(kTrace);
  auto cfg = config(nullptr);
  cfg.seed = 99;
  const auto out = exp::replay_service_trace(cfg, jobs);
  EXPECT_EQ(out.counters.jobs_planned, jobs.size());
  EXPECT_EQ(out.counters.tasks_planned, 84u);
  EXPECT_GT(out.local_byte_fraction, 0.5);  // replication 2 on 24 nodes
}

TEST(ServiceDeterminism, TraceParserRejectsMalformedLines) {
  EXPECT_THROW(exp::parse_service_trace("0.0 0 1.0\n"), std::invalid_argument);
  EXPECT_THROW(exp::parse_service_trace("0.0 0 1.0 8 9\n"), std::invalid_argument);
  EXPECT_THROW(exp::parse_service_trace("-1.0 0 1.0 8\n"), std::invalid_argument);
  EXPECT_THROW(exp::parse_service_trace("0.0 0 0.0 8\n"), std::invalid_argument);
  EXPECT_THROW(exp::load_service_trace("/nonexistent/trace"), std::invalid_argument);
  EXPECT_TRUE(exp::parse_service_trace("# only a comment\n\n").empty());
}

}  // namespace
}  // namespace opass
