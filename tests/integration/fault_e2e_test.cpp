// Fault-injection end to end through the exp harness (DESIGN.md §11):
// exactly-once completion across crash + reassignment, re-replication byte
// accounting against the planned layout, straggler-threshold detection, and
// the dynamic scheduler's membership-driven re-plan.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "exp/experiment.hpp"
#include "obs/analytics.hpp"
#include "opass/plan_audit.hpp"

namespace opass::exp {
namespace {

ExperimentConfig small_cfg() {
  ExperimentConfig cfg;
  cfg.nodes = 16;
  cfg.seed = 42;
  return cfg;
}

sim::FaultEvent make_event(Seconds at, sim::FaultKind kind, dfs::NodeId node) {
  sim::FaultEvent ev;
  ev.at = at;
  ev.kind = kind;
  ev.node = node;
  return ev;
}

std::vector<runtime::TaskId> executed_ids(const runtime::ExecutionResult& raw) {
  std::vector<runtime::TaskId> ids;
  ids.reserve(raw.task_spans.size());
  for (const auto& span : raw.task_spans) ids.push_back(span.task);
  return ids;
}

TEST(FaultE2E, CrashedStaticRunCompletesExactlyOnce) {
  auto cfg = small_cfg();
  sim::FaultPlan plan;
  plan.events.push_back(make_event(2.0, sim::FaultKind::kCrash, 5));
  sim::FaultStats stats;
  runtime::ExecutionResult raw;
  cfg.faults = &plan;
  cfg.fault_stats = &stats;
  cfg.raw = &raw;

  const auto out = run_single_data(cfg, 80, Method::kOpass);
  EXPECT_EQ(out.tasks_executed, 80u);
  EXPECT_EQ(stats.crashes, 1u);
  EXPECT_EQ(stats.recoveries, 1u);
  EXPECT_EQ(stats.lost_chunks, 0u);
  // The exactly-once contract survives the crash: every task ran once.
  const auto report = core::audit_completion(80, executed_ids(raw));
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(FaultE2E, ReReplicationBytesMatchThePlannedLayout) {
  auto cfg = small_cfg();
  // plan_single_data materializes the same seeded namespace the run builds,
  // so the victim's planned chunk inventory predicts the recovery traffic.
  const auto planned = plan_single_data(cfg, 80, Method::kOpass);
  Bytes expected = 0;
  for (const dfs::ChunkId c : planned.nn.chunks_on_node(5))
    expected += planned.nn.chunk(c).size;
  ASSERT_GT(expected, 0u);

  sim::FaultPlan plan;
  plan.events.push_back(make_event(2.0, sim::FaultKind::kCrash, 5));
  sim::FaultStats stats;
  cfg.faults = &plan;
  cfg.fault_stats = &stats;
  run_single_data(cfg, 80, Method::kOpass);
  EXPECT_EQ(stats.rereplicated_bytes, expected);
  EXPECT_EQ(stats.replicas_copied, planned.nn.chunks_on_node(5).size());
}

TEST(FaultE2E, StragglerDetectionRespectsTheThreshold) {
  // Deep straggler (0.2x): the slow node's serve tail must clear the
  // lag_factor * p90 bar; a mild one (0.9x) must not.
  for (const double factor : {0.2, 0.9}) {
    auto cfg = small_cfg();
    sim::FaultPlan plan;
    auto slow = make_event(1.0, sim::FaultKind::kSlow, 3);
    slow.factor = factor;
    plan.events.push_back(slow);
    runtime::ExecutionResult raw;
    cfg.faults = &plan;
    cfg.raw = &raw;
    run_single_data(cfg, 160, Method::kOpass);

    const auto analytics = obs::analyze_execution(raw, cfg.nodes);
    bool flagged = false;
    for (const auto& s : analytics.straggler_nodes) flagged |= (s.id == 3);
    EXPECT_EQ(flagged, factor < 0.5) << "factor " << factor;
  }
}

TEST(FaultE2E, DynamicSchedulerReplansAroundACrash) {
  auto cfg = small_cfg();
  sim::FaultPlan plan;
  plan.events.push_back(make_event(2.0, sim::FaultKind::kCrash, 5));
  sim::FaultStats stats;
  runtime::ExecutionResult raw;
  cfg.faults = &plan;
  cfg.fault_stats = &stats;
  cfg.raw = &raw;

  const auto out = run_dynamic(cfg, 80, Method::kOpass);
  EXPECT_EQ(out.tasks_executed, 80u);
  EXPECT_EQ(stats.crashes, 1u);
  const auto report = core::audit_completion(80, executed_ids(raw));
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(FaultE2E, ChurnRunStaysDeterministic) {
  auto cfg = small_cfg();
  cfg.replication = 2;
  sim::FaultPlan plan;
  plan.events.push_back(make_event(2.0, sim::FaultKind::kJoin, dfs::kInvalidNode));
  auto rebalance = make_event(4.0, sim::FaultKind::kRebalance, dfs::kInvalidNode);
  rebalance.tolerance = 2;
  plan.events.push_back(rebalance);
  plan.events.push_back(make_event(8.0, sim::FaultKind::kDecommission, 2));

  auto run = [&] {
    sim::FaultStats stats;
    ExperimentConfig c = cfg;
    c.faults = &plan;
    c.fault_stats = &stats;
    const auto out = run_single_data(c, 80, Method::kOpass);
    return std::pair<Seconds, Bytes>(out.makespan, stats.rereplicated_bytes);
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first, second);
  EXPECT_GT(first.second, 0u);
}

}  // namespace
}  // namespace opass::exp
