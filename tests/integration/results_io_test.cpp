#include "exp/results_io.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

namespace opass::exp {
namespace {

Table demo_table() {
  Table t({"a", "b"});
  t.add_row({"1", "x,y"});
  return t;
}

TEST(ResultsIo, NoopWithoutEnvVar) {
  ::unsetenv("OPASS_RESULTS_DIR");
  EXPECT_FALSE(maybe_write_csv("demo", demo_table()));
}

TEST(ResultsIo, WritesCsvWhenEnvSet) {
  const std::string dir = ::testing::TempDir() + "opass_results_io_test";
  std::filesystem::remove_all(dir);
  ::setenv("OPASS_RESULTS_DIR", dir.c_str(), 1);
  EXPECT_TRUE(maybe_write_csv("demo", demo_table()));
  ::unsetenv("OPASS_RESULTS_DIR");

  std::ifstream in(dir + "/demo.csv");
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,\"x,y\"");
  std::filesystem::remove_all(dir);
}

TEST(ResultsIo, RejectsPathyNames) {
  ::setenv("OPASS_RESULTS_DIR", ::testing::TempDir().c_str(), 1);
  EXPECT_THROW(maybe_write_csv("a/b", demo_table()), std::invalid_argument);
  EXPECT_THROW(maybe_write_csv("", demo_table()), std::invalid_argument);
  ::unsetenv("OPASS_RESULTS_DIR");
}

TEST(ResultsIo, EmptyEnvMeansDisabled) {
  ::setenv("OPASS_RESULTS_DIR", "", 1);
  EXPECT_FALSE(maybe_write_csv("demo", demo_table()));
  ::unsetenv("OPASS_RESULTS_DIR");
}

}  // namespace
}  // namespace opass::exp
