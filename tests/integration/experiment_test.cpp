// Integration tests of the exp harness — the code every bench binary uses.
#include "exp/experiment.hpp"

#include <gtest/gtest.h>

namespace opass::exp {
namespace {

ExperimentConfig small_cfg() {
  ExperimentConfig cfg;
  cfg.nodes = 16;
  cfg.seed = 21;
  return cfg;
}

TEST(Experiment, SingleDataBothMethodsRun) {
  const auto cfg = small_cfg();
  const auto base = run_single_data(cfg, 160, Method::kBaseline);
  const auto opass = run_single_data(cfg, 160, Method::kOpass);
  EXPECT_EQ(base.tasks_executed, 160u);
  EXPECT_EQ(opass.tasks_executed, 160u);
  EXPECT_EQ(base.served_mb.size(), 16u);
  EXPECT_EQ(base.io_times.size(), 160u);
  EXPECT_LT(opass.io.mean, base.io.mean);
  EXPECT_GT(opass.planned_local_fraction, 0.95);
}

TEST(Experiment, SingleDataSameLayoutAcrossMethods) {
  // Both methods see identical data placement (seeded stream separation):
  // total served bytes equal and equal per-method byte totals.
  const auto cfg = small_cfg();
  const auto base = run_single_data(cfg, 80, Method::kBaseline);
  const auto opass = run_single_data(cfg, 80, Method::kOpass);
  double b = 0, o = 0;
  for (double v : base.served_mb) b += v;
  for (double v : opass.served_mb) o += v;
  EXPECT_DOUBLE_EQ(b, o);
  EXPECT_DOUBLE_EQ(b, 80.0 * 64.0);
}

TEST(Experiment, SingleDataDeterministicForSeed) {
  const auto cfg = small_cfg();
  const auto a = run_single_data(cfg, 80, Method::kBaseline);
  const auto b = run_single_data(cfg, 80, Method::kBaseline);
  EXPECT_EQ(a.io_times, b.io_times);
  EXPECT_EQ(a.served_mb, b.served_mb);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

TEST(Experiment, SingleDataSeedChangesOutcome) {
  auto cfg = small_cfg();
  const auto a = run_single_data(cfg, 80, Method::kBaseline);
  cfg.seed = 99;
  const auto b = run_single_data(cfg, 80, Method::kBaseline);
  EXPECT_NE(a.io_times, b.io_times);
}

TEST(Experiment, MultiDataImproves) {
  const auto cfg = small_cfg();
  const auto base = run_multi_data(cfg, 64, Method::kBaseline);
  const auto opass = run_multi_data(cfg, 64, Method::kOpass);
  EXPECT_EQ(base.tasks_executed, 64u);
  EXPECT_EQ(base.io_times.size(), 64u * 3);  // three reads per task
  EXPECT_LT(opass.io.mean, base.io.mean);
  EXPECT_GT(opass.local_fraction, base.local_fraction);
}

TEST(Experiment, DynamicImproves) {
  const auto cfg = small_cfg();
  workload::GenomicsSpec spec;
  spec.mean_compute_time = 0.0;  // pure I/O, as in the Fig. 11 test
  const auto base = run_dynamic(cfg, 160, Method::kBaseline, spec);
  const auto opass = run_dynamic(cfg, 160, Method::kOpass, spec);
  EXPECT_EQ(base.tasks_executed, 160u);
  EXPECT_EQ(opass.tasks_executed, 160u);
  EXPECT_LT(opass.io.mean, base.io.mean);
}

TEST(Experiment, ParaViewStepsAndTotals) {
  auto cfg = small_cfg();
  workload::ParaViewSpec spec;
  spec.dataset_count = 64;
  spec.datasets_per_step = 16;
  spec.render_time_per_task = 0.1;
  const auto base = run_paraview(cfg, Method::kBaseline, spec);
  const auto opass = run_paraview(cfg, Method::kOpass, spec);
  EXPECT_EQ(base.step_times.size(), 4u);
  EXPECT_EQ(base.run.tasks_executed, 64u);
  Seconds sum = 0;
  for (Seconds t : base.step_times) sum += t;
  EXPECT_DOUBLE_EQ(base.total_time, sum);
  EXPECT_LT(opass.total_time, base.total_time);
  EXPECT_LT(opass.run.io.stddev, base.run.io.stddev);
}

TEST(Experiment, IterativeEpochsAccumulate) {
  auto cfg = small_cfg();
  const auto one = run_iterative(cfg, 80, 1, Method::kOpass, 0.1);
  const auto four = run_iterative(cfg, 80, 4, Method::kOpass, 0.1);
  EXPECT_EQ(one.epoch_times.size(), 1u);
  EXPECT_EQ(four.epoch_times.size(), 4u);
  EXPECT_EQ(four.run.tasks_executed, 4u * 80u);
  // Opass epochs replay the same local assignment: near-identical times.
  for (Seconds t : four.epoch_times) EXPECT_NEAR(t, four.epoch_times[0], 0.5);
  EXPECT_NEAR(four.total_time, 4.0 * one.total_time, 0.2 * four.total_time);
}

TEST(Experiment, IterativeOpassBeatsBaselinePerEpoch) {
  auto cfg = small_cfg();
  const auto base = run_iterative(cfg, 160, 3, Method::kBaseline);
  const auto op = run_iterative(cfg, 160, 3, Method::kOpass);
  EXPECT_LT(op.total_time, base.total_time);
  EXPECT_GT(op.run.local_fraction, base.run.local_fraction);
}

TEST(Experiment, IterativeRejectsZeroEpochs) {
  EXPECT_THROW(run_iterative(small_cfg(), 10, 0, Method::kOpass), std::invalid_argument);
}

TEST(Experiment, AllScenariosDeterministicForSeed) {
  const auto cfg = small_cfg();
  {
    const auto a = run_multi_data(cfg, 32, Method::kOpass);
    const auto b = run_multi_data(cfg, 32, Method::kOpass);
    EXPECT_EQ(a.io_times, b.io_times);
  }
  {
    const auto a = run_dynamic(cfg, 64, Method::kOpass);
    const auto b = run_dynamic(cfg, 64, Method::kOpass);
    EXPECT_EQ(a.io_times, b.io_times);
  }
  {
    workload::ParaViewSpec spec;
    spec.dataset_count = 32;
    spec.datasets_per_step = 16;
    const auto a = run_paraview(cfg, Method::kBaseline, spec);
    const auto b = run_paraview(cfg, Method::kBaseline, spec);
    EXPECT_EQ(a.run.io_times, b.run.io_times);
    EXPECT_EQ(a.step_times, b.step_times);
  }
  {
    const auto a = run_iterative(cfg, 48, 2, Method::kBaseline);
    const auto b = run_iterative(cfg, 48, 2, Method::kBaseline);
    EXPECT_EQ(a.epoch_times, b.epoch_times);
  }
}

TEST(Experiment, ProcessesPerNodeMultipliesProcesses) {
  auto cfg = small_cfg();
  cfg.processes_per_node = 2;
  const auto out = run_single_data(cfg, 64, Method::kOpass);
  EXPECT_EQ(out.tasks_executed, 64u);
  // 32 processes on 16 nodes: quotas of 2 tasks each still drain everything.
  EXPECT_GT(out.local_fraction, 0.9);
}

TEST(Experiment, MethodNames) {
  EXPECT_STREQ(method_name(Method::kBaseline), "baseline");
  EXPECT_STREQ(method_name(Method::kOpass), "opass");
}

}  // namespace
}  // namespace opass::exp
