// Full-stack integration through the public libhdfs-style API only:
// ingest files with hdfsWrite, discover the layout with hdfsGetHosts, plan
// with Opass, execute on the simulated cluster, and verify the data and the
// locality end to end — the workflow a real deployment would follow.
#include <gtest/gtest.h>

#include "opass/opass.hpp"
#include "runtime/executor.hpp"
#include "runtime/task_source.hpp"

namespace opass {
namespace {

TEST(ShimPipeline, IngestPlanExecuteVerify) {
  constexpr std::uint32_t kNodes = 8;
  constexpr std::uint32_t kFiles = 24;
  dfs::NameNode nn(dfs::Topology::single_rack(kNodes), 3, 4 * kMiB);
  hdfs::hdfsFS fs = hdfs::hdfsConnect(&nn, dfs::kInvalidNode);

  // 1. Ingest: one single-block file per future task, real bytes.
  std::vector<std::string> paths;
  for (std::uint32_t i = 0; i < kFiles; ++i) {
    const std::string path = "series/part" + std::to_string(i);
    hdfs::hdfsFile w = hdfs::hdfsOpenFile(fs, path, hdfs::O_WRONLY_);
    ASSERT_NE(w, nullptr);
    std::vector<std::uint8_t> data(2 * kMiB, static_cast<std::uint8_t>(i));
    ASSERT_EQ(hdfs::hdfsWrite(fs, w, data.data(), static_cast<hdfs::tSize>(data.size())),
              static_cast<hdfs::tSize>(data.size()));
    ASSERT_EQ(hdfs::hdfsCloseFile(fs, w), 0);
    paths.push_back(path);
  }

  // 2. Discover the layout through hdfsGetHosts and plan with Opass.
  const auto placement = core::one_process_per_node(nn);
  const auto view = core::build_locality_via_hdfs(fs, paths, placement);
  ASSERT_EQ(view.blocks.size(), kFiles);

  // Resolve each block back to a task (single-block files: index == task).
  std::vector<runtime::Task> tasks(kFiles);
  for (std::uint32_t i = 0; i < kFiles; ++i) {
    tasks[i].id = i;
    const auto fid = nn.find_file(view.blocks[i].path);
    tasks[i].inputs = {nn.file(fid).chunks[view.blocks[i].block_index]};
  }

  Rng rng(3);
  const auto plan = core::assign_single_data(nn, tasks, placement, rng);
  EXPECT_GT(plan.locally_matched, kFiles * 3 / 4);

  // 3. Execute on the simulated cluster.
  sim::Cluster cluster(kNodes);
  runtime::StaticAssignmentSource source(plan.assignment);
  const auto result = runtime::execute(cluster, nn, tasks, source, rng);
  EXPECT_EQ(result.tasks_executed, kFiles);
  EXPECT_GT(result.trace.local_fraction(), 0.75);

  // 4. Verify content integrity through the read path.
  for (std::uint32_t i = 0; i < kFiles; ++i) {
    hdfs::hdfsFile r = hdfs::hdfsOpenFile(fs, paths[i], hdfs::O_RDONLY_);
    ASSERT_NE(r, nullptr);
    std::uint8_t probe[8];
    ASSERT_EQ(hdfs::hdfsPread(fs, r, kMiB, probe, 8), 8);
    for (std::uint8_t byte : probe) EXPECT_EQ(byte, static_cast<std::uint8_t>(i));
    hdfs::hdfsCloseFile(fs, r);
  }
  hdfs::hdfsDisconnect(fs);
}

}  // namespace
}  // namespace opass
