// Cross-validation of the Section III analytic models against the DFS
// substrate: the binomial locality model and the serve-imbalance model must
// predict what the simulated system actually does.
#include <gtest/gtest.h>

#include "analysis/balance_model.hpp"
#include "analysis/locality_model.hpp"
#include "dfs/namenode.hpp"
#include "dfs/replica_choice.hpp"
#include "workload/dataset.hpp"

namespace opass {
namespace {

TEST(ModelVsSim, LocalChunkCountMatchesBinomial) {
  // Place n chunks randomly; count how many have a replica on node 0 and
  // compare the empirical mean to n*r/m over many layouts.
  const std::uint32_t m = 32, r = 3;
  const std::uint32_t n = 128;
  const int trials = 120;
  double total_local = 0;
  for (int trial = 0; trial < trials; ++trial) {
    dfs::NameNode nn(dfs::Topology::single_rack(m), r, kDefaultChunkSize);
    dfs::RandomPlacement policy;
    Rng rng(static_cast<std::uint64_t>(trial) + 1);
    workload::make_single_data_workload(nn, n, policy, rng);
    total_local += static_cast<double>(nn.chunks_on_node(0).size());
  }
  // Chunks *held* by a node follow the co-located (r/m) variant.
  const analysis::LocalityModel model{m, r, n, analysis::LocalityMode::kCoLocated};
  EXPECT_NEAR(total_local / trials, model.expected_local_reads(), 0.8);
}

TEST(ModelVsSim, LocalCdfMatchesEmpirical) {
  // Empirical P(X <= k) for the chunks-on-a-node distribution vs the model.
  const std::uint32_t m = 64, r = 3;
  const std::uint32_t n = 256;
  const int trials = 60;
  const analysis::LocalityModel model{m, r, n, analysis::LocalityMode::kCoLocated};
  std::vector<int> le_counts(3, 0);  // k = 8, 12, 16
  const std::uint64_t ks[3] = {8, 12, 16};
  int samples = 0;
  for (int trial = 0; trial < trials; ++trial) {
    dfs::NameNode nn(dfs::Topology::single_rack(m), r, kDefaultChunkSize);
    dfs::RandomPlacement policy;
    Rng rng(static_cast<std::uint64_t>(trial) + 500);
    workload::make_single_data_workload(nn, n, policy, rng);
    for (dfs::NodeId node = 0; node < m; ++node) {
      ++samples;
      for (int i = 0; i < 3; ++i)
        if (nn.chunks_on_node(node).size() <= ks[i]) ++le_counts[i];
    }
  }
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(static_cast<double>(le_counts[i]) / samples, model.cdf_local_reads(ks[i]),
                0.03)
        << "k=" << ks[i];
  }
}

TEST(ModelVsSim, ServeImbalanceMatchesBalanceModel) {
  // Drive the read path (local preference + random replica) over random
  // layouts where readers are spread across all nodes; the per-node served
  // count must follow the Section III-B distribution.
  const std::uint32_t m = 48, r = 3;
  const std::uint32_t n = 192;
  const int trials = 80;
  const analysis::BalanceModel model{m, r, n};

  std::vector<std::uint64_t> le(2, 0);  // k = 1, 8
  const std::uint64_t ks[2] = {1, 8};
  for (int trial = 0; trial < trials; ++trial) {
    dfs::NameNode nn(dfs::Topology::single_rack(m), r, kDefaultChunkSize);
    dfs::RandomPlacement policy;
    Rng rng(static_cast<std::uint64_t>(trial) + 900);
    const auto tasks = workload::make_single_data_workload(nn, n, policy, rng);

    // Rank-interval readers: reader of task t is node t*m/n — effectively a
    // random node relative to the chunk's random replicas.
    std::vector<std::uint32_t> served(m, 0);
    for (std::uint32_t t = 0; t < n; ++t) {
      const dfs::NodeId reader = static_cast<dfs::NodeId>(
          (static_cast<std::uint64_t>(t) * m) / n);
      const auto server = dfs::choose_serving_node(nn.chunk(tasks[t].inputs[0]), reader, {},
                                                   dfs::ReplicaChoice::kRandom, rng);
      ++served[server];
    }
    for (std::uint32_t node = 0; node < m; ++node)
      for (int i = 0; i < 2; ++i)
        if (served[node] <= ks[i]) ++le[i];
  }

  for (int i = 0; i < 2; ++i) {
    const double empirical = static_cast<double>(le[i]) / (trials * double(m));
    // Local preference slightly perturbs the pure model; allow a loose band.
    EXPECT_NEAR(empirical, model.cdf_chunks_served(ks[i]), 0.06) << "k=" << ks[i];
  }
}

}  // namespace
}  // namespace opass
