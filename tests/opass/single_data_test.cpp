#include "opass/single_data.hpp"

#include <gtest/gtest.h>

#include "opass/assignment_stats.hpp"
#include "workload/dataset.hpp"

namespace opass::core {
namespace {

TEST(EqualQuotas, DistributesRemainder) {
  EXPECT_EQ(equal_quotas(10, 4), (std::vector<std::uint32_t>{3, 3, 2, 2}));
  EXPECT_EQ(equal_quotas(8, 4), (std::vector<std::uint32_t>{2, 2, 2, 2}));
  EXPECT_EQ(equal_quotas(0, 2), (std::vector<std::uint32_t>{0, 0}));
  EXPECT_THROW(equal_quotas(4, 0), std::invalid_argument);
}

/// Both max-flow algorithms must yield equally good plans.
class SingleDataTest : public ::testing::TestWithParam<graph::MaxFlowAlgorithm> {
 protected:
  SingleDataOptions opts() const { return {GetParam()}; }
};

TEST_P(SingleDataTest, RoundRobinLayoutYieldsFullMatching) {
  // Perfectly even placement: a full matching must exist and be found.
  dfs::NameNode nn(dfs::Topology::single_rack(8), 3, kDefaultChunkSize);
  dfs::RoundRobinPlacement policy;
  Rng rng(1);
  const auto tasks = workload::make_single_data_workload(nn, 32, policy, rng);
  const auto placement = one_process_per_node(nn);
  const auto plan = assign_single_data(nn, tasks, placement, rng, opts());

  EXPECT_TRUE(plan.full_matching);
  EXPECT_EQ(plan.locally_matched, 32u);
  EXPECT_EQ(plan.randomly_filled, 0u);
  EXPECT_TRUE(runtime::is_partition(plan.assignment, 32));
  const auto stats = evaluate_assignment(nn, tasks, plan.assignment, placement);
  EXPECT_DOUBLE_EQ(stats.local_fraction(), 1.0);
}

TEST_P(SingleDataTest, QuotasAreExact) {
  dfs::NameNode nn(dfs::Topology::single_rack(8), 3, kDefaultChunkSize);
  dfs::RandomPlacement policy;
  Rng rng(7);
  const auto tasks = workload::make_single_data_workload(nn, 36, policy, rng);
  const auto placement = one_process_per_node(nn);
  const auto plan = assign_single_data(nn, tasks, placement, rng, opts());

  const auto quotas = equal_quotas(36, 8);
  for (std::uint32_t p = 0; p < 8; ++p)
    EXPECT_EQ(plan.assignment[p].size(), quotas[p]) << "p=" << p;
  EXPECT_TRUE(runtime::is_partition(plan.assignment, 36));
}

TEST_P(SingleDataTest, MatchedTasksAreActuallyLocal) {
  dfs::NameNode nn(dfs::Topology::single_rack(16), 3, kDefaultChunkSize);
  dfs::RandomPlacement policy;
  Rng rng(3);
  const auto tasks = workload::make_single_data_workload(nn, 64, policy, rng);
  const auto placement = one_process_per_node(nn);
  const auto plan = assign_single_data(nn, tasks, placement, rng, opts());

  // locally_matched must equal the number of (process, task) pairs where the
  // chunk is on the process's node.
  std::uint32_t local = 0;
  for (std::uint32_t p = 0; p < placement.size(); ++p)
    for (auto t : plan.assignment[p])
      if (nn.chunk(tasks[t].inputs[0]).has_replica_on(placement[p])) ++local;
  EXPECT_EQ(local, plan.locally_matched);
  EXPECT_EQ(plan.locally_matched + plan.randomly_filled, 64u);
}

TEST_P(SingleDataTest, MatchingIsMaximum) {
  // Compare against an independent oracle: Hopcroft–Karp on the same
  // bipartite graph with per-process quota expansion is overkill; instead
  // verify optimality on a crafted instance whose optimum is known.
  //
  //  4 nodes, r=1, 4 chunks placed: c0->n0, c1->n0, c2->n1, c3->n2.
  //  Quota = 1 task per process. Max local = 3 (c0 or c1 on p0, c2 on p1,
  //  c3 on p2); p3 takes the leftover remotely.
  dfs::NameNode nn(dfs::Topology::single_rack(4), 1, kDefaultChunkSize);
  class FixedPlacement : public dfs::PlacementPolicy {
   public:
    std::vector<dfs::NodeId> place(const dfs::Topology&, dfs::NodeId, std::uint32_t,
                                   Rng&) override {
      static const dfs::NodeId seq[] = {0, 0, 1, 2};
      return {seq[i_++]};
    }
    std::string name() const override { return "fixed"; }
    int i_ = 0;
  } policy;
  Rng rng(5);
  const auto tasks = workload::make_single_data_workload(nn, 4, policy, rng);
  const auto placement = one_process_per_node(nn);
  const auto plan = assign_single_data(nn, tasks, placement, rng, opts());
  EXPECT_EQ(plan.locally_matched, 3u);
  EXPECT_EQ(plan.randomly_filled, 1u);
  EXPECT_FALSE(plan.full_matching);
}

TEST_P(SingleDataTest, ReassignmentBeatsGreedy) {
  // The flow cancellation case: p0 co-located with {c0, c1}, p1 only with
  // {c0}. Greedy could give c0 to p0 and leave p1 remote; max-flow must
  // reach 2 local tasks.
  dfs::NameNode nn(dfs::Topology::single_rack(2), 1, kDefaultChunkSize);
  class FixedPlacement : public dfs::PlacementPolicy {
   public:
    std::vector<dfs::NodeId> place(const dfs::Topology&, dfs::NodeId, std::uint32_t,
                                   Rng&) override {
      static const dfs::NodeId seq[] = {0, 0};
      return {seq[i_++]};
    }
    std::string name() const override { return "fixed"; }
    int i_ = 0;
  } policy;
  Rng rng(5);
  auto tasks = workload::make_single_data_workload(nn, 2, policy, rng);
  const auto placement = one_process_per_node(nn);
  // Both chunks on node 0, quota 1 each: only one can be local.
  const auto plan = assign_single_data(nn, tasks, placement, rng, opts());
  EXPECT_EQ(plan.locally_matched, 1u);
  // And the local one must be on p0.
  EXPECT_TRUE(nn.chunk(tasks[plan.assignment[0][0]].inputs[0]).has_replica_on(0));
}

TEST_P(SingleDataTest, RejectsMultiInputTasks) {
  dfs::NameNode nn(dfs::Topology::single_rack(2), 1, kDefaultChunkSize);
  dfs::RandomPlacement policy;
  Rng rng(5);
  nn.create_file("a", 2 * kDefaultChunkSize, policy, rng);
  runtime::Task t;
  t.inputs = {0, 1};
  EXPECT_THROW(assign_single_data(nn, {t}, one_process_per_node(nn), rng, opts()),
               std::invalid_argument);
}

TEST_P(SingleDataTest, LocalityBeatsRankIntervalOnRandomLayouts) {
  // Property sweep: on random layouts Opass's planned locality must always
  // dominate the rank-interval baseline's.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    dfs::NameNode nn(dfs::Topology::single_rack(16), 3, kDefaultChunkSize);
    dfs::RandomPlacement policy;
    const auto tasks = workload::make_single_data_workload(nn, 80, policy, rng);
    const auto placement = one_process_per_node(nn);

    const auto plan = assign_single_data(nn, tasks, placement, rng, opts());
    const auto opass_stats = evaluate_assignment(nn, tasks, plan.assignment, placement);
    const auto base = runtime::rank_interval_assignment(80, 16);
    const auto base_stats = evaluate_assignment(nn, tasks, base, placement);

    EXPECT_GE(opass_stats.local_fraction(), base_stats.local_fraction()) << "seed " << seed;
    EXPECT_GT(opass_stats.local_fraction(), 0.9) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Algorithms, SingleDataTest,
                         ::testing::Values(graph::MaxFlowAlgorithm::kEdmondsKarp,
                                           graph::MaxFlowAlgorithm::kDinic),
                         [](const auto& param_info) {
                           return param_info.param == graph::MaxFlowAlgorithm::kEdmondsKarp
                                      ? "EdmondsKarp"
                                      : "Dinic";
                         });

TEST(SingleData, AlgorithmsAgreeOnMatchingSize) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng_a(seed), rng_b(seed);
    dfs::NameNode nn(dfs::Topology::single_rack(12), 3, kDefaultChunkSize);
    dfs::RandomPlacement policy;
    Rng prng(seed + 100);
    const auto tasks = workload::make_single_data_workload(nn, 60, policy, prng);
    const auto placement = one_process_per_node(nn);
    const auto a =
        assign_single_data(nn, tasks, placement, rng_a, {graph::MaxFlowAlgorithm::kEdmondsKarp});
    const auto b =
        assign_single_data(nn, tasks, placement, rng_b, {graph::MaxFlowAlgorithm::kDinic});
    EXPECT_EQ(a.locally_matched, b.locally_matched) << "seed " << seed;
  }
}

}  // namespace
}  // namespace opass::core
