#include "opass/weighted_single_data.hpp"

#include <gtest/gtest.h>

#include "opass/assignment_stats.hpp"
#include "opass/single_data.hpp"
#include "workload/dataset.hpp"

namespace opass::core {
namespace {

/// One single-chunk file per task with the given sizes.
std::vector<runtime::Task> heterogeneous_tasks(dfs::NameNode& nn,
                                               const std::vector<Bytes>& sizes,
                                               dfs::PlacementPolicy& policy, Rng& rng) {
  std::vector<runtime::Task> tasks;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const auto fid = nn.create_file("f" + std::to_string(i), sizes[i], policy, rng);
    runtime::Task t;
    t.id = static_cast<runtime::TaskId>(i);
    t.inputs = {nn.file(fid).chunks[0]};
    tasks.push_back(std::move(t));
  }
  return tasks;
}

TEST(WeightedSingleData, UniformSizesBehaveLikeUnitAssigner) {
  dfs::NameNode nn(dfs::Topology::single_rack(8), 3, kDefaultChunkSize);
  dfs::RandomPlacement policy;
  Rng rng(1);
  const auto tasks = workload::make_single_data_workload(nn, 40, policy, rng);
  const auto placement = one_process_per_node(nn);

  Rng r1(2), r2(2);
  const auto w = assign_single_data_weighted(nn, tasks, placement, r1);
  const auto u = assign_single_data(nn, tasks, placement, r2);
  EXPECT_TRUE(runtime::is_partition(w.assignment, 40));
  // Same total locality on uniform sizes (both compute a max matching).
  const auto ws = evaluate_assignment(nn, tasks, w.assignment, placement);
  const auto us = evaluate_assignment(nn, tasks, u.assignment, placement);
  EXPECT_EQ(ws.local_bytes, us.local_bytes);
}

TEST(WeightedSingleData, BalancesBytesNotCounts) {
  // 4 nodes, r = 1 for full control: two huge files on node 0, six small
  // spread elsewhere. Byte-balancing must not give node 0's process both
  // huge files plus smalls up to equal *count*.
  dfs::NameNode nn(dfs::Topology::single_rack(4), 1, 64 * kMiB);
  class FixedPlacement : public dfs::PlacementPolicy {
   public:
    std::vector<dfs::NodeId> place(const dfs::Topology&, dfs::NodeId, std::uint32_t,
                                   Rng&) override {
      static const dfs::NodeId seq[] = {0, 0, 1, 1, 2, 2, 3, 3};
      return {seq[i_++ % 8]};
    }
    std::string name() const override { return "fixed"; }
    int i_ = 0;
  } policy;
  Rng rng(3);
  const std::vector<Bytes> sizes{60 * kMiB, 60 * kMiB, 10 * kMiB, 10 * kMiB,
                                 10 * kMiB, 10 * kMiB, 10 * kMiB, 10 * kMiB};
  const auto tasks = heterogeneous_tasks(nn, sizes, policy, rng);
  const auto placement = one_process_per_node(nn);

  const auto plan = assign_single_data_weighted(nn, tasks, placement, rng);
  EXPECT_TRUE(runtime::is_partition(plan.assignment,
                                    static_cast<std::uint32_t>(tasks.size())));
  // Total 180 MiB over 4 processes => quota 45 MiB. p0 cannot take both
  // 60 MiB files (a count-equal split could); the guarantee is
  // quota + one-file overload, so max load stays below 105 MiB and well
  // below the 120 MiB a count-based split would allow on p0.
  EXPECT_LT(plan.max_process_bytes, 120 * kMiB);
  EXPECT_LE(plan.max_process_bytes, 60 * kMiB + 20 * kMiB);
}

TEST(WeightedSingleData, ByteSpreadBeatsCountAssignerOnSkewedSizes) {
  // Random heterogeneous sizes: the weighted plan's byte spread must not
  // exceed the unit assigner's.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    dfs::NameNode nn(dfs::Topology::single_rack(8), 3, 64 * kMiB);
    dfs::RandomPlacement policy;
    Rng rng(seed);
    std::vector<Bytes> sizes;
    for (int i = 0; i < 48; ++i) sizes.push_back((8 + rng.uniform(56)) * kMiB);
    const auto tasks = heterogeneous_tasks(nn, sizes, policy, rng);
    const auto placement = one_process_per_node(nn);

    Rng r1(seed + 50), r2(seed + 50);
    const auto w = assign_single_data_weighted(nn, tasks, placement, r1);
    const auto u = assign_single_data(nn, tasks, placement, r2);

    auto byte_spread = [&](const runtime::Assignment& a) {
      Bytes hi = 0, lo = UINT64_MAX;
      for (const auto& list : a) {
        Bytes b = 0;
        for (auto t : list) b += nn.chunk(tasks[t].inputs[0]).size;
        hi = std::max(hi, b);
        lo = std::min(lo, b);
      }
      return hi - lo;
    };
    EXPECT_LE(byte_spread(w.assignment), byte_spread(u.assignment)) << "seed " << seed;
  }
}

TEST(WeightedSingleData, LocalityStaysHighOnRandomLayouts) {
  dfs::NameNode nn(dfs::Topology::single_rack(16), 3, 64 * kMiB);
  dfs::RandomPlacement policy;
  Rng rng(9);
  std::vector<Bytes> sizes;
  for (int i = 0; i < 160; ++i) sizes.push_back((16 + rng.uniform(48)) * kMiB);
  const auto tasks = heterogeneous_tasks(nn, sizes, policy, rng);
  const auto placement = one_process_per_node(nn);
  const auto plan = assign_single_data_weighted(nn, tasks, placement, rng);
  EXPECT_GT(plan.local_fraction(), 0.9);
  EXPECT_EQ(plan.flow_assigned + plan.fill_assigned, 160u);
}

TEST(WeightedSingleData, StatsConsistentWithEvaluate) {
  dfs::NameNode nn(dfs::Topology::single_rack(8), 3, 64 * kMiB);
  dfs::RandomPlacement policy;
  Rng rng(11);
  const auto tasks = workload::make_single_data_workload(nn, 32, policy, rng);
  const auto placement = one_process_per_node(nn);
  const auto plan = assign_single_data_weighted(nn, tasks, placement, rng);
  const auto stats = evaluate_assignment(nn, tasks, plan.assignment, placement);
  EXPECT_EQ(stats.total_bytes, plan.total_bytes);
  EXPECT_GE(stats.local_bytes, plan.local_bytes);  // fill may add lucky locality
}

TEST(WeightedSingleData, EmptyTaskListIsFine) {
  dfs::NameNode nn(dfs::Topology::single_rack(4), 2, kDefaultChunkSize);
  const auto placement = one_process_per_node(nn);
  Rng rng(1);
  const auto plan = assign_single_data_weighted(nn, {}, placement, rng);
  EXPECT_EQ(plan.total_bytes, 0u);
  EXPECT_EQ(plan.assignment.size(), 4u);
}

TEST(WeightedSingleData, RejectsMultiInputTasks) {
  dfs::NameNode nn(dfs::Topology::single_rack(4), 2, kDefaultChunkSize);
  dfs::RandomPlacement policy;
  Rng rng(1);
  nn.create_file("a", 2 * kDefaultChunkSize, policy, rng);
  runtime::Task t;
  t.inputs = {0, 1};
  EXPECT_THROW(assign_single_data_weighted(nn, {t}, one_process_per_node(nn), rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace opass::core
