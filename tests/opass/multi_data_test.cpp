#include "opass/multi_data.hpp"

#include <gtest/gtest.h>

#include "opass/assignment_stats.hpp"
#include "runtime/static_partitioner.hpp"
#include "workload/dataset.hpp"
#include "workload/multi_input.hpp"

namespace opass::core {
namespace {

TEST(MultiData, AssignsEveryTaskWithEqualQuotas) {
  dfs::NameNode nn(dfs::Topology::single_rack(8), 3, kDefaultChunkSize);
  dfs::RandomPlacement policy;
  Rng rng(1);
  const auto tasks = workload::make_multi_input_workload(nn, 24, policy, rng);
  const auto placement = one_process_per_node(nn);
  const auto plan = assign_multi_data(nn, tasks, placement);

  EXPECT_TRUE(runtime::is_partition(plan.assignment, 24));
  for (const auto& list : plan.assignment) EXPECT_EQ(list.size(), 3u);
}

TEST(MultiData, MatchedBytesConsistentWithAssignment) {
  dfs::NameNode nn(dfs::Topology::single_rack(8), 3, kDefaultChunkSize);
  dfs::RandomPlacement policy;
  Rng rng(2);
  const auto tasks = workload::make_multi_input_workload(nn, 16, policy, rng);
  const auto placement = one_process_per_node(nn);
  const auto plan = assign_multi_data(nn, tasks, placement);

  const auto stats = evaluate_assignment(nn, tasks, plan.assignment, placement);
  EXPECT_EQ(stats.local_bytes, plan.matched_bytes);
  EXPECT_EQ(stats.total_bytes, plan.total_bytes);
  EXPECT_EQ(plan.total_bytes, 16u * 60 * kMiB);  // 30+20+10 MB per task
}

TEST(MultiData, BeatsRankIntervalOnRandomLayouts) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    dfs::NameNode nn(dfs::Topology::single_rack(16), 3, kDefaultChunkSize);
    dfs::RandomPlacement policy;
    Rng rng(seed);
    const auto tasks = workload::make_multi_input_workload(nn, 64, policy, rng);
    const auto placement = one_process_per_node(nn);

    const auto plan = assign_multi_data(nn, tasks, placement);
    const auto base = runtime::rank_interval_assignment(64, 16);
    const auto base_stats = evaluate_assignment(nn, tasks, base, placement);

    EXPECT_GE(plan.matched_fraction(), base_stats.local_fraction()) << "seed " << seed;
  }
}

TEST(MultiData, PrefersLargerCoLocation) {
  // Hand-built Fig. 6 style case: the task with 40 MB co-located with p0
  // must go to p0 over a task with only 10 MB co-located.
  dfs::NameNode nn(dfs::Topology::single_rack(2), 1, kDefaultChunkSize);
  class FixedPlacement : public dfs::PlacementPolicy {
   public:
    std::vector<dfs::NodeId> place(const dfs::Topology&, dfs::NodeId, std::uint32_t,
                                   Rng&) override {
      // files: t0-a (40M)->n0, t0-b (10M)->n1 ; t1-a (40M)->n1, t1-b (10M)->n0
      static const dfs::NodeId seq[] = {0, 1, 1, 0};
      return {seq[i_++]};
    }
    std::string name() const override { return "fixed"; }
    int i_ = 0;
  } policy;
  Rng rng(3);
  std::vector<runtime::Task> tasks(2);
  tasks[0].id = 0;
  tasks[1].id = 1;
  const auto fa = nn.create_file("t0a", 40 * kMiB, policy, rng);
  const auto fb = nn.create_file("t0b", 10 * kMiB, policy, rng);
  const auto fc = nn.create_file("t1a", 40 * kMiB, policy, rng);
  const auto fd = nn.create_file("t1b", 10 * kMiB, policy, rng);
  tasks[0].inputs = {nn.file(fa).chunks[0], nn.file(fb).chunks[0]};
  tasks[1].inputs = {nn.file(fc).chunks[0], nn.file(fd).chunks[0]};

  const auto plan = assign_multi_data(nn, tasks, one_process_per_node(nn));
  EXPECT_EQ(plan.assignment[0], (std::vector<runtime::TaskId>{0}));
  EXPECT_EQ(plan.assignment[1], (std::vector<runtime::TaskId>{1}));
  EXPECT_EQ(plan.matched_bytes, 80 * kMiB);
}

TEST(MultiData, ReassignmentEventHappens) {
  // Fig. 6(b): a task first taken by a weaker process is stolen by a
  // stronger one. p0 sees both tasks; t1 is far better for p1.
  //
  //  n=2 nodes, r=1. t0: 30M on n0. t1: 10M on n0 + 40M on n1.
  //  Preference of p0: t0 (30M) then t1 (10M). p1: t1 (40M).
  //  Quota 1 each: p0 takes t0; p1 takes t1 — or if p1 moves first and takes
  //  t1 with 40M, p0 still gets t0. Either way optimal. To force a steal,
  //  give p0 higher value on t1 than on t0 but p1 even higher on t1:
  //  t0: 10M on n0; t1: 30M on n0 + 40M on n1.
  dfs::NameNode nn(dfs::Topology::single_rack(2), 1, kDefaultChunkSize);
  class FixedPlacement : public dfs::PlacementPolicy {
   public:
    std::vector<dfs::NodeId> place(const dfs::Topology&, dfs::NodeId, std::uint32_t,
                                   Rng&) override {
      static const dfs::NodeId seq[] = {0, 0, 1};
      return {seq[i_++]};
    }
    std::string name() const override { return "fixed"; }
    int i_ = 0;
  } policy;
  Rng rng(3);
  std::vector<runtime::Task> tasks(2);
  tasks[0].id = 0;
  tasks[1].id = 1;
  const auto f0 = nn.create_file("t0", 10 * kMiB, policy, rng);   // n0
  const auto f1a = nn.create_file("t1a", 30 * kMiB, policy, rng);  // n0
  const auto f1b = nn.create_file("t1b", 40 * kMiB, policy, rng);  // n1
  tasks[0].inputs = {nn.file(f0).chunks[0]};
  tasks[1].inputs = {nn.file(f1a).chunks[0], nn.file(f1b).chunks[0]};

  const auto plan = assign_multi_data(nn, tasks, one_process_per_node(nn));
  // p0 proposes to t1 first (30M > 10M) and takes it; p1 then steals t1
  // (40M > 30M); p0 falls back to t0.
  EXPECT_EQ(plan.reassignments, 1u);
  EXPECT_EQ(plan.assignment[0], (std::vector<runtime::TaskId>{0}));
  EXPECT_EQ(plan.assignment[1], (std::vector<runtime::TaskId>{1}));
}

TEST(MultiData, WorksWithSingleInputTasks) {
  // Algorithm 1 degenerates gracefully to single-input workloads.
  dfs::NameNode nn(dfs::Topology::single_rack(8), 3, kDefaultChunkSize);
  dfs::RandomPlacement policy;
  Rng rng(5);
  const auto tasks = workload::make_single_data_workload(nn, 32, policy, rng);
  const auto plan = assign_multi_data(nn, tasks, one_process_per_node(nn));
  EXPECT_TRUE(runtime::is_partition(plan.assignment, 32));
  EXPECT_GT(plan.matched_fraction(), 0.5);
}

TEST(MultiData, TasksWithNoLocalityStillAssigned) {
  // Zero co-location everywhere (processes on nodes with no data): every
  // task still lands somewhere, quotas exact.
  dfs::NameNode nn(dfs::Topology::single_rack(6), 2, kDefaultChunkSize);
  class FixedPlacement : public dfs::PlacementPolicy {
   public:
    std::vector<dfs::NodeId> place(const dfs::Topology&, dfs::NodeId, std::uint32_t,
                                   Rng&) override {
      return {4, 5};  // all data on nodes 4 and 5
    }
    std::string name() const override { return "fixed"; }
  } policy;
  Rng rng(7);
  const auto tasks = workload::make_single_data_workload(nn, 8, policy, rng);
  // Processes only on nodes 0..3.
  const ProcessPlacement placement{0, 1, 2, 3};
  const auto plan = assign_multi_data(nn, tasks, placement);
  EXPECT_TRUE(runtime::is_partition(plan.assignment, 8));
  EXPECT_EQ(plan.matched_bytes, 0u);
  for (const auto& list : plan.assignment) EXPECT_EQ(list.size(), 2u);
}

TEST(MultiData, UnevenTaskCountSpreadsRemainder) {
  dfs::NameNode nn(dfs::Topology::single_rack(4), 2, kDefaultChunkSize);
  dfs::RandomPlacement policy;
  Rng rng(9);
  const auto tasks = workload::make_single_data_workload(nn, 10, policy, rng);
  const auto plan = assign_multi_data(nn, tasks, one_process_per_node(nn));
  EXPECT_EQ(plan.assignment[0].size(), 3u);
  EXPECT_EQ(plan.assignment[1].size(), 3u);
  EXPECT_EQ(plan.assignment[2].size(), 2u);
  EXPECT_EQ(plan.assignment[3].size(), 2u);
}

}  // namespace
}  // namespace opass::core
