#include "opass/assignment_model.hpp"

#include <gtest/gtest.h>

#include "opass/single_data.hpp"
#include "runtime/executor.hpp"
#include "runtime/task_source.hpp"
#include "workload/dataset.hpp"

namespace opass::core {
namespace {

struct AssignmentModelFixture : ::testing::Test {
  AssignmentModelFixture()
      : nn(dfs::Topology::single_rack(8), 2, kDefaultChunkSize), rng(4) {
    tasks = workload::make_single_data_workload(nn, 32, policy, rng);
    placement = core::one_process_per_node(nn);
  }
  dfs::NameNode nn;
  dfs::RandomPlacement policy;
  Rng rng;
  std::vector<runtime::Task> tasks;
  core::ProcessPlacement placement;
};

TEST_F(AssignmentModelFixture, ExpectedBytesSumToDatasetSize) {
  const auto a = runtime::rank_interval_assignment(32, 8);
  const auto served = expected_bytes_served(nn, tasks, a, placement);
  double total = 0;
  for (double b : served) total += b;
  EXPECT_NEAR(total, 32.0 * static_cast<double>(kDefaultChunkSize), 1.0);
}

TEST_F(AssignmentModelFixture, FullyLocalAssignmentServesFromReaders) {
  Rng arng(5);
  const auto plan = core::assign_single_data(nn, tasks, placement, arng);
  if (!plan.full_matching) GTEST_SKIP() << "layout did not admit a full matching";
  const auto served = expected_bytes_served(nn, tasks, plan.assignment, placement);
  // Locally served with certainty: every byte accounted on a reader node,
  // and each node serves exactly its own process's assigned bytes.
  for (std::uint32_t p = 0; p < placement.size(); ++p) {
    double assigned = 0;
    for (auto t : plan.assignment[p])
      assigned += static_cast<double>(tasks[t].input_bytes(nn));
    EXPECT_NEAR(served[placement[p]], assigned, 1.0);
  }
}

TEST_F(AssignmentModelFixture, MonteCarloAgreesWithExpectation) {
  // Drive the actual read policy many times and compare average served
  // bytes per node to the analytic expectation.
  const auto a = runtime::rank_interval_assignment(32, 8);
  const auto expected = expected_bytes_served(nn, tasks, a, placement);

  std::vector<double> empirical(nn.node_count(), 0.0);
  const int trials = 3000;
  Rng choice_rng(99);
  for (int trial = 0; trial < trials; ++trial) {
    for (std::uint32_t p = 0; p < a.size(); ++p) {
      for (auto t : a[p]) {
        const auto& chunk = nn.chunk(tasks[t].inputs[0]);
        const auto server = dfs::choose_serving_node(chunk, placement[p], {},
                                                     dfs::ReplicaChoice::kRandom, choice_rng);
        empirical[server] += static_cast<double>(chunk.size);
      }
    }
  }
  for (std::uint32_t node = 0; node < nn.node_count(); ++node) {
    EXPECT_NEAR(empirical[node] / trials, expected[node],
                0.05 * static_cast<double>(kDefaultChunkSize) * 32)
        << "node " << node;
  }
}

TEST_F(AssignmentModelFixture, SimulatedMakespanRespectsLowerBound) {
  for (const bool use_opass : {false, true}) {
    runtime::Assignment a;
    if (use_opass) {
      Rng arng(5);
      a = core::assign_single_data(nn, tasks, placement, arng).assignment;
    } else {
      a = runtime::rank_interval_assignment(32, 8);
    }
    sim::ClusterParams params;
    const Seconds bound =
        makespan_lower_bound(nn, tasks, a, placement, params.disk_bandwidth);

    sim::Cluster cluster(8, params);
    runtime::StaticAssignmentSource source(a);
    Rng exec_rng(13);
    const auto result = runtime::execute(cluster, nn, tasks, source, exec_rng);
    EXPECT_GE(result.makespan, bound * 0.999) << (use_opass ? "opass" : "baseline");
    EXPECT_GT(bound, 0.0);
  }
}

TEST_F(AssignmentModelFixture, BoundTightForFullLocality) {
  Rng arng(5);
  const auto plan = core::assign_single_data(nn, tasks, placement, arng);
  if (!plan.full_matching) GTEST_SKIP() << "layout did not admit a full matching";
  sim::ClusterParams params;
  const Seconds bound =
      makespan_lower_bound(nn, tasks, plan.assignment, placement, params.disk_bandwidth);

  sim::Cluster cluster(8, params);
  runtime::StaticAssignmentSource source(plan.assignment);
  Rng exec_rng(13);
  const auto result = runtime::execute(cluster, nn, tasks, source, exec_rng);
  // Fully local reads: the only gap to the bound is per-read seek latency.
  const double overhead = 4.0 * params.seek_latency;  // 4 chunks per process
  EXPECT_LE(result.makespan, bound + overhead + 0.1);
}

TEST_F(AssignmentModelFixture, Validation) {
  runtime::Assignment wrong(3);
  EXPECT_THROW(expected_bytes_served(nn, tasks, wrong, placement), std::invalid_argument);
  runtime::Assignment bad_task(8);
  bad_task[0].push_back(999);
  EXPECT_THROW(expected_bytes_served(nn, tasks, bad_task, placement),
               std::invalid_argument);
}

}  // namespace
}  // namespace opass::core
