#include "opass/plan_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "opass/single_data.hpp"
#include "workload/dataset.hpp"

namespace opass::core {
namespace {

TEST(PlanIo, RoundTripsSimpleAssignment) {
  const runtime::Assignment a{{0, 2}, {1, 3}, {}};
  const std::string text = serialize_assignment(a, 4);
  EXPECT_EQ(parse_assignment(text), a);
}

TEST(PlanIo, RoundTripsRealPlan) {
  dfs::NameNode nn(dfs::Topology::single_rack(8), 3, kDefaultChunkSize);
  dfs::RandomPlacement policy;
  Rng rng(3);
  const auto tasks = workload::make_single_data_workload(nn, 40, policy, rng);
  const auto plan = assign_single_data(nn, tasks, one_process_per_node(nn), rng);
  const std::string text = serialize_assignment(plan.assignment, 40);
  EXPECT_EQ(parse_assignment(text), plan.assignment);
}

TEST(PlanIo, HeaderContainsCounts) {
  const std::string text = serialize_assignment({{0}, {1}}, 2);
  EXPECT_NE(text.find("opass-plan v1\n"), std::string::npos);
  EXPECT_NE(text.find("processes 2\n"), std::string::npos);
  EXPECT_NE(text.find("tasks 2\n"), std::string::npos);
}

TEST(PlanIo, SerializeRejectsNonPartition) {
  EXPECT_THROW(serialize_assignment({{0, 0}}, 1), std::invalid_argument);   // dup
  EXPECT_THROW(serialize_assignment({{0}}, 2), std::invalid_argument);     // missing
  EXPECT_THROW(serialize_assignment({{5}}, 2), std::invalid_argument);     // range
}

TEST(PlanIo, ParseRejectsMalformedInputs) {
  EXPECT_THROW(parse_assignment(""), std::invalid_argument);
  EXPECT_THROW(parse_assignment("opass-plan v2\nprocesses 1\ntasks 0\np 0 :\n"),
               std::invalid_argument);  // bad version
  EXPECT_THROW(parse_assignment("opass-plan v1\nprocesses 0\ntasks 0\n"),
               std::invalid_argument);  // zero processes
  EXPECT_THROW(parse_assignment("opass-plan v1\nprocesses 1\ntasks 1\n"),
               std::invalid_argument);  // truncated
  EXPECT_THROW(parse_assignment("opass-plan v1\nprocesses 1\ntasks 1\np 0 : 0 junk\n"),
               std::invalid_argument);  // trailing garbage
  EXPECT_THROW(parse_assignment("opass-plan v1\nprocesses 1\ntasks 1\np 0 : 5\n"),
               std::invalid_argument);  // out of range
  EXPECT_THROW(parse_assignment("opass-plan v1\nprocesses 2\ntasks 2\np 1 : 0\np 0 : 1\n"),
               std::invalid_argument);  // out of order
  EXPECT_THROW(parse_assignment("opass-plan v1\nprocesses 1\ntasks 2\np 0 : 0 0\n"),
               std::invalid_argument);  // duplicate task
}

TEST(PlanIo, EmptyProcessListsSurvive) {
  const runtime::Assignment a{{}, {0}, {}};
  EXPECT_EQ(parse_assignment(serialize_assignment(a, 1)), a);
}

TEST(PlanIo, FileRoundTrip) {
  const runtime::Assignment a{{1, 2}, {0}};
  const std::string path = ::testing::TempDir() + "opass_plan_test.txt";
  save_assignment(path, a, 3);
  EXPECT_EQ(load_assignment(path), a);
  std::remove(path.c_str());
}

TEST(PlanIo, LoadMissingFileThrows) {
  EXPECT_THROW(load_assignment("/nonexistent/dir/plan.txt"), std::invalid_argument);
}

}  // namespace
}  // namespace opass::core
