// The core::plan() facade must be a pure repackaging of the per-planner free
// functions: same assignments for the same inputs and seeds, uniform stats,
// and strict request validation. Also covers the planner-name round trip and
// the dynamic-source construction (both steal policies).
#include <gtest/gtest.h>

#include <string>

#include "opass/opass.hpp"
#include "workload/dataset.hpp"
#include "workload/multi_input.hpp"

namespace opass::core {
namespace {

struct Layout {
  dfs::NameNode nn;
  std::vector<runtime::Task> tasks;
  ProcessPlacement placement;
};

Layout make_layout(std::uint64_t seed, bool multi_input = false) {
  Rng rng(seed);
  Layout layout{dfs::NameNode(dfs::Topology::uniform_racks(16, 2), 3), {}, {}};
  dfs::RandomPlacement policy;
  layout.tasks = multi_input
                     ? workload::make_multi_input_workload(layout.nn, 48, policy, rng)
                     : workload::make_single_data_workload(layout.nn, 80, policy, rng);
  layout.placement = one_process_per_node(layout.nn);
  return layout;
}

TEST(PlannerFacade, SingleDataMatchesLegacyFunction) {
  const auto layout = make_layout(1);
  Rng rng_facade(9), rng_legacy(9);
  const auto facade = plan({&layout.nn, &layout.tasks, &layout.placement, &rng_facade});
  const auto legacy =
      assign_single_data(layout.nn, layout.tasks, layout.placement, rng_legacy);

  EXPECT_EQ(facade.planner, PlannerKind::kSingleData);
  EXPECT_EQ(facade.assignment, legacy.assignment);
  EXPECT_EQ(facade.locally_matched, legacy.locally_matched);
  EXPECT_EQ(facade.randomly_filled, legacy.randomly_filled);
  const auto stats =
      evaluate_assignment(layout.nn, layout.tasks, legacy.assignment, layout.placement);
  EXPECT_EQ(facade.stats.local_bytes, stats.local_bytes);
  EXPECT_DOUBLE_EQ(facade.local_fraction(), stats.local_fraction());
}

TEST(PlannerFacade, WeightedMatchesLegacyFunction) {
  const auto layout = make_layout(2);
  Rng rng_facade(9), rng_legacy(9);
  PlanOptions options;
  options.planner = PlannerKind::kWeighted;
  const auto facade =
      plan({&layout.nn, &layout.tasks, &layout.placement, &rng_facade}, options);
  const auto legacy =
      assign_single_data_weighted(layout.nn, layout.tasks, layout.placement, rng_legacy);

  EXPECT_EQ(facade.assignment, legacy.assignment);
  EXPECT_EQ(facade.locally_matched, legacy.flow_assigned);
  EXPECT_EQ(facade.randomly_filled, legacy.fill_assigned);
  EXPECT_EQ(facade.matched_bytes, legacy.local_bytes);
}

TEST(PlannerFacade, RackAwareMatchesLegacyFunction) {
  const auto layout = make_layout(3);
  Rng rng_facade(9), rng_legacy(9);
  PlanOptions options;
  options.planner = PlannerKind::kRackAware;
  const auto facade =
      plan({&layout.nn, &layout.tasks, &layout.placement, &rng_facade}, options);
  const auto legacy =
      assign_single_data_rack_aware(layout.nn, layout.tasks, layout.placement, rng_legacy);

  EXPECT_EQ(facade.assignment, legacy.assignment);
  EXPECT_EQ(facade.locally_matched, legacy.node_local);
  EXPECT_EQ(facade.rack_local, legacy.rack_local);
  EXPECT_EQ(facade.randomly_filled, legacy.random_filled);
}

TEST(PlannerFacade, MultiDataMatchesLegacyFunctionAndNeedsNoRng) {
  const auto layout = make_layout(4, /*multi_input=*/true);
  // kMultiData is deterministic: no rng in the request.
  PlanOptions options;
  options.planner = PlannerKind::kMultiData;
  const auto facade = plan({&layout.nn, &layout.tasks, &layout.placement, nullptr}, options);
  const auto legacy = assign_multi_data(layout.nn, layout.tasks, layout.placement);

  EXPECT_EQ(facade.assignment, legacy.assignment);
  EXPECT_EQ(facade.reassignments, legacy.reassignments);
  EXPECT_EQ(facade.matched_bytes, legacy.matched_bytes);
}

TEST(PlannerFacade, AlgorithmOptionReachesTheSolver) {
  // Same seed, both solvers, through the facade: maximum matchings agree.
  const auto layout = make_layout(5);
  Rng rng_a(9), rng_b(9);
  PlanOptions dinic, ek;
  dinic.algorithm = graph::MaxFlowAlgorithm::kDinic;
  ek.algorithm = graph::MaxFlowAlgorithm::kEdmondsKarp;
  const auto a = plan({&layout.nn, &layout.tasks, &layout.placement, &rng_a}, dinic);
  const auto b = plan({&layout.nn, &layout.tasks, &layout.placement, &rng_b}, ek);
  EXPECT_EQ(a.locally_matched, b.locally_matched);
}

TEST(PlannerFacade, RejectsIncompleteRequests) {
  const auto layout = make_layout(6);
  Rng rng(1);
  EXPECT_THROW(plan({nullptr, &layout.tasks, &layout.placement, &rng}),
               std::invalid_argument);
  EXPECT_THROW(plan({&layout.nn, nullptr, &layout.placement, &rng}), std::invalid_argument);
  EXPECT_THROW(plan({&layout.nn, &layout.tasks, nullptr, &rng}), std::invalid_argument);
  // Flow planners need the rng for their fill phase.
  EXPECT_THROW(plan({&layout.nn, &layout.tasks, &layout.placement, nullptr}),
               std::invalid_argument);
}

TEST(PlannerFacade, KindNamesRoundTrip) {
  for (const auto kind : {PlannerKind::kSingleData, PlannerKind::kWeighted,
                          PlannerKind::kRackAware, PlannerKind::kMultiData}) {
    EXPECT_EQ(parse_planner_kind(planner_kind_name(kind)), kind);
  }
  try {
    parse_planner_kind("gale-shapley");
    FAIL() << "parse_planner_kind accepted an unknown name";
  } catch (const std::invalid_argument& e) {
    // The message must name the offender (so a typo in a config or CLI flag
    // is diagnosable from the error alone) and list the accepted spellings.
    EXPECT_NE(std::string(e.what()).find("gale-shapley"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("single-data"), std::string::npos) << e.what();
  }
}

TEST(PlannerFacade, MakeDynamicSourceDrainsEveryTask) {
  const auto layout = make_layout(7);
  Rng rng(9);
  const auto source = make_dynamic_source({&layout.nn, &layout.tasks, &layout.placement, &rng});
  ASSERT_NE(source, nullptr);

  // Drain round-robin: every task comes out exactly once.
  std::vector<int> seen(layout.tasks.size(), 0);
  std::uint32_t drained = 0;
  bool any = true;
  while (any) {
    any = false;
    for (runtime::ProcessId p = 0; p < layout.placement.size(); ++p) {
      if (const auto t = source->next_task(p, 0)) {
        ++seen[*t];
        ++drained;
        any = true;
      }
    }
  }
  EXPECT_EQ(drained, layout.tasks.size());
  for (std::size_t t = 0; t < seen.size(); ++t) EXPECT_EQ(seen[t], 1) << "task " << t;
}

TEST(PlannerFacade, FrontStealPolicyStillDrainsAndSteals) {
  const auto layout = make_layout(8);
  Rng rng(9);
  PlanOptions options;
  options.steal_policy = StealPolicy::kFront;
  const auto source =
      make_dynamic_source({&layout.nn, &layout.tasks, &layout.placement, &rng}, options);

  // Process 0 drains everything alone: every pull past its own list is a
  // front-steal from the longest victim.
  std::uint32_t drained = 0;
  while (source->next_task(0, 0)) ++drained;
  EXPECT_EQ(drained, layout.tasks.size());
  EXPECT_GT(source->steal_count(), 0u);
}

}  // namespace
}  // namespace opass::core
