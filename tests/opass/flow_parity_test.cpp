// Randomized solver-parity property: on generated layouts, Dinic and
// Edmonds–Karp are both maximum-flow solvers, so every planner built on them
// must report the same number of locally matched tasks — and every plan they
// emit must pass the static auditor. This is the regression net for swapping
// the default solver: a broken Dinic phase/blocking-flow would show up as a
// sub-maximum matching on some layout here.
#include <gtest/gtest.h>

#include <memory>

#include "opass/opass.hpp"
#include "workload/dataset.hpp"

namespace opass::core {
namespace {

struct Layout {
  dfs::NameNode nn;
  std::vector<runtime::Task> tasks;
  ProcessPlacement placement;
};

/// Generate a random cluster layout: size, replication, and placement policy
/// all drawn from the seed.
Layout make_layout(std::uint64_t seed) {
  Rng rng(seed);
  const auto nodes = static_cast<std::uint32_t>(4 + rng.uniform(28));
  const auto replication = static_cast<std::uint32_t>(1 + rng.uniform(3));
  const auto tasks_per_node = static_cast<std::uint32_t>(1 + rng.uniform(12));
  Layout layout{dfs::NameNode(dfs::Topology::single_rack(nodes), replication), {}, {}};

  const auto kind = rng.uniform(3);
  std::unique_ptr<dfs::PlacementPolicy> policy;
  if (kind == 0) {
    policy = std::make_unique<dfs::RandomPlacement>();
  } else if (kind == 1) {
    policy = std::make_unique<dfs::RoundRobinPlacement>();
  } else {
    policy = dfs::make_placement(dfs::PlacementKind::kHdfsDefault);
  }
  layout.tasks = workload::make_single_data_workload(layout.nn, nodes * tasks_per_node,
                                                     *policy, rng);
  layout.placement = one_process_per_node(layout.nn);
  return layout;
}

TEST(FlowParity, SingleDataMatchesAreEqualAndAudited) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const auto layout = make_layout(seed);
    Rng rng_dinic(seed + 1), rng_ek(seed + 1);
    const auto dinic = assign_single_data(layout.nn, layout.tasks, layout.placement, rng_dinic,
                                          {graph::MaxFlowAlgorithm::kDinic});
    const auto ek = assign_single_data(layout.nn, layout.tasks, layout.placement, rng_ek,
                                       {graph::MaxFlowAlgorithm::kEdmondsKarp});
    EXPECT_EQ(dinic.locally_matched, ek.locally_matched) << "seed " << seed;

    AuditOptions audit;
    audit.enforce_capacity = true;
    for (const auto* plan : {&dinic, &ek}) {
      const auto report =
          audit_plan(layout.nn, layout.tasks, plan->assignment, layout.placement, audit);
      EXPECT_TRUE(report.ok()) << "seed " << seed << "\n" << report.to_string();
    }
  }
}

TEST(FlowParity, RackAwarePhaseTotalsAreEqual) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    Rng lrng(seed + 500);
    const auto nodes = static_cast<std::uint32_t>(8 + lrng.uniform(24));
    dfs::NameNode nn(dfs::Topology::uniform_racks(nodes, 4), 2);
    dfs::RandomPlacement policy;
    const auto tasks = workload::make_single_data_workload(nn, nn.node_count() * 6, policy,
                                                           lrng);
    const auto placement = one_process_per_node(nn);

    Rng rng_dinic(seed + 1), rng_ek(seed + 1);
    const auto dinic = assign_single_data_rack_aware(
        nn, tasks, placement, rng_dinic, RackAwareOptions{graph::MaxFlowAlgorithm::kDinic});
    const auto ek = assign_single_data_rack_aware(
        nn, tasks, placement, rng_ek, RackAwareOptions{graph::MaxFlowAlgorithm::kEdmondsKarp});
    // Phase 1 is a max-flow, so node-local counts agree exactly. Phase 2
    // runs on each solver's own phase-1 remainder, so only the invariant
    // "no solver leaves locality on the table overall" is comparable.
    EXPECT_EQ(dinic.node_local, ek.node_local) << "seed " << seed;
    EXPECT_EQ(dinic.task_count(), ek.task_count()) << "seed " << seed;
  }
}

TEST(FlowParity, WorkspaceReuseReproducesTheFreshPlan) {
  // A shared workspace must be invisible in the results: replanning many
  // layouts through one workspace gives byte-identical assignments to fresh
  // per-call networks.
  graph::FlowWorkspace ws;
  for (std::uint64_t seed = 100; seed < 110; ++seed) {
    const auto layout = make_layout(seed);
    Rng rng_fresh(seed), rng_reused(seed);
    const auto fresh = assign_single_data(layout.nn, layout.tasks, layout.placement, rng_fresh,
                                          {graph::MaxFlowAlgorithm::kDinic, nullptr});
    const auto reused = assign_single_data(layout.nn, layout.tasks, layout.placement,
                                           rng_reused, {graph::MaxFlowAlgorithm::kDinic, &ws});
    EXPECT_EQ(fresh.assignment, reused.assignment) << "seed " << seed;
    EXPECT_EQ(fresh.locally_matched, reused.locally_matched) << "seed " << seed;
  }
}

}  // namespace
}  // namespace opass::core
