// Determinism regression: the same seed and layout must produce a
// byte-identical plan (compared through the plan_io wire format) across two
// independent runs. This pins the CSR network's finalize order and the
// Dinic traversal order — any nondeterminism (hash iteration, pointer
// ordering, uninitialized scratch in the reused workspace) breaks the wire
// bytes, not just a statistic.
#include <gtest/gtest.h>

#include <string>

#include "opass/opass.hpp"
#include "workload/dataset.hpp"

namespace opass::core {
namespace {

struct Layout {
  dfs::NameNode nn;
  std::vector<runtime::Task> tasks;
  ProcessPlacement placement;
};

Layout make_layout(std::uint64_t seed, std::uint32_t nodes, std::uint32_t tasks) {
  Rng rng(seed);
  Layout layout{dfs::NameNode(dfs::Topology::single_rack(nodes), 3), {}, {}};
  dfs::RandomPlacement policy;
  layout.tasks = workload::make_single_data_workload(layout.nn, tasks, policy, rng);
  layout.placement = one_process_per_node(layout.nn);
  return layout;
}

/// One full planning run, serialized: rebuild the layout from the seed and
/// plan through the facade into a fresh workspace.
std::string planned_wire_bytes(std::uint64_t seed, PlannerKind kind,
                               graph::MaxFlowAlgorithm algorithm) {
  const auto layout = make_layout(seed, 24, 120);
  graph::FlowWorkspace workspace;
  PlanOptions options;
  options.planner = kind;
  options.algorithm = algorithm;
  options.workspace = &workspace;
  Rng assign_rng(seed + 17);
  const auto result = core::plan({&layout.nn, &layout.tasks, &layout.placement, &assign_rng},
                                 options);
  return serialize_assignment(result.assignment,
                              static_cast<std::uint32_t>(layout.tasks.size()));
}

TEST(PlanDeterminism, SingleDataDinicIsByteIdenticalAcrossRuns) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto first =
        planned_wire_bytes(seed, PlannerKind::kSingleData, graph::MaxFlowAlgorithm::kDinic);
    const auto second =
        planned_wire_bytes(seed, PlannerKind::kSingleData, graph::MaxFlowAlgorithm::kDinic);
    EXPECT_EQ(first, second) << "seed " << seed;
  }
}

TEST(PlanDeterminism, SingleDataEdmondsKarpIsByteIdenticalAcrossRuns) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto first = planned_wire_bytes(seed, PlannerKind::kSingleData,
                                          graph::MaxFlowAlgorithm::kEdmondsKarp);
    const auto second = planned_wire_bytes(seed, PlannerKind::kSingleData,
                                           graph::MaxFlowAlgorithm::kEdmondsKarp);
    EXPECT_EQ(first, second) << "seed " << seed;
  }
}

TEST(PlanDeterminism, MultiDataIsByteIdenticalAcrossRuns) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto first =
        planned_wire_bytes(seed, PlannerKind::kMultiData, graph::MaxFlowAlgorithm::kDinic);
    const auto second =
        planned_wire_bytes(seed, PlannerKind::kMultiData, graph::MaxFlowAlgorithm::kDinic);
    EXPECT_EQ(first, second) << "seed " << seed;
  }
}

TEST(PlanDeterminism, WorkspaceCarriedAcrossDifferentLayoutsStaysClean) {
  // The dirty-workspace case the per-run tests can't see: plan layout A,
  // then layout B through the same workspace, and require B's plan to be
  // byte-identical to a fresh-workspace run of B.
  graph::FlowWorkspace workspace;
  const auto warm = make_layout(3, 30, 200);
  Rng warm_rng(3);
  (void)assign_single_data(warm.nn, warm.tasks, warm.placement, warm_rng,
                           {graph::MaxFlowAlgorithm::kDinic, &workspace});

  const auto layout = make_layout(4, 24, 120);
  Rng rng_dirty(21), rng_fresh(21);
  const auto dirty = assign_single_data(layout.nn, layout.tasks, layout.placement, rng_dirty,
                                        {graph::MaxFlowAlgorithm::kDinic, &workspace});
  const auto fresh = assign_single_data(layout.nn, layout.tasks, layout.placement, rng_fresh,
                                        {graph::MaxFlowAlgorithm::kDinic, nullptr});
  EXPECT_EQ(serialize_assignment(dirty.assignment, 120),
            serialize_assignment(fresh.assignment, 120));
}

}  // namespace
}  // namespace opass::core
