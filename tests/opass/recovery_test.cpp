// Dynamic-scheduler failure recovery (DESIGN.md §11): dead-node re-homing,
// re-plan adoption, and the exactly-once completion audit.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "opass/dynamic_scheduler.hpp"
#include "opass/plan_audit.hpp"
#include "opass/single_data.hpp"
#include "workload/dataset.hpp"

namespace opass::core {
namespace {

struct RecoveryFixture : ::testing::Test {
  RecoveryFixture() : nn(dfs::Topology::single_rack(4), 2, kDefaultChunkSize), rng(1) {
    tasks = workload::make_single_data_workload(nn, 12, policy, rng);
    placement = one_process_per_node(nn);
  }
  dfs::NameNode nn;
  dfs::RandomPlacement policy;
  Rng rng;
  std::vector<runtime::Task> tasks;
  ProcessPlacement placement;
};

TEST_F(RecoveryFixture, DeadNodeListIsRehomedToAliveProcesses) {
  OpassDynamicSource src({{0, 1, 2}, {3, 4, 5}, {6, 7, 8}, {9, 10, 11}}, nn, tasks,
                         placement);
  // one_process_per_node: process 1 lives on node 1.
  src.on_node_dead(1);
  EXPECT_EQ(src.failure_reassignments(), 3u);
  EXPECT_EQ(src.remaining_tasks(), 12u);  // nothing lost, everything re-homed
  const auto ids = src.remaining_task_ids();
  EXPECT_EQ(ids.size(), 12u);
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));

  // The full job still drains exactly once through the alive processes.
  std::set<runtime::TaskId> seen;
  bool progress = true;
  while (progress) {
    progress = false;
    for (runtime::ProcessId p = 0; p < 4; ++p) {
      if (p == 1) continue;  // dead node's process pulls nothing
      if (const auto t = src.next_task(p, 0.0)) {
        EXPECT_TRUE(seen.insert(*t).second) << "task dispensed twice";
        progress = true;
      }
    }
  }
  EXPECT_EQ(seen.size(), 12u);
  EXPECT_EQ(src.remaining_tasks(), 0u);
}

TEST_F(RecoveryFixture, OnNodeDeadIsIdempotent) {
  OpassDynamicSource src({{0, 1, 2}, {3, 4, 5}, {6, 7, 8}, {9, 10, 11}}, nn, tasks,
                         placement);
  src.on_node_dead(2);
  const auto once = src.failure_reassignments();
  src.on_node_dead(2);
  EXPECT_EQ(src.failure_reassignments(), once);
}

TEST_F(RecoveryFixture, DispensedTasksAreNotReassigned) {
  OpassDynamicSource src({{0, 1, 2}, {3, 4, 5}, {6, 7, 8}, {9, 10, 11}}, nn, tasks,
                         placement);
  // Process 1 already pulled task 3 when its node dies.
  ASSERT_EQ(src.next_task(1, 0.0), std::optional<runtime::TaskId>(3));
  src.on_node_dead(1);
  EXPECT_EQ(src.failure_reassignments(), 2u);  // only 4 and 5 re-homed
  EXPECT_EQ(src.remaining_tasks(), 11u);
  const auto ids = src.remaining_task_ids();
  EXPECT_TRUE(std::find(ids.begin(), ids.end(), 3u) == ids.end());
}

TEST_F(RecoveryFixture, AdoptGuidelineReplacesPendingLists) {
  OpassDynamicSource src({{0, 1, 2}, {3, 4, 5}, {6, 7, 8}, {9, 10, 11}}, nn, tasks,
                         placement);
  ASSERT_TRUE(src.next_task(0, 0.0).has_value());  // dispense task 0

  // A fresh plan over exactly the 11 remaining tasks.
  runtime::Assignment fresh{{4, 5, 6}, {1, 2, 3}, {7, 8}, {9, 10, 11}};
  src.adopt_guideline(fresh);
  EXPECT_EQ(src.remaining_tasks(), 11u);
  EXPECT_EQ(src.next_task(0, 0.0), std::optional<runtime::TaskId>(4));
  EXPECT_EQ(src.next_task(1, 0.0), std::optional<runtime::TaskId>(1));
}

TEST_F(RecoveryFixture, AdoptGuidelineRejectsWrongCoverage) {
  OpassDynamicSource src({{0, 1, 2}, {3, 4, 5}, {6, 7, 8}, {9, 10, 11}}, nn, tasks,
                         placement);
  // Covers task 12 (unknown) instead of 11: must be rejected.
  runtime::Assignment wrong{{0, 1, 2}, {3, 4, 5}, {6, 7, 8}, {9, 10, 12}};
  EXPECT_THROW(src.adopt_guideline(wrong), std::invalid_argument);
  // Wrong process count too.
  EXPECT_THROW(src.adopt_guideline(runtime::Assignment{{0}}), std::invalid_argument);
}

// ------------------------------------------- exactly-once completion audit

TEST(AuditCompletion, CompleteRunPasses) {
  const auto report = audit_completion(4, {2, 0, 3, 1});
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(AuditCompletion, MissingAndDuplicateExecutionsAreNamed) {
  const auto report = audit_completion(4, {0, 2, 2});
  EXPECT_TRUE(report.has(AuditCode::kTaskNotExecuted));
  EXPECT_TRUE(report.has(AuditCode::kTaskExecutedTwice));
  EXPECT_NE(report.to_string().find("task 1 never executed"), std::string::npos);
  EXPECT_NE(report.to_string().find("task 3 never executed"), std::string::npos);
  EXPECT_NE(report.to_string().find("task 2 executed 2 times"), std::string::npos);
}

TEST(AuditCompletion, UnknownTaskIdIsFlagged) {
  const auto report = audit_completion(2, {0, 1, 7});
  EXPECT_TRUE(report.has(AuditCode::kUnknownTask));
}

}  // namespace
}  // namespace opass::core
