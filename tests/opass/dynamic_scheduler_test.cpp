#include "opass/dynamic_scheduler.hpp"

#include <gtest/gtest.h>

#include <set>

#include "opass/single_data.hpp"
#include "workload/dataset.hpp"

namespace opass::core {
namespace {

struct DynamicFixture : ::testing::Test {
  DynamicFixture() : nn(dfs::Topology::single_rack(4), 2, kDefaultChunkSize), rng(1) {
    tasks = workload::make_single_data_workload(nn, 12, policy, rng);
    placement = one_process_per_node(nn);
  }
  dfs::NameNode nn;
  dfs::RandomPlacement policy;
  Rng rng;
  std::vector<runtime::Task> tasks;
  ProcessPlacement placement;
};

TEST_F(DynamicFixture, ServesOwnListFirstInOrder) {
  OpassDynamicSource src({{3, 1}, {2}, {0}, {}}, nn, tasks, placement);
  EXPECT_EQ(src.next_task(0, 0.0), std::optional<runtime::TaskId>(3));
  EXPECT_EQ(src.next_task(0, 0.0), std::optional<runtime::TaskId>(1));
  EXPECT_EQ(src.next_task(1, 0.0), std::optional<runtime::TaskId>(2));
  EXPECT_EQ(src.steal_count(), 0u);
}

TEST_F(DynamicFixture, StealsFromLongestList) {
  // p3's list empty; p0 holds the longest list.
  OpassDynamicSource src({{0, 1, 2, 3}, {4}, {5}, {}}, nn, tasks, placement);
  const auto t = src.next_task(3, 0.0);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(src.steal_count(), 1u);
  // The stolen task came from p0's list.
  std::set<runtime::TaskId> p0_list{0, 1, 2, 3};
  EXPECT_TRUE(p0_list.count(*t));
}

TEST_F(DynamicFixture, StealPrefersCoLocatedTask) {
  // Find a task with a replica on node 3 and one without; both in p0's list.
  runtime::TaskId local_t = UINT32_MAX, remote_t = UINT32_MAX;
  for (const auto& t : tasks) {
    if (nn.chunk(t.inputs[0]).has_replica_on(3) && local_t == UINT32_MAX) local_t = t.id;
    if (!nn.chunk(t.inputs[0]).has_replica_on(3) && remote_t == UINT32_MAX) remote_t = t.id;
  }
  ASSERT_NE(local_t, UINT32_MAX);
  ASSERT_NE(remote_t, UINT32_MAX);

  OpassDynamicSource src({{remote_t, local_t}, {}, {}, {}}, nn, tasks, placement);
  EXPECT_EQ(src.next_task(3, 0.0), std::optional<runtime::TaskId>(local_t));
  EXPECT_EQ(src.steal_count(), 1u);
}

TEST_F(DynamicFixture, DrainsEverythingExactlyOnce) {
  const auto plan = assign_single_data(nn, tasks, placement, rng);
  OpassDynamicSource src(plan.assignment, nn, tasks, placement);
  std::set<runtime::TaskId> seen;
  // Round-robin idle processes until drained.
  bool progress = true;
  while (progress) {
    progress = false;
    for (runtime::ProcessId p = 0; p < 4; ++p) {
      const auto t = src.next_task(p, 0.0);
      if (t) {
        EXPECT_TRUE(seen.insert(*t).second) << "task dispensed twice";
        progress = true;
      }
    }
  }
  EXPECT_EQ(seen.size(), tasks.size());
}

TEST_F(DynamicFixture, ReturnsNulloptWhenEmpty) {
  OpassDynamicSource src({{}, {}, {}, {}}, nn, tasks, placement);
  EXPECT_EQ(src.next_task(0, 0.0), std::nullopt);
}

TEST_F(DynamicFixture, FastProcessEndsUpStealingWork) {
  // One process drains its short list then must steal repeatedly.
  OpassDynamicSource src({{0, 1, 2, 3, 4, 5}, {}, {}, {}}, nn, tasks, placement);
  for (int i = 0; i < 6; ++i) EXPECT_TRUE(src.next_task(1, 0.0).has_value());
  EXPECT_EQ(src.steal_count(), 6u);
  EXPECT_EQ(src.next_task(0, 0.0), std::nullopt);
}

TEST_F(DynamicFixture, MismatchedGuidelineRejected) {
  EXPECT_THROW(OpassDynamicSource({{0}}, nn, tasks, placement), std::invalid_argument);
  OpassDynamicSource src({{}, {}, {}, {}}, nn, tasks, placement);
  EXPECT_THROW(src.next_task(9, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace opass::core
