#include "opass/assignment_stats.hpp"

#include <gtest/gtest.h>

#include "workload/dataset.hpp"

namespace opass::core {
namespace {

struct StatsFixture : ::testing::Test {
  StatsFixture() : nn(dfs::Topology::single_rack(4), 2, kDefaultChunkSize), rng(1) {
    tasks = workload::make_single_data_workload(nn, 8, policy, rng);
    placement = one_process_per_node(nn);
  }
  dfs::NameNode nn;
  dfs::RoundRobinPlacement policy;  // chunk i on nodes {i%4, (i+1)%4}
  Rng rng;
  std::vector<runtime::Task> tasks;
  ProcessPlacement placement;
};

TEST_F(StatsFixture, FullyLocalAssignment) {
  // chunk i local to process i%4.
  runtime::Assignment a(4);
  for (runtime::TaskId t = 0; t < 8; ++t) a[t % 4].push_back(t);
  const auto s = evaluate_assignment(nn, tasks, a, placement);
  EXPECT_EQ(s.task_count, 8u);
  EXPECT_EQ(s.total_bytes, 8 * kDefaultChunkSize);
  EXPECT_EQ(s.local_bytes, s.total_bytes);
  EXPECT_DOUBLE_EQ(s.local_fraction(), 1.0);
  EXPECT_EQ(s.max_tasks_per_process, 2u);
  EXPECT_EQ(s.min_tasks_per_process, 2u);
}

TEST_F(StatsFixture, FullyRemoteAssignment) {
  // chunk i on {i%4,(i+1)%4}; process (i+2)%4 is never a replica holder.
  runtime::Assignment a(4);
  for (runtime::TaskId t = 0; t < 8; ++t) a[(t + 2) % 4].push_back(t);
  const auto s = evaluate_assignment(nn, tasks, a, placement);
  EXPECT_EQ(s.local_bytes, 0u);
  EXPECT_DOUBLE_EQ(s.local_fraction(), 0.0);
}

TEST_F(StatsFixture, LoadSpreadTracked) {
  runtime::Assignment a(4);
  for (runtime::TaskId t = 0; t < 8; ++t) a[0].push_back(t);
  const auto s = evaluate_assignment(nn, tasks, a, placement);
  EXPECT_EQ(s.max_tasks_per_process, 8u);
  EXPECT_EQ(s.min_tasks_per_process, 0u);
}

TEST_F(StatsFixture, RejectsMismatchedSizes) {
  runtime::Assignment a(3);
  EXPECT_THROW(evaluate_assignment(nn, tasks, a, placement), std::invalid_argument);
}

TEST_F(StatsFixture, RejectsUnknownTask) {
  runtime::Assignment a(4);
  a[0].push_back(99);
  EXPECT_THROW(evaluate_assignment(nn, tasks, a, placement), std::invalid_argument);
}

TEST_F(StatsFixture, EmptyAssignmentIsZero) {
  runtime::Assignment a(4);
  const auto s = evaluate_assignment(nn, tasks, a, placement);
  EXPECT_EQ(s.task_count, 0u);
  EXPECT_DOUBLE_EQ(s.local_fraction(), 0.0);
}

}  // namespace
}  // namespace opass::core
