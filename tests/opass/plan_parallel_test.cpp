// Planner thread-count parity: PlanOptions::threads (or a lent pool) may
// change only wall clock, never the plan. Every planner kind must emit
// byte-identical wire bytes for threads = 1, 2, 4, 8, whether the pool is
// transient or borrowed, and whether the workspace is fresh or warm.
#include <gtest/gtest.h>

#include <string>

#include "common/thread_pool.hpp"
#include "opass/opass.hpp"
#include "workload/dataset.hpp"

namespace opass::core {
namespace {

struct Layout {
  dfs::NameNode nn;
  std::vector<runtime::Task> tasks;
  ProcessPlacement placement;
};

Layout make_layout(std::uint64_t seed, std::uint32_t nodes, std::uint32_t tasks) {
  Rng rng(seed);
  Layout layout{dfs::NameNode(dfs::Topology::single_rack(nodes), 3), {}, {}};
  dfs::RandomPlacement policy;
  layout.tasks = workload::make_single_data_workload(layout.nn, tasks, policy, rng);
  layout.placement = one_process_per_node(layout.nn);
  return layout;
}

/// One full planning run with the given parallelism, serialized. A fresh
/// same-seeded rng per run keeps the random-fill stream comparable.
std::string planned_wire_bytes(std::uint64_t seed, PlannerKind kind,
                               std::uint32_t threads, ThreadPool* pool = nullptr) {
  const auto layout = make_layout(seed, 24, 120);
  graph::FlowWorkspace workspace;
  PlanOptions options;
  options.planner = kind;
  options.workspace = &workspace;
  options.threads = threads;
  options.pool = pool;
  Rng assign_rng(seed + 17);
  const auto result = core::plan({&layout.nn, &layout.tasks, &layout.placement, &assign_rng},
                                 options);
  return serialize_assignment(result.assignment,
                              static_cast<std::uint32_t>(layout.tasks.size()));
}

TEST(PlanParallel, EveryPlannerKindMatchesSerialForEveryThreadCount) {
  for (PlannerKind kind : {PlannerKind::kSingleData, PlannerKind::kWeighted,
                           PlannerKind::kRackAware, PlannerKind::kMultiData}) {
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
      const auto serial = planned_wire_bytes(seed, kind, 1);
      for (std::uint32_t threads : {2u, 4u, 8u})
        EXPECT_EQ(planned_wire_bytes(seed, kind, threads), serial)
            << planner_kind_name(kind) << " seed " << seed << " threads " << threads;
    }
  }
}

TEST(PlanParallel, LentPoolMatchesTransientPoolAndSerial) {
  ThreadPool pool(4);
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const auto serial = planned_wire_bytes(seed, PlannerKind::kSingleData, 1);
    EXPECT_EQ(planned_wire_bytes(seed, PlannerKind::kSingleData, 1, &pool), serial)
        << "lent pool, seed " << seed;
    EXPECT_EQ(planned_wire_bytes(seed, PlannerKind::kSingleData, 4), serial)
        << "transient pool, seed " << seed;
  }
}

TEST(PlanParallel, WarmWorkspaceUnderPoolStaysExact) {
  // Dynamic replanning reuses one workspace across layouts; the parallel
  // scratch must not leak state between solves of different shapes.
  ThreadPool pool(4);
  graph::FlowWorkspace warm_ws;
  for (std::uint64_t seed : {7ull, 2ull, 11ull}) {
    const auto layout = make_layout(seed, 20, 90);
    PlanOptions options;
    options.workspace = &warm_ws;
    options.pool = &pool;
    Rng warm_rng(seed + 17);
    const auto warm = core::plan({&layout.nn, &layout.tasks, &layout.placement, &warm_rng},
                                 options);

    graph::FlowWorkspace fresh_ws;
    PlanOptions serial_options;
    serial_options.workspace = &fresh_ws;
    Rng fresh_rng(seed + 17);
    const auto fresh =
        core::plan({&layout.nn, &layout.tasks, &layout.placement, &fresh_rng}, serial_options);
    EXPECT_EQ(warm.assignment, fresh.assignment) << "seed " << seed;
  }
}

}  // namespace
}  // namespace opass::core
