// AdmissionQueue batching/coalescing and the TenantAccounts fair-share
// ledger — the two policy pieces of the planning service, unit-tested
// without a namespace or a flow solve.
#include <gtest/gtest.h>

#include "opass/admission.hpp"

namespace opass::core {
namespace {

PendingJob pending(JobId id, Seconds arrival, std::uint32_t task_count,
                   TenantId tenant = 0) {
  PendingJob job;
  job.id = id;
  job.request.arrival = arrival;
  job.request.tenant = tenant;
  job.request.tasks.resize(task_count);
  for (std::uint32_t i = 0; i < task_count; ++i) {
    job.request.tasks[i].id = i;
    job.request.tasks[i].inputs = {0};
  }
  return job;
}

TEST(AdmissionQueue, OrdersByArrivalThenId) {
  AdmissionQueue q;
  q.push(pending(2, 1.0, 1));
  q.push(pending(1, 0.5, 1));  // submitted later, arrives earlier: sorts ahead
  q.push(pending(3, 0.5, 1));  // co-arrival with id 1: id order
  EXPECT_EQ(q.depth(), 3u);
  EXPECT_EQ(q.next_arrival(), 0.5);

  const auto first = q.pop_batch(10.0, {});
  ASSERT_EQ(first.size(), 2u);  // window 0: both 0.5-arrivals coalesce
  EXPECT_EQ(first[0].id, 1u);
  EXPECT_EQ(first[1].id, 3u);
  EXPECT_EQ(q.pop_batch(10.0, {}).front().id, 2u);
  EXPECT_TRUE(q.empty());
}

TEST(AdmissionQueue, WindowCoalescesNearArrivals) {
  AdmissionQueue q;
  q.push(pending(1, 0.0, 1));
  q.push(pending(2, 0.5, 1));
  q.push(pending(3, 0.9, 1));
  q.push(pending(4, 2.0, 1));

  BatchPolicy policy;
  policy.window = 1.0;
  const auto batch = q.pop_batch(10.0, policy);
  EXPECT_EQ(batch.size(), 3u);  // arrivals within [0, 1] of the head
  EXPECT_EQ(q.depth(), 1u);
  EXPECT_EQ(q.pop_batch(10.0, policy).front().id, 4u);
}

TEST(AdmissionQueue, NowCapsTheCutoffBelowTheWindow) {
  AdmissionQueue q;
  q.push(pending(1, 0.0, 1));
  q.push(pending(2, 0.5, 1));
  BatchPolicy policy;
  policy.window = 1.0;
  // Only 0.4 s have elapsed: job 2 has not arrived yet, window or not.
  EXPECT_EQ(q.pop_batch(0.4, policy).size(), 1u);
  EXPECT_EQ(q.depth(), 1u);
}

TEST(AdmissionQueue, JobAndTaskCapsBoundTheBatch) {
  AdmissionQueue q;
  for (JobId id = 1; id <= 4; ++id) q.push(pending(id, 0.0, 10));

  BatchPolicy by_jobs;
  by_jobs.max_jobs = 2;
  EXPECT_EQ(q.pop_batch(0.0, by_jobs).size(), 2u);

  BatchPolicy by_tasks;
  by_tasks.max_tasks = 15;  // head (10) + next (10) would exceed
  EXPECT_EQ(q.pop_batch(0.0, by_tasks).size(), 1u);
  EXPECT_EQ(q.depth(), 1u);
}

TEST(AdmissionQueue, OversizedHeadStillPops) {
  AdmissionQueue q;
  q.push(pending(1, 0.0, 100));
  BatchPolicy policy;
  policy.max_tasks = 10;
  const auto batch = q.pop_batch(0.0, policy);
  ASSERT_EQ(batch.size(), 1u);  // the queue must not wedge on one big job
  EXPECT_EQ(batch[0].id, 1u);
}

TEST(AdmissionQueue, CancelRemovesMidQueue) {
  AdmissionQueue q;
  q.push(pending(1, 0.0, 4));
  q.push(pending(2, 1.0, 8));
  q.push(pending(3, 2.0, 2));
  EXPECT_EQ(q.pending_tasks(), 14u);

  EXPECT_TRUE(q.cancel(2));
  EXPECT_FALSE(q.cancel(2));  // already gone
  EXPECT_FALSE(q.cancel(99));
  EXPECT_EQ(q.depth(), 2u);
  EXPECT_EQ(q.pending_tasks(), 6u);
  EXPECT_EQ(q.pop_batch(0.0, {}).front().id, 1u);
  EXPECT_EQ(q.pop_batch(2.0, {}).front().id, 3u);
}

TEST(AdmissionQueue, PopRequiresAReadyBatch) {
  AdmissionQueue q;
  EXPECT_THROW(q.next_arrival(), std::invalid_argument);
  EXPECT_THROW(q.pop_batch(0.0, {}), std::invalid_argument);
  q.push(pending(1, 5.0, 1));
  EXPECT_FALSE(q.batch_ready(4.9));
  EXPECT_THROW(q.pop_batch(4.9, {}), std::invalid_argument);
  EXPECT_TRUE(q.batch_ready(5.0));
}

TEST(TenantAccounts, TouchFixesWeightChargeAndRefundTrack) {
  TenantAccounts accounts;
  accounts.touch(7, 2.0);
  accounts.touch(7, 2.0);  // idempotent re-touch
  EXPECT_THROW(accounts.touch(7, 3.0), std::invalid_argument);
  EXPECT_TRUE(accounts.known(7));
  EXPECT_FALSE(accounts.known(8));

  accounts.charge(7, 100);
  EXPECT_EQ(accounts.charged(7), 100u);
  EXPECT_EQ(accounts.normalized_usage(7), 50.0);
  accounts.refund(7, 40);
  EXPECT_EQ(accounts.charged(7), 60u);
  EXPECT_THROW(accounts.refund(7, 1000), std::logic_error);
}

TEST(TenantAccounts, SplitSlotsFollowsWeights) {
  TenantAccounts accounts;
  accounts.touch(0, 1.0);
  accounts.touch(1, 2.0);
  // Equal demand, zero usage: grants converge to the 1:2 weight ratio.
  const auto grant = accounts.split_slots(6, {0, 1}, {4, 4}, /*bytes_per_slot=*/10);
  ASSERT_EQ(grant.size(), 2u);
  EXPECT_EQ(grant[0], 2u);
  EXPECT_EQ(grant[1], 4u);
}

TEST(TenantAccounts, SplitSlotsRespectsDemandCaps) {
  TenantAccounts accounts;
  accounts.touch(0, 1.0);
  accounts.touch(1, 2.0);
  // More slots than total demand: every tenant caps out at its demand.
  const auto grant = accounts.split_slots(10, {0, 1}, {2, 4}, 10);
  EXPECT_EQ(grant[0], 2u);
  EXPECT_EQ(grant[1], 4u);
}

TEST(TenantAccounts, SplitSlotsCompensatesPastUsage) {
  TenantAccounts accounts;
  accounts.touch(0, 1.0);
  accounts.touch(1, 1.0);
  accounts.charge(0, 40);  // tenant 0 already consumed 4 slots' worth
  const auto grant = accounts.split_slots(4, {0, 1}, {4, 4}, 10);
  // Equal weights, but tenant 1 is behind: it receives every slot.
  EXPECT_EQ(grant[0], 0u);
  EXPECT_EQ(grant[1], 4u);
}

TEST(TenantAccounts, SplitSlotsTiesBreakOnTenantId) {
  TenantAccounts accounts;
  accounts.touch(3, 1.0);
  accounts.touch(1, 1.0);
  const auto grant = accounts.split_slots(1, {3, 1}, {1, 1}, 10);
  EXPECT_EQ(grant[0], 0u);
  EXPECT_EQ(grant[1], 1u);  // tie on usage: the lower tenant id wins
}

}  // namespace
}  // namespace opass::core
