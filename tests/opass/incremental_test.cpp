#include "opass/incremental.hpp"

#include <gtest/gtest.h>

#include <set>

#include "opass/single_data.hpp"
#include "workload/dataset.hpp"

namespace opass::core {
namespace {

struct IncrementalFixture : ::testing::Test {
  IncrementalFixture() : nn(dfs::Topology::single_rack(8), 3, kDefaultChunkSize), rng(11) {
    all_tasks = workload::make_single_data_workload(nn, 80, policy, rng);
    placement = one_process_per_node(nn);
  }

  std::vector<runtime::Task> batch(std::uint32_t from, std::uint32_t count) const {
    return {all_tasks.begin() + from, all_tasks.begin() + from + count};
  }

  dfs::NameNode nn;
  dfs::RandomPlacement policy;
  Rng rng;
  std::vector<runtime::Task> all_tasks;
  ProcessPlacement placement;
};

TEST_F(IncrementalFixture, SingleBatchMatchesFullPlanner) {
  IncrementalPlanner planner(nn, placement);
  Rng r1(3), r2(3);
  const auto inc = planner.match_batch(all_tasks, r1, {});
  const auto full = assign_single_data(nn, all_tasks, placement, r2,
                                       {graph::MaxFlowAlgorithm::kDinic});
  EXPECT_EQ(inc.locally_matched, full.locally_matched);
  EXPECT_EQ(inc.locally_matched + inc.randomly_filled, 80u);
}

TEST_F(IncrementalFixture, BatchPlanCarriesAssignmentStats) {
  IncrementalPlanner planner(nn, placement);
  Rng r1(3);
  const auto plan = planner.match_batch(all_tasks, r1, {});
  EXPECT_EQ(plan.stats.task_count, 80u);
  EXPECT_EQ(plan.stats.total_bytes, 80 * kDefaultChunkSize);
  // Matched tasks are local by construction; lucky fills may add more.
  EXPECT_GE(plan.stats.local_bytes,
            static_cast<Bytes>(plan.locally_matched) * kDefaultChunkSize);
  EXPECT_LE(plan.stats.local_bytes, plan.stats.total_bytes);
  // The quota rule keeps per-process counts within one of each other.
  EXPECT_LE(plan.stats.max_tasks_per_process - plan.stats.min_tasks_per_process, 1u);
}

TEST_F(IncrementalFixture, ExternalWorkspaceAndAlgorithmMatchInternal) {
  IncrementalPlanner dinic(nn, placement), external(nn, placement);
  Rng r1(3), r2(3);
  graph::FlowWorkspace workspace;
  core::PlanOptions options;
  options.algorithm = graph::MaxFlowAlgorithm::kEdmondsKarp;
  options.workspace = &workspace;
  const auto a = dinic.match_batch(all_tasks, r1, {});
  const auto b = external.match_batch(all_tasks, r2, options);
  // Both solvers find a maximum matching of the same Fig. 5 network.
  EXPECT_EQ(a.locally_matched, b.locally_matched);
  EXPECT_EQ(a.stats.local_bytes, b.stats.local_bytes);
  EXPECT_GT(workspace.network.edge_count(), 0u);  // the external arena was used
}

TEST_F(IncrementalFixture, BatchesCoverEveryTaskOnce) {
  IncrementalPlanner planner(nn, placement);
  std::set<runtime::TaskId> seen;
  for (std::uint32_t start = 0; start < 80; start += 16) {
    const auto plan = planner.match_batch(batch(start, 16), rng, {});
    for (const auto& list : plan.assignment)
      for (auto t : list) EXPECT_TRUE(seen.insert(t).second) << "task assigned twice";
  }
  EXPECT_EQ(seen.size(), 80u);
  EXPECT_EQ(planner.batches_matched(), 5u);
}

TEST_F(IncrementalFixture, CumulativeLoadStaysBalanced) {
  IncrementalPlanner planner(nn, placement);
  // Deliberately uneven batch sizes.
  const std::uint32_t sizes[] = {5, 17, 3, 30, 25};
  std::uint32_t start = 0;
  for (auto s : sizes) {
    (void)planner.match_batch(batch(start, s), rng, {});  // reads load(), not the plan
    start += s;
    std::uint32_t hi = 0, lo = UINT32_MAX;
    for (auto l : planner.load()) {
      hi = std::max(hi, l);
      lo = std::min(lo, l);
    }
    EXPECT_LE(hi - lo, 1u) << "after batch of " << s;
  }
}

TEST_F(IncrementalFixture, LocalityHighPerBatch) {
  IncrementalPlanner planner(nn, placement);
  std::uint32_t local = 0;
  for (std::uint32_t start = 0; start < 80; start += 20)
    local += planner.match_batch(batch(start, 20), rng, {}).locally_matched;
  // Per-batch matching loses some global optimality but stays high.
  EXPECT_GT(local, 70u);
}

TEST_F(IncrementalFixture, EmptyBatchIsFine) {
  IncrementalPlanner planner(nn, placement);
  const auto plan = planner.match_batch({}, rng, {});
  EXPECT_EQ(plan.locally_matched, 0u);
  EXPECT_EQ(planner.batches_matched(), 1u);
}

TEST_F(IncrementalFixture, GlobalTaskIdsPreserved) {
  IncrementalPlanner planner(nn, placement);
  const auto plan = planner.match_batch(batch(40, 8), rng, {});
  for (const auto& list : plan.assignment)
    for (auto t : list) {
      EXPECT_GE(t, 40u);
      EXPECT_LT(t, 48u);
    }
}

TEST_F(IncrementalFixture, Validation) {
  EXPECT_THROW(IncrementalPlanner(nn, {}), std::invalid_argument);
  EXPECT_THROW(IncrementalPlanner(nn, {99}), std::invalid_argument);
  IncrementalPlanner planner(nn, placement);
  runtime::Task multi;
  multi.inputs = {0, 1};
  EXPECT_THROW(planner.match_batch({multi}, rng, {}), std::invalid_argument);
}

}  // namespace
}  // namespace opass::core
