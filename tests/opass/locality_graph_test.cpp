#include "opass/locality_graph.hpp"

#include <gtest/gtest.h>

namespace opass::core {
namespace {

struct LocalityGraphFixture : ::testing::Test {
  LocalityGraphFixture()
      : nn(dfs::Topology::single_rack(4), 2, kDefaultChunkSize), rng(1) {}
  dfs::NameNode nn;
  dfs::RoundRobinPlacement policy;
  Rng rng;
};

TEST_F(LocalityGraphFixture, OneProcessPerNodeDefault) {
  const auto p = one_process_per_node(nn);
  ASSERT_EQ(p.size(), 4u);
  for (std::uint32_t i = 0; i < 4; ++i) EXPECT_EQ(p[i], i);
}

TEST_F(LocalityGraphFixture, ExplicitProcessCountWraps) {
  const auto p = one_process_per_node(nn, 6);
  ASSERT_EQ(p.size(), 6u);
  EXPECT_EQ(p[4], 0u);
  EXPECT_EQ(p[5], 1u);
}

TEST_F(LocalityGraphFixture, ProcessChunkGraphMatchesReplicas) {
  nn.create_file("a", 4 * kDefaultChunkSize, policy, rng);
  const auto g = build_process_chunk_graph(nn, one_process_per_node(nn));
  // Every (process, chunk) edge corresponds to a replica and vice versa:
  // total edges = chunks * replication when one process sits on each node.
  EXPECT_EQ(g.edge_count(), 4u * 2u);
  for (const auto& e : g.edges()) {
    EXPECT_TRUE(nn.chunk(e.right).has_replica_on(e.left));
    EXPECT_EQ(e.weight, kDefaultChunkSize);
  }
}

TEST_F(LocalityGraphFixture, ProcessTaskGraphWeightsAreCoLocatedBytes) {
  // Two files of 1 chunk each; one task reads both.
  nn.create_file("a", 10 * kMiB, policy, rng);  // chunk 0 on {0,1}
  nn.create_file("b", 20 * kMiB, policy, rng);  // chunk 1 on {1,2}
  runtime::Task t;
  t.id = 0;
  t.inputs = {0, 1};
  const auto g = build_process_task_graph(nn, {t}, one_process_per_node(nn));
  // p0: 10 MiB, p1: 30 MiB, p2: 20 MiB, p3: no edge.
  ASSERT_EQ(g.edge_count(), 3u);
  Bytes w[4] = {0, 0, 0, 0};
  for (const auto& e : g.edges()) w[e.left] = e.weight;
  EXPECT_EQ(w[0], 10 * kMiB);
  EXPECT_EQ(w[1], 30 * kMiB);
  EXPECT_EQ(w[2], 20 * kMiB);
  EXPECT_EQ(w[3], 0u);
}

TEST_F(LocalityGraphFixture, EmptyPlacementRejected) {
  EXPECT_THROW(build_process_chunk_graph(nn, {}), std::invalid_argument);
  EXPECT_THROW(build_process_task_graph(nn, {}, {}), std::invalid_argument);
}

TEST_F(LocalityGraphFixture, ProcessOnUnknownNodeRejected) {
  nn.create_file("a", kDefaultChunkSize, policy, rng);
  EXPECT_THROW(build_process_chunk_graph(nn, {99}), std::invalid_argument);
}

}  // namespace
}  // namespace opass::core
