// PlannerService behaviour: admission order and batching, per-tenant fair
// share, cancellation (queued and planned), completion, and the edge cases
// of empty jobs and empty advances.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "opass/service.hpp"
#include "workload/dataset.hpp"

namespace opass::core {
namespace {

struct ServiceFixture : ::testing::Test {
  ServiceFixture() : nn(dfs::Topology::single_rack(8), 3, kDefaultChunkSize), rng(11) {
    all_tasks = workload::make_single_data_workload(nn, 80, policy, rng);
    placement = one_process_per_node(nn);
  }

  JobRequest job(std::uint32_t from, std::uint32_t count, TenantId tenant = 0,
                 double weight = 1.0, Seconds arrival = 0) const {
    JobRequest request;
    request.tasks = {all_tasks.begin() + from, all_tasks.begin() + from + count};
    request.tenant = tenant;
    request.weight = weight;
    request.arrival = arrival;
    return request;
  }

  static std::set<runtime::TaskId> assigned_ids(const JobStatus& status) {
    std::set<runtime::TaskId> ids;
    for (const auto& list : status.assignment)
      for (auto t : list) EXPECT_TRUE(ids.insert(t).second) << "task assigned twice";
    return ids;
  }

  dfs::NameNode nn;
  dfs::RandomPlacement policy;
  Rng rng;
  std::vector<runtime::Task> all_tasks;
  ProcessPlacement placement;
};

/// Captures every BatchReport the service emits.
struct RecordingProbe : ServiceProbe {
  void on_job_queued(Seconds, const JobStatus&, std::uint32_t depth) override {
    max_depth = std::max(max_depth, depth);
  }
  void on_job_cancelled(Seconds, const JobStatus&, std::uint32_t) override {
    ++cancelled;
  }
  void on_batch_planned(const BatchReport& report) override { reports.push_back(report); }

  std::vector<BatchReport> reports;
  std::uint32_t max_depth = 0;
  std::uint32_t cancelled = 0;
};

TEST_F(ServiceFixture, AdvancePlansCoArrivalsAsOneBatch) {
  PlannerService service(nn, placement);
  const JobId a = service.submit(job(0, 16));
  const JobId b = service.submit(job(16, 16));
  const JobId c = service.submit(job(32, 16, 0, 1.0, /*arrival=*/1.0));
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(c, 3u);
  EXPECT_EQ(service.queue_depth(), 3u);
  EXPECT_EQ(service.status(a).state, JobState::kQueued);

  service.advance_to(0.5);  // window 0: the two co-arrivals merge, c waits
  EXPECT_EQ(service.now(), 0.5);
  EXPECT_EQ(service.status(a).batch, 1u);
  EXPECT_EQ(service.status(b).batch, 1u);
  EXPECT_EQ(service.status(a).state, JobState::kPlanned);
  EXPECT_EQ(service.status(a).planned_at, 0.0);
  EXPECT_EQ(service.status(c).state, JobState::kQueued);
  EXPECT_EQ(service.queue_depth(), 1u);

  service.advance_to(1.0);
  EXPECT_EQ(service.status(c).batch, 2u);
  EXPECT_EQ(service.counters().batches, 2u);
  EXPECT_EQ(service.counters().jobs_planned, 3u);
  EXPECT_EQ(service.counters().tasks_planned, 48u);

  // Each job's assignment holds exactly its own task ids.
  std::set<runtime::TaskId> want;
  for (std::uint32_t t = 0; t < 16; ++t) want.insert(t);
  EXPECT_EQ(assigned_ids(service.status(a)), want);
}

TEST_F(ServiceFixture, BatchWindowCoalescesAcrossArrivals) {
  ServiceOptions options;
  options.batch_window = 1.0;
  PlannerService service(nn, placement, options);
  (void)service.submit(job(0, 8, 0, 1.0, 0.0));
  (void)service.submit(job(8, 8, 0, 1.0, 0.6));
  (void)service.submit(job(16, 8, 0, 1.0, 2.5));
  service.drain();
  EXPECT_EQ(service.counters().batches, 2u);
  EXPECT_EQ(service.status(1).batch, service.status(2).batch);
  EXPECT_EQ(service.status(3).batch, 2u);
  // The batch cut happens at head arrival + window, and time follows it.
  EXPECT_EQ(service.status(1).planned_at, 1.0);
  EXPECT_EQ(service.status(3).planned_at, 3.5);
  EXPECT_EQ(service.now(), 3.5);
}

TEST_F(ServiceFixture, FairShareSplitsTheLocalityBudgetByWeight) {
  // Two processes on an 8-node, replication-1 namespace: locality is scarce,
  // so the fair-share split decides who gets it.
  dfs::NameNode scarce(dfs::Topology::single_rack(8), 1, kDefaultChunkSize);
  Rng r(17);
  const auto tasks = workload::make_single_data_workload(scarce, 24, policy, r);

  ServiceOptions options;
  options.seed = 5;
  PlannerService service(scarce, {0, 1}, options);
  RecordingProbe probe;
  service.set_probe(&probe);

  JobRequest light, heavy;
  light.tasks = {tasks.begin(), tasks.begin() + 12};
  light.tenant = 0;
  light.weight = 1.0;
  heavy.tasks = {tasks.begin() + 12, tasks.end()};
  heavy.tenant = 1;
  heavy.weight = 2.0;
  (void)service.submit(std::move(light));
  (void)service.submit(std::move(heavy));
  service.drain();

  ASSERT_EQ(probe.reports.size(), 1u);
  const BatchReport& report = probe.reports[0];
  ASSERT_EQ(report.tenants.size(), 2u);
  EXPECT_EQ(report.tenants[0].tenant, 0u);  // first-appearance order
  EXPECT_EQ(report.tenants[1].tenant, 1u);
  EXPECT_EQ(report.tenants[0].tasks, 12u);
  EXPECT_EQ(report.tenants[1].tasks, 12u);
  // Equal demand and zero usage: the heavier tenant never receives fewer
  // locality slots than the lighter one.
  EXPECT_GE(report.tenants[1].fair_slots, report.tenants[0].fair_slots);
  EXPECT_GT(report.locally_matched, 0u);
  EXPECT_EQ(report.tenants[0].locally_matched + report.tenants[1].locally_matched,
            report.locally_matched);
  EXPECT_EQ(report.locally_matched + report.randomly_filled, 24u);

  // The ledger records the weights and charges local bytes per tenant.
  EXPECT_EQ(service.tenants().weight(0), 1.0);
  EXPECT_EQ(service.tenants().weight(1), 2.0);
  EXPECT_EQ(service.tenants().charged(0), service.status(1).local_bytes);
  EXPECT_EQ(service.tenants().charged(1), service.status(2).local_bytes);
}

TEST_F(ServiceFixture, CancelMidQueueSkipsPlanning) {
  PlannerService service(nn, placement);
  RecordingProbe probe;
  service.set_probe(&probe);
  (void)service.submit(job(0, 8));
  const JobId doomed = service.submit(job(8, 8));
  (void)service.submit(job(16, 8));

  EXPECT_TRUE(service.cancel(doomed));
  EXPECT_EQ(service.status(doomed).state, JobState::kCancelled);
  EXPECT_EQ(service.queue_depth(), 2u);
  EXPECT_EQ(probe.cancelled, 1u);
  EXPECT_FALSE(service.cancel(doomed));  // already cancelled

  service.drain();
  EXPECT_EQ(service.counters().jobs_planned, 2u);
  EXPECT_EQ(service.counters().jobs_cancelled, 1u);
  EXPECT_EQ(service.status(doomed).assignment.size(), 0u);  // never planned
  EXPECT_EQ(service.counters().tasks_planned, 16u);
}

TEST_F(ServiceFixture, CancelPlannedJobFreesLoadAndRefundsTenant) {
  PlannerService service(nn, placement);
  const JobId id = service.submit(job(0, 16, /*tenant=*/3));
  service.drain();
  EXPECT_EQ(service.status(id).state, JobState::kPlanned);

  std::uint32_t active = 0;
  for (auto l : service.process_load()) active += l;
  EXPECT_EQ(active, 16u);
  const Bytes charged = service.tenants().charged(3);
  EXPECT_GT(charged, 0u);

  EXPECT_TRUE(service.cancel(id));
  EXPECT_EQ(service.status(id).state, JobState::kCancelled);
  for (auto l : service.process_load()) EXPECT_EQ(l, 0u);
  EXPECT_EQ(service.tenants().charged(3), 0u);  // full refund
  EXPECT_FALSE(service.complete(id));           // cancelled, not completable
}

TEST_F(ServiceFixture, CompleteReleasesCapacityButKeepsTheCharge) {
  PlannerService service(nn, placement);
  const JobId id = service.submit(job(0, 16, /*tenant=*/2));
  service.drain();
  const Bytes charged = service.tenants().charged(2);

  EXPECT_TRUE(service.complete(id));
  EXPECT_EQ(service.status(id).state, JobState::kCompleted);
  for (auto l : service.process_load()) EXPECT_EQ(l, 0u);
  EXPECT_EQ(service.tenants().charged(2), charged);  // fairness remembers
  EXPECT_EQ(service.counters().jobs_completed, 1u);
  EXPECT_FALSE(service.complete(id));
  EXPECT_FALSE(service.cancel(id));

  // Freed capacity is re-planned: a second wave lands with balanced load.
  (void)service.submit(job(16, 16, 2, 1.0, service.now()));
  service.drain();
  std::uint32_t active = 0;
  for (auto l : service.process_load()) active += l;
  EXPECT_EQ(active, 16u);
}

TEST_F(ServiceFixture, EmptyJobsAndEmptyAdvancesAreFine) {
  PlannerService service(nn, placement);
  service.advance_to(1.0);  // nothing queued
  EXPECT_EQ(service.now(), 1.0);
  service.drain();  // still nothing
  EXPECT_EQ(service.counters().batches, 0u);

  JobRequest empty;
  empty.arrival = 2.0;
  const JobId id = service.submit(std::move(empty));
  service.drain();
  EXPECT_EQ(service.status(id).state, JobState::kPlanned);
  EXPECT_EQ(service.status(id).total_bytes, 0u);
  EXPECT_EQ(assigned_ids(service.status(id)).size(), 0u);
  EXPECT_EQ(service.counters().batches, 1u);
}

TEST_F(ServiceFixture, Validation) {
  EXPECT_THROW(PlannerService(nn, {}), std::invalid_argument);
  EXPECT_THROW(PlannerService(nn, {99}), std::invalid_argument);

  PlannerService service(nn, placement);
  service.advance_to(5.0);
  EXPECT_THROW((void)service.submit(job(0, 4, 0, 1.0, /*arrival=*/4.0)),
               std::invalid_argument);  // arrival in the past

  JobRequest multi;
  multi.tasks.resize(1);
  multi.tasks[0].inputs = {0, 1};
  multi.arrival = 5.0;
  EXPECT_THROW((void)service.submit(std::move(multi)), std::invalid_argument);

  (void)service.submit(job(0, 4, /*tenant=*/9, /*weight=*/1.0, 5.0));
  EXPECT_THROW((void)service.submit(job(4, 4, 9, /*weight=*/2.0, 5.0)),
               std::invalid_argument);  // weight fixed at first touch

  EXPECT_THROW(service.status(kInvalidJob), std::invalid_argument);
  EXPECT_THROW(service.status(42), std::invalid_argument);
  EXPECT_THROW(service.advance_to(4.0), std::invalid_argument);  // time reversal
}

TEST_F(ServiceFixture, LoadStaysBalancedAcrossBatches) {
  PlannerService service(nn, placement);
  Seconds t = 0;
  for (std::uint32_t start = 0; start < 80; start += 16) {
    (void)service.submit(job(start, 16, 0, 1.0, t));
    t += 1.0;
  }
  service.drain();
  std::uint32_t hi = 0, lo = UINT32_MAX;
  for (auto l : service.process_load()) {
    hi = std::max(hi, l);
    lo = std::min(lo, l);
  }
  EXPECT_LE(hi - lo, 1u);  // the incremental quota rule, across batches
  EXPECT_EQ(service.counters().batches, 5u);
  EXPECT_EQ(service.counters().max_queue_depth, 5u);
}

}  // namespace
}  // namespace opass::core
