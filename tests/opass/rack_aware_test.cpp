#include "opass/rack_aware.hpp"

#include <gtest/gtest.h>

#include "opass/single_data.hpp"
#include "workload/dataset.hpp"

namespace opass::core {
namespace {

TEST(RackAware, SingleRackDegeneratesToNodeLocalPlusFill) {
  dfs::NameNode nn(dfs::Topology::single_rack(8), 3, kDefaultChunkSize);
  dfs::RandomPlacement policy;
  Rng rng(1);
  const auto tasks = workload::make_single_data_workload(nn, 32, policy, rng);
  const auto placement = one_process_per_node(nn);

  Rng r1(2), r2(2);
  const auto rack = assign_single_data_rack_aware(nn, tasks, placement, r1);
  const auto unit = assign_single_data(nn, tasks, placement, r2);
  EXPECT_EQ(rack.rack_local, 0u);  // no second rack exists
  EXPECT_EQ(rack.node_local, unit.locally_matched);
  EXPECT_TRUE(runtime::is_partition(rack.assignment, 32));
}

TEST(RackAware, QuotasRespected) {
  dfs::NameNode nn(dfs::Topology::uniform_racks(12, 3), 2, kDefaultChunkSize);
  dfs::RandomPlacement policy;
  Rng rng(3);
  const auto tasks = workload::make_single_data_workload(nn, 30, policy, rng);
  const auto placement = one_process_per_node(nn);
  const auto plan = assign_single_data_rack_aware(nn, tasks, placement, rng);
  EXPECT_TRUE(runtime::is_partition(plan.assignment, 30));
  const auto quotas = equal_quotas(30, 12);
  for (std::uint32_t p = 0; p < 12; ++p)
    EXPECT_EQ(plan.assignment[p].size(), quotas[p]) << "p=" << p;
  EXPECT_EQ(plan.task_count(), 30u);
}

TEST(RackAware, RackPhaseRecoversWhatNodePhaseCannot) {
  // r = 1 on a racked cluster: node-local matching is weak (one replica),
  // but the rack phase should place most leftovers within the right rack.
  dfs::NameNode nn(dfs::Topology::uniform_racks(16, 4), 1, kDefaultChunkSize);
  dfs::RandomPlacement policy;
  Rng rng(5);
  const auto tasks = workload::make_single_data_workload(nn, 64, policy, rng);
  const auto placement = one_process_per_node(nn);
  const auto plan = assign_single_data_rack_aware(nn, tasks, placement, rng);

  EXPECT_GT(plan.rack_local, 0u);
  EXPECT_GT(plan.node_local + plan.rack_local, 48u);  // most tasks in-rack

  // Verify the claimed locality levels are real.
  const auto& topo = nn.topology();
  std::uint32_t node_ok = 0, rack_ok = 0;
  for (std::uint32_t p = 0; p < placement.size(); ++p) {
    for (auto t : plan.assignment[p]) {
      const auto& chunk = nn.chunk(tasks[t].inputs[0]);
      if (chunk.has_replica_on(placement[p])) {
        ++node_ok;
        continue;
      }
      for (auto rep : chunk.replicas)
        if (topo.rack_of(rep) == topo.rack_of(placement[p])) {
          ++rack_ok;
          break;
        }
    }
  }
  EXPECT_GE(node_ok, plan.node_local);
  EXPECT_GE(node_ok + rack_ok, plan.node_local + plan.rack_local);
}

TEST(RackAware, NodeLocalAlwaysPreferred) {
  // Node-local count must match the plain matcher's optimum: the rack phase
  // never cannibalizes node locality.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    dfs::NameNode nn(dfs::Topology::uniform_racks(16, 4), 2, kDefaultChunkSize);
    dfs::RandomPlacement policy;
    Rng rng(seed);
    const auto tasks = workload::make_single_data_workload(nn, 48, policy, rng);
    const auto placement = one_process_per_node(nn);
    Rng r1(seed + 10), r2(seed + 10);
    const auto rack = assign_single_data_rack_aware(nn, tasks, placement, r1);
    const auto unit = assign_single_data(nn, tasks, placement, r2);
    EXPECT_EQ(rack.node_local, unit.locally_matched) << "seed " << seed;
  }
}

TEST(RackAware, RejectsMultiInputTasks) {
  dfs::NameNode nn(dfs::Topology::uniform_racks(4, 2), 2, kDefaultChunkSize);
  dfs::RandomPlacement policy;
  Rng rng(1);
  nn.create_file("a", 2 * kDefaultChunkSize, policy, rng);
  runtime::Task t;
  t.inputs = {0, 1};
  EXPECT_THROW(assign_single_data_rack_aware(nn, {t}, one_process_per_node(nn), rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace opass::core
