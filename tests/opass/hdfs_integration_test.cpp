#include "opass/hdfs_integration.hpp"

#include <gtest/gtest.h>

#include <set>

#include "workload/dataset.hpp"

namespace opass::core {
namespace {

struct HdfsIntegrationFixture : ::testing::Test {
  HdfsIntegrationFixture()
      : nn(dfs::Topology::single_rack(8), 3, 4 * kMiB), rng(9) {
    fs = hdfs::hdfsConnect(&nn, dfs::kInvalidNode);
  }
  ~HdfsIntegrationFixture() override { hdfs::hdfsDisconnect(fs); }

  dfs::NameNode nn;
  dfs::RandomPlacement policy;
  Rng rng;
  hdfs::hdfsFS fs = nullptr;
};

TEST_F(HdfsIntegrationFixture, GraphMatchesDirectNameNodeGraph) {
  // Two files created in order: block order through the API equals chunk
  // creation order, so the API-built graph must be edge-identical to the
  // internal one.
  nn.create_file("in/a", 10 * kMiB, policy, rng);  // 3 blocks
  nn.create_file("in/b", 7 * kMiB, policy, rng);   // 2 blocks
  const auto placement = one_process_per_node(nn);

  const auto via_api = build_locality_via_hdfs(fs, {"in/a", "in/b"}, placement);
  const auto direct = build_process_chunk_graph(nn, placement);

  ASSERT_EQ(via_api.graph.left_count(), direct.left_count());
  ASSERT_EQ(via_api.graph.right_count(), direct.right_count());
  ASSERT_EQ(via_api.graph.edge_count(), direct.edge_count());

  auto edge_set = [](const graph::BipartiteGraph& g) {
    std::set<std::tuple<std::uint32_t, std::uint32_t, Bytes>> s;
    for (const auto& e : g.edges()) s.insert({e.left, e.right, e.weight});
    return s;
  };
  EXPECT_EQ(edge_set(via_api.graph), edge_set(direct));
}

TEST_F(HdfsIntegrationFixture, BlockTableCarriesIdentityAndSizes) {
  nn.create_file("solo", 9 * kMiB, policy, rng);  // 4 + 4 + 1 MiB
  const auto placement = one_process_per_node(nn);
  const auto view = build_locality_via_hdfs(fs, {"solo"}, placement);
  ASSERT_EQ(view.blocks.size(), 3u);
  EXPECT_EQ(view.blocks[0].path, "solo");
  EXPECT_EQ(view.blocks[0].block_index, 0u);
  EXPECT_EQ(view.blocks[0].size, 4 * kMiB);
  EXPECT_EQ(view.blocks[2].size, 1 * kMiB);
}

TEST_F(HdfsIntegrationFixture, MissingPathRejected) {
  EXPECT_THROW(build_locality_via_hdfs(fs, {"ghost"}, one_process_per_node(nn)),
               std::invalid_argument);
}

TEST_F(HdfsIntegrationFixture, EmptyPathsGiveEmptyGraph) {
  const auto view = build_locality_via_hdfs(fs, {}, one_process_per_node(nn));
  EXPECT_EQ(view.graph.right_count(), 0u);
  EXPECT_TRUE(view.blocks.empty());
}

}  // namespace
}  // namespace opass::core
