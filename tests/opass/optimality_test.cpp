// Optimality properties of the matchers, verified against brute force and
// against the stable-marriage-style invariant.
#include <gtest/gtest.h>

#include <algorithm>

#include "opass/multi_data.hpp"
#include "opass/single_data.hpp"
#include "workload/dataset.hpp"
#include "workload/multi_input.hpp"

namespace opass::core {
namespace {

/// Exhaustive maximum of locally-assigned tasks over every quota-respecting
/// assignment, via recursion over tasks (n small).
std::uint32_t brute_force_max_local(const dfs::NameNode& nn,
                                    const std::vector<runtime::Task>& tasks,
                                    const ProcessPlacement& placement) {
  const auto m = static_cast<std::uint32_t>(placement.size());
  const auto n = static_cast<std::uint32_t>(tasks.size());
  const auto quotas = equal_quotas(n, m);
  std::vector<std::uint32_t> used(m, 0);

  std::uint32_t best = 0;
  auto recurse = [&](auto&& self, std::uint32_t t, std::uint32_t local) -> void {
    if (t == n) {
      best = std::max(best, local);
      return;
    }
    for (std::uint32_t p = 0; p < m; ++p) {
      if (used[p] >= quotas[p]) continue;
      ++used[p];
      const bool is_local = nn.chunk(tasks[t].inputs[0]).has_replica_on(placement[p]);
      self(self, t + 1, local + (is_local ? 1 : 0));
      --used[p];
    }
  };
  recurse(recurse, 0, 0);
  return best;
}

TEST(Optimality, FlowMatcherEqualsBruteForceOnRandomInstances) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    dfs::NameNode nn(dfs::Topology::single_rack(3), 2, kDefaultChunkSize);
    dfs::RandomPlacement policy;
    Rng rng(seed);
    const auto tasks = workload::make_single_data_workload(nn, 9, policy, rng);
    const auto placement = one_process_per_node(nn);

    const auto plan = assign_single_data(nn, tasks, placement, rng);
    const auto optimal = brute_force_max_local(nn, tasks, placement);
    EXPECT_EQ(plan.locally_matched, optimal) << "seed " << seed;
  }
}

TEST(Optimality, FlowMatcherEqualsBruteForceWithMoreProcesses) {
  for (std::uint64_t seed = 50; seed < 58; ++seed) {
    dfs::NameNode nn(dfs::Topology::single_rack(4), 1, kDefaultChunkSize);
    dfs::RandomPlacement policy;
    Rng rng(seed);
    const auto tasks = workload::make_single_data_workload(nn, 8, policy, rng);
    const auto placement = one_process_per_node(nn);

    const auto plan = assign_single_data(nn, tasks, placement, rng);
    EXPECT_EQ(plan.locally_matched, brute_force_max_local(nn, tasks, placement))
        << "seed " << seed;
  }
}

/// Co-located bytes between process and task under a placement.
Bytes value_of(const dfs::NameNode& nn, const runtime::Task& task, dfs::NodeId node) {
  Bytes v = 0;
  for (auto c : task.inputs)
    if (nn.chunk(c).has_replica_on(node)) v += nn.chunk(c).size;
  return v;
}

TEST(Optimality, Algorithm1SatisfiesQuotaStability) {
  // Stable-marriage-style invariant of the final matching: if process p
  // values task t strictly more than t's owner does, then p never reached t
  // in its preference order, so everything p holds is at least as valuable
  // to p as t. (A violated pair would mean a profitable reassignment the
  // algorithm missed.)
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    dfs::NameNode nn(dfs::Topology::single_rack(8), 3, kDefaultChunkSize);
    dfs::RandomPlacement policy;
    Rng rng(seed);
    const auto tasks = workload::make_multi_input_workload(nn, 24, policy, rng);
    const auto placement = one_process_per_node(nn);
    const auto plan = assign_multi_data(nn, tasks, placement);

    std::vector<std::uint32_t> owner(tasks.size(), UINT32_MAX);
    for (std::uint32_t p = 0; p < placement.size(); ++p)
      for (auto t : plan.assignment[p]) owner[t] = p;

    for (std::uint32_t p = 0; p < placement.size(); ++p) {
      // p's least-valued holding.
      Bytes min_held = UINT64_MAX;
      for (auto t : plan.assignment[p])
        min_held = std::min(min_held, value_of(nn, tasks[t], placement[p]));
      for (std::uint32_t t = 0; t < tasks.size(); ++t) {
        if (owner[t] == p) continue;
        const Bytes mine = value_of(nn, tasks[t], placement[p]);
        const Bytes owners = value_of(nn, tasks[t], placement[owner[t]]);
        if (mine > owners) {
          EXPECT_GE(min_held, mine)
              << "seed " << seed << ": process " << p << " holds something worth less than "
              << "task " << t << " it values above the task's owner";
        }
      }
    }
  }
}

TEST(Optimality, Algorithm1MatchedBytesAtLeastGreedyWithoutStealing) {
  // The reassignment rule must never do worse than one-shot greedy (assign
  // each task to its best process under quota, no stealing).
  for (std::uint64_t seed = 20; seed < 28; ++seed) {
    dfs::NameNode nn(dfs::Topology::single_rack(6), 2, kDefaultChunkSize);
    dfs::RandomPlacement policy;
    Rng rng(seed);
    const auto tasks = workload::make_multi_input_workload(nn, 18, policy, rng);
    const auto placement = one_process_per_node(nn);
    const auto plan = assign_multi_data(nn, tasks, placement);

    // One-shot greedy: tasks in id order to their best open process.
    const auto quotas = equal_quotas(18, 6);
    std::vector<std::uint32_t> used(6, 0);
    Bytes greedy = 0;
    for (const auto& task : tasks) {
      std::uint32_t best_p = UINT32_MAX;
      Bytes best_v = 0;
      for (std::uint32_t p = 0; p < 6; ++p) {
        if (used[p] >= quotas[p]) continue;
        const Bytes v = value_of(nn, task, placement[p]);
        if (best_p == UINT32_MAX || v > best_v) {
          best_p = p;
          best_v = v;
        }
      }
      ++used[best_p];
      greedy += best_v;
    }
    EXPECT_GE(plan.matched_bytes, greedy) << "seed " << seed;
  }
}

}  // namespace
}  // namespace opass::core
