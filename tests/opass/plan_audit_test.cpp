#include "opass/plan_audit.hpp"

#include <gtest/gtest.h>

#include "opass/single_data.hpp"
#include "workload/dataset.hpp"

namespace opass::core {
namespace {

// 4 nodes, r = 2, 8 one-chunk tasks; RoundRobinPlacement puts chunk i on
// nodes {i%4, (i+1)%4}, so a[t%4] = t is a fully local, quota-exact plan.
struct AuditFixture : ::testing::Test {
  AuditFixture() : nn(dfs::Topology::single_rack(4), 2, kDefaultChunkSize), rng(1) {
    tasks = workload::make_single_data_workload(nn, 8, policy, rng);
    placement = one_process_per_node(nn);
    valid.assign(4, {});
    for (runtime::TaskId t = 0; t < 8; ++t) valid[t % 4].push_back(t);
  }
  dfs::NameNode nn;
  dfs::RoundRobinPlacement policy;
  Rng rng;
  std::vector<runtime::Task> tasks;
  ProcessPlacement placement;
  runtime::Assignment valid;
};

TEST_F(AuditFixture, ValidPlanPasses) {
  AuditOptions opts;
  opts.enforce_capacity = true;
  const auto report = audit_plan(nn, tasks, valid, placement, opts);
  EXPECT_TRUE(report.ok()) << report.to_string();
  ASSERT_TRUE(report.stats.has_value());
  EXPECT_EQ(report.stats->task_count, 8u);
  EXPECT_EQ(report.stats->local_bytes, report.stats->total_bytes);
  EXPECT_EQ(report.to_string(), "plan ok\n");
}

TEST_F(AuditFixture, OptimizerOutputPasses) {
  Rng assign_rng(7);
  const auto plan = assign_single_data(nn, tasks, placement, assign_rng);
  AuditOptions opts;
  opts.enforce_capacity = true;
  const auto report = audit_plan(nn, tasks, plan.assignment, placement, opts);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST_F(AuditFixture, DuplicateTaskIsDistinctDiagnostic) {
  auto a = valid;
  a[0].push_back(5);  // task 5 now appears twice
  const auto report = audit_plan(nn, tasks, a, placement);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(AuditCode::kDuplicateTask)) << report.to_string();
  EXPECT_FALSE(report.has(AuditCode::kMissingTask));
  EXPECT_NE(report.to_string().find("duplicate-task: task 5"), std::string::npos)
      << report.to_string();
}

TEST_F(AuditFixture, MissingTaskIsDistinctDiagnostic) {
  auto a = valid;
  a[3].pop_back();  // drops task 7
  const auto report = audit_plan(nn, tasks, a, placement);
  EXPECT_TRUE(report.has(AuditCode::kMissingTask)) << report.to_string();
  EXPECT_FALSE(report.has(AuditCode::kDuplicateTask));
  EXPECT_NE(report.to_string().find("missing-task: task 7"), std::string::npos);
}

TEST_F(AuditFixture, UnknownTaskIsDistinctDiagnostic) {
  auto a = valid;
  a[2].push_back(99);
  const auto report = audit_plan(nn, tasks, a, placement);
  EXPECT_TRUE(report.has(AuditCode::kUnknownTask)) << report.to_string();
  EXPECT_NE(report.to_string().find("unknown-task"), std::string::npos);
}

TEST_F(AuditFixture, ProcessCountMismatchIsDistinctDiagnostic) {
  auto a = valid;
  a.emplace_back();  // 5 lists, 4 processes
  const auto report = audit_plan(nn, tasks, a, placement);
  EXPECT_TRUE(report.has(AuditCode::kProcessCountMismatch)) << report.to_string();
}

TEST_F(AuditFixture, ProcessNodeOutOfRangeIsDistinctDiagnostic) {
  auto bad_placement = placement;
  bad_placement[1] = 42;  // cluster has 4 nodes
  const auto report = audit_plan(nn, tasks, valid, bad_placement);
  EXPECT_TRUE(report.has(AuditCode::kProcessNodeOutOfRange)) << report.to_string();
  EXPECT_NE(report.to_string().find("process 1 is pinned to node 42"), std::string::npos);
}

TEST_F(AuditFixture, CapacityOverflowIsDistinctDiagnostic) {
  // Still a partition (round trip fine), but process 0 takes 4 tasks where
  // the TotalSize/m share is 2.
  runtime::Assignment a(4);
  for (runtime::TaskId t = 0; t < 4; ++t) a[0].push_back(t);
  a[1] = {4, 5};
  a[2] = {6};
  a[3] = {7};
  AuditOptions opts;
  opts.enforce_capacity = true;
  const auto report = audit_plan(nn, tasks, a, placement, opts);
  EXPECT_TRUE(report.has(AuditCode::kCapacityExceeded)) << report.to_string();
  EXPECT_FALSE(report.has(AuditCode::kDuplicateTask));
  EXPECT_NE(report.to_string().find("capacity-exceeded: process 0 holds 4 tasks"),
            std::string::npos)
      << report.to_string();
}

TEST_F(AuditFixture, CapacityNotCheckedUnlessRequested) {
  runtime::Assignment a(4);
  for (runtime::TaskId t = 0; t < 8; ++t) a[0].push_back(t);
  const auto report = audit_plan(nn, tasks, a, placement);  // default options
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST_F(AuditFixture, ByteAccountingMismatchIsDistinctDiagnostic) {
  AuditOptions opts;
  AssignmentStats claimed = evaluate_assignment(nn, tasks, valid, placement);
  claimed.local_bytes -= kDefaultChunkSize;  // plan lies about its locality
  opts.expected_stats = claimed;
  const auto report = audit_plan(nn, tasks, valid, placement, opts);
  EXPECT_TRUE(report.has(AuditCode::kStatsMismatch)) << report.to_string();
  EXPECT_FALSE(report.has(AuditCode::kCapacityExceeded));
  EXPECT_NE(report.to_string().find("stats-mismatch: plan claims local_bytes"),
            std::string::npos)
      << report.to_string();
}

TEST_F(AuditFixture, HonestStatsPass) {
  AuditOptions opts;
  opts.expected_stats = evaluate_assignment(nn, tasks, valid, placement);
  EXPECT_TRUE(audit_plan(nn, tasks, valid, placement, opts).ok());
}

TEST_F(AuditFixture, BrokenPlanReportsEveryProblem) {
  runtime::Assignment a(4);
  a[0] = {0, 0, 99};  // duplicate + unknown; tasks 1..7 missing
  const auto report = audit_plan(nn, tasks, a, placement);
  EXPECT_TRUE(report.has(AuditCode::kDuplicateTask));
  EXPECT_TRUE(report.has(AuditCode::kUnknownTask));
  EXPECT_TRUE(report.has(AuditCode::kMissingTask));
  EXPECT_GE(report.issues.size(), 9u);  // 1 dup + 1 unknown + 7 missing
}

TEST_F(AuditFixture, MultiDataCapacityRequestIsRejected) {
  auto multi = tasks;
  multi[0].inputs.push_back(multi[1].inputs[0]);  // task 0 now has two inputs
  AuditOptions opts;
  opts.enforce_capacity = true;
  const auto report = audit_plan(nn, multi, valid, placement, opts);
  EXPECT_TRUE(report.has(AuditCode::kCapacityExceeded)) << report.to_string();
  EXPECT_NE(report.to_string().find("multi-input"), std::string::npos);
}

}  // namespace
}  // namespace opass::core
