#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "obs/metrics_io.hpp"

namespace opass::obs {
namespace {

TEST(MetricsRegistry, CounterAccumulatesAndDefaultsToOne) {
  MetricsRegistry reg;
  reg.counter_add("reads");
  reg.counter_add("reads", 4);
  EXPECT_EQ(reg.at("reads").kind, MetricKind::kCounter);
  EXPECT_EQ(reg.at("reads").counter, 5u);
  EXPECT_TRUE(reg.contains("reads"));
  EXPECT_FALSE(reg.contains("writes"));
}

TEST(MetricsRegistry, GaugeKeepsLastValue) {
  MetricsRegistry reg;
  reg.gauge_set("makespan_s", 1.5);
  reg.gauge_set("makespan_s", 2.5);
  EXPECT_DOUBLE_EQ(reg.at("makespan_s").gauge, 2.5);
}

TEST(MetricsRegistry, RegistrationOrderIsPreserved) {
  MetricsRegistry reg;
  reg.counter_add("b");
  reg.gauge_set("a", 1.0);
  reg.counter_add("c");
  ASSERT_EQ(reg.size(), 3u);
  EXPECT_EQ(reg.metrics()[0].name, "b");
  EXPECT_EQ(reg.metrics()[1].name, "a");
  EXPECT_EQ(reg.metrics()[2].name, "c");
}

TEST(MetricsRegistry, KindMismatchThrows) {
  MetricsRegistry reg;
  reg.counter_add("x");
  EXPECT_THROW(reg.gauge_set("x", 1.0), std::invalid_argument);
}

// --- histogram edge cases ---------------------------------------------------

TEST(Histogram, EmptyHistogramIsAllZero) {
  MetricsRegistry reg;
  reg.define_histogram("h", {1.0, 2.0});
  const HistogramData& h = reg.at("h").histogram;
  EXPECT_EQ(h.count, 0u);
  EXPECT_DOUBLE_EQ(h.sum, 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.overflow(), 0u);
  ASSERT_EQ(h.buckets.size(), 3u);  // two bounds + overflow
  EXPECT_EQ(h.buckets[0] + h.buckets[1] + h.buckets[2], 0u);
}

TEST(Histogram, SingleSampleLandsInFirstMatchingBucket) {
  MetricsRegistry reg;
  reg.define_histogram("h", {1.0, 2.0, 4.0});
  reg.observe("h", 1.5);  // first bucket with 1.5 <= bound is "le 2.0"
  const HistogramData& h = reg.at("h").histogram;
  EXPECT_EQ(h.count, 1u);
  EXPECT_DOUBLE_EQ(h.sum, 1.5);
  EXPECT_DOUBLE_EQ(h.min, 1.5);
  EXPECT_DOUBLE_EQ(h.max, 1.5);
  EXPECT_DOUBLE_EQ(h.mean(), 1.5);
  EXPECT_EQ(h.buckets[0], 0u);
  EXPECT_EQ(h.buckets[1], 1u);
  EXPECT_EQ(h.buckets[2], 0u);
  EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, BoundaryValueIsInclusive) {
  MetricsRegistry reg;
  reg.define_histogram("h", {1.0, 2.0});
  reg.observe("h", 1.0);  // s <= upper_bounds[0]
  EXPECT_EQ(reg.at("h").histogram.buckets[0], 1u);
}

TEST(Histogram, SamplesAboveEveryBoundOverflow) {
  MetricsRegistry reg;
  reg.define_histogram("h", {1.0, 2.0});
  reg.observe("h", 100.0);
  reg.observe("h", 3.0);
  const HistogramData& h = reg.at("h").histogram;
  EXPECT_EQ(h.count, 2u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_DOUBLE_EQ(h.min, 3.0);
  EXPECT_DOUBLE_EQ(h.max, 100.0);
}

TEST(Histogram, RedefineWithIdenticalBoundsIsIdempotent) {
  MetricsRegistry reg;
  reg.define_histogram("h", {1.0, 2.0});
  reg.observe("h", 0.5);
  reg.define_histogram("h", {1.0, 2.0});  // no-op, samples survive
  EXPECT_EQ(reg.at("h").histogram.count, 1u);
  EXPECT_THROW(reg.define_histogram("h", {3.0}), std::invalid_argument);
}

TEST(Histogram, NonAscendingBoundsRejected) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.define_histogram("h", {2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(reg.define_histogram("g", {1.0, 1.0}), std::invalid_argument);
}

// --- exporters --------------------------------------------------------------

void populate(MetricsRegistry& reg) {
  reg.counter_add("reads", 7);
  reg.gauge_set("makespan_s", 12.25);
  reg.define_histogram("io_s", {0.5, 1.0});
  reg.observe("io_s", 0.25);
  reg.observe("io_s", 2.0);
  reg.gauge_set("plan_wall_ms", 3.14, Determinism::kWallClock);
}

TEST(MetricsIo, JsonIsByteIdenticalAcrossIdenticalRegistries) {
  MetricsRegistry a;
  MetricsRegistry b;
  populate(a);
  populate(b);
  EXPECT_EQ(to_json(a), to_json(b));
  EXPECT_EQ(to_csv(a), to_csv(b));
}

TEST(MetricsIo, WallClockMetricsExcludedByDefault) {
  MetricsRegistry reg;
  populate(reg);
  const std::string json = to_json(reg);
  EXPECT_EQ(json.find("plan_wall_ms"), std::string::npos);
  EXPECT_NE(json.find("makespan_s"), std::string::npos);

  ExportOptions opts;
  opts.include_wall_clock = true;
  EXPECT_NE(to_json(reg, opts).find("plan_wall_ms"), std::string::npos);
}

TEST(MetricsIo, CsvFlattensHistograms) {
  MetricsRegistry reg;
  populate(reg);
  const std::string csv = to_csv(reg);
  EXPECT_NE(csv.find("io_s.count,"), std::string::npos);
  EXPECT_NE(csv.find("io_s.overflow,"), std::string::npos);
  EXPECT_NE(csv.find("io_s.le_0.5,"), std::string::npos);
}

TEST(MetricsIo, FormatDoubleNormalizesNegativeZero) {
  EXPECT_EQ(format_double(-0.0), "0");
  EXPECT_EQ(format_double(0.25), "0.25");
}

TEST(MetricsIo, CsvQuotesAdversarialLabels) {
  // RFC 4180: a name with commas, quotes or newlines must not shift columns
  // or break row framing when the CSV is read back.
  MetricsRegistry reg;
  reg.counter_add("plain.name", 1);
  reg.counter_add("comma,in,name", 2);
  reg.counter_add("say \"hi\"", 3);
  reg.counter_add("line\nbreak", 4);
  const std::string csv = to_csv(reg);
  EXPECT_NE(csv.find("plain.name,counter,1\n"), std::string::npos);
  EXPECT_NE(csv.find("\"comma,in,name\",counter,2\n"), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\",counter,3\n"), std::string::npos);
  EXPECT_NE(csv.find("\"line\nbreak\",counter,4\n"), std::string::npos);
  // Unquoted adversarial forms must not appear.
  EXPECT_EQ(csv.find("\ncomma,in,name,"), std::string::npos);
  EXPECT_EQ(csv.find("\nsay \"hi\","), std::string::npos);
}

// --- phase timers -----------------------------------------------------------

TEST(PhaseTimers, RecordPhaseWritesDeterministicGauge) {
  MetricsRegistry reg;
  record_phase(reg, "solve_s", 1.5, 4.0);
  EXPECT_DOUBLE_EQ(reg.at("solve_s").gauge, 2.5);
  EXPECT_EQ(reg.at("solve_s").determinism, Determinism::kDeterministic);
  EXPECT_THROW(record_phase(reg, "bad", 2.0, 1.0), std::invalid_argument);
}

TEST(PhaseTimers, ScopedWallTimerWritesWallClockGauge) {
  MetricsRegistry reg;
  { ScopedWallTimer timer(reg, "phase_ms"); }
  ASSERT_TRUE(reg.contains("phase_ms"));
  EXPECT_EQ(reg.at("phase_ms").determinism, Determinism::kWallClock);
  EXPECT_GE(reg.at("phase_ms").gauge, 0.0);
}

}  // namespace
}  // namespace opass::obs
