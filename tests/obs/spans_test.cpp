// Causal span log and attribution (DESIGN.md §13): naming taxonomy, the
// SpanLog::add reconciliation invariant (slices chain gap-free and telescope
// to the span duration), exec-span construction on a real small execution,
// the top-level-only attribution sums, and the critical path's exact-chaining
// and blame-total contracts.
#include "obs/spans.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "obs/attribution.hpp"
#include "runtime/task_source.hpp"
#include "sim/flow_sim.hpp"

namespace opass::obs {
namespace {

TEST(SpanName, EnforcesTheTaxonomy) {
  EXPECT_TRUE(valid_span_name("exec.task.run"));
  EXPECT_TRUE(valid_span_name("svc.job.queue"));
  EXPECT_TRUE(valid_span_name("a.b2.c_d"));
  EXPECT_FALSE(valid_span_name(""));
  EXPECT_FALSE(valid_span_name("exec.task"));            // two segments
  EXPECT_FALSE(valid_span_name("exec.task.run.more"));   // four segments
  EXPECT_FALSE(valid_span_name("exec.Task.run"));        // uppercase
  EXPECT_FALSE(valid_span_name("exec..run"));            // empty segment
  EXPECT_FALSE(valid_span_name("exec.task.run."));       // trailing dot
  EXPECT_FALSE(valid_span_name("exec.2task.run"));       // digit-led segment
  EXPECT_FALSE(valid_span_name("exec.ta sk.run"));       // space
}

Span make_span(std::int64_t start, std::int64_t end) {
  Span s;
  s.name = "exec.task.run";
  s.start_ticks = start;
  s.end_ticks = end;
  return s;
}

AttrSlice slice(AttrKind kind, std::int64_t start, std::int64_t end,
                dfs::NodeId node = dfs::kInvalidNode) {
  AttrSlice s;
  s.kind = kind;
  s.node = node;
  s.start_ticks = start;
  s.end_ticks = end;
  return s;
}

TEST(SpanLog, AddAssignsSequentialIdsAndTracksTheMakespan) {
  SpanLog log;
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.max_end_ticks(), 0);
  EXPECT_EQ(log.add(make_span(0, 10)), 0u);
  EXPECT_EQ(log.add(make_span(5, 30)), 1u);
  EXPECT_EQ(log.add(make_span(2, 20)), 2u);
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.max_end_ticks(), 30);
}

TEST(SpanLog, AddRejectsTaxonomyAndOrderingViolations) {
  SpanLog log;
  Span bad_name = make_span(0, 1);
  bad_name.name = "exec.task";
  EXPECT_THROW(log.add(bad_name), std::invalid_argument);

  EXPECT_THROW(log.add(make_span(5, 4)), std::invalid_argument);  // ends early

  Span orphan = make_span(0, 1);
  orphan.parent = 7;  // no span 7 exists yet
  EXPECT_THROW(log.add(orphan), std::invalid_argument);
}

TEST(SpanLog, AddEnforcesTheReconciliationInvariant) {
  SpanLog log;

  // Gap between slices.
  Span gapped = make_span(0, 10);
  gapped.breakdown = {slice(AttrKind::kSeek, 0, 4), slice(AttrKind::kSrcDisk, 5, 10)};
  EXPECT_THROW(log.add(gapped), std::invalid_argument);

  // First slice opens after the span start.
  Span late = make_span(0, 10);
  late.breakdown = {slice(AttrKind::kSrcDisk, 1, 10)};
  EXPECT_THROW(log.add(late), std::invalid_argument);

  // Last slice closes before the span end.
  Span short_tail = make_span(0, 10);
  short_tail.breakdown = {slice(AttrKind::kSrcDisk, 0, 9)};
  EXPECT_THROW(log.add(short_tail), std::invalid_argument);

  // An exact tiling is accepted; zero-width slices are legal joints.
  Span exact = make_span(0, 10);
  exact.breakdown = {slice(AttrKind::kQueueWait, 0, 2), slice(AttrKind::kSeek, 2, 2),
                     slice(AttrKind::kSrcDisk, 2, 10, /*node=*/3)};
  const auto id = log.add(exact);
  const Span& stored = log.spans()[id];
  std::int64_t sum = 0;
  for (const AttrSlice& s : stored.breakdown) sum += s.duration_ticks();
  EXPECT_EQ(sum, stored.duration_ticks());
}

// --- exec spans on a real execution ----------------------------------------

struct SpanFixture : ::testing::Test {
  SpanFixture()
      : nn(dfs::Topology::single_rack(4), 2, kDefaultChunkSize), rng(1) {
    params.disk_bandwidth = 64.0 * kMiB;  // 1 s per local chunk
    params.nic_bandwidth = 64.0 * kMiB;
    params.disk_beta = 0.0;
    params.seek_latency = 0.0;
    params.remote_latency = 0.0;
    params.remote_stream_cap = 0.0;
  }

  std::vector<runtime::Task> make_tasks(std::uint32_t chunks) {
    const auto fid = nn.create_file("d", chunks * kDefaultChunkSize, policy, rng);
    return runtime::single_input_tasks(nn, {fid});
  }

  runtime::ExecutionResult run(const std::vector<runtime::Task>& tasks,
                               sim::Cluster& cluster, runtime::ExecutorConfig config) {
    runtime::StaticAssignmentSource source(
        runtime::rank_interval_assignment(static_cast<std::uint32_t>(tasks.size()), 4));
    config.record_read_breakdown = true;
    return runtime::execute(cluster, nn, tasks, source, rng, config);
  }

  dfs::NameNode nn;
  dfs::RoundRobinPlacement policy;
  Rng rng;
  sim::ClusterParams params;
};

TEST_F(SpanFixture, ExecutionSpansReconcileExactly) {
  auto tasks = make_tasks(8);
  for (auto& t : tasks) t.compute_time = 0.25;
  sim::Cluster cluster(4, params);
  const auto exec = run(tasks, cluster, {});

  SpanLog log;
  append_execution_spans(log, exec, tasks, cluster);
  ASSERT_FALSE(log.empty());
  EXPECT_EQ(log.max_end_ticks(), sim::to_ticks(exec.makespan));

  std::size_t task_spans = 0, read_spans = 0;
  for (const Span& s : log.spans()) {
    // Every breakdown telescopes to its span (SpanLog::add guarantees it;
    // assert anyway so a future bypass of add() cannot rot silently).
    std::int64_t sum = 0;
    for (const AttrSlice& sl : s.breakdown) sum += sl.duration_ticks();
    if (!s.breakdown.empty()) {
      EXPECT_EQ(sum, s.duration_ticks());
    }
    if (s.kind == SpanKind::kTask) {
      ++task_spans;
      EXPECT_EQ(s.parent, kNoSpan);
      EXPECT_FALSE(s.breakdown.empty());
    }
    if (s.kind == SpanKind::kRead) {
      ++read_spans;
      ASSERT_NE(s.parent, kNoSpan);
      EXPECT_EQ(log.spans()[s.parent].kind, SpanKind::kTask);
      EXPECT_EQ(log.spans()[s.parent].task, s.task);
    }
  }
  EXPECT_EQ(task_spans, tasks.size());
  EXPECT_EQ(read_spans, exec.trace.size());

  // The compute phase shows up: each task span's kCompute ticks equal its
  // compute_time exactly (no contention in this tiny run).
  for (const Span& s : log.spans()) {
    if (s.kind != SpanKind::kTask) continue;
    std::int64_t compute = 0;
    for (const AttrSlice& sl : s.breakdown)
      if (sl.kind == AttrKind::kCompute) compute += sl.duration_ticks();
    EXPECT_EQ(compute, sim::to_ticks(0.25));
  }
}

TEST_F(SpanFixture, BarrierRunsEmitWaitSpans) {
  auto tasks = make_tasks(8);
  tasks[0].compute_time = 2.0;  // one straggler stalls every wave
  sim::Cluster cluster(4, params);
  runtime::ExecutorConfig config;
  config.barrier_per_task = true;
  const auto exec = run(tasks, cluster, config);

  SpanLog log;
  append_execution_spans(log, exec, tasks, cluster);
  std::int64_t barrier_ticks = 0;
  for (const Span& s : log.spans()) {
    if (s.kind != SpanKind::kWait) continue;
    EXPECT_EQ(s.name, "exec.wave.wait");
    for (const AttrSlice& sl : s.breakdown)
      if (sl.kind == AttrKind::kBarrier) barrier_ticks += sl.duration_ticks();
  }
  EXPECT_GT(barrier_ticks, 0);
}

TEST_F(SpanFixture, AttributionSumsTopLevelSpansOnly) {
  const auto tasks = make_tasks(8);
  sim::Cluster cluster(4, params);
  const auto exec = run(tasks, cluster, {});

  SpanLog log;
  append_execution_spans(log, exec, tasks, cluster);
  const AttributionTotals totals = attribute_spans(log, /*node_count=*/4);

  std::int64_t top_level = 0;
  for (const Span& s : log.spans())
    if (s.parent == kNoSpan) top_level += s.duration_ticks();
  EXPECT_EQ(totals.total_ticks, top_level);

  std::int64_t kind_sum = 0;
  for (std::int64_t t : totals.kind_ticks) kind_sum += t;
  EXPECT_EQ(kind_sum, totals.total_ticks);

  // Node blame never exceeds the attributed total.
  std::int64_t node_sum = 0;
  for (std::int64_t t : totals.node_ticks) node_sum += t;
  EXPECT_LE(node_sum, totals.total_ticks);
  // This run is disk-bound (disk == NIC bandwidth, disk wins ties).
  EXPECT_GT(totals.kind_ticks[static_cast<std::size_t>(AttrKind::kSrcDisk)], 0);
}

TEST_F(SpanFixture, CriticalPathChainsExactlyAndExplainsTheMakespan) {
  auto tasks = make_tasks(8);
  for (auto& t : tasks) t.compute_time = 0.5;
  sim::Cluster cluster(4, params);
  runtime::ExecutorConfig config;
  config.barrier_per_task = true;
  const auto exec = run(tasks, cluster, config);

  SpanLog log;
  append_execution_spans(log, exec, tasks, cluster);
  const CriticalPath cp = critical_path(log, /*node_count=*/4);
  ASSERT_FALSE(cp.steps.empty());

  // Steps chain gap-free and the last ends at the makespan.
  for (std::size_t i = 1; i < cp.steps.size(); ++i)
    EXPECT_EQ(cp.steps[i].start_ticks, cp.steps[i - 1].end_ticks);
  EXPECT_EQ(cp.steps.back().end_ticks, log.max_end_ticks());

  // Blame totals cover exactly the path's span.
  const std::int64_t covered = cp.steps.back().end_ticks - cp.steps.front().start_ticks;
  EXPECT_EQ(cp.blame.total_ticks, covered);
  std::int64_t kind_sum = 0;
  for (std::int64_t t : cp.blame.kind_ticks) kind_sum += t;
  EXPECT_EQ(kind_sum, covered);

  // Every non-idle step is a task span.
  for (const auto& step : cp.steps) {
    if (step.span == kNoSpan) continue;
    ASSERT_LT(step.span, log.size());
    EXPECT_EQ(log.spans()[step.span].kind, SpanKind::kTask);
  }
}

TEST_F(SpanFixture, CriticalPathOfAnEmptyLogIsEmpty) {
  SpanLog log;
  const CriticalPath cp = critical_path(log, 4);
  EXPECT_TRUE(cp.steps.empty());
  EXPECT_EQ(cp.blame.total_ticks, 0);
}

TEST(ServiceSpans, PlannedJobsGetQueueAndPlanSpans) {
  std::vector<core::JobStatus> statuses(3);
  statuses[0].id = 10;
  statuses[0].state = core::JobState::kPlanned;
  statuses[0].tenant = 1;
  statuses[0].arrival = 0.5;
  statuses[0].planned_at = 2.0;
  statuses[1].id = 11;
  statuses[1].state = core::JobState::kQueued;  // still queued: no span
  statuses[2].id = 12;
  statuses[2].state = core::JobState::kCompleted;
  statuses[2].tenant = 2;
  statuses[2].arrival = 1.0;
  statuses[2].planned_at = 2.0;

  SpanLog log;
  append_service_spans(log, statuses);
  std::size_t queue = 0, plan = 0;
  for (const Span& s : log.spans()) {
    if (s.kind == SpanKind::kQueue) {
      ++queue;
      EXPECT_EQ(s.name, "svc.job.queue");
      ASSERT_EQ(s.breakdown.size(), 1u);
      EXPECT_EQ(s.breakdown[0].kind, AttrKind::kQueueWait);
    }
    if (s.kind == SpanKind::kPlan) {
      ++plan;
      EXPECT_EQ(s.duration_ticks(), 0);
    }
  }
  EXPECT_EQ(queue, 2u);  // the queued job contributes nothing
  EXPECT_EQ(plan, 2u);

  // Tenant rides in `process`, job id in `task` — the per-tenant aggregation
  // key the ROADMAP's co-simulation item needs.
  const Span& first = log.spans()[0];
  EXPECT_EQ(first.process, 1u);
  EXPECT_EQ(first.task, 10u);
  EXPECT_EQ(first.duration_ticks(), sim::to_ticks(2.0) - sim::to_ticks(0.5));
}

TEST_F(SpanFixture, SpanDocRendersDeterministically) {
  const auto tasks = make_tasks(8);
  const auto build = [&] {
    Rng local_rng(1);
    sim::Cluster cluster(4, params);
    runtime::StaticAssignmentSource source(runtime::rank_interval_assignment(8, 4));
    runtime::ExecutorConfig config;
    config.record_read_breakdown = true;
    const auto exec = runtime::execute(cluster, nn, tasks, source, local_rng, config);
    SpanLog log;
    append_execution_spans(log, exec, tasks, cluster);
    SpanDocBuilder doc;
    doc.add_method("baseline", log, 4);
    return std::make_pair(doc.spans_json(), doc.critical_path_json());
  };
  const auto a = build();
  const auto b = build();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  EXPECT_NE(a.first.find("\"schema\": 1"), std::string::npos);
  EXPECT_NE(a.second.find("\"steps\""), std::string::npos);
}

}  // namespace
}  // namespace opass::obs
