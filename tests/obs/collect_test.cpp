#include "obs/collect.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/stats.hpp"
#include "exp/experiment.hpp"
#include "opass/assignment_stats.hpp"

namespace opass::obs {
namespace {

constexpr std::uint32_t kNodes = 16;
constexpr std::uint32_t kChunks = 80;

exp::ExperimentConfig config() {
  exp::ExperimentConfig cfg;
  cfg.nodes = kNodes;
  cfg.seed = 42;
  return cfg;
}

double jain_of_bytes(const std::vector<Bytes>& per_node) {
  std::vector<double> values;
  values.reserve(per_node.size());
  for (const Bytes b : per_node) values.push_back(static_cast<double>(b));
  return jain_fairness(values);
}

TEST(Collect, PerNodeBytesServedMatchTheTrace) {
  exp::ExperimentConfig cfg = config();
  MetricsRegistry reg;
  runtime::ExecutionResult raw;
  cfg.metrics = &reg;
  cfg.raw = &raw;
  exp::run_single_data(cfg, kChunks, exp::Method::kOpass);

  const std::vector<Bytes> expected = raw.trace.bytes_served_per_node(kNodes);
  const std::vector<std::uint32_t> expected_ops = raw.trace.ops_served_per_node(kNodes);
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    const std::string node = "opass.executor.node." + std::to_string(n);
    EXPECT_EQ(reg.at(node + ".bytes_served").counter, expected[n]) << node;
    EXPECT_EQ(reg.at(node + ".ops_served").counter, expected_ops[n]) << node;
  }
}

TEST(Collect, ObservedBytesMatchThePlannedAssignmentStats) {
  // The executor always prefers a co-located replica, so for a static plan
  // the observed local/total byte split must equal what assignment_stats
  // predicted for the very same plan.
  exp::ExperimentConfig cfg = config();
  MetricsRegistry reg;
  cfg.metrics = &reg;
  exp::run_single_data(cfg, kChunks, exp::Method::kOpass);

  const exp::PlannedScenario sc = exp::plan_single_data(config(), kChunks,
                                                        exp::Method::kOpass);
  const core::AssignmentStats stats =
      core::evaluate_assignment(sc.nn, sc.tasks, sc.assignment, sc.placement);
  EXPECT_EQ(reg.at("opass.executor.bytes_total").counter, stats.total_bytes);
  EXPECT_EQ(reg.at("opass.executor.bytes_local").counter, stats.local_bytes);
  EXPECT_EQ(reg.at("opass.executor.bytes_remote").counter,
            stats.total_bytes - stats.local_bytes);
  // The planner collector ran too (opass run) and must agree on the totals.
  EXPECT_EQ(reg.at("opass.planner.total_bytes").counter, stats.total_bytes);
  EXPECT_EQ(reg.at("opass.planner.local_bytes").counter, stats.local_bytes);
}

TEST(Collect, HotspotOrderingIsConsistentWithAssignmentStats) {
  // The acceptance criterion: per-node serving imbalance observed in the
  // simulator reproduces the ordering the planner predicts — Opass balances
  // at least as well as the baseline on the same layout (Figs. 8/10).
  exp::ExperimentConfig cfg = config();
  runtime::ExecutionResult base_raw;
  runtime::ExecutionResult opass_raw;
  cfg.raw = &base_raw;
  exp::run_single_data(cfg, kChunks, exp::Method::kBaseline);
  cfg.raw = &opass_raw;
  exp::run_single_data(cfg, kChunks, exp::Method::kOpass);

  const double jain_base = jain_of_bytes(base_raw.trace.bytes_served_per_node(kNodes));
  const double jain_opass = jain_of_bytes(opass_raw.trace.bytes_served_per_node(kNodes));
  EXPECT_GE(jain_opass, jain_base);

  // And the observed ordering agrees with what assignment_stats predicted
  // for the very same plans: more planned locality => fairer serving.
  const auto planned_local = [&](exp::Method method) {
    const exp::PlannedScenario sc = exp::plan_single_data(config(), kChunks, method);
    return core::evaluate_assignment(sc.nn, sc.tasks, sc.assignment, sc.placement)
        .local_fraction();
  };
  EXPECT_GE(planned_local(exp::Method::kOpass), planned_local(exp::Method::kBaseline));
  EXPECT_GE(opass_raw.trace.local_fraction(), base_raw.trace.local_fraction());
}

TEST(Collect, MethodPrefixesKeepAComparisonInOneRegistry) {
  exp::ExperimentConfig cfg = config();
  MetricsRegistry reg;
  cfg.metrics = &reg;
  exp::run_single_data(cfg, kChunks, exp::Method::kBaseline);
  exp::run_single_data(cfg, kChunks, exp::Method::kOpass);
  EXPECT_TRUE(reg.contains("baseline.executor.makespan_s"));
  EXPECT_TRUE(reg.contains("opass.executor.makespan_s"));
  EXPECT_TRUE(reg.contains("baseline.cluster.node.0.disk_busy_s"));
  EXPECT_TRUE(reg.contains("opass.planner.locally_matched"));
  EXPECT_FALSE(reg.contains("baseline.planner.locally_matched"));
  // Opass reads at least as locally as the baseline on the same layout.
  EXPECT_GE(reg.at("opass.executor.reads_local").counter,
            reg.at("baseline.executor.reads_local").counter);
}

TEST(Collect, DynamicSchedulerCountersCoverEveryDispatch) {
  exp::ExperimentConfig cfg = config();
  MetricsRegistry reg;
  cfg.metrics = &reg;
  const exp::RunOutput out = exp::run_dynamic(cfg, kChunks, exp::Method::kOpass);
  // Every dispensed task came off a guideline list or was stolen.
  EXPECT_EQ(reg.at("opass.dynamic.guideline_hits").counter +
                reg.at("opass.dynamic.steals").counter,
            out.tasks_executed);
  EXPECT_LE(reg.at("opass.dynamic.steal_local_hits").counter,
            reg.at("opass.dynamic.steals").counter);
}

TEST(Collect, IoTimeHistogramAccountsForEveryRead) {
  exp::ExperimentConfig cfg = config();
  MetricsRegistry reg;
  cfg.metrics = &reg;
  exp::run_single_data(cfg, kChunks, exp::Method::kOpass);
  const Metric& hist = reg.at("opass.executor.io_time_s");
  ASSERT_EQ(hist.kind, MetricKind::kHistogram);
  EXPECT_EQ(hist.histogram.count, reg.at("opass.executor.reads_total").counter);
  EXPECT_EQ(hist.histogram.upper_bounds, io_time_bounds());
}

}  // namespace
}  // namespace opass::obs
