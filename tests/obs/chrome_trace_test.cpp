#include "obs/chrome_trace.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "exp/experiment.hpp"

namespace opass::obs {
namespace {

runtime::ExecutionResult recorded_run(std::uint64_t seed = 42) {
  exp::ExperimentConfig cfg;
  cfg.nodes = 16;
  cfg.seed = seed;
  runtime::ExecutionResult raw;
  cfg.raw = &raw;
  exp::run_single_data(cfg, /*chunk_count=*/64, exp::Method::kOpass);
  return raw;
}

std::size_t count_occurrences(const std::string& haystack, const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size()))
    ++count;
  return count;
}

TEST(ChromeTrace, EmptyBuilderRendersValidSkeleton) {
  ChromeTraceBuilder builder;
  EXPECT_EQ(builder.event_count(), 0u);
  const std::string json = builder.json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
}

TEST(ChromeTrace, RoundTripsARecordedExecutorRun) {
  const runtime::ExecutionResult raw = recorded_run();
  ASSERT_FALSE(raw.trace.records().empty());
  ASSERT_FALSE(raw.task_spans.empty());

  ChromeTraceBuilder builder;
  builder.set_process_name(0, "opass");
  builder.add_execution(raw, /*pid=*/0);
  // One duration event per read record plus one per task span.
  EXPECT_EQ(builder.event_count(), raw.trace.records().size() + raw.task_spans.size());

  const std::string json = builder.json();
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"X\""), builder.event_count());
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"M\""), 1u);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"read\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"task\""), std::string::npos);
  // Negative numbers may only appear inside args (never in ts/dur).
  EXPECT_EQ(json.find("\"ts\": -"), std::string::npos);
  EXPECT_EQ(json.find("\"dur\": -"), std::string::npos);
}

TEST(ChromeTrace, ExportIsByteDeterministic) {
  ChromeTraceBuilder a;
  ChromeTraceBuilder b;
  a.set_process_name(0, "opass");
  b.set_process_name(0, "opass");
  a.add_execution(recorded_run(), 0);
  b.add_execution(recorded_run(), 0);
  EXPECT_EQ(a.json(), b.json());
}

TEST(ChromeTrace, DistinctPidsKeepMethodsSeparate) {
  ChromeTraceBuilder builder;
  builder.set_process_name(0, "baseline");
  builder.set_process_name(1, "opass");
  builder.add_execution(recorded_run(1), 0);
  builder.add_execution(recorded_run(2), 1);
  const std::string json = builder.json();
  EXPECT_NE(json.find("\"pid\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 1"), std::string::npos);
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"M\""), 2u);
}

TEST(ChromeTrace, ConvenienceWrapperMatchesBuilder) {
  const runtime::ExecutionResult raw = recorded_run();
  ChromeTraceBuilder builder;
  builder.add_execution(raw, 0);
  EXPECT_EQ(to_chrome_trace_json(raw), builder.json());
}

}  // namespace
}  // namespace opass::obs
