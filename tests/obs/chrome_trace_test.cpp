#include "obs/chrome_trace.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <stdexcept>
#include <string>

#include "exp/experiment.hpp"

namespace opass::obs {
namespace {

runtime::ExecutionResult recorded_run(std::uint64_t seed = 42) {
  exp::ExperimentConfig cfg;
  cfg.nodes = 16;
  cfg.seed = seed;
  runtime::ExecutionResult raw;
  cfg.raw = &raw;
  exp::run_single_data(cfg, /*chunk_count=*/64, exp::Method::kOpass);
  return raw;
}

std::size_t count_occurrences(const std::string& haystack, const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size()))
    ++count;
  return count;
}

TEST(ChromeTrace, EmptyBuilderRendersValidSkeleton) {
  ChromeTraceBuilder builder;
  EXPECT_EQ(builder.event_count(), 0u);
  const std::string json = builder.json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
}

TEST(ChromeTrace, RoundTripsARecordedExecutorRun) {
  const runtime::ExecutionResult raw = recorded_run();
  ASSERT_FALSE(raw.trace.records().empty());
  ASSERT_FALSE(raw.task_spans.empty());

  ChromeTraceBuilder builder;
  builder.set_process_name(0, "opass");
  builder.add_execution(raw, /*pid=*/0);
  // One duration event per read record plus one per task span.
  EXPECT_EQ(builder.event_count(), raw.trace.records().size() + raw.task_spans.size());

  const std::string json = builder.json();
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"X\""), builder.event_count());
  EXPECT_EQ(count_occurrences(json, "\"process_name\""), 1u);
  EXPECT_EQ(count_occurrences(json, "\"process_sort_index\""), 1u);
  // One thread_sort_index metadata event per (pid, tid) track.
  EXPECT_EQ(count_occurrences(json, "\"thread_sort_index\""),
            raw.process_finish_time.size());
  EXPECT_NE(json.find("\"cat\": \"read\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"task\""), std::string::npos);
  // Negative numbers may only appear inside args (never in ts/dur).
  EXPECT_EQ(json.find("\"ts\": -"), std::string::npos);
  EXPECT_EQ(json.find("\"dur\": -"), std::string::npos);
}

TEST(ChromeTrace, ExportIsByteDeterministic) {
  ChromeTraceBuilder a;
  ChromeTraceBuilder b;
  a.set_process_name(0, "opass");
  b.set_process_name(0, "opass");
  a.add_execution(recorded_run(), 0);
  b.add_execution(recorded_run(), 0);
  EXPECT_EQ(a.json(), b.json());
}

TEST(ChromeTrace, DistinctPidsKeepMethodsSeparate) {
  ChromeTraceBuilder builder;
  builder.set_process_name(0, "baseline");
  builder.set_process_name(1, "opass");
  builder.add_execution(recorded_run(1), 0);
  builder.add_execution(recorded_run(2), 1);
  const std::string json = builder.json();
  EXPECT_NE(json.find("\"pid\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 1"), std::string::npos);
  EXPECT_EQ(count_occurrences(json, "\"process_name\""), 2u);
}

TEST(ChromeTrace, RepeatedProcessNamesDeduplicate) {
  ChromeTraceBuilder builder;
  builder.set_process_name(0, "first");
  builder.set_process_name(0, "second");
  builder.set_process_name(0, "final");
  const std::string json = builder.json();
  EXPECT_EQ(count_occurrences(json, "\"process_name\""), 1u);
  EXPECT_EQ(json.find("first"), std::string::npos);
  EXPECT_NE(json.find("final"), std::string::npos);
}

TEST(ChromeTrace, MetadataEmitsSortedByPid) {
  ChromeTraceBuilder builder;
  builder.set_process_name(7, "late");
  builder.set_process_name(2, "early");
  const std::string json = builder.json();
  const std::size_t early = json.find("\"pid\": 2");
  const std::size_t late = json.find("\"pid\": 7");
  ASSERT_NE(early, std::string::npos);
  ASSERT_NE(late, std::string::npos);
  EXPECT_LT(early, late);
  EXPECT_EQ(count_occurrences(json, "\"process_sort_index\""), 2u);
}

TEST(ChromeTrace, CounterEventsRenderWithoutDurations) {
  ChromeTraceBuilder builder;
  builder.add_counter(0, "timeline.cluster.inflight", 0.0, 3);
  builder.add_counter(0, "timeline.cluster.inflight", 500000.0, 1.5);
  EXPECT_EQ(builder.event_count(), 2u);
  const std::string json = builder.json();
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"C\""), 2u);
  EXPECT_EQ(json.find("\"dur\""), std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"value\": 1.5}"), std::string::npos);
  EXPECT_THROW(builder.add_counter(0, "timeline.cluster.inflight", -1.0, 0),
               std::invalid_argument);
}

TEST(ChromeTrace, ConvenienceWrapperMatchesBuilder) {
  const runtime::ExecutionResult raw = recorded_run();
  ChromeTraceBuilder builder;
  builder.add_execution(raw, 0);
  EXPECT_EQ(to_chrome_trace_json(raw), builder.json());
}

}  // namespace
}  // namespace opass::obs
