#include "obs/report.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "exp/experiment.hpp"

namespace opass::obs {
namespace {

/// Record one seeded run and build its MethodReport against `recorder`.
MethodReport record_method(TimelineRecorder& recorder, exp::Method method,
                           std::uint64_t seed = 42) {
  exp::ExperimentConfig cfg;
  cfg.nodes = 8;
  cfg.seed = seed;
  cfg.timeline = &recorder;
  runtime::ExecutionResult raw;
  cfg.raw = &raw;
  const exp::RunOutput out = exp::run_single_data(cfg, /*chunk_count=*/40, method);
  MethodReport mr;
  mr.name = exp::method_name(method);
  mr.timeline = &recorder;
  mr.analytics = analyze_execution(raw, cfg.nodes);
  mr.makespan = out.makespan;
  mr.local_fraction = out.local_fraction;
  return mr;
}

ReportBuilder both_methods(TimelineRecorder& base, TimelineRecorder& opass) {
  ReportBuilder builder;
  builder.add_method(record_method(base, exp::Method::kBaseline));
  builder.add_method(record_method(opass, exp::Method::kOpass));
  return builder;
}

TEST(Report, HtmlCarriesChartsAndSummariesForBothMethods) {
  TimelineRecorder base, opass;
  const ReportBuilder builder = both_methods(base, opass);
  const std::string html = builder.html();
  for (const char* method : {"baseline", "opass"}) {
    for (const char* chart : {"serve-bytes", "queue-depth", "bytes-remaining"}) {
      const std::string id =
          "id=\"chart-" + std::string(method) + "-" + chart + "\"";
      EXPECT_NE(html.find(id), std::string::npos) << id;
    }
  }
  EXPECT_NE(html.find("<polyline"), std::string::npos);
  EXPECT_NE(html.find("degree of imbalance"), std::string::npos);
  // Self-contained: no external references.
  EXPECT_EQ(html.find("http://"), std::string::npos);
  EXPECT_EQ(html.find("https://"), std::string::npos);
  EXPECT_EQ(html.find("<script"), std::string::npos);
}

TEST(Report, ArtifactsAreByteDeterministic) {
  TimelineRecorder a1, a2, b1, b2;
  const ReportBuilder first = both_methods(a1, b1);
  const ReportBuilder second = both_methods(a2, b2);
  EXPECT_EQ(first.html(), second.html());
  EXPECT_EQ(first.timeline_json(), second.timeline_json());
}

TEST(Report, TimelineJsonCarriesAnalyticsAndSeries) {
  TimelineRecorder base, opass;
  const std::string json = both_methods(base, opass).timeline_json();
  EXPECT_NE(json.find("\"schema\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"baseline\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"opass\""), std::string::npos);
  EXPECT_NE(json.find("\"degree_of_imbalance\""), std::string::npos);
  EXPECT_NE(json.find("\"straggler_nodes\""), std::string::npos);
  EXPECT_NE(json.find("\"timeline.cluster.serve_bytes_per_s\""), std::string::npos);
  EXPECT_NE(json.find("\"timeline.executor.queue_depth\""), std::string::npos);
  EXPECT_EQ(json.back(), '\n');
}

TEST(Report, RejectsBadMethodReports) {
  ReportBuilder builder;
  TimelineRecorder recorder;
  MethodReport mr;
  mr.name = "Has Spaces";
  mr.timeline = &recorder;
  EXPECT_THROW(builder.add_method(mr), std::invalid_argument);
  mr.name = "fresh";
  EXPECT_THROW(builder.add_method(mr), std::invalid_argument);  // not finished
  recorder.finish(1.0);
  builder.add_method(mr);
  EXPECT_THROW(builder.add_method(mr), std::invalid_argument);  // duplicate
  EXPECT_EQ(builder.method_count(), 1u);
}

TEST(Report, TimelineCountersExportClusterWideSeriesOnly) {
  TimelineRecorder base, opass;
  both_methods(base, opass);
  ChromeTraceBuilder trace;
  add_timeline_counters(trace, base, /*pid=*/0);
  const std::string json = trace.json();
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(json.find("timeline.cluster.serve_bytes_per_s"), std::string::npos);
  EXPECT_NE(json.find("timeline.cluster.bytes_remaining"), std::string::npos);
  // Per-node and per-process series stay out of the counter tracks.
  EXPECT_EQ(json.find("timeline.cluster.node."), std::string::npos);
  EXPECT_EQ(json.find("timeline.executor.process."), std::string::npos);
}

}  // namespace
}  // namespace opass::obs
