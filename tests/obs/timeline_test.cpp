#include "obs/timeline.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "exp/experiment.hpp"

namespace opass::obs {
namespace {

TimelineRecorder::Options options(Seconds interval, std::size_t capacity = 8192) {
  TimelineRecorder::Options opt;
  opt.interval = interval;
  opt.capacity = capacity;
  return opt;
}

TEST(TimelineName, EnforcesTheTaxonomy) {
  EXPECT_TRUE(valid_timeline_series_name("timeline.cluster.inflight"));
  EXPECT_TRUE(valid_timeline_series_name("timeline.cluster.node.3.serve_bytes_per_s"));
  EXPECT_FALSE(valid_timeline_series_name("timeline.cluster"));       // two segments
  EXPECT_FALSE(valid_timeline_series_name("metrics.cluster.x"));      // wrong root
  EXPECT_FALSE(valid_timeline_series_name("timeline.Cluster.x"));     // uppercase
  EXPECT_FALSE(valid_timeline_series_name("timeline..x"));            // empty segment
  EXPECT_FALSE(valid_timeline_series_name("timeline.cluster.x."));    // trailing dot
  EXPECT_FALSE(valid_timeline_series_name("timeline.clu ster.x"));    // space
}

TEST(TimelineRecorder, RejectsBadNamesAndDuplicates) {
  TimelineRecorder t(options(1.0));
  EXPECT_THROW(t.add_level_series("queue_depth"), std::invalid_argument);
  EXPECT_THROW(t.add_rate_series("timeline.serve"), std::invalid_argument);
  t.add_level_series("timeline.test.depth");
  EXPECT_THROW(t.add_level_series("timeline.test.depth"), std::invalid_argument);
}

TEST(TimelineRecorder, LevelsRepeatAcrossEmptyIntervals) {
  TimelineRecorder t(options(1.0));
  const auto id = t.add_level_series("timeline.test.depth", /*initial=*/2);
  t.record_level(id, 2.5, 7);
  t.finish(5.0);
  // Boundaries 0,1,2 sample the initial value (the t=2.5 event lands after
  // boundary 2); boundaries 3,4,5 see the new level.
  EXPECT_EQ(t.series_values(id), (std::vector<double>{2, 2, 2, 7, 7, 7}));
  EXPECT_EQ(t.partial_duration(), 0.0);
}

TEST(TimelineRecorder, EventExactlyOnABoundaryChargesTheNextInterval) {
  TimelineRecorder t(options(1.0));
  const auto level = t.add_level_series("timeline.test.depth");
  const auto rate = t.add_rate_series("timeline.test.bytes_per_s");
  t.record_level(level, 2.0, 5);  // exactly on boundary 2
  t.record_rate(rate, 2.0, 10);
  t.finish(3.5);
  // Boundary 2 is emitted with the pre-event state; the event shows at 3.
  EXPECT_EQ(t.series_values(level), (std::vector<double>{0, 0, 0, 5, 5}));
  EXPECT_EQ(t.series_values(rate), (std::vector<double>{0, 0, 0, 10, 0}));
}

TEST(TimelineRecorder, RatesConvertToPerSecond) {
  TimelineRecorder t(options(0.5));
  const auto id = t.add_rate_series("timeline.test.bytes_per_s");
  t.record_rate(id, 0.1, 30);
  t.record_rate(id, 0.4, 20);
  t.record_rate(id, 0.7, 5);
  t.finish(1.0);
  // Interval (0, 0.5] carries 50 units -> 100/s at boundary 1; (0.5, 1.0]
  // carries 5 -> 10/s folded into the final boundary (end lands on it).
  EXPECT_EQ(t.series_values(id), (std::vector<double>{0, 100, 10}));
}

TEST(TimelineRecorder, FinishInsideAnIntervalEmitsAScaledPartialSample) {
  TimelineRecorder t(options(1.0));
  const auto rate = t.add_rate_series("timeline.test.bytes_per_s");
  const auto level = t.add_level_series("timeline.test.depth");
  t.record_rate(rate, 2.25, 10);
  t.record_level(level, 2.25, 4);
  t.finish(2.5);
  // The open remainder (2, 2.5] is half an interval: 10 units over 0.5 s.
  EXPECT_DOUBLE_EQ(t.partial_duration(), 0.5);
  EXPECT_EQ(t.series_values(rate), (std::vector<double>{0, 0, 0, 20}));
  EXPECT_EQ(t.series_values(level), (std::vector<double>{0, 0, 0, 4}));
  EXPECT_DOUBLE_EQ(t.end_time(), 2.5);
}

TEST(TimelineRecorder, SamplesExactlyOnTheEndTime) {
  // End exactly on a boundary: no partial sample, and events stamped at the
  // end restamp the final boundary instead of vanishing into a never-emitted
  // next interval.
  TimelineRecorder t(options(1.0));
  const auto rate = t.add_rate_series("timeline.test.bytes_per_s");
  const auto level = t.add_level_series("timeline.test.depth", /*initial=*/1);
  t.record_rate(rate, 3.0, 6);   // the run's final completions
  t.record_level(level, 3.0, 0);
  t.finish(3.0);
  EXPECT_EQ(t.partial_duration(), 0.0);
  EXPECT_EQ(t.tick_count(), 4u);  // boundaries 0..3
  EXPECT_EQ(t.series_values(rate), (std::vector<double>{0, 0, 0, 6}));
  EXPECT_EQ(t.series_values(level), (std::vector<double>{1, 1, 1, 0}));
}

TEST(TimelineRecorder, FinishIsFinal) {
  TimelineRecorder t(options(1.0));
  const auto id = t.add_level_series("timeline.test.depth");
  t.finish(1.0);
  EXPECT_TRUE(t.finished());
  EXPECT_THROW(t.record_level(id, 2.0, 1), std::invalid_argument);
  EXPECT_THROW(t.finish(2.0), std::invalid_argument);
  EXPECT_THROW(t.add_level_series("timeline.test.late"), std::invalid_argument);
}

TEST(TimelineRecorder, RingWrapKeepsTheNewestTicks) {
  TimelineRecorder t(options(1.0, /*capacity=*/4));
  const auto id = t.add_level_series("timeline.test.depth");
  for (int k = 1; k <= 10; ++k)
    t.record_level(id, static_cast<double>(k), k);  // boundary k samples k-1
  t.finish(10.0);
  EXPECT_EQ(t.tick_count(), 11u);
  EXPECT_EQ(t.dropped_ticks(), 7u);
  EXPECT_EQ(t.first_retained_tick(), 7u);
  // Ticks 7..10 survive; the end-on-boundary restamp lifts tick 10 to the
  // final level.
  EXPECT_EQ(t.series_values(id), (std::vector<double>{6, 7, 8, 10}));
}

TEST(TimelineRecorder, ZeroLengthRunRestampsTickZero) {
  // A run that starts and ends at t = 0: the lone boundary is restamped with
  // the end state instead of the never-emitted "next interval" swallowing it.
  TimelineRecorder t(options(1.0));
  const auto level = t.add_level_series("timeline.test.depth", /*initial=*/1);
  const auto rate = t.add_rate_series("timeline.test.bytes_per_s");
  t.record_level(level, 0.0, 5);
  t.record_rate(rate, 0.0, 4);
  t.finish(0.0);
  EXPECT_EQ(t.tick_count(), 1u);
  EXPECT_EQ(t.partial_duration(), 0.0);
  EXPECT_EQ(t.series_values(level), (std::vector<double>{5}));
  EXPECT_EQ(t.series_values(rate), (std::vector<double>{4}));
}

TEST(TimelineRecorder, RestampFoldsInIntervalAndOnBoundaryMassTogether) {
  // Rate mass lands both strictly inside the final interval (2.4) and
  // exactly on the end boundary (3.0); the restamp must fold both into the
  // final sample — neither may leak into a phantom interval 4.
  TimelineRecorder t(options(1.0));
  const auto id = t.add_rate_series("timeline.test.bytes_per_s");
  t.record_rate(id, 2.4, 7);
  t.record_rate(id, 3.0, 3);
  t.finish(3.0);
  EXPECT_EQ(t.partial_duration(), 0.0);
  EXPECT_EQ(t.series_values(id), (std::vector<double>{0, 0, 0, 10}));
}

TEST(TimelineRecorder, PartialWindowCarriesOnEndEvents) {
  // Events stamped exactly at a mid-interval end belong to the partial
  // window, scaled by its true duration (0.25 s here -> 5 / 0.25 = 20/s).
  TimelineRecorder t(options(1.0));
  const auto rate = t.add_rate_series("timeline.test.bytes_per_s");
  const auto level = t.add_level_series("timeline.test.depth");
  t.record_rate(rate, 1.25, 5);
  t.record_level(level, 1.25, 9);
  t.finish(1.25);
  EXPECT_DOUBLE_EQ(t.partial_duration(), 0.25);
  EXPECT_EQ(t.series_values(rate), (std::vector<double>{0, 0, 20}));
  EXPECT_EQ(t.series_values(level), (std::vector<double>{0, 0, 9}));
}

sim::FaultEvent crash_at(Seconds at, dfs::NodeId node) {
  sim::FaultEvent ev;
  ev.at = at;
  ev.kind = sim::FaultKind::kCrash;
  ev.node = node;
  return ev;
}

TEST(TimelineFaults, CrashRunFinishesWithAConsistentWindowShape) {
  // A mid-run crash + recovery must still leave the recorder in a coherent
  // end state: flushed at the makespan, with every series carrying exactly
  // tick_count retained boundaries plus at most one partial sample.
  TimelineRecorder recorder(options(0.5));
  exp::ExperimentConfig cfg;
  cfg.nodes = 16;
  cfg.seed = 42;
  cfg.timeline = &recorder;
  sim::FaultPlan plan;
  plan.events.push_back(crash_at(2.0, 5));
  sim::FaultStats stats;
  cfg.faults = &plan;
  cfg.fault_stats = &stats;
  const auto out = exp::run_single_data(cfg, /*chunk_count=*/80, exp::Method::kOpass);

  ASSERT_EQ(stats.crashes, 1u);
  ASSERT_TRUE(recorder.finished());
  // Recovery traffic (the victim's re-replication copies) keeps the cluster
  // clock running past the job's makespan; the recorder is flushed at the
  // cluster end, so the crash's background tail is part of the window.
  EXPECT_GE(recorder.end_time(), out.makespan);
  EXPECT_GE(recorder.partial_duration(), 0.0);
  EXPECT_LT(recorder.partial_duration(), recorder.interval());
  const std::size_t expected =
      static_cast<std::size_t>(recorder.tick_count() - recorder.first_retained_tick()) +
      (recorder.partial_duration() > 0 ? 1 : 0);
  for (TimelineRecorder::SeriesId s = 0; s < recorder.series_count(); ++s)
    EXPECT_EQ(recorder.series_values(s).size(), expected) << recorder.series_name(s);

  const auto find = [&](const char* name) {
    TimelineRecorder::SeriesId id = UINT32_MAX;
    for (TimelineRecorder::SeriesId s = 0; s < recorder.series_count(); ++s)
      if (recorder.series_name(s) == name) id = s;
    EXPECT_NE(id, UINT32_MAX) << name;
    return id;
  };
  // The reassigned work still drains: no reads stay in flight at the end.
  EXPECT_EQ(recorder.series_values(find("timeline.cluster.inflight")).back(), 0.0);
  // Re-replication reads were never announced via add_expected_bytes, so the
  // bytes_remaining level ends exactly `rereplicated_bytes` below zero — the
  // recovery traffic is visible, byte for byte, in the timeline.
  EXPECT_EQ(recorder.series_values(find("timeline.cluster.bytes_remaining")).back(),
            -static_cast<double>(stats.rereplicated_bytes));
}

TEST(TimelineFaults, CrashReplaysRecordByteIdenticalSeries) {
  const auto run = [] {
    TimelineRecorder recorder(options(0.5));
    exp::ExperimentConfig cfg;
    cfg.nodes = 16;
    cfg.seed = 42;
    cfg.timeline = &recorder;
    sim::FaultPlan plan;
    plan.events.push_back(crash_at(2.0, 5));
    cfg.faults = &plan;
    exp::run_single_data(cfg, /*chunk_count=*/80, exp::Method::kOpass);
    std::vector<std::vector<double>> all;
    for (TimelineRecorder::SeriesId s = 0; s < recorder.series_count(); ++s)
      all.push_back(recorder.series_values(s));
    return all;
  };
  EXPECT_EQ(run(), run());
}

TEST(TimelineProbes, RecordAFullRunEndToEnd) {
  TimelineRecorder recorder(options(0.5));
  exp::ExperimentConfig cfg;
  cfg.nodes = 8;
  cfg.seed = 42;
  cfg.timeline = &recorder;
  runtime::ExecutionResult raw;
  cfg.raw = &raw;
  const auto out = exp::run_single_data(cfg, /*chunk_count=*/40, exp::Method::kOpass);

  ASSERT_TRUE(recorder.finished());
  EXPECT_DOUBLE_EQ(recorder.end_time(), out.makespan);

  // Per-node serve-rate integral over the samples reproduces the trace's
  // total served bytes (rates are bytes/s, boundary samples span interval
  // seconds, the trailing sample its partial duration).
  const std::vector<Bytes> served = raw.trace.bytes_served_per_node(cfg.nodes);
  for (std::uint32_t n = 0; n < cfg.nodes; ++n) {
    TimelineRecorder::SeriesId id = UINT32_MAX;
    const std::string name =
        "timeline.cluster.node." + std::to_string(n) + ".serve_bytes_per_s";
    for (TimelineRecorder::SeriesId s = 0; s < recorder.series_count(); ++s)
      if (recorder.series_name(s) == name) id = s;
    ASSERT_NE(id, UINT32_MAX) << name;
    const std::vector<double> values = recorder.series_values(id);
    double integral = 0;
    for (std::size_t i = 0; i < values.size(); ++i) {
      const bool partial_tail =
          recorder.partial_duration() > 0 && i + 1 == values.size();
      integral += values[i] * (partial_tail ? recorder.partial_duration()
                                            : recorder.interval());
    }
    EXPECT_NEAR(integral, static_cast<double>(served[n]), 1.0) << name;
  }

  // In-flight reads and queue depth both drain to zero at the end.
  for (const char* name : {"timeline.cluster.inflight", "timeline.executor.queue_depth",
                           "timeline.cluster.bytes_remaining"}) {
    TimelineRecorder::SeriesId id = UINT32_MAX;
    for (TimelineRecorder::SeriesId s = 0; s < recorder.series_count(); ++s)
      if (recorder.series_name(s) == name) id = s;
    ASSERT_NE(id, UINT32_MAX) << name;
    EXPECT_EQ(recorder.series_values(id).back(), 0.0) << name;
  }
}

TEST(TimelineProbes, RecordedRunsAreDeterministic) {
  const auto run = [] {
    TimelineRecorder recorder(options(0.5));
    exp::ExperimentConfig cfg;
    cfg.nodes = 8;
    cfg.seed = 7;
    cfg.timeline = &recorder;
    exp::run_single_data(cfg, /*chunk_count=*/40, exp::Method::kBaseline);
    std::vector<std::vector<double>> all;
    for (TimelineRecorder::SeriesId s = 0; s < recorder.series_count(); ++s)
      all.push_back(recorder.series_values(s));
    return all;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace opass::obs
