#include "obs/analytics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "exp/experiment.hpp"

namespace opass::obs {
namespace {

TEST(ImbalanceStats, UniformSamplesAreBalanced) {
  const ImbalanceStats s = imbalance_stats({5, 5, 5, 5});
  EXPECT_DOUBLE_EQ(s.degree_of_imbalance, 0.0);
  EXPECT_DOUBLE_EQ(s.cv, 0.0);
  EXPECT_DOUBLE_EQ(s.gini, 0.0);
  EXPECT_DOUBLE_EQ(s.peak_over_mean, 1.0);
}

TEST(ImbalanceStats, KnownSkewedSample) {
  // mean = 2, max = 5: DoI = 1.5, peak/mean = 2.5.
  const ImbalanceStats s = imbalance_stats({1, 1, 1, 5});
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.degree_of_imbalance, 1.5);
  EXPECT_DOUBLE_EQ(s.peak_over_mean, 2.5);
  // Gini via the rank formula: 2*(1*1+2*1+3*1+4*5)/(4*8) - 5/4 = 0.375.
  EXPECT_DOUBLE_EQ(s.gini, 0.375);
  EXPECT_GT(s.cv, 0.0);
}

TEST(ImbalanceStats, DegenerateInputs) {
  EXPECT_EQ(imbalance_stats({}).count, 0u);
  EXPECT_DOUBLE_EQ(imbalance_stats({}).gini, 0.0);
  const ImbalanceStats zeros = imbalance_stats({0, 0, 0});
  EXPECT_DOUBLE_EQ(zeros.degree_of_imbalance, 0.0);
  EXPECT_DOUBLE_EQ(zeros.gini, 0.0);
  EXPECT_DOUBLE_EQ(zeros.peak_over_mean, 0.0);
}

TEST(ImbalanceStats, GiniGrowsWithConcentration) {
  const double even = imbalance_stats({3, 3, 3, 3}).gini;
  const double mild = imbalance_stats({2, 3, 3, 4}).gini;
  const double harsh = imbalance_stats({0, 0, 0, 12}).gini;
  EXPECT_LT(even, mild);
  EXPECT_LT(mild, harsh);
  EXPECT_LT(harsh, 1.0);
}

/// Hand-built execution: 4 nodes, 4 processes; node/process 3 finishes far
/// behind the rest because of two slow chunk reads.
runtime::ExecutionResult straggling_run() {
  runtime::ExecutionResult exec;
  const auto add = [&exec](std::uint32_t process, dfs::NodeId node, dfs::ChunkId chunk,
                           Seconds issue, Seconds end) {
    sim::ReadRecord r;
    r.process = process;
    r.reader_node = process;
    r.serving_node = node;
    r.chunk = chunk;
    r.bytes = 100;
    r.issue_time = issue;
    r.end_time = end;
    exec.trace.add(r);
  };
  for (std::uint32_t p = 0; p < 3; ++p) add(p, p, p, 0.0, 1.0 + 0.01 * p);
  add(3, 3, 10, 0.0, 6.0);   // the convoy read
  add(3, 3, 11, 6.0, 10.0);  // the slowest read
  add(3, 3, 12, 10.0, 10.5);
  exec.process_finish_time = {1.0, 1.01, 1.02, 10.5};
  exec.makespan = 10.5;
  return exec;
}

TEST(Stragglers, DetectsTheLaggingNodeWithCausalChunks) {
  const ExecutionAnalytics a = analyze_execution(straggling_run(), /*node_count=*/4);
  ASSERT_EQ(a.straggler_nodes.size(), 1u);
  EXPECT_EQ(a.straggler_nodes[0].id, 3u);
  EXPECT_DOUBLE_EQ(a.straggler_nodes[0].finish, 10.5);
  // Causal chunks sorted by descending I/O time: 10 (6 s), 11 (4 s), 12 (0.5 s).
  EXPECT_EQ(a.straggler_nodes[0].causal_chunks,
            (std::vector<dfs::ChunkId>{10, 11, 12}));
  ASSERT_EQ(a.straggler_processes.size(), 1u);
  EXPECT_EQ(a.straggler_processes[0].id, 3u);
}

TEST(Stragglers, CausalChunkListIsCapped) {
  StragglerOptions opt;
  opt.max_causal_chunks = 2;
  const ExecutionAnalytics a = analyze_execution(straggling_run(), 4, opt);
  ASSERT_EQ(a.straggler_nodes.size(), 1u);
  EXPECT_EQ(a.straggler_nodes[0].causal_chunks, (std::vector<dfs::ChunkId>{10, 11}));
}

TEST(Stragglers, LagFactorGatesDetection) {
  StragglerOptions opt;
  opt.lag_factor = 3.0;  // p90 of node finishes is already ~10.5/3-ish away
  const ExecutionAnalytics a = analyze_execution(straggling_run(), 4, opt);
  EXPECT_TRUE(a.straggler_nodes.empty());
  EXPECT_TRUE(a.straggler_processes.empty());
  EXPECT_THROW(analyze_execution(straggling_run(), 4, StragglerOptions{0.5, 5}),
               std::invalid_argument);
}

TEST(Analytics, OpassBeatsTheBaselineOnImbalance) {
  // The acceptance property of the report pipeline: on the default scenario
  // Opass's serve-byte degree of imbalance is strictly lower.
  const auto analyze = [](exp::Method method) {
    exp::ExperimentConfig cfg;
    cfg.nodes = 16;
    cfg.seed = 42;
    runtime::ExecutionResult raw;
    cfg.raw = &raw;
    exp::run_single_data(cfg, /*chunk_count=*/80, method);
    return analyze_execution(raw, cfg.nodes);
  };
  const ExecutionAnalytics baseline = analyze(exp::Method::kBaseline);
  const ExecutionAnalytics opass = analyze(exp::Method::kOpass);
  EXPECT_LT(opass.serve_bytes.degree_of_imbalance,
            baseline.serve_bytes.degree_of_imbalance);
  EXPECT_LT(opass.serve_bytes.gini, baseline.serve_bytes.gini);
}

}  // namespace
}  // namespace opass::obs
