#include "workload/genomics.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace opass::workload {
namespace {

TEST(Genomics, CreatesOneTaskPerPartition) {
  dfs::NameNode nn(dfs::Topology::single_rack(16), 3, kDefaultChunkSize);
  dfs::RandomPlacement policy;
  Rng rng(1);
  GenomicsSpec spec;
  spec.partition_count = 48;
  const auto tasks = make_genomics_workload(nn, policy, rng, spec);
  EXPECT_EQ(tasks.size(), 48u);
  for (const auto& t : tasks) EXPECT_EQ(t.inputs.size(), 1u);
}

TEST(Genomics, ComputeTimesAreHeavyTailedWithRequestedMean) {
  dfs::NameNode nn(dfs::Topology::single_rack(16), 3, kDefaultChunkSize);
  dfs::RandomPlacement policy;
  Rng rng(2);
  GenomicsSpec spec;
  spec.partition_count = 4000;
  spec.mean_compute_time = 0.5;
  spec.pareto_shape = 2.5;
  const auto tasks = make_genomics_workload(nn, policy, rng, spec);
  std::vector<double> times;
  for (const auto& t : tasks) times.push_back(t.compute_time);
  const auto s = summarize(times);
  EXPECT_NEAR(s.mean, 0.5, 0.1);
  // Heavy tail: max far above the mean ("execution times vary greatly").
  EXPECT_GT(s.max, 3.0 * s.mean);
  EXPECT_GT(s.min, 0.0);
}

TEST(Genomics, ZeroComputeSpec) {
  dfs::NameNode nn(dfs::Topology::single_rack(16), 3, kDefaultChunkSize);
  dfs::RandomPlacement policy;
  Rng rng(3);
  GenomicsSpec spec;
  spec.partition_count = 8;
  spec.mean_compute_time = 0.0;
  const auto tasks = make_genomics_workload(nn, policy, rng, spec);
  for (const auto& t : tasks) EXPECT_EQ(t.compute_time, 0.0);
}

TEST(Genomics, Validation) {
  dfs::NameNode nn(dfs::Topology::single_rack(16), 3, kDefaultChunkSize);
  dfs::RandomPlacement policy;
  Rng rng(4);
  GenomicsSpec bad;
  bad.partition_count = 0;
  EXPECT_THROW(make_genomics_workload(nn, policy, rng, bad), std::invalid_argument);
  bad = {};
  bad.pareto_shape = 1.0;  // infinite mean
  EXPECT_THROW(make_genomics_workload(nn, policy, rng, bad), std::invalid_argument);
  bad = {};
  bad.mean_compute_time = -1.0;
  EXPECT_THROW(make_genomics_workload(nn, policy, rng, bad), std::invalid_argument);
}

}  // namespace
}  // namespace opass::workload
