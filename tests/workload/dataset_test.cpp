#include "workload/dataset.hpp"

#include <gtest/gtest.h>

namespace opass::workload {
namespace {

TEST(Dataset, StoreChunkedDataset) {
  dfs::NameNode nn(dfs::Topology::single_rack(8), 3, kDefaultChunkSize);
  dfs::RandomPlacement policy;
  Rng rng(1);
  const auto fid = store_chunked_dataset(nn, "d", 12, policy, rng);
  EXPECT_EQ(nn.file(fid).chunks.size(), 12u);
  EXPECT_EQ(nn.file(fid).size, 12 * kDefaultChunkSize);
  for (auto c : nn.file(fid).chunks) EXPECT_EQ(nn.chunk(c).size, kDefaultChunkSize);
}

TEST(Dataset, RejectsZeroChunks) {
  dfs::NameNode nn(dfs::Topology::single_rack(8), 3, kDefaultChunkSize);
  dfs::RandomPlacement policy;
  Rng rng(1);
  EXPECT_THROW(store_chunked_dataset(nn, "d", 0, policy, rng), std::invalid_argument);
}

TEST(Dataset, SingleDataWorkloadTasksMatchChunks) {
  dfs::NameNode nn(dfs::Topology::single_rack(8), 3, kDefaultChunkSize);
  dfs::RandomPlacement policy;
  Rng rng(2);
  const auto tasks = make_single_data_workload(nn, 20, policy, rng, 0.7);
  ASSERT_EQ(tasks.size(), 20u);
  for (const auto& t : tasks) {
    EXPECT_EQ(t.inputs.size(), 1u);
    EXPECT_EQ(t.compute_time, 0.7);
  }
}

TEST(Dataset, PlacementSeedReproducible) {
  auto build = [] {
    dfs::NameNode nn(dfs::Topology::single_rack(8), 3, kDefaultChunkSize);
    dfs::RandomPlacement policy;
    Rng rng(77);
    make_single_data_workload(nn, 16, policy, rng);
    return nn.node_chunk_counts();
  };
  EXPECT_EQ(build(), build());
}

}  // namespace
}  // namespace opass::workload
