// Skewed hot-file workload: Zipf popularity over a small file catalog,
// apportioned to tasks by largest remainder (deterministic, no RNG draw for
// the task mix — only placement consumes the stream).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "workload/dataset.hpp"

namespace opass::workload {
namespace {

SkewedWorkloadParams small_params() {
  SkewedWorkloadParams p;
  p.file_count = 8;
  p.chunks_per_file = 16;
  p.task_count = 256;
  p.zipf_s = 1.0;
  return p;
}

struct SkewedFixture : ::testing::Test {
  std::vector<runtime::Task> make(std::uint64_t seed,
                                  const SkewedWorkloadParams& p = small_params()) {
    nn = std::make_unique<dfs::NameNode>(dfs::Topology::single_rack(16), 3,
                                         kDefaultChunkSize);
    Rng rng(seed);
    return make_skewed_workload(*nn, p, policy, rng);
  }
  std::unique_ptr<dfs::NameNode> nn;
  dfs::RandomPlacement policy;
};

TEST_F(SkewedFixture, TotalsAndDenseIds) {
  const auto p = small_params();
  const auto tasks = make(42);
  ASSERT_EQ(tasks.size(), p.task_count);
  EXPECT_EQ(nn->chunk_count(), p.file_count * p.chunks_per_file);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(tasks[i].id, i);
    ASSERT_EQ(tasks[i].inputs.size(), 1u);
    EXPECT_LT(tasks[i].inputs[0], nn->chunk_count());
  }
}

TEST_F(SkewedFixture, PopularityIsMonotoneInFileRank) {
  const auto p = small_params();
  const auto tasks = make(42);
  std::vector<std::uint32_t> per_file(p.file_count, 0);
  for (const auto& t : tasks) ++per_file[nn->chunk(t.inputs[0]).file];
  // Zipf weights decrease strictly with rank, and largest-remainder
  // apportionment preserves the order: file 0 is the hottest.
  for (std::uint32_t f = 1; f < p.file_count; ++f)
    EXPECT_GE(per_file[f - 1], per_file[f]) << "file " << f;
  EXPECT_GT(per_file.front(), per_file.back());
  // All task_count reads were apportioned (largest remainder loses none).
  std::uint32_t total = 0;
  for (const std::uint32_t n : per_file) total += n;
  EXPECT_EQ(total, p.task_count);
}

TEST_F(SkewedFixture, HigherSkewConcentratesMoreOnTheHotFile) {
  auto flat = small_params();
  flat.zipf_s = 0.2;
  const auto flat_tasks = make(42, flat);
  std::uint32_t flat_hot = 0;
  for (const auto& t : flat_tasks)
    if (nn->chunk(t.inputs[0]).file == 0) ++flat_hot;

  auto steep = small_params();
  steep.zipf_s = 2.0;
  const auto steep_tasks = make(42, steep);
  std::uint32_t steep_hot = 0;
  for (const auto& t : steep_tasks)
    if (nn->chunk(t.inputs[0]).file == 0) ++steep_hot;

  EXPECT_GT(steep_hot, flat_hot);
}

TEST_F(SkewedFixture, SameSeedSameWorkload) {
  const auto a = make(7);
  const auto layout_a = nn->chunk(a[0].inputs[0]).replicas;
  const auto b = make(7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].inputs, b[i].inputs);
  EXPECT_EQ(nn->chunk(b[0].inputs[0]).replicas, layout_a);
}

}  // namespace
}  // namespace opass::workload
