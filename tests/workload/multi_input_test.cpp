#include "workload/multi_input.hpp"

#include <gtest/gtest.h>

#include <set>

namespace opass::workload {
namespace {

TEST(MultiInput, PaperShapeThreeInputs) {
  dfs::NameNode nn(dfs::Topology::single_rack(8), 3, kDefaultChunkSize);
  dfs::RandomPlacement policy;
  Rng rng(1);
  const auto tasks = make_multi_input_workload(nn, 10, policy, rng);
  ASSERT_EQ(tasks.size(), 10u);
  for (const auto& t : tasks) {
    ASSERT_EQ(t.inputs.size(), 3u);
    EXPECT_EQ(nn.chunk(t.inputs[0]).size, 30 * kMiB);
    EXPECT_EQ(nn.chunk(t.inputs[1]).size, 20 * kMiB);
    EXPECT_EQ(nn.chunk(t.inputs[2]).size, 10 * kMiB);
  }
  // 3 datasets x 10 files each.
  EXPECT_EQ(nn.file_count(), 30u);
  EXPECT_EQ(nn.total_file_bytes(), 10u * 60 * kMiB);
}

TEST(MultiInput, InputsAreDistinctChunks) {
  dfs::NameNode nn(dfs::Topology::single_rack(8), 3, kDefaultChunkSize);
  dfs::RandomPlacement policy;
  Rng rng(2);
  const auto tasks = make_multi_input_workload(nn, 6, policy, rng);
  std::set<dfs::ChunkId> all;
  for (const auto& t : tasks)
    for (auto c : t.inputs) EXPECT_TRUE(all.insert(c).second);
  EXPECT_EQ(all.size(), 18u);
}

TEST(MultiInput, CustomSpec) {
  dfs::NameNode nn(dfs::Topology::single_rack(8), 3, kDefaultChunkSize);
  dfs::RandomPlacement policy;
  Rng rng(3);
  MultiInputSpec spec;
  spec.input_sizes = {5 * kMiB, 15 * kMiB};
  spec.compute_time = 2.0;
  const auto tasks = make_multi_input_workload(nn, 4, policy, rng, spec);
  for (const auto& t : tasks) {
    EXPECT_EQ(t.inputs.size(), 2u);
    EXPECT_EQ(t.compute_time, 2.0);
  }
}

TEST(MultiInput, Validation) {
  dfs::NameNode nn(dfs::Topology::single_rack(8), 3, kDefaultChunkSize);
  dfs::RandomPlacement policy;
  Rng rng(4);
  EXPECT_THROW(make_multi_input_workload(nn, 0, policy, rng), std::invalid_argument);
  MultiInputSpec empty;
  empty.input_sizes = {};
  EXPECT_THROW(make_multi_input_workload(nn, 2, policy, rng, empty), std::invalid_argument);
  MultiInputSpec oversize;
  oversize.input_sizes = {nn.chunk_size() + 1};
  EXPECT_THROW(make_multi_input_workload(nn, 2, policy, rng, oversize),
               std::invalid_argument);
}

}  // namespace
}  // namespace opass::workload
