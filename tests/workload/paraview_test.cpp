#include "workload/paraview.hpp"

#include <gtest/gtest.h>

#include <set>

namespace opass::workload {
namespace {

TEST(ParaView, PaperDefaults) {
  dfs::NameNode nn(dfs::Topology::single_rack(64), 3, kDefaultChunkSize);
  dfs::RandomPlacement policy;
  Rng rng(1);
  const auto w = make_paraview_workload(nn, policy, rng);
  EXPECT_EQ(w.series.size(), 640u);
  EXPECT_EQ(w.tasks.size(), 640u);
  EXPECT_EQ(w.steps.size(), 10u);  // 640 / 64
  for (const auto& step : w.steps) EXPECT_EQ(step.size(), 64u);
  // ~26 GB total, 3.8 GB per step at 56 MiB per dataset (within rounding).
  EXPECT_NEAR(to_gib(nn.total_file_bytes()), 35.0, 10.0);
  for (const auto& t : w.tasks) {
    EXPECT_EQ(t.inputs.size(), 1u);
    EXPECT_EQ(nn.chunk(t.inputs[0]).size, 56 * kMiB);
    EXPECT_GT(t.compute_time, 0.0);
  }
}

TEST(ParaView, StepsPartitionTheSeries) {
  dfs::NameNode nn(dfs::Topology::single_rack(8), 3, kDefaultChunkSize);
  dfs::RandomPlacement policy;
  Rng rng(2);
  ParaViewSpec spec;
  spec.dataset_count = 10;
  spec.datasets_per_step = 4;  // steps of 4, 4, 2
  const auto w = make_paraview_workload(nn, policy, rng, spec);
  ASSERT_EQ(w.steps.size(), 3u);
  EXPECT_EQ(w.steps[0].size(), 4u);
  EXPECT_EQ(w.steps[2].size(), 2u);
  std::set<runtime::TaskId> all;
  for (const auto& step : w.steps)
    for (auto t : step) EXPECT_TRUE(all.insert(t).second);
  EXPECT_EQ(all.size(), 10u);
}

TEST(ParaView, Validation) {
  dfs::NameNode nn(dfs::Topology::single_rack(8), 3, kDefaultChunkSize);
  dfs::RandomPlacement policy;
  Rng rng(3);
  ParaViewSpec bad;
  bad.dataset_count = 0;
  EXPECT_THROW(make_paraview_workload(nn, policy, rng, bad), std::invalid_argument);
  bad = {};
  bad.datasets_per_step = 9999;
  EXPECT_THROW(make_paraview_workload(nn, policy, rng, bad), std::invalid_argument);
  bad = {};
  bad.bytes_per_dataset = nn.chunk_size() + 1;
  EXPECT_THROW(make_paraview_workload(nn, policy, rng, bad), std::invalid_argument);
}

}  // namespace
}  // namespace opass::workload
