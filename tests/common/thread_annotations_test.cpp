#include "common/thread_annotations.hpp"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace opass {
namespace {

// The annotated-counter shape every shared structure of the parallelization
// work must follow: fields guarded by an opass::Mutex, accessors that either
// take the lock (ScopedLock) or state their requirement (OPASS_REQUIRES).
// On clang this file compiles under -Wthread-safety, so a missing lock in
// the pattern below is a build error on the tidy/werror CI legs.
class GuardedCounter {
 public:
  void add(int delta) {
    ScopedLock lock(mu_);
    value_ += delta;
  }

  int value() const {
    ScopedLock lock(mu_);
    return value_;
  }

  // Callers already holding the lock skip re-acquisition; the annotation
  // makes clang verify every call site actually holds it.
  void add_locked(int delta) OPASS_REQUIRES(mu_) { value_ += delta; }

  Mutex& mutex() OPASS_RETURN_CAPABILITY(mu_) { return mu_; }

 private:
  mutable Mutex mu_;
  int value_ OPASS_GUARDED_BY(mu_) = 0;
};

TEST(ThreadAnnotations, ScopedLockSerializesConcurrentWriters) {
  GuardedCounter counter;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 2500;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) counter.add(1);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(counter.value(), kThreads * kIncrements);
}

TEST(ThreadAnnotations, RequiresAnnotatedPathNeedsExplicitLock) {
  GuardedCounter counter;
  {
    ScopedLock lock(counter.mutex());
    counter.add_locked(41);
    counter.add_locked(1);
  }
  EXPECT_EQ(counter.value(), 42);
}

TEST(ThreadAnnotations, TryLockReportsContention) {
  Mutex mu;
  ASSERT_TRUE(mu.try_lock());
  // Owned by this thread: a second try_lock from another thread must fail.
  bool other_acquired = true;
  std::thread prober([&] { other_acquired = mu.try_lock(); });
  prober.join();
  EXPECT_FALSE(other_acquired);
  mu.unlock();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

}  // namespace
}  // namespace opass
