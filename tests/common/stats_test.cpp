#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace opass {
namespace {

TEST(Summary, EmptySampleIsZeroed) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.max_over_min(), 0.0);
}

TEST(Summary, SingleValue) {
  const Summary s = summarize({4.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.min, 4.0);
  EXPECT_EQ(s.max, 4.0);
  EXPECT_EQ(s.mean, 4.0);
  EXPECT_EQ(s.median, 4.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(Summary, KnownValues) {
  const Summary s = summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);  // classic textbook sample
  EXPECT_EQ(s.min, 2.0);
  EXPECT_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.sum, 40.0);
}

TEST(Summary, MaxOverMin) {
  const Summary s = summarize({1.0, 21.0});
  EXPECT_DOUBLE_EQ(s.max_over_min(), 21.0);
}

TEST(Summary, MaxOverMinZeroMin) {
  const Summary s = summarize({0.0, 5.0});
  EXPECT_EQ(s.max_over_min(), 0.0);
}

TEST(Summary, MedianEvenCount) {
  const Summary s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.median, 2.5);
}

TEST(QuantileSorted, Endpoints) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.5), 3.0);
}

TEST(QuantileSorted, Interpolates) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.25), 2.5);
}

TEST(QuantileSorted, RejectsOutOfRangeQ) {
  const std::vector<double> v{1.0};
  EXPECT_THROW(quantile_sorted(v, 1.5), std::invalid_argument);
  EXPECT_THROW(quantile_sorted(v, -0.1), std::invalid_argument);
}

TEST(QuantileSorted, EmptyReturnsZero) {
  EXPECT_EQ(quantile_sorted({}, 0.5), 0.0);
}

TEST(CoefficientOfVariation, UniformSampleIsZero) {
  EXPECT_DOUBLE_EQ(coefficient_of_variation({3.0, 3.0, 3.0}), 0.0);
}

TEST(CoefficientOfVariation, Known) {
  // mean 5, stddev 2 => cv 0.4
  EXPECT_DOUBLE_EQ(coefficient_of_variation({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}), 0.4);
}

TEST(JainFairness, PerfectBalance) {
  EXPECT_DOUBLE_EQ(jain_fairness({5.0, 5.0, 5.0, 5.0}), 1.0);
}

TEST(JainFairness, WorstCaseOneHot) {
  // One node serves everything among n: index = 1/n.
  EXPECT_NEAR(jain_fairness({10.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
}

TEST(JainFairness, EmptyIsZero) { EXPECT_EQ(jain_fairness({}), 0.0); }

TEST(JainFairness, AllZeroIsBalanced) { EXPECT_EQ(jain_fairness({0.0, 0.0}), 1.0); }

}  // namespace
}  // namespace opass
