#include "common/table.hpp"

#include <gtest/gtest.h>

namespace opass {
namespace {

TEST(Table, RendersHeadersAndRows) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  const std::string out = t.render("demo");
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("a"), std::string::npos);
  EXPECT_NE(out.find("bb"), std::string::npos);
  EXPECT_NE(out.find("1"), std::string::npos);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, RejectsEmptyHeaders) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::integer(42), "42");
  EXPECT_EQ(Table::integer(-7), "-7");
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"x"});
  t.add_row({"a,b"});
  t.add_row({"q\"uote"});
  const std::string csv = t.csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"q\"\"uote\""), std::string::npos);
}

TEST(Table, CsvHeaderFirstLine) {
  Table t({"h1", "h2"});
  t.add_row({"v1", "v2"});
  EXPECT_EQ(t.csv().substr(0, 5), "h1,h2");
}

TEST(Table, RowCount) {
  Table t({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

}  // namespace
}  // namespace opass
