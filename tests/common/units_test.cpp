#include "common/units.hpp"

#include <gtest/gtest.h>

namespace opass {
namespace {

TEST(Units, Constants) {
  EXPECT_EQ(kKiB, 1024u);
  EXPECT_EQ(kMiB, 1024u * 1024u);
  EXPECT_EQ(kGiB, 1024ull * 1024 * 1024);
  EXPECT_EQ(kDefaultChunkSize, 64u * kMiB);
}

TEST(Units, Constructors) {
  EXPECT_EQ(mib(30), 30u * 1024 * 1024);
  EXPECT_EQ(gib(2), 2ull * 1024 * 1024 * 1024);
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(to_mib(64 * kMiB), 64.0);
  EXPECT_DOUBLE_EQ(to_gib(kGiB / 2), 0.5);
  EXPECT_DOUBLE_EQ(to_mib(kMiB / 2), 0.5);
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2 * kKiB), "2.0 KiB");
  EXPECT_EQ(format_bytes(64 * kMiB), "64.0 MiB");
  EXPECT_EQ(format_bytes(3 * kGiB + kGiB / 2), "3.5 GiB");
}

}  // namespace
}  // namespace opass
