#include "common/str.hpp"

#include <gtest/gtest.h>

namespace opass {
namespace {

TEST(Strfmt, FormatsLikePrintf) {
  EXPECT_EQ(strfmt("x=%d y=%.2f s=%s", 7, 3.14159, "hi"), "x=7 y=3.14 s=hi");
  EXPECT_EQ(strfmt("plain"), "plain");
  EXPECT_EQ(strfmt("%s", ""), "");
}

TEST(Strfmt, HandlesLongOutput) {
  const std::string big(500, 'a');
  EXPECT_EQ(strfmt("%s!", big.c_str()).size(), 501u);
}

TEST(Join, JoinsWithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({"solo"}, ","), "solo");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"", ""}, "-"), "-");
}

}  // namespace
}  // namespace opass
