#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace opass {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform(17), 17u);
}

TEST(Rng, UniformRejectsZeroBound) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform(0), std::invalid_argument);
}

TEST(Rng, UniformCoversAllValues) {
  Rng rng(99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(5);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(13);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(Rng, ExponentialRejectsNonPositiveMean) {
  Rng rng(13);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, ParetoRespectsScaleFloor) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.pareto(1.5, 2.0), 1.5);
}

TEST(Rng, ParetoMeanMatches) {
  // mean = xm * alpha / (alpha - 1) = 1.0 * 3 / 2 = 1.5
  Rng rng(19);
  double sum = 0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) sum += rng.pareto(1.0, 3.0);
  EXPECT_NEAR(sum / n, 1.5, 0.02);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(23);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  const auto orig = v;
  rng.shuffle(v);
  EXPECT_NE(v, orig);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(29);
  for (std::uint32_t k : {0u, 1u, 5u, 50u, 100u}) {
    const auto s = rng.sample_without_replacement(100, k);
    ASSERT_EQ(s.size(), k);
    std::set<std::uint32_t> distinct(s.begin(), s.end());
    EXPECT_EQ(distinct.size(), k);
    for (auto v : s) EXPECT_LT(v, 100u);
  }
}

TEST(Rng, SampleWithoutReplacementRejectsOversample) {
  Rng rng(29);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), std::invalid_argument);
}

TEST(Rng, SampleWithoutReplacementIsUniformish) {
  // Each element of [0,10) should appear in a 5-of-10 sample about half the
  // time.
  Rng rng(31);
  std::vector<int> hits(10, 0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t)
    for (auto v : rng.sample_without_replacement(10, 5)) ++hits[v];
  for (int h : hits) EXPECT_NEAR(h / double(trials), 0.5, 0.02);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(41);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(43);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(hits / double(n), 0.3, 0.01);
}

}  // namespace
}  // namespace opass
