#include "common/options.hpp"

#include <gtest/gtest.h>

namespace opass {
namespace {

Options make_opts() {
  Options o;
  o.add("nodes", "64", "cluster size")
      .add("rate", "1.5", "a real")
      .add("name", "abc", "a string")
      .add("verbose", "false", "a boolean");
  return o;
}

bool parse(Options& o, std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return o.parse(static_cast<int>(args.size()), args.data());
}

TEST(Options, DefaultsApply) {
  auto o = make_opts();
  ASSERT_TRUE(parse(o, {}));
  EXPECT_EQ(o.integer("nodes"), 64);
  EXPECT_DOUBLE_EQ(o.real("rate"), 1.5);
  EXPECT_EQ(o.str("name"), "abc");
  EXPECT_FALSE(o.boolean("verbose"));
}

TEST(Options, EqualsForm) {
  auto o = make_opts();
  ASSERT_TRUE(parse(o, {"--nodes=128", "--name=xyz"}));
  EXPECT_EQ(o.integer("nodes"), 128);
  EXPECT_EQ(o.str("name"), "xyz");
}

TEST(Options, SpaceForm) {
  auto o = make_opts();
  ASSERT_TRUE(parse(o, {"--nodes", "32"}));
  EXPECT_EQ(o.integer("nodes"), 32);
}

TEST(Options, BareBooleanFlag) {
  auto o = make_opts();
  ASSERT_TRUE(parse(o, {"--verbose"}));
  EXPECT_TRUE(o.boolean("verbose"));
}

TEST(Options, BooleanExplicitValue) {
  auto o = make_opts();
  ASSERT_TRUE(parse(o, {"--verbose=true"}));
  EXPECT_TRUE(o.boolean("verbose"));
  auto o2 = make_opts();
  ASSERT_TRUE(parse(o2, {"--verbose=0"}));
  EXPECT_FALSE(o2.boolean("verbose"));
}

TEST(Options, UnknownFlagFails) {
  auto o = make_opts();
  EXPECT_FALSE(parse(o, {"--bogus=1"}));
  EXPECT_NE(o.error().find("bogus"), std::string::npos);
}

TEST(Options, MissingValueFails) {
  auto o = make_opts();
  EXPECT_FALSE(parse(o, {"--nodes"}));
}

TEST(Options, PositionalCollected) {
  auto o = make_opts();
  ASSERT_TRUE(parse(o, {"input.txt", "--nodes=8", "more"}));
  EXPECT_EQ(o.positional(), (std::vector<std::string>{"input.txt", "more"}));
}

TEST(Options, TypeErrorsThrow) {
  auto o = make_opts();
  ASSERT_TRUE(parse(o, {"--name=notanumber"}));
  EXPECT_THROW(o.integer("name"), std::invalid_argument);
  EXPECT_THROW(o.real("name"), std::invalid_argument);
  EXPECT_THROW(o.boolean("name"), std::invalid_argument);
}

TEST(Options, UndeclaredAccessThrows) {
  auto o = make_opts();
  EXPECT_THROW(o.str("nope"), std::invalid_argument);
}

TEST(Options, DuplicateDeclarationThrows) {
  Options o;
  o.add("x", "1", "");
  EXPECT_THROW(o.add("x", "2", ""), std::invalid_argument);
}

TEST(Options, UsageListsFlags) {
  auto o = make_opts();
  const auto u = o.usage("prog");
  EXPECT_NE(u.find("--nodes"), std::string::npos);
  EXPECT_NE(u.find("cluster size"), std::string::npos);
  EXPECT_NE(u.find("default: 64"), std::string::npos);
}

TEST(Options, LastValueWins) {
  auto o = make_opts();
  ASSERT_TRUE(parse(o, {"--nodes=1", "--nodes=2"}));
  EXPECT_EQ(o.integer("nodes"), 2);
}

}  // namespace
}  // namespace opass
