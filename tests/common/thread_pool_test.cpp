#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

namespace opass {
namespace {

TEST(ThreadPool, SingleThreadPoolSpawnsNothingAndRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::vector<std::size_t> seen;
  pool.parallel_chunks(5, [&](std::size_t c) { seen.push_back(c); });
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ThreadCountClampsToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
}

TEST(ThreadPool, ZeroChunksIsANoOp) {
  ThreadPool pool(4);
  bool called = false;
  pool.parallel_chunks(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
  EXPECT_EQ(pool.batches(), 0u);
  EXPECT_EQ(pool.chunks_executed(), 0u);
}

TEST(ThreadPool, ZeroCountForChunksNeverCallsFn) {
  ThreadPool pool(4);
  bool called = false;
  pool.parallel_for_chunks(0, 1, [&](std::size_t, std::size_t, std::size_t) {
    called = true;
  });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, EveryChunkRunsExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_chunks(64, [&](std::size_t c) { hits[c].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(pool.batches(), 1u);
  EXPECT_EQ(pool.chunks_executed(), 64u);
}

TEST(ThreadPool, ParallelForPartitionsTheRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for_chunks(100, 1, [&](std::size_t begin, std::size_t end, std::size_t) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, MinPerChunkLimitsTheSplit) {
  ThreadPool pool(8);
  // 10 items at >= 6 per chunk: ceil(10/6) = 2 chunks, not 8.
  std::vector<std::pair<std::size_t, std::size_t>> ranges(8, {0, 0});
  std::atomic<int> chunks{0};
  pool.parallel_for_chunks(10, 6, [&](std::size_t begin, std::size_t end, std::size_t chunk) {
    ranges[chunk] = {begin, end};
    chunks.fetch_add(1);
  });
  EXPECT_EQ(chunks.load(), 2);
  EXPECT_EQ(ranges[0], (std::pair<std::size_t, std::size_t>{0, 5}));
  EXPECT_EQ(ranges[1], (std::pair<std::size_t, std::size_t>{5, 10}));
}

TEST(ThreadPool, ChunkBoundariesAreAFunctionOfShapeNotTiming) {
  // Run the same split twice; the recorded boundaries must be identical.
  ThreadPool pool(4);
  auto record = [&] {
    std::vector<std::pair<std::size_t, std::size_t>> ranges(4, {0, 0});
    pool.parallel_for_chunks(17, 1, [&](std::size_t b, std::size_t e, std::size_t c) {
      ranges[c] = {b, e};
    });
    return ranges;
  };
  EXPECT_EQ(record(), record());
}

TEST(ThreadPool, OrderedReductionMatchesSerialFoldExactly) {
  // Non-associative double accumulation: the ordered fold must be
  // bit-identical to the serial left fold for every thread count.
  const std::size_t n = 10000;
  auto transform = [](std::size_t i) {
    return 1.0 / (1.0 + static_cast<double>(i) * 1.37e-3);
  };
  double serial = 0.0;
  for (std::size_t i = 0; i < n; ++i) serial += transform(i);

  for (std::uint32_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    const double parallel = pool.parallel_transform_reduce(
        n, 0.0, transform, [](double acc, double v) { return acc + v; });
    EXPECT_EQ(parallel, serial) << "threads=" << threads;  // exact, not NEAR
  }
}

TEST(ThreadPool, OrderedReductionPreservesSequenceOrder) {
  ThreadPool pool(4);
  const auto order = pool.parallel_transform_reduce(
      100, std::vector<std::size_t>{},
      [](std::size_t i) { return std::vector<std::size_t>{i}; },
      [](std::vector<std::size_t> acc, std::vector<std::size_t> v) {
        acc.insert(acc.end(), v.begin(), v.end());
        return acc;
      });
  ASSERT_EQ(order.size(), 100u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, LowestFailingChunkWinsTheRethrow) {
  ThreadPool pool(4);
  // Chunks 2, 5, 11 throw; the barrier must rethrow chunk 2's exception no
  // matter which lane hit its error first in real time.
  try {
    pool.parallel_chunks(16, [&](std::size_t c) {
      if (c == 2 || c == 5 || c == 11)
        throw std::runtime_error("chunk " + std::to_string(c));
    });
    FAIL() << "expected the batch to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk 2");
  }
}

TEST(ThreadPool, PoolIsUsableAfterAnException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_chunks(8, [](std::size_t c) {
        if (c == 3) throw std::runtime_error("boom");
      }),
      std::runtime_error);
  std::atomic<int> ran{0};
  pool.parallel_chunks(8, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, InlineExceptionAlsoPropagates) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.parallel_chunks(
                   3, [](std::size_t c) {
                     if (c == 1) throw std::runtime_error("inline");
                   }),
               std::runtime_error);
}

TEST(ThreadPool, StatsAccumulateAcrossBatches) {
  ThreadPool pool(2);
  pool.parallel_chunks(4, [](std::size_t) {});
  pool.parallel_chunks(6, [](std::size_t) {});
  EXPECT_EQ(pool.batches(), 2u);
  EXPECT_EQ(pool.chunks_executed(), 10u);
  // Static assignment: lane 0 takes the even chunks, lane 1 the odd ones.
  EXPECT_EQ(pool.lane_chunks(0), 5u);
  EXPECT_EQ(pool.lane_chunks(1), 5u);
}

TEST(ThreadPool, ManyBatchesSurviveBackToBack) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> total{0};
  for (int b = 0; b < 200; ++b)
    pool.parallel_chunks(8, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 1600u);
  EXPECT_EQ(pool.chunks_executed(), 1600u);
}

}  // namespace
}  // namespace opass
