// Size-aware weighted chunking: weighted_chunk_bounds is a pure function of
// (weights, max_chunks) — purity, shape invariants, the equal-count fallback
// and the big-number path are pinned here — and parallel_weighted_for_chunks
// produces serially-equal results for every thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <limits>
#include <numeric>
#include <vector>

#include "common/thread_pool.hpp"

namespace opass {
namespace {

// Every valid bound vector starts at 0, ends at weights.size(), is strictly
// increasing (no empty ranges), and has at most max_chunks ranges.
void check_shape(const std::vector<std::size_t>& bounds,
                 std::size_t count, std::size_t max_chunks) {
  ASSERT_GE(bounds.size(), 2u);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), count);
  EXPECT_LE(bounds.size() - 1, std::max<std::size_t>(max_chunks, 1));
  for (std::size_t i = 1; i < bounds.size(); ++i) EXPECT_GT(bounds[i], bounds[i - 1]);
}

TEST(WeightedChunkBounds, EmptyInputYieldsTheTrivialPartition) {
  EXPECT_EQ(weighted_chunk_bounds({}, 4), (std::vector<std::size_t>{0}));
}

TEST(WeightedChunkBounds, SingleChunkCoversEverything) {
  EXPECT_EQ(weighted_chunk_bounds({5, 1, 9}, 1), (std::vector<std::size_t>{0, 3}));
}

TEST(WeightedChunkBounds, ZeroMaxChunksClampsToOne) {
  EXPECT_EQ(weighted_chunk_bounds({5, 1, 9}, 0), (std::vector<std::size_t>{0, 3}));
}

TEST(WeightedChunkBounds, BalancesSkewedWeights) {
  // One giant item among singletons: the giant gets its own range instead of
  // dragging half the tail with it (the failure mode of equal-count splits).
  const std::vector<std::uint64_t> weights = {100, 1, 1, 1, 1, 1, 1, 1};
  const auto bounds = weighted_chunk_bounds(weights, 4);
  check_shape(bounds, weights.size(), 4);
  EXPECT_EQ(bounds[1], 1u);  // first cut right after the giant
}

TEST(WeightedChunkBounds, ZeroTotalWeightFallsBackToEqualCounts) {
  const std::vector<std::uint64_t> weights(8, 0);
  const auto bounds = weighted_chunk_bounds(weights, 4);
  EXPECT_EQ(bounds, (std::vector<std::size_t>{0, 2, 4, 6, 8}));
}

TEST(WeightedChunkBounds, MoreChunksThanItemsClampsToItemCount) {
  const auto bounds = weighted_chunk_bounds({3, 3, 3}, 16);
  EXPECT_EQ(bounds, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(WeightedChunkBounds, HugeWeightsDoNotOverflow) {
  // prefix * chunks would overflow u64; the crossing test must survive it.
  const std::uint64_t big = std::numeric_limits<std::uint64_t>::max() / 4;
  const std::vector<std::uint64_t> weights = {big, big, big, big};
  const auto bounds = weighted_chunk_bounds(weights, 4);
  EXPECT_EQ(bounds, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(WeightedChunkBounds, IsAPureFunctionOfItsInputs) {
  const std::vector<std::uint64_t> weights = {7, 3, 0, 12, 1, 1, 4, 9, 2, 2};
  const auto a = weighted_chunk_bounds(weights, 3);
  const auto b = weighted_chunk_bounds(weights, 3);
  EXPECT_EQ(a, b);
  check_shape(a, weights.size(), 3);
}

TEST(WeightedChunkBounds, EveryBudgetProducesAValidPartition) {
  const std::vector<std::uint64_t> weights = {1, 50, 1, 1, 30, 1, 1, 1, 20, 1};
  for (std::size_t k = 1; k <= weights.size() + 2; ++k)
    check_shape(weighted_chunk_bounds(weights, k), weights.size(), k);
}

TEST(WeightedParallelFor, CoversTheRangeExactlyOnce) {
  ThreadPool pool(4);
  const std::vector<std::uint64_t> weights = {9, 1, 1, 1, 7, 1, 1, 1};
  std::vector<std::atomic<int>> hits(weights.size());
  pool.parallel_weighted_for_chunks(weights, 1,
                                    [&](std::size_t begin, std::size_t end, std::size_t) {
                                      for (std::size_t i = begin; i < end; ++i)
                                        hits[i].fetch_add(1);
                                    });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WeightedParallelFor, EmptyWeightsIsANoOp) {
  ThreadPool pool(4);
  bool called = false;
  pool.parallel_weighted_for_chunks({}, 1, [&](std::size_t, std::size_t, std::size_t) {
    called = true;
  });
  EXPECT_FALSE(called);
}

TEST(WeightedParallelFor, MinWeightLimitsTheSplit) {
  ThreadPool pool(4);
  // Total weight 8 with grain 8 -> one inline chunk despite 4 lanes.
  const std::vector<std::uint64_t> weights = {2, 2, 2, 2};
  std::size_t calls = 0;
  pool.parallel_weighted_for_chunks(weights, 8,
                                    [&](std::size_t begin, std::size_t end, std::size_t) {
                                      ++calls;
                                      EXPECT_EQ(begin, 0u);
                                      EXPECT_EQ(end, weights.size());
                                    });
  EXPECT_EQ(calls, 1u);
}

TEST(WeightedParallelFor, ResultsMatchSerialForEveryThreadCount) {
  const std::vector<std::uint64_t> weights = {13, 1, 1, 40, 2, 2, 2, 5, 5, 5, 1, 1};
  // Per-item results land in distinct slots, so the gather is order-free and
  // the comparison is exact for any partition.
  const auto run = [&](std::uint32_t threads) {
    ThreadPool pool(threads);
    std::vector<std::uint64_t> out(weights.size(), 0);
    pool.parallel_weighted_for_chunks(weights, 1,
                                      [&](std::size_t begin, std::size_t end, std::size_t c) {
                                        for (std::size_t i = begin; i < end; ++i)
                                          out[i] = weights[i] * 3 + c * 0;
                                      });
    return out;
  };
  const auto serial = run(1);
  for (std::uint32_t t : {2u, 3u, 4u, 8u}) EXPECT_EQ(run(t), serial) << t << " threads";
}

}  // namespace
}  // namespace opass
