#include "common/timeline.hpp"

#include <gtest/gtest.h>

namespace opass {
namespace {

TEST(Timeline, PaintsIntervalsProportionally) {
  Timeline tl(0.0, 10.0, 1, 10);
  tl.add(0, 2.0, 5.0, '#');
  const auto out = tl.render({"n"});
  // Columns 2..4 painted (interval [2,5) at 1 s/column).
  EXPECT_NE(out.find("|  ###"), std::string::npos);
}

TEST(Timeline, ShortEventsStillVisible) {
  Timeline tl(0.0, 100.0, 1, 10);
  tl.add(0, 50.0, 50.001, 'x');
  EXPECT_DOUBLE_EQ(tl.lane_fill(0), 0.1);  // one cell of ten
}

TEST(Timeline, LaterPaintWins) {
  Timeline tl(0.0, 10.0, 1, 10);
  tl.add(0, 0.0, 10.0, 'a');
  tl.add(0, 4.0, 6.0, 'b');
  const auto out = tl.render({"n"});
  EXPECT_NE(out.find('b'), std::string::npos);
  EXPECT_NE(out.find('a'), std::string::npos);
}

TEST(Timeline, ClipsOutOfRange) {
  Timeline tl(0.0, 10.0, 2, 10);
  tl.add(0, -5.0, 2.0, '#');   // clipped at the left
  tl.add(1, 8.0, 50.0, '#');   // clipped at the right
  EXPECT_DOUBLE_EQ(tl.lane_fill(0), 0.3);  // cells 0..2
  EXPECT_DOUBLE_EQ(tl.lane_fill(1), 0.2);  // cells 8..9
  Timeline tl2(0.0, 10.0, 1, 10);
  tl2.add(0, 20.0, 30.0, '#');  // fully clipped
  EXPECT_DOUBLE_EQ(tl2.lane_fill(0), 0.0);
}

TEST(Timeline, LaneFillEmpty) {
  Timeline tl(0.0, 1.0, 3, 10);
  for (std::size_t lane = 0; lane < 3; ++lane) EXPECT_DOUBLE_EQ(tl.lane_fill(lane), 0.0);
}

TEST(Timeline, RenderHasLabelsAndAxis) {
  Timeline tl(0.0, 12.5, 2, 20);
  tl.add(1, 0.0, 6.0, 'L');
  const auto out = tl.render({"alpha", "beta"});
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("beta "), std::string::npos);
  EXPECT_NE(out.find("0.0s"), std::string::npos);
  EXPECT_NE(out.find("12.5s"), std::string::npos);
}

TEST(Timeline, Validation) {
  EXPECT_THROW(Timeline(1.0, 1.0, 1, 10), std::invalid_argument);
  EXPECT_THROW(Timeline(0.0, 1.0, 0, 10), std::invalid_argument);
  EXPECT_THROW(Timeline(0.0, 1.0, 1, 0), std::invalid_argument);
  Timeline tl(0.0, 1.0, 1, 10);
  EXPECT_THROW(tl.add(5, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(tl.add(0, 1.0, 0.5), std::invalid_argument);
  EXPECT_THROW(tl.render({"a", "b"}), std::invalid_argument);
  EXPECT_THROW(tl.lane_fill(3), std::invalid_argument);
}

}  // namespace
}  // namespace opass
