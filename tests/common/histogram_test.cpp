#include "common/histogram.hpp"

#include <gtest/gtest.h>

namespace opass {
namespace {

TEST(Histogram, BinsValuesCorrectly) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(5.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 10.0, 10);
  h.add(-5.0);
  h.add(100.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(9), 1u);
}

TEST(Histogram, BinEdges) {
  Histogram h(2.0, 4.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.5);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 3.5);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 4.0);
}

TEST(Histogram, AddAll) {
  Histogram h(0.0, 1.0, 2);
  h.add_all({0.1, 0.2, 0.8});
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
}

TEST(Histogram, RejectsBadRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, RenderContainsCounts) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  const std::string out = h.render(10);
  EXPECT_NE(out.find("2"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(Histogram, BoundaryValueGoesToUpperBin) {
  Histogram h(0.0, 10.0, 10);
  h.add(1.0);  // exactly on the 0/1 bin edge -> bin 1 per floor semantics
  EXPECT_EQ(h.count(1), 1u);
}

}  // namespace
}  // namespace opass
