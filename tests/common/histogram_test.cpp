#include "common/histogram.hpp"

#include <gtest/gtest.h>

namespace opass {
namespace {

TEST(Histogram, BinsValuesCorrectly) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(5.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 10.0, 10);
  h.add(-5.0);
  h.add(100.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(9), 1u);
}

TEST(Histogram, BinEdges) {
  Histogram h(2.0, 4.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.5);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 3.5);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 4.0);
}

TEST(Histogram, AddAll) {
  Histogram h(0.0, 1.0, 2);
  h.add_all({0.1, 0.2, 0.8});
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
}

TEST(Histogram, RejectsBadRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, RenderContainsCounts) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  const std::string out = h.render(10);
  EXPECT_NE(out.find("2"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(Histogram, BoundaryValueGoesToUpperBin) {
  Histogram h(0.0, 10.0, 10);
  h.add(1.0);  // exactly on the 0/1 bin edge -> bin 1 per floor semantics
  EXPECT_EQ(h.count(1), 1u);
}

TEST(Histogram, EveryInteriorEdgeIsLowerInclusive) {
  // Bins are [lo, hi): a sample exactly on edge k belongs to bin k, for
  // every interior edge, not just the first.
  Histogram h(0.0, 10.0, 10);
  for (int edge = 1; edge <= 9; ++edge) h.add(static_cast<double>(edge));
  for (std::size_t bin = 1; bin <= 9; ++bin) EXPECT_EQ(h.count(bin), 1u) << bin;
  EXPECT_EQ(h.count(0), 0u);
}

TEST(Histogram, RangeEndpointsClampIntoEdgeBins) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.0);   // lo lands in the first bin
  h.add(10.0);  // hi is outside [lo, hi) but clamps into the last bin
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, NonZeroOriginKeepsEdgeSemantics) {
  // The edge rule must survive an offset range: with [2, 4) over 4 bins the
  // width is 0.5 and 3.0 sits exactly on the 1/2 edge -> bin 2.
  Histogram h(2.0, 4.0, 4);
  h.add(3.0);
  h.add(2.5);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(0), 0u);
}

}  // namespace
}  // namespace opass
