#include "sim/flow_sim.hpp"

#include <gtest/gtest.h>

namespace opass::sim {
namespace {

TEST(FlowSimulator, SingleFlowTakesBytesOverCapacity) {
  FlowSimulator sim;
  const auto r = sim.add_resource(100.0);  // 100 B/s
  Seconds done = -1;
  sim.start_flow({r}, 500, [&](Seconds t) { done = t; });
  EXPECT_DOUBLE_EQ(sim.run(), 5.0);
  EXPECT_DOUBLE_EQ(done, 5.0);
}

TEST(FlowSimulator, TwoFlowsShareFairly) {
  FlowSimulator sim;
  const auto r = sim.add_resource(100.0);
  Seconds d1 = -1, d2 = -1;
  sim.start_flow({r}, 500, [&](Seconds t) { d1 = t; });
  sim.start_flow({r}, 500, [&](Seconds t) { d2 = t; });
  sim.run();
  // Both at 50 B/s: both finish at 10 s.
  EXPECT_DOUBLE_EQ(d1, 10.0);
  EXPECT_DOUBLE_EQ(d2, 10.0);
}

TEST(FlowSimulator, ShortFlowReleasesCapacity) {
  FlowSimulator sim;
  const auto r = sim.add_resource(100.0);
  Seconds d_short = -1, d_long = -1;
  sim.start_flow({r}, 100, [&](Seconds t) { d_short = t; });
  sim.start_flow({r}, 600, [&](Seconds t) { d_long = t; });
  sim.run();
  // Shared 50/50 until the short one finishes at t=2 (100/50); the long one
  // then has 500 left at 100 B/s => t = 2 + 5 = 7.
  EXPECT_DOUBLE_EQ(d_short, 2.0);
  EXPECT_DOUBLE_EQ(d_long, 7.0);
}

TEST(FlowSimulator, MaxMinAcrossTwoResources) {
  // Flow A crosses r1 only; flow B crosses r1 and r2 where r2 is tight.
  // B is bottlenecked at 10 by r2; A gets the rest of r1 (90).
  FlowSimulator sim;
  const auto r1 = sim.add_resource(100.0);
  const auto r2 = sim.add_resource(10.0);
  Seconds da = -1, db = -1;
  sim.start_flow({r1}, 900, [&](Seconds t) { da = t; });
  sim.start_flow({r1, r2}, 100, [&](Seconds t) { db = t; });
  sim.run();
  EXPECT_DOUBLE_EQ(da, 10.0);
  EXPECT_DOUBLE_EQ(db, 10.0);
}

TEST(FlowSimulator, RateCapLimitsLoneFlow) {
  FlowSimulator sim;
  const auto r = sim.add_resource(100.0);
  Seconds done = -1;
  sim.start_flow({r}, 100, [&](Seconds t) { done = t; }, /*rate_cap=*/20.0);
  sim.run();
  EXPECT_DOUBLE_EQ(done, 5.0);  // 100 B at 20 B/s
}

TEST(FlowSimulator, CappedFlowReleasesShareToOthers) {
  FlowSimulator sim;
  const auto r = sim.add_resource(100.0);
  Seconds da = -1, db = -1;
  sim.start_flow({r}, 200, [&](Seconds t) { da = t; }, /*rate_cap=*/20.0);
  sim.start_flow({r}, 400, [&](Seconds t) { db = t; });
  sim.run();
  // A runs at its 20 cap; B gets the remaining 80 => B done at 5,
  // A done at 10.
  EXPECT_DOUBLE_EQ(db, 5.0);
  EXPECT_DOUBLE_EQ(da, 10.0);
}

TEST(FlowSimulator, DiskBetaDegradesAggregate) {
  // beta = 1: two streams => effective capacity 100/(1+1) = 50, 25 each.
  FlowSimulator sim;
  const auto r = sim.add_resource(100.0, /*beta=*/1.0);
  Seconds d1 = -1, d2 = -1;
  sim.start_flow({r}, 250, [&](Seconds t) { d1 = t; });
  sim.start_flow({r}, 250, [&](Seconds t) { d2 = t; });
  sim.run();
  EXPECT_DOUBLE_EQ(d1, 10.0);
  EXPECT_DOUBLE_EQ(d2, 10.0);
}

TEST(FlowSimulator, TimersFireInOrder) {
  FlowSimulator sim;
  std::vector<int> order;
  sim.at(2.0, [&](Seconds) { order.push_back(2); });
  sim.at(1.0, [&](Seconds) { order.push_back(1); });
  sim.after(3.0, [&](Seconds) { order.push_back(3); });
  EXPECT_DOUBLE_EQ(sim.run(), 3.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(FlowSimulator, TimerTieBreaksBySchedulingOrder) {
  FlowSimulator sim;
  std::vector<int> order;
  sim.at(1.0, [&](Seconds) { order.push_back(1); });
  sim.at(1.0, [&](Seconds) { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(FlowSimulator, TimerCanStartFlow) {
  FlowSimulator sim;
  const auto r = sim.add_resource(10.0);
  Seconds done = -1;
  sim.after(1.5, [&](Seconds) {
    sim.start_flow({r}, 10, [&](Seconds t) { done = t; });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(done, 2.5);
}

TEST(FlowSimulator, CompletionCallbackCanChainFlows) {
  FlowSimulator sim;
  const auto r = sim.add_resource(10.0);
  Seconds done = -1;
  sim.start_flow({r}, 10, [&](Seconds) {
    sim.start_flow({r}, 20, [&](Seconds t) { done = t; });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(done, 3.0);
}

TEST(FlowSimulator, ZeroByteFlowCompletesImmediately) {
  FlowSimulator sim;
  const auto r = sim.add_resource(10.0);
  Seconds done = -1;
  sim.start_flow({r}, 0, [&](Seconds t) { done = t; });
  sim.run();
  EXPECT_DOUBLE_EQ(done, 0.0);
}

TEST(FlowSimulator, LargeTransferTerminates) {
  // Regression: FP residue on multi-MB transfers must not livelock the
  // event loop (bytes_left asymptotically approaching zero).
  FlowSimulator sim;
  const auto r = sim.add_resource(75.0 * 1024 * 1024, 0.25);
  int completed = 0;
  for (int i = 0; i < 8; ++i)
    sim.start_flow({r}, 64 * kMiB, [&](Seconds) { ++completed; });
  sim.run();
  EXPECT_EQ(completed, 8);
}

TEST(FlowSimulator, ResourceLoadTracksActiveFlows) {
  FlowSimulator sim;
  const auto r = sim.add_resource(100.0);
  EXPECT_EQ(sim.resource_load(r), 0u);
  sim.start_flow({r}, 100, nullptr);
  EXPECT_EQ(sim.resource_load(r), 1u);
  sim.run();
  EXPECT_EQ(sim.resource_load(r), 0u);
}

TEST(FlowSimulator, RunIsIdempotentWhenIdle) {
  FlowSimulator sim;
  EXPECT_DOUBLE_EQ(sim.run(), 0.0);
  EXPECT_DOUBLE_EQ(sim.run(), 0.0);
}

TEST(FlowSimulator, ValidationErrors) {
  FlowSimulator sim;
  const auto r = sim.add_resource(100.0);
  EXPECT_THROW(sim.add_resource(0.0), std::invalid_argument);
  EXPECT_THROW(sim.add_resource(10.0, -1.0), std::invalid_argument);
  EXPECT_THROW(sim.start_flow({}, 10, nullptr), std::invalid_argument);
  EXPECT_THROW(sim.start_flow({r + 1}, 10, nullptr), std::invalid_argument);
  EXPECT_THROW(sim.start_flow({r}, 10, nullptr, -1.0), std::invalid_argument);
  EXPECT_THROW(sim.at(-5.0, nullptr), std::invalid_argument);
  EXPECT_THROW(sim.resource_load(r + 1), std::invalid_argument);
}

TEST(FlowSimulator, ConservationOfWork) {
  // Property: total bytes delivered per unit time never exceeds resource
  // capacity — checked via completion times on a saturated resource.
  FlowSimulator sim;
  const auto r = sim.add_resource(50.0);
  double last = 0;
  int n = 10;
  for (int i = 0; i < n; ++i)
    sim.start_flow({r}, 100, [&](Seconds t) { last = std::max(last, t); });
  sim.run();
  // 1000 bytes through 50 B/s: exactly 20 s regardless of sharing pattern.
  EXPECT_DOUBLE_EQ(last, 20.0);
}

}  // namespace
}  // namespace opass::sim
