// Heartbeat-driven failure detection and automatic re-replication.
#include <gtest/gtest.h>

#include "sim/heartbeat.hpp"
#include "workload/dataset.hpp"

namespace opass::sim {
namespace {

struct HeartbeatFixture : ::testing::Test {
  static constexpr std::uint32_t kNodes = 8;
  HeartbeatFixture()
      : nn(dfs::Topology::single_rack(kNodes), 3, kDefaultChunkSize),
        cluster(kNodes),
        rng(3) {
    dfs::RandomPlacement policy;
    workload::make_single_data_workload(nn, 32, policy, rng);
  }
  dfs::NameNode nn;
  Cluster cluster;
  Rng rng;
};

TEST_F(HeartbeatFixture, NoFailureNoDeclarations) {
  HeartbeatMonitor monitor(cluster, nn, /*namenode_host=*/0, rng);
  monitor.start(/*horizon=*/60.0);
  cluster.run();
  EXPECT_EQ(monitor.recoveries(), 0u);
  for (dfs::NodeId n = 0; n < kNodes; ++n) EXPECT_FALSE(monitor.declared_dead(n));
}

TEST_F(HeartbeatFixture, CrashDetectedWithinMissWindow) {
  HeartbeatMonitor::Params p;
  p.interval = 2.0;
  p.miss_threshold = 3;
  HeartbeatMonitor monitor(cluster, nn, 0, rng, p);
  monitor.start(100.0);
  cluster.fail_node(5, 10.0);
  cluster.run();

  ASSERT_TRUE(monitor.declared_dead(5));
  EXPECT_EQ(monitor.recoveries(), 1u);
  // Detection after the miss window but without unbounded lag.
  EXPECT_GE(monitor.detection_time(5), 10.0 + p.interval * p.miss_threshold);
  EXPECT_LE(monitor.detection_time(5), 10.0 + p.interval * (p.miss_threshold + 3));
  // Healthy nodes never declared.
  for (dfs::NodeId n = 0; n < kNodes; ++n) {
    if (n != 5) {
      EXPECT_FALSE(monitor.declared_dead(n));
    }
  }
}

TEST_F(HeartbeatFixture, RecoveryRestoresReplication) {
  HeartbeatMonitor monitor(cluster, nn, 0, rng);
  monitor.start(120.0);
  cluster.fail_node(3, 5.0);
  cluster.run();

  ASSERT_TRUE(monitor.declared_dead(3));
  EXPECT_TRUE(nn.is_decommissioned(3));
  nn.check_invariants();
  for (dfs::ChunkId c = 0; c < nn.chunk_count(); ++c) {
    EXPECT_EQ(nn.locations(c).size(), 3u);
    EXPECT_FALSE(nn.chunk(c).has_replica_on(3));
  }
}

TEST_F(HeartbeatFixture, TwoFailuresBothRecovered) {
  HeartbeatMonitor monitor(cluster, nn, 0, rng);
  monitor.start(200.0);
  cluster.fail_node(2, 5.0);
  cluster.fail_node(6, 40.0);
  cluster.run();
  EXPECT_EQ(monitor.recoveries(), 2u);
  EXPECT_TRUE(monitor.declared_dead(2));
  EXPECT_TRUE(monitor.declared_dead(6));
  EXPECT_LT(monitor.detection_time(2), monitor.detection_time(6));
  nn.check_invariants();
}

TEST_F(HeartbeatFixture, SimulationQuiescesAtHorizon) {
  HeartbeatMonitor monitor(cluster, nn, 0, rng);
  monitor.start(30.0);
  const Seconds end = cluster.run();
  EXPECT_LE(end, 31.0);  // last beat/check at the horizon, plus wire time
}

TEST_F(HeartbeatFixture, Validation) {
  EXPECT_THROW(HeartbeatMonitor(cluster, nn, 99, rng), std::invalid_argument);
  HeartbeatMonitor::Params bad;
  bad.interval = 0;
  EXPECT_THROW(HeartbeatMonitor(cluster, nn, 0, rng, bad), std::invalid_argument);
  HeartbeatMonitor m(cluster, nn, 0, rng);
  EXPECT_THROW(m.start(-1.0), std::invalid_argument);
  EXPECT_THROW(m.declared_dead(99), std::invalid_argument);
}

}  // namespace
}  // namespace opass::sim
