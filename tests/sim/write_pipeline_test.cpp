// HDFS replication write pipeline.
#include <gtest/gtest.h>

#include "sim/cluster.hpp"

namespace opass::sim {
namespace {

ClusterParams wp_params() {
  ClusterParams p;
  p.disk_bandwidth = 50.0;
  p.nic_bandwidth = 100.0;
  p.disk_beta = 0.0;
  p.seek_latency = 1.0;
  p.remote_latency = 0.5;
  p.remote_stream_cap = 0.0;
  return p;
}

TEST(WritePipeline, SingleLocalReplicaIsDiskBound) {
  Cluster c(3, wp_params());
  Seconds done = -1;
  c.write_pipeline(0, {0}, 100, [&](Seconds t) { done = t; });
  c.run();
  // 1 s seek, no network hop, 100 B at 50 B/s disk.
  EXPECT_DOUBLE_EQ(done, 3.0);
}

TEST(WritePipeline, ThreeWayChainBottleneckedBySlowestLink) {
  Cluster c(4, wp_params());
  Seconds done = -1;
  // writer 0 -> replicas {0, 1, 2}: first replica local, two network hops.
  c.write_pipeline(0, {0, 1, 2}, 100, [&](Seconds t) { done = t; });
  c.run();
  // latency = 1 + 2*0.5 = 2 s; rate = min(disk 50, nics 100) = 50.
  EXPECT_DOUBLE_EQ(done, 4.0);
}

TEST(WritePipeline, RemoteFirstReplicaAddsHop) {
  Cluster c(4, wp_params());
  Seconds done = -1;
  c.write_pipeline(0, {1, 2, 3}, 100, [&](Seconds t) { done = t; });
  c.run();
  // 3 network hops: 1 + 3*0.5 = 2.5 s latency + 2 s stream.
  EXPECT_DOUBLE_EQ(done, 4.5);
}

TEST(WritePipeline, ConcurrentWritesShareDisks) {
  Cluster c(3, wp_params());
  Seconds d1 = -1, d2 = -1;
  c.write_pipeline(0, {1}, 100, [&](Seconds t) { d1 = t; });
  c.write_pipeline(2, {1}, 100, [&](Seconds t) { d2 = t; });
  c.run();
  // Both streams share replica 1's disk (50 B/s): 25 B/s each.
  EXPECT_DOUBLE_EQ(d1, 5.5);  // 1.5 s latency + 4 s
  EXPECT_DOUBLE_EQ(d2, 5.5);
}

TEST(WritePipeline, Validation) {
  Cluster c(2, wp_params());
  EXPECT_THROW(c.write_pipeline(5, {0}, 1, nullptr), std::invalid_argument);
  EXPECT_THROW(c.write_pipeline(0, {}, 1, nullptr), std::invalid_argument);
  EXPECT_THROW(c.write_pipeline(0, {9}, 1, nullptr), std::invalid_argument);
  c.fail_node(1, 0.0);
  c.run();
  EXPECT_THROW(c.write_pipeline(0, {1}, 1, nullptr), std::invalid_argument);
}

TEST(WritePipeline, IngestThenReadRoundTrip) {
  // Write a chunk through the pipeline, then read it back from a replica:
  // the two phases simply sequence on the virtual clock.
  Cluster c(3, wp_params());
  Seconds write_done = -1, read_done = -1;
  c.write_pipeline(0, {0, 1, 2}, 100, [&](Seconds t) {
    write_done = t;
    c.read(2, 2, 100, [&](Seconds t2) { read_done = t2; });
  });
  c.run();
  EXPECT_GT(write_done, 0.0);
  EXPECT_DOUBLE_EQ(read_done, write_done + 3.0);  // 1 s seek + local 2 s
}

}  // namespace
}  // namespace opass::sim
