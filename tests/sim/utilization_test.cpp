// Resource utilization accounting (busy time, throughput).
#include <gtest/gtest.h>

#include "sim/cluster.hpp"
#include "sim/flow_sim.hpp"

namespace opass::sim {
namespace {

TEST(Utilization, BusyTimeCoversActivePeriodsOnly) {
  FlowSimulator sim;
  const auto r = sim.add_resource(100.0);
  // Flow from t=2 to t=4 (200 bytes at 100 B/s).
  sim.after(2.0, [&](Seconds) { sim.start_flow({r}, 200, nullptr); });
  // A trailing timer extends the run to t=10.
  sim.at(10.0, [](Seconds) {});
  sim.run();
  EXPECT_DOUBLE_EQ(sim.resource_busy_time(r), 2.0);
  EXPECT_DOUBLE_EQ(sim.resource_utilization(r), 0.2);
}

TEST(Utilization, OverlappingFlowsCountOnce) {
  FlowSimulator sim;
  const auto r = sim.add_resource(100.0);
  sim.start_flow({r}, 100, nullptr);
  sim.start_flow({r}, 100, nullptr);
  sim.run();  // both at 50 B/s, done at t = 2
  EXPECT_DOUBLE_EQ(sim.resource_busy_time(r), 2.0);
  EXPECT_DOUBLE_EQ(sim.resource_utilization(r), 1.0);
}

TEST(Utilization, BytesServedAccumulate) {
  FlowSimulator sim;
  const auto r = sim.add_resource(100.0);
  sim.start_flow({r}, 300, nullptr);
  sim.start_flow({r}, 200, nullptr);
  sim.run();
  EXPECT_NEAR(sim.resource_bytes_served(r), 500.0, 1e-6);
}

TEST(Utilization, ZeroWhenIdle) {
  FlowSimulator sim;
  const auto r = sim.add_resource(100.0);
  EXPECT_DOUBLE_EQ(sim.resource_busy_time(r), 0.0);
  EXPECT_DOUBLE_EQ(sim.resource_utilization(r), 0.0);
  EXPECT_DOUBLE_EQ(sim.resource_bytes_served(r), 0.0);
}

TEST(Utilization, ClusterDiskAndNicProbes) {
  ClusterParams p;
  p.disk_bandwidth = 100.0;
  p.nic_bandwidth = 100.0;
  p.disk_beta = 0.0;
  p.seek_latency = 0.0;
  p.remote_latency = 0.0;
  p.remote_stream_cap = 0.0;
  Cluster c(2, p);
  // Remote read: server 1's disk and NIC-out both busy for the transfer.
  c.read(0, 1, 100, nullptr);
  c.run();
  EXPECT_GT(c.disk_utilization(1), 0.9);
  EXPECT_GT(c.nic_out_utilization(1), 0.9);
  EXPECT_DOUBLE_EQ(c.disk_utilization(0), 0.0);
  EXPECT_DOUBLE_EQ(c.nic_out_utilization(0), 0.0);
}

TEST(Utilization, OutOfRangeThrows) {
  FlowSimulator sim;
  EXPECT_THROW(sim.resource_busy_time(0), std::invalid_argument);
  EXPECT_THROW(sim.resource_utilization(0), std::invalid_argument);
  EXPECT_THROW(sim.resource_bytes_served(0), std::invalid_argument);
  Cluster c(1);
  EXPECT_THROW(c.disk_utilization(5), std::invalid_argument);
  EXPECT_THROW(c.nic_out_utilization(5), std::invalid_argument);
}

}  // namespace
}  // namespace opass::sim
