// Scripted fault/churn plans: the JSON parser's field-naming errors, the
// injector's deterministic recovery drives, and the heartbeat-boundary
// timing edge cases (DESIGN.md §11).
#include "sim/fault_plan.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "workload/dataset.hpp"

namespace opass::sim {
namespace {

// ---------------------------------------------------------------- parsing

std::string parse_error(const std::string& text) {
  try {
    parse_fault_plan(text);
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return {};
}

bool mentions(const std::string& msg, const std::string& needle) {
  return msg.find(needle) != std::string::npos;
}

TEST(FaultPlanParse, FullPlanRoundTrips) {
  const auto plan = parse_fault_plan(
      R"({"horizon": 90.0, "max_concurrent_copies": 2, "events": [
           {"at": 3.0,  "kind": "crash", "node": 17},
           {"at": 5.0,  "kind": "slow", "node": 4, "factor": 0.25},
           {"at": 40.0, "kind": "restore", "node": 4},
           {"at": 10.0, "kind": "join", "rack": 1},
           {"at": 12.0, "kind": "rebalance", "tolerance": 2},
           {"at": 20.0, "kind": "decommission", "node": 9}]})");
  EXPECT_DOUBLE_EQ(plan.horizon, 90.0);
  EXPECT_EQ(plan.max_concurrent_copies, 2u);
  ASSERT_EQ(plan.events.size(), 6u);
  EXPECT_EQ(plan.events[0].kind, FaultKind::kCrash);
  EXPECT_EQ(plan.events[0].node, 17u);
  EXPECT_EQ(plan.events[1].kind, FaultKind::kSlow);
  EXPECT_DOUBLE_EQ(plan.events[1].factor, 0.25);
  EXPECT_EQ(plan.events[3].kind, FaultKind::kJoin);
  EXPECT_EQ(plan.events[3].rack, 1u);
  EXPECT_EQ(plan.events[4].kind, FaultKind::kRebalance);
  EXPECT_EQ(plan.events[4].tolerance, 2u);
  EXPECT_EQ(plan.events[5].kind, FaultKind::kDecommission);
}

TEST(FaultPlanParse, KindNamesRoundTrip) {
  for (const FaultKind k :
       {FaultKind::kCrash, FaultKind::kSlow, FaultKind::kRestore, FaultKind::kJoin,
        FaultKind::kDecommission, FaultKind::kRebalance}) {
    EXPECT_EQ(parse_fault_kind(fault_kind_name(k)), k);
  }
}

TEST(FaultPlanParse, UnknownKindNamesTheStringAndTheAcceptedSet) {
  try {
    parse_fault_kind("melt");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_TRUE(mentions(e.what(), "unknown fault kind \"melt\""));
    EXPECT_TRUE(mentions(e.what(),
                         "(crash | slow | restore | join | decommission | rebalance)"));
  }
}

// Satellite fix: every malformed-plan error must name the offending field
// (mirroring core::parse_planner_kind's unknown-name contract).
TEST(FaultPlanParse, ErrorsNameTheOffendingField) {
  EXPECT_TRUE(mentions(parse_error(R"([1, 2])"),
                       "expected a top-level JSON object"));
  EXPECT_TRUE(mentions(parse_error(R"({"bogus": 1})"),
                       "unknown field \"bogus\" (horizon | max_concurrent_copies | events)"));
  EXPECT_TRUE(mentions(parse_error(R"({"horizon": -5})"),
                       "field \"horizon\" must be positive"));
  EXPECT_TRUE(mentions(parse_error(R"({"max_concurrent_copies": 0})"),
                       "field \"max_concurrent_copies\" must be >= 1"));
  EXPECT_TRUE(mentions(parse_error(R"({"events": [{"kind": "crash", "node": 1}]})"),
                       "fault plan event 0: missing field \"at\""));
  EXPECT_TRUE(mentions(parse_error(R"({"events": [{"at": 1.0, "node": 1}]})"),
                       "fault plan event 0: missing field \"kind\""));
  EXPECT_TRUE(mentions(parse_error(R"({"events": [{"at": 1.0, "kind": "melt"}]})"),
                       "fault plan event 0: unknown kind \"melt\""));
  EXPECT_TRUE(
      mentions(parse_error(R"({"events": [{"at": 1.0, "kind": "crash", "frob": 2}]})"),
               "unknown field \"frob\" (at | kind | node | factor | rack | tolerance)"));
  EXPECT_TRUE(mentions(parse_error(R"({"events":[{"at":-1.0,"kind":"crash","node":1}]})"),
                       "field \"at\" must be >= 0"));
  EXPECT_TRUE(mentions(parse_error(R"({"events": [{"at": 1.0, "kind": "crash"}]})"),
                       "missing field \"node\" (required for kind \"crash\")"));
  EXPECT_TRUE(mentions(parse_error(R"({"events": [{"at": 1.0, "kind": "slow", "node": 1}]})"),
                       "missing field \"factor\" (required for kind \"slow\")"));
  EXPECT_TRUE(mentions(
      parse_error(R"({"events": [{"at": 1.0, "kind": "slow", "node": 1, "factor": 1.5}]})"),
      "field \"factor\" must be in (0, 1]"));
  EXPECT_TRUE(mentions(
      parse_error(R"({"horizon":10.0,"events":[{"at":50.0,"kind":"crash","node":1}]})"),
      "lies beyond the horizon"));
  EXPECT_TRUE(mentions(parse_error("{} trailing"),
                       "trailing characters after the top-level object"));
}

TEST(FaultPlanParse, MissingFileNamesThePath) {
  try {
    load_fault_plan("/nonexistent/plan.json");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_TRUE(mentions(e.what(), "cannot read fault plan file: /nonexistent/plan.json"));
  }
}

// --------------------------------------------------------------- injector

FaultEvent make_event(Seconds at, FaultKind kind, dfs::NodeId node) {
  FaultEvent ev;
  ev.at = at;
  ev.kind = kind;
  ev.node = node;
  return ev;
}

/// Probe that flattens the fault lifecycle into a comparable trace.
struct RecordingProbe final : FaultProbe {
  std::vector<std::string> lines;

  void on_fault(Seconds now, const FaultEvent& event) override {
    lines.push_back("fault " + std::string(fault_kind_name(event.kind)) + " @" +
                    std::to_string(now));
  }
  void on_detection(Seconds now, dfs::NodeId node) override {
    lines.push_back("detect " + std::to_string(node) + " @" + std::to_string(now));
  }
  void on_copy(Seconds now, dfs::ChunkId chunk, dfs::NodeId src, dfs::NodeId dst,
               Bytes /*bytes*/) override {
    lines.push_back("copy " + std::to_string(chunk) + " " + std::to_string(src) + "->" +
                    std::to_string(dst) + " @" + std::to_string(now));
  }
  void on_recovery_complete(Seconds now, dfs::NodeId node) override {
    lines.push_back("done " + std::to_string(node) + " @" + std::to_string(now));
  }
};

struct InjectorFixture : ::testing::Test {
  static constexpr std::uint32_t kNodes = 8;

  void build(std::uint32_t replication, std::uint32_t chunks) {
    nn = std::make_unique<dfs::NameNode>(dfs::Topology::single_rack(kNodes), replication,
                                         kDefaultChunkSize);
    cluster = std::make_unique<Cluster>(kNodes);
    rng = std::make_unique<Rng>(3);
    dfs::RandomPlacement policy;
    workload::make_single_data_workload(*nn, chunks, policy, *rng);
  }

  /// Arm `plan` and run the (otherwise idle) cluster to completion.
  FaultStats run_plan(const FaultPlan& plan, FaultProbe* probe = nullptr) {
    HeartbeatMonitor monitor(*cluster, *nn, /*namenode_host=*/0, *rng);
    FaultInjector injector(*cluster, *nn, monitor, plan);
    if (probe != nullptr) injector.set_probe(probe);
    injector.arm();
    monitor.start(plan.horizon);
    cluster->run();
    return injector.stats();
  }

  std::unique_ptr<dfs::NameNode> nn;
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<Rng> rng;
};

TEST_F(InjectorFixture, CrashReReplicatesEveryLostChunk) {
  build(/*replication=*/3, /*chunks=*/32);
  const auto lost = nn->chunks_on_node(5);
  ASSERT_FALSE(lost.empty());
  Bytes lost_bytes = 0;
  for (const dfs::ChunkId c : lost) lost_bytes += nn->chunk(c).size;

  FaultPlan plan;
  plan.horizon = 120.0;
  plan.events.push_back(make_event(1.0, FaultKind::kCrash, 5));
  const auto stats = run_plan(plan);

  EXPECT_EQ(stats.crashes, 1u);
  EXPECT_EQ(stats.recoveries, 1u);
  EXPECT_EQ(stats.lost_chunks, 0u);
  EXPECT_EQ(stats.replicas_copied, lost.size());
  EXPECT_EQ(stats.rereplicated_bytes, lost_bytes);
  // Full replication restored, nothing left on the dead node.
  EXPECT_TRUE(nn->chunks_on_node(5).empty());
  nn->check_invariants();
}

TEST_F(InjectorFixture, CrashAtReplicationOneLosesChunks) {
  build(/*replication=*/1, /*chunks=*/32);
  const auto lost = nn->chunks_on_node(5);
  ASSERT_FALSE(lost.empty());

  FaultPlan plan;
  plan.events.push_back(make_event(1.0, FaultKind::kCrash, 5));
  const auto stats = run_plan(plan);

  EXPECT_EQ(stats.lost_chunks, lost.size());
  EXPECT_EQ(stats.replicas_copied, 0u);
  EXPECT_EQ(stats.recoveries, 1u);  // the (empty) drive still completes
}

TEST_F(InjectorFixture, DrainIsSafeAtReplicationOne) {
  build(/*replication=*/1, /*chunks=*/32);
  const auto held = nn->chunks_on_node(2);
  ASSERT_FALSE(held.empty());

  FaultPlan plan;
  plan.events.push_back(make_event(1.0, FaultKind::kDecommission, 2));
  const auto stats = run_plan(plan);

  EXPECT_EQ(stats.decommissions, 1u);
  EXPECT_EQ(stats.lost_chunks, 0u);
  EXPECT_EQ(stats.replicas_copied, held.size());
  EXPECT_TRUE(nn->chunks_on_node(2).empty());
  // Every chunk still has exactly one replica, elsewhere.
  for (dfs::ChunkId c = 0; c < nn->chunk_count(); ++c)
    EXPECT_EQ(nn->chunk(c).replicas.size(), 1u);
}

TEST_F(InjectorFixture, RebalanceLevelsWithinTolerance) {
  build(/*replication=*/2, /*chunks=*/48);
  FaultPlan plan;
  auto ev = make_event(1.0, FaultKind::kRebalance, dfs::kInvalidNode);
  ev.tolerance = 1;
  plan.events.push_back(ev);
  const auto stats = run_plan(plan);

  EXPECT_EQ(stats.rebalances, 1u);
  std::size_t lo = SIZE_MAX, hi = 0;
  for (dfs::NodeId n = 0; n < kNodes; ++n) {
    const auto held = nn->chunks_on_node(n).size();
    lo = std::min(lo, held);
    hi = std::max(hi, held);
  }
  EXPECT_LE(hi - lo, 1u);
  nn->check_invariants();
}

TEST_F(InjectorFixture, JoinedNodeAbsorbsRebalancedReplicas) {
  build(/*replication=*/2, /*chunks=*/48);
  FaultPlan plan;
  plan.events.push_back(make_event(1.0, FaultKind::kJoin, dfs::kInvalidNode));
  auto ev = make_event(2.0, FaultKind::kRebalance, dfs::kInvalidNode);
  ev.tolerance = 1;
  plan.events.push_back(ev);
  const auto stats = run_plan(plan);

  EXPECT_EQ(stats.joins, 1u);
  EXPECT_EQ(stats.rebalances, 1u);
  // The empty joiner (node 8) caught up to within the tolerance.
  EXPECT_FALSE(nn->chunks_on_node(kNodes).empty());
}

// DESIGN.md §11 determinism rule: recovery draws no RNG, so two identical
// runs produce the same stats and the same event-by-event lifecycle.
TEST_F(InjectorFixture, CrashRecoveryReplaysIdentically) {
  FaultPlan plan;
  plan.events.push_back(make_event(1.0, FaultKind::kCrash, 5));

  build(3, 32);
  RecordingProbe first;
  const auto stats1 = run_plan(plan, &first);

  build(3, 32);
  RecordingProbe second;
  const auto stats2 = run_plan(plan, &second);

  EXPECT_EQ(stats1.replicas_copied, stats2.replicas_copied);
  EXPECT_EQ(stats1.rereplicated_bytes, stats2.rereplicated_bytes);
  EXPECT_EQ(stats1.recoveries, stats2.recoveries);
  EXPECT_EQ(first.lines, second.lines);
  ASSERT_FALSE(first.lines.empty());
}

// ------------------------------------------------- heartbeat edge timing

TEST_F(InjectorFixture, CrashExactlyOnBeatBoundaryStillSendsThatBeat) {
  build(3, 32);
  HeartbeatParams p;
  p.interval = 2.0;
  p.miss_threshold = 3;
  HeartbeatMonitor monitor(*cluster, *nn, 0, *rng, p);
  FaultPlan plan;
  plan.horizon = 60.0;
  // t=4.0 is a beat boundary: the node emits that beat, then dies.
  plan.events.push_back(make_event(4.0, FaultKind::kCrash, 5));
  FaultInjector injector(*cluster, *nn, monitor, plan);
  injector.arm();
  monitor.start(plan.horizon);
  cluster->run();

  ASSERT_TRUE(monitor.declared_dead(5));
  // The boundary beat resets the window, so detection measures from the
  // crash time, never earlier than the full miss window after it.
  EXPECT_GT(monitor.detection_time(5), 4.0 + p.interval * p.miss_threshold);
  EXPECT_LE(monitor.detection_time(5), 4.0 + p.interval * (p.miss_threshold + 3));
}

TEST_F(InjectorFixture, SlowNodeKeepsBeatingAndIsNeverDeclared) {
  build(3, 32);
  HeartbeatMonitor monitor(*cluster, *nn, 0, *rng);
  FaultPlan plan;
  plan.horizon = 60.0;
  auto ev = make_event(2.0, FaultKind::kSlow, 5);
  ev.factor = 0.05;  // deep straggler, but alive: beats still flow
  plan.events.push_back(ev);
  FaultInjector injector(*cluster, *nn, monitor, plan);
  injector.arm();
  monitor.start(plan.horizon);
  cluster->run();

  EXPECT_FALSE(monitor.declared_dead(5));
  EXPECT_EQ(injector.stats().slowdowns, 1u);
  EXPECT_EQ(injector.stats().replicas_copied, 0u);
}

}  // namespace
}  // namespace opass::sim
