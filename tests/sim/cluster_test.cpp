#include "sim/cluster.hpp"

#include <gtest/gtest.h>

namespace opass::sim {
namespace {

ClusterParams simple_params() {
  ClusterParams p;
  p.disk_bandwidth = 100.0;  // bytes/s, human-scale for exact arithmetic
  p.nic_bandwidth = 50.0;
  p.disk_beta = 0.0;
  p.seek_latency = 1.0;
  p.remote_latency = 0.5;
  p.remote_stream_cap = 0.0;  // uncapped for exact expectations
  return p;
}

TEST(Cluster, LocalReadUsesDiskOnly) {
  Cluster c(2, simple_params());
  Seconds done = -1;
  c.read(0, 0, 200, [&](Seconds t) { done = t; });
  c.run();
  // 1 s seek + 200/100 transfer.
  EXPECT_DOUBLE_EQ(done, 3.0);
}

TEST(Cluster, RemoteReadBottleneckedByNic) {
  Cluster c(2, simple_params());
  Seconds done = -1;
  c.read(0, 1, 200, [&](Seconds t) { done = t; });
  c.run();
  // 1.5 s latency + 200/50 (NIC is tighter than disk).
  EXPECT_DOUBLE_EQ(done, 5.5);
}

TEST(Cluster, RemoteStreamCapApplies) {
  auto p = simple_params();
  p.remote_stream_cap = 10.0;
  Cluster c(2, p);
  Seconds done = -1;
  c.read(0, 1, 100, [&](Seconds t) { done = t; });
  c.run();
  EXPECT_DOUBLE_EQ(done, 11.5);  // 1.5 + 100/10
}

TEST(Cluster, LocalReadIgnoresStreamCap) {
  auto p = simple_params();
  p.remote_stream_cap = 10.0;
  Cluster c(2, p);
  Seconds done = -1;
  c.read(1, 1, 100, [&](Seconds t) { done = t; });
  c.run();
  EXPECT_DOUBLE_EQ(done, 2.0);  // 1 + 100/100
}

TEST(Cluster, ConcurrentReadsShareServerDisk) {
  Cluster c(3, simple_params());
  Seconds d1 = -1, d2 = -1;
  // Two local readers on node 0's disk.
  c.read(0, 0, 100, [&](Seconds t) { d1 = t; });
  c.read(0, 0, 100, [&](Seconds t) { d2 = t; });
  c.run();
  EXPECT_DOUBLE_EQ(d1, 3.0);  // 1 s seek + 100 B at 50 each
  EXPECT_DOUBLE_EQ(d2, 3.0);
}

TEST(Cluster, RemoteReadsFromDistinctServersDontContend) {
  Cluster c(3, simple_params());
  Seconds d1 = -1, d2 = -1;
  c.read(0, 1, 100, [&](Seconds t) { d1 = t; });
  // Reader 2 pulls from server 0: separate NICs and disks throughout.
  c.read(2, 0, 100, [&](Seconds t) { d2 = t; });
  c.run();
  EXPECT_DOUBLE_EQ(d1, 3.5);
  EXPECT_DOUBLE_EQ(d2, 3.5);
}

TEST(Cluster, ServedBytesAccumulatePerServer) {
  Cluster c(2, simple_params());
  c.read(0, 1, 200, nullptr);
  c.read(1, 1, 100, nullptr);
  c.run();
  EXPECT_EQ(c.served_bytes()[0], 0u);
  EXPECT_EQ(c.served_bytes()[1], 300u);
}

TEST(Cluster, InflightCountsDuringRun) {
  Cluster c(2, simple_params());
  std::uint32_t observed = 99;
  c.read(0, 1, 200, nullptr);
  // Sample the in-flight count mid-transfer via a timer.
  c.simulator().at(2.0, [&](Seconds) { observed = c.inflight_per_node()[1]; });
  c.run();
  EXPECT_EQ(observed, 1u);
  EXPECT_EQ(c.inflight_per_node()[1], 0u);
}

TEST(Cluster, DefaultCalibrationLocalRead) {
  // The headline calibration: an uncontended 64 MiB local read lands near
  // the paper's ~0.9 s.
  Cluster c(2);
  Seconds done = -1;
  c.read(0, 0, 64 * kMiB, [&](Seconds t) { done = t; });
  c.run();
  EXPECT_NEAR(done, 0.9, 0.05);
}

TEST(Cluster, DefaultCalibrationRemoteRead) {
  // An uncontended remote read takes "more than 2 seconds" (paper V-C2).
  Cluster c(2);
  Seconds done = -1;
  c.read(0, 1, 64 * kMiB, [&](Seconds t) { done = t; });
  c.run();
  EXPECT_GT(done, 2.0);
  EXPECT_LT(done, 3.0);
}

TEST(Cluster, ContendedServerSlowsAllReaders) {
  // Six remote readers on one server: each read should take several times
  // the uncontended remote time (the Fig. 1(b) spread).
  Cluster c(8);
  std::vector<Seconds> done(6, 0);
  for (int i = 0; i < 6; ++i)
    c.read(static_cast<dfs::NodeId>(i + 1), 0, 64 * kMiB,
           [&, i](Seconds t) { done[static_cast<std::size_t>(i)] = t; });
  c.run();
  for (Seconds t : done) {
    EXPECT_GT(t, 6.0);
    EXPECT_LT(t, 20.0);
  }
}

TEST(Cluster, ValidationErrors) {
  EXPECT_THROW(Cluster(0), std::invalid_argument);
  Cluster c(2, simple_params());
  EXPECT_THROW(c.read(5, 0, 10, nullptr), std::invalid_argument);
  EXPECT_THROW(c.read(0, 5, 10, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace opass::sim
