// DataNode admission control (xceiver limit) with FIFO queueing.
#include <gtest/gtest.h>

#include "sim/cluster.hpp"

namespace opass::sim {
namespace {

ClusterParams gated_params(std::uint32_t limit) {
  ClusterParams p;
  p.disk_bandwidth = 100.0;
  p.nic_bandwidth = 1000.0;
  p.disk_beta = 0.0;
  p.seek_latency = 0.0;
  p.remote_latency = 0.0;
  p.remote_stream_cap = 0.0;
  p.max_concurrent_serves = limit;
  return p;
}

TEST(Admission, SerializesBeyondTheLimit) {
  // Limit 1: three 100-byte reads of one disk run strictly back-to-back.
  Cluster c(2, gated_params(1));
  std::vector<Seconds> done;
  for (int i = 0; i < 3; ++i)
    c.read(0, 0, 100, [&](Seconds t) { done.push_back(t); });
  c.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_DOUBLE_EQ(done[0], 1.0);
  EXPECT_DOUBLE_EQ(done[1], 2.0);
  EXPECT_DOUBLE_EQ(done[2], 3.0);
}

TEST(Admission, LimitTwoSharesThenAdmits) {
  // Limit 2, three reads: first two share the disk (2 s each), the third
  // then runs alone (1 s).
  Cluster c(2, gated_params(2));
  std::vector<Seconds> done;
  for (int i = 0; i < 3; ++i)
    c.read(0, 0, 100, [&](Seconds t) { done.push_back(t); });
  c.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_DOUBLE_EQ(done[0], 2.0);
  EXPECT_DOUBLE_EQ(done[1], 2.0);
  EXPECT_DOUBLE_EQ(done[2], 3.0);
}

TEST(Admission, ZeroMeansUnlimited) {
  Cluster c(2, gated_params(0));
  std::vector<Seconds> done;
  for (int i = 0; i < 4; ++i)
    c.read(0, 0, 100, [&](Seconds t) { done.push_back(t); });
  c.run();
  for (Seconds t : done) EXPECT_DOUBLE_EQ(t, 4.0);  // all share fairly
}

TEST(Admission, QueueIsPerServer) {
  Cluster c(3, gated_params(1));
  Seconds d0 = -1, d1 = -1;
  c.read(1, 0, 100, [&](Seconds t) { d0 = t; });
  c.read(0, 2, 100, [&](Seconds t) { d1 = t; });  // different server: no queueing
  c.run();
  EXPECT_DOUBLE_EQ(d0, 1.0);
  EXPECT_DOUBLE_EQ(d1, 1.0);
}

TEST(Admission, InflightCountsQueuedRequests) {
  Cluster c(2, gated_params(1));
  for (int i = 0; i < 3; ++i) c.read(0, 0, 1000, nullptr);
  // Before any completion, all three count as pending at the server.
  EXPECT_EQ(c.inflight_per_node()[0], 3u);
  c.run();
  EXPECT_EQ(c.inflight_per_node()[0], 0u);
}

TEST(Admission, QueuedReadsFailWhenServerDies) {
  Cluster c(2, gated_params(1));
  int completed = 0, failed = 0;
  for (int i = 0; i < 3; ++i)
    c.read(0, 0, 1000, [&](Seconds) { ++completed; }, [&](Seconds) { ++failed; });
  c.fail_node(0, 1.0);  // mid-first-read: the active one and both queued die
  c.run();
  EXPECT_EQ(completed, 0);
  EXPECT_EQ(failed, 3);
}

TEST(Admission, SlotFreedByFailureStillServesOtherTraffic) {
  // Failure of one server must not wedge another server's queue.
  Cluster c(3, gated_params(1));
  Seconds ok = -1;
  c.read(0, 1, 1000, nullptr, [](Seconds) {});
  c.fail_node(1, 0.5);
  c.read(0, 2, 100, [&](Seconds t) { ok = t; });
  c.run();
  EXPECT_GT(ok, 0.0);
}

}  // namespace
}  // namespace opass::sim
