// Edge cases for the lazily invalidated completion heap and the reusable
// flow-slot pool (DESIGN.md "Simulator scalability"). Each heap test forces a
// specific staleness pattern: a queued ETA whose flow sped up, slowed down,
// was cancelled, or never had bytes to move — and checks that completion
// times stay exact and callbacks fire exactly once.
#include "sim/flow_sim.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace opass::sim {
namespace {

TEST(FlowSimEtaHeap, RateDropDefersCompletion) {
  // A starts alone at 100 B/s (ETA queued for t=5). At t=1 a competitor
  // joins, halving A's rate; the queued ETA is stale and must not complete A
  // at t=5 (it still has 400 - 200 = 200 bytes left there).
  FlowSimulator sim;
  const auto r = sim.add_resource(100.0);
  Seconds da = -1, db = -1;
  sim.start_flow({r}, 500, [&](Seconds t) { da = t; });
  sim.after(1.0, [&](Seconds) { sim.start_flow({r}, 500, [&](Seconds t) { db = t; }); });
  sim.run();
  // A: 100 bytes in [0,1], then 50 B/s with 400 left => done at 9.
  // B: 50 B/s over [1,9] = 400 bytes, then 100 B/s with 100 left => 10.
  EXPECT_DOUBLE_EQ(da, 9.0);
  EXPECT_DOUBLE_EQ(db, 10.0);
  EXPECT_GE(sim.eta_stale_pops(), 1u);
}

TEST(FlowSimEtaHeap, RateRiseCompletesEarlierThanQueuedEta) {
  // A shares with B (ETA queued for t=10). B is cancelled at t=1, doubling
  // A's rate; A must finish at 1 + 450/100 = 5.5, not at the stale t=10.
  FlowSimulator sim;
  const auto r = sim.add_resource(100.0);
  Seconds da = -1;
  bool db_fired = false;
  sim.start_flow({r}, 500, [&](Seconds t) { da = t; });
  const FlowId b = sim.start_flow({r}, 500, [&](Seconds) { db_fired = true; });
  sim.after(1.0, [&](Seconds) { sim.cancel_flow(b); });
  sim.run();
  EXPECT_DOUBLE_EQ(da, 5.5);
  EXPECT_FALSE(db_fired);
}

TEST(FlowSimEtaHeap, CancelWhileQueuedNeverFires) {
  // Cancel a flow whose ETA is already in the heap; the entry must be
  // discarded as stale, the callback must never fire, and the resource must
  // be released immediately (the survivor speeds up).
  FlowSimulator sim;
  const auto r = sim.add_resource(100.0);
  Seconds da = -1;
  bool cancelled_fired = false;
  sim.start_flow({r}, 500, [&](Seconds t) { da = t; });
  const FlowId doomed = sim.start_flow({r}, 500, [&](Seconds) { cancelled_fired = true; });
  sim.after(2.0, [&](Seconds) {
    EXPECT_TRUE(sim.flow_active(doomed));
    sim.cancel_flow(doomed);
    EXPECT_FALSE(sim.flow_active(doomed));
    sim.cancel_flow(doomed);  // idempotent
  });
  sim.run();
  EXPECT_FALSE(cancelled_fired);
  // A: 100 bytes by t=2, then 100 B/s with 400 left => done at 6.
  EXPECT_DOUBLE_EQ(da, 6.0);
  EXPECT_EQ(sim.active_flows(), 0u);
}

TEST(FlowSimEtaHeap, ZeroByteFlowCompletesImmediately) {
  FlowSimulator sim;
  const auto r = sim.add_resource(100.0);
  Seconds done = -1;
  sim.after(3.0, [&](Seconds) {
    sim.start_flow({r}, 0, [&](Seconds t) { done = t; });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(done, 3.0);
}

TEST(FlowSimEtaHeap, ZeroByteCompletionOrderedBeforeLaterArrivals) {
  // A zero-byte flow started at t=0 completes at t=0, before any positive
  // flow; its callback may itself start flows.
  FlowSimulator sim;
  const auto r = sim.add_resource(100.0);
  std::vector<int> order;
  Seconds chained = -1;
  sim.start_flow({r}, 0, [&](Seconds t) {
    order.push_back(0);
    EXPECT_DOUBLE_EQ(t, 0.0);
    sim.start_flow({r}, 200, [&](Seconds u) { chained = u; });
  });
  sim.start_flow({r}, 100, [&](Seconds) { order.push_back(1); });
  sim.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
  // Chained (200 B) and the 100 B flow share 50/50; the short one ends at
  // t=2, the chained one at 2 + 100/100 = 3.
  EXPECT_DOUBLE_EQ(chained, 3.0);
}

TEST(FlowSimEtaHeap, SimultaneousCompletionsFireInStartOrder) {
  FlowSimulator sim;
  const auto r1 = sim.add_resource(100.0);
  const auto r2 = sim.add_resource(100.0);
  std::vector<int> order;
  sim.start_flow({r1}, 500, [&](Seconds) { order.push_back(0); });
  sim.start_flow({r2}, 500, [&](Seconds) { order.push_back(1); });
  sim.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
}

TEST(FlowSimSlotPool, SequentialFlowsReuseOneSlot) {
  // 100 flows run strictly one-after-another: the pool must never grow past
  // one slot, and peak_active_flows stays 1.
  FlowSimulator sim;
  const auto r = sim.add_resource(100.0);
  int completions = 0;
  std::function<void(Seconds)> chain = [&](Seconds) {
    if (++completions < 100) sim.start_flow({r}, 100, chain);
  };
  sim.start_flow({r}, 100, chain);
  sim.run();
  EXPECT_EQ(completions, 100);
  EXPECT_EQ(sim.flow_slot_count(), 1u);
  EXPECT_EQ(sim.peak_active_flows(), 1u);
}

TEST(FlowSimSlotPool, SlotCountBoundedByPeakConcurrency) {
  // Waves of 8 concurrent flows, 5 waves: 40 flows total, but at most 8 live
  // at once => exactly 8 slots ever allocated.
  FlowSimulator sim;
  const auto r = sim.add_resource(800.0);
  int completions = 0;
  for (int wave = 0; wave < 5; ++wave) {
    sim.after(wave * 10.0, [&](Seconds) {
      for (int i = 0; i < 8; ++i) sim.start_flow({r}, 100, [&](Seconds) { ++completions; });
    });
  }
  sim.run();
  EXPECT_EQ(completions, 40);
  EXPECT_EQ(sim.flow_slot_count(), 8u);
  EXPECT_EQ(sim.peak_active_flows(), 8u);
}

TEST(FlowSimSlotPool, StaleHandleToReusedSlotIsInert) {
  // Flow A completes and its slot is reused by flow B. A's old FlowId must
  // report inactive and cancel_flow(A) must not disturb B.
  FlowSimulator sim;
  const auto r = sim.add_resource(100.0);
  Seconds db = -1;
  const FlowId a = sim.start_flow({r}, 100, [](Seconds) {});
  sim.after(5.0, [&](Seconds) {
    EXPECT_FALSE(sim.flow_active(a));
    const FlowId b = sim.start_flow({r}, 100, [&](Seconds t) { db = t; });
    EXPECT_EQ(static_cast<std::uint32_t>(b), static_cast<std::uint32_t>(a));  // slot reused
    EXPECT_NE(b, a);                                                          // tag differs
    sim.cancel_flow(a);  // stale: must not cancel b
    EXPECT_TRUE(sim.flow_active(b));
  });
  sim.run();
  EXPECT_DOUBLE_EQ(db, 6.0);
}

TEST(FlowSimSlotPool, CancelReleasesSlotForReuse) {
  FlowSimulator sim;
  const auto r = sim.add_resource(100.0);
  const FlowId a = sim.start_flow({r}, 1e9, [](Seconds) {});
  sim.after(1.0, [&](Seconds) {
    sim.cancel_flow(a);
    sim.start_flow({r}, 100, [](Seconds) {});
  });
  sim.run();
  EXPECT_EQ(sim.flow_slot_count(), 1u);
}

TEST(FlowSimSlotPool, ObservabilityCountersAdvance) {
  FlowSimulator sim;
  const auto r = sim.add_resource(100.0);
  sim.start_flow({r}, 100, [](Seconds) {});
  sim.start_flow({r}, 100, [](Seconds) {});
  sim.run();
  EXPECT_GE(sim.rate_recomputes(), 1u);
  EXPECT_GE(sim.rate_recompute_touched_flows(), 2u);
  EXPECT_GE(sim.max_relevel_component(), 2u);
}

}  // namespace
}  // namespace opass::sim
