// Randomized property tests of the flow-level simulator.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "sim/flow_sim.hpp"

namespace opass::sim {
namespace {

/// Random resource/flow instances: capacities, betas, topologies, sizes.
struct RandomInstance {
  FlowSimulator sim;
  std::vector<ResourceId> resources;
  std::vector<double> capacities;
  std::vector<Bytes> flow_bytes;
  std::vector<std::vector<ResourceId>> flow_paths;

  explicit RandomInstance(std::uint64_t seed) {
    Rng rng(seed);
    const auto r_count = static_cast<std::uint32_t>(2 + rng.uniform(6));
    for (std::uint32_t r = 0; r < r_count; ++r) {
      const double cap = 50.0 + static_cast<double>(rng.uniform(200));
      capacities.push_back(cap);
      resources.push_back(sim.add_resource(cap, rng.uniform01() * 0.3));
    }
    const auto f_count = static_cast<std::uint32_t>(1 + rng.uniform(12));
    for (std::uint32_t f = 0; f < f_count; ++f) {
      const auto path_len = static_cast<std::uint32_t>(1 + rng.uniform(3));
      auto pick = rng.sample_without_replacement(r_count, std::min(path_len, r_count));
      std::vector<ResourceId> path;
      for (auto idx : pick) path.push_back(resources[idx]);
      flow_paths.push_back(path);
      flow_bytes.push_back(100 + rng.uniform(5000));
    }
  }
};

TEST(FlowSimProperty, EveryFlowCompletes) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    RandomInstance inst(seed);
    std::size_t completed = 0;
    for (std::size_t f = 0; f < inst.flow_bytes.size(); ++f) {
      inst.sim.start_flow(inst.flow_paths[f], inst.flow_bytes[f],
                          [&](Seconds) { ++completed; });
    }
    inst.sim.run();
    EXPECT_EQ(completed, inst.flow_bytes.size()) << "seed " << seed;
    EXPECT_EQ(inst.sim.active_flows(), 0u) << "seed " << seed;
  }
}

TEST(FlowSimProperty, MakespanRespectsCapacityLowerBound) {
  // No resource can move more than its (undegraded) capacity per second, so
  // the makespan is at least max_r (bytes through r / capacity_r).
  for (std::uint64_t seed = 100; seed < 125; ++seed) {
    RandomInstance inst(seed);
    std::vector<double> through(inst.resources.size(), 0);
    for (std::size_t f = 0; f < inst.flow_bytes.size(); ++f) {
      for (ResourceId r : inst.flow_paths[f])
        through[r] += static_cast<double>(inst.flow_bytes[f]);
      inst.sim.start_flow(inst.flow_paths[f], inst.flow_bytes[f], nullptr);
    }
    const Seconds makespan = inst.sim.run();
    double bound = 0;
    for (std::size_t r = 0; r < inst.resources.size(); ++r)
      bound = std::max(bound, through[r] / inst.capacities[r]);
    EXPECT_GE(makespan, bound * (1.0 - 1e-9)) << "seed " << seed;
  }
}

TEST(FlowSimProperty, DeliveredBytesMatchInjected) {
  for (std::uint64_t seed = 200; seed < 220; ++seed) {
    RandomInstance inst(seed);
    double injected_per_resource = 0;
    std::vector<double> expect(inst.resources.size(), 0);
    for (std::size_t f = 0; f < inst.flow_bytes.size(); ++f) {
      for (ResourceId r : inst.flow_paths[f])
        expect[r] += static_cast<double>(inst.flow_bytes[f]);
      inst.sim.start_flow(inst.flow_paths[f], inst.flow_bytes[f], nullptr);
    }
    (void)injected_per_resource;
    inst.sim.run();
    for (std::size_t r = 0; r < inst.resources.size(); ++r) {
      EXPECT_NEAR(inst.sim.resource_bytes_served(inst.resources[r]), expect[r],
                  1e-3 * std::max(1.0, expect[r]))
          << "seed " << seed << " resource " << r;
    }
  }
}

TEST(FlowSimProperty, CompletionTimesAreMonotoneUnderMoreLoad) {
  // Adding an extra competing flow can only delay (or not affect) an
  // existing flow's completion.
  for (std::uint64_t seed = 300; seed < 312; ++seed) {
    Rng rng(seed);
    const double cap = 100.0;
    const Bytes probe_bytes = 500 + rng.uniform(2000);
    const Bytes extra_bytes = 500 + rng.uniform(2000);

    Seconds alone = -1, contended = -1;
    {
      FlowSimulator sim;
      const auto r = sim.add_resource(cap);
      sim.start_flow({r}, probe_bytes, [&](Seconds t) { alone = t; });
      sim.run();
    }
    {
      FlowSimulator sim;
      const auto r = sim.add_resource(cap);
      sim.start_flow({r}, probe_bytes, [&](Seconds t) { contended = t; });
      sim.start_flow({r}, extra_bytes, nullptr);
      sim.run();
    }
    EXPECT_GE(contended, alone - 1e-9) << "seed " << seed;
  }
}

}  // namespace
}  // namespace opass::sim
