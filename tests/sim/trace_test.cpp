#include "sim/trace.hpp"

#include <gtest/gtest.h>

namespace opass::sim {
namespace {

ReadRecord rec(std::uint32_t proc, dfs::NodeId server, Bytes bytes, Seconds issue,
               Seconds end, bool local) {
  ReadRecord r;
  r.process = proc;
  r.reader_node = proc;
  r.serving_node = server;
  r.bytes = bytes;
  r.issue_time = issue;
  r.end_time = end;
  r.local = local;
  return r;
}

TEST(TraceRecorder, IoTimeIsEndMinusIssue) {
  EXPECT_DOUBLE_EQ(rec(0, 0, 10, 1.0, 3.5, true).io_time(), 2.5);
}

TEST(TraceRecorder, IoTimesOrderedByCompletion) {
  TraceRecorder t;
  t.add(rec(0, 0, 10, 0.0, 5.0, true));   // completes last
  t.add(rec(1, 1, 10, 0.0, 2.0, true));   // completes first
  t.add(rec(2, 2, 10, 1.0, 4.0, true));
  EXPECT_EQ(t.io_times(), (std::vector<double>{2.0, 3.0, 5.0}));
}

TEST(TraceRecorder, IoTimesByIssueOrder) {
  TraceRecorder t;
  t.add(rec(0, 0, 10, 2.0, 5.0, true));
  t.add(rec(1, 1, 10, 0.0, 2.0, true));
  EXPECT_EQ(t.io_times_by_issue(), (std::vector<double>{2.0, 3.0}));
}

TEST(TraceRecorder, BytesServedPerNode) {
  TraceRecorder t;
  t.add(rec(0, 1, 100, 0, 1, false));
  t.add(rec(1, 1, 50, 0, 1, false));
  t.add(rec(2, 0, 25, 0, 1, true));
  const auto served = t.bytes_served_per_node(3);
  EXPECT_EQ(served, (std::vector<Bytes>{25, 150, 0}));
}

TEST(TraceRecorder, OpsServedPerNode) {
  TraceRecorder t;
  t.add(rec(0, 1, 100, 0, 1, false));
  t.add(rec(1, 1, 50, 0, 1, false));
  const auto ops = t.ops_served_per_node(2);
  EXPECT_EQ(ops, (std::vector<std::uint32_t>{0, 2}));
}

TEST(TraceRecorder, ServedPerNodeRejectsOutOfRange) {
  TraceRecorder t;
  t.add(rec(0, 5, 100, 0, 1, false));
  EXPECT_THROW(t.bytes_served_per_node(3), std::invalid_argument);
}

TEST(TraceRecorder, LocalFraction) {
  TraceRecorder t;
  EXPECT_DOUBLE_EQ(t.local_fraction(), 0.0);
  t.add(rec(0, 0, 1, 0, 1, true));
  t.add(rec(0, 1, 1, 0, 1, false));
  t.add(rec(0, 0, 1, 0, 1, true));
  t.add(rec(0, 2, 1, 0, 1, false));
  EXPECT_DOUBLE_EQ(t.local_fraction(), 0.5);
}

TEST(TraceRecorder, Makespan) {
  TraceRecorder t;
  EXPECT_DOUBLE_EQ(t.makespan(), 0.0);
  t.add(rec(0, 0, 1, 0, 4.5, true));
  t.add(rec(0, 0, 1, 0, 2.0, true));
  EXPECT_DOUBLE_EQ(t.makespan(), 4.5);
}

TEST(TraceRecorder, ClearEmpties) {
  TraceRecorder t;
  t.add(rec(0, 0, 1, 0, 1, true));
  t.clear();
  EXPECT_EQ(t.size(), 0u);
}

}  // namespace
}  // namespace opass::sim
