// Failure injection: node crashes, flow cancellation, executor retry.
#include <gtest/gtest.h>

#include "runtime/executor.hpp"
#include "runtime/task_source.hpp"
#include "sim/cluster.hpp"
#include "workload/dataset.hpp"

namespace opass::sim {
namespace {

ClusterParams simple_params() {
  ClusterParams p;
  p.disk_bandwidth = 100.0;
  p.nic_bandwidth = 100.0;
  p.disk_beta = 0.0;
  p.seek_latency = 0.0;
  p.remote_latency = 0.0;
  p.remote_stream_cap = 0.0;
  return p;
}

TEST(FlowCancel, CancelledFlowNeverCompletes) {
  FlowSimulator sim;
  const auto r = sim.add_resource(100.0);
  bool completed = false;
  const FlowId f = sim.start_flow({r}, 1000, [&](Seconds) { completed = true; });
  sim.after(1.0, [&](Seconds) { sim.cancel_flow(f); });
  sim.run();
  EXPECT_FALSE(completed);
  EXPECT_FALSE(sim.flow_active(f));
  EXPECT_EQ(sim.resource_load(r), 0u);
}

TEST(FlowCancel, CancellationReleasesBandwidth) {
  FlowSimulator sim;
  const auto r = sim.add_resource(100.0);
  Seconds done = -1;
  const FlowId victim = sim.start_flow({r}, 1000, nullptr);
  sim.start_flow({r}, 400, [&](Seconds t) { done = t; });
  // At t=2 both have moved 100 bytes (50 B/s each); cancelling the victim
  // lets the survivor finish its remaining 300 at 100 B/s.
  sim.after(2.0, [&](Seconds) { sim.cancel_flow(victim); });
  sim.run();
  EXPECT_DOUBLE_EQ(done, 5.0);
}

TEST(FlowCancel, DoubleCancelIsNoop) {
  FlowSimulator sim;
  const auto r = sim.add_resource(100.0);
  const FlowId f = sim.start_flow({r}, 100, nullptr);
  sim.cancel_flow(f);
  sim.cancel_flow(f);
  sim.run();
  EXPECT_FALSE(sim.flow_active(f));
}

TEST(NodeFailure, InFlightReadFails) {
  Cluster c(3, simple_params());
  bool completed = false, failed = false;
  c.read(0, 1, 1000, [&](Seconds) { completed = true; },
         [&](Seconds) { failed = true; });
  c.fail_node(1, 2.0);
  c.run();
  EXPECT_FALSE(completed);
  EXPECT_TRUE(failed);
  EXPECT_TRUE(c.is_failed(1));
  EXPECT_EQ(c.inflight_per_node()[1], 0u);
}

TEST(NodeFailure, SeekPhaseReadAlsoFails) {
  auto p = simple_params();
  p.seek_latency = 5.0;  // failure lands inside the positioning phase
  Cluster c(3, p);
  bool completed = false, failed = false;
  c.read(0, 1, 10, [&](Seconds) { completed = true; }, [&](Seconds) { failed = true; });
  c.fail_node(1, 1.0);
  c.run();
  EXPECT_FALSE(completed);
  EXPECT_TRUE(failed);
}

TEST(NodeFailure, ReadToAlreadyFailedNodeFailsImmediately) {
  Cluster c(3, simple_params());
  c.fail_node(1, 0.0);
  bool failed = false;
  c.run();
  c.read(0, 1, 10, nullptr, [&](Seconds) { failed = true; });
  c.run();
  EXPECT_TRUE(failed);
}

TEST(NodeFailure, OtherServersUnaffected) {
  Cluster c(3, simple_params());
  Seconds done = -1;
  c.read(0, 2, 500, [&](Seconds t) { done = t; });
  c.fail_node(1, 1.0);
  c.run();
  EXPECT_DOUBLE_EQ(done, 5.0);
}

TEST(NodeFailure, FailingTwiceIsIdempotent) {
  Cluster c(2, simple_params());
  c.fail_node(1, 1.0);
  c.fail_node(1, 2.0);
  c.run();
  EXPECT_TRUE(c.is_failed(1));
}

TEST(ExecutorRetry, TasksCompleteDespiteServerFailure) {
  // 8 nodes, r = 3: fail one node mid-run; every task must still finish via
  // replica retry, and nothing may be served by the dead node afterwards.
  dfs::NameNode nn(dfs::Topology::single_rack(8), 3, kDefaultChunkSize);
  dfs::RandomPlacement policy;
  Rng rng(5);
  const auto tasks = workload::make_single_data_workload(nn, 64, policy, rng);

  Cluster cluster(8);
  const dfs::NodeId victim = 3;
  cluster.fail_node(victim, 2.0);
  runtime::StaticAssignmentSource source(runtime::rank_interval_assignment(64, 8));
  const auto result = runtime::execute(cluster, nn, tasks, source, rng);

  EXPECT_EQ(result.tasks_executed, 64u);
  EXPECT_EQ(result.trace.size(), 64u);
  for (const auto& r : result.trace.records()) {
    if (r.end_time > 2.0) {
      EXPECT_NE(r.serving_node, victim);
    }
  }
  EXPECT_GT(result.read_failures, 0u);  // the crash aborted something
}

TEST(ExecutorRetry, SurvivesRMinusOneFailures) {
  dfs::NameNode nn(dfs::Topology::single_rack(8), 3, kDefaultChunkSize);
  dfs::RandomPlacement policy;
  Rng rng(7);
  const auto tasks = workload::make_single_data_workload(nn, 48, policy, rng);

  Cluster cluster(8);
  cluster.fail_node(1, 1.0);
  cluster.fail_node(2, 3.0);  // two of three replicas may die
  runtime::StaticAssignmentSource source(runtime::rank_interval_assignment(48, 8));
  const auto result = runtime::execute(cluster, nn, tasks, source, rng);
  EXPECT_EQ(result.tasks_executed, 48u);
  EXPECT_EQ(result.trace.size(), 48u);
}

TEST(ExecutorRetry, AllReplicasDeadThrows) {
  dfs::NameNode nn(dfs::Topology::single_rack(3), 3, kDefaultChunkSize);
  dfs::RandomPlacement policy;
  Rng rng(9);
  const auto tasks = workload::make_single_data_workload(nn, 3, policy, rng);
  Cluster cluster(3);
  cluster.fail_node(0, 0.0);
  cluster.fail_node(1, 0.0);
  cluster.fail_node(2, 0.0);
  cluster.run();  // let the failures land before issuing
  runtime::StaticAssignmentSource source(runtime::rank_interval_assignment(3, 3));
  EXPECT_THROW(runtime::execute(cluster, nn, tasks, source, rng), std::invalid_argument);
}

TEST(NodeFailure, Validation) {
  Cluster c(2, simple_params());
  EXPECT_THROW(c.fail_node(9, 1.0), std::invalid_argument);
  EXPECT_THROW(c.is_failed(9), std::invalid_argument);
  EXPECT_THROW(c.fail_node(0, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace opass::sim
