// Multi-rack network model: per-rack uplinks, cross-rack latency.
#include <gtest/gtest.h>

#include "sim/cluster.hpp"

namespace opass::sim {
namespace {

ClusterParams racked_params() {
  ClusterParams p;
  p.disk_bandwidth = 1000.0;
  p.nic_bandwidth = 100.0;
  p.disk_beta = 0.0;
  p.seek_latency = 0.0;
  p.remote_latency = 0.0;
  p.remote_stream_cap = 0.0;
  p.rack_uplink_bandwidth = 100.0;  // same as one NIC: heavily oversubscribed
  p.cross_rack_latency = 1.0;
  return p;
}

TEST(RackNetwork, RackOfReflectsTopology) {
  const auto topo = dfs::Topology::uniform_racks(6, 3);
  Cluster c(topo, racked_params());
  for (dfs::NodeId n = 0; n < 6; ++n) EXPECT_EQ(c.rack_of(n), topo.rack_of(n));
  EXPECT_THROW(c.rack_of(9), std::invalid_argument);
}

TEST(RackNetwork, FlatClusterHasOneRack) {
  Cluster c(4);
  for (dfs::NodeId n = 0; n < 4; ++n) EXPECT_EQ(c.rack_of(n), 0u);
}

TEST(RackNetwork, SameRackReadSkipsCrossRackLatency) {
  // Round-robin racks: nodes 0 and 3 share rack 0.
  const auto topo = dfs::Topology::uniform_racks(6, 3);
  Cluster c(topo, racked_params());
  Seconds same_rack = -1;
  c.read(0, 3, 100, [&](Seconds t) { same_rack = t; });
  c.run();
  EXPECT_DOUBLE_EQ(same_rack, 1.0);  // no cross-rack latency, no uplink
}

TEST(RackNetwork, TrulyCrossRackReadAddsLatency) {
  const auto topo = dfs::Topology::uniform_racks(6, 3);
  Cluster c(topo, racked_params());
  Seconds t01 = -1;
  c.read(0, 1, 100, [&](Seconds t) { t01 = t; });  // rack 0 <- rack 1
  c.run();
  // 1 s cross-rack latency + 1 s transfer.
  EXPECT_DOUBLE_EQ(t01, 2.0);
}

TEST(RackNetwork, UplinkIsSharedAcrossCrossRackReads) {
  // Two readers on rack 0 pull from two distinct servers on rack 1: the
  // rack-1 uplink (100 B/s) is the bottleneck, halving each transfer.
  const auto topo = dfs::Topology::uniform_racks(6, 2);  // even=rack0, odd=rack1
  Cluster c(topo, racked_params());
  Seconds d1 = -1, d2 = -1;
  c.read(0, 1, 100, [&](Seconds t) { d1 = t; });
  c.read(2, 3, 100, [&](Seconds t) { d2 = t; });
  c.run();
  EXPECT_DOUBLE_EQ(d1, 3.0);  // 1 s latency + 100 B at 50 B/s
  EXPECT_DOUBLE_EQ(d2, 3.0);
}

TEST(RackNetwork, SameRackReadsBypassUplink) {
  const auto topo = dfs::Topology::uniform_racks(6, 2);
  Cluster c(topo, racked_params());
  Seconds d1 = -1, d2 = -1;
  c.read(0, 2, 100, [&](Seconds t) { d1 = t; });  // rack 0 internal
  c.read(4, 2, 100, [&](Seconds t) { d2 = t; });  // rack 0 internal, same server
  c.run();
  // Server 2's NIC-out (100 B/s) is shared, the uplink is untouched.
  EXPECT_DOUBLE_EQ(d1, 2.0);
  EXPECT_DOUBLE_EQ(d2, 2.0);
}

TEST(RackNetwork, ZeroUplinkBandwidthDisablesRackModel) {
  auto p = racked_params();
  p.rack_uplink_bandwidth = 0;
  p.cross_rack_latency = 0;
  const auto topo = dfs::Topology::uniform_racks(4, 2);
  Cluster c(topo, p);
  Seconds done = -1;
  c.read(0, 1, 100, [&](Seconds t) { done = t; });
  c.run();
  EXPECT_DOUBLE_EQ(done, 1.0);  // flat-network timing
}

TEST(RackNetwork, CrossRackSendUsesUplink) {
  const auto topo = dfs::Topology::uniform_racks(4, 2);
  Cluster c(topo, racked_params());
  Seconds done = -1;
  c.send(0, 1, 100, [&](Seconds t) { done = t; });
  c.run();
  EXPECT_DOUBLE_EQ(done, 2.0);  // 1 s cross-rack latency + 1 s transfer
}

}  // namespace
}  // namespace opass::sim
