// Parallel re-leveling determinism: a FlowSimulator driven through a worker
// pool must produce byte-identical schedules — every completion time, every
// engine counter — for any thread count, because the per-component
// water-filling is a value-exact reproduction of the serial merged pass
// (see FlowSimulator::recompute_rates_parallel).
#include "sim/flow_sim.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"

namespace opass::sim {
namespace {

/// One simulated scenario: `groups` disjoint resource clusters, flows
/// arriving over time inside each, plus optional cross-group flows that
/// merge components. Returns every completion time in flow-creation order.
struct Scenario {
  std::uint32_t groups = 8;
  std::uint32_t resources_per_group = 3;
  std::uint32_t flows_per_group = 12;
  bool cross_group_flows = false;

  std::vector<Seconds> run(ThreadPool* pool) const {
    FlowSimulator sim;
    if (pool != nullptr) sim.set_parallelism(pool);
    Rng rng(99);

    std::vector<std::vector<ResourceId>> group_res(groups);
    for (std::uint32_t g = 0; g < groups; ++g)
      for (std::uint32_t r = 0; r < resources_per_group; ++r)
        group_res[g].push_back(sim.add_resource(50.0 + 10.0 * r, r == 0 ? 0.05 : 0.0));

    std::vector<Seconds> done(groups * flows_per_group + (cross_group_flows ? groups : 0),
                              -1.0);
    std::size_t next = 0;
    for (std::uint32_t g = 0; g < groups; ++g) {
      for (std::uint32_t f = 0; f < flows_per_group; ++f) {
        const std::size_t slot = next++;
        // Flows cross one or two of the group's resources; staggered starts
        // keep the incremental engine re-leveling dirty components all run.
        std::vector<ResourceId> path{group_res[g][f % resources_per_group]};
        if (f % 3 == 0)
          path.push_back(group_res[g][(f + 1) % resources_per_group]);
        const Bytes bytes = 200 + 37 * (f % 5);
        const Seconds start = 0.25 * static_cast<double>(f % 7);
        const BytesPerSec cap = (f % 4 == 0) ? 18.0 : 0.0;
        sim.at(start, [&sim, &done, slot, path, bytes, cap](Seconds) {
          sim.start_flow(path, bytes,
                         [&done, slot](Seconds end) { done[slot] = end; }, cap);
        });
      }
      if (cross_group_flows) {
        // A flow spanning two groups merges their components mid-run.
        const std::size_t slot = next++;
        const std::vector<ResourceId> path{group_res[g][0],
                                           group_res[(g + 1) % groups][0]};
        sim.at(0.6, [&sim, &done, slot, path](Seconds) {
          sim.start_flow(path, 333, [&done, slot](Seconds end) { done[slot] = end; });
        });
      }
    }
    sim.run();
    return done;
  }
};

TEST(FlowSimParallel, DisjointComponentsMatchSerialExactly) {
  Scenario sc;
  const auto serial = sc.run(nullptr);
  for (std::uint32_t threads : {2u, 4u, 8u}) {
    ThreadPool pool(threads);
    const auto parallel = sc.run(&pool);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
      EXPECT_EQ(parallel[i], serial[i]) << "flow " << i << " threads=" << threads;
  }
}

TEST(FlowSimParallel, MergingComponentsMatchSerialExactly) {
  Scenario sc;
  sc.cross_group_flows = true;  // components merge and split mid-run
  const auto serial = sc.run(nullptr);
  for (std::uint32_t threads : {2u, 4u}) {
    ThreadPool pool(threads);
    const auto parallel = sc.run(&pool);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
      EXPECT_EQ(parallel[i], serial[i]) << "flow " << i << " threads=" << threads;
  }
}

TEST(FlowSimParallel, EngineCountersMatchSerial) {
  // The observability counters (recompute totals, touched flows, largest
  // re-leveled component) are part of the deterministic surface too.
  auto run_counters = [](ThreadPool* pool) {
    FlowSimulator sim;
    if (pool != nullptr) sim.set_parallelism(pool);
    const auto r1 = sim.add_resource(100.0);
    const auto r2 = sim.add_resource(80.0);
    const auto r3 = sim.add_resource(60.0);
    for (int i = 0; i < 9; ++i) {
      const std::vector<ResourceId> path =
          i % 3 == 0 ? std::vector<ResourceId>{r1}
                     : (i % 3 == 1 ? std::vector<ResourceId>{r2}
                                   : std::vector<ResourceId>{r3, r2});
      sim.after(0.1 * i, [&sim, path](Seconds) {
        sim.start_flow(path, 150, [](Seconds) {});
      });
    }
    sim.run();
    return std::tuple{sim.rate_recomputes(), sim.rate_recompute_touched_flows(),
                      sim.max_relevel_component(), sim.eta_stale_pops()};
  };
  const auto serial = run_counters(nullptr);
  ThreadPool pool(4);
  EXPECT_EQ(run_counters(&pool), serial);
}

}  // namespace
}  // namespace opass::sim
