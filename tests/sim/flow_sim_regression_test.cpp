// Golden-determinism suite for the flow-level simulator.
//
// Pins the observable outputs of four seed scenarios — makespan, the full
// read trace (every record, in completion order), and the per-resource
// busy-time / bytes-served / peak-load / degraded-join tallies — as digest
// strings captured from the reference implementation. Any engine change that
// alters event ordering, completion sets, max-min rates, or accounting shows
// up as a digest mismatch; pure mechanical speedups (the active-flow index,
// the ETA heap, incremental re-leveling) must keep every digest stable.
//
// Continuous values are serialized at 6 significant digits: tight enough
// that any behavioral change (different rates, different event times) is
// caught, loose enough that sub-nanosecond floating-point reassociation in
// an equivalent engine does not flake the suite. Discrete values (record
// fields, counts, peaks) are pinned exactly.
#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>
#include <string>

#include "opass/opass.hpp"
#include "runtime/executor.hpp"
#include "runtime/task_source.hpp"
#include "workload/dataset.hpp"

namespace opass {
namespace {

std::string fmt6(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

/// FNV-1a 64-bit over a byte string.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 14695981039346656037ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
  return buf;
}

/// Serialize every trace record (completion order) and hash the bytes.
std::string trace_digest(const sim::TraceRecorder& trace) {
  std::string all;
  all.reserve(trace.size() * 64);
  for (const sim::ReadRecord& r : trace.records()) {
    char buf[160];
    std::snprintf(buf, sizeof buf, "%u|%u|%u|%u|%" PRIu64 "|%s|%s|%d\n", r.process,
                  r.reader_node, r.serving_node, r.chunk,
                  static_cast<std::uint64_t>(r.bytes), fmt6(r.issue_time).c_str(),
                  fmt6(r.end_time).c_str(), r.local ? 1 : 0);
    all += buf;
  }
  return hex64(fnv1a(all));
}

/// Serialize every simulator resource's cumulative accounting and hash it.
std::string resource_digest(const sim::FlowSimulator& sim) {
  std::string all;
  for (sim::ResourceId r = 0; r < sim.resource_count(); ++r) {
    char buf[160];
    std::snprintf(buf, sizeof buf, "%u|%s|%s|%u|%" PRIu64 "\n", r,
                  fmt6(sim.resource_busy_time(r)).c_str(),
                  fmt6(sim.resource_bytes_served(r)).c_str(), sim.resource_peak_load(r),
                  sim.resource_degraded_joins(r));
    all += buf;
  }
  return hex64(fnv1a(all));
}

std::string digest(const runtime::ExecutionResult& exec, const sim::Cluster& cluster) {
  std::string d;
  d += "makespan=" + fmt6(exec.makespan);
  d += " reads=" + std::to_string(exec.trace.size());
  d += " local=" + fmt6(exec.trace.local_fraction());
  d += " failures=" + std::to_string(exec.read_failures);
  d += " trace=" + trace_digest(exec.trace);
  d += " resources=" + resource_digest(cluster.simulator());
  return d;
}

/// Static Opass plan replayed one-process-per-node — the perf_executor
/// scenario shape (100% local, one flow per disk at a time).
std::string run_static_local(std::uint32_t nodes, std::uint32_t tasks_n,
                             std::uint64_t seed) {
  dfs::NameNode nn(dfs::Topology::single_rack(nodes), 3);
  dfs::RandomPlacement policy;
  Rng layout_rng(seed);
  const auto tasks = workload::make_single_data_workload(nn, tasks_n, policy, layout_rng);
  const auto placement = core::one_process_per_node(nn);
  Rng assign_rng(seed * 7919 + 1);
  const auto plan = core::plan({&nn, &tasks, &placement, &assign_rng});

  sim::Cluster cluster(nodes, {});
  runtime::StaticAssignmentSource source(plan.assignment);
  runtime::ExecutorConfig ec;
  ec.process_count = static_cast<std::uint32_t>(placement.size());
  Rng exec_rng(seed * 7919 + 2);
  const auto exec = runtime::execute(cluster, nn, tasks, source, exec_rng, ec);
  return digest(exec, cluster);
}

/// Master–worker queue with random replica choice: mostly-remote reads, NIC
/// flows, cross-node components, the remote-stream cap — plus a mid-run node
/// failure exercising cancel + retry determinism.
std::string run_random_remote_with_failure(std::uint32_t nodes, std::uint32_t tasks_n,
                                           std::uint64_t seed) {
  dfs::NameNode nn(dfs::Topology::single_rack(nodes), 3);
  dfs::RandomPlacement policy;
  Rng layout_rng(seed);
  const auto tasks = workload::make_single_data_workload(nn, tasks_n, policy, layout_rng);

  sim::Cluster cluster(nodes, {});
  cluster.fail_node(nodes - 1, 2.0);
  Rng src_rng(seed + 17);
  runtime::MasterWorkerSource source(tasks_n, src_rng);
  runtime::ExecutorConfig ec;
  ec.replica_choice = dfs::ReplicaChoice::kRandom;
  Rng exec_rng(seed * 7919 + 2);
  const auto exec = runtime::execute(cluster, nn, tasks, source, exec_rng, ec);
  return digest(exec, cluster);
}

/// Rack topology with shared uplinks, DataNode admission control, and BSP
/// barriers: wide multi-resource flows, admission FIFOs, barrier timers.
std::string run_rack_bsp_admission(std::uint32_t nodes, std::uint32_t tasks_n,
                                   std::uint64_t seed) {
  dfs::NameNode nn(dfs::Topology::uniform_racks(nodes, 3), 3);
  dfs::RandomPlacement policy;
  Rng layout_rng(seed);
  const auto tasks = workload::make_single_data_workload(nn, tasks_n, policy, layout_rng);

  sim::ClusterParams params;
  params.rack_uplink_bandwidth = 200.0 * 1024 * 1024;
  params.max_concurrent_serves = 2;
  sim::Cluster cluster(dfs::Topology::uniform_racks(nodes, 3), params);
  Rng src_rng(seed + 29);
  runtime::MasterWorkerSource source(tasks_n, src_rng);
  runtime::ExecutorConfig ec;
  ec.replica_choice = dfs::ReplicaChoice::kLeastLoaded;
  ec.barrier_per_task = true;
  Rng exec_rng(seed * 7919 + 2);
  const auto exec = runtime::execute(cluster, nn, tasks, source, exec_rng, ec);
  return digest(exec, cluster);
}

/// Delay scheduling: kWait retry timers advance virtual time while unrelated
/// flows are mid-transfer — the pure-timer event window the lazy-ETA engine
/// must traverse without perturbing rates.
std::string run_delay_scheduling(std::uint32_t nodes, std::uint32_t tasks_n,
                                 std::uint64_t seed) {
  dfs::NameNode nn(dfs::Topology::single_rack(nodes), 3);
  dfs::RandomPlacement policy;
  Rng layout_rng(seed);
  const auto tasks = workload::make_single_data_workload(nn, tasks_n, policy, layout_rng);
  const auto placement = core::one_process_per_node(nn);

  sim::Cluster cluster(nodes, {});
  Rng src_rng(seed + 41);
  runtime::DelaySchedulingSource source(nn, tasks, placement, src_rng,
                                        /*max_delay=*/0.2);
  runtime::ExecutorConfig ec;
  ec.process_count = static_cast<std::uint32_t>(placement.size());
  Rng exec_rng(seed * 7919 + 2);
  const auto exec = runtime::execute(cluster, nn, tasks, source, exec_rng, ec);
  return digest(exec, cluster);
}

// Expected digests were captured from the pre-rewrite reference engine
// (PR 3 tree) and must never change without a deliberate model change.
TEST(FlowSimGolden, StaticLocalReplay) {
  EXPECT_EQ(run_static_local(64, 640, 42),
            "makespan=9.03333 reads=640 local=1 failures=0 "
            "trace=c9ca5b2e480c06d3 resources=72c837910e723e45");
}

TEST(FlowSimGolden, RandomRemoteWithFailure) {
  EXPECT_EQ(run_random_remote_with_failure(32, 320, 7),
            "makespan=36.1221 reads=320 local=0.075 failures=1 "
            "trace=8f4bb9af1fad1705 resources=005b636d76f03d46");
}

TEST(FlowSimGolden, RackBspAdmission) {
  EXPECT_EQ(run_rack_bsp_admission(24, 192, 11),
            "makespan=19.353 reads=192 local=0.130208 failures=0 "
            "trace=1d4407339d487bc0 resources=6f5264e41fe8ce40");
}

TEST(FlowSimGolden, DelayScheduling) {
  EXPECT_EQ(run_delay_scheduling(16, 96, 5),
            "makespan=6.952 reads=96 local=0.979167 failures=0 "
            "trace=c536741214361be4 resources=29828fed82811f53");
}

}  // namespace
}  // namespace opass
