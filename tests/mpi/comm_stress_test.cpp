// Randomized stress and reuse tests for the MPI-model communicator.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "mpi/comm.hpp"

namespace opass::mpi {
namespace {

sim::ClusterParams fast_net() {
  sim::ClusterParams p;
  p.disk_bandwidth = 1e6;
  p.nic_bandwidth = 1e6;
  p.disk_beta = 0.0;
  p.seek_latency = 0.0;
  p.remote_latency = 0.01;
  p.remote_stream_cap = 0.0;
  return p;
}

TEST(CommStress, RandomSendRecvAllDelivered) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    const Rank n = 6;
    sim::Cluster cluster(n, fast_net());
    Comm comm(cluster);

    const int messages = 200;
    std::map<std::pair<Rank, Tag>, int> sent, received;
    for (int i = 0; i < messages; ++i) {
      const auto from = static_cast<Rank>(rng.uniform(n));
      const auto to = static_cast<Rank>(rng.uniform(n));
      const auto tag = static_cast<Tag>(rng.uniform(4));
      ++sent[{to, tag}];
      comm.send(from, to, tag, 8 + rng.uniform(64), static_cast<std::uint64_t>(i));
    }
    // Matching wildcard receives, interleaved across ranks.
    for (const auto& [key, count] : sent) {
      for (int i = 0; i < count; ++i) {
        comm.recv(key.first, kAnySource, key.second,
                  [&received, key](Message) { ++received[key]; });
      }
    }
    cluster.run();
    EXPECT_EQ(received, sent) << "seed " << seed;
    EXPECT_EQ(comm.messages_sent(), static_cast<std::uint64_t>(messages));
  }
}

TEST(CommStress, SequentialBarriersReuseState) {
  sim::Cluster cluster(4, fast_net());
  Comm comm(cluster);
  std::vector<int> rounds_done(4, 0);

  // Three barrier generations back to back, driven per rank.
  std::function<void(Rank)> enter = [&](Rank r) {
    comm.barrier(r, [&, r](Seconds) {
      if (++rounds_done[r] < 3) enter(r);
    });
  };
  for (Rank r = 0; r < 4; ++r) enter(r);
  cluster.run();
  for (Rank r = 0; r < 4; ++r) EXPECT_EQ(rounds_done[r], 3) << "rank " << r;
}

TEST(CommStress, BarrierOrdersWorkAcrossPhases) {
  // Classic phase pattern: all sends of phase 1 complete (barrier) before
  // any phase-2 receive is posted; nothing deadlocks, everything matches.
  sim::Cluster cluster(3, fast_net());
  Comm comm(cluster);
  int phase2_msgs = 0;
  for (Rank r = 0; r < 3; ++r) {
    comm.send(r, (r + 1) % 3, /*tag=*/1, 16, r);
    comm.recv(r, kAnySource, 1, [](Message) {});
    comm.barrier(r, [&, r](Seconds) {
      comm.send(r, (r + 2) % 3, /*tag=*/2, 16, r);
      comm.recv(r, kAnySource, 2, [&](Message) { ++phase2_msgs; });
    });
  }
  cluster.run();
  EXPECT_EQ(phase2_msgs, 3);
}

TEST(CommStress, GatherAfterGatherWorks) {
  sim::Cluster cluster(3, fast_net());
  Comm comm(cluster);
  std::vector<std::vector<std::uint64_t>> results;
  comm.gather(0, 8, [&](std::vector<std::uint64_t> v, Seconds) {
    results.push_back(v);
    // Second round, nested in the first completion.
    comm.gather(1, 8, [&](std::vector<std::uint64_t> v2, Seconds) {
      results.push_back(v2);
    });
    for (Rank r = 0; r < 3; ++r) comm.contribute(r, 100 + r);
  });
  for (Rank r = 0; r < 3; ++r) comm.contribute(r, r);
  cluster.run();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0], (std::vector<std::uint64_t>{0, 1, 2}));
  EXPECT_EQ(results[1], (std::vector<std::uint64_t>{100, 101, 102}));
}

}  // namespace
}  // namespace opass::mpi
