#include "mpi/comm.hpp"

#include <gtest/gtest.h>

#include <set>

namespace opass::mpi {
namespace {

sim::ClusterParams fast_net() {
  sim::ClusterParams p;
  p.disk_bandwidth = 100.0;
  p.nic_bandwidth = 100.0;  // bytes/s: message timing is exact and visible
  p.disk_beta = 0.0;
  p.seek_latency = 0.0;
  p.remote_latency = 0.5;
  p.remote_stream_cap = 0.0;
  return p;
}

TEST(Comm, SendThenRecvDelivers) {
  sim::Cluster cluster(4, fast_net());
  Comm comm(cluster);
  std::optional<Message> got;
  comm.send(1, 2, /*tag=*/7, /*bytes=*/100, /*value=*/42);
  comm.recv(2, 1, 7, [&](Message m) { got = m; });
  cluster.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->source, 1u);
  EXPECT_EQ(got->tag, 7);
  EXPECT_EQ(got->value, 42u);
  // 0.5 s latency + 100 B at 100 B/s.
  EXPECT_DOUBLE_EQ(got->delivered_at, 1.5);
}

TEST(Comm, RecvBeforeSendAlsoDelivers) {
  sim::Cluster cluster(4, fast_net());
  Comm comm(cluster);
  std::optional<Message> got;
  comm.recv(2, 1, 7, [&](Message m) { got = m; });
  comm.send(1, 2, 7, 100, 9);
  cluster.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->value, 9u);
}

TEST(Comm, WildcardsMatchAnySourceAndTag) {
  sim::Cluster cluster(4, fast_net());
  Comm comm(cluster);
  std::vector<std::uint64_t> got;
  comm.recv(0, kAnySource, kAnyTag, [&](Message m) { got.push_back(m.value); });
  comm.recv(0, kAnySource, kAnyTag, [&](Message m) { got.push_back(m.value); });
  comm.send(1, 0, 3, 10, 100);
  comm.send(2, 0, 5, 10, 200);
  cluster.run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(std::set<std::uint64_t>(got.begin(), got.end()),
            (std::set<std::uint64_t>{100, 200}));
}

TEST(Comm, TagFilteringHoldsBackNonMatching) {
  sim::Cluster cluster(4, fast_net());
  Comm comm(cluster);
  std::optional<Message> got;
  comm.send(1, 2, /*tag=*/1, 10, 111);
  comm.send(1, 2, /*tag=*/9, 10, 999);
  comm.recv(2, 1, 9, [&](Message m) { got = m; });
  cluster.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->value, 999u);  // the tag-1 message stays queued
}

TEST(Comm, PairwiseFifoOrdering) {
  sim::Cluster cluster(2, fast_net());
  Comm comm(cluster);
  std::vector<std::uint64_t> order;
  for (std::uint64_t i = 0; i < 5; ++i) comm.send(0, 1, 1, 10, i);
  for (int i = 0; i < 5; ++i)
    comm.recv(1, 0, 1, [&](Message m) { order.push_back(m.value); });
  cluster.run();
  EXPECT_EQ(order, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
}

TEST(Comm, SameNodeLoopbackWorks) {
  sim::Cluster cluster(2, fast_net());
  // Two ranks pinned to the same node.
  Comm comm(cluster, {0, 0});
  std::optional<Message> got;
  comm.send(0, 1, 1, 1000, 5);
  comm.recv(1, 0, 1, [&](Message m) { got = m; });
  cluster.run();
  ASSERT_TRUE(got.has_value());
  // Loopback pays only the software latency, not wire time.
  EXPECT_DOUBLE_EQ(got->delivered_at, 0.5);
}

TEST(Comm, BarrierReleasesEveryoneAfterLastArrival) {
  sim::Cluster cluster(4, fast_net());
  Comm comm(cluster);
  std::vector<Seconds> released(4, -1);
  // Ranks enter at staggered times.
  for (Rank r = 0; r < 4; ++r) {
    cluster.simulator().at(static_cast<double>(r), [&, r](Seconds) {
      comm.barrier(r, [&, r](Seconds t) { released[r] = t; });
    });
  }
  cluster.run();
  // Last rank enters at t = 3; all releases happen strictly after that.
  for (Rank r = 0; r < 4; ++r) EXPECT_GT(released[r], 3.0) << "rank " << r;
}

TEST(Comm, BarrierDoubleEntryThrows) {
  sim::Cluster cluster(2, fast_net());
  Comm comm(cluster);
  comm.barrier(0, [](Seconds) {});
  EXPECT_THROW(comm.barrier(0, [](Seconds) {}), std::invalid_argument);
}

TEST(Comm, BcastReachesAllRanksOnce) {
  for (Rank n : {1u, 2u, 5u, 8u, 13u}) {
    sim::Cluster cluster(n, fast_net());
    Comm comm(cluster);
    std::vector<int> hits(n, 0);
    comm.bcast(0, 50, 77, [&](Rank r, std::uint64_t v, Seconds) {
      EXPECT_EQ(v, 77u);
      ++hits[r];
    });
    cluster.run();
    for (Rank r = 0; r < n; ++r) EXPECT_EQ(hits[r], 1) << "n=" << n << " rank " << r;
  }
}

TEST(Comm, BcastNonZeroRootWraps) {
  sim::Cluster cluster(5, fast_net());
  Comm comm(cluster);
  std::vector<int> hits(5, 0);
  comm.bcast(3, 50, 1, [&](Rank r, std::uint64_t, Seconds) { ++hits[r]; });
  cluster.run();
  for (Rank r = 0; r < 5; ++r) EXPECT_EQ(hits[r], 1);
}

TEST(Comm, BcastLatencyScalesWithDepthNotWidth) {
  auto last_delivery = [&](Rank n) {
    sim::Cluster cluster(n, fast_net());
    Comm comm(cluster);
    Seconds last = 0;
    comm.bcast(0, 50, 1, [&](Rank, std::uint64_t, Seconds t) { last = std::max(last, t); });
    cluster.run();
    return last;
  };
  const Seconds t4 = last_delivery(4);
  const Seconds t16 = last_delivery(16);
  EXPECT_LE(t4, t16);
  // A sequential root fan-out would pay 15 back-to-back sends of 1 s each;
  // the binomial tree (depth 4, bounded per-hop fan-out) stays well under.
  EXPECT_LT(t16, 10.0);
}

TEST(Comm, GatherCollectsAllValuesAtRoot) {
  sim::Cluster cluster(4, fast_net());
  Comm comm(cluster);
  std::optional<std::vector<std::uint64_t>> got;
  comm.gather(0, 20, [&](std::vector<std::uint64_t> v, Seconds) { got = std::move(v); });
  for (Rank r = 0; r < 4; ++r) comm.contribute(r, r * 10);
  cluster.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, (std::vector<std::uint64_t>{0, 10, 20, 30}));
}

TEST(Comm, GatherValidation) {
  sim::Cluster cluster(2, fast_net());
  Comm comm(cluster);
  EXPECT_THROW(comm.contribute(0, 1), std::invalid_argument);  // no gather active
  comm.gather(0, 10, [](std::vector<std::uint64_t>, Seconds) {});
  EXPECT_THROW(comm.gather(0, 10, [](std::vector<std::uint64_t>, Seconds) {}),
               std::invalid_argument);  // nested gather
  comm.contribute(0, 1);
  EXPECT_THROW(comm.contribute(0, 2), std::invalid_argument);  // double contribution
}

TEST(Comm, MessageAccounting) {
  sim::Cluster cluster(3, fast_net());
  Comm comm(cluster);
  comm.send(0, 1, 1, 100, 0);
  comm.send(1, 2, 1, 50, 0);
  cluster.run();
  EXPECT_EQ(comm.messages_sent(), 2u);
  EXPECT_EQ(comm.bytes_sent(), 150u);
}

TEST(Comm, Validation) {
  sim::Cluster cluster(2, fast_net());
  Comm comm(cluster);
  EXPECT_THROW(comm.send(0, 9, 1, 1, 0), std::invalid_argument);
  EXPECT_THROW(comm.send(0, 1, -3, 1, 0), std::invalid_argument);  // reserved tags
  EXPECT_THROW(comm.recv(9, 0, 1, [](Message) {}), std::invalid_argument);
  EXPECT_THROW(comm.node_of(9), std::invalid_argument);
  EXPECT_THROW(Comm(cluster, {}), std::invalid_argument);
  EXPECT_THROW(Comm(cluster, {0, 7}), std::invalid_argument);
}

}  // namespace
}  // namespace opass::mpi
