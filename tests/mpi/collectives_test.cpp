// Scatter and allreduce collectives.
#include <gtest/gtest.h>

#include "mpi/comm.hpp"

namespace opass::mpi {
namespace {

sim::ClusterParams fast_net() {
  sim::ClusterParams p;
  p.disk_bandwidth = 1e6;
  p.nic_bandwidth = 100.0;
  p.disk_beta = 0.0;
  p.seek_latency = 0.0;
  p.remote_latency = 0.5;
  p.remote_stream_cap = 0.0;
  return p;
}

TEST(Collectives, ScatterDeliversEachValueToItsRank) {
  sim::Cluster cluster(4, fast_net());
  Comm comm(cluster);
  std::vector<std::uint64_t> got(4, 0);
  std::vector<int> hits(4, 0);
  comm.scatter(1, 50, {10, 11, 12, 13}, [&](Rank r, std::uint64_t v, Seconds) {
    got[r] = v;
    ++hits[r];
  });
  cluster.run();
  EXPECT_EQ(got, (std::vector<std::uint64_t>{10, 11, 12, 13}));
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(Collectives, ScatterRootReceivesImmediately) {
  sim::Cluster cluster(3, fast_net());
  Comm comm(cluster);
  Seconds root_time = -1, other_time = -1;
  comm.scatter(0, 50, {1, 2, 3}, [&](Rank r, std::uint64_t, Seconds t) {
    if (r == 0) root_time = t;
    if (r == 1) other_time = t;
  });
  cluster.run();
  EXPECT_DOUBLE_EQ(root_time, 0.0);
  EXPECT_GT(other_time, 0.0);
}

TEST(Collectives, ScatterValidation) {
  sim::Cluster cluster(2, fast_net());
  Comm comm(cluster);
  EXPECT_THROW(comm.scatter(5, 1, {1, 2}, [](Rank, std::uint64_t, Seconds) {}),
               std::invalid_argument);
  EXPECT_THROW(comm.scatter(0, 1, {1}, [](Rank, std::uint64_t, Seconds) {}),
               std::invalid_argument);
}

TEST(Collectives, AllreduceSum) {
  sim::Cluster cluster(5, fast_net());
  Comm comm(cluster);
  std::vector<std::uint64_t> results(5, 0);
  comm.allreduce(8, [](std::uint64_t a, std::uint64_t b) { return a + b; },
                 [&](Rank r, std::uint64_t v, Seconds) { results[r] = v; });
  for (Rank r = 0; r < 5; ++r) comm.reduce_contribute(r, r + 1);  // 1..5
  cluster.run();
  for (Rank r = 0; r < 5; ++r) EXPECT_EQ(results[r], 15u) << "rank " << r;
}

TEST(Collectives, AllreduceMax) {
  sim::Cluster cluster(4, fast_net());
  Comm comm(cluster);
  std::vector<std::uint64_t> results(4, 0);
  comm.allreduce(8, [](std::uint64_t a, std::uint64_t b) { return a > b ? a : b; },
                 [&](Rank r, std::uint64_t v, Seconds) { results[r] = v; });
  comm.reduce_contribute(0, 7);
  comm.reduce_contribute(1, 99);
  comm.reduce_contribute(2, 3);
  comm.reduce_contribute(3, 42);
  cluster.run();
  for (Rank r = 0; r < 4; ++r) EXPECT_EQ(results[r], 99u);
}

TEST(Collectives, AllreduceSingleRank) {
  sim::Cluster cluster(1, fast_net());
  Comm comm(cluster);
  std::uint64_t result = 0;
  comm.allreduce(8, [](std::uint64_t a, std::uint64_t b) { return a + b; },
                 [&](Rank, std::uint64_t v, Seconds) { result = v; });
  comm.reduce_contribute(0, 17);
  cluster.run();
  EXPECT_EQ(result, 17u);
}

}  // namespace
}  // namespace opass::mpi
