#include "mpi/master_worker.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "opass/opass.hpp"
#include "workload/dataset.hpp"

namespace opass::mpi {
namespace {

struct MwFixture : ::testing::Test {
  static constexpr std::uint32_t kNodes = 9;  // node 0 = master, 8 workers
  MwFixture()
      : nn(dfs::Topology::single_rack(kNodes), 3, kDefaultChunkSize), rng(5) {
    tasks = workload::make_single_data_workload(nn, 40, policy, rng);
    // Workers are ranks 1..8 on nodes 1..8; their TaskSource process ids are
    // 0..7 mapped to those nodes.
    for (dfs::NodeId n = 1; n < kNodes; ++n) worker_placement.push_back(n);
  }

  dfs::NameNode nn;
  dfs::RandomPlacement policy;
  Rng rng;
  std::vector<runtime::Task> tasks;
  core::ProcessPlacement worker_placement;
};

TEST_F(MwFixture, ExecutesEveryTaskExactlyOnce) {
  sim::Cluster cluster(kNodes);
  Comm comm(cluster);
  Rng mw_rng(1);
  runtime::MasterWorkerSource source(static_cast<std::uint32_t>(tasks.size()), mw_rng);
  const auto result = run_master_worker(cluster, nn, tasks, source, comm, rng);
  EXPECT_EQ(result.exec.tasks_executed, tasks.size());
  std::vector<int> seen(tasks.size(), 0);
  for (const auto& r : result.exec.trace.records()) ++seen[r.chunk];
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST_F(MwFixture, AllWorkersFinishAndMakespanIsMax) {
  sim::Cluster cluster(kNodes);
  Comm comm(cluster);
  Rng mw_rng(1);
  runtime::MasterWorkerSource source(static_cast<std::uint32_t>(tasks.size()), mw_rng);
  const auto result = run_master_worker(cluster, nn, tasks, source, comm, rng);
  ASSERT_EQ(result.exec.process_finish_time.size(), 8u);
  Seconds max_finish = 0;
  for (Seconds t : result.exec.process_finish_time) {
    EXPECT_GT(t, 0.0);
    max_finish = std::max(max_finish, t);
  }
  EXPECT_DOUBLE_EQ(result.exec.makespan, max_finish);
}

TEST_F(MwFixture, SchedulerTrafficIsAccounted) {
  sim::Cluster cluster(kNodes);
  Comm comm(cluster);
  Rng mw_rng(1);
  runtime::MasterWorkerSource source(static_cast<std::uint32_t>(tasks.size()), mw_rng);
  const auto result = run_master_worker(cluster, nn, tasks, source, comm, rng);
  // Each task: one REQUEST + one GRANT; each worker: one final REQUEST+STOP.
  EXPECT_EQ(result.scheduler_messages, 2 * (tasks.size() + 8));
  EXPECT_EQ(result.scheduler_bytes, (64u + 128u) * (tasks.size() + 8));
}

TEST_F(MwFixture, SchedulerOverheadNegligibleVsDataMovement) {
  // The paper's Section V-C2 argument, quantified: scheduler bytes are a
  // vanishing fraction of data bytes.
  sim::Cluster cluster(kNodes);
  Comm comm(cluster);
  Rng mw_rng(1);
  runtime::MasterWorkerSource source(static_cast<std::uint32_t>(tasks.size()), mw_rng);
  const auto result = run_master_worker(cluster, nn, tasks, source, comm, rng);
  Bytes data = 0;
  for (const auto& r : result.exec.trace.records()) data += r.bytes;
  EXPECT_LT(static_cast<double>(result.scheduler_bytes), 1e-4 * static_cast<double>(data));
}

TEST_F(MwFixture, OpassGuidelineSourceImprovesLocality) {
  Rng assign_rng(3);
  const auto plan = core::assign_single_data(nn, tasks, worker_placement, assign_rng);

  sim::Cluster c1(kNodes);
  Comm comm1(c1);
  Rng mw_rng(1);
  runtime::MasterWorkerSource base_src(static_cast<std::uint32_t>(tasks.size()), mw_rng);
  Rng e1(2);
  const auto base = run_master_worker(c1, nn, tasks, base_src, comm1, e1);

  sim::Cluster c2(kNodes);
  Comm comm2(c2);
  core::OpassDynamicSource opass_src(plan.assignment, nn, tasks, worker_placement);
  Rng e2(2);
  const auto opass = run_master_worker(c2, nn, tasks, opass_src, comm2, e2);

  EXPECT_GT(opass.exec.trace.local_fraction(), base.exec.trace.local_fraction());
  EXPECT_LT(summarize(opass.exec.trace.io_times()).mean,
            summarize(base.exec.trace.io_times()).mean);
}

TEST_F(MwFixture, ComputeTimeDelaysRequests) {
  auto timed = tasks;
  for (auto& t : timed) t.compute_time = 1.0;
  sim::Cluster cluster(kNodes);
  Comm comm(cluster);
  Rng mw_rng(1);
  runtime::MasterWorkerSource source(static_cast<std::uint32_t>(timed.size()), mw_rng);
  const auto result = run_master_worker(cluster, nn, timed, source, comm, rng);
  // 40 tasks, 8 workers -> ~5 tasks each; each task costs >= 1 s compute.
  EXPECT_GE(result.exec.makespan, 5.0);
}

TEST_F(MwFixture, NeedsAtLeastTwoRanks) {
  sim::Cluster cluster(1);
  Comm comm(cluster);
  Rng mw_rng(1);
  runtime::MasterWorkerSource source(4, mw_rng);
  EXPECT_THROW(run_master_worker(cluster, nn, tasks, source, comm, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace opass::mpi
