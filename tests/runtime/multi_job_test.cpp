// Concurrent multi-application execution on one cluster (execute_jobs).
#include <gtest/gtest.h>

#include "runtime/executor.hpp"
#include "runtime/task_source.hpp"
#include "workload/dataset.hpp"

namespace opass::runtime {
namespace {

struct MultiJobFixture : ::testing::Test {
  MultiJobFixture()
      : nn(dfs::Topology::single_rack(4), 2, kDefaultChunkSize), rng(3) {
    params.disk_bandwidth = 64.0 * kMiB;  // 1 s per uncontended local chunk
    params.nic_bandwidth = 64.0 * kMiB;
    params.disk_beta = 0.0;
    params.seek_latency = 0.0;
    params.remote_latency = 0.0;
    params.remote_stream_cap = 0.0;
  }

  std::vector<Task> make_tasks(const std::string& name, std::uint32_t chunks) {
    const auto fid = nn.create_file(name, chunks * kDefaultChunkSize, policy, rng);
    auto tasks = single_input_tasks(nn, {fid});
    return tasks;
  }

  dfs::NameNode nn;
  dfs::RoundRobinPlacement policy;
  Rng rng;
  sim::ClusterParams params;
};

TEST_F(MultiJobFixture, TwoJobsBothComplete) {
  const auto ta = make_tasks("a", 8);
  const auto tb = make_tasks("b", 4);
  sim::Cluster cluster(4, params);
  StaticAssignmentSource sa(rank_interval_assignment(8, 4));
  StaticAssignmentSource sb(rank_interval_assignment(4, 4));
  std::vector<JobSpec> jobs(2);
  jobs[0].tasks = &ta;
  jobs[0].source = &sa;
  jobs[1].tasks = &tb;
  jobs[1].source = &sb;
  const auto results = execute_jobs(cluster, nn, jobs, rng);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].tasks_executed, 8u);
  EXPECT_EQ(results[1].tasks_executed, 4u);
  EXPECT_EQ(results[0].trace.size(), 8u);
  EXPECT_EQ(results[1].trace.size(), 4u);
}

TEST_F(MultiJobFixture, ConcurrentJobsContendForDisks) {
  // One job alone vs the same job sharing the cluster with a second one:
  // contention must slow it down.
  const auto ta = make_tasks("a", 8);
  const auto tb = make_tasks("b", 8);

  Seconds alone;
  {
    sim::Cluster cluster(4, params);
    StaticAssignmentSource sa(rank_interval_assignment(8, 4));
    alone = execute(cluster, nn, ta, sa, rng).makespan;
  }
  {
    sim::Cluster cluster(4, params);
    StaticAssignmentSource sa(rank_interval_assignment(8, 4));
    StaticAssignmentSource sb(rank_interval_assignment(8, 4));
    std::vector<JobSpec> jobs(2);
    jobs[0].tasks = &ta;
    jobs[0].source = &sa;
    jobs[1].tasks = &tb;
    jobs[1].source = &sb;
    const auto results = execute_jobs(cluster, nn, jobs, rng);
    EXPECT_GT(results[0].makespan, alone * 1.2);
  }
}

TEST_F(MultiJobFixture, StartTimeOffsetsJobLaunch) {
  const auto ta = make_tasks("a", 4);
  sim::Cluster cluster(4, params);
  StaticAssignmentSource sa(rank_interval_assignment(4, 4));
  std::vector<JobSpec> jobs(1);
  jobs[0].tasks = &ta;
  jobs[0].source = &sa;
  jobs[0].start_time = 5.0;
  const auto results = execute_jobs(cluster, nn, jobs, rng);
  for (const auto& r : results[0].trace.records()) EXPECT_GE(r.issue_time, 5.0);
  EXPECT_GE(results[0].makespan, 6.0);  // 5 s offset + ~1 s read
}

TEST_F(MultiJobFixture, StaggeredJobsOverlapCorrectly) {
  const auto ta = make_tasks("a", 8);
  const auto tb = make_tasks("b", 8);
  sim::Cluster cluster(4, params);
  StaticAssignmentSource sa(rank_interval_assignment(8, 4));
  StaticAssignmentSource sb(rank_interval_assignment(8, 4));
  std::vector<JobSpec> jobs(2);
  jobs[0].tasks = &ta;
  jobs[0].source = &sa;
  jobs[1].tasks = &tb;
  jobs[1].source = &sb;
  jobs[1].start_time = 1.0;
  const auto results = execute_jobs(cluster, nn, jobs, rng);
  // Job B starts strictly later and ends no earlier than A started.
  Seconds b_first = 1e30;
  for (const auto& r : results[1].trace.records()) b_first = std::min(b_first, r.issue_time);
  EXPECT_GE(b_first, 1.0);
  EXPECT_EQ(results[0].tasks_executed + results[1].tasks_executed, 16u);
}

TEST_F(MultiJobFixture, Validation) {
  sim::Cluster cluster(4, params);
  EXPECT_THROW(execute_jobs(cluster, nn, {}, rng), std::invalid_argument);
  std::vector<JobSpec> jobs(1);
  EXPECT_THROW(execute_jobs(cluster, nn, jobs, rng), std::invalid_argument);
}

}  // namespace
}  // namespace opass::runtime
