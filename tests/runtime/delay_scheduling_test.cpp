// Delay scheduling (Zaharia et al.) as a dynamic locality baseline.
#include <gtest/gtest.h>

#include <set>

#include "runtime/executor.hpp"
#include "runtime/task_source.hpp"
#include "workload/dataset.hpp"

namespace opass::runtime {
namespace {

struct DelayFixture : ::testing::Test {
  DelayFixture() : nn(dfs::Topology::single_rack(8), 3, kDefaultChunkSize), rng(7) {
    tasks = workload::make_single_data_workload(nn, 80, policy, rng);
    for (dfs::NodeId n = 0; n < 8; ++n) placement.push_back(n);
  }
  dfs::NameNode nn;
  dfs::RandomPlacement policy;
  Rng rng;
  std::vector<Task> tasks;
  std::vector<dfs::NodeId> placement;
};

TEST_F(DelayFixture, PullGrantsLocalTasksImmediately) {
  Rng q(1);
  DelaySchedulingSource src(nn, tasks, placement, q, /*max_delay=*/5.0);
  // Find a process that has a local task in the queue; it must be granted
  // without waiting.
  const auto r = src.pull(0, 0.0);
  if (r.kind == Pull::Kind::kTask) {
    EXPECT_TRUE(nn.chunk(tasks[r.task].inputs[0]).has_replica_on(0));
    EXPECT_EQ(src.local_grants(), 1u);
  } else {
    EXPECT_EQ(r.kind, Pull::Kind::kWait);  // no local task existed for p0
  }
}

TEST_F(DelayFixture, WaitsThenSettlesForRemote) {
  // A process on a node with no co-located tasks must first wait, then get
  // remote work once the delay expires.
  dfs::NameNode empty_nn(dfs::Topology::single_rack(4), 1, kDefaultChunkSize);
  class PinnedPlacement : public dfs::PlacementPolicy {
   public:
    std::vector<dfs::NodeId> place(const dfs::Topology&, dfs::NodeId, std::uint32_t,
                                   Rng&) override {
      return {0};  // everything on node 0
    }
    std::string name() const override { return "pinned"; }
  } pinned;
  Rng prng(2);
  const auto pinned_tasks = workload::make_single_data_workload(empty_nn, 8, pinned, prng);

  Rng q(1);
  DelaySchedulingSource src(empty_nn, pinned_tasks, {1, 2}, q, /*max_delay=*/1.0,
                            /*retry=*/0.25);
  // t=0: no local work for process 0 -> wait.
  auto r = src.pull(0, 0.0);
  EXPECT_EQ(r.kind, Pull::Kind::kWait);
  EXPECT_DOUBLE_EQ(r.retry_after, 0.25);
  // Still inside the delay window.
  EXPECT_EQ(src.pull(0, 0.5).kind, Pull::Kind::kWait);
  // Delay expired: remote grant.
  r = src.pull(0, 1.0);
  EXPECT_EQ(r.kind, Pull::Kind::kTask);
  EXPECT_EQ(src.remote_grants(), 1u);
}

TEST_F(DelayFixture, ZeroDelayDegeneratesToImmediateGrants) {
  Rng q(1);
  DelaySchedulingSource src(nn, tasks, placement, q, /*max_delay=*/0.0);
  std::set<TaskId> seen;
  Seconds now = 0;
  bool active = true;
  std::vector<ProcessId> order;
  for (ProcessId p = 0; p < 8; ++p) order.push_back(p);
  while (active) {
    active = false;
    for (ProcessId p = 0; p < 8; ++p) {
      const auto r = src.pull(p, now);
      if (r.kind == Pull::Kind::kTask) {
        EXPECT_TRUE(seen.insert(r.task).second);
        active = true;
      }
      EXPECT_NE(r.kind, Pull::Kind::kWait);  // zero delay never waits
    }
    now += 1.0;
  }
  EXPECT_EQ(seen.size(), tasks.size());
}

TEST_F(DelayFixture, ExecutorIntegrationCompletesAllTasks) {
  Rng q(3);
  DelaySchedulingSource src(nn, tasks, placement, q, /*max_delay=*/0.5);
  sim::Cluster cluster(8);
  Rng exec_rng(5);
  const auto result = execute(cluster, nn, tasks, src, exec_rng);
  EXPECT_EQ(result.tasks_executed, 80u);
  EXPECT_EQ(result.trace.size(), 80u);
  std::vector<int> counts(80, 0);
  for (const auto& r : result.trace.records()) ++counts[r.chunk];
  for (int c : counts) EXPECT_EQ(c, 1);
}

TEST_F(DelayFixture, DelayImprovesLocalityOverFifo) {
  auto run = [&](Seconds delay) {
    Rng q(3);
    DelaySchedulingSource src(nn, tasks, placement, q, delay);
    sim::Cluster cluster(8);
    Rng exec_rng(5);
    return execute(cluster, nn, tasks, src, exec_rng).trace.local_fraction();
  };
  const double fifo_local = run(0.0);
  const double delayed_local = run(2.0);
  EXPECT_GT(delayed_local, fifo_local);
  EXPECT_GT(delayed_local, 0.6);  // most grants become local with slack
}

TEST_F(DelayFixture, Validation) {
  Rng q(1);
  EXPECT_THROW(DelaySchedulingSource(nn, tasks, placement, q, -1.0),
               std::invalid_argument);
  EXPECT_THROW(DelaySchedulingSource(nn, tasks, placement, q, 1.0, 0.0),
               std::invalid_argument);
  DelaySchedulingSource src(nn, tasks, placement, q, 1.0);
  EXPECT_THROW(src.pull(99, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace opass::runtime
