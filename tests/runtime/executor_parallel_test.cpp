// Staged wave issue determinism: an executor run with ExecutorConfig::pool
// must replay byte-identically to the serial run — every read record, task
// span, finish time and counter — for any thread count, under async and BSP
// execution and every replica policy (see Driver::pull_wave for the
// equivalence argument).
#include "runtime/executor.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "common/thread_pool.hpp"
#include "runtime/static_partitioner.hpp"
#include "runtime/task_source.hpp"

namespace opass::runtime {
namespace {

/// Compare two execution results field by field, with exact (bitwise) time
/// comparison — the contract is byte-identity, not closeness.
void expect_identical(const ExecutionResult& a, const ExecutionResult& b) {
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.tasks_executed, b.tasks_executed);
  EXPECT_EQ(a.read_failures, b.read_failures);
  EXPECT_EQ(a.process_finish_time, b.process_finish_time);
  EXPECT_EQ(a.barrier_stall, b.barrier_stall);
  ASSERT_EQ(a.task_spans.size(), b.task_spans.size());
  for (std::size_t i = 0; i < a.task_spans.size(); ++i) {
    EXPECT_EQ(a.task_spans[i].process, b.task_spans[i].process) << "span " << i;
    EXPECT_EQ(a.task_spans[i].task, b.task_spans[i].task) << "span " << i;
    EXPECT_EQ(a.task_spans[i].start, b.task_spans[i].start) << "span " << i;
    EXPECT_EQ(a.task_spans[i].end, b.task_spans[i].end) << "span " << i;
  }
  ASSERT_EQ(a.trace.size(), b.trace.size());
  const auto& ra = a.trace.records();
  const auto& rb = b.trace.records();
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].process, rb[i].process) << "record " << i;
    EXPECT_EQ(ra[i].reader_node, rb[i].reader_node) << "record " << i;
    EXPECT_EQ(ra[i].serving_node, rb[i].serving_node) << "record " << i;
    EXPECT_EQ(ra[i].chunk, rb[i].chunk) << "record " << i;
    EXPECT_EQ(ra[i].bytes, rb[i].bytes) << "record " << i;
    EXPECT_EQ(ra[i].issue_time, rb[i].issue_time) << "record " << i;
    EXPECT_EQ(ra[i].end_time, rb[i].end_time) << "record " << i;
    EXPECT_EQ(ra[i].local, rb[i].local) << "record " << i;
  }
}

struct ParallelExecutorFixture : ::testing::Test {
  ParallelExecutorFixture()
      : nn(dfs::Topology::single_rack(8), 2, kDefaultChunkSize) {
    params.disk_bandwidth = 64.0 * kMiB;
    params.nic_bandwidth = 48.0 * kMiB;
  }

  /// A workload with remote reads (rng draws) and uneven per-process lists.
  std::vector<Task> make_tasks(std::uint32_t chunks, Seconds compute = 0) {
    Rng place_rng(5);
    dfs::RandomPlacement policy;
    const auto fid = nn.create_file("d", chunks * kDefaultChunkSize, policy, place_rng);
    auto tasks = single_input_tasks(nn, {fid});
    for (auto& t : tasks) t.compute_time = compute;
    return tasks;
  }

  /// Run the assignment once; threads = 0 means no pool (the serial path).
  ExecutionResult run(const std::vector<Task>& tasks, const Assignment& assignment,
                      std::uint32_t threads, ExecutorConfig config = {}) {
    sim::Cluster cluster(8, params);
    StaticAssignmentSource source(assignment);
    Rng exec_rng(17);  // fresh identical stream per run
    std::optional<ThreadPool> pool;
    if (threads > 0) {
      pool.emplace(threads);
      config.pool = &*pool;
    }
    return execute(cluster, nn, tasks, source, exec_rng, config);
  }

  dfs::NameNode nn;
  sim::ClusterParams params;
};

TEST_F(ParallelExecutorFixture, AsyncReplayIsByteIdenticalAcrossThreadCounts) {
  const auto tasks = make_tasks(32);
  const auto assignment = rank_interval_assignment(32, 8);
  const auto serial = run(tasks, assignment, 0);
  for (std::uint32_t threads : {1u, 2u, 4u, 8u})
    expect_identical(run(tasks, assignment, threads), serial);
}

TEST_F(ParallelExecutorFixture, BspWavesAreByteIdenticalAcrossThreadCounts) {
  // BSP exercises pull_wave on every barrier release, including shrinking
  // waves as processes retire at different task counts.
  auto tasks = make_tasks(29, /*compute=*/0.05);  // uneven: 29 tasks on 8 procs
  const auto assignment = rank_interval_assignment(29, 8);
  ExecutorConfig config;
  config.barrier_per_task = true;
  const auto serial = run(tasks, assignment, 0, config);
  for (std::uint32_t threads : {2u, 4u, 8u})
    expect_identical(run(tasks, assignment, threads, config), serial);
}

TEST_F(ParallelExecutorFixture, LeastLoadedPolicyStaysExact) {
  // kLeastLoaded reads mutable in-flight counts: the staged path must defer
  // remote choices to the serial commit phase to see identical loads.
  const auto tasks = make_tasks(32);
  const auto assignment = rank_interval_assignment(32, 8);
  ExecutorConfig config;
  config.replica_choice = dfs::ReplicaChoice::kLeastLoaded;
  const auto serial = run(tasks, assignment, 0, config);
  for (std::uint32_t threads : {2u, 4u})
    expect_identical(run(tasks, assignment, threads, config), serial);
}

TEST_F(ParallelExecutorFixture, ZeroInputTasksCompleteSynchronouslyAndStayExact) {
  // Zero-input tasks finish inside the wave commit (possibly chaining
  // further pulls); the staged path must replay those chains serially.
  auto tasks = make_tasks(16);
  std::vector<Task> mixed;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    mixed.push_back(tasks[i]);
    Task compute_only;
    compute_only.id = static_cast<TaskId>(tasks.size() + i);
    compute_only.compute_time = (i % 3 == 0) ? 0.0 : 0.01;
    mixed.push_back(compute_only);
  }
  for (std::size_t i = 0; i < mixed.size(); ++i)
    mixed[i].id = static_cast<TaskId>(i);
  Assignment assignment(8);
  for (std::size_t i = 0; i < mixed.size(); ++i)
    assignment[i % 8].push_back(static_cast<TaskId>(i));

  const auto serial = run(mixed, assignment, 0);
  for (std::uint32_t threads : {2u, 4u})
    expect_identical(run(mixed, assignment, threads), serial);

  ExecutorConfig bsp;
  bsp.barrier_per_task = true;
  const auto serial_bsp = run(mixed, assignment, 0, bsp);
  for (std::uint32_t threads : {2u, 4u})
    expect_identical(run(mixed, assignment, threads, bsp), serial_bsp);
}

TEST_F(ParallelExecutorFixture, SharedQueueSourceKeepsTheSerialPath) {
  // MasterWorkerSource does not declare concurrent_pull_safe(); with a pool
  // attached the executor must still pull serially and match exactly.
  const auto tasks = make_tasks(24);
  auto run_mw = [&](std::uint32_t threads) {
    sim::Cluster cluster(8, params);
    Rng src_rng(3);
    MasterWorkerSource source(24, src_rng, /*shuffle=*/true);
    EXPECT_FALSE(source.concurrent_pull_safe());
    Rng exec_rng(17);
    ExecutorConfig config;
    std::optional<ThreadPool> pool;
    if (threads > 0) {
      pool.emplace(threads);
      config.pool = &*pool;
    }
    return execute(cluster, nn, tasks, source, exec_rng, config);
  };
  expect_identical(run_mw(4), run_mw(0));
}

TEST_F(ParallelExecutorFixture, StaticSourceDeclaresConcurrentPullSafety) {
  StaticAssignmentSource source(rank_interval_assignment(8, 4));
  EXPECT_TRUE(source.concurrent_pull_safe());
}

}  // namespace
}  // namespace opass::runtime
