#include "runtime/task_source.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace opass::runtime {
namespace {

TEST(StaticAssignmentSource, ReplaysInOrder) {
  StaticAssignmentSource src(Assignment{{2, 0}, {1}});
  EXPECT_EQ(src.next_task(0, 0.0), std::optional<TaskId>(2));
  EXPECT_EQ(src.next_task(1, 0.0), std::optional<TaskId>(1));
  EXPECT_EQ(src.next_task(0, 0.0), std::optional<TaskId>(0));
  EXPECT_EQ(src.next_task(0, 0.0), std::nullopt);
  EXPECT_EQ(src.next_task(1, 0.0), std::nullopt);
}

TEST(StaticAssignmentSource, OutOfRangeProcessThrows) {
  StaticAssignmentSource src(Assignment{{0}});
  EXPECT_THROW(src.next_task(1, 0.0), std::invalid_argument);
}

TEST(MasterWorkerSource, HandsOutEveryTaskOnce) {
  Rng rng(3);
  MasterWorkerSource src(10, rng);
  std::vector<TaskId> seen;
  for (int i = 0; i < 10; ++i) {
    const auto t = src.next_task(static_cast<ProcessId>(i % 3), 0.0);
    ASSERT_TRUE(t.has_value());
    seen.push_back(*t);
  }
  EXPECT_EQ(src.next_task(0, 0.0), std::nullopt);
  std::sort(seen.begin(), seen.end());
  for (TaskId t = 0; t < 10; ++t) EXPECT_EQ(seen[t], t);
}

TEST(MasterWorkerSource, ShuffleRandomizesOrder) {
  Rng rng(5);
  MasterWorkerSource src(50, rng, /*shuffle=*/true);
  std::vector<TaskId> order;
  for (int i = 0; i < 50; ++i) order.push_back(*src.next_task(0, 0.0));
  std::vector<TaskId> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_NE(order, sorted);  // astronomically unlikely to be sorted
}

TEST(MasterWorkerSource, NoShuffleIsFifo) {
  Rng rng(5);
  MasterWorkerSource src(5, rng, /*shuffle=*/false);
  for (TaskId t = 0; t < 5; ++t) EXPECT_EQ(src.next_task(0, 0.0), std::optional<TaskId>(t));
}

TEST(MasterWorkerSource, EmptyQueue) {
  Rng rng(7);
  MasterWorkerSource src(0, rng);
  EXPECT_EQ(src.next_task(0, 0.0), std::nullopt);
}

}  // namespace
}  // namespace opass::runtime
