// BSP (barrier-per-task) execution mode.
#include <gtest/gtest.h>

#include "runtime/executor.hpp"
#include "runtime/task_source.hpp"
#include "workload/dataset.hpp"

namespace opass::runtime {
namespace {

struct BspFixture : ::testing::Test {
  BspFixture() : nn(dfs::Topology::single_rack(4), 2, kDefaultChunkSize), rng(3) {
    params.disk_bandwidth = 64.0 * kMiB;
    params.nic_bandwidth = 64.0 * kMiB;
    params.disk_beta = 0.0;
    params.seek_latency = 0.0;
    params.remote_latency = 0.0;
    params.remote_stream_cap = 0.0;
  }

  std::vector<Task> make_tasks(std::uint32_t chunks) {
    const auto fid = nn.create_file("d" + std::to_string(nn.file_count()),
                                    chunks * kDefaultChunkSize, policy, rng);
    return single_input_tasks(nn, {fid});
  }

  ExecutionResult run(const std::vector<Task>& tasks, const Assignment& a, bool bsp) {
    sim::Cluster cluster(4, params);
    StaticAssignmentSource source(a);
    ExecutorConfig cfg;
    cfg.barrier_per_task = bsp;
    Rng exec_rng(7);
    return execute(cluster, nn, tasks, source, exec_rng, cfg);
  }

  dfs::NameNode nn;
  dfs::RoundRobinPlacement policy;
  Rng rng;
  sim::ClusterParams params;
};

TEST_F(BspFixture, AllTasksRunExactlyOnce) {
  const auto tasks = make_tasks(12);
  const auto result = run(tasks, rank_interval_assignment(12, 4), true);
  EXPECT_EQ(result.tasks_executed, 12u);
  std::vector<int> seen(12, 0);
  for (const auto& r : result.trace.records()) ++seen[r.chunk];
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST_F(BspFixture, WavesAreSynchronized) {
  // With per-task barriers, the k-th read of every process is issued at the
  // same virtual time (all reads are 1 s local/remote alike here only if
  // local... use a fully local assignment so waves are exact).
  const auto tasks = make_tasks(12);
  Assignment local(4);
  for (TaskId t = 0; t < 12; ++t) local[t % 4].push_back(t);
  const auto result = run(tasks, local, true);

  // Group issue times by wave: 4 reads per wave, identical timestamps.
  std::vector<Seconds> issues;
  for (const auto& r : result.trace.records()) issues.push_back(r.issue_time);
  std::sort(issues.begin(), issues.end());
  ASSERT_EQ(issues.size(), 12u);
  for (std::size_t wave = 0; wave < 3; ++wave) {
    for (std::size_t i = 1; i < 4; ++i)
      EXPECT_NEAR(issues[wave * 4 + i], issues[wave * 4], 1e-9) << "wave " << wave;
  }
}

TEST_F(BspFixture, StragglerStallsTheWholeWave) {
  // One process reads remotely (slow), the rest locally: under BSP everyone
  // waits; async mode lets the fast processes run ahead.
  const auto tasks = make_tasks(8);
  Assignment skew(4);
  // Process 0 gets chunks not on node 0 (remote); others local.
  std::vector<TaskId> remote, local_pool;
  for (TaskId t = 0; t < 8; ++t) {
    if (!nn.chunk(tasks[t].inputs[0]).has_replica_on(0)) remote.push_back(t);
    else local_pool.push_back(t);
  }
  ASSERT_GE(remote.size(), 2u);
  skew[0] = {remote[0], remote[1]};
  std::size_t i = 0;
  for (TaskId t = 0; t < 8; ++t) {
    if (t == remote[0] || t == remote[1]) continue;
    skew[1 + (i++ % 3)].push_back(t);
  }

  const auto bsp = run(tasks, skew, true);
  const auto async = run(tasks, skew, false);
  EXPECT_GE(bsp.makespan, async.makespan - 1e-9);
}

TEST_F(BspFixture, UnevenListsRetireCleanly) {
  // Process 0 has 4 tasks, others 1: the wave shrinks as processes drain.
  const auto tasks = make_tasks(7);
  Assignment a(4);
  a[0] = {0, 1, 2, 3};
  a[1] = {4};
  a[2] = {5};
  a[3] = {6};
  const auto result = run(tasks, a, true);
  EXPECT_EQ(result.tasks_executed, 7u);
  EXPECT_GT(result.makespan, 0.0);
}

TEST_F(BspFixture, EmptyProcessesDontBlockTheWave) {
  const auto tasks = make_tasks(4);
  Assignment a(4);
  a[2] = {0, 1, 2, 3};
  const auto result = run(tasks, a, true);
  EXPECT_EQ(result.tasks_executed, 4u);
}

TEST_F(BspFixture, PrefetchAndBspAreExclusive) {
  const auto tasks = make_tasks(4);
  sim::Cluster cluster(4, params);
  StaticAssignmentSource source(rank_interval_assignment(4, 4));
  ExecutorConfig cfg;
  cfg.barrier_per_task = true;
  cfg.prefetch = true;
  Rng exec_rng(7);
  EXPECT_THROW(execute(cluster, nn, tasks, source, exec_rng, cfg), std::invalid_argument);
}

TEST_F(BspFixture, BspNeverFasterWithoutContention) {
  // Under contention BSP can legitimately *beat* async (synchronized waves
  // pace the hot disks), so the classic "barriers only slow you down"
  // monotonicity only holds when reads never contend: fully local
  // assignments on private disks.
  const auto tasks = make_tasks(12);
  Assignment local(4);
  for (TaskId t = 0; t < 12; ++t) local[t % 4].push_back(t);
  auto with_compute = tasks;
  Rng cr(5);
  for (auto& t : with_compute) t.compute_time = cr.uniform01();  // uneven waves
  const auto bsp = run(with_compute, local, true);
  const auto async = run(with_compute, local, false);
  EXPECT_GE(bsp.makespan, async.makespan - 1e-9);
  EXPECT_EQ(bsp.tasks_executed, async.tasks_executed);
}

}  // namespace
}  // namespace opass::runtime
