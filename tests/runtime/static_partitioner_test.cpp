#include "runtime/static_partitioner.hpp"

#include <gtest/gtest.h>

namespace opass::runtime {
namespace {

TEST(RankInterval, EvenDivision) {
  const auto a = rank_interval_assignment(8, 4);
  ASSERT_EQ(a.size(), 4u);
  EXPECT_EQ(a[0], (std::vector<TaskId>{0, 1}));
  EXPECT_EQ(a[1], (std::vector<TaskId>{2, 3}));
  EXPECT_EQ(a[3], (std::vector<TaskId>{6, 7}));
}

TEST(RankInterval, UnevenDivisionIsStillAPartition) {
  for (std::uint32_t n : {1u, 7u, 13u, 100u}) {
    for (std::uint32_t m : {1u, 3u, 5u, 8u}) {
      const auto a = rank_interval_assignment(n, m);
      EXPECT_TRUE(is_partition(a, n)) << "n=" << n << " m=" << m;
      const auto [hi, lo] = load_spread(a);
      EXPECT_LE(hi - lo, 1u) << "n=" << n << " m=" << m;
    }
  }
}

TEST(RankInterval, MoreProcessesThanTasks) {
  const auto a = rank_interval_assignment(2, 5);
  EXPECT_TRUE(is_partition(a, 2));
  std::size_t total = 0;
  for (const auto& list : a) total += list.size();
  EXPECT_EQ(total, 2u);
}

TEST(RankInterval, ZeroTasks) {
  const auto a = rank_interval_assignment(0, 3);
  for (const auto& list : a) EXPECT_TRUE(list.empty());
}

TEST(RankInterval, RejectsZeroProcesses) {
  EXPECT_THROW(rank_interval_assignment(4, 0), std::invalid_argument);
}

TEST(RankInterval, MatchesPaperFormula) {
  // Indices for process i are [i*n/m, (i+1)*n/m).
  const std::uint32_t n = 640, m = 64;
  const auto a = rank_interval_assignment(n, m);
  for (std::uint32_t i = 0; i < m; ++i) {
    ASSERT_EQ(a[i].size(), 10u);
    EXPECT_EQ(a[i].front(), i * n / m);
    EXPECT_EQ(a[i].back(), (i + 1) * n / m - 1);
  }
}

TEST(IsPartition, DetectsDuplicates) {
  Assignment a{{0, 1}, {1}};
  EXPECT_FALSE(is_partition(a, 2));
}

TEST(IsPartition, DetectsMissing) {
  Assignment a{{0}, {}};
  EXPECT_FALSE(is_partition(a, 2));
}

TEST(IsPartition, DetectsOutOfRange) {
  Assignment a{{0, 5}};
  EXPECT_FALSE(is_partition(a, 2));
}

TEST(LoadSpread, Computes) {
  Assignment a{{0, 1, 2}, {3}, {}};
  const auto [hi, lo] = load_spread(a);
  EXPECT_EQ(hi, 3u);
  EXPECT_EQ(lo, 0u);
}

TEST(LoadSpread, RejectsEmpty) {
  EXPECT_THROW(load_spread({}), std::invalid_argument);
}

}  // namespace
}  // namespace opass::runtime
