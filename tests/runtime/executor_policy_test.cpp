// Parameterized executor sweep: the execution invariants must hold under
// every replica-choice policy and placement policy combination.
#include <gtest/gtest.h>

#include "runtime/executor.hpp"
#include "runtime/task_source.hpp"
#include "workload/dataset.hpp"

namespace opass::runtime {
namespace {

using Param = std::tuple<dfs::ReplicaChoice, dfs::PlacementKind>;

class ExecutorPolicyTest : public ::testing::TestWithParam<Param> {};

TEST_P(ExecutorPolicyTest, InvariantsHoldForEveryPolicyCombination) {
  const auto [replica_choice, placement_kind] = GetParam();

  dfs::NameNode nn(dfs::Topology::single_rack(12), 3, kDefaultChunkSize);
  auto policy = dfs::make_placement(placement_kind);
  Rng rng(17);
  const auto tasks = workload::make_single_data_workload(nn, 60, *policy, rng);

  sim::Cluster cluster(12);
  StaticAssignmentSource source(rank_interval_assignment(60, 12));
  ExecutorConfig cfg;
  cfg.replica_choice = replica_choice;
  const auto result = execute(cluster, nn, tasks, source, rng, cfg);

  // Completeness: every task read exactly once.
  EXPECT_EQ(result.tasks_executed, 60u);
  EXPECT_EQ(result.trace.size(), 60u);
  std::vector<int> seen(60, 0);
  for (const auto& r : result.trace.records()) ++seen[r.chunk];
  for (int s : seen) EXPECT_EQ(s, 1);

  // Correctness: every read served by a replica holder; local flag truthful.
  for (const auto& r : result.trace.records()) {
    EXPECT_TRUE(nn.chunk(r.chunk).has_replica_on(r.serving_node));
    EXPECT_EQ(r.local, r.serving_node == r.reader_node);
    EXPECT_GT(r.end_time, r.issue_time);
  }

  // Accounting: served bytes equal the dataset size.
  Bytes served = 0;
  for (Bytes b : cluster.served_bytes()) served += b;
  EXPECT_EQ(served, 60u * kDefaultChunkSize);

  // Local preference: any chunk with a replica on its reader is read
  // locally, under every policy.
  for (const auto& r : result.trace.records()) {
    if (nn.chunk(r.chunk).has_replica_on(r.reader_node)) {
      EXPECT_TRUE(r.local);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, ExecutorPolicyTest,
    ::testing::Combine(::testing::Values(dfs::ReplicaChoice::kRandom,
                                         dfs::ReplicaChoice::kFirst,
                                         dfs::ReplicaChoice::kLeastLoaded),
                       ::testing::Values(dfs::PlacementKind::kRandom,
                                         dfs::PlacementKind::kHdfsDefault,
                                         dfs::PlacementKind::kRoundRobin)),
    [](const auto& param_info) {
      std::string name = dfs::replica_choice_name(std::get<0>(param_info.param));
      name += "_";
      name += dfs::placement_kind_name(std::get<1>(param_info.param));
      for (auto& ch : name)
        if (ch == '-') ch = '_';
      return name;
    });

}  // namespace
}  // namespace opass::runtime
