#include "runtime/executor.hpp"

#include <gtest/gtest.h>

#include "runtime/task_source.hpp"

namespace opass::runtime {
namespace {

struct ExecutorFixture : ::testing::Test {
  ExecutorFixture()
      : nn(dfs::Topology::single_rack(4), 2, kDefaultChunkSize), rng(1) {
    params.disk_bandwidth = 64.0 * kMiB;  // 1 s per local chunk
    params.nic_bandwidth = 64.0 * kMiB;
    params.disk_beta = 0.0;
    params.seek_latency = 0.0;
    params.remote_latency = 0.0;
    params.remote_stream_cap = 0.0;
  }

  std::vector<Task> make_tasks(std::uint32_t chunks) {
    const auto fid = nn.create_file("d", chunks * kDefaultChunkSize, policy, rng);
    return single_input_tasks(nn, {fid});
  }

  dfs::NameNode nn;
  dfs::RoundRobinPlacement policy;  // deterministic layout
  Rng rng;
  sim::ClusterParams params;
};

TEST_F(ExecutorFixture, ExecutesEveryTaskExactlyOnce) {
  const auto tasks = make_tasks(8);
  sim::Cluster cluster(4, params);
  StaticAssignmentSource source(rank_interval_assignment(8, 4));
  const auto result = execute(cluster, nn, tasks, source, rng);
  EXPECT_EQ(result.tasks_executed, 8u);
  EXPECT_EQ(result.trace.size(), 8u);  // one read per single-input task
  // Every chunk appears exactly once in the trace.
  std::vector<int> seen(8, 0);
  for (const auto& r : result.trace.records()) ++seen[r.chunk];
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST_F(ExecutorFixture, ReadsAreSequentialPerProcess) {
  const auto tasks = make_tasks(8);
  sim::Cluster cluster(4, params);
  StaticAssignmentSource source(rank_interval_assignment(8, 4));
  const auto result = execute(cluster, nn, tasks, source, rng);
  // Per process, a read is issued exactly when the previous one ends.
  std::vector<std::vector<const sim::ReadRecord*>> per_proc(4);
  for (const auto& r : result.trace.records()) per_proc[r.process].push_back(&r);
  for (auto& list : per_proc) {
    std::sort(list.begin(), list.end(), [](auto* a, auto* b) {
      return a->issue_time < b->issue_time;
    });
    for (std::size_t i = 1; i < list.size(); ++i)
      EXPECT_DOUBLE_EQ(list[i]->issue_time, list[i - 1]->end_time);
  }
}

TEST_F(ExecutorFixture, MakespanIsMaxFinishTime) {
  const auto tasks = make_tasks(8);
  sim::Cluster cluster(4, params);
  StaticAssignmentSource source(rank_interval_assignment(8, 4));
  const auto result = execute(cluster, nn, tasks, source, rng);
  Seconds max_finish = 0;
  for (Seconds t : result.process_finish_time) max_finish = std::max(max_finish, t);
  EXPECT_DOUBLE_EQ(result.makespan, max_finish);
  EXPECT_GE(result.makespan, result.trace.makespan());
}

TEST_F(ExecutorFixture, ComputeTimeDelaysNextTask) {
  auto tasks = make_tasks(2);
  for (auto& t : tasks) t.compute_time = 3.0;
  sim::Cluster cluster(4, params);
  // Both tasks on process 0: read(1s) + compute(3s) + read + compute.
  StaticAssignmentSource source({{0, 1}, {}, {}, {}});
  const auto result = execute(cluster, nn, tasks, source, rng);
  EXPECT_NEAR(result.process_finish_time[0], 8.0, 0.2);
}

TEST_F(ExecutorFixture, MultiInputTasksReadAllInputs) {
  auto single = make_tasks(6);
  // Re-pack into 2 tasks of 3 inputs each.
  std::vector<Task> tasks(2);
  for (int i = 0; i < 2; ++i) {
    tasks[i].id = static_cast<TaskId>(i);
    for (int k = 0; k < 3; ++k)
      tasks[i].inputs.push_back(single[static_cast<std::size_t>(i * 3 + k)].inputs[0]);
  }
  sim::Cluster cluster(4, params);
  StaticAssignmentSource source({{0}, {1}, {}, {}});
  const auto result = execute(cluster, nn, tasks, source, rng);
  EXPECT_EQ(result.tasks_executed, 2u);
  EXPECT_EQ(result.trace.size(), 6u);
}

TEST_F(ExecutorFixture, LocalReadsAreMarkedLocal) {
  const auto tasks = make_tasks(8);
  sim::Cluster cluster(4, params);
  StaticAssignmentSource source(rank_interval_assignment(8, 4));
  const auto result = execute(cluster, nn, tasks, source, rng);
  for (const auto& r : result.trace.records()) {
    EXPECT_EQ(r.local, r.serving_node == r.reader_node);
    // The server must actually hold a replica.
    EXPECT_TRUE(nn.chunk(r.chunk).has_replica_on(r.serving_node));
  }
}

TEST_F(ExecutorFixture, FewerProcessesThanNodes) {
  const auto tasks = make_tasks(4);
  sim::Cluster cluster(4, params);
  StaticAssignmentSource source(rank_interval_assignment(4, 2));
  ExecutorConfig cfg;
  cfg.process_count = 2;
  const auto result = execute(cluster, nn, tasks, source, rng, cfg);
  EXPECT_EQ(result.process_finish_time.size(), 2u);
  for (const auto& r : result.trace.records()) EXPECT_LT(r.reader_node, 2u);
}

TEST_F(ExecutorFixture, MoreProcessesThanNodesWrapAround) {
  const auto tasks = make_tasks(8);
  sim::Cluster cluster(4, params);
  StaticAssignmentSource source(rank_interval_assignment(8, 8));
  ExecutorConfig cfg;
  cfg.process_count = 8;
  const auto result = execute(cluster, nn, tasks, source, rng, cfg);
  for (const auto& r : result.trace.records())
    EXPECT_EQ(r.reader_node, r.process % 4);
}

TEST_F(ExecutorFixture, EmptyAssignmentFinishesImmediately) {
  const auto tasks = make_tasks(2);
  sim::Cluster cluster(4, params);
  StaticAssignmentSource source({{}, {}, {}, {}});
  const auto result = execute(cluster, nn, tasks, source, rng);
  EXPECT_EQ(result.tasks_executed, 0u);
  EXPECT_DOUBLE_EQ(result.makespan, 0.0);
}

TEST_F(ExecutorFixture, UnknownTaskFromSourceThrows) {
  const auto tasks = make_tasks(2);
  sim::Cluster cluster(4, params);
  StaticAssignmentSource source({{99}, {}, {}, {}});
  EXPECT_THROW(execute(cluster, nn, tasks, source, rng), std::invalid_argument);
}

}  // namespace
}  // namespace opass::runtime
