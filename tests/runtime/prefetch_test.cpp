// Depth-1 read-ahead (I/O–compute overlap) in the executor.
#include <gtest/gtest.h>

#include "runtime/executor.hpp"
#include "runtime/task_source.hpp"
#include "workload/dataset.hpp"

namespace opass::runtime {
namespace {

struct PrefetchFixture : ::testing::Test {
  PrefetchFixture()
      : nn(dfs::Topology::single_rack(4), 2, kDefaultChunkSize), rng(3) {
    params.disk_bandwidth = 64.0 * kMiB;  // 1 s per uncontended local chunk
    params.nic_bandwidth = 64.0 * kMiB;
    params.disk_beta = 0.0;
    params.seek_latency = 0.0;
    params.remote_latency = 0.0;
    params.remote_stream_cap = 0.0;
  }

  std::vector<Task> make_tasks(std::uint32_t chunks, Seconds compute) {
    const auto fid = nn.create_file("d" + std::to_string(nn.file_count()),
                                    chunks * kDefaultChunkSize, policy, rng);
    auto tasks = single_input_tasks(nn, {fid}, compute);
    return tasks;
  }

  ExecutionResult run(const std::vector<Task>& tasks, const Assignment& a, bool prefetch) {
    sim::Cluster cluster(4, params);
    StaticAssignmentSource source(a);
    ExecutorConfig cfg;
    cfg.prefetch = prefetch;
    Rng exec_rng(7);
    return execute(cluster, nn, tasks, source, exec_rng, cfg);
  }

  dfs::NameNode nn;
  dfs::RoundRobinPlacement policy;
  Rng rng;
  sim::ClusterParams params;
};

TEST_F(PrefetchFixture, AllTasksStillRunExactlyOnce) {
  const auto tasks = make_tasks(12, 0.5);
  const auto result = run(tasks, rank_interval_assignment(12, 4), true);
  EXPECT_EQ(result.tasks_executed, 12u);
  EXPECT_EQ(result.trace.size(), 12u);
  std::vector<int> seen(12, 0);
  for (const auto& r : result.trace.records()) ++seen[r.chunk];
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST_F(PrefetchFixture, OverlapHidesIoUnderCompute) {
  // Fully local assignment (round-robin layout: chunk c has a replica on
  // node c%4): 4 tasks per process, 1 s local read, 2 s compute.
  // Sequential: 4 * (1 + 2) = 12 s. Prefetch: 1 + 4*2 = 9 s (reads hidden
  // under compute).
  const auto tasks = make_tasks(16, 2.0);
  Assignment local(4);
  for (TaskId t = 0; t < 16; ++t) local[t % 4].push_back(t);
  const auto seq = run(tasks, local, false);
  const auto pre = run(tasks, local, true);
  EXPECT_GT(seq.makespan, pre.makespan + 1.5);
  EXPECT_NEAR(seq.makespan, 12.0, 0.1);
  EXPECT_NEAR(pre.makespan, 9.0, 0.1);
}

TEST_F(PrefetchFixture, NoComputeMeansNoBenefit) {
  // Pure I/O: reads cannot overlap with anything; both modes serialize the
  // process's reads and end at the same time.
  const auto tasks = make_tasks(8, 0.0);
  const auto a = rank_interval_assignment(8, 4);
  const auto seq = run(tasks, a, false);
  const auto pre = run(tasks, a, true);
  EXPECT_NEAR(seq.makespan, pre.makespan, 1e-6);
  EXPECT_EQ(pre.tasks_executed, 8u);
}

TEST_F(PrefetchFixture, SingleTaskPerProcess) {
  const auto tasks = make_tasks(4, 1.0);
  const auto result = run(tasks, rank_interval_assignment(4, 4), true);
  EXPECT_EQ(result.tasks_executed, 4u);
  // 1 s read + 1 s compute, no second task to overlap.
  EXPECT_NEAR(result.makespan, 2.0, 0.1);
}

TEST_F(PrefetchFixture, EmptyAssignmentFinishesImmediately) {
  const auto tasks = make_tasks(2, 1.0);
  const auto result = run(tasks, Assignment{{}, {}, {}, {}}, true);
  EXPECT_EQ(result.tasks_executed, 0u);
  EXPECT_DOUBLE_EQ(result.makespan, 0.0);
}

TEST_F(PrefetchFixture, MultiInputTasksPrefetchWholeTask) {
  // 2 tasks of 3 inputs each on one process: sequential = 2*(3+2) = 10 s;
  // prefetch = 3 + max(3,2) + 2 = 8 s.
  auto chunks = make_tasks(6, 0.0);
  std::vector<Task> tasks(2);
  for (int i = 0; i < 2; ++i) {
    tasks[i].id = static_cast<TaskId>(i);
    tasks[i].compute_time = 2.0;
    for (int k = 0; k < 3; ++k)
      tasks[i].inputs.push_back(chunks[static_cast<std::size_t>(3 * i + k)].inputs[0]);
  }
  const auto seq = run(tasks, Assignment{{0, 1}, {}, {}, {}}, false);
  const auto pre = run(tasks, Assignment{{0, 1}, {}, {}, {}}, true);
  EXPECT_GT(seq.makespan, pre.makespan + 1.0);
}

TEST_F(PrefetchFixture, WorksWithDynamicSource) {
  const auto tasks = make_tasks(12, 0.3);
  sim::Cluster cluster(4, params);
  Rng q(5);
  MasterWorkerSource source(12, q);
  ExecutorConfig cfg;
  cfg.prefetch = true;
  Rng exec_rng(7);
  const auto result = execute(cluster, nn, tasks, source, exec_rng, cfg);
  EXPECT_EQ(result.tasks_executed, 12u);
}

}  // namespace
}  // namespace opass::runtime
