#include "runtime/task.hpp"

#include <gtest/gtest.h>

#include "dfs/namenode.hpp"

namespace opass::runtime {
namespace {

struct TaskFixture : ::testing::Test {
  TaskFixture()
      : nn(dfs::Topology::single_rack(6), 2, kDefaultChunkSize), rng(1) {}
  dfs::NameNode nn;
  dfs::RandomPlacement policy;
  Rng rng;
};

TEST_F(TaskFixture, SingleInputTasksOnePerChunk) {
  const auto fid = nn.create_file("a", 5 * kDefaultChunkSize, policy, rng);
  const auto tasks = single_input_tasks(nn, {fid});
  ASSERT_EQ(tasks.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(tasks[i].id, i);
    ASSERT_EQ(tasks[i].inputs.size(), 1u);
    EXPECT_EQ(tasks[i].inputs[0], nn.file(fid).chunks[i]);
    EXPECT_EQ(tasks[i].compute_time, 0.0);
  }
}

TEST_F(TaskFixture, SingleInputTasksAcrossFiles) {
  const auto a = nn.create_file("a", 2 * kDefaultChunkSize, policy, rng);
  const auto b = nn.create_file("b", 3 * kDefaultChunkSize, policy, rng);
  const auto tasks = single_input_tasks(nn, {a, b}, 1.5);
  ASSERT_EQ(tasks.size(), 5u);
  for (const auto& t : tasks) EXPECT_EQ(t.compute_time, 1.5);
  // Dense task ids across file boundaries.
  for (std::uint32_t i = 0; i < 5; ++i) EXPECT_EQ(tasks[i].id, i);
}

TEST_F(TaskFixture, InputBytesSumsChunkSizes) {
  const auto fid = nn.create_file("a", 2 * kDefaultChunkSize + kMiB, policy, rng);
  Task t;
  t.inputs = nn.file(fid).chunks;
  EXPECT_EQ(t.input_bytes(nn), 2 * kDefaultChunkSize + kMiB);
}

TEST_F(TaskFixture, TotalTaskBytes) {
  const auto fid = nn.create_file("a", 4 * kDefaultChunkSize, policy, rng);
  const auto tasks = single_input_tasks(nn, {fid});
  EXPECT_EQ(total_task_bytes(nn, tasks), 4 * kDefaultChunkSize);
}

}  // namespace
}  // namespace opass::runtime
