// Randomized property tests of the NameNode balancer and re-replication.
#include <gtest/gtest.h>

#include "dfs/namenode.hpp"

namespace opass::dfs {
namespace {

TEST(BalanceProperty, BalancerConvergesOnRandomSkewedLayouts) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    Rng rng(seed);
    const std::uint32_t nodes = 8 + static_cast<std::uint32_t>(rng.uniform(12));
    NameNode nn(Topology::single_rack(nodes), 3, kDefaultChunkSize);
    // Writer-local placement with a hot writer produces a skewed layout.
    HdfsDefaultPlacement policy;
    const std::uint32_t files = 20 + static_cast<std::uint32_t>(rng.uniform(40));
    for (std::uint32_t f = 0; f < files; ++f) {
      nn.create_file("f" + std::to_string(f), kDefaultChunkSize, policy, rng,
                     static_cast<NodeId>(rng.uniform(3)));  // writers only on 0..2
    }

    nn.balance(rng, /*tolerance=*/1);
    nn.check_invariants();

    const auto counts = nn.node_chunk_counts();
    std::uint32_t hi = 0, lo = UINT32_MAX;
    for (auto c : counts) {
      hi = std::max(hi, c);
      lo = std::min(lo, c);
    }
    // Either within tolerance, or no legal move exists (every chunk on the
    // hottest node already replicated on the coldest) — with r=3 and many
    // chunks the former always holds in practice.
    EXPECT_LE(hi - lo, 2u) << "seed " << seed;
  }
}

TEST(BalanceProperty, BalancePreservesReplicationAndBytes) {
  for (std::uint64_t seed = 50; seed < 58; ++seed) {
    Rng rng(seed);
    NameNode nn(Topology::single_rack(10), 2, kDefaultChunkSize);
    HdfsDefaultPlacement policy;
    for (int f = 0; f < 30; ++f)
      nn.create_file("f" + std::to_string(f), kDefaultChunkSize, policy, rng, 0);

    const Bytes before = nn.total_file_bytes();
    Bytes replica_before = 0;
    for (Bytes b : nn.node_bytes()) replica_before += b;

    nn.balance(rng, 1);
    nn.check_invariants();

    EXPECT_EQ(nn.total_file_bytes(), before);
    Bytes replica_after = 0;
    for (Bytes b : nn.node_bytes()) replica_after += b;
    EXPECT_EQ(replica_after, replica_before);
  }
}

TEST(BalanceProperty, DecommissionThenBalanceOnRandomLayouts) {
  for (std::uint64_t seed = 100; seed < 106; ++seed) {
    Rng rng(seed);
    NameNode nn(Topology::single_rack(12), 3, kDefaultChunkSize);
    RandomPlacement policy;
    nn.create_file("big", 40 * kDefaultChunkSize, policy, rng);

    nn.decommission_node(static_cast<NodeId>(rng.uniform(12)), rng);
    nn.check_invariants();
    for (ChunkId c = 0; c < nn.chunk_count(); ++c)
      EXPECT_EQ(nn.locations(c).size(), 3u);

    nn.balance(rng, 2);
    nn.check_invariants();
  }
}

}  // namespace
}  // namespace opass::dfs
