// Path lookup, prefix listing and deletion semantics of the NameNode.
#include <gtest/gtest.h>

#include "dfs/namenode.hpp"

namespace opass::dfs {
namespace {

struct NameNodeDeleteFixture : ::testing::Test {
  NameNodeDeleteFixture() : nn(Topology::single_rack(6), 2, kDefaultChunkSize), rng(1) {}
  NameNode nn;
  RandomPlacement policy;
  Rng rng;
};

TEST_F(NameNodeDeleteFixture, FindFileByName) {
  const auto a = nn.create_file("alpha", kMiB, policy, rng);
  const auto b = nn.create_file("beta", kMiB, policy, rng);
  EXPECT_EQ(nn.find_file("alpha"), a);
  EXPECT_EQ(nn.find_file("beta"), b);
  EXPECT_EQ(nn.find_file("gamma"), NameNode::kInvalidFile);
  EXPECT_TRUE(nn.exists("alpha"));
  EXPECT_FALSE(nn.exists("gamma"));
}

TEST_F(NameNodeDeleteFixture, DuplicateNameRejected) {
  nn.create_file("dup", kMiB, policy, rng);
  EXPECT_THROW(nn.create_file("dup", kMiB, policy, rng), std::invalid_argument);
}

TEST_F(NameNodeDeleteFixture, ListPrefix) {
  nn.create_file("set/a", kMiB, policy, rng);
  nn.create_file("set/b", kMiB, policy, rng);
  nn.create_file("other", kMiB, policy, rng);
  EXPECT_EQ(nn.list_prefix("set/").size(), 2u);
  EXPECT_EQ(nn.list_prefix("").size(), 3u);
  EXPECT_TRUE(nn.list_prefix("zzz").empty());
}

TEST_F(NameNodeDeleteFixture, DeleteDropsReplicasAndName) {
  const auto fid = nn.create_file("victim", 3 * kDefaultChunkSize, policy, rng);
  const Bytes before = nn.total_file_bytes();
  nn.delete_file(fid);
  EXPECT_TRUE(nn.is_deleted(fid));
  EXPECT_FALSE(nn.exists("victim"));
  EXPECT_EQ(nn.total_file_bytes(), before - 3 * kDefaultChunkSize);
  for (ChunkId c : nn.file(fid).chunks) EXPECT_TRUE(nn.locations(c).empty());
  for (NodeId n = 0; n < nn.node_count(); ++n)
    for (ChunkId c : nn.chunks_on_node(n)) EXPECT_NE(nn.chunk(c).file, fid);
  nn.check_invariants();
}

TEST_F(NameNodeDeleteFixture, NameReusableAfterDelete) {
  const auto fid = nn.create_file("name", kMiB, policy, rng);
  nn.delete_file(fid);
  const auto fid2 = nn.create_file("name", 2 * kMiB, policy, rng);
  EXPECT_NE(fid, fid2);
  EXPECT_EQ(nn.find_file("name"), fid2);
  nn.check_invariants();
}

TEST_F(NameNodeDeleteFixture, DoubleDeleteThrows) {
  const auto fid = nn.create_file("once", kMiB, policy, rng);
  nn.delete_file(fid);
  EXPECT_THROW(nn.delete_file(fid), std::invalid_argument);
}

TEST_F(NameNodeDeleteFixture, DeleteOutOfRangeThrows) {
  EXPECT_THROW(nn.delete_file(42), std::invalid_argument);
  EXPECT_THROW(nn.is_deleted(42), std::invalid_argument);
}

TEST_F(NameNodeDeleteFixture, DeletedFilesExcludedFromListing) {
  nn.create_file("keep", kMiB, policy, rng);
  const auto fid = nn.create_file("drop", kMiB, policy, rng);
  nn.delete_file(fid);
  const auto listed = nn.list_prefix("");
  ASSERT_EQ(listed.size(), 1u);
  EXPECT_EQ(nn.file(listed[0]).name, "keep");
}

}  // namespace
}  // namespace opass::dfs
