#include "dfs/namenode.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace opass::dfs {
namespace {

NameNode make_nn(std::uint32_t nodes = 8, std::uint32_t r = 3) {
  return NameNode(Topology::single_rack(nodes), r, kDefaultChunkSize);
}

TEST(NameNode, ConstructionValidation) {
  EXPECT_THROW(NameNode(Topology::single_rack(2), 3), std::invalid_argument);
  EXPECT_THROW(NameNode(Topology::single_rack(4), 0), std::invalid_argument);
  EXPECT_THROW(NameNode(Topology::single_rack(4), 2, 0), std::invalid_argument);
}

TEST(NameNode, CreateFileSplitsIntoChunks) {
  auto nn = make_nn();
  RandomPlacement policy;
  Rng rng(3);
  const FileId fid = nn.create_file("data", 3 * kDefaultChunkSize + kMiB, policy, rng);
  const auto& f = nn.file(fid);
  EXPECT_EQ(f.size, 3 * kDefaultChunkSize + kMiB);
  ASSERT_EQ(f.chunks.size(), 4u);
  // First chunks are full size, the last carries the remainder.
  for (int i = 0; i < 3; ++i) EXPECT_EQ(nn.chunk(f.chunks[i]).size, kDefaultChunkSize);
  EXPECT_EQ(nn.chunk(f.chunks[3]).size, kMiB);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(nn.chunk(f.chunks[i]).index_in_file, i);
    EXPECT_EQ(nn.chunk(f.chunks[i]).file, fid);
  }
}

TEST(NameNode, EveryChunkHasRDistinctReplicas) {
  auto nn = make_nn(8, 3);
  RandomPlacement policy;
  Rng rng(5);
  nn.create_file("a", 10 * kDefaultChunkSize, policy, rng);
  for (ChunkId c = 0; c < nn.chunk_count(); ++c) {
    EXPECT_EQ(nn.locations(c).size(), 3u);
  }
  nn.check_invariants();
}

TEST(NameNode, RejectsEmptyFile) {
  auto nn = make_nn();
  RandomPlacement policy;
  Rng rng(5);
  EXPECT_THROW(nn.create_file("e", 0, policy, rng), std::invalid_argument);
}

TEST(NameNode, NodeInventoriesAreConsistent) {
  auto nn = make_nn(6, 2);
  RandomPlacement policy;
  Rng rng(7);
  nn.create_file("a", 20 * kDefaultChunkSize, policy, rng);
  const auto counts = nn.node_chunk_counts();
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0u), 40u);  // 20 chunks * 2
  const auto bytes = nn.node_bytes();
  Bytes total = 0;
  for (Bytes b : bytes) total += b;
  EXPECT_EQ(total, 2 * 20 * kDefaultChunkSize);
}

TEST(NameNode, TotalFileBytes) {
  auto nn = make_nn();
  RandomPlacement policy;
  Rng rng(9);
  nn.create_file("a", 5 * kMiB, policy, rng);
  nn.create_file("b", 7 * kMiB, policy, rng);
  EXPECT_EQ(nn.total_file_bytes(), 12 * kMiB);
}

TEST(NameNode, OutOfRangeAccessorsThrow) {
  auto nn = make_nn();
  EXPECT_THROW(nn.file(0), std::invalid_argument);
  EXPECT_THROW(nn.chunk(0), std::invalid_argument);
  EXPECT_THROW(nn.chunks_on_node(99), std::invalid_argument);
}

TEST(NameNode, AddNodeStartsEmpty) {
  auto nn = make_nn(4, 2);
  RandomPlacement policy;
  Rng rng(11);
  nn.create_file("a", 8 * kDefaultChunkSize, policy, rng);
  const NodeId added = nn.add_node();
  EXPECT_EQ(nn.node_count(), 5u);
  EXPECT_TRUE(nn.chunks_on_node(added).empty());
  nn.check_invariants();
}

TEST(NameNode, DecommissionReReplicates) {
  auto nn = make_nn(8, 3);
  RandomPlacement policy;
  Rng rng(13);
  nn.create_file("a", 30 * kDefaultChunkSize, policy, rng);
  const auto before = nn.chunks_on_node(2).size();
  ASSERT_GT(before, 0u);
  nn.decommission_node(2, rng);
  EXPECT_TRUE(nn.is_decommissioned(2));
  EXPECT_TRUE(nn.chunks_on_node(2).empty());
  // Replication factor restored everywhere, never on the dead node.
  for (ChunkId c = 0; c < nn.chunk_count(); ++c) {
    EXPECT_EQ(nn.locations(c).size(), 3u);
    EXPECT_FALSE(nn.chunk(c).has_replica_on(2));
  }
  nn.check_invariants();
}

TEST(NameNode, DecommissionTwiceThrows) {
  auto nn = make_nn(8, 3);
  Rng rng(13);
  nn.decommission_node(2, rng);
  EXPECT_THROW(nn.decommission_node(2, rng), std::invalid_argument);
}

TEST(NameNode, DecommissionBelowReplicationThrows) {
  auto nn = make_nn(3, 3);
  Rng rng(13);
  EXPECT_THROW(nn.decommission_node(0, rng), std::invalid_argument);
}

TEST(NameNode, BalanceTightensSpread) {
  // Start from a deliberately skewed layout (writer-local placement with a
  // fixed writer), then balance.
  auto nn = make_nn(8, 2);
  HdfsDefaultPlacement policy;
  Rng rng(17);
  for (int i = 0; i < 24; ++i)
    nn.create_file("f" + std::to_string(i), kDefaultChunkSize, policy, rng, /*writer=*/0);

  auto spread = [&] {
    const auto counts = nn.node_chunk_counts();
    std::uint32_t hi = 0, lo = UINT32_MAX;
    for (auto c : counts) {
      hi = std::max(hi, c);
      lo = std::min(lo, c);
    }
    return std::pair{hi, lo};
  };
  const auto before = spread();
  ASSERT_GT(before.first, before.second + 1);

  const auto moves = nn.balance(rng, 1);
  EXPECT_GT(moves, 0u);
  const auto after = spread();
  EXPECT_LE(after.first, after.second + 1);
  nn.check_invariants();
}

TEST(NameNode, BalanceNoopOnEvenLayout) {
  auto nn = make_nn(4, 2);
  RoundRobinPlacement policy;
  Rng rng(19);
  nn.create_file("a", 8 * kDefaultChunkSize, policy, rng);
  EXPECT_EQ(nn.balance(rng, 1), 0u);
}

TEST(NameNode, MultipleFilesGetDenseChunkIds) {
  auto nn = make_nn();
  RandomPlacement policy;
  Rng rng(23);
  const FileId a = nn.create_file("a", 2 * kDefaultChunkSize, policy, rng);
  const FileId b = nn.create_file("b", 2 * kDefaultChunkSize, policy, rng);
  EXPECT_EQ(nn.file(a).chunks, (std::vector<ChunkId>{0, 1}));
  EXPECT_EQ(nn.file(b).chunks, (std::vector<ChunkId>{2, 3}));
  EXPECT_EQ(nn.chunk_count(), 4u);
  EXPECT_EQ(nn.file_count(), 2u);
}

}  // namespace
}  // namespace opass::dfs
