#include "dfs/placement.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

namespace opass::dfs {
namespace {

class PlacementTest : public ::testing::TestWithParam<PlacementKind> {};

TEST_P(PlacementTest, ReturnsDistinctValidNodes) {
  const auto topo = Topology::uniform_racks(12, 3);
  auto policy = make_placement(GetParam());
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const auto reps = policy->place(topo, kInvalidNode, 3, rng);
    ASSERT_EQ(reps.size(), 3u);
    std::set<NodeId> distinct(reps.begin(), reps.end());
    EXPECT_EQ(distinct.size(), 3u);
    for (NodeId n : reps) EXPECT_LT(n, 12u);
  }
}

TEST_P(PlacementTest, SupportsReplicationOne) {
  const auto topo = Topology::single_rack(4);
  auto policy = make_placement(GetParam());
  Rng rng(7);
  EXPECT_EQ(policy->place(topo, kInvalidNode, 1, rng).size(), 1u);
}

TEST_P(PlacementTest, RejectsReplicationAboveClusterSize) {
  const auto topo = Topology::single_rack(2);
  auto policy = make_placement(GetParam());
  Rng rng(7);
  EXPECT_THROW(policy->place(topo, kInvalidNode, 3, rng), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PlacementTest,
                         ::testing::Values(PlacementKind::kRandom,
                                           PlacementKind::kHdfsDefault,
                                           PlacementKind::kRoundRobin,
                                           PlacementKind::kSpread),
                         [](const auto& param_info) {
                           const std::string name =
                               placement_kind_name(param_info.param);
                           return name == "hdfs-default"
                                      ? "HdfsDefault"
                                      : name == "random"
                                            ? "Random"
                                            : name == "spread" ? "Spread"
                                                               : "RoundRobin";
                         });

TEST(RandomPlacement, CoversAllNodesUniformly) {
  const auto topo = Topology::single_rack(8);
  RandomPlacement policy;
  Rng rng(11);
  std::vector<int> hits(8, 0);
  const int trials = 8000;
  for (int i = 0; i < trials; ++i)
    for (NodeId n : policy.place(topo, kInvalidNode, 3, rng)) ++hits[n];
  // Each node should hold ~ trials * 3 / 8 replicas.
  for (int h : hits) EXPECT_NEAR(h, trials * 3 / 8, trials * 0.05);
}

TEST(HdfsDefaultPlacement, FirstReplicaOnWriter) {
  const auto topo = Topology::uniform_racks(9, 3);
  HdfsDefaultPlacement policy;
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    const auto reps = policy.place(topo, /*writer=*/4, 3, rng);
    EXPECT_EQ(reps[0], 4u);
  }
}

TEST(HdfsDefaultPlacement, SecondReplicaOffRack) {
  const auto topo = Topology::uniform_racks(9, 3);
  HdfsDefaultPlacement policy;
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    const auto reps = policy.place(topo, 0, 3, rng);
    EXPECT_NE(topo.rack_of(reps[1]), topo.rack_of(reps[0]));
    // Third replica on the same rack as the second (space permitting).
    EXPECT_EQ(topo.rack_of(reps[2]), topo.rack_of(reps[1]));
    EXPECT_NE(reps[2], reps[1]);
  }
}

TEST(HdfsDefaultPlacement, DegeneratesOnSingleRack) {
  const auto topo = Topology::single_rack(5);
  HdfsDefaultPlacement policy;
  Rng rng(17);
  const auto reps = policy.place(topo, 2, 3, rng);
  EXPECT_EQ(reps[0], 2u);
  std::set<NodeId> distinct(reps.begin(), reps.end());
  EXPECT_EQ(distinct.size(), 3u);
}

TEST(RoundRobinPlacement, IsPerfectlyEven) {
  const auto topo = Topology::single_rack(6);
  RoundRobinPlacement policy;
  Rng rng(1);
  std::vector<int> hits(6, 0);
  for (int i = 0; i < 12; ++i)
    for (NodeId n : policy.place(topo, kInvalidNode, 3, rng)) ++hits[n];
  for (int h : hits) EXPECT_EQ(h, 6);  // 12 chunks * 3 / 6 nodes
}

TEST(MakePlacement, NamesRoundTrip) {
  EXPECT_STREQ(placement_kind_name(PlacementKind::kRandom), "random");
  EXPECT_STREQ(placement_kind_name(PlacementKind::kHdfsDefault), "hdfs-default");
  EXPECT_STREQ(placement_kind_name(PlacementKind::kRoundRobin), "round-robin");
  EXPECT_STREQ(placement_kind_name(PlacementKind::kSpread), "spread");
  EXPECT_EQ(make_placement(PlacementKind::kRandom)->name(), "random");
  EXPECT_EQ(make_placement(PlacementKind::kHdfsDefault)->name(), "hdfs-default");
  EXPECT_EQ(make_placement(PlacementKind::kRoundRobin)->name(), "round-robin");
  EXPECT_EQ(make_placement(PlacementKind::kSpread)->name(), "spread");
}

TEST(SpreadPlacement, AlwaysPicksTheLeastLoadedNodes) {
  const auto topo = Topology::single_rack(4);
  SpreadPlacement policy;
  Rng rng(19);
  // Ties break to the smallest id, and every placement levels the counters:
  // {0,1} -> {2,3} -> {0,1} -> ...
  EXPECT_EQ(policy.place(topo, kInvalidNode, 2, rng), (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(policy.place(topo, kInvalidNode, 2, rng), (std::vector<NodeId>{2, 3}));
  EXPECT_EQ(policy.place(topo, kInvalidNode, 2, rng), (std::vector<NodeId>{0, 1}));
}

TEST(SpreadPlacement, LayoutIsRngIndependent) {
  const auto topo = Topology::single_rack(6);
  SpreadPlacement a, b;
  Rng rng_a(1), rng_b(999);  // different streams, same deterministic layout
  for (int i = 0; i < 24; ++i)
    EXPECT_EQ(a.place(topo, kInvalidNode, 3, rng_a), b.place(topo, kInvalidNode, 3, rng_b));
}

TEST(SpreadPlacement, NewNodeAbsorbsWritesUntilCaughtUp) {
  SpreadPlacement policy;
  Rng rng(23);
  const auto small = Topology::single_rack(4);
  for (int i = 0; i < 8; ++i) policy.place(small, kInvalidNode, 2, rng);
  // Node 4 joins with zero replicas: it must appear in every placement
  // until its counter catches up with the incumbents (4 each).
  const auto grown = Topology::single_rack(5);
  for (int i = 0; i < 4; ++i) {
    const auto reps = policy.place(grown, kInvalidNode, 2, rng);
    EXPECT_TRUE(std::find(reps.begin(), reps.end(), NodeId{4}) != reps.end())
        << "joiner skipped while under-loaded, placement " << i;
  }
}

}  // namespace
}  // namespace opass::dfs
