#include "dfs/replica_choice.hpp"

#include <gtest/gtest.h>

namespace opass::dfs {
namespace {

ChunkInfo chunk_with_replicas(std::vector<NodeId> reps) {
  ChunkInfo c;
  c.size = kDefaultChunkSize;
  c.replicas = std::move(reps);
  return c;
}

TEST(ReplicaChoice, LocalPreferenceAlwaysWins) {
  const auto chunk = chunk_with_replicas({3, 7, 9});
  Rng rng(1);
  for (auto policy :
       {ReplicaChoice::kRandom, ReplicaChoice::kFirst, ReplicaChoice::kLeastLoaded}) {
    EXPECT_EQ(choose_serving_node(chunk, 7, {}, policy, rng), 7u);
  }
}

TEST(ReplicaChoice, RandomPicksOnlyReplicas) {
  const auto chunk = chunk_with_replicas({2, 4, 6});
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const NodeId n = choose_serving_node(chunk, 0, {}, ReplicaChoice::kRandom, rng);
    EXPECT_TRUE(n == 2 || n == 4 || n == 6);
  }
}

TEST(ReplicaChoice, RandomIsRoughlyUniform) {
  const auto chunk = chunk_with_replicas({2, 4, 6});
  Rng rng(5);
  int hits[3] = {0, 0, 0};
  const int trials = 30000;
  for (int i = 0; i < trials; ++i) {
    switch (choose_serving_node(chunk, 0, {}, ReplicaChoice::kRandom, rng)) {
      case 2: ++hits[0]; break;
      case 4: ++hits[1]; break;
      default: ++hits[2];
    }
  }
  for (int h : hits) EXPECT_NEAR(h, trials / 3, trials * 0.02);
}

TEST(ReplicaChoice, FirstIsDeterministic) {
  const auto chunk = chunk_with_replicas({5, 1, 3});
  Rng rng(7);
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(choose_serving_node(chunk, 0, {}, ReplicaChoice::kFirst, rng), 5u);
}

TEST(ReplicaChoice, LeastLoadedPicksMinimum) {
  const auto chunk = chunk_with_replicas({1, 2, 3});
  Rng rng(9);
  const std::vector<std::uint32_t> load{0, 9, 2, 5};
  EXPECT_EQ(choose_serving_node(chunk, 0, load, ReplicaChoice::kLeastLoaded, rng), 2u);
}

TEST(ReplicaChoice, LeastLoadedTreatsMissingLoadAsZero) {
  const auto chunk = chunk_with_replicas({1, 6});
  Rng rng(9);
  const std::vector<std::uint32_t> load{0, 4};  // node 6 beyond the vector
  EXPECT_EQ(choose_serving_node(chunk, 0, load, ReplicaChoice::kLeastLoaded, rng), 6u);
}

TEST(ReplicaChoice, NoReplicasThrows) {
  const ChunkInfo chunk;
  Rng rng(11);
  EXPECT_THROW(choose_serving_node(chunk, 0, {}, ReplicaChoice::kRandom, rng),
               std::invalid_argument);
}

TEST(ReplicaChoice, Names) {
  EXPECT_STREQ(replica_choice_name(ReplicaChoice::kRandom), "random");
  EXPECT_STREQ(replica_choice_name(ReplicaChoice::kFirst), "first");
  EXPECT_STREQ(replica_choice_name(ReplicaChoice::kLeastLoaded), "least-loaded");
}

}  // namespace
}  // namespace opass::dfs
