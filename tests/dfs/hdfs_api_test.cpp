#include "dfs/hdfs_api.hpp"

#include <gtest/gtest.h>

#include <cstring>

namespace opass::hdfs {
namespace {

struct HdfsApiFixture : ::testing::Test {
  HdfsApiFixture()
      : nn(dfs::Topology::single_rack(8), 3, 4 * kMiB)  // small chunks for tests
  {
    fs = hdfsConnect(&nn, /*local_node=*/2);
  }
  ~HdfsApiFixture() override { hdfsDisconnect(fs); }

  dfs::NameNode nn;
  hdfsFS fs = nullptr;
};

TEST_F(HdfsApiFixture, WriteThenReadBackRoundTrips) {
  hdfsFile w = hdfsOpenFile(fs, "data/a.bin", O_WRONLY_);
  ASSERT_NE(w, nullptr);
  std::vector<std::uint8_t> payload(10 * kMiB);  // spans 3 chunks of 4 MiB
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::uint8_t>(i * 31 + 7);
  EXPECT_EQ(hdfsWrite(fs, w, payload.data(), static_cast<tSize>(1 * kMiB)),
            static_cast<tSize>(1 * kMiB));
  EXPECT_EQ(hdfsWrite(fs, w, payload.data() + kMiB, static_cast<tSize>(9 * kMiB)),
            static_cast<tSize>(9 * kMiB));
  EXPECT_EQ(hdfsCloseFile(fs, w), 0);

  // Metadata landed on the NameNode: 3 chunks (4 + 4 + 2 MiB).
  const auto info = hdfsGetPathInfo(fs, "data/a.bin");
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->size, 10 * kMiB);
  const auto fid = nn.find_file("data/a.bin");
  ASSERT_EQ(nn.file(fid).chunks.size(), 3u);
  EXPECT_EQ(nn.chunk(nn.file(fid).chunks[2]).size, 2 * kMiB);

  hdfsFile r = hdfsOpenFile(fs, "data/a.bin", O_RDONLY_);
  ASSERT_NE(r, nullptr);
  std::vector<std::uint8_t> got(payload.size());
  Bytes off = 0;
  while (off < got.size()) {
    const tSize n = hdfsRead(fs, r, got.data() + off, static_cast<tSize>(3 * kMiB));
    ASSERT_GT(n, 0);
    off += static_cast<Bytes>(n);
  }
  EXPECT_EQ(hdfsRead(fs, r, got.data(), 1), 0);  // EOF
  EXPECT_EQ(got, payload);
  EXPECT_EQ(hdfsCloseFile(fs, r), 0);
}

TEST_F(HdfsApiFixture, OpenMissingForReadFails) {
  EXPECT_EQ(hdfsOpenFile(fs, "no/such", O_RDONLY_), nullptr);
}

TEST_F(HdfsApiFixture, OpenExistingForWriteFails) {
  hdfsFile w = hdfsOpenFile(fs, "x", O_WRONLY_);
  std::uint8_t b = 1;
  hdfsWrite(fs, w, &b, 1);
  hdfsCloseFile(fs, w);
  EXPECT_EQ(hdfsOpenFile(fs, "x", O_WRONLY_), nullptr);
}

TEST_F(HdfsApiFixture, PreadDoesNotMoveCursor) {
  hdfsFile w = hdfsOpenFile(fs, "p", O_WRONLY_);
  std::vector<std::uint8_t> data{10, 20, 30, 40, 50};
  hdfsWrite(fs, w, data.data(), 5);
  hdfsCloseFile(fs, w);

  hdfsFile r = hdfsOpenFile(fs, "p", O_RDONLY_);
  std::uint8_t buf[2];
  EXPECT_EQ(hdfsPread(fs, r, 3, buf, 2), 2);
  EXPECT_EQ(buf[0], 40);
  EXPECT_EQ(hdfsTell(fs, r), 0);
  EXPECT_EQ(hdfsAvailable(fs, r), 5);
  hdfsCloseFile(fs, r);
}

TEST_F(HdfsApiFixture, SeekAndTell) {
  hdfsFile w = hdfsOpenFile(fs, "s", O_WRONLY_);
  std::vector<std::uint8_t> data(100, 7);
  hdfsWrite(fs, w, data.data(), 100);
  hdfsCloseFile(fs, w);

  hdfsFile r = hdfsOpenFile(fs, "s", O_RDONLY_);
  EXPECT_EQ(hdfsSeek(fs, r, 60), 0);
  EXPECT_EQ(hdfsTell(fs, r), 60);
  EXPECT_EQ(hdfsAvailable(fs, r), 40);
  EXPECT_EQ(hdfsSeek(fs, r, 101), -1);  // beyond EOF
  EXPECT_EQ(hdfsSeek(fs, r, -1), -1);
  hdfsCloseFile(fs, r);
}

TEST_F(HdfsApiFixture, SyntheticContentForMetadataOnlyFiles) {
  // Files created directly on the NameNode read back the deterministic
  // pattern.
  dfs::RandomPlacement policy;
  Rng rng(5);
  const auto fid = nn.create_file("meta-only", 6 * kMiB, policy, rng);

  hdfsFile r = hdfsOpenFile(fs, "meta-only", O_RDONLY_);
  ASSERT_NE(r, nullptr);
  std::vector<std::uint8_t> got(64);
  EXPECT_EQ(hdfsPread(fs, r, 4 * kMiB + 10, got.data(), 64), 64);
  const auto chunk1 = nn.file(fid).chunks[1];
  for (int i = 0; i < 64; ++i)
    EXPECT_EQ(got[static_cast<std::size_t>(i)],
              synthetic_byte(chunk1, 10 + static_cast<Bytes>(i)));
  hdfsCloseFile(fs, r);
}

TEST_F(HdfsApiFixture, ExistsDeleteListDirectory) {
  for (const char* p : {"dir/a", "dir/b", "other/c"}) {
    hdfsFile w = hdfsOpenFile(fs, p, O_WRONLY_);
    std::uint8_t b = 9;
    hdfsWrite(fs, w, &b, 1);
    hdfsCloseFile(fs, w);
  }
  EXPECT_EQ(hdfsExists(fs, "dir/a"), 0);
  EXPECT_EQ(hdfsExists(fs, "dir/z"), -1);
  EXPECT_EQ(hdfsListDirectory(fs, "dir/").size(), 2u);
  EXPECT_EQ(hdfsListDirectory(fs, "").size(), 3u);

  EXPECT_EQ(hdfsDelete(fs, "dir/a"), 0);
  EXPECT_EQ(hdfsExists(fs, "dir/a"), -1);
  EXPECT_EQ(hdfsDelete(fs, "dir/a"), -1);  // double delete fails
  EXPECT_EQ(hdfsListDirectory(fs, "dir/").size(), 1u);
  EXPECT_EQ(hdfsOpenFile(fs, "dir/a", O_RDONLY_), nullptr);
  nn.check_invariants();
}

TEST_F(HdfsApiFixture, GetHostsReturnsPerBlockReplicas) {
  hdfsFile w = hdfsOpenFile(fs, "h", O_WRONLY_);
  std::vector<std::uint8_t> data(9 * kMiB, 1);  // 3 blocks
  hdfsWrite(fs, w, data.data(), static_cast<tSize>(data.size()));
  hdfsCloseFile(fs, w);

  const auto all = hdfsGetHosts(fs, "h", 0, static_cast<tOffset>(9 * kMiB));
  ASSERT_EQ(all.size(), 3u);
  for (const auto& hosts : all) EXPECT_EQ(hosts.size(), 3u);

  // Range query: only the middle block.
  const auto mid =
      hdfsGetHosts(fs, "h", static_cast<tOffset>(4 * kMiB + 1), static_cast<tOffset>(kMiB));
  ASSERT_EQ(mid.size(), 1u);
  const auto fid = nn.find_file("h");
  EXPECT_EQ(mid[0], nn.locations(nn.file(fid).chunks[1]));
}

TEST_F(HdfsApiFixture, WriterLocalFirstReplica) {
  // Writes through a connect(local_node=2) handle with HDFS-default
  // placement put the first replica on node 2.
  hdfsFS fs2 = hdfsConnect(&nn, 2, dfs::PlacementKind::kHdfsDefault);
  hdfsFile w = hdfsOpenFile(fs2, "local-write", O_WRONLY_);
  std::uint8_t b = 1;
  hdfsWrite(fs2, w, &b, 1);
  hdfsCloseFile(fs2, w);
  const auto fid = nn.find_file("local-write");
  EXPECT_EQ(nn.locations(nn.file(fid).chunks[0])[0], 2u);
  hdfsDisconnect(fs2);
}

TEST_F(HdfsApiFixture, PickServerPrefersLocal) {
  dfs::RandomPlacement policy;
  Rng rng(6);
  nn.create_file("pick", 4 * kMiB, policy, rng);
  const auto fid = nn.find_file("pick");
  const auto chunk = nn.file(fid).chunks[0];
  // Connect from a node that holds a replica: always served locally.
  const dfs::NodeId holder = nn.locations(chunk)[0];
  hdfsFS lfs = hdfsConnect(&nn, holder);
  EXPECT_EQ(hdfsPickServer(lfs, chunk), holder);
  hdfsDisconnect(lfs);
}

TEST_F(HdfsApiFixture, MiscQueries) {
  EXPECT_EQ(hdfsGetDefaultBlockSize(fs), 4 * kMiB);
  hdfsFile w = hdfsOpenFile(fs, "m", O_WRONLY_);
  std::vector<std::uint8_t> data(kMiB, 2);
  hdfsWrite(fs, w, data.data(), static_cast<tSize>(data.size()));
  hdfsCloseFile(fs, w);
  EXPECT_EQ(hdfsGetUsed(fs), 3 * kMiB);  // 1 MiB x 3 replicas
}

TEST_F(HdfsApiFixture, ClosingEmptyWriteFails) {
  hdfsFile w = hdfsOpenFile(fs, "empty", O_WRONLY_);
  EXPECT_EQ(hdfsCloseFile(fs, w), -1);
  EXPECT_EQ(hdfsExists(fs, "empty"), -1);
}

TEST_F(HdfsApiFixture, InvalidHandleOperations) {
  EXPECT_EQ(hdfsRead(fs, nullptr, nullptr, 0), -1);
  EXPECT_EQ(hdfsWrite(fs, nullptr, nullptr, 0), -1);
  EXPECT_EQ(hdfsTell(fs, nullptr), -1);
  hdfsFile w = hdfsOpenFile(fs, "closed", O_WRONLY_);
  std::uint8_t b = 1;
  hdfsWrite(fs, w, &b, 1);
  hdfsCloseFile(fs, w);
  EXPECT_EQ(hdfsWrite(fs, w, &b, 1), -1);  // write after close
  EXPECT_EQ(hdfsCloseFile(fs, w), -1);     // double close
}


TEST_F(HdfsApiFixture, RenameMovesPathKeepingData) {
  hdfsFile w = hdfsOpenFile(fs, "old/name", O_WRONLY_);
  std::vector<std::uint8_t> data{1, 2, 3, 4};
  hdfsWrite(fs, w, data.data(), 4);
  hdfsCloseFile(fs, w);

  EXPECT_EQ(hdfsRename(fs, "old/name", "new/name"), 0);
  EXPECT_EQ(hdfsExists(fs, "old/name"), -1);
  EXPECT_EQ(hdfsExists(fs, "new/name"), 0);

  hdfsFile r = hdfsOpenFile(fs, "new/name", O_RDONLY_);
  ASSERT_NE(r, nullptr);
  std::uint8_t buf[4];
  EXPECT_EQ(hdfsRead(fs, r, buf, 4), 4);
  EXPECT_EQ(buf[2], 3);
  hdfsCloseFile(fs, r);
  nn.check_invariants();
}

TEST_F(HdfsApiFixture, RenameFailures) {
  hdfsFile w = hdfsOpenFile(fs, "a", O_WRONLY_);
  std::uint8_t b = 1;
  hdfsWrite(fs, w, &b, 1);
  hdfsCloseFile(fs, w);
  hdfsFile w2 = hdfsOpenFile(fs, "b", O_WRONLY_);
  hdfsWrite(fs, w2, &b, 1);
  hdfsCloseFile(fs, w2);

  EXPECT_EQ(hdfsRename(fs, "ghost", "c"), -1);  // missing source
  EXPECT_EQ(hdfsRename(fs, "a", "b"), -1);      // target exists
  EXPECT_EQ(hdfsExists(fs, "a"), 0);            // unchanged on failure
}

TEST_F(HdfsApiFixture, OverLengthReadIsClampedNotOverrun) {
  // Regression for the fill_bytes bounds check: a read request far past the
  // stored content must clamp to the remaining bytes — never memcpy past the
  // content buffer (ASan would flag the old unchecked copy).
  hdfsFile w = hdfsOpenFile(fs, "short.bin", O_WRONLY_);
  ASSERT_NE(w, nullptr);
  std::vector<std::uint8_t> payload(100);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::uint8_t>(i);
  ASSERT_EQ(hdfsWrite(fs, w, payload.data(), 100), 100);
  ASSERT_EQ(hdfsCloseFile(fs, w), 0);

  hdfsFile r = hdfsOpenFile(fs, "short.bin", O_RDONLY_);
  ASSERT_NE(r, nullptr);
  std::vector<std::uint8_t> buf(4096, 0xee);
  // Whole-file read with a 40x over-length request: exactly 100 bytes come
  // back and the tail of the buffer is untouched.
  EXPECT_EQ(hdfsPread(fs, r, 0, buf.data(), 4096), 100);
  EXPECT_EQ(std::memcmp(buf.data(), payload.data(), 100), 0);
  EXPECT_EQ(buf[100], 0xee);
  // Over-length request starting mid-file.
  EXPECT_EQ(hdfsPread(fs, r, 60, buf.data(), 4096), 40);
  EXPECT_EQ(std::memcmp(buf.data(), payload.data() + 60, 40), 0);
  // Request starting exactly at EOF and past EOF.
  EXPECT_EQ(hdfsPread(fs, r, 100, buf.data(), 1), 0);
  EXPECT_EQ(hdfsPread(fs, r, 4096, buf.data(), 1), 0);
  hdfsCloseFile(fs, r);
}

TEST_F(HdfsApiFixture, PreadOnDeletedFileFails) {
  hdfsFile w = hdfsOpenFile(fs, "doomed", O_WRONLY_);
  std::uint8_t b = 1;
  hdfsWrite(fs, w, &b, 1);
  hdfsCloseFile(fs, w);
  hdfsFile r = hdfsOpenFile(fs, "doomed", O_RDONLY_);
  ASSERT_NE(r, nullptr);
  hdfsDelete(fs, "doomed");
  std::uint8_t buf;
  EXPECT_EQ(hdfsPread(fs, r, 0, &buf, 1), -1);
  hdfsCloseFile(fs, r);
}

}  // namespace
}  // namespace opass::hdfs
