#include "dfs/topology.hpp"

#include <gtest/gtest.h>

namespace opass::dfs {
namespace {

TEST(Topology, SingleRack) {
  const auto t = Topology::single_rack(8);
  EXPECT_EQ(t.node_count(), 8u);
  EXPECT_EQ(t.rack_count(), 1u);
  for (NodeId n = 0; n < 8; ++n) EXPECT_EQ(t.rack_of(n), 0u);
  EXPECT_EQ(t.nodes_on_rack(0).size(), 8u);
}

TEST(Topology, UniformRacksRoundRobin) {
  const auto t = Topology::uniform_racks(10, 3);
  EXPECT_EQ(t.rack_count(), 3u);
  EXPECT_EQ(t.rack_of(0), 0u);
  EXPECT_EQ(t.rack_of(1), 1u);
  EXPECT_EQ(t.rack_of(2), 2u);
  EXPECT_EQ(t.rack_of(3), 0u);
  EXPECT_EQ(t.nodes_on_rack(0).size(), 4u);  // 0, 3, 6, 9
  EXPECT_EQ(t.nodes_on_rack(2).size(), 3u);  // 2, 5, 8
}

TEST(Topology, RejectsBadShapes) {
  EXPECT_THROW(Topology::uniform_racks(0, 1), std::invalid_argument);
  EXPECT_THROW(Topology::uniform_racks(4, 0), std::invalid_argument);
  EXPECT_THROW(Topology::uniform_racks(4, 5), std::invalid_argument);
}

TEST(Topology, RackOfOutOfRangeThrows) {
  const auto t = Topology::single_rack(2);
  EXPECT_THROW(t.rack_of(2), std::invalid_argument);
  EXPECT_THROW(t.nodes_on_rack(1), std::invalid_argument);
}

TEST(Topology, AddNodeExtends) {
  auto t = Topology::single_rack(2);
  const NodeId added = t.add_node(0);
  EXPECT_EQ(added, 2u);
  EXPECT_EQ(t.node_count(), 3u);
  EXPECT_EQ(t.rack_of(2), 0u);
}

TEST(Topology, AddNodeOnNewRack) {
  auto t = Topology::single_rack(2);
  t.add_node(5);
  EXPECT_EQ(t.rack_count(), 6u);
  EXPECT_EQ(t.rack_of(2), 5u);
}

}  // namespace
}  // namespace opass::dfs
