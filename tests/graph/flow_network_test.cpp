#include "graph/flow_network.hpp"

#include <gtest/gtest.h>

namespace opass::graph {
namespace {

TEST(FlowNetwork, AddNodesReturnsFirstIndex) {
  FlowNetwork net;
  EXPECT_EQ(net.add_nodes(3), 0u);
  EXPECT_EQ(net.add_nodes(2), 3u);
  EXPECT_EQ(net.node_count(), 5u);
}

TEST(FlowNetwork, ConstructorPreallocatesNodes) {
  FlowNetwork net(4);
  EXPECT_EQ(net.node_count(), 4u);
}

TEST(FlowNetwork, AddEdgeStoresEndpointsAndCapacity) {
  FlowNetwork net(2);
  const EdgeIdx e = net.add_edge(0, 1, 7);
  EXPECT_EQ(net.edge_from(e), 0u);
  EXPECT_EQ(net.edge_to(e), 1u);
  EXPECT_EQ(net.capacity(e), 7);
  EXPECT_EQ(net.flow(e), 0);
  EXPECT_EQ(net.edge_count(), 1u);
}

TEST(FlowNetwork, RejectsBadEndpoints) {
  FlowNetwork net(2);
  EXPECT_THROW(net.add_edge(0, 5, 1), std::invalid_argument);
  EXPECT_THROW(net.add_edge(5, 0, 1), std::invalid_argument);
}

TEST(FlowNetwork, RejectsNegativeCapacity) {
  FlowNetwork net(2);
  EXPECT_THROW(net.add_edge(0, 1, -1), std::invalid_argument);
}

TEST(FlowNetwork, PushMovesResidualCapacity) {
  FlowNetwork net(2);
  const EdgeIdx e = net.add_edge(0, 1, 5);
  net.push(e * 2, 3);  // forward half-edge
  EXPECT_EQ(net.flow(e), 3);
  EXPECT_EQ(net.residual_capacity(e * 2), 2);
  EXPECT_EQ(net.residual_capacity(e * 2 + 1), 3);
}

TEST(FlowNetwork, PushBeyondCapacityThrows) {
  FlowNetwork net(2);
  const EdgeIdx e = net.add_edge(0, 1, 5);
  EXPECT_THROW(net.push(e * 2, 6), std::logic_error);
}

TEST(FlowNetwork, ResetFlowRestoresCapacities) {
  FlowNetwork net(2);
  const EdgeIdx e = net.add_edge(0, 1, 5);
  net.push(e * 2, 5);
  net.reset_flow();
  EXPECT_EQ(net.flow(e), 0);
  EXPECT_EQ(net.residual_capacity(e * 2), 5);
}

TEST(FlowNetwork, AdjacencyContainsBothDirections) {
  FlowNetwork net(2);
  net.add_edge(0, 1, 1);
  EXPECT_EQ(net.residual_adjacency(0).size(), 1u);
  EXPECT_EQ(net.residual_adjacency(1).size(), 1u);  // the residual reverse
}

TEST(FlowNetwork, AdjacencyPreservesInsertionOrder) {
  // The CSR finalize must keep each node's half-edges in insertion order so
  // solver traversals stay deterministic.
  FlowNetwork net(4);
  const EdgeIdx a = net.add_edge(0, 1, 1);
  const EdgeIdx b = net.add_edge(0, 2, 1);
  const EdgeIdx c = net.add_edge(0, 3, 1);
  const auto adj = net.residual_adjacency(0);
  ASSERT_EQ(adj.size(), 3u);
  EXPECT_EQ(adj[0], a * 2);
  EXPECT_EQ(adj[1], b * 2);
  EXPECT_EQ(adj[2], c * 2);
}

TEST(FlowNetwork, AddEdgeAfterAdjacencyReadRebuildsCsr) {
  // Reading adjacency finalizes the CSR; a later add_edge must invalidate
  // and rebuild it.
  FlowNetwork net(3);
  net.add_edge(0, 1, 1);
  EXPECT_EQ(net.residual_adjacency(0).size(), 1u);
  net.add_edge(0, 2, 1);
  EXPECT_EQ(net.residual_adjacency(0).size(), 2u);
  EXPECT_EQ(net.residual_adjacency(2).size(), 1u);
}

TEST(FlowNetwork, ClearResetsStateAndAllowsReuse) {
  FlowNetwork net(4);
  net.add_edge(0, 1, 5);
  net.add_edge(1, 2, 5);
  EXPECT_EQ(net.residual_adjacency(1).size(), 2u);

  net.clear(2);
  EXPECT_EQ(net.node_count(), 2u);
  EXPECT_EQ(net.edge_count(), 0u);
  EXPECT_EQ(net.residual_adjacency(0).size(), 0u);

  const EdgeIdx e = net.add_edge(0, 1, 3);
  EXPECT_EQ(net.capacity(e), 3);
  EXPECT_EQ(net.flow(e), 0);
  EXPECT_EQ(net.residual_adjacency(0).size(), 1u);
  EXPECT_THROW(net.add_edge(0, 3, 1), std::invalid_argument);  // old nodes gone
}

}  // namespace
}  // namespace opass::graph
