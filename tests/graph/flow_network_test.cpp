#include "graph/flow_network.hpp"

#include <gtest/gtest.h>

namespace opass::graph {
namespace {

TEST(FlowNetwork, AddNodesReturnsFirstIndex) {
  FlowNetwork net;
  EXPECT_EQ(net.add_nodes(3), 0u);
  EXPECT_EQ(net.add_nodes(2), 3u);
  EXPECT_EQ(net.node_count(), 5u);
}

TEST(FlowNetwork, ConstructorPreallocatesNodes) {
  FlowNetwork net(4);
  EXPECT_EQ(net.node_count(), 4u);
}

TEST(FlowNetwork, AddEdgeStoresEndpointsAndCapacity) {
  FlowNetwork net(2);
  const EdgeIdx e = net.add_edge(0, 1, 7);
  EXPECT_EQ(net.edge_from(e), 0u);
  EXPECT_EQ(net.edge_to(e), 1u);
  EXPECT_EQ(net.capacity(e), 7);
  EXPECT_EQ(net.flow(e), 0);
  EXPECT_EQ(net.edge_count(), 1u);
}

TEST(FlowNetwork, RejectsBadEndpoints) {
  FlowNetwork net(2);
  EXPECT_THROW(net.add_edge(0, 5, 1), std::invalid_argument);
  EXPECT_THROW(net.add_edge(5, 0, 1), std::invalid_argument);
}

TEST(FlowNetwork, RejectsNegativeCapacity) {
  FlowNetwork net(2);
  EXPECT_THROW(net.add_edge(0, 1, -1), std::invalid_argument);
}

TEST(FlowNetwork, PushMovesResidualCapacity) {
  FlowNetwork net(2);
  const EdgeIdx e = net.add_edge(0, 1, 5);
  net.push(e * 2, 3);  // forward half-edge
  EXPECT_EQ(net.flow(e), 3);
  EXPECT_EQ(net.residual_capacity(e * 2), 2);
  EXPECT_EQ(net.residual_capacity(e * 2 + 1), 3);
}

TEST(FlowNetwork, PushBeyondCapacityThrows) {
  FlowNetwork net(2);
  const EdgeIdx e = net.add_edge(0, 1, 5);
  EXPECT_THROW(net.push(e * 2, 6), std::logic_error);
}

TEST(FlowNetwork, ResetFlowRestoresCapacities) {
  FlowNetwork net(2);
  const EdgeIdx e = net.add_edge(0, 1, 5);
  net.push(e * 2, 5);
  net.reset_flow();
  EXPECT_EQ(net.flow(e), 0);
  EXPECT_EQ(net.residual_capacity(e * 2), 5);
}

TEST(FlowNetwork, AdjacencyContainsBothDirections) {
  FlowNetwork net(2);
  net.add_edge(0, 1, 1);
  EXPECT_EQ(net.residual_adjacency(0).size(), 1u);
  EXPECT_EQ(net.residual_adjacency(1).size(), 1u);  // the residual reverse
}

}  // namespace
}  // namespace opass::graph
