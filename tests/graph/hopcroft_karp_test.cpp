#include "graph/hopcroft_karp.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/max_flow.hpp"

namespace opass::graph {
namespace {

TEST(HopcroftKarp, EmptyGraph) {
  BipartiteGraph g(3, 3);
  const auto m = hopcroft_karp(g);
  EXPECT_EQ(m.size, 0u);
  for (auto v : m.match_left) EXPECT_EQ(v, MatchingResult::kUnmatched);
}

TEST(HopcroftKarp, PerfectMatchingOnIdentity) {
  BipartiteGraph g(4, 4);
  for (std::uint32_t i = 0; i < 4; ++i) g.add_edge(i, i, 1);
  const auto m = hopcroft_karp(g);
  EXPECT_EQ(m.size, 4u);
  for (std::uint32_t i = 0; i < 4; ++i) EXPECT_EQ(m.match_left[i], i);
}

TEST(HopcroftKarp, RequiresAugmentingPath) {
  // l0-{r0,r1}, l1-{r0}: greedy l0->r0 must be undone.
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0, 1);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 0, 1);
  const auto m = hopcroft_karp(g);
  EXPECT_EQ(m.size, 2u);
  EXPECT_EQ(m.match_left[1], 0u);
  EXPECT_EQ(m.match_left[0], 1u);
}

TEST(HopcroftKarp, StarGraphMatchesOne) {
  // One left vertex connected to many rights can match only once.
  BipartiteGraph g(1, 5);
  for (std::uint32_t r = 0; r < 5; ++r) g.add_edge(0, r, 1);
  EXPECT_EQ(hopcroft_karp(g).size, 1u);
}

TEST(HopcroftKarp, MatchArraysAreConsistent) {
  Rng rng(3);
  BipartiteGraph g(8, 10);
  for (int i = 0; i < 30; ++i)
    g.add_edge(static_cast<std::uint32_t>(rng.uniform(8)),
               static_cast<std::uint32_t>(rng.uniform(10)), 1);
  const auto m = hopcroft_karp(g);
  std::uint32_t count = 0;
  for (std::uint32_t l = 0; l < 8; ++l) {
    if (m.match_left[l] == MatchingResult::kUnmatched) continue;
    EXPECT_EQ(m.match_right[m.match_left[l]], l);
    ++count;
  }
  EXPECT_EQ(count, m.size);
}

TEST(HopcroftKarp, AgreesWithUnitCapacityMaxFlow) {
  // Property: max-cardinality matching == max-flow on the unit network.
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    const auto nl = static_cast<std::uint32_t>(2 + rng.uniform(10));
    const auto nr = static_cast<std::uint32_t>(2 + rng.uniform(10));
    BipartiteGraph g(nl, nr);
    const int edges = static_cast<int>(nl * 2);
    for (int i = 0; i < edges; ++i)
      g.add_edge(static_cast<std::uint32_t>(rng.uniform(nl)),
                 static_cast<std::uint32_t>(rng.uniform(nr)), 1);

    FlowNetwork net(nl + nr + 2);
    const NodeIdx s = nl + nr, t = nl + nr + 1;
    for (std::uint32_t l = 0; l < nl; ++l) net.add_edge(s, l, 1);
    for (std::uint32_t r = 0; r < nr; ++r) net.add_edge(nl + r, t, 1);
    for (const auto& e : g.edges()) net.add_edge(e.left, nl + e.right, 1);

    EXPECT_EQ(static_cast<Cap>(hopcroft_karp(g).size), dinic(net, s, t)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace opass::graph
