#include "graph/bipartite_graph.hpp"

#include <gtest/gtest.h>

namespace opass::graph {
namespace {

TEST(BipartiteGraph, CountsAndEdges) {
  BipartiteGraph g(2, 3);
  EXPECT_EQ(g.left_count(), 2u);
  EXPECT_EQ(g.right_count(), 3u);
  EXPECT_EQ(g.edge_count(), 0u);
  g.add_edge(0, 2, 100);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.edge(0).left, 0u);
  EXPECT_EQ(g.edge(0).right, 2u);
  EXPECT_EQ(g.edge(0).weight, 100u);
}

TEST(BipartiteGraph, AdjacencyIndexes) {
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0, 1);
  g.add_edge(0, 1, 2);
  g.add_edge(1, 1, 3);
  EXPECT_EQ(g.left_adjacency(0).size(), 2u);
  EXPECT_EQ(g.left_adjacency(1).size(), 1u);
  EXPECT_EQ(g.right_adjacency(0).size(), 1u);
  EXPECT_EQ(g.right_adjacency(1).size(), 2u);
}

TEST(BipartiteGraph, RejectsOutOfRangeVertices) {
  BipartiteGraph g(1, 1);
  EXPECT_THROW(g.add_edge(1, 0, 1), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 1, 1), std::invalid_argument);
  EXPECT_THROW(g.left_adjacency(5), std::invalid_argument);
  EXPECT_THROW(g.right_adjacency(5), std::invalid_argument);
}

TEST(BipartiteGraph, LeftWeightSums) {
  BipartiteGraph g(2, 3);
  g.add_edge(0, 0, 10);
  g.add_edge(0, 2, 30);
  g.add_edge(1, 1, 5);
  EXPECT_EQ(g.left_weight(0), 40u);
  EXPECT_EQ(g.left_weight(1), 5u);
}

TEST(BipartiteGraph, IsolatedRightCount) {
  BipartiteGraph g(2, 4);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 1, 1);
  EXPECT_EQ(g.isolated_right_count(), 3u);
}

}  // namespace
}  // namespace opass::graph
