// Parallel Dinic determinism: with a worker pool in the workspace, Dinic
// runs its per-phase blocking flows concurrently across the connected
// components of the network minus {s, t} — and must leave every edge with
// exactly the flow the serial solver assigns (see run_dinic_parallel in
// max_flow.cpp for the equivalence argument), falling back to the serial
// solver when the network doesn't decompose.
#include "graph/max_flow.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/thread_pool.hpp"

namespace opass::graph {
namespace {

/// A Fig. 5-shaped network: s -> per-file task nodes -> replica node-slots
/// -> t, decomposing into `files` components once s and t are removed.
struct Fig5Builder {
  std::uint32_t files = 6;
  std::uint32_t tasks_per_file = 8;
  std::uint32_t slots_per_file = 5;
  Cap slot_cap = 2;

  /// Node layout: 0 = s, 1 = t, then per file its task nodes and slot nodes.
  FlowNetwork build() const {
    const NodeIdx n = 2 + files * (tasks_per_file + slots_per_file);
    FlowNetwork net(n);
    NodeIdx next = 2;
    for (std::uint32_t f = 0; f < files; ++f) {
      const NodeIdx task0 = next;
      next += tasks_per_file;
      const NodeIdx slot0 = next;
      next += slots_per_file;
      for (std::uint32_t ti = 0; ti < tasks_per_file; ++ti) {
        net.add_edge(0, task0 + ti, 1);
        // Each task can land on 2 of its file's slots (replica choices).
        const std::uint32_t a = ti % slots_per_file;
        const std::uint32_t b = (ti + 1 + ti / slots_per_file) % slots_per_file;
        net.add_edge(task0 + ti, slot0 + a, 1);
        if (b != a) net.add_edge(task0 + ti, slot0 + b, 1);
      }
      for (std::uint32_t si = 0; si < slots_per_file; ++si)
        net.add_edge(slot0 + si, 1, slot_cap);
    }
    return net;
  }
};

/// Solve with kDinic through a workspace carrying `pool` (null = serial) and
/// return the total plus every edge's final flow.
std::pair<Cap, std::vector<Cap>> solve(const Fig5Builder& b, ThreadPool* pool) {
  FlowWorkspace ws;
  ws.pool = pool;
  ws.network = b.build();
  const Cap total = max_flow(ws, 0, 1, MaxFlowAlgorithm::kDinic);
  std::vector<Cap> flows(ws.network.edge_count());
  for (EdgeIdx e = 0; e < flows.size(); ++e) flows[e] = ws.network.flow(e);
  return {total, flows};
}

TEST(ParallelDinic, EdgeFlowsMatchSerialOnDecomposableNetwork) {
  Fig5Builder b;
  const auto serial = solve(b, nullptr);
  for (std::uint32_t threads : {2u, 4u, 8u}) {
    ThreadPool pool(threads);
    const auto parallel = solve(b, &pool);
    EXPECT_EQ(parallel.first, serial.first) << "threads=" << threads;
    EXPECT_EQ(parallel.second, serial.second) << "threads=" << threads;
  }
}

TEST(ParallelDinic, SkewedComponentSizesStillMatch) {
  Fig5Builder b;
  b.files = 12;
  b.tasks_per_file = 3;
  b.slots_per_file = 2;
  b.slot_cap = 1;  // infeasible tasks exist: some flow is left unmatched
  const auto serial = solve(b, nullptr);
  ThreadPool pool(4);
  const auto parallel = solve(b, &pool);
  EXPECT_EQ(parallel, serial);
}

TEST(ParallelDinic, SingleComponentFallsBackToSerial) {
  // One file => one component: the parallel entry must fall back and still
  // be exact.
  Fig5Builder b;
  b.files = 1;
  const auto serial = solve(b, nullptr);
  ThreadPool pool(4);
  const auto parallel = solve(b, &pool);
  EXPECT_EQ(parallel, serial);
}

TEST(ParallelDinic, DirectSourceSinkArcFallsBackToSerial) {
  // An s->t arc breaks the component decomposition; the solver must detect
  // it and run serially rather than mis-slice s's arcs.
  auto build = [] {
    FlowNetwork net(4);
    net.add_edge(0, 1, 5);  // s -> t directly
    net.add_edge(0, 2, 3);
    net.add_edge(2, 1, 3);
    net.add_edge(0, 3, 2);
    net.add_edge(3, 1, 2);
    return net;
  };
  FlowWorkspace serial_ws;
  serial_ws.network = build();
  const Cap serial = max_flow(serial_ws, 0, 1, MaxFlowAlgorithm::kDinic);

  ThreadPool pool(4);
  FlowWorkspace ws;
  ws.pool = &pool;
  ws.network = build();
  const Cap parallel = max_flow(ws, 0, 1, MaxFlowAlgorithm::kDinic);
  EXPECT_EQ(parallel, serial);
  EXPECT_EQ(parallel, 10);
  for (EdgeIdx e = 0; e < ws.network.edge_count(); ++e)
    EXPECT_EQ(ws.network.flow(e), serial_ws.network.flow(e)) << "edge " << e;
}

TEST(ParallelDinic, WorkspaceReuseAcrossSolvesStaysExact) {
  // Dynamic replanning reuses one warm workspace; the parallel scratch must
  // resize and re-slice correctly when the network changes shape.
  ThreadPool pool(4);
  FlowWorkspace ws;
  ws.pool = &pool;
  FlowWorkspace serial_ws;

  for (std::uint32_t files : {5u, 2u, 9u, 1u, 7u}) {
    Fig5Builder b;
    b.files = files;
    ws.network = b.build();
    serial_ws.network = b.build();
    const Cap parallel = max_flow(ws, 0, 1, MaxFlowAlgorithm::kDinic);
    const Cap serial = max_flow(serial_ws, 0, 1, MaxFlowAlgorithm::kDinic);
    EXPECT_EQ(parallel, serial) << "files=" << files;
    for (EdgeIdx e = 0; e < ws.network.edge_count(); ++e)
      EXPECT_EQ(ws.network.flow(e), serial_ws.network.flow(e))
          << "files=" << files << " edge " << e;
  }
}

}  // namespace
}  // namespace opass::graph
