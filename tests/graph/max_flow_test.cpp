#include "graph/max_flow.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace opass::graph {
namespace {

/// Both algorithms must agree on every network; parameterize all structural
/// tests over the algorithm.
class MaxFlowTest : public ::testing::TestWithParam<MaxFlowAlgorithm> {
 protected:
  Cap solve(FlowNetwork& net, NodeIdx s, NodeIdx t) {
    return max_flow(net, s, t, GetParam());
  }
};

TEST_P(MaxFlowTest, SingleEdge) {
  FlowNetwork net(2);
  net.add_edge(0, 1, 10);
  EXPECT_EQ(solve(net, 0, 1), 10);
}

TEST_P(MaxFlowTest, SeriesBottleneck) {
  FlowNetwork net(3);
  net.add_edge(0, 1, 10);
  net.add_edge(1, 2, 3);
  EXPECT_EQ(solve(net, 0, 2), 3);
}

TEST_P(MaxFlowTest, ParallelPathsSum) {
  FlowNetwork net(4);
  net.add_edge(0, 1, 4);
  net.add_edge(1, 3, 4);
  net.add_edge(0, 2, 6);
  net.add_edge(2, 3, 6);
  EXPECT_EQ(solve(net, 0, 3), 10);
}

TEST_P(MaxFlowTest, ClassicClrsNetwork) {
  // CLRS Fig 26.1: max flow 23.
  FlowNetwork net(6);
  net.add_edge(0, 1, 16);
  net.add_edge(0, 2, 13);
  net.add_edge(1, 2, 10);
  net.add_edge(2, 1, 4);
  net.add_edge(1, 3, 12);
  net.add_edge(3, 2, 9);
  net.add_edge(2, 4, 14);
  net.add_edge(4, 3, 7);
  net.add_edge(3, 5, 20);
  net.add_edge(4, 5, 4);
  EXPECT_EQ(solve(net, 0, 5), 23);
}

TEST_P(MaxFlowTest, RequiresAugmentingPathCancellation) {
  // The "diamond with a cross edge" where a greedy path must be partially
  // undone via the residual edge — the paper's reassignment cancellation.
  FlowNetwork net(4);
  net.add_edge(0, 1, 1);
  net.add_edge(0, 2, 1);
  net.add_edge(1, 2, 1);
  net.add_edge(1, 3, 1);
  net.add_edge(2, 3, 1);
  EXPECT_EQ(solve(net, 0, 3), 2);
}

TEST_P(MaxFlowTest, DisconnectedSinkIsZero) {
  FlowNetwork net(4);
  net.add_edge(0, 1, 5);
  net.add_edge(2, 3, 5);
  EXPECT_EQ(solve(net, 0, 3), 0);
}

TEST_P(MaxFlowTest, ZeroCapacityEdgeCarriesNothing) {
  FlowNetwork net(2);
  net.add_edge(0, 1, 0);
  EXPECT_EQ(solve(net, 0, 1), 0);
}

TEST_P(MaxFlowTest, FlowConservationHolds) {
  // On a random network: flow out of s == flow into t == returned value,
  // and every intermediate node conserves flow.
  Rng rng(7);
  FlowNetwork net(12);
  std::vector<EdgeIdx> edges;
  for (int i = 0; i < 60; ++i) {
    const auto u = static_cast<NodeIdx>(rng.uniform(12));
    const auto v = static_cast<NodeIdx>(rng.uniform(12));
    if (u == v) continue;
    edges.push_back(net.add_edge(u, v, static_cast<Cap>(rng.uniform(10))));
  }
  const Cap total = solve(net, 0, 11);

  std::vector<Cap> net_out(12, 0);
  for (EdgeIdx e : edges) {
    EXPECT_GE(net.flow(e), 0);
    EXPECT_LE(net.flow(e), net.capacity(e));
    net_out[net.edge_from(e)] += net.flow(e);
    net_out[net.edge_to(e)] -= net.flow(e);
  }
  EXPECT_EQ(net_out[0], total);
  EXPECT_EQ(net_out[11], -total);
  for (NodeIdx v = 1; v < 11; ++v) EXPECT_EQ(net_out[v], 0) << "node " << v;
}

TEST_P(MaxFlowTest, RejectsEqualSourceSink) {
  FlowNetwork net(2);
  EXPECT_THROW(solve(net, 0, 0), std::invalid_argument);
}

TEST_P(MaxFlowTest, RejectsOutOfRangeTerminals) {
  FlowNetwork net(2);
  EXPECT_THROW(solve(net, 0, 9), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, MaxFlowTest,
                         ::testing::Values(MaxFlowAlgorithm::kEdmondsKarp,
                                           MaxFlowAlgorithm::kDinic),
                         [](const auto& param_info) {
                           return param_info.param == MaxFlowAlgorithm::kEdmondsKarp
                                      ? "EdmondsKarp"
                                      : "Dinic";
                         });

TEST(MaxFlowAgreement, ResetFlowAllowsResolving) {
  // After reset_flow, re-running either algorithm reproduces the same value.
  FlowNetwork net(4);
  net.add_edge(0, 1, 5);
  net.add_edge(1, 3, 4);
  net.add_edge(0, 2, 3);
  net.add_edge(2, 3, 6);
  EXPECT_EQ(edmonds_karp(net, 0, 3), 7);
  net.reset_flow();
  EXPECT_EQ(dinic(net, 0, 3), 7);
  net.reset_flow();
  EXPECT_EQ(edmonds_karp(net, 0, 3), 7);
}

TEST(MaxFlowAgreement, RandomNetworksAgreeAcrossAlgorithms) {
  // Property: Edmonds-Karp and Dinic compute the same value on arbitrary
  // random networks.
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    Rng rng(seed);
    const auto nodes = static_cast<NodeIdx>(4 + rng.uniform(12));
    FlowNetwork a(nodes), b(nodes);
    const int edge_count = 3 * nodes;
    for (int i = 0; i < edge_count; ++i) {
      const auto u = static_cast<NodeIdx>(rng.uniform(nodes));
      const auto v = static_cast<NodeIdx>(rng.uniform(nodes));
      if (u == v) continue;
      const auto c = static_cast<Cap>(rng.uniform(20));
      a.add_edge(u, v, c);
      b.add_edge(u, v, c);
    }
    const Cap fa = edmonds_karp(a, 0, nodes - 1);
    const Cap fb = dinic(b, 0, nodes - 1);
    EXPECT_EQ(fa, fb) << "seed " << seed;
  }
}

TEST(FlowWorkspace, ReuseAcrossSolvesReproducesValues) {
  // One workspace, many networks: clear() + rebuild between solves must give
  // the same values as fresh networks, for both solvers.
  FlowWorkspace ws;
  for (const auto algo : {MaxFlowAlgorithm::kDinic, MaxFlowAlgorithm::kEdmondsKarp}) {
    ws.network.clear(4);
    ws.network.add_edge(0, 1, 5);
    ws.network.add_edge(1, 3, 4);
    ws.network.add_edge(0, 2, 3);
    ws.network.add_edge(2, 3, 6);
    EXPECT_EQ(max_flow(ws, 0, 3, algo), 7);

    ws.network.clear(3);
    ws.network.add_edge(0, 1, 10);
    ws.network.add_edge(1, 2, 3);
    EXPECT_EQ(max_flow(ws, 0, 2, algo), 3);
  }
}

TEST(MaxFlowNames, NameAndParseRoundTrip) {
  EXPECT_STREQ(max_flow_algorithm_name(MaxFlowAlgorithm::kDinic), "dinic");
  EXPECT_STREQ(max_flow_algorithm_name(MaxFlowAlgorithm::kEdmondsKarp), "edmonds-karp");
  EXPECT_EQ(parse_max_flow_algorithm("dinic"), MaxFlowAlgorithm::kDinic);
  EXPECT_EQ(parse_max_flow_algorithm("edmonds-karp"), MaxFlowAlgorithm::kEdmondsKarp);
  EXPECT_THROW(parse_max_flow_algorithm("ford-fulkerson"), std::invalid_argument);
}

}  // namespace
}  // namespace opass::graph
