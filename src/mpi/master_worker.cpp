#include "mpi/master_worker.hpp"

#include <algorithm>
#include <memory>

#include "common/require.hpp"

namespace opass::mpi {

namespace {

constexpr Tag kRequestTag = 1;
constexpr Tag kGrantTag = 2;
constexpr std::uint64_t kStop = UINT64_MAX;

/// Heap-pinned state machine; execute() joins before returning, so raw
/// `this` captures in simulator callbacks are safe.
class Session {
 public:
  Session(sim::Cluster& cluster, const dfs::NameNode& nn,
          const std::vector<runtime::Task>& tasks, runtime::TaskSource& source, Comm& comm,
          Rng& rng, const MasterWorkerConfig& config)
      : cluster_(cluster), nn_(nn), tasks_(tasks), source_(source), comm_(comm), rng_(rng),
        config_(config) {
    OPASS_REQUIRE(comm_.size() >= 2, "master-worker needs a master and a worker");
    workers_ = comm_.size() - 1;
    result_.exec.process_finish_time.assign(workers_, 0);
    states_.resize(workers_);
  }

  MasterWorkerResult run() {
    const Bytes sent_before = comm_.bytes_sent();
    const std::uint64_t msgs_before = comm_.messages_sent();

    master_wait();
    for (Rank w = 1; w <= workers_; ++w) request_task(w);
    cluster_.run();

    result_.scheduler_messages = comm_.messages_sent() - msgs_before;
    result_.scheduler_bytes = comm_.bytes_sent() - sent_before;
    result_.exec.makespan = 0;
    for (Seconds t : result_.exec.process_finish_time)
      result_.exec.makespan = std::max(result_.exec.makespan, t);
    return std::move(result_);
  }

 private:
  struct WorkerState {
    runtime::TaskId task = runtime::kInvalidTask;
    std::size_t next_input = 0;
  };

  // --- master side ---

  void master_wait() {
    if (stops_sent_ == workers_) return;  // every worker told to stop
    comm_.recv(0, kAnySource, kRequestTag, [this](Message msg) {
      respond(msg.source);
      master_wait();
    });
  }

  /// Decide what worker `worker` gets; a kWait source re-polls later.
  void respond(Rank worker) {
    const auto process = static_cast<runtime::ProcessId>(worker - 1);
    const auto r = source_.pull(process, cluster_.simulator().now());
    switch (r.kind) {
      case runtime::Pull::Kind::kTask:
        ++result_.exec.tasks_executed;
        comm_.send(0, worker, kGrantTag, config_.grant_bytes, r.task);
        return;
      case runtime::Pull::Kind::kWait:
        cluster_.simulator().after(r.retry_after,
                                   [this, worker](Seconds) { respond(worker); });
        return;
      case runtime::Pull::Kind::kDone:
        ++stops_sent_;
        comm_.send(0, worker, kGrantTag, config_.grant_bytes, kStop);
        return;
    }
  }

  // --- worker side ---

  void request_task(Rank worker) {
    comm_.send(worker, 0, kRequestTag, config_.request_bytes, 0);
    comm_.recv(worker, 0, kGrantTag, [this, worker](Message msg) {
      if (msg.value == kStop) {
        result_.exec.process_finish_time[worker - 1] = cluster_.simulator().now();
        return;
      }
      OPASS_REQUIRE(msg.value < tasks_.size(), "master granted an unknown task");
      WorkerState& st = states_[worker - 1];
      st.task = static_cast<runtime::TaskId>(msg.value);
      st.next_input = 0;
      read_next_input(worker);
    });
  }

  void read_next_input(Rank worker) {
    WorkerState& st = states_[worker - 1];
    const runtime::Task& task = tasks_[st.task];
    if (st.next_input >= task.inputs.size()) {
      if (task.compute_time > 0) {
        cluster_.simulator().after(task.compute_time,
                                   [this, worker](Seconds) { request_task(worker); });
      } else {
        request_task(worker);
      }
      return;
    }
    const dfs::ChunkId cid = task.inputs[st.next_input++];
    const dfs::ChunkInfo& chunk = nn_.chunk(cid);
    const dfs::NodeId reader = comm_.node_of(worker);
    const dfs::NodeId server = dfs::choose_serving_node(
        chunk, reader, cluster_.inflight_per_node(), config_.replica_choice, rng_);

    sim::ReadRecord rec;
    rec.process = worker - 1;
    rec.reader_node = reader;
    rec.serving_node = server;
    rec.chunk = cid;
    rec.bytes = chunk.size;
    rec.issue_time = cluster_.simulator().now();
    rec.local = server == reader;

    cluster_.read(reader, server, chunk.size, [this, worker, rec](Seconds end) mutable {
      rec.end_time = end;
      result_.exec.trace.add(rec);
      read_next_input(worker);
    });
  }

  sim::Cluster& cluster_;
  const dfs::NameNode& nn_;
  const std::vector<runtime::Task>& tasks_;
  runtime::TaskSource& source_;
  Comm& comm_;
  Rng& rng_;
  MasterWorkerConfig config_;
  Rank workers_ = 0;
  Rank stops_sent_ = 0;
  std::vector<WorkerState> states_;
  MasterWorkerResult result_;
};

}  // namespace

MasterWorkerResult run_master_worker(sim::Cluster& cluster, const dfs::NameNode& nn,
                                     const std::vector<runtime::Task>& tasks,
                                     runtime::TaskSource& source, Comm& comm, Rng& rng,
                                     MasterWorkerConfig config) {
  OPASS_REQUIRE(cluster.simulator().active_flows() == 0,
                "cluster must be idle before an execution");
  Session session(cluster, nn, tasks, source, comm, rng, config);
  return session.run();
}

}  // namespace opass::mpi
