// MPI-model communicator over the simulated cluster.
//
// The paper's applications are MPI programs (MPICH on Marmot): ParaView data
// servers synchronize per rendering step, and the mpiBLAST-style scheduler
// exchanges request/grant messages between a master and its slaves. This
// module provides the message-passing substrate for those patterns on top of
// the flow-level simulator: point-to-point send/recv with tag matching, and
// the collectives the workloads need (barrier, broadcast, gather).
//
// The API is continuation-passing — the discrete-event simulator owns the
// control flow, so "blocking" MPI calls become callbacks fired at the
// virtual time the operation completes. Semantics follow MPI where it
// matters here: per (source, destination, tag) ordering is FIFO, receives
// match by (source, tag) with wildcards, and collectives synchronize all
// ranks of the communicator.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "common/units.hpp"
#include "dfs/types.hpp"
#include "sim/cluster.hpp"

namespace opass::mpi {

using Rank = std::uint32_t;
using Tag = std::int32_t;

inline constexpr Rank kAnySource = UINT32_MAX;
inline constexpr Tag kAnyTag = -1;

/// A delivered message. `value` is the modelled payload (task ids, counts);
/// `bytes` is the simulated wire size that occupied the NICs.
struct Message {
  Rank source = 0;
  Tag tag = 0;
  Bytes bytes = 0;
  std::uint64_t value = 0;
  Seconds sent_at = 0;
  Seconds delivered_at = 0;
};

/// Communicator: `size()` ranks pinned to cluster nodes (rank r on node
/// placement[r]; default one rank per node).
class Comm {
 public:
  /// One rank per cluster node.
  explicit Comm(sim::Cluster& cluster);

  /// Explicit rank -> node pinning.
  Comm(sim::Cluster& cluster, std::vector<dfs::NodeId> placement);

  Rank size() const { return static_cast<Rank>(placement_.size()); }
  dfs::NodeId node_of(Rank r) const;

  /// Asynchronous send; `on_sent` (optional) fires when the message has been
  /// fully pushed onto the wire (same virtual time it becomes matchable at
  /// the destination — an eager protocol).
  void send(Rank from, Rank to, Tag tag, Bytes bytes, std::uint64_t value,
            std::function<void(Seconds)> on_sent = nullptr);

  /// Post a receive at `at_rank` for (source, tag); wildcards allowed.
  /// `on_recv(msg)` fires when a matching message is available (immediately
  /// if one already arrived). Unmatched receives queue in post order.
  void recv(Rank at_rank, Rank source, Tag tag, std::function<void(Message)> on_recv);

  /// Barrier across all ranks: `on_release(time)` fires per rank once every
  /// rank has entered. Implemented as a gather-to-0 + broadcast of release
  /// messages, so it pays realistic latency.
  void barrier(Rank rank, std::function<void(Seconds)> on_release);

  /// Broadcast `bytes`/`value` from `root` to every other rank along a
  /// binomial tree; per-rank `on_done(value, time)` fires on delivery (and
  /// immediately on the root).
  void bcast(Rank root, Bytes bytes, std::uint64_t value,
             std::function<void(Rank, std::uint64_t, Seconds)> on_done);

  /// Gather each rank's value at `root`: call contribute() once per rank;
  /// `on_gathered(values, time)` fires at the root when all have arrived.
  /// `bytes_per_rank` models each contribution's wire size.
  void gather(Rank root, Bytes bytes_per_rank,
              std::function<void(std::vector<std::uint64_t>, Seconds)> on_gathered);
  void contribute(Rank rank, std::uint64_t value);

  /// Scatter: `root` sends values[i] (wire size `bytes_per_rank`) to rank i;
  /// per-rank `on_recv(rank, value, time)` fires on delivery (immediately on
  /// the root for its own element). values.size() must equal size().
  void scatter(Rank root, Bytes bytes_per_rank, std::vector<std::uint64_t> values,
               std::function<void(Rank, std::uint64_t, Seconds)> on_recv);

  /// All-reduce of one value per rank with a binary `op` (e.g. plus, max):
  /// gather-to-0 then broadcast of the reduction. Call allreduce() once,
  /// then reduce_contribute() once per rank; every rank's `on_done` fires
  /// with the reduced value.
  void allreduce(Bytes bytes_per_rank,
                 std::function<std::uint64_t(std::uint64_t, std::uint64_t)> op,
                 std::function<void(Rank, std::uint64_t, Seconds)> on_done);
  void reduce_contribute(Rank rank, std::uint64_t value);

  /// Messages sent so far (observability for tests and overhead accounting).
  std::uint64_t messages_sent() const { return messages_sent_; }
  Bytes bytes_sent() const { return bytes_sent_; }

 private:
  struct PendingRecv {
    Rank source;
    Tag tag;
    std::function<void(Message)> on_recv;
  };

  struct Mailbox {
    std::deque<Message> arrived;
    std::deque<PendingRecv> waiting;
  };

  struct GatherState {
    Rank root = 0;
    Bytes bytes_per_rank = 0;
    std::vector<std::optional<std::uint64_t>> values;
    std::uint32_t received = 0;
    std::function<void(std::vector<std::uint64_t>, Seconds)> on_gathered;
    bool active = false;
  };

  void deliver(Rank to, Message msg);
  static bool matches(const PendingRecv& r, const Message& m);

  sim::Cluster& cluster_;
  std::vector<dfs::NodeId> placement_;
  std::vector<Mailbox> mailboxes_;
  // Barrier bookkeeping.
  std::uint32_t barrier_arrived_ = 0;
  std::vector<std::function<void(Seconds)>> barrier_waiters_;
  std::uint64_t barrier_generation_ = 0;
  GatherState gather_;
  std::uint64_t messages_sent_ = 0;
  Bytes bytes_sent_ = 0;
};

}  // namespace opass::mpi
