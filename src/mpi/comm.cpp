#include "mpi/comm.hpp"

#include "common/require.hpp"

namespace opass::mpi {

namespace {
/// Wire size of the control messages internal collectives exchange
/// (MPI envelope + tiny payload).
constexpr Bytes kControlBytes = 64;
}  // namespace

Comm::Comm(sim::Cluster& cluster) : cluster_(cluster) {
  placement_.resize(cluster.node_count());
  for (Rank r = 0; r < placement_.size(); ++r) placement_[r] = r;
  mailboxes_.resize(placement_.size());
}

Comm::Comm(sim::Cluster& cluster, std::vector<dfs::NodeId> placement)
    : cluster_(cluster), placement_(std::move(placement)) {
  OPASS_REQUIRE(!placement_.empty(), "communicator needs at least one rank");
  for (dfs::NodeId n : placement_)
    OPASS_REQUIRE(n < cluster_.node_count(), "rank pinned to unknown node");
  mailboxes_.resize(placement_.size());
}

dfs::NodeId Comm::node_of(Rank r) const {
  OPASS_REQUIRE(r < placement_.size(), "rank out of range");
  return placement_[r];
}

bool Comm::matches(const PendingRecv& r, const Message& m) {
  return (r.source == kAnySource || r.source == m.source) &&
         (r.tag == kAnyTag || r.tag == m.tag);
}

void Comm::deliver(Rank to, Message msg) {
  Mailbox& box = mailboxes_[to];
  for (auto it = box.waiting.begin(); it != box.waiting.end(); ++it) {
    if (matches(*it, msg)) {
      auto cb = std::move(it->on_recv);
      box.waiting.erase(it);
      cb(std::move(msg));
      return;
    }
  }
  box.arrived.push_back(std::move(msg));
}

void Comm::send(Rank from, Rank to, Tag tag, Bytes bytes, std::uint64_t value,
                std::function<void(Seconds)> on_sent) {
  OPASS_REQUIRE(from < size() && to < size(), "rank out of range");
  OPASS_REQUIRE(tag >= 0, "negative tags are reserved");
  ++messages_sent_;
  bytes_sent_ += bytes;
  Message msg;
  msg.source = from;
  msg.tag = tag;
  msg.bytes = bytes;
  msg.value = value;
  msg.sent_at = cluster_.simulator().now();
  cluster_.send(node_of(from), node_of(to),
                std::max<Bytes>(bytes, 1),  // envelope floor: nothing is free
                [this, to, msg, cb = std::move(on_sent)](Seconds t) mutable {
                  msg.delivered_at = t;
                  if (cb) cb(t);
                  deliver(to, std::move(msg));
                });
}

void Comm::recv(Rank at_rank, Rank source, Tag tag, std::function<void(Message)> on_recv) {
  OPASS_REQUIRE(at_rank < size(), "rank out of range");
  OPASS_REQUIRE(on_recv != nullptr, "recv needs a continuation");
  Mailbox& box = mailboxes_[at_rank];
  PendingRecv pending{source, tag, std::move(on_recv)};
  for (auto it = box.arrived.begin(); it != box.arrived.end(); ++it) {
    if (matches(pending, *it)) {
      Message msg = std::move(*it);
      box.arrived.erase(it);
      pending.on_recv(std::move(msg));
      return;
    }
  }
  box.waiting.push_back(std::move(pending));
}

void Comm::barrier(Rank rank, std::function<void(Seconds)> on_release) {
  OPASS_REQUIRE(rank < size(), "rank out of range");
  OPASS_REQUIRE(on_release != nullptr, "barrier needs a continuation");
  if (barrier_waiters_.empty()) barrier_waiters_.resize(size());
  OPASS_REQUIRE(!barrier_waiters_[rank], "rank entered the barrier twice");
  barrier_waiters_[rank] = std::move(on_release);

  // Arrival message to rank 0's node.
  ++messages_sent_;
  bytes_sent_ += kControlBytes;
  cluster_.send(node_of(rank), node_of(0), kControlBytes, [this](Seconds) {
    ++barrier_arrived_;
    if (barrier_arrived_ < size()) return;
    // Everyone arrived: release every rank with a message from rank 0.
    barrier_arrived_ = 0;
    ++barrier_generation_;
    auto waiters = std::move(barrier_waiters_);
    barrier_waiters_.clear();
    for (Rank r = 0; r < size(); ++r) {
      ++messages_sent_;
      bytes_sent_ += kControlBytes;
      cluster_.send(node_of(0), node_of(r), kControlBytes,
                    [cb = std::move(waiters[r])](Seconds t) { cb(t); });
    }
  });
}

void Comm::bcast(Rank root, Bytes bytes, std::uint64_t value,
                 std::function<void(Rank, std::uint64_t, Seconds)> on_done) {
  OPASS_REQUIRE(root < size(), "rank out of range");
  OPASS_REQUIRE(on_done != nullptr, "bcast needs a continuation");
  const Rank n = size();
  // Forward along a binomial tree in relative-rank space; each rank's
  // continuation fires on delivery, then it relays to its subtree.
  auto forward = [this, root, bytes, n, on_done](auto&& self, Rank rel, std::uint64_t v,
                                                 Seconds t) -> void {
    const Rank absolute = (root + rel) % n;
    on_done(absolute, v, t);
    for (Rank mask = 1; mask < n; mask <<= 1) {
      if (rel >= mask) continue;          // receives at the round mask = msb(rel)
      const Rank child_rel = rel + mask;  // standard binomial fan-out
      if (child_rel >= n) break;
      const Rank child_abs = (root + child_rel) % n;
      ++messages_sent_;
      bytes_sent_ += bytes;
      cluster_.send(node_of(absolute), node_of(child_abs), std::max<Bytes>(bytes, 1),
                    [self, child_rel, v](Seconds when) { self(self, child_rel, v, when); });
    }
  };
  forward(forward, 0, value, cluster_.simulator().now());
}

void Comm::gather(Rank root, Bytes bytes_per_rank,
                  std::function<void(std::vector<std::uint64_t>, Seconds)> on_gathered) {
  OPASS_REQUIRE(root < size(), "rank out of range");
  OPASS_REQUIRE(!gather_.active, "a gather is already in progress");
  gather_.root = root;
  gather_.bytes_per_rank = bytes_per_rank;
  gather_.values.assign(size(), std::nullopt);
  gather_.received = 0;
  gather_.on_gathered = std::move(on_gathered);
  gather_.active = true;
}

void Comm::contribute(Rank rank, std::uint64_t value) {
  OPASS_REQUIRE(gather_.active, "contribute() without an active gather");
  OPASS_REQUIRE(rank < size(), "rank out of range");
  OPASS_REQUIRE(!gather_.values[rank].has_value(), "rank contributed twice");
  auto complete_one = [this, rank, value](Seconds t) {
    gather_.values[rank] = value;
    if (++gather_.received < size()) return;
    std::vector<std::uint64_t> out;
    out.reserve(size());
    for (const auto& v : gather_.values) out.push_back(*v);
    gather_.active = false;
    // Detach the continuation before invoking it: it may legally start the
    // next gather, which reassigns gather_.on_gathered.
    auto cb = std::move(gather_.on_gathered);
    cb(std::move(out), t);
  };
  if (rank == gather_.root) {
    complete_one(cluster_.simulator().now());
    return;
  }
  ++messages_sent_;
  bytes_sent_ += gather_.bytes_per_rank;
  cluster_.send(node_of(rank), node_of(gather_.root),
                std::max<Bytes>(gather_.bytes_per_rank, 1), complete_one);
}

void Comm::scatter(Rank root, Bytes bytes_per_rank, std::vector<std::uint64_t> values,
                   std::function<void(Rank, std::uint64_t, Seconds)> on_recv) {
  OPASS_REQUIRE(root < size(), "rank out of range");
  OPASS_REQUIRE(values.size() == size(), "scatter needs one value per rank");
  OPASS_REQUIRE(on_recv != nullptr, "scatter needs a continuation");
  for (Rank r = 0; r < size(); ++r) {
    if (r == root) {
      on_recv(r, values[r], cluster_.simulator().now());
      continue;
    }
    ++messages_sent_;
    bytes_sent_ += bytes_per_rank;
    const std::uint64_t v = values[r];
    cluster_.send(node_of(root), node_of(r), std::max<Bytes>(bytes_per_rank, 1),
                  [on_recv, r, v](Seconds t) { on_recv(r, v, t); });
  }
}

void Comm::allreduce(Bytes bytes_per_rank,
                     std::function<std::uint64_t(std::uint64_t, std::uint64_t)> op,
                     std::function<void(Rank, std::uint64_t, Seconds)> on_done) {
  OPASS_REQUIRE(op != nullptr && on_done != nullptr, "allreduce needs op and continuation");
  // Reduce at rank 0, then broadcast the result back out.
  gather(0, bytes_per_rank,
         [this, bytes_per_rank, op = std::move(op),
          on_done = std::move(on_done)](std::vector<std::uint64_t> values, Seconds) {
           std::uint64_t acc = values[0];
           for (std::size_t i = 1; i < values.size(); ++i) acc = op(acc, values[i]);
           bcast(0, bytes_per_rank, acc,
                 [on_done](Rank r, std::uint64_t v, Seconds t) { on_done(r, v, t); });
         });
}

void Comm::reduce_contribute(Rank rank, std::uint64_t value) { contribute(rank, value); }

}  // namespace opass::mpi
