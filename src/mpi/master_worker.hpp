// Message-based master–worker execution (the mpiBLAST architecture of paper
// Sections II-B and IV-D, with real scheduler messages).
//
// runtime::execute() models the master as a zero-cost oracle (the TaskSource
// is called directly). This variant pays for scheduling explicitly: rank 0
// is the master; every worker sends a REQUEST message when idle, the master
// answers with a GRANT carrying the task id (or a STOP), the worker reads
// the task's chunks from the DFS, computes, and requests again. This is the
// substrate for quantifying the paper's Section V-C2 argument that
// "the scheduling scalability issue is less important compared to the actual
// data movement".
#pragma once

#include "dfs/namenode.hpp"
#include "dfs/replica_choice.hpp"
#include "mpi/comm.hpp"
#include "runtime/executor.hpp"
#include "runtime/task_source.hpp"

namespace opass::mpi {

/// Result of a message-based run: the usual execution result plus the
/// scheduler-traffic accounting.
struct MasterWorkerResult {
  runtime::ExecutionResult exec;
  std::uint64_t scheduler_messages = 0;
  Bytes scheduler_bytes = 0;
};

/// Knobs for the message-based master–worker.
struct MasterWorkerConfig {
  Bytes request_bytes = 64;   ///< REQUEST wire size
  Bytes grant_bytes = 128;    ///< GRANT / STOP wire size
  dfs::ReplicaChoice replica_choice = dfs::ReplicaChoice::kRandom;
};

/// Run tasks to completion: rank 0 = master (it also executes tasks between
/// dispatching — matching mpiBLAST's dedicated-master *variant* is just
/// `worker_ranks = 1..n-1`, which is what we model: the master dispatches
/// only, workers 1..size-1 execute). The TaskSource sees worker ids
/// 0..size-2 (worker rank minus one).
MasterWorkerResult run_master_worker(sim::Cluster& cluster, const dfs::NameNode& nn,
                                     const std::vector<runtime::Task>& tasks,
                                     runtime::TaskSource& source, Comm& comm, Rng& rng,
                                     MasterWorkerConfig config = {});

}  // namespace opass::mpi
