// Optional CSV dumps of figure series.
//
// Every bench binary prints its tables to stdout; when the environment
// variable OPASS_RESULTS_DIR is set, the same tables are also written as
// CSV files there (one per figure series), ready for re-plotting:
//
//   OPASS_RESULTS_DIR=results ./build/bench/fig07_single_io_times
//   # -> results/fig07_sweep.csv, results/fig07_trace.csv
#pragma once

#include <string>

#include "common/table.hpp"

namespace opass::exp {

/// Write `table` as `<OPASS_RESULTS_DIR>/<name>.csv` when the variable is
/// set; no-op otherwise. Returns true if a file was written. Creates the
/// directory if needed; throws on I/O failure (a requested dump that fails
/// should be loud).
bool maybe_write_csv(const std::string& name, const Table& table);

}  // namespace opass::exp
