#include "exp/results_io.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "common/require.hpp"

namespace opass::exp {

bool maybe_write_csv(const std::string& name, const Table& table) {
  const char* dir = std::getenv("OPASS_RESULTS_DIR");
  if (dir == nullptr || *dir == '\0') return false;
  OPASS_REQUIRE(name.find('/') == std::string::npos && !name.empty(),
                "csv name must be a bare file stem");

  std::filesystem::create_directories(dir);
  const std::filesystem::path path = std::filesystem::path(dir) / (name + ".csv");
  std::ofstream out(path, std::ios::trunc);
  OPASS_REQUIRE(out.good(), "cannot open results file: " + path.string());
  out << table.csv();
  OPASS_REQUIRE(out.good(), "failed writing results file: " + path.string());
  return true;
}

}  // namespace opass::exp
