#include "exp/experiment.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>

#include "common/require.hpp"
#include "common/thread_pool.hpp"
#include "dfs/topology.hpp"
#include "obs/collect.hpp"
#include "opass/opass.hpp"
#include "runtime/task_source.hpp"
#include "workload/dataset.hpp"

namespace opass::exp {

namespace {

/// Derived deterministic RNG streams so placement is identical across
/// methods while assignment/execution noise stays independent.
struct Streams {
  Rng placement, assign, exec, faults;
  explicit Streams(std::uint64_t seed)
      : placement(seed * 2654435761ULL + 1),
        assign(seed * 2654435761ULL + 2),
        exec(seed * 2654435761ULL + 3),
        faults(seed * 2654435761ULL + 4) {}
};

/// Heartbeat + injector pair armed on a run's cluster when the config carries
/// a fault plan. Construct before runtime::execute; the scripted events and
/// detection checks are simulator timers, so they interleave with the job's
/// reads deterministically.
struct FaultHarness {
  std::unique_ptr<sim::HeartbeatMonitor> monitor;
  std::unique_ptr<sim::FaultInjector> injector;

  FaultHarness(const ExperimentConfig& cfg, sim::Cluster& cluster, dfs::NameNode& nn,
               Rng& rng) {
    if (cfg.faults == nullptr) return;
    monitor = std::make_unique<sim::HeartbeatMonitor>(cluster, nn, /*namenode_host=*/0, rng,
                                                      cfg.heartbeat);
    injector = std::make_unique<sim::FaultInjector>(cluster, nn, *monitor, *cfg.faults);
    injector->set_probe(cfg.fault_probe);
    injector->arm();
    monitor->start(cfg.faults->horizon);
  }

  void export_stats(const ExperimentConfig& cfg) const {
    if (injector && cfg.fault_stats != nullptr) *cfg.fault_stats = injector->stats();
  }
};

dfs::NameNode make_namenode(const ExperimentConfig& cfg) {
  return dfs::NameNode(dfs::Topology::single_rack(cfg.nodes), cfg.replication,
                       cfg.chunk_size);
}

/// The run's worker pool (DESIGN.md §12): the config's borrowed pool, a pool
/// owned for the duration when the config asks for threads > 1, or nothing
/// (serial). arm() lends it to the run's simulator and executor.
struct PoolHarness {
  std::optional<ThreadPool> owned;
  ThreadPool* pool = nullptr;

  explicit PoolHarness(const ExperimentConfig& cfg) {
    OPASS_REQUIRE(cfg.threads >= 1, "ExperimentConfig.threads must be >= 1");
    if (cfg.pool != nullptr) {
      pool = cfg.pool;
    } else if (cfg.threads > 1) {
      owned.emplace(cfg.threads);
      pool = &*owned;
    }
  }

  void arm(sim::Cluster& cluster, runtime::ExecutorConfig& ec) const {
    if (pool == nullptr) return;
    cluster.simulator().set_parallelism(pool);
    ec.pool = pool;
  }

  /// Register the pool's execution profile (all wall-clock tagged, so
  /// deterministic exports are unaffected).
  void export_stats(const ExperimentConfig& cfg) const {
    if (pool != nullptr && cfg.metrics != nullptr)
      obs::collect_thread_pool(*cfg.metrics, *pool, "pool");
  }
};

/// Run the chosen Opass planner through the core::plan() facade with the
/// experiment's solver knob.
runtime::Assignment opass_assignment(const ExperimentConfig& cfg, core::PlannerKind kind,
                                     const dfs::NameNode& nn,
                                     const std::vector<runtime::Task>& tasks,
                                     const core::ProcessPlacement& placement, Rng& rng,
                                     graph::FlowWorkspace* workspace = nullptr,
                                     ThreadPool* pool = nullptr) {
  core::PlanOptions options;
  options.planner = kind;
  options.algorithm = cfg.flow_algorithm;
  options.workspace = workspace;
  options.threads = cfg.threads;
  options.pool = pool != nullptr ? pool : cfg.pool;
  auto result = core::plan({&nn, &tasks, &placement, &rng}, options);
  // Only Opass plans pass through here, so the prefix is unconditional.
  // Counters accumulate across per-step replans (ParaView); gauges keep the
  // last step's value.
  if (cfg.metrics != nullptr) obs::collect_plan(*cfg.metrics, result, "opass.planner");
  return std::move(result.assignment);
}

/// Feed a finished execution to the config's observability sinks (no-op when
/// none are set): metrics under "<method>.executor" / "<method>.cluster",
/// and the raw trace + spans copied out for trace export.
void observe_run(const ExperimentConfig& cfg, Method method,
                 const runtime::ExecutionResult& exec, const sim::Cluster& cluster) {
  if (cfg.metrics != nullptr) {
    const std::string prefix = method_name(method);
    obs::collect_execution(*cfg.metrics, exec, cfg.nodes, prefix + ".executor");
    obs::collect_cluster(*cfg.metrics, cluster, prefix + ".cluster");
  }
  if (cfg.raw != nullptr) *cfg.raw = exec;
}

/// Append one finished execution's causal spans into the config's span sink
/// (no-op when none). `tasks` must be the table the execution ran against
/// (the renumbered per-step table for ParaView steps).
void observe_spans(const ExperimentConfig& cfg, const runtime::ExecutionResult& exec,
                   const std::vector<runtime::Task>& tasks, const sim::Cluster& cluster) {
  if (cfg.spans != nullptr) obs::append_execution_spans(*cfg.spans, exec, tasks, cluster);
}

/// Fold one step/epoch execution into a run-level aggregate: traces, task
/// spans and read breakdowns concatenate (breakdowns stay index-aligned with
/// the concatenated records), finish times take the latest, stalls and
/// counters sum.
void accumulate(runtime::ExecutionResult& agg, const runtime::ExecutionResult& step) {
  for (const auto& rec : step.trace.records()) agg.trace.add(rec);
  agg.task_spans.insert(agg.task_spans.end(), step.task_spans.begin(),
                        step.task_spans.end());
  agg.read_breakdowns.insert(agg.read_breakdowns.end(), step.read_breakdowns.begin(),
                             step.read_breakdowns.end());
  if (agg.process_finish_time.size() < step.process_finish_time.size())
    agg.process_finish_time.resize(step.process_finish_time.size(), 0);
  for (std::size_t p = 0; p < step.process_finish_time.size(); ++p)
    agg.process_finish_time[p] =
        std::max(agg.process_finish_time[p], step.process_finish_time[p]);
  if (agg.barrier_stall.size() < step.barrier_stall.size())
    agg.barrier_stall.resize(step.barrier_stall.size(), 0);
  for (std::size_t p = 0; p < step.barrier_stall.size(); ++p)
    agg.barrier_stall[p] += step.barrier_stall[p];
  agg.makespan = std::max(agg.makespan, step.makespan);
  agg.tasks_executed += step.tasks_executed;
  agg.read_failures += step.read_failures;
}

RunOutput reduce(const dfs::NameNode& nn, const std::vector<runtime::Task>& tasks,
                 const runtime::ExecutionResult& exec, const core::ProcessPlacement& placement,
                 const runtime::Assignment* assignment) {
  RunOutput out;
  out.io = summarize(exec.trace.io_times());
  out.io_times = exec.trace.io_times_by_issue();
  for (Bytes b : exec.trace.bytes_served_per_node(nn.node_count()))
    out.served_mb.push_back(to_mib(b));
  out.local_fraction = exec.trace.local_fraction();
  out.makespan = exec.makespan;
  out.tasks_executed = exec.tasks_executed;
  if (assignment) {
    out.planned_local_fraction =
        core::evaluate_assignment(nn, tasks, *assignment, placement).local_fraction();
  }
  return out;
}

}  // namespace

const char* method_name(Method m) {
  return m == Method::kBaseline ? "baseline" : "opass";
}

PlannedScenario plan_single_data(const ExperimentConfig& cfg, std::uint32_t chunk_count,
                                 Method method) {
  Streams streams(cfg.seed);
  PlannedScenario sc{make_namenode(cfg), {}, {}, {}, /*single_data=*/true};
  auto policy = dfs::make_placement(cfg.placement);
  sc.tasks =
      workload::make_single_data_workload(sc.nn, chunk_count, *policy, streams.placement);
  sc.placement = core::one_process_per_node(sc.nn, cfg.nodes * cfg.processes_per_node);

  if (method == Method::kBaseline) {
    sc.assignment =
        runtime::rank_interval_assignment(static_cast<std::uint32_t>(sc.tasks.size()),
                                          static_cast<std::uint32_t>(sc.placement.size()));
  } else {
    sc.assignment = opass_assignment(cfg, core::PlannerKind::kSingleData, sc.nn, sc.tasks,
                                     sc.placement, streams.assign);
  }
  return sc;
}

PlannedScenario plan_multi_data(const ExperimentConfig& cfg, std::uint32_t task_count,
                                Method method, const workload::MultiInputSpec& spec) {
  Streams streams(cfg.seed);
  PlannedScenario sc{make_namenode(cfg), {}, {}, {}, /*single_data=*/false};
  auto policy = dfs::make_placement(cfg.placement);
  sc.tasks = workload::make_multi_input_workload(sc.nn, task_count, *policy, streams.placement,
                                                 spec);
  sc.placement = core::one_process_per_node(sc.nn, cfg.nodes * cfg.processes_per_node);

  if (method == Method::kBaseline) {
    sc.assignment = runtime::rank_interval_assignment(
        task_count, static_cast<std::uint32_t>(sc.placement.size()));
  } else {
    sc.assignment = opass_assignment(cfg, core::PlannerKind::kMultiData, sc.nn, sc.tasks,
                                     sc.placement, streams.assign);
  }
  return sc;
}

namespace {

/// Shared tail of the static-plan scenarios: replay the assignment on the
/// flow simulator and reduce the trace.
RunOutput simulate_planned(const ExperimentConfig& cfg, PlannedScenario& sc, Rng& exec_rng,
                           Rng& fault_rng, Method method) {
  sim::Cluster cluster(cfg.nodes, cfg.cluster);
  runtime::StaticAssignmentSource source(sc.assignment);
  runtime::ExecutorConfig ec;
  ec.replica_choice = cfg.replica_choice;
  ec.process_count = static_cast<std::uint32_t>(sc.placement.size());
  ec.record_read_breakdown = cfg.spans != nullptr;
  PoolHarness pool(cfg);
  pool.arm(cluster, ec);
  obs::RunTimeline timeline(cfg.timeline, cluster, ec.process_count);
  ec.probe = timeline.executor_probe();
  timeline.add_expected_bytes(runtime::total_task_bytes(sc.nn, sc.tasks));
  FaultHarness faults(cfg, cluster, sc.nn, fault_rng);
  const auto exec = runtime::execute(cluster, sc.nn, sc.tasks, source, exec_rng, ec);
  timeline.finish();
  faults.export_stats(cfg);
  pool.export_stats(cfg);
  observe_run(cfg, method, exec, cluster);
  observe_spans(cfg, exec, sc.tasks, cluster);
  return reduce(sc.nn, sc.tasks, exec, sc.placement, &sc.assignment);
}

}  // namespace

RunOutput run_single_data(const ExperimentConfig& cfg, std::uint32_t chunk_count,
                          Method method) {
  Streams streams(cfg.seed);
  auto sc = plan_single_data(cfg, chunk_count, method);
  return simulate_planned(cfg, sc, streams.exec, streams.faults, method);
}

RunOutput run_multi_data(const ExperimentConfig& cfg, std::uint32_t task_count, Method method,
                         const workload::MultiInputSpec& spec) {
  Streams streams(cfg.seed);
  auto sc = plan_multi_data(cfg, task_count, method, spec);
  return simulate_planned(cfg, sc, streams.exec, streams.faults, method);
}

RunOutput run_dynamic(const ExperimentConfig& cfg, std::uint32_t task_count, Method method,
                      const workload::GenomicsSpec& spec) {
  Streams streams(cfg.seed);
  auto nn = make_namenode(cfg);
  auto policy = dfs::make_placement(cfg.placement);
  workload::GenomicsSpec s = spec;
  s.partition_count = task_count;
  auto tasks = workload::make_genomics_workload(nn, *policy, streams.placement, s);
  const auto placement =
      core::one_process_per_node(nn, cfg.nodes * cfg.processes_per_node);

  sim::Cluster cluster(cfg.nodes, cfg.cluster);
  runtime::ExecutorConfig ec;
  ec.replica_choice = cfg.replica_choice;
  ec.process_count = static_cast<std::uint32_t>(placement.size());
  ec.record_read_breakdown = cfg.spans != nullptr;
  PoolHarness pool(cfg);
  pool.arm(cluster, ec);
  obs::RunTimeline timeline(cfg.timeline, cluster, ec.process_count);
  ec.probe = timeline.executor_probe();
  timeline.add_expected_bytes(runtime::total_task_bytes(nn, tasks));

  if (method == Method::kBaseline) {
    runtime::MasterWorkerSource source(task_count, streams.assign, /*shuffle=*/true);
    FaultHarness faults(cfg, cluster, nn, streams.faults);
    const auto exec = runtime::execute(cluster, nn, tasks, source, streams.exec, ec);
    timeline.finish();
    faults.export_stats(cfg);
    pool.export_stats(cfg);
    observe_run(cfg, method, exec, cluster);
    observe_spans(cfg, exec, tasks, cluster);
    return reduce(nn, tasks, exec, placement, nullptr);
  }
  // Opass: the matching-based guideline A*, consumed by the Section IV-D
  // master (own list first, then best-co-located steal from longest list).
  auto guideline = opass_assignment(cfg, core::PlannerKind::kSingleData, nn, tasks, placement,
                                    streams.assign, nullptr, pool.pool);
  core::OpassDynamicSource source(guideline, nn, tasks, placement);
  FaultHarness faults(cfg, cluster, nn, streams.faults);
  if (faults.injector) {
    // Membership changes feed back into the scheduler (DESIGN.md §11): a
    // detected death re-homes the dead node's pending list immediately; once
    // the layout settles again (join, recovery complete) the remaining tasks
    // are re-planned through the core::plan() facade and adopted as the new
    // guideline A*.
    faults.injector->set_membership_callback(
        [&](Seconds /*now*/, sim::MembershipEvent ev, dfs::NodeId node) {
          if (ev == sim::MembershipEvent::kNodeDead) {
            source.on_node_dead(node);
            return;
          }
          if (ev != sim::MembershipEvent::kNodeJoined &&
              ev != sim::MembershipEvent::kRecoveryComplete)
            return;
          const auto remaining = source.remaining_task_ids();
          if (remaining.empty()) return;
          // Re-plan the pending tasks (renumbered densely for the matcher,
          // mapped back to original ids for the scheduler).
          std::vector<runtime::Task> sub;
          sub.reserve(remaining.size());
          for (runtime::TaskId id : remaining) {
            runtime::Task copy = tasks[id];
            copy.id = static_cast<runtime::TaskId>(sub.size());
            sub.push_back(std::move(copy));
          }
          core::PlanOptions options;
          options.planner = core::PlannerKind::kSingleData;
          options.algorithm = cfg.flow_algorithm;
          options.pool = pool.pool;
          auto sub_assignment =
              core::plan({&nn, &sub, &placement, &streams.assign}, options).assignment;
          runtime::Assignment mapped(sub_assignment.size());
          for (std::size_t p = 0; p < sub_assignment.size(); ++p)
            for (runtime::TaskId t : sub_assignment[p]) mapped[p].push_back(remaining[t]);
          source.adopt_guideline(mapped);
        });
  }
  const auto exec = runtime::execute(cluster, nn, tasks, source, streams.exec, ec);
  timeline.finish();
  faults.export_stats(cfg);
  pool.export_stats(cfg);
  observe_run(cfg, method, exec, cluster);
  observe_spans(cfg, exec, tasks, cluster);
  if (cfg.metrics != nullptr) obs::collect_dynamic(*cfg.metrics, source, "opass.dynamic");
  auto out = reduce(nn, tasks, exec, placement, &guideline);
  return out;
}

ParaViewOutput run_paraview(const ExperimentConfig& cfg, Method method,
                            const workload::ParaViewSpec& spec) {
  Streams streams(cfg.seed);
  auto nn = make_namenode(cfg);
  auto policy = dfs::make_placement(cfg.placement);
  auto wl = workload::make_paraview_workload(nn, *policy, streams.placement, spec);
  const auto placement = core::one_process_per_node(nn);
  const auto m = static_cast<std::uint32_t>(placement.size());

  ParaViewOutput out;
  sim::Cluster cluster(cfg.nodes, cfg.cluster);
  runtime::ExecutorConfig ec;
  ec.replica_choice = cfg.replica_choice;
  ec.record_read_breakdown = cfg.spans != nullptr;
  PoolHarness pool(cfg);
  pool.arm(cluster, ec);
  // One timeline spans every rendering step; expected bytes grow per step.
  obs::RunTimeline timeline(cfg.timeline, cluster, m);
  ec.probe = timeline.executor_probe();

  runtime::ExecutionResult agg;  // run-level aggregate across rendering steps
  Bytes planned_total = 0, planned_local = 0;

  // One workspace across all rendering steps: per-step replanning reuses the
  // warmed network/solver arenas instead of reallocating them.
  graph::FlowWorkspace workspace;

  for (const auto& step : wl.steps) {
    // Tasks of this rendering step, renumbered densely for the assigners.
    std::vector<runtime::Task> step_tasks;
    step_tasks.reserve(step.size());
    for (runtime::TaskId t : step) {
      runtime::Task copy = wl.tasks[t];
      copy.id = static_cast<runtime::TaskId>(step_tasks.size());
      step_tasks.push_back(std::move(copy));
    }

    runtime::Assignment assignment;
    if (method == Method::kBaseline) {
      assignment = runtime::rank_interval_assignment(
          static_cast<std::uint32_t>(step_tasks.size()), m);
    } else {
      // Opass inside ReadXMLData(): assign this step's pieces by matching.
      assignment = opass_assignment(cfg, core::PlannerKind::kSingleData, nn, step_tasks,
                                    placement, streams.assign, &workspace, pool.pool);
    }
    const auto stats = core::evaluate_assignment(nn, step_tasks, assignment, placement);
    planned_total += stats.total_bytes;
    planned_local += stats.local_bytes;

    const Seconds step_start = cluster.simulator().now();
    timeline.add_expected_bytes(runtime::total_task_bytes(nn, step_tasks));
    runtime::StaticAssignmentSource source(assignment);
    auto exec = runtime::execute(cluster, nn, step_tasks, source, streams.exec, ec);
    out.step_times.push_back(exec.makespan - step_start);
    // Spans append per step against the step's own (renumbered) task table;
    // the aggregate's task ids would alias across steps.
    observe_spans(cfg, exec, step_tasks, cluster);
    accumulate(agg, exec);
  }

  for (Seconds t : out.step_times) out.total_time += t;
  timeline.finish();
  pool.export_stats(cfg);
  observe_run(cfg, method, agg, cluster);
  out.run.io = summarize(agg.trace.io_times());
  out.run.io_times = agg.trace.io_times_by_issue();
  for (Bytes b : agg.trace.bytes_served_per_node(nn.node_count()))
    out.run.served_mb.push_back(to_mib(b));
  out.run.local_fraction = agg.trace.local_fraction();
  out.run.makespan = out.total_time;
  out.run.tasks_executed = static_cast<std::uint32_t>(agg.trace.size());
  out.run.planned_local_fraction =
      planned_total ? static_cast<double>(planned_local) / static_cast<double>(planned_total)
                    : 0.0;
  return out;
}

IterativeOutput run_iterative(const ExperimentConfig& cfg, std::uint32_t chunk_count,
                              std::uint32_t epochs, Method method,
                              Seconds compute_per_task) {
  OPASS_REQUIRE(epochs > 0, "need at least one epoch");
  Streams streams(cfg.seed);
  auto nn = make_namenode(cfg);
  auto policy = dfs::make_placement(cfg.placement);
  auto tasks = workload::make_single_data_workload(nn, chunk_count, *policy,
                                                   streams.placement, compute_per_task);
  const auto placement = core::one_process_per_node(nn);

  PoolHarness pool(cfg);
  // The assignment is computed once, before the first epoch — for Opass this
  // is where the matching overhead is amortized across every epoch.
  runtime::Assignment assignment;
  if (method == Method::kBaseline) {
    assignment = runtime::rank_interval_assignment(static_cast<std::uint32_t>(tasks.size()),
                                                   static_cast<std::uint32_t>(placement.size()));
  } else {
    assignment = opass_assignment(cfg, core::PlannerKind::kSingleData, nn, tasks, placement,
                                  streams.assign, nullptr, pool.pool);
  }

  IterativeOutput out;
  sim::Cluster cluster(cfg.nodes, cfg.cluster);
  runtime::ExecutorConfig ec;
  ec.replica_choice = cfg.replica_choice;
  ec.record_read_breakdown = cfg.spans != nullptr;
  pool.arm(cluster, ec);
  // One timeline spans every epoch; the same dataset is owed again each pass.
  obs::RunTimeline timeline(cfg.timeline, cluster,
                            static_cast<std::uint32_t>(placement.size()));
  ec.probe = timeline.executor_probe();
  runtime::ExecutionResult agg;  // run-level aggregate across epochs

  for (std::uint32_t e = 0; e < epochs; ++e) {
    const Seconds epoch_start = cluster.simulator().now();
    timeline.add_expected_bytes(runtime::total_task_bytes(nn, tasks));
    runtime::StaticAssignmentSource source(assignment);
    const auto exec = runtime::execute(cluster, nn, tasks, source, streams.exec, ec);
    out.epoch_times.push_back(exec.makespan - epoch_start);
    observe_spans(cfg, exec, tasks, cluster);
    accumulate(agg, exec);
  }
  for (Seconds t : out.epoch_times) out.total_time += t;
  timeline.finish();
  pool.export_stats(cfg);
  observe_run(cfg, method, agg, cluster);

  out.run.io = summarize(agg.trace.io_times());
  out.run.io_times = agg.trace.io_times_by_issue();
  for (Bytes b : agg.trace.bytes_served_per_node(nn.node_count()))
    out.run.served_mb.push_back(to_mib(b));
  out.run.local_fraction = agg.trace.local_fraction();
  out.run.makespan = out.total_time;
  out.run.tasks_executed = static_cast<std::uint32_t>(agg.trace.size());
  out.run.planned_local_fraction =
      core::evaluate_assignment(nn, tasks, assignment, placement).local_fraction();
  return out;
}

}  // namespace opass::exp
