// Experiment harness: one call per paper scenario, baseline vs Opass.
//
// Every experiment follows the same pipeline the paper uses:
//   1. stand up an HDFS-model namespace over an m-node cluster and store the
//      workload's dataset(s) (placement seeded => identical layout for both
//      methods);
//   2. compute a task assignment — the scenario's baseline or Opass;
//   3. replay the parallel execution on the flow-level cluster simulator;
//   4. reduce the trace to the series the paper plots.
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "common/units.hpp"
#include "dfs/namenode.hpp"
#include "dfs/placement.hpp"
#include "dfs/replica_choice.hpp"
#include "graph/max_flow.hpp"
#include "obs/metrics.hpp"
#include "obs/spans.hpp"
#include "obs/timeline.hpp"
#include "opass/locality_graph.hpp"
#include "runtime/executor.hpp"
#include "runtime/static_partitioner.hpp"
#include "sim/cluster.hpp"
#include "sim/fault_plan.hpp"
#include "sim/heartbeat.hpp"
#include "workload/genomics.hpp"
#include "workload/multi_input.hpp"
#include "workload/paraview.hpp"

namespace opass::exp {

/// Assignment method under test.
enum class Method {
  kBaseline,  ///< rank-interval static / random-order master–worker
  kOpass,     ///< matching-based assignment (Sections IV-B/C/D)
};

const char* method_name(Method m);

/// Shared experiment knobs.
struct ExperimentConfig {
  std::uint32_t nodes = 64;
  std::uint32_t replication = 3;
  Bytes chunk_size = kDefaultChunkSize;
  std::uint64_t seed = 42;
  dfs::PlacementKind placement = dfs::PlacementKind::kRandom;
  dfs::ReplicaChoice replica_choice = dfs::ReplicaChoice::kRandom;
  /// Parallel processes per node (Marmot has 2 cores per node; the paper
  /// runs one process per node, our default).
  std::uint32_t processes_per_node = 1;
  /// Max-flow solver used by the Opass flow planners. Both solvers match the
  /// same (maximum) number of tasks locally; the matched edge sets may
  /// differ, so fix this when byte-identical plans matter.
  graph::MaxFlowAlgorithm flow_algorithm = graph::MaxFlowAlgorithm::kDinic;
  /// Worker-pool opt-in (DESIGN.md §12): with more than one lane, each run
  /// drives the simulator's incremental re-leveling, the executor's wave
  /// issue and the Opass flow solves through a deterministic pool. Every
  /// output — plans, traces, metrics, timelines — is byte-identical to
  /// threads = 1 (the determinism contract; enforced by ctest). `pool` lends
  /// an existing pool (takes precedence); otherwise `threads > 1` spins one
  /// up per run_* call. Default 1 = today's serial path.
  std::uint32_t threads = 1;
  ThreadPool* pool = nullptr;
  sim::ClusterParams cluster;
  /// Optional observability sinks (borrowed; must outlive the run call).
  /// When `metrics` is set, every run_* reduces the execution, the cluster's
  /// resource accounting and (for Opass) the planner into it via the obs
  /// collectors, prefixed with the method name ("baseline." / "opass.") so
  /// a comparison run fits in one registry. When `raw` is set, the full
  /// execution result (trace + task spans, aggregated across steps/epochs
  /// for the multi-phase scenarios) is copied out — the input the Chrome
  /// trace exporter (obs/chrome_trace.hpp) wants.
  obs::MetricsRegistry* metrics = nullptr;
  runtime::ExecutionResult* raw = nullptr;
  /// When set, the run records every read's causal breakdown (admission
  /// wait, positioning, binding-resource intervals — DESIGN.md §13) and
  /// appends the execution's span log: task/read/wait spans with exact
  /// attribution tilings, per step for ParaView and per epoch for the
  /// iterative scenario. Observation only — the simulated schedule is
  /// byte-identical with or without the sink.
  obs::SpanLog* spans = nullptr;
  /// When set, the run streams time series into the recorder (per-node serve
  /// rate and in-flight reads, per-process queue depth, bytes remaining —
  /// see obs/timeline.hpp) and finish()es it at the run's end. One recorder
  /// covers one run: a `--method=both` comparison needs two.
  obs::TimelineRecorder* timeline = nullptr;
  /// Optional fault/churn scenario (borrowed; must outlive the run). When
  /// set, run_single_data / run_multi_data / run_dynamic stand up a
  /// heartbeat monitor (beats travel to node 0) and arm the plan on the
  /// run's cluster before execution, so crashes abort in-flight reads,
  /// stragglers re-level active transfers, and re-replication traffic
  /// competes with the job's reads. The dynamic Opass scheduler reacts to
  /// membership events (dead-node list re-homing + a core::plan() re-plan of
  /// the remaining tasks). run_paraview / run_iterative ignore the plan.
  const sim::FaultPlan* faults = nullptr;
  /// Fault-lifecycle observer wired into the injector (borrowed), e.g.
  /// obs::FaultEventLog. Only read when `faults` is set.
  sim::FaultProbe* fault_probe = nullptr;
  /// When set (and `faults` is set), the injector's final counters are
  /// copied out after the run.
  sim::FaultStats* fault_stats = nullptr;
  /// Detection cadence used when `faults` is set.
  sim::HeartbeatParams heartbeat;
};

/// Reduced results of one run.
struct RunOutput {
  Summary io;                        ///< per-chunk-read I/O time stats (s)
  std::vector<double> io_times;      ///< per-op I/O times in issue order (s)
  std::vector<double> served_mb;     ///< bytes served per node (MiB)
  double local_fraction = 0;         ///< observed locally served op fraction
  double planned_local_fraction = 0; ///< assignment-level local byte fraction
  Seconds makespan = 0;              ///< parallel completion time
  std::uint32_t tasks_executed = 0;
};

/// The statically planned part of a scenario, materialized for tooling
/// (`opass_cli --audit`, the plan auditor) and tests: the namespace, the
/// workload, the process placement and the method's assignment, built
/// exactly as the corresponding run_* harness builds them — same seed
/// derivation, hence the same layout and the same plan the simulator would
/// execute.
struct PlannedScenario {
  dfs::NameNode nn;
  std::vector<runtime::Task> tasks;
  core::ProcessPlacement placement;
  runtime::Assignment assignment;
  bool single_data = false;  ///< every task reads exactly one chunk
};

/// Build (without simulating) the single-data scenario's plan.
PlannedScenario plan_single_data(const ExperimentConfig& cfg, std::uint32_t chunk_count,
                                 Method method);

/// Build (without simulating) the multi-data scenario's plan.
PlannedScenario plan_multi_data(const ExperimentConfig& cfg, std::uint32_t task_count,
                                Method method, const workload::MultiInputSpec& spec = {});

/// Single-data access (Figs. 7 and 8): `chunk_count` one-chunk tasks, equal
/// shares per process. Baseline = ParaView rank-interval assignment.
RunOutput run_single_data(const ExperimentConfig& cfg, std::uint32_t chunk_count, Method method);

/// Multi-data access (Figs. 9 and 10): `task_count` tasks with 30/20/10 MB
/// inputs. Baseline = rank-interval over tasks; Opass = Algorithm 1.
RunOutput run_multi_data(const ExperimentConfig& cfg, std::uint32_t task_count, Method method,
                         const workload::MultiInputSpec& spec = {});

/// Dynamic access (Fig. 11): master–worker dispatch over single-input tasks.
/// Baseline = random-order global queue; Opass = Section IV-D lists+stealing.
RunOutput run_dynamic(const ExperimentConfig& cfg, std::uint32_t task_count, Method method,
                      const workload::GenomicsSpec& spec = {});

/// ParaView result: overall trace plus per-step makespans.
struct ParaViewOutput {
  RunOutput run;                      ///< aggregated over all steps
  std::vector<Seconds> step_times;    ///< wall time per rendering step
  Seconds total_time = 0;             ///< sum of step times (the 167 s vs 98 s)
};

/// ParaView MultiBlock pipeline (Fig. 12): rendering steps with a barrier
/// between steps; per-step assignment baseline vs Opass.
ParaViewOutput run_paraview(const ExperimentConfig& cfg, Method method,
                            const workload::ParaViewSpec& spec = {});

/// Iterative-analysis result: per-epoch wall times plus the aggregate.
struct IterativeOutput {
  RunOutput run;                    ///< aggregated over all epochs
  std::vector<Seconds> epoch_times; ///< wall time per epoch (barrier to barrier)
  Seconds total_time = 0;
};

/// Iterative analysis (the paper's Introduction motivation: "iterative data
/// analysis, which involves moving data from storage to processes
/// repeatedly"): the same `chunk_count`-chunk dataset is read in `epochs`
/// synchronized passes. Opass computes the matching once and replays it each
/// epoch; the baseline re-reads by rank every epoch, paying the remote and
/// imbalanced pattern repeatedly.
IterativeOutput run_iterative(const ExperimentConfig& cfg, std::uint32_t chunk_count,
                              std::uint32_t epochs, Method method,
                              Seconds compute_per_task = 0);

}  // namespace opass::exp
