#include "exp/service_trace.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/require.hpp"
#include "dfs/topology.hpp"
#include "obs/collect.hpp"
#include "obs/metrics_io.hpp"
#include "runtime/task.hpp"
#include "workload/dataset.hpp"

namespace opass::exp {

std::vector<TraceJob> parse_service_trace(const std::string& text) {
  std::vector<TraceJob> jobs;
  std::istringstream lines(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream fields(line);
    TraceJob job;
    std::string trailing;
    if (!(fields >> job.arrival >> job.tenant >> job.weight >> job.task_count) ||
        (fields >> trailing)) {
      OPASS_REQUIRE(false, "trace line " + std::to_string(line_no) +
                               ": expected \"<arrival> <tenant> <weight> <task_count>\"");
    }
    OPASS_REQUIRE(job.arrival >= 0,
                  "trace line " + std::to_string(line_no) + ": arrival must be >= 0");
    OPASS_REQUIRE(job.weight > 0,
                  "trace line " + std::to_string(line_no) + ": weight must be > 0");
    jobs.push_back(job);
  }
  return jobs;
}

std::vector<TraceJob> load_service_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  OPASS_REQUIRE(in.good(), "cannot read trace file: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return parse_service_trace(text.str());
}

namespace {

/// Deterministic one-line rendering of a job: stable field order, reals via
/// obs::format_double, assignment as p<process>=[ids] for non-empty
/// processes only.
std::string render_job(const core::JobStatus& job) {
  std::ostringstream os;
  os << "job=" << job.id << " tenant=" << job.tenant
     << " arrival=" << obs::format_double(job.arrival)
     << " state=" << core::job_state_name(job.state);
  if (job.state == core::JobState::kPlanned || job.state == core::JobState::kCompleted) {
    os << " batch=" << job.batch << " planned_at=" << obs::format_double(job.planned_at)
       << " matched=" << job.locally_matched << " filled=" << job.randomly_filled
       << " local_bytes=" << job.local_bytes << " total_bytes=" << job.total_bytes;
    for (std::size_t p = 0; p < job.assignment.size(); ++p) {
      if (job.assignment[p].empty()) continue;
      os << " p" << p << "=[";
      for (std::size_t i = 0; i < job.assignment[p].size(); ++i) {
        if (i > 0) os << ',';
        os << job.assignment[p][i];
      }
      os << ']';
    }
  }
  os << '\n';
  return os.str();
}

}  // namespace

ServiceTraceOutput replay_service_trace(const ServiceTraceConfig& cfg,
                                        const std::vector<TraceJob>& jobs) {
  OPASS_REQUIRE(!jobs.empty(), "service trace holds no jobs");
  std::uint64_t total_tasks = 0;
  core::TenantId max_tenant = 0;
  for (const TraceJob& job : jobs) {
    total_tasks += job.task_count;
    max_tenant = std::max(max_tenant, job.tenant);
  }
  OPASS_REQUIRE(total_tasks > 0, "service trace holds no tasks");

  // Same derived-stream convention as the experiment harness: dataset
  // placement draws from a seed-derived stream so the namespace layout is a
  // pure function of (seed, nodes, replication, placement policy).
  Rng placement_rng(cfg.seed * 2654435761ULL + 1);
  dfs::NameNode nn(dfs::Topology::single_rack(cfg.nodes), cfg.replication);
  auto policy = dfs::make_placement(cfg.placement);
  const dfs::FileId fid = workload::store_chunked_dataset(
      nn, "service-dataset", static_cast<std::uint32_t>(total_tasks), *policy,
      placement_rng);
  const std::vector<runtime::Task> all_tasks = runtime::single_input_tasks(nn, {fid});
  const core::ProcessPlacement placement = core::one_process_per_node(nn, cfg.nodes);

  core::ServiceOptions options;
  options.algorithm = cfg.flow_algorithm;
  options.seed = cfg.seed;
  options.batch_window = cfg.batch_window;
  options.max_batch_jobs = cfg.max_batch_jobs;
  options.max_batch_tasks = cfg.max_batch_tasks;
  options.fair_share = cfg.fair_share;
  core::PlannerService service(nn, placement, options);

  std::unique_ptr<obs::ServiceTimelineProbe> probe;
  if (cfg.timeline != nullptr) {
    probe = std::make_unique<obs::ServiceTimelineProbe>(*cfg.timeline, max_tenant + 1);
    service.set_probe(probe.get());
  }

  std::size_t next_task = 0;
  for (const TraceJob& job : jobs) {
    core::JobRequest request;
    request.tenant = job.tenant;
    request.weight = job.weight;
    request.arrival = job.arrival;
    request.tasks.assign(all_tasks.begin() + static_cast<std::ptrdiff_t>(next_task),
                         all_tasks.begin() +
                             static_cast<std::ptrdiff_t>(next_task + job.task_count));
    next_task += job.task_count;
    (void)service.submit(std::move(request));
  }
  service.drain();
  if (cfg.timeline != nullptr) cfg.timeline->finish(service.now());
  if (cfg.metrics != nullptr) obs::collect_service(*cfg.metrics, service);

  ServiceTraceOutput out;
  out.counters = service.counters();
  Bytes local = 0;
  Bytes total = 0;
  std::ostringstream rendered;
  rendered << "# service-trace replay: jobs=" << service.job_count()
           << " batches=" << out.counters.batches << " tasks=" << out.counters.tasks_planned
           << " nodes=" << cfg.nodes << " seed=" << cfg.seed << '\n';
  for (core::JobId id = 1; id <= service.job_count(); ++id) {
    const core::JobStatus& status = service.status(id);
    local += status.local_bytes;
    total += status.total_bytes;
    rendered << render_job(status);
    out.statuses.push_back(status);
  }
  out.local_byte_fraction =
      total ? static_cast<double>(local) / static_cast<double>(total) : 0.0;
  out.rendered = rendered.str();
  if (cfg.spans != nullptr) obs::append_service_spans(*cfg.spans, out.statuses);
  return out;
}

}  // namespace opass::exp
