// Job-arrival trace replay through the planning service.
//
// A service trace is a tiny text format describing a stream of job arrivals:
//
//   # arrival_seconds tenant_id weight task_count
//   0.0 0 1.0 32
//   0.5 1 2.0 16
//
// replay_service_trace() stands up an HDFS-model namespace (same seeded
// construction as the experiment harness), submits every trace job to a
// core::PlannerService, drains it, and reduces the outcome: per-job
// statuses, lifetime counters, and a deterministic text rendering of every
// assignment — the byte-identity witness the determinism suite and
// `opass_cli --service-trace` compare across runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "dfs/placement.hpp"
#include "graph/max_flow.hpp"
#include "obs/metrics.hpp"
#include "obs/spans.hpp"
#include "obs/timeline.hpp"
#include "opass/service.hpp"

namespace opass::exp {

/// One job arrival parsed from a trace line.
struct TraceJob {
  Seconds arrival = 0;
  core::TenantId tenant = 0;
  double weight = 1.0;
  std::uint32_t task_count = 0;
};

/// Parse trace text: one job per line, fields "<arrival> <tenant> <weight>
/// <task_count>" separated by whitespace; blank lines and lines starting
/// with '#' are skipped. Throws std::invalid_argument on malformed lines.
std::vector<TraceJob> parse_service_trace(const std::string& text);

/// Read and parse a trace file; throws std::invalid_argument when the file
/// cannot be read.
std::vector<TraceJob> load_service_trace(const std::string& path);

/// Replay knobs (the experiment-harness subset that matters to planning —
/// no cluster simulation is involved).
struct ServiceTraceConfig {
  std::uint32_t nodes = 64;
  std::uint32_t replication = 3;
  std::uint64_t seed = 42;
  dfs::PlacementKind placement = dfs::PlacementKind::kRandom;
  graph::MaxFlowAlgorithm flow_algorithm = graph::MaxFlowAlgorithm::kDinic;
  Seconds batch_window = 0;
  std::uint32_t max_batch_jobs = 0;
  std::uint32_t max_batch_tasks = 0;
  bool fair_share = true;
  /// Optional sinks (borrowed). `metrics` receives collect_service();
  /// `timeline` receives a ServiceTimelineProbe's series and is finish()ed
  /// at the drain time.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TimelineRecorder* timeline = nullptr;
  /// When set, the replay appends svc.job.queue / svc.job.plan spans for
  /// every planned job (obs::append_service_spans) — queue-wait attribution
  /// keyed by tenant.
  obs::SpanLog* spans = nullptr;
};

/// Reduced outcome of one replay.
struct ServiceTraceOutput {
  std::vector<core::JobStatus> statuses;  ///< in job-id order
  core::ServiceCounters counters;
  double local_byte_fraction = 0;  ///< co-located bytes / total bytes
  /// Deterministic text rendering of every job's state and assignment
  /// (stable field order, obs::format_double for reals). Two replays of the
  /// same trace + seed produce byte-identical strings.
  std::string rendered;
};

/// Replay `jobs` through a PlannerService over a fresh seeded namespace:
/// one shared dataset with one chunk per trace task, jobs submitted in file
/// order, then drained. Tenant ids must be dense when `cfg.timeline` is set
/// (the probe registers per-tenant series up front).
ServiceTraceOutput replay_service_trace(const ServiceTraceConfig& cfg,
                                        const std::vector<TraceJob>& jobs);

}  // namespace opass::exp
