#include "dfs/namenode.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/require.hpp"

namespace opass::dfs {

NameNode::NameNode(Topology topo, std::uint32_t replication, Bytes chunk_size)
    : topo_(std::move(topo)),
      replication_(replication),
      chunk_size_(chunk_size),
      node_chunks_(topo_.node_count()),
      decommissioned_(topo_.node_count(), 0) {
  OPASS_REQUIRE(replication_ > 0, "replication factor must be positive");
  OPASS_REQUIRE(replication_ <= topo_.node_count(),
                "replication factor exceeds cluster size");
  OPASS_REQUIRE(chunk_size_ > 0, "chunk size must be positive");
}

FileId NameNode::create_file(const std::string& name, Bytes size, PlacementPolicy& policy,
                             Rng& rng, NodeId writer) {
  OPASS_REQUIRE(size > 0, "cannot create an empty file");
  OPASS_REQUIRE(!exists(name), "a file with this name already exists");
  const auto fid = static_cast<FileId>(files_.size());
  FileInfo fi;
  fi.id = fid;
  fi.name = name;
  fi.size = size;

  Bytes remaining = size;
  std::uint32_t index = 0;
  while (remaining > 0) {
    const Bytes csize = std::min(remaining, chunk_size_);
    const auto cid = static_cast<ChunkId>(chunks_.size());
    ChunkInfo ci;
    ci.id = cid;
    ci.file = fid;
    ci.index_in_file = index++;
    ci.size = csize;
    chunks_.push_back(ci);

    auto replicas = policy.place(topo_, writer, replication_, rng);
    OPASS_CHECK(replicas.size() == replication_, "policy returned wrong replica count");
    std::unordered_set<NodeId> distinct(replicas.begin(), replicas.end());
    OPASS_CHECK(distinct.size() == replicas.size(), "policy returned duplicate replicas");
    for (NodeId n : replicas) {
      OPASS_CHECK(n < topo_.node_count(), "policy returned node out of range");
      add_replica(cid, n);
    }

    fi.chunks.push_back(cid);
    remaining -= csize;
  }
  files_.push_back(std::move(fi));
  file_deleted_.push_back(0);
  by_name_.emplace(name, fid);
  return fid;
}

FileId NameNode::find_file(const std::string& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? kInvalidFile : it->second;
}

std::vector<FileId> NameNode::list_prefix(const std::string& prefix) const {
  std::vector<FileId> out;
  for (const auto& f : files_) {
    if (file_deleted_[f.id]) continue;
    if (f.name.compare(0, prefix.size(), prefix) == 0) out.push_back(f.id);
  }
  return out;
}

void NameNode::delete_file(FileId id) {
  OPASS_REQUIRE(id < files_.size(), "file id out of range");
  OPASS_REQUIRE(!file_deleted_[id], "file already deleted");
  for (ChunkId c : files_[id].chunks) {
    // Drop every replica; the chunk id stays allocated as a tombstone.
    const auto replicas = chunks_[c].replicas;  // copy: remove_replica mutates
    for (NodeId n : replicas) remove_replica(c, n);
  }
  by_name_.erase(files_[id].name);
  file_deleted_[id] = 1;
}

void NameNode::rename_file(FileId id, const std::string& new_name) {
  OPASS_REQUIRE(id < files_.size(), "file id out of range");
  OPASS_REQUIRE(!file_deleted_[id], "cannot rename a deleted file");
  OPASS_REQUIRE(!exists(new_name), "a file with the new name already exists");
  by_name_.erase(files_[id].name);
  files_[id].name = new_name;
  by_name_.emplace(new_name, id);
}

bool NameNode::is_deleted(FileId id) const {
  OPASS_REQUIRE(id < files_.size(), "file id out of range");
  return file_deleted_[id] != 0;
}

const FileInfo& NameNode::file(FileId id) const {
  OPASS_REQUIRE(id < files_.size(), "file id out of range");
  return files_[id];
}

const ChunkInfo& NameNode::chunk(ChunkId id) const {
  OPASS_REQUIRE(id < chunks_.size(), "chunk id out of range");
  return chunks_[id];
}

const std::vector<ChunkId>& NameNode::chunks_on_node(NodeId node) const {
  OPASS_REQUIRE(node < node_chunks_.size(), "node out of range");
  return node_chunks_[node];
}

std::vector<std::uint32_t> NameNode::node_chunk_counts() const {
  std::vector<std::uint32_t> counts(topo_.node_count(), 0);
  for (NodeId n = 0; n < topo_.node_count(); ++n)
    counts[n] = static_cast<std::uint32_t>(node_chunks_[n].size());
  return counts;
}

std::vector<Bytes> NameNode::node_bytes() const {
  std::vector<Bytes> bytes(topo_.node_count(), 0);
  for (NodeId n = 0; n < topo_.node_count(); ++n)
    for (ChunkId c : node_chunks_[n]) bytes[n] += chunks_[c].size;
  return bytes;
}

Bytes NameNode::total_file_bytes() const {
  Bytes total = 0;
  for (const auto& f : files_)
    if (!file_deleted_[f.id]) total += f.size;
  return total;
}

NodeId NameNode::add_node(RackId rack) {
  const NodeId id = topo_.add_node(rack);
  node_chunks_.emplace_back();
  decommissioned_.push_back(0);
  return id;
}

void NameNode::decommission_node(NodeId node, Rng& rng) {
  OPASS_REQUIRE(node < topo_.node_count(), "node out of range");
  OPASS_REQUIRE(!decommissioned_[node], "node already decommissioned");
  decommissioned_[node] = 1;

  // Collect alive nodes once.
  std::vector<NodeId> alive;
  for (NodeId n = 0; n < topo_.node_count(); ++n)
    if (!decommissioned_[n]) alive.push_back(n);
  OPASS_REQUIRE(alive.size() >= replication_,
                "not enough alive nodes to maintain replication");

  const std::vector<ChunkId> to_move = node_chunks_[node];  // copy: we mutate the index
  for (ChunkId c : to_move) {
    remove_replica(c, node);
    // Re-replicate on a random alive node that lacks the chunk.
    std::vector<NodeId> candidates;
    for (NodeId n : alive)
      if (!chunks_[c].has_replica_on(n)) candidates.push_back(n);
    OPASS_CHECK(!candidates.empty(), "no candidate node for re-replication");
    add_replica(c, candidates[rng.uniform(candidates.size())]);
  }
}

std::vector<ChunkId> NameNode::detach_node(NodeId node) {
  OPASS_REQUIRE(node < topo_.node_count(), "node out of range");
  OPASS_REQUIRE(!decommissioned_[node], "node already decommissioned");
  decommissioned_[node] = 1;
  std::vector<ChunkId> affected = node_chunks_[node];  // copy: we mutate the index
  std::sort(affected.begin(), affected.end());
  for (ChunkId c : affected) remove_replica(c, node);
  return affected;
}

void NameNode::mark_decommissioned(NodeId node) {
  OPASS_REQUIRE(node < topo_.node_count(), "node out of range");
  OPASS_REQUIRE(!decommissioned_[node], "node already decommissioned");
  decommissioned_[node] = 1;
}

void NameNode::register_replica(ChunkId chunk, NodeId node) {
  OPASS_REQUIRE(chunk < chunks_.size(), "chunk id out of range");
  OPASS_REQUIRE(node < topo_.node_count(), "node out of range");
  OPASS_REQUIRE(!chunks_[chunk].has_replica_on(node),
                "chunk already has a replica on this node");
  add_replica(chunk, node);
}

void NameNode::unregister_replica(ChunkId chunk, NodeId node) {
  OPASS_REQUIRE(chunk < chunks_.size(), "chunk id out of range");
  OPASS_REQUIRE(node < topo_.node_count(), "node out of range");
  remove_replica(chunk, node);
}

std::vector<NodeId> NameNode::alive_nodes() const {
  std::vector<NodeId> alive;
  for (NodeId n = 0; n < topo_.node_count(); ++n)
    if (!decommissioned_[n]) alive.push_back(n);
  return alive;
}

bool NameNode::is_decommissioned(NodeId node) const {
  OPASS_REQUIRE(node < decommissioned_.size(), "node out of range");
  return decommissioned_[node] != 0;
}

std::uint32_t NameNode::balance(Rng& rng, std::uint32_t tolerance) {
  std::uint32_t moves = 0;
  for (;;) {
    // Find most- and least-loaded alive nodes by replica count.
    NodeId hi = kInvalidNode, lo = kInvalidNode;
    for (NodeId n = 0; n < topo_.node_count(); ++n) {
      if (decommissioned_[n]) continue;
      if (hi == kInvalidNode || node_chunks_[n].size() > node_chunks_[hi].size()) hi = n;
      if (lo == kInvalidNode || node_chunks_[n].size() < node_chunks_[lo].size()) lo = n;
    }
    if (hi == kInvalidNode || lo == kInvalidNode) break;
    if (node_chunks_[hi].size() <= node_chunks_[lo].size() + tolerance) break;

    // Move one replica hi -> lo; pick a random movable chunk.
    std::vector<ChunkId> movable;
    for (ChunkId c : node_chunks_[hi])
      if (!chunks_[c].has_replica_on(lo)) movable.push_back(c);
    if (movable.empty()) break;  // everything on hi already replicated on lo
    const ChunkId c = movable[rng.uniform(movable.size())];
    remove_replica(c, hi);
    add_replica(c, lo);
    ++moves;
  }
  return moves;
}

void NameNode::check_invariants() const {
  std::size_t live_chunks = 0;
  for (const auto& c : chunks_) {
    if (file_deleted_[c.file]) {
      OPASS_CHECK(c.replicas.empty(), "deleted file still holds replicas");
      continue;
    }
    ++live_chunks;
    OPASS_CHECK(c.replicas.size() == replication_, "chunk replica count drifted");
    std::unordered_set<NodeId> distinct(c.replicas.begin(), c.replicas.end());
    OPASS_CHECK(distinct.size() == c.replicas.size(), "duplicate replica nodes");
    for (NodeId n : c.replicas) {
      const auto& inv = node_chunks_.at(n);
      OPASS_CHECK(std::find(inv.begin(), inv.end(), c.id) != inv.end(),
                  "node inventory missing a replica");
    }
  }
  std::size_t indexed = 0;
  for (const auto& inv : node_chunks_) indexed += inv.size();
  OPASS_CHECK(indexed == live_chunks * replication_, "inventory size mismatch");
}

void NameNode::add_replica(ChunkId chunk, NodeId node) {
  chunks_[chunk].replicas.push_back(node);
  node_chunks_[node].push_back(chunk);
}

void NameNode::remove_replica(ChunkId chunk, NodeId node) {
  auto& reps = chunks_[chunk].replicas;
  auto it = std::find(reps.begin(), reps.end(), node);
  OPASS_CHECK(it != reps.end(), "removing a replica that does not exist");
  reps.erase(it);
  auto& inv = node_chunks_[node];
  auto it2 = std::find(inv.begin(), inv.end(), chunk);
  OPASS_CHECK(it2 != inv.end(), "node inventory missing replica being removed");
  inv.erase(it2);
}

}  // namespace opass::dfs
