// Core identifier and metadata types for the HDFS-model distributed file
// system. The model captures exactly what Opass consumes from a real HDFS:
// files split into chunk files (blocks) of at most the configured chunk size,
// each chunk replicated on r distinct DataNodes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace opass::dfs {

/// DataNode index within the cluster, dense in [0, node_count).
using NodeId = std::uint32_t;

/// Globally unique chunk (block) index, dense in creation order.
using ChunkId = std::uint32_t;

/// File index, dense in creation order.
using FileId = std::uint32_t;

inline constexpr NodeId kInvalidNode = UINT32_MAX;

/// Metadata of one chunk file (HDFS block).
struct ChunkInfo {
  ChunkId id = 0;
  FileId file = 0;
  std::uint32_t index_in_file = 0;  ///< chunk ordinal within its file
  Bytes size = 0;
  std::vector<NodeId> replicas;  ///< distinct DataNodes holding a copy

  bool has_replica_on(NodeId node) const {
    for (NodeId r : replicas)
      if (r == node) return true;
    return false;
  }
};

/// Metadata of one logical file.
struct FileInfo {
  FileId id = 0;
  std::string name;
  Bytes size = 0;
  std::vector<ChunkId> chunks;
};

}  // namespace opass::dfs
