#include "dfs/placement.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace opass::dfs {

namespace {

/// Draw a node uniformly from `candidates`, excluding any already in `chosen`.
/// Returns kInvalidNode when no candidate remains.
NodeId draw_excluding(const std::vector<NodeId>& candidates, const std::vector<NodeId>& chosen,
                      Rng& rng) {
  std::vector<NodeId> pool;
  pool.reserve(candidates.size());
  for (NodeId c : candidates)
    if (std::find(chosen.begin(), chosen.end(), c) == chosen.end()) pool.push_back(c);
  if (pool.empty()) return kInvalidNode;
  return pool[rng.uniform(pool.size())];
}

}  // namespace

std::vector<NodeId> RandomPlacement::place(const Topology& topo, NodeId /*writer*/,
                                           std::uint32_t replication, Rng& rng) {
  OPASS_REQUIRE(replication <= topo.node_count(),
                "replication factor exceeds cluster size");
  const auto picks = rng.sample_without_replacement(topo.node_count(), replication);
  return {picks.begin(), picks.end()};
}

std::vector<NodeId> HdfsDefaultPlacement::place(const Topology& topo, NodeId writer,
                                                std::uint32_t replication, Rng& rng) {
  OPASS_REQUIRE(replication <= topo.node_count(),
                "replication factor exceeds cluster size");
  std::vector<NodeId> chosen;
  chosen.reserve(replication);

  // Replica 1: the writer itself, or a random node for external clients.
  const NodeId first =
      writer != kInvalidNode ? writer : static_cast<NodeId>(rng.uniform(topo.node_count()));
  chosen.push_back(first);
  if (chosen.size() == replication) return chosen;

  // Replica 2: a node on a different rack when one exists.
  std::vector<NodeId> off_rack;
  for (NodeId n = 0; n < topo.node_count(); ++n)
    if (topo.rack_of(n) != topo.rack_of(first)) off_rack.push_back(n);
  NodeId second = draw_excluding(off_rack, chosen, rng);
  if (second == kInvalidNode) {
    // Single-rack cluster: fall back to any distinct node.
    std::vector<NodeId> all(topo.node_count());
    for (NodeId n = 0; n < topo.node_count(); ++n) all[n] = n;
    second = draw_excluding(all, chosen, rng);
  }
  OPASS_CHECK(second != kInvalidNode, "no node available for second replica");
  chosen.push_back(second);
  if (chosen.size() == replication) return chosen;

  // Replica 3: same rack as replica 2, different node; fall back to any node.
  NodeId third = draw_excluding(topo.nodes_on_rack(topo.rack_of(second)), chosen, rng);
  if (third == kInvalidNode) {
    std::vector<NodeId> all(topo.node_count());
    for (NodeId n = 0; n < topo.node_count(); ++n) all[n] = n;
    third = draw_excluding(all, chosen, rng);
  }
  OPASS_CHECK(third != kInvalidNode, "no node available for third replica");
  chosen.push_back(third);

  // Extras beyond 3: random distinct nodes.
  while (chosen.size() < replication) {
    std::vector<NodeId> all(topo.node_count());
    for (NodeId n = 0; n < topo.node_count(); ++n) all[n] = n;
    const NodeId extra = draw_excluding(all, chosen, rng);
    OPASS_CHECK(extra != kInvalidNode, "no node available for extra replica");
    chosen.push_back(extra);
  }
  return chosen;
}

std::vector<NodeId> RoundRobinPlacement::place(const Topology& topo, NodeId /*writer*/,
                                               std::uint32_t replication, Rng& /*rng*/) {
  OPASS_REQUIRE(replication <= topo.node_count(),
                "replication factor exceeds cluster size");
  std::vector<NodeId> chosen;
  chosen.reserve(replication);
  for (std::uint32_t i = 0; i < replication; ++i)
    chosen.push_back(static_cast<NodeId>((next_ + i) % topo.node_count()));
  ++next_;
  return chosen;
}

std::vector<NodeId> SpreadPlacement::place(const Topology& topo, NodeId /*writer*/,
                                           std::uint32_t replication, Rng& /*rng*/) {
  OPASS_REQUIRE(replication <= topo.node_count(),
                "replication factor exceeds cluster size");
  if (counts_.size() < topo.node_count()) counts_.resize(topo.node_count(), 0);

  // Select the `replication` least-loaded nodes, smallest id on ties:
  // deterministic, and exactly the maximal-spread rule of arXiv 1808.07545
  // when chunks arrive one at a time.
  std::vector<NodeId> order(topo.node_count());
  for (NodeId n = 0; n < topo.node_count(); ++n) order[n] = n;
  std::sort(order.begin(), order.end(), [this](NodeId a, NodeId b) {
    return counts_[a] != counts_[b] ? counts_[a] < counts_[b] : a < b;
  });
  std::vector<NodeId> chosen(order.begin(), order.begin() + replication);
  for (NodeId n : chosen) ++counts_[n];
  return chosen;
}

std::unique_ptr<PlacementPolicy> make_placement(PlacementKind kind) {
  switch (kind) {
    case PlacementKind::kRandom:
      return std::make_unique<RandomPlacement>();
    case PlacementKind::kHdfsDefault:
      return std::make_unique<HdfsDefaultPlacement>();
    case PlacementKind::kRoundRobin:
      return std::make_unique<RoundRobinPlacement>();
    case PlacementKind::kSpread:
      return std::make_unique<SpreadPlacement>();
  }
  OPASS_CHECK(false, "unknown placement kind");
}

const char* placement_kind_name(PlacementKind kind) {
  switch (kind) {
    case PlacementKind::kRandom:
      return "random";
    case PlacementKind::kHdfsDefault:
      return "hdfs-default";
    case PlacementKind::kRoundRobin:
      return "round-robin";
    case PlacementKind::kSpread:
      return "spread";
  }
  return "?";
}

}  // namespace opass::dfs
