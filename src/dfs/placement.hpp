// Replica placement policies.
//
// The paper's analysis assumes HDFS's effectively random distribution ("data
// are randomly distributed within HDFS"); kRandom reproduces that. The
// classic HDFS writer-local + rack-aware pipeline and a round-robin balancer
// policy are provided for ablations (bench/ablation_policies): Opass's gain
// shrinks as placement gets more even, exactly as Section IV-B discusses for
// full matchings.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "dfs/topology.hpp"
#include "dfs/types.hpp"

namespace opass::dfs {

/// Strategy interface: pick `replication` distinct DataNodes for a new chunk.
class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  /// Choose replica nodes. `writer` is the node issuing the write, or
  /// kInvalidNode for an external client. Must return `replication` distinct
  /// valid node ids; callers validate via OPASS checks in the NameNode.
  virtual std::vector<NodeId> place(const Topology& topo, NodeId writer,
                                    std::uint32_t replication, Rng& rng) = 0;

  virtual std::string name() const = 0;
};

/// r distinct nodes drawn uniformly at random — the model the paper analyzes.
class RandomPlacement final : public PlacementPolicy {
 public:
  std::vector<NodeId> place(const Topology& topo, NodeId writer, std::uint32_t replication,
                            Rng& rng) override;
  std::string name() const override { return "random"; }
};

/// Classic HDFS default: replica 1 on the writer (or a random node for an
/// external client), replica 2 on a different rack, replica 3 on the same
/// rack as replica 2 but a different node; extras random. On a single-rack
/// topology the rack constraints degenerate to "distinct random nodes".
class HdfsDefaultPlacement final : public PlacementPolicy {
 public:
  std::vector<NodeId> place(const Topology& topo, NodeId writer, std::uint32_t replication,
                            Rng& rng) override;
  std::string name() const override { return "hdfs-default"; }
};

/// Perfectly even placement: replicas assigned round-robin over nodes. Gives
/// Opass a guaranteed full matching — the idealized upper bound.
class RoundRobinPlacement final : public PlacementPolicy {
 public:
  std::vector<NodeId> place(const Topology& topo, NodeId writer, std::uint32_t replication,
                            Rng& rng) override;
  std::string name() const override { return "round-robin"; }

 private:
  std::uint64_t next_ = 0;
};

/// Named policy selection for configs and CLI flags.
enum class PlacementKind { kRandom, kHdfsDefault, kRoundRobin };

std::unique_ptr<PlacementPolicy> make_placement(PlacementKind kind);
const char* placement_kind_name(PlacementKind kind);

}  // namespace opass::dfs
