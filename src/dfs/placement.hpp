// Replica placement policies.
//
// The paper's analysis assumes HDFS's effectively random distribution ("data
// are randomly distributed within HDFS"); kRandom reproduces that. The
// classic HDFS writer-local + rack-aware pipeline and a round-robin balancer
// policy are provided for ablations (bench/ablation_policies): Opass's gain
// shrinks as placement gets more even, exactly as Section IV-B discusses for
// full matchings. kSpread implements the service-rate-maximizing allocation
// of "On Distributed Storage Allocations of Large Files for Maximum Service
// Rate" (arXiv 1808.07545): spreading a file's chunks across the maximal
// number of storage nodes — here, always placing on the currently
// least-loaded nodes — maximizes the rate at which parallel readers can be
// served, and it keeps layouts even under churn (new nodes absorb new
// replicas first). The failure-model catalog in DESIGN.md §11 maps each
// policy to the churn scenario it supports.
//
// Thread-safety: policies are single-threaded — place() mutates internal
// policy state (RoundRobinPlacement::next_, SpreadPlacement::counts_) with
// no synchronization, matching the single simulation thread that drives
// every experiment. Share one policy across threads only behind an
// opass::Mutex with the fields annotated OPASS_GUARDED_BY (see
// common/thread_annotations.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "dfs/topology.hpp"
#include "dfs/types.hpp"

namespace opass::dfs {

/// Strategy interface: pick `replication` distinct DataNodes for a new chunk.
class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  /// Choose replica nodes. `writer` is the node issuing the write, or
  /// kInvalidNode for an external client.
  ///
  /// Preconditions: `replication` >= 1 and <= topo.node_count().
  /// Postconditions: returns exactly `replication` distinct node ids, each
  /// < topo.node_count(); callers validate via OPASS checks in the NameNode.
  /// Stateful policies (round-robin, spread) must tolerate `topo` growing
  /// between calls (churn joins add nodes mid-run).
  virtual std::vector<NodeId> place(const Topology& topo, NodeId writer,
                                    std::uint32_t replication, Rng& rng) = 0;

  virtual std::string name() const = 0;
};

/// r distinct nodes drawn uniformly at random — the model the paper analyzes.
class RandomPlacement final : public PlacementPolicy {
 public:
  std::vector<NodeId> place(const Topology& topo, NodeId writer, std::uint32_t replication,
                            Rng& rng) override;
  std::string name() const override { return "random"; }
};

/// Classic HDFS default: replica 1 on the writer (or a random node for an
/// external client), replica 2 on a different rack, replica 3 on the same
/// rack as replica 2 but a different node; extras random. On a single-rack
/// topology the rack constraints degenerate to "distinct random nodes".
class HdfsDefaultPlacement final : public PlacementPolicy {
 public:
  std::vector<NodeId> place(const Topology& topo, NodeId writer, std::uint32_t replication,
                            Rng& rng) override;
  std::string name() const override { return "hdfs-default"; }
};

/// Perfectly even placement: replicas assigned round-robin over nodes. Gives
/// Opass a guaranteed full matching — the idealized upper bound.
class RoundRobinPlacement final : public PlacementPolicy {
 public:
  std::vector<NodeId> place(const Topology& topo, NodeId writer, std::uint32_t replication,
                            Rng& rng) override;
  std::string name() const override { return "round-robin"; }

 private:
  std::uint64_t next_ = 0;
};

/// Service-rate-maximizing spread allocation (arXiv 1808.07545): each chunk's
/// replicas go to the `replication` nodes currently holding the fewest
/// replicas placed by this policy (ties broken by smallest node id, so the
/// layout is a pure function of the placement sequence — no RNG draw).
/// Spreading over the maximal node set maximizes the aggregate service rate
/// parallel readers see; unlike round-robin, the policy tracks loads, so a
/// node joining mid-run (churn) absorbs the next writes until it catches up.
class SpreadPlacement final : public PlacementPolicy {
 public:
  std::vector<NodeId> place(const Topology& topo, NodeId writer, std::uint32_t replication,
                            Rng& rng) override;
  std::string name() const override { return "spread"; }

 private:
  std::vector<std::uint64_t> counts_;  // replicas this policy placed per node
};

/// Named policy selection for configs and CLI flags.
enum class PlacementKind { kRandom, kHdfsDefault, kRoundRobin, kSpread };

std::unique_ptr<PlacementPolicy> make_placement(PlacementKind kind);
const char* placement_kind_name(PlacementKind kind);

}  // namespace opass::dfs
