#include "dfs/topology.hpp"

#include "common/require.hpp"

namespace opass::dfs {

Topology Topology::single_rack(std::uint32_t nodes) { return uniform_racks(nodes, 1); }

Topology Topology::uniform_racks(std::uint32_t nodes, std::uint32_t racks) {
  OPASS_REQUIRE(nodes > 0, "topology needs at least one node");
  OPASS_REQUIRE(racks > 0 && racks <= nodes, "rack count must be in [1, nodes]");
  Topology t;
  t.rack_count_ = racks;
  t.rack_of_.resize(nodes);
  for (std::uint32_t i = 0; i < nodes; ++i) t.rack_of_[i] = i % racks;
  return t;
}

RackId Topology::rack_of(NodeId node) const {
  OPASS_REQUIRE(node < rack_of_.size(), "node out of range");
  return rack_of_[node];
}

NodeId Topology::add_node(RackId rack) {
  rack_of_.push_back(rack);
  if (rack >= rack_count_) rack_count_ = rack + 1;
  return static_cast<NodeId>(rack_of_.size() - 1);
}

std::vector<NodeId> Topology::nodes_on_rack(RackId rack) const {
  OPASS_REQUIRE(rack < rack_count_, "rack out of range");
  std::vector<NodeId> out;
  for (NodeId n = 0; n < rack_of_.size(); ++n)
    if (rack_of_[n] == rack) out.push_back(n);
  return out;
}

}  // namespace opass::dfs
