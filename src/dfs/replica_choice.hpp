// Read-path replica selection.
//
// HDFS's client read policy, as the paper describes it: "the client will
// attempt to read from a local disk. If the required data is not on a local
// disk, the client will read data from another node that is chosen at
// random." Local preference is always applied; the policy below chooses
// among remote replicas. kLeastLoaded is an ablation showing how much of the
// imbalance a smarter DFS-side choice could recover without Opass.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "dfs/types.hpp"

namespace opass::dfs {

enum class ReplicaChoice {
  kRandom,       ///< uniform among replicas (HDFS / the paper's model)
  kFirst,        ///< deterministic first replica (worst-case hot-spotting)
  kLeastLoaded,  ///< replica on the node currently serving the fewest requests
};

const char* replica_choice_name(ReplicaChoice c);

/// Pick the node to serve a read of `chunk` issued from `reader`.
///
/// Applies local preference first. `node_load[n]` is the number of in-flight
/// requests on node n (only consulted by kLeastLoaded; may be empty for other
/// policies).
NodeId choose_serving_node(const ChunkInfo& chunk, NodeId reader,
                           const std::vector<std::uint32_t>& node_load, ReplicaChoice policy,
                           Rng& rng);

}  // namespace opass::dfs
