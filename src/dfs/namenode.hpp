// NameNode: the metadata service of the HDFS-model file system.
//
// Tracks files, chunks, replica locations and per-node inventories; supports
// the operations the paper's scenarios need: writing datasets (chunking +
// placement), the layout query Opass consumes (equivalent to HDFS
// getFileBlockLocations), node addition/decommissioning (the paper's stated
// cause of unbalanced layouts) and an HDFS-style balancer.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "dfs/placement.hpp"
#include "dfs/topology.hpp"
#include "dfs/types.hpp"

namespace opass::dfs {

/// Metadata service. Not thread-safe; experiments drive it single-threaded.
class NameNode {
 public:
  /// Create a file system over `topo` with the given default replication and
  /// chunk size (HDFS defaults: r = 3, 64 MB).
  NameNode(Topology topo, std::uint32_t replication = 3, Bytes chunk_size = kDefaultChunkSize);

  // --- write path ---

  /// Create a file of `size` bytes: splits into ceil(size/chunk_size) chunks
  /// (last chunk possibly short) and places each via `policy`.
  FileId create_file(const std::string& name, Bytes size, PlacementPolicy& policy, Rng& rng,
                     NodeId writer = kInvalidNode);

  // --- metadata queries (what Opass consumes) ---

  const Topology& topology() const { return topo_; }
  std::uint32_t node_count() const { return topo_.node_count(); }
  std::uint32_t replication() const { return replication_; }
  Bytes chunk_size() const { return chunk_size_; }

  std::uint32_t file_count() const { return static_cast<std::uint32_t>(files_.size()); }
  std::uint32_t chunk_count() const { return static_cast<std::uint32_t>(chunks_.size()); }

  const FileInfo& file(FileId id) const;
  const ChunkInfo& chunk(ChunkId id) const;

  /// Look up a live file by exact name; kInvalidFile if absent or deleted.
  FileId find_file(const std::string& name) const;

  /// True iff a live file with this name exists.
  bool exists(const std::string& name) const { return find_file(name) != kInvalidFile; }

  /// All live files whose name starts with `prefix` (directory-listing
  /// semantics for path prefixes like "multiblock/").
  std::vector<FileId> list_prefix(const std::string& prefix) const;

  /// Delete a file: all chunk replicas are dropped from node inventories and
  /// the name is released. Ids stay allocated (tombstoned) so existing
  /// ChunkIds never dangle.
  void delete_file(FileId id);

  /// Rename a live file; the new name must be free.
  void rename_file(FileId id, const std::string& new_name);

  /// True iff the file has been deleted.
  bool is_deleted(FileId id) const;

  static constexpr FileId kInvalidFile = UINT32_MAX;

  /// Replica locations of a chunk (the layout query).
  const std::vector<NodeId>& locations(ChunkId id) const { return chunk(id).replicas; }

  /// All chunk ids with a replica on `node`.
  const std::vector<ChunkId>& chunks_on_node(NodeId node) const;

  /// Replica count held by each node (index = NodeId).
  std::vector<std::uint32_t> node_chunk_counts() const;

  /// Bytes of replicas held by each node.
  std::vector<Bytes> node_bytes() const;

  /// Sum of file sizes (not replica bytes).
  Bytes total_file_bytes() const;

  // --- cluster membership / maintenance ---

  /// Add an empty DataNode to the cluster (on `rack`); returns its id. Newly
  /// added nodes hold no data until writes or balancing move chunks there —
  /// the paper's example of how layouts become unbalanced.
  NodeId add_node(RackId rack = 0);

  /// Decommission a node: every replica it held is re-created on a random
  /// alive node not already holding that chunk. The node keeps its id but
  /// holds no data afterwards and is excluded from future placement only if
  /// the caller's policy respects `is_decommissioned`.
  void decommission_node(NodeId node, Rng& rng);

  bool is_decommissioned(NodeId node) const;

  /// Crash-style detach: mark `node` decommissioned and drop every replica it
  /// held *without* re-creating them anywhere. Returns the affected chunk
  /// ids in ascending order — the work list a recovery driver (e.g.
  /// sim::FaultInjector) re-replicates with real traffic, in exactly that
  /// order so recovery stays deterministic. Unlike decommission_node, the
  /// namespace is under-replicated until the driver finishes.
  std::vector<ChunkId> detach_node(NodeId node);

  /// Mark a node decommissioned without touching its replicas (graceful
  /// drain: the node keeps serving while a driver copies its chunks away
  /// one by one via register/unregister_replica).
  void mark_decommissioned(NodeId node);

  /// Record a new replica of `chunk` on `node` (the metadata half of a
  /// finished re-replication copy). The chunk must not already live there.
  void register_replica(ChunkId chunk, NodeId node);

  /// Drop the replica of `chunk` on `node`. It must exist.
  void unregister_replica(ChunkId chunk, NodeId node);

  /// Nodes not decommissioned, ascending.
  std::vector<NodeId> alive_nodes() const;

  /// HDFS-style balancer: repeatedly move one replica from the node with the
  /// most replicas to the node with the fewest (that lacks the chunk) until
  /// the spread (max - min replica count) is <= `tolerance` or no legal move
  /// exists. Returns the number of replicas moved.
  std::uint32_t balance(Rng& rng, std::uint32_t tolerance = 1);

  /// Validation: every chunk has `replication` distinct alive replicas and
  /// the per-node index is consistent. Throws std::logic_error on violation.
  void check_invariants() const;

 private:
  void add_replica(ChunkId chunk, NodeId node);
  void remove_replica(ChunkId chunk, NodeId node);

  Topology topo_;
  std::uint32_t replication_;
  Bytes chunk_size_;
  std::vector<FileInfo> files_;
  std::vector<ChunkInfo> chunks_;
  std::vector<std::vector<ChunkId>> node_chunks_;  // per-node inventory
  std::vector<char> decommissioned_;
  std::vector<char> file_deleted_;
  std::unordered_map<std::string, FileId> by_name_;
};

}  // namespace opass::dfs
