// Cluster topology: node count and rack assignment.
//
// The Marmot testbed connects all 128 nodes to one switch, so the default
// topology is a single rack; multi-rack layouts exist for the HDFS-default
// (rack-aware) placement policy ablation.
#pragma once

#include <cstdint>
#include <vector>

#include "dfs/types.hpp"

namespace opass::dfs {

/// Rack index.
using RackId = std::uint32_t;

/// Static cluster topology.
class Topology {
 public:
  /// Single-rack topology of `nodes` DataNodes (the paper's testbed shape).
  static Topology single_rack(std::uint32_t nodes);

  /// `racks` racks with nodes distributed round-robin.
  static Topology uniform_racks(std::uint32_t nodes, std::uint32_t racks);

  std::uint32_t node_count() const { return static_cast<std::uint32_t>(rack_of_.size()); }
  std::uint32_t rack_count() const { return rack_count_; }
  RackId rack_of(NodeId node) const;

  /// All nodes on a given rack.
  std::vector<NodeId> nodes_on_rack(RackId rack) const;

  /// Append a node on `rack` (rack may be new); returns the new node's id.
  NodeId add_node(RackId rack);

 private:
  std::vector<RackId> rack_of_;
  std::uint32_t rack_count_ = 0;
};

}  // namespace opass::dfs
