#include "dfs/replica_choice.hpp"

#include "common/require.hpp"

namespace opass::dfs {

const char* replica_choice_name(ReplicaChoice c) {
  switch (c) {
    case ReplicaChoice::kRandom:
      return "random";
    case ReplicaChoice::kFirst:
      return "first";
    case ReplicaChoice::kLeastLoaded:
      return "least-loaded";
  }
  return "?";
}

NodeId choose_serving_node(const ChunkInfo& chunk, NodeId reader,
                           const std::vector<std::uint32_t>& node_load, ReplicaChoice policy,
                           Rng& rng) {
  OPASS_REQUIRE(!chunk.replicas.empty(), "chunk has no replicas");
  if (chunk.has_replica_on(reader)) return reader;

  switch (policy) {
    case ReplicaChoice::kRandom:
      return chunk.replicas[rng.uniform(chunk.replicas.size())];
    case ReplicaChoice::kFirst:
      return chunk.replicas.front();
    case ReplicaChoice::kLeastLoaded: {
      NodeId best = chunk.replicas.front();
      for (NodeId n : chunk.replicas) {
        const std::uint32_t load_n = n < node_load.size() ? node_load[n] : 0;
        const std::uint32_t load_b = best < node_load.size() ? node_load[best] : 0;
        if (load_n < load_b) best = n;
      }
      return best;
    }
  }
  OPASS_CHECK(false, "unknown replica choice policy");
}

}  // namespace opass::dfs
