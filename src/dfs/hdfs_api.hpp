// libhdfs-compatible C-style API over the simulated file system.
//
// The paper's applications access HDFS through libhdfs ("include hdfs.h and
// use Hadoop C/C++ API (libhdfs.so). The I/O interface, like hdfsread and
// hdfswrite, will be used to read/write data"), and Opass itself consumes
// the layout query (hdfsGetHosts / getFileBlockLocations). This header
// mirrors the libhdfs surface — connect, open/read/write/seek, path info,
// listing, delete, and the block-location query — so code written against
// libhdfs ports to the simulator with a namespace change.
//
// Semantics notes:
//  - Files written through this API carry real bytes (kept in the
//    FileSystem's content store and placed chunk-by-chunk at close);
//    metadata-only files created directly on the NameNode read back a
//    deterministic per-chunk pattern, so reads are always meaningful.
//  - This layer is synchronous metadata + content plumbing; timing lives in
//    sim::Cluster. Use hdfsGetHosts + the executor to simulate I/O cost.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "dfs/namenode.hpp"
#include "dfs/replica_choice.hpp"

namespace opass::hdfs {

using tSize = std::int32_t;    ///< libhdfs read/write size type
using tOffset = std::int64_t;  ///< libhdfs offset type

/// Open-mode flags (subset of fcntl.h used by libhdfs).
inline constexpr int O_RDONLY_ = 0;
inline constexpr int O_WRONLY_ = 1;

struct FileSystemImpl;
struct FileImpl;

/// Opaque handles, as in hdfs.h.
using hdfsFS = FileSystemImpl*;
using hdfsFile = FileImpl*;

/// Per-path metadata (mirrors hdfsFileInfo).
struct hdfsFileInfo {
  std::string name;
  Bytes size = 0;
  Bytes block_size = 0;
  std::uint32_t replication = 0;
};

/// Connect to the "cluster": binds the API to a NameNode and the node the
/// client runs on (kInvalidNode = external client). The placement policy is
/// used for files written through this API; replica_choice for reads.
hdfsFS hdfsConnect(dfs::NameNode* nn, dfs::NodeId local_node,
                   dfs::PlacementKind placement = dfs::PlacementKind::kRandom,
                   dfs::ReplicaChoice replica_choice = dfs::ReplicaChoice::kRandom,
                   std::uint64_t seed = 0x0ba55);

/// Disconnect and free the handle. Open files must be closed first.
void hdfsDisconnect(hdfsFS fs);

/// Open for reading (path must exist) or writing (path must not exist).
/// Returns nullptr on failure, as libhdfs does.
hdfsFile hdfsOpenFile(hdfsFS fs, const std::string& path, int flags);

/// Close; for write handles this commits the file to the NameNode (chunking
/// + placement). Returns 0 on success, -1 on failure.
int hdfsCloseFile(hdfsFS fs, hdfsFile file);

/// Sequential read into buffer; returns bytes read (0 at EOF), -1 on error.
tSize hdfsRead(hdfsFS fs, hdfsFile file, void* buffer, tSize length);

/// Positional read (does not move the cursor).
tSize hdfsPread(hdfsFS fs, hdfsFile file, tOffset position, void* buffer, tSize length);

/// Append to a write handle; returns bytes written or -1.
tSize hdfsWrite(hdfsFS fs, hdfsFile file, const void* buffer, tSize length);

/// Seek a read handle; returns 0 or -1.
int hdfsSeek(hdfsFS fs, hdfsFile file, tOffset pos);

/// Current cursor position, or -1.
tOffset hdfsTell(hdfsFS fs, hdfsFile file);

/// Bytes left after the cursor, or -1.
tOffset hdfsAvailable(hdfsFS fs, hdfsFile file);

/// 0 if the path exists, -1 otherwise (libhdfs convention).
int hdfsExists(hdfsFS fs, const std::string& path);

/// Delete a path. Returns 0 or -1.
int hdfsDelete(hdfsFS fs, const std::string& path);

/// Rename a path; fails if the source is missing or the target exists.
/// Returns 0 or -1.
int hdfsRename(hdfsFS fs, const std::string& old_path, const std::string& new_path);

/// Metadata for one path.
std::optional<hdfsFileInfo> hdfsGetPathInfo(hdfsFS fs, const std::string& path);

/// All paths under a prefix ("directory" listing).
std::vector<hdfsFileInfo> hdfsListDirectory(hdfsFS fs, const std::string& prefix);

/// THE layout query Opass is built on: for each block overlapping
/// [start, start+length), the nodes holding a replica. Mirrors
/// hdfsGetHosts / FileSystem::getFileBlockLocations.
std::vector<std::vector<dfs::NodeId>> hdfsGetHosts(hdfsFS fs, const std::string& path,
                                                   tOffset start, tOffset length);

/// Default block size of the file system.
Bytes hdfsGetDefaultBlockSize(hdfsFS fs);

/// Total bytes stored (replicas included) / total logical file bytes.
Bytes hdfsGetUsed(hdfsFS fs);

/// Node the read path would serve a given block from, honouring local
/// preference and the connect-time replica-choice policy. Exposed so
/// simulations can account the transfer on the right resources.
dfs::NodeId hdfsPickServer(hdfsFS fs, dfs::ChunkId chunk);

/// Deterministic content byte for metadata-only files: what hdfsRead
/// returns at (chunk, offset) when no real bytes were written.
std::uint8_t synthetic_byte(dfs::ChunkId chunk, Bytes offset_in_chunk);

}  // namespace opass::hdfs
