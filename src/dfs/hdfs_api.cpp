#include "dfs/hdfs_api.hpp"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "common/require.hpp"

namespace opass::hdfs {

struct FileImpl {
  std::string path;
  bool writable = false;
  dfs::FileId fid = dfs::NameNode::kInvalidFile;  // read handles
  Bytes cursor = 0;
  std::vector<std::uint8_t> pending;  // write handles accumulate here
  bool closed = false;
};

struct FileSystemImpl {
  dfs::NameNode* nn = nullptr;
  dfs::NodeId local_node = dfs::kInvalidNode;
  std::unique_ptr<dfs::PlacementPolicy> placement;
  dfs::ReplicaChoice replica_choice = dfs::ReplicaChoice::kRandom;
  Rng rng{0};
  // Content written through the API, keyed by file id.
  std::unordered_map<dfs::FileId, std::vector<std::uint8_t>> content;
  std::vector<std::unique_ptr<FileImpl>> open_files;
};

namespace {

/// Read `length` bytes of file content at `pos` into `buffer`, from the
/// content store when present, otherwise the synthetic pattern.
void fill_bytes(const FileSystemImpl& fs, const dfs::FileInfo& fi, Bytes pos, Bytes length,
                std::uint8_t* buffer) {
  const auto it = fs.content.find(fi.id);
  if (it != fs.content.end()) {
    OPASS_CHECK(pos + length <= it->second.size(),
                "read past the stored content of '" + fi.name + "'");
    std::memcpy(buffer, it->second.data() + pos, length);
    return;
  }
  const Bytes chunk_size = fs.nn->chunk_size();
  for (Bytes i = 0; i < length; ++i) {
    const Bytes p = pos + i;
    const auto chunk_index = static_cast<std::size_t>(p / chunk_size);
    buffer[i] = synthetic_byte(fi.chunks[chunk_index], p % chunk_size);
  }
}

}  // namespace

std::uint8_t synthetic_byte(dfs::ChunkId chunk, Bytes offset_in_chunk) {
  // Cheap deterministic mix of chunk id and offset.
  std::uint64_t x = (static_cast<std::uint64_t>(chunk) << 32) ^ offset_in_chunk;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return static_cast<std::uint8_t>(x);
}

hdfsFS hdfsConnect(dfs::NameNode* nn, dfs::NodeId local_node, dfs::PlacementKind placement,
                   dfs::ReplicaChoice replica_choice, std::uint64_t seed) {
  OPASS_REQUIRE(nn != nullptr, "hdfsConnect needs a NameNode");
  OPASS_REQUIRE(local_node == dfs::kInvalidNode || local_node < nn->node_count(),
                "client node out of range");
  auto* fs = new FileSystemImpl;
  fs->nn = nn;
  fs->local_node = local_node;
  fs->placement = dfs::make_placement(placement);
  fs->replica_choice = replica_choice;
  fs->rng.reseed(seed);
  return fs;
}

void hdfsDisconnect(hdfsFS fs) {
  if (!fs) return;
  for (const auto& f : fs->open_files)
    OPASS_REQUIRE(f->closed, "disconnect with open files");
  delete fs;
}

hdfsFile hdfsOpenFile(hdfsFS fs, const std::string& path, int flags) {
  OPASS_REQUIRE(fs != nullptr, "null file system handle");
  auto file = std::make_unique<FileImpl>();
  file->path = path;
  if (flags == O_RDONLY_) {
    const auto fid = fs->nn->find_file(path);
    if (fid == dfs::NameNode::kInvalidFile) return nullptr;
    file->fid = fid;
  } else if (flags == O_WRONLY_) {
    if (fs->nn->exists(path)) return nullptr;  // no overwrite, like HDFS
    file->writable = true;
  } else {
    return nullptr;  // unsupported mode
  }
  fs->open_files.push_back(std::move(file));
  return fs->open_files.back().get();
}

int hdfsCloseFile(hdfsFS fs, hdfsFile file) {
  if (!fs || !file || file->closed) return -1;
  if (file->writable) {
    if (file->pending.empty()) {
      file->closed = true;
      return -1;  // HDFS cannot commit an empty file in this model
    }
    const auto fid = fs->nn->create_file(file->path, file->pending.size(), *fs->placement,
                                         fs->rng, fs->local_node);
    fs->content.emplace(fid, std::move(file->pending));
  }
  file->closed = true;
  return 0;
}

tSize hdfsRead(hdfsFS fs, hdfsFile file, void* buffer, tSize length) {
  const tSize n = hdfsPread(fs, file, static_cast<tOffset>(file ? file->cursor : 0), buffer,
                            length);
  if (n > 0) file->cursor += static_cast<Bytes>(n);
  return n;
}

tSize hdfsPread(hdfsFS fs, hdfsFile file, tOffset position, void* buffer, tSize length) {
  if (!fs || !file || file->closed || file->writable || length < 0 || position < 0)
    return -1;
  const auto& fi = fs->nn->file(file->fid);
  if (fs->nn->is_deleted(file->fid)) return -1;
  const auto pos = static_cast<Bytes>(position);
  if (pos >= fi.size) return 0;  // EOF
  const Bytes n = std::min<Bytes>(static_cast<Bytes>(length), fi.size - pos);
  fill_bytes(*fs, fi, pos, n, static_cast<std::uint8_t*>(buffer));
  return static_cast<tSize>(n);
}

tSize hdfsWrite(hdfsFS fs, hdfsFile file, const void* buffer, tSize length) {
  if (!fs || !file || file->closed || !file->writable || length < 0) return -1;
  const auto* bytes = static_cast<const std::uint8_t*>(buffer);
  file->pending.insert(file->pending.end(), bytes, bytes + length);
  return length;
}

int hdfsSeek(hdfsFS fs, hdfsFile file, tOffset pos) {
  if (!fs || !file || file->closed || file->writable || pos < 0) return -1;
  if (static_cast<Bytes>(pos) > fs->nn->file(file->fid).size) return -1;
  file->cursor = static_cast<Bytes>(pos);
  return 0;
}

tOffset hdfsTell(hdfsFS /*fs*/, hdfsFile file) {
  if (!file || file->closed) return -1;
  return static_cast<tOffset>(file->cursor);
}

tOffset hdfsAvailable(hdfsFS fs, hdfsFile file) {
  if (!fs || !file || file->closed || file->writable) return -1;
  const auto& fi = fs->nn->file(file->fid);
  return static_cast<tOffset>(fi.size - std::min(file->cursor, fi.size));
}

int hdfsExists(hdfsFS fs, const std::string& path) {
  return fs && fs->nn->exists(path) ? 0 : -1;
}

int hdfsDelete(hdfsFS fs, const std::string& path) {
  if (!fs) return -1;
  const auto fid = fs->nn->find_file(path);
  if (fid == dfs::NameNode::kInvalidFile) return -1;
  fs->nn->delete_file(fid);
  fs->content.erase(fid);
  return 0;
}

int hdfsRename(hdfsFS fs, const std::string& old_path, const std::string& new_path) {
  if (!fs) return -1;
  const auto fid = fs->nn->find_file(old_path);
  if (fid == dfs::NameNode::kInvalidFile || fs->nn->exists(new_path)) return -1;
  fs->nn->rename_file(fid, new_path);
  return 0;
}

std::optional<hdfsFileInfo> hdfsGetPathInfo(hdfsFS fs, const std::string& path) {
  if (!fs) return std::nullopt;
  const auto fid = fs->nn->find_file(path);
  if (fid == dfs::NameNode::kInvalidFile) return std::nullopt;
  const auto& fi = fs->nn->file(fid);
  return hdfsFileInfo{fi.name, fi.size, fs->nn->chunk_size(), fs->nn->replication()};
}

std::vector<hdfsFileInfo> hdfsListDirectory(hdfsFS fs, const std::string& prefix) {
  std::vector<hdfsFileInfo> out;
  if (!fs) return out;
  for (const auto fid : fs->nn->list_prefix(prefix)) {
    const auto& fi = fs->nn->file(fid);
    out.push_back({fi.name, fi.size, fs->nn->chunk_size(), fs->nn->replication()});
  }
  return out;
}

std::vector<std::vector<dfs::NodeId>> hdfsGetHosts(hdfsFS fs, const std::string& path,
                                                   tOffset start, tOffset length) {
  std::vector<std::vector<dfs::NodeId>> out;
  if (!fs || start < 0 || length < 0) return out;
  const auto fid = fs->nn->find_file(path);
  if (fid == dfs::NameNode::kInvalidFile) return out;
  const auto& fi = fs->nn->file(fid);
  const Bytes chunk_size = fs->nn->chunk_size();
  const auto begin = static_cast<Bytes>(start);
  const Bytes end = std::min(fi.size, begin + static_cast<Bytes>(length));
  for (std::size_t ci = 0; ci < fi.chunks.size(); ++ci) {
    const Bytes c_begin = static_cast<Bytes>(ci) * chunk_size;
    const Bytes c_end = c_begin + fs->nn->chunk(fi.chunks[ci]).size;
    if (c_end <= begin || c_begin >= end) continue;
    out.push_back(fs->nn->locations(fi.chunks[ci]));
  }
  return out;
}

Bytes hdfsGetDefaultBlockSize(hdfsFS fs) { return fs ? fs->nn->chunk_size() : 0; }

Bytes hdfsGetUsed(hdfsFS fs) {
  if (!fs) return 0;
  Bytes used = 0;
  for (Bytes b : fs->nn->node_bytes()) used += b;
  return used;
}

dfs::NodeId hdfsPickServer(hdfsFS fs, dfs::ChunkId chunk) {
  OPASS_REQUIRE(fs != nullptr, "null file system handle");
  return dfs::choose_serving_node(fs->nn->chunk(chunk), fs->local_node, {},
                                  fs->replica_choice, fs->rng);
}

}  // namespace opass::hdfs
