#include "runtime/task.hpp"

namespace opass::runtime {

std::vector<Task> single_input_tasks(const dfs::NameNode& nn,
                                     const std::vector<dfs::FileId>& files,
                                     Seconds compute_time) {
  std::vector<Task> tasks;
  for (auto fid : files) {
    for (auto cid : nn.file(fid).chunks) {
      Task t;
      t.id = static_cast<TaskId>(tasks.size());
      t.inputs = {cid};
      t.compute_time = compute_time;
      tasks.push_back(std::move(t));
    }
  }
  return tasks;
}

Bytes total_task_bytes(const dfs::NameNode& nn, const std::vector<Task>& tasks) {
  Bytes total = 0;
  for (const auto& t : tasks) total += t.input_bytes(nn);
  return total;
}

}  // namespace opass::runtime
