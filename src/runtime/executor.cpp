#include "runtime/executor.hpp"

#include <algorithm>
#include <memory>
#include <numeric>

#include "common/require.hpp"
#include "common/thread_pool.hpp"

namespace opass::runtime {

namespace {

/// Callback-driven state machine for one job. Lives on the heap for the
/// duration of the cluster run; all per-process continuations capture a raw
/// pointer to it, which is safe because execute()/execute_jobs() join before
/// returning.
class Driver {
 public:
  Driver(sim::Cluster& cluster, const dfs::NameNode& nn, const std::vector<Task>& tasks,
         TaskSource& source, Rng& rng, const ExecutorConfig& config)
      : cluster_(cluster), nn_(nn), tasks_(tasks), source_(source), rng_(rng) {
    const std::uint32_t m = config.process_count ? config.process_count : cluster.node_count();
    OPASS_REQUIRE(m > 0, "need at least one process");
    replica_choice_ = config.replica_choice;
    prefetch_ = config.prefetch;
    bsp_ = config.barrier_per_task;
    breakdown_ = config.record_read_breakdown;
    if (breakdown_) cluster.record_read_breakdown(true);
    probe_ = config.probe;
    pool_ = config.pool;
    staged_ = pool_ != nullptr && pool_->thread_count() > 1 && !prefetch_ &&
              source.concurrent_pull_safe();
    depth_.assign(m, 0);
    OPASS_REQUIRE(!(prefetch_ && bsp_), "prefetch and barrier_per_task are exclusive");
    result_.process_finish_time.assign(m, 0);
    result_.barrier_stall.assign(m, 0);
    retired_.assign(m, 0);
    wave_arrival_.assign(m, -1.0);
    wave_active_ = m;
    states_.resize(m);
    for (ProcessId p = 0; p < m; ++p) {
      states_[p].node = static_cast<dfs::NodeId>(p % cluster.node_count());
    }
  }

  /// Launch all processes at `start_time` (>= now).
  void launch(Seconds start_time) {
    if (start_time <= cluster_.simulator().now()) {
      launch_all();
      return;
    }
    cluster_.simulator().at(start_time, [this](Seconds) { launch_all(); });
  }

  /// Collect the result; valid only after the cluster ran to quiescence.
  ExecutionResult take_result() {
    result_.makespan = 0;
    for (Seconds t : result_.process_finish_time)
      result_.makespan = std::max(result_.makespan, t);
    return std::move(result_);
  }

 private:
  struct ProcState {
    dfs::NodeId node = 0;
    TaskId task = kInvalidTask;        ///< task whose inputs are being read
    std::size_t next_input = 0;
    Seconds task_start = 0;            ///< pull time of `task`
    // Prefetch mode: the cycle's join counter. A cycle = compute(T) overlapped
    // with reads(T+1); the cycle advances when both events have fired.
    TaskId computing = kInvalidTask;   ///< task whose compute is in flight
    Seconds computing_start = 0;       ///< pull time of `computing`
    std::uint32_t events_pending = 0;
  };

  void pull_next_task(ProcessId p) {
    if (prefetch_) {
      pull_prefetched(p, /*first=*/true);
      return;
    }
    const Pull r = source_.pull(p, cluster_.simulator().now());
    switch (r.kind) {
      case Pull::Kind::kDone:
        retire_process(p);
        return;
      case Pull::Kind::kWait:
        OPASS_REQUIRE(r.retry_after > 0, "wait must carry a positive retry delay");
        cluster_.simulator().after(r.retry_after,
                                   [this, p](Seconds) { pull_next_task(p); });
        return;
      case Pull::Kind::kTask:
        break;
    }
    OPASS_REQUIRE(r.task < tasks_.size(), "task source returned unknown task");
    states_[p].task = r.task;
    states_[p].next_input = 0;
    states_[p].task_start = cluster_.simulator().now();
    ++result_.tasks_executed;
    read_next_input(p);
  }

  /// Source drained for this process: record its finish and, under BSP,
  /// shrink the wave (releasing it if everyone left is already parked).
  void retire_process(ProcessId p) {
    result_.process_finish_time[p] = cluster_.simulator().now();
    if (bsp_ && !retired_[p]) {
      retired_[p] = 1;
      OPASS_CHECK(wave_active_ > 0, "wave accounting underflow");
      --wave_active_;
      // If everyone else is already waiting, the shrunken wave releases.
      if (wave_active_ > 0 && wave_arrived_ == wave_active_) release_wave();
    }
  }

  // --- staged wave issue (ExecutorConfig::pool) ---
  //
  // A launch and every BSP barrier release issue one pull per active process
  // at a single instant. The serial loop interleaves, per process: the
  // source pull, the chunk lookup, the replica choice, and the read/compute
  // issue. Staging splits that into a pure half and a stateful half:
  //
  //   Phase A (pool, sharded over processes): source_.pull (per-process
  //   state only — guarded by TaskSource::concurrent_pull_safe), the task
  //   bounds check, the first-input chunk lookup, and the local-replica
  //   test. None of these touch shared mutable state.
  //
  //   Phase B (serial, ascending process order): everything observable — rng
  //   draws, load-based replica choice, timer scheduling, cluster_.read.
  //
  // Byte-exactness versus the serial loop:
  //  1. No simulated time passes inside a wave (issues only schedule events),
  //     so every pull sees the same `now` in both schedules.
  //  2. Process p's issue cannot change process q's Phase A inputs: the
  //     source is per-process by contract, nn_ and task tables are
  //     immutable, and node failures only flip via timers, never
  //     synchronously from an issue. The one mutable input to replica
  //     choice — inflight_per_node — is only read for *remote* reads, which
  //     Phase A defers entirely to Phase B.
  //  3. choose_serving_node returns the reader without an rng draw or load
  //     read whenever the reader holds a live replica (every policy), so the
  //     staged local fast path is the serial choice verbatim; remote reads
  //     re-run the full serial choice in Phase B, consuming the rng stream
  //     in the serial order.
  //  4. All side effects — timer seqs, rng draws, task_spans pushes, probe
  //     stamps, wave accounting, synchronous zero-input completions — happen
  //     in Phase B in the serial per-process order, so the event heap and
  //     every counter evolve identically.

  /// Phase A result for one process (plain data, written from pool lanes).
  struct StagedPull {
    Pull pull;
    dfs::ChunkId chunk = 0;   ///< first input (valid when has_inputs)
    bool has_inputs = false;  ///< kTask with at least one input chunk
    bool local = false;       ///< reader holds a live replica of `chunk`
  };

  void launch_all() {
    if (!staged_) {
      for (ProcessId p = 0; p < states_.size(); ++p) pull_next_task(p);
      return;
    }
    std::vector<ProcessId> all(states_.size());
    std::iota(all.begin(), all.end(), ProcessId{0});
    pull_wave(all);
  }

  /// Issue one synchronized wave of pulls, staged across the pool when
  /// enabled (see the block comment above for the equivalence argument).
  void pull_wave(const std::vector<ProcessId>& procs) {
    if (!staged_ || procs.size() < 2) {
      for (ProcessId p : procs) pull_next_task(p);
      return;
    }
    const Seconds now = cluster_.simulator().now();
    // Own the stage buffer locally: Phase B can reenter release_wave (and
    // thus pull_wave) when a zero-input task completes synchronously.
    std::vector<StagedPull> staged = std::move(stage_buf_);
    staged.resize(procs.size());
    pool_->parallel_for_chunks(
        procs.size(), kMinStagedPerChunk,
        [&](std::size_t begin, std::size_t end, std::size_t) {
          for (std::size_t i = begin; i < end; ++i)
            staged[i] = stage_pull(procs[i], now);
        });
    for (std::size_t i = 0; i < procs.size(); ++i) commit_pull(procs[i], staged[i]);
    staged.clear();
    stage_buf_ = std::move(staged);
  }

  /// Phase A: pure per-process work. Runs on pool lanes — must not touch
  /// shared mutable state (rng_, result_, timers, cluster mutation).
  StagedPull stage_pull(ProcessId p, Seconds now) {
    StagedPull s;
    s.pull = source_.pull(p, now);
    if (s.pull.kind != Pull::Kind::kTask) return s;
    OPASS_REQUIRE(s.pull.task < tasks_.size(), "task source returned unknown task");
    const Task& task = tasks_[s.pull.task];
    s.has_inputs = !task.inputs.empty();
    if (!s.has_inputs) return s;
    s.chunk = task.inputs.front();
    const dfs::NodeId reader = states_[p].node;
    s.local = nn_.chunk(s.chunk).has_replica_on(reader) && !cluster_.is_failed(reader);
    return s;
  }

  /// Phase B: replay the observable half of pull_next_task for one staged
  /// result, in the serial order (the caller iterates ascending processes).
  void commit_pull(ProcessId p, const StagedPull& s) {
    switch (s.pull.kind) {
      case Pull::Kind::kDone:
        retire_process(p);
        return;
      case Pull::Kind::kWait:
        OPASS_REQUIRE(s.pull.retry_after > 0, "wait must carry a positive retry delay");
        cluster_.simulator().after(s.pull.retry_after,
                                   [this, p](Seconds) { pull_next_task(p); });
        return;
      case Pull::Kind::kTask:
        break;
    }
    ProcState& st = states_[p];
    st.task = s.pull.task;
    st.next_input = 0;
    st.task_start = cluster_.simulator().now();
    ++result_.tasks_executed;
    if (!s.has_inputs) {
      // Zero-input task: compute phase / synchronous completion, exactly the
      // serial path (may arrive at the barrier or pull again).
      read_next_input(p);
      return;
    }
    st.next_input = 1;
    if (s.local) {
      issue_read_to(p, s.chunk, st.node);
    } else {
      issue_read(p, s.chunk);  // remote: full serial choice, rng in order
    }
  }

  /// One task fully processed: either pull the next immediately (async) or
  /// wait at the per-task barrier (BSP).
  void task_complete(ProcessId p) {
    const Seconds now = cluster_.simulator().now();
    result_.task_spans.push_back({p, states_[p].task, states_[p].task_start, now});
    if (!bsp_) {
      pull_next_task(p);
      return;
    }
    wave_arrival_[p] = now;
    ++wave_arrived_;
    if (wave_arrived_ < wave_active_) return;
    release_wave();
  }

  /// Every active process finished its task: everyone pulls the next one.
  /// Retirements (source drained) shrink the wave. Time spent parked at the
  /// barrier is charged to each waiter's barrier_stall (the last arriver's
  /// share is zero by construction).
  void release_wave() {
    const Seconds now = cluster_.simulator().now();
    wave_arrived_ = 0;
    // Reuse the hoisted buffer's capacity, but own it locally for the
    // duration: pull_next_task can reenter release_wave (a zero-input task
    // completes synchronously), and the inner call must not clobber ours.
    std::vector<ProcessId> wave = std::move(wave_buf_);
    wave.clear();
    for (ProcessId p = 0; p < states_.size(); ++p)
      if (!retired_[p]) wave.push_back(p);
    for (ProcessId p : wave) {
      if (wave_arrival_[p] >= 0) {
        result_.barrier_stall[p] += now - wave_arrival_[p];
        wave_arrival_[p] = -1.0;
      }
    }
    pull_wave(wave);
    wave_buf_ = std::move(wave);
  }

  void read_next_input(ProcessId p) {
    ProcState& st = states_[p];
    const Task& task = tasks_[st.task];
    if (st.next_input >= task.inputs.size()) {
      if (prefetch_) {
        // Bootstrap (nothing computing yet) starts the first cycle; reads
        // finishing inside a cycle are the cycle's second join event.
        if (st.computing == kInvalidTask) {
          reads_finished_prefetch(p);
        } else {
          cycle_event(p);
        }
        return;
      }
      // All inputs in memory: spend the compute time, then continue.
      if (task.compute_time > 0) {
        bump_depth(p, +1);
        cluster_.simulator().after(task.compute_time, [this, p](Seconds) {
          bump_depth(p, -1);
          task_complete(p);
        });
      } else {
        task_complete(p);
      }
      return;
    }

    const dfs::ChunkId cid = task.inputs[st.next_input++];
    issue_read(p, cid);
  }

  // --- prefetch (depth-1 read-ahead) mode ---

  /// Pull a task and start reading its inputs; `first` bootstraps the
  /// pipeline (nothing is computing yet). A kDone on a non-first pull fires
  /// the cycle's reads event (trivially complete); a kWait retries later.
  void pull_prefetched(ProcessId p, bool first) {
    ProcState& st = states_[p];
    const Pull r = source_.pull(p, cluster_.simulator().now());
    switch (r.kind) {
      case Pull::Kind::kDone:
        st.task = kInvalidTask;
        if (first) {
          result_.process_finish_time[p] = cluster_.simulator().now();
        } else {
          cycle_event(p);
        }
        return;
      case Pull::Kind::kWait:
        OPASS_REQUIRE(r.retry_after > 0, "wait must carry a positive retry delay");
        cluster_.simulator().after(
            r.retry_after, [this, p, first](Seconds) { pull_prefetched(p, first); });
        return;
      case Pull::Kind::kTask:
        break;
    }
    OPASS_REQUIRE(r.task < tasks_.size(), "task source returned unknown task");
    st.task = r.task;
    st.next_input = 0;
    st.task_start = cluster_.simulator().now();
    ++result_.tasks_executed;
    read_next_input(p);
  }

  /// Inputs of st.task are in memory: start its compute and overlap the
  /// next task's reads; the cycle advances when both join events fire.
  void reads_finished_prefetch(ProcessId p) {
    ProcState& st = states_[p];
    st.computing = st.task;
    st.computing_start = st.task_start;
    const Task& task = tasks_[st.computing];
    st.events_pending = 2;  // event A: compute; event B: next task's reads

    if (task.compute_time > 0) {
      bump_depth(p, +1);
      cluster_.simulator().after(
          task.compute_time,
          [this, p, t = st.computing, s = st.computing_start](Seconds end) {
            bump_depth(p, -1);
            result_.task_spans.push_back({p, t, s, end});
            cycle_event(p);
          });
    }

    // Event B: fetch the next task's inputs while computing (fires
    // cycle_event itself, directly for kDone or after the reads land).
    pull_prefetched(p, /*first=*/false);

    if (task.compute_time <= 0) {  // A is trivial
      result_.task_spans.push_back(
          {p, st.computing, st.computing_start, cluster_.simulator().now()});
      cycle_event(p);
    }
  }

  void cycle_event(ProcessId p) {
    ProcState& st = states_[p];
    OPASS_CHECK(st.events_pending > 0, "cycle barrier underflow");
    if (--st.events_pending > 0) return;
    st.computing = kInvalidTask;
    if (st.task == kInvalidTask) {
      result_.process_finish_time[p] = cluster_.simulator().now();
      return;
    }
    // The prefetched task's inputs are in memory: it becomes the computing
    // task of the next cycle.
    reads_finished_prefetch(p);
  }

  void issue_read(ProcessId p, dfs::ChunkId cid) {
    const ProcState& st = states_[p];
    // Serve from live replicas only; a node that failed mid-run is skipped
    // (metadata-level re-replication is the NameNode's job, not ours). On a
    // healthy cluster the filter is a no-op, so skip the ChunkInfo copy it
    // would need — this path runs once per read.
    const dfs::ChunkInfo& info = nn_.chunk(cid);
    dfs::NodeId server;
    if (!cluster_.has_failed_nodes()) {
      server = dfs::choose_serving_node(info, st.node, cluster_.inflight_per_node(),
                                        replica_choice_, rng_);
    } else {
      dfs::ChunkInfo alive = info;
      std::erase_if(alive.replicas,
                    [this](dfs::NodeId n) { return cluster_.is_failed(n); });
      OPASS_REQUIRE(!alive.replicas.empty(),
                    "all replicas of a chunk are on failed nodes");
      server = dfs::choose_serving_node(alive, st.node, cluster_.inflight_per_node(),
                                        replica_choice_, rng_);
    }
    issue_read_to(p, cid, server);
  }

  /// Issue the read with the serving replica already chosen (the staged
  /// local fast path skips choose_serving_node; see pull_wave).
  void issue_read_to(ProcessId p, dfs::ChunkId cid, dfs::NodeId server) {
    const ProcState& st = states_[p];
    const dfs::ChunkInfo& info = nn_.chunk(cid);

    sim::ReadRecord rec;
    rec.process = p;
    rec.reader_node = st.node;
    rec.serving_node = server;
    rec.chunk = cid;
    rec.task = st.task;
    rec.bytes = info.size;
    rec.issue_time = cluster_.simulator().now();
    rec.local = server == st.node;

    bump_depth(p, +1);
    cluster_.read(
        st.node, server, info.size,
        [this, p, rec](Seconds end) mutable {
          bump_depth(p, -1);
          rec.end_time = end;
          result_.trace.add(rec);
          if (breakdown_) result_.read_breakdowns.push_back(cluster_.last_read_breakdown());
          read_next_input(p);
        },
        [this, p, cid](Seconds) {
          // Server died mid-read: retry on another replica.
          bump_depth(p, -1);
          ++result_.read_failures;
          issue_read(p, cid);
        });
  }

  /// Queue-depth stamp: maintained only when a probe is attached, so the
  /// unprobed hot path pays one branch.
  void bump_depth(ProcessId p, int delta) {
    if (probe_ == nullptr) return;
    OPASS_CHECK(delta > 0 || depth_[p] > 0, "process depth underflow");
    depth_[p] = static_cast<std::uint32_t>(static_cast<int>(depth_[p]) + delta);
    probe_->on_process_depth(cluster_.simulator().now(), p, depth_[p]);
  }

  /// Phase A is cheap per process (a pull, a chunk lookup, a replica scan);
  /// don't shard below this many processes per chunk.
  static constexpr std::size_t kMinStagedPerChunk = 16;

  sim::Cluster& cluster_;
  const dfs::NameNode& nn_;
  const std::vector<Task>& tasks_;
  TaskSource& source_;
  Rng& rng_;
  dfs::ReplicaChoice replica_choice_ = dfs::ReplicaChoice::kRandom;
  bool prefetch_ = false;
  bool bsp_ = false;
  bool breakdown_ = false;  ///< copy per-read causal breakdowns into the result
  bool staged_ = false;  ///< pool with >1 lane + concurrent-pull-safe source
  ExecutorProbe* probe_ = nullptr;
  ThreadPool* pool_ = nullptr;
  std::vector<StagedPull> stage_buf_;  ///< reusable Phase A scratch
  std::vector<std::uint32_t> depth_;  ///< per-process op depth (probe only)
  std::vector<char> retired_;
  std::vector<Seconds> wave_arrival_;  ///< barrier-park time per process; -1 = not parked
  std::vector<ProcessId> wave_buf_;    ///< reusable wave scratch for release_wave
  std::uint32_t wave_active_ = 0;
  std::uint32_t wave_arrived_ = 0;
  std::vector<ProcState> states_;
  ExecutionResult result_;
};

}  // namespace

ExecutionResult execute(sim::Cluster& cluster, const dfs::NameNode& nn,
                        const std::vector<Task>& tasks, TaskSource& source, Rng& rng,
                        ExecutorConfig config) {
  OPASS_REQUIRE(cluster.simulator().active_flows() == 0,
                "cluster must be idle before an execution");
  Driver driver(cluster, nn, tasks, source, rng, config);
  driver.launch(cluster.simulator().now());
  cluster.run();
  return driver.take_result();
}

std::vector<ExecutionResult> execute_jobs(sim::Cluster& cluster, const dfs::NameNode& nn,
                                          std::vector<JobSpec> jobs, Rng& rng) {
  OPASS_REQUIRE(!jobs.empty(), "need at least one job");
  OPASS_REQUIRE(cluster.simulator().active_flows() == 0,
                "cluster must be idle before an execution");
  const Seconds base = cluster.simulator().now();

  std::vector<std::unique_ptr<Driver>> drivers;
  drivers.reserve(jobs.size());
  for (const auto& job : jobs) {
    OPASS_REQUIRE(job.tasks != nullptr && job.source != nullptr,
                  "job needs a task table and a source");
    OPASS_REQUIRE(job.start_time >= 0, "job start time must be non-negative");
    drivers.push_back(
        std::make_unique<Driver>(cluster, nn, *job.tasks, *job.source, rng, job.config));
    drivers.back()->launch(base + job.start_time);
  }
  cluster.run();

  std::vector<ExecutionResult> results;
  results.reserve(jobs.size());
  for (auto& d : drivers) results.push_back(d->take_result());
  return results;
}

}  // namespace opass::runtime
