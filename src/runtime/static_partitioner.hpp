// Rank-interval static task assignment — the ParaView baseline.
//
// Section II of the paper: each data-server process computes its own share of
// the meta-file from its rank; process i gets the task indices in
// [ i * n/m , (i+1) * n/m ). This is oblivious to data placement and is the
// baseline Opass improves on for single-data access.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/task.hpp"

namespace opass::runtime {

/// A complete assignment: per-process ordered task lists.
using Assignment = std::vector<std::vector<TaskId>>;

/// The ParaView rank-interval formula. Tasks need not divide evenly; the
/// interval arithmetic matches the paper's expression with integer floors, so
/// every task lands in exactly one process's interval.
Assignment rank_interval_assignment(std::uint32_t task_count, std::uint32_t process_count);

/// Sanity helper: true iff every task id in [0, task_count) appears exactly
/// once across all processes.
bool is_partition(const Assignment& a, std::uint32_t task_count);

/// Largest and smallest per-process task counts.
std::pair<std::uint32_t, std::uint32_t> load_spread(const Assignment& a);

}  // namespace opass::runtime
