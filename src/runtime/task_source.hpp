// Task sources: where an idle process gets its next task.
//
// Static sources replay a precomputed Assignment (rank-interval or Opass
// matching); the master–worker source models the mpiBLAST-style scheduler of
// Section IV-D, handing out tasks dynamically. Opass's dynamic scheduler
// (opass/dynamic_scheduler.hpp) implements the same interface, so the
// executor is policy-agnostic.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "dfs/namenode.hpp"
#include "runtime/static_partitioner.hpp"
#include "runtime/task.hpp"

namespace opass::runtime {

/// Outcome of asking a source for work.
struct Pull {
  enum class Kind {
    kTask,  ///< run `task`
    kWait,  ///< nothing suitable *yet* — ask again after `retry_after`
    kDone,  ///< source drained for this process: retire
  };
  Kind kind = Kind::kDone;
  TaskId task = kInvalidTask;
  Seconds retry_after = 0;

  static Pull run(TaskId t) { return {Kind::kTask, t, 0}; }
  static Pull wait(Seconds retry) { return {Kind::kWait, kInvalidTask, retry}; }
  static Pull done() { return {}; }
};

/// Pull-based task dispenser. The executor calls pull() whenever a process
/// becomes idle; kWait lets locality-aware schedulers (e.g. delay
/// scheduling) hold a worker briefly instead of handing it remote work.
/// Simple sources only implement next_task(); the default pull() maps
/// nullopt to kDone.
class TaskSource {
 public:
  virtual ~TaskSource() = default;
  virtual std::optional<TaskId> next_task(ProcessId process, Seconds now) = 0;

  virtual Pull pull(ProcessId process, Seconds now) {
    const auto t = next_task(process, now);
    return t ? Pull::run(*t) : Pull::done();
  }

  /// True when pull() for distinct processes touches disjoint state, so the
  /// staged executor (ExecutorConfig::pool) may pull one whole wave
  /// concurrently — one call per process, never two concurrent calls for the
  /// same process. Sources with any shared hand-out state (global queues,
  /// stealing, delay clocks) must keep the default false; the executor then
  /// pulls the wave serially.
  virtual bool concurrent_pull_safe() const { return false; }
};

/// Replays a fixed per-process assignment in order.
class StaticAssignmentSource final : public TaskSource {
 public:
  explicit StaticAssignmentSource(Assignment assignment);
  std::optional<TaskId> next_task(ProcessId process, Seconds now) override;

  /// Replay state is one cursor per process; pulls for distinct processes
  /// never share a word.
  bool concurrent_pull_safe() const override { return true; }

 private:
  Assignment assignment_;
  std::vector<std::size_t> cursor_;
};

/// Default master–worker: a single global queue handed out first-come
/// first-served. The order is shuffled at construction, matching the paper's
/// dynamic baseline ("issue data requests via a random policy to simulate the
/// irregular computation patterns").
class MasterWorkerSource final : public TaskSource {
 public:
  MasterWorkerSource(std::uint32_t task_count, Rng& rng, bool shuffle = true);
  std::optional<TaskId> next_task(ProcessId process, Seconds now) override;

 private:
  std::vector<TaskId> queue_;
  std::size_t head_ = 0;
};

/// Delay scheduling (Zaharia et al., EuroSys'10 — the paper's reference on
/// locality scheduling): an idle worker first looks for a task whose input
/// is on its own node; if none exists it *waits* up to `max_delay` before
/// accepting remote work, on the theory that a local slot frees up soon.
/// Simplified single-job form with a per-worker wait clock. max_delay = 0
/// degenerates to the FIFO master–worker.
class DelaySchedulingSource final : public TaskSource {
 public:
  DelaySchedulingSource(const dfs::NameNode& nn, const std::vector<Task>& tasks,
                        std::vector<dfs::NodeId> placement, Rng& rng, Seconds max_delay,
                        Seconds retry_interval = 0.05);

  Pull pull(ProcessId process, Seconds now) override;

  /// next_task() is the delay-exhausted behavior: local if available, else
  /// the queue head immediately.
  std::optional<TaskId> next_task(ProcessId process, Seconds now) override;

  /// Observability: how many tasks were handed out locally.
  std::uint32_t local_grants() const { return local_grants_; }
  std::uint32_t remote_grants() const { return remote_grants_; }

 private:
  std::optional<TaskId> take_local(ProcessId process);
  TaskId take_head();

  const dfs::NameNode& nn_;
  const std::vector<Task>& tasks_;
  std::vector<dfs::NodeId> placement_;
  Seconds max_delay_;
  Seconds retry_interval_;
  std::vector<TaskId> queue_;  // remaining tasks, FIFO order
  std::vector<Seconds> wait_start_;  // per process; <0 = not waiting
  std::uint32_t local_grants_ = 0;
  std::uint32_t remote_grants_ = 0;
};

}  // namespace opass::runtime
