#include "runtime/task_source.hpp"

#include "common/require.hpp"

namespace opass::runtime {

StaticAssignmentSource::StaticAssignmentSource(Assignment assignment)
    : assignment_(std::move(assignment)), cursor_(assignment_.size(), 0) {}

std::optional<TaskId> StaticAssignmentSource::next_task(ProcessId process, Seconds /*now*/) {
  OPASS_REQUIRE(process < assignment_.size(), "process out of range");
  auto& i = cursor_[process];
  if (i >= assignment_[process].size()) return std::nullopt;
  return assignment_[process][i++];
}

MasterWorkerSource::MasterWorkerSource(std::uint32_t task_count, Rng& rng, bool shuffle) {
  queue_.resize(task_count);
  for (std::uint32_t t = 0; t < task_count; ++t) queue_[t] = t;
  if (shuffle) rng.shuffle(queue_);
}

std::optional<TaskId> MasterWorkerSource::next_task(ProcessId /*process*/, Seconds /*now*/) {
  if (head_ >= queue_.size()) return std::nullopt;
  return queue_[head_++];
}

DelaySchedulingSource::DelaySchedulingSource(const dfs::NameNode& nn,
                                             const std::vector<Task>& tasks,
                                             std::vector<dfs::NodeId> placement, Rng& rng,
                                             Seconds max_delay, Seconds retry_interval)
    : nn_(nn), tasks_(tasks), placement_(std::move(placement)), max_delay_(max_delay),
      retry_interval_(retry_interval), wait_start_(placement_.size(), -1.0) {
  OPASS_REQUIRE(max_delay_ >= 0, "delay must be non-negative");
  OPASS_REQUIRE(retry_interval_ > 0, "retry interval must be positive");
  queue_.resize(tasks.size());
  for (TaskId t = 0; t < tasks.size(); ++t) queue_[t] = t;
  rng.shuffle(queue_);
}

std::optional<TaskId> DelaySchedulingSource::take_local(ProcessId process) {
  const dfs::NodeId node = placement_[process];
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    bool local = true;
    for (dfs::ChunkId c : tasks_[queue_[i]].inputs) {
      if (!nn_.chunk(c).has_replica_on(node)) {
        local = false;
        break;
      }
    }
    if (local) {
      const TaskId t = queue_[i];
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
      return t;
    }
  }
  return std::nullopt;
}

TaskId DelaySchedulingSource::take_head() {
  const TaskId t = queue_.front();
  queue_.erase(queue_.begin());
  return t;
}

Pull DelaySchedulingSource::pull(ProcessId process, Seconds now) {
  OPASS_REQUIRE(process < placement_.size(), "process out of range");
  if (queue_.empty()) return Pull::done();

  if (const auto local = take_local(process)) {
    wait_start_[process] = -1.0;
    ++local_grants_;
    return Pull::run(*local);
  }
  // No local task: wait up to max_delay before settling for remote work.
  if (wait_start_[process] < 0) wait_start_[process] = now;
  if (now - wait_start_[process] < max_delay_) return Pull::wait(retry_interval_);
  wait_start_[process] = -1.0;
  ++remote_grants_;
  return Pull::run(take_head());
}

std::optional<TaskId> DelaySchedulingSource::next_task(ProcessId process, Seconds /*now*/) {
  OPASS_REQUIRE(process < placement_.size(), "process out of range");
  if (queue_.empty()) return std::nullopt;
  if (const auto local = take_local(process)) {
    ++local_grants_;
    return local;
  }
  ++remote_grants_;
  return take_head();
}

}  // namespace opass::runtime
