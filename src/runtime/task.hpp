// Data processing tasks.
//
// Following the paper's terminology: each operator on data partitions is a
// *task*; a task has one input chunk (single-data access), or several chunks
// from different datasets (multi-data access, e.g. comparing human / mouse /
// chimpanzee genome partitions), plus an optional compute time that models
// the processing after the read (rendering, alignment, ...).
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "dfs/namenode.hpp"
#include "dfs/types.hpp"

namespace opass::runtime {

using TaskId = std::uint32_t;
using ProcessId = std::uint32_t;

inline constexpr TaskId kInvalidTask = UINT32_MAX;

/// One data-processing task.
struct Task {
  TaskId id = 0;
  std::vector<dfs::ChunkId> inputs;  ///< chunks read (in order) before compute
  Seconds compute_time = 0;          ///< post-read processing time

  /// Total input bytes of the task (the paper's d(t_j) size).
  Bytes input_bytes(const dfs::NameNode& nn) const {
    Bytes total = 0;
    for (auto c : inputs) total += nn.chunk(c).size;
    return total;
  }
};

/// Build one single-input task per chunk of the given files, in chunk order.
std::vector<Task> single_input_tasks(const dfs::NameNode& nn,
                                     const std::vector<dfs::FileId>& files,
                                     Seconds compute_time = 0);

/// Total bytes across all tasks.
Bytes total_task_bytes(const dfs::NameNode& nn, const std::vector<Task>& tasks);

}  // namespace opass::runtime
