// Parallel execution driver.
//
// Models an MPI job: `process_count` processes launched simultaneously, one
// pinned per cluster node (process i on node i % node_count, matching the
// paper's one-process-per-node deployments). Each process loops: pull a task
// from the TaskSource, read the task's input chunks sequentially through the
// simulated cluster (local replica preferred, remote replica chosen by the
// configured policy), spend the task's compute time, repeat. The job ends at
// the implicit barrier when every process has drained — the paper's "overall
// execution time will be decided by the longest running process".
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "dfs/namenode.hpp"
#include "dfs/replica_choice.hpp"
#include "sim/cluster.hpp"
#include "sim/trace.hpp"
#include "runtime/task.hpp"
#include "runtime/task_source.hpp"

namespace opass {
class ThreadPool;
}

namespace opass::runtime {

/// One task's lifetime on a process: from the successful pull to the end of
/// its compute phase (input reads + compute; any barrier wait afterwards is
/// accounted separately in ExecutionResult::barrier_stall). Feeds the
/// per-process task timeline of the Chrome trace exporter.
struct TaskSpan {
  ProcessId process = 0;
  TaskId task = kInvalidTask;
  Seconds start = 0;  ///< when the task was pulled from the source
  Seconds end = 0;    ///< when its compute phase completed
};

/// Outcome of one parallel execution.
struct ExecutionResult {
  sim::TraceRecorder trace;
  std::vector<Seconds> process_finish_time;  ///< per-process drain time
  /// Per-task (pull → compute-done) intervals, in compute-completion order.
  std::vector<TaskSpan> task_spans;
  /// Causal breakdown of each completed read, index-aligned with
  /// trace.records() (empty unless ExecutorConfig::record_read_breakdown).
  /// Kept out of ReadRecord so the breakdown's per-interval storage is only
  /// paid when causal tracing is on.
  std::vector<sim::ReadBreakdown> read_breakdowns;
  /// Per-process seconds spent waiting at BSP per-task barriers (all zero
  /// unless ExecutorConfig::barrier_per_task). The implicit final barrier is
  /// not included — it is `makespan - process_finish_time[p]`.
  std::vector<Seconds> barrier_stall;
  Seconds makespan = 0;                      ///< max finish time (the barrier)
  std::uint32_t tasks_executed = 0;
  std::uint32_t read_failures = 0;  ///< aborted reads retried on another replica
};

/// Execution-lifecycle observer. The executor stays metric-blind (DESIGN.md
/// §8): it stamps per-process queue-depth transitions and nothing more;
/// turning the stamps into time series is the obs layer's job
/// (obs::ExecutorTimelineProbe).
class ExecutorProbe {
 public:
  virtual ~ExecutorProbe() = default;

  /// The process's operation depth changed: `depth` counts its in-flight
  /// operations (chunk reads being served plus an active compute phase)
  /// after the transition. Stamped at read issue/completion/abort and at
  /// compute start/end; a drained process stays at depth 0, which is what
  /// makes straggler tails visible on the timeline.
  virtual void on_process_depth(Seconds now, ProcessId process,
                                std::uint32_t depth) = 0;
};

/// Configuration of one parallel execution.
struct ExecutorConfig {
  std::uint32_t process_count = 0;  ///< 0 = one process per cluster node
  dfs::ReplicaChoice replica_choice = dfs::ReplicaChoice::kRandom;
  /// Overlap each task's compute with the next task's reads (depth-1
  /// read-ahead / double buffering). With prefetch on, a process pulls its
  /// next task as soon as it starts computing, so compute-heavy workloads
  /// hide their I/O entirely. Off by default — the paper's applications
  /// read synchronously.
  bool prefetch = false;
  /// BSP execution: a barrier after every task — no process starts its
  /// (k+1)-th task until every process finished its k-th. This is the
  /// "synchronization requirement" the paper cites for why one slow read
  /// prolongs the whole execution; it makes the imbalance penalty visible
  /// in its purest form. Mutually exclusive with prefetch.
  bool barrier_per_task = false;
  /// Record each read's causal breakdown (admission wait, positioning,
  /// binding-resource transfer intervals) into
  /// ExecutionResult::read_breakdowns for the obs span log. Enables the
  /// cluster's breakdown recording for the duration of the run; observation
  /// only — the simulated schedule is byte-identical either way.
  bool record_read_breakdown = false;
  /// Optional queue-depth probe (borrowed; must outlive the run). Null = no
  /// stamping, zero overhead.
  ExecutorProbe* probe = nullptr;
  /// Opt-in worker pool (borrowed, may be null; DESIGN.md §12). With more
  /// than one lane and a TaskSource that declares concurrent_pull_safe(),
  /// wave issue is staged: the pure per-process half (source pull, chunk
  /// lookup, local-replica check) runs on the pool, and the stateful half
  /// (rng draws, load-based replica choice, read/compute issue) replays
  /// serially in ascending process order. The resulting event schedule is
  /// byte-identical to pool = null — see Driver::pull_wave for the argument.
  /// Ignored in prefetch mode (no synchronized waves to shard).
  ThreadPool* pool = nullptr;
};

/// Run the job to completion on `cluster` (which must be idle) and return the
/// trace. `tasks` is the task table indexed by TaskId; `source` dispenses
/// task ids. `rng` drives replica choice.
ExecutionResult execute(sim::Cluster& cluster, const dfs::NameNode& nn,
                        const std::vector<Task>& tasks, TaskSource& source, Rng& rng,
                        ExecutorConfig config = {});

/// One application in a multi-job run.
struct JobSpec {
  const std::vector<Task>* tasks = nullptr;  ///< task table for this job
  TaskSource* source = nullptr;              ///< dispenser for this job
  ExecutorConfig config;
  Seconds start_time = 0;  ///< launch offset relative to the run's t = 0
};

/// Run several applications concurrently on one cluster — the shared-cluster
/// setting of paper Section V-C1 ("clusters are usually shared by multiple
/// applications"). Jobs contend for the same disks and NICs; each gets its
/// own trace and makespan (absolute completion time of its last process).
std::vector<ExecutionResult> execute_jobs(sim::Cluster& cluster, const dfs::NameNode& nn,
                                          std::vector<JobSpec> jobs, Rng& rng);

}  // namespace opass::runtime
