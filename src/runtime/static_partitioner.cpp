#include "runtime/static_partitioner.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace opass::runtime {

Assignment rank_interval_assignment(std::uint32_t task_count, std::uint32_t process_count) {
  OPASS_REQUIRE(process_count > 0, "need at least one process");
  Assignment a(process_count);
  for (std::uint32_t i = 0; i < process_count; ++i) {
    // [ i*n/m, (i+1)*n/m ) with 64-bit intermediates to avoid overflow.
    const auto lo = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(i) * task_count) / process_count);
    const auto hi = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(i + 1) * task_count) / process_count);
    a[i].reserve(hi - lo);
    for (std::uint32_t t = lo; t < hi; ++t) a[i].push_back(t);
  }
  return a;
}

bool is_partition(const Assignment& a, std::uint32_t task_count) {
  std::vector<std::uint32_t> seen(task_count, 0);
  for (const auto& list : a)
    for (TaskId t : list) {
      if (t >= task_count) return false;
      ++seen[t];
    }
  return std::all_of(seen.begin(), seen.end(), [](std::uint32_t c) { return c == 1; });
}

std::pair<std::uint32_t, std::uint32_t> load_spread(const Assignment& a) {
  OPASS_REQUIRE(!a.empty(), "assignment has no processes");
  std::uint32_t hi = 0, lo = UINT32_MAX;
  for (const auto& list : a) {
    hi = std::max(hi, static_cast<std::uint32_t>(list.size()));
    lo = std::min(lo, static_cast<std::uint32_t>(list.size()));
  }
  return {hi, lo};
}

}  // namespace opass::runtime
