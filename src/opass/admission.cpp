#include "opass/admission.hpp"

#include <algorithm>
#include <cstddef>
#include <iterator>

#include "common/require.hpp"

namespace opass::core {

void AdmissionQueue::push(PendingJob job) {
  const auto pos = std::upper_bound(
      queue_.begin(), queue_.end(), job, [](const PendingJob& a, const PendingJob& b) {
        if (a.request.arrival != b.request.arrival)
          return a.request.arrival < b.request.arrival;
        return a.id < b.id;
      });
  pending_tasks_ += job.request.tasks.size();
  queue_.insert(pos, std::move(job));
}

bool AdmissionQueue::cancel(JobId id) {
  const auto it = std::find_if(queue_.begin(), queue_.end(),
                               [id](const PendingJob& j) { return j.id == id; });
  if (it == queue_.end()) return false;
  pending_tasks_ -= it->request.tasks.size();
  queue_.erase(it);
  return true;
}

bool AdmissionQueue::batch_ready(Seconds now) const {
  return !queue_.empty() && queue_.front().request.arrival <= now;
}

Seconds AdmissionQueue::next_arrival() const {
  OPASS_REQUIRE(!queue_.empty(), "admission queue is empty");
  return queue_.front().request.arrival;
}

std::vector<PendingJob> AdmissionQueue::pop_batch(Seconds now, const BatchPolicy& policy) {
  OPASS_REQUIRE(batch_ready(now), "no batch is ready at this time");
  const Seconds head_arrival = queue_.front().request.arrival;
  const Seconds cutoff = std::min(now, head_arrival + policy.window);

  std::size_t take = 0;
  std::uint64_t tasks = 0;
  for (; take < queue_.size(); ++take) {
    const PendingJob& j = queue_[take];
    if (j.request.arrival > cutoff) break;
    if (policy.max_jobs != 0 && take == policy.max_jobs) break;
    // The head always pops so the queue cannot wedge on one oversized job.
    if (take > 0 && policy.max_tasks != 0 && tasks + j.request.tasks.size() > policy.max_tasks)
      break;
    tasks += j.request.tasks.size();
  }

  const auto cut = queue_.begin() + static_cast<std::ptrdiff_t>(take);
  std::vector<PendingJob> batch(std::make_move_iterator(queue_.begin()),
                                std::make_move_iterator(cut));
  queue_.erase(queue_.begin(), cut);
  pending_tasks_ -= tasks;
  return batch;
}

void TenantAccounts::touch(TenantId tenant, double weight) {
  OPASS_REQUIRE(weight > 0, "tenant weight must be positive");
  for (std::size_t i = 0; i < order_.size(); ++i) {
    if (order_[i] == tenant) {
      OPASS_REQUIRE(weights_[i] == weight,
                    "tenant re-registered with a different weight");
      return;
    }
  }
  order_.push_back(tenant);
  weights_.push_back(weight);
  charged_.push_back(0);
}

std::size_t TenantAccounts::index_of(TenantId tenant) const {
  for (std::size_t i = 0; i < order_.size(); ++i)
    if (order_[i] == tenant) return i;
  OPASS_REQUIRE(false, "unknown tenant");
}

bool TenantAccounts::known(TenantId tenant) const {
  return std::find(order_.begin(), order_.end(), tenant) != order_.end();
}

double TenantAccounts::weight(TenantId tenant) const { return weights_[index_of(tenant)]; }

Bytes TenantAccounts::charged(TenantId tenant) const { return charged_[index_of(tenant)]; }

void TenantAccounts::charge(TenantId tenant, Bytes local_bytes) {
  charged_[index_of(tenant)] += local_bytes;
}

void TenantAccounts::refund(TenantId tenant, Bytes local_bytes) {
  const std::size_t i = index_of(tenant);
  OPASS_CHECK(charged_[i] >= local_bytes, "tenant refund exceeds charged bytes");
  charged_[i] -= local_bytes;
}

double TenantAccounts::normalized_usage(TenantId tenant) const {
  const std::size_t i = index_of(tenant);
  return static_cast<double>(charged_[i]) / weights_[i];
}

std::vector<std::uint32_t> TenantAccounts::split_slots(
    std::uint32_t slots, const std::vector<TenantId>& tenant_ids,
    const std::vector<std::uint32_t>& demand, Bytes bytes_per_slot) const {
  OPASS_REQUIRE(tenant_ids.size() == demand.size(),
                "tenant and demand vectors must align");
  const std::size_t n = tenant_ids.size();
  std::vector<std::uint32_t> grant(n, 0);
  std::vector<double> usage(n), weight(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t idx = index_of(tenant_ids[i]);
    usage[i] = static_cast<double>(charged_[idx]);
    weight[i] = weights_[idx];
  }
  const auto per_slot = static_cast<double>(bytes_per_slot);
  for (std::uint32_t granted = 0; granted < slots; ++granted) {
    std::size_t best = n;
    double best_key = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (grant[i] >= demand[i]) continue;
      const double key = (usage[i] + grant[i] * per_slot) / weight[i];
      if (best == n || key < best_key ||
          (key == best_key && tenant_ids[i] < tenant_ids[best])) {
        best = i;
        best_key = key;
      }
    }
    if (best == n) break;  // every tenant is demand-capped
    ++grant[best];
  }
  return grant;
}

}  // namespace opass::core
