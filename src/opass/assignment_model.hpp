// Analytic predictions for a concrete assignment (pre-simulation).
//
// Given an assignment and the HDFS read policy (local preference, uniform
// remote replica choice), the expected bytes served by each node is a
// deterministic sum over tasks — no Monte Carlo needed. From it follow
// hard lower bounds on the parallel makespan: no node's disk can ship its
// served bytes faster than its bandwidth, and no process can finish before
// reading its own assigned bytes. These bounds let tests and capacity
// planning sanity-check the simulator from first principles.
#pragma once

#include <vector>

#include "dfs/namenode.hpp"
#include "runtime/static_partitioner.hpp"
#include "runtime/task.hpp"

namespace opass::core {

/// Expected bytes served by each node under local preference + uniform
/// remote replica choice: a chunk whose assigned process is co-located is
/// served locally with certainty; otherwise each replica holder serves it
/// with probability 1/r.
std::vector<double> expected_bytes_served(const dfs::NameNode& nn,
                                          const std::vector<runtime::Task>& tasks,
                                          const runtime::Assignment& assignment,
                                          const std::vector<dfs::NodeId>& placement);

/// Hard lower bound on the parallel makespan:
///   max( max_node E[bytes served by node] / disk_bandwidth,
///        max_process assigned bytes / disk_bandwidth )
/// The first term is exact for deterministic serve patterns (e.g. full
/// locality) and an expectation otherwise; the second ignores all contention
/// and latency, so the bound is conservative.
Seconds makespan_lower_bound(const dfs::NameNode& nn,
                             const std::vector<runtime::Task>& tasks,
                             const runtime::Assignment& assignment,
                             const std::vector<dfs::NodeId>& placement,
                             BytesPerSec disk_bandwidth);

}  // namespace opass::core
