// Incremental Opass planning for task batches that arrive over time.
//
// The paper's matchers assume the whole task set is known up front. In
// streaming settings (a visualization session opening new time steps, a
// pipeline ingesting series data) tasks arrive in batches; re-running the
// full matcher over everything would re-assign work that already executed.
// The incremental planner keeps per-process cumulative load and matches each
// new batch with a fresh Fig. 5 flow whose process capacities are the
// batch-adjusted fair share — so load stays balanced *across* batches while
// each batch gets the maximum locality available to it.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "dfs/namenode.hpp"
#include "graph/max_flow.hpp"
#include "opass/locality_graph.hpp"
#include "opass/planner.hpp"
#include "runtime/static_partitioner.hpp"
#include "runtime/task.hpp"

namespace opass::core {

/// Result of matching one batch.
struct [[nodiscard]] BatchPlan {
  /// Per-process lists of *global* task ids (as supplied in the batch).
  runtime::Assignment assignment;
  std::uint32_t locally_matched = 0;
  std::uint32_t randomly_filled = 0;
  /// Locality/balance profile of this batch's assignment (same shape as
  /// PlanResult::stats; task ids in the assignment are the caller's, so this
  /// is computed against the batch itself, not a global task table).
  AssignmentStats stats;
};

/// Stateful planner: construct once, then match_batch() per arrival.
class IncrementalPlanner {
 public:
  IncrementalPlanner(const dfs::NameNode& nn, ProcessPlacement placement,
                     graph::MaxFlowAlgorithm algorithm = graph::MaxFlowAlgorithm::kDinic);

  /// Match a batch of single-input tasks (ids are whatever the caller uses;
  /// they are returned verbatim in the assignment). Quotas for the batch
  /// are chosen so cumulative per-process task counts stay within one of
  /// each other. Of `options`, the flow knobs are honored: `algorithm`
  /// selects the per-batch solver and a non-null `workspace` replaces the
  /// planner's internal arena; `planner`/`steal_policy` do not apply here.
  BatchPlan match_batch(const std::vector<runtime::Task>& batch, Rng& rng,
                        const PlanOptions& options);

  /// Pre-facade spelling: the constructor's algorithm, internal workspace.
  [[deprecated("use match_batch(batch, rng, PlanOptions{...}) — options-last, "
               "like the core::plan() facade")]]
  BatchPlan match_batch(const std::vector<runtime::Task>& batch, Rng& rng);

  /// Cumulative tasks assigned to each process so far.
  const std::vector<std::uint32_t>& load() const { return load_; }

  std::uint32_t batches_matched() const { return batches_; }

 private:
  const dfs::NameNode& nn_;
  ProcessPlacement placement_;
  graph::MaxFlowAlgorithm algorithm_;
  graph::FlowWorkspace workspace_;  ///< reused across batches: no steady-state allocation
  std::vector<std::uint32_t> load_;
  std::uint32_t batches_ = 0;
};

}  // namespace opass::core
