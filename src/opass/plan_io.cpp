#include "opass/plan_io.hpp"

#include <fstream>
#include <sstream>

#include "common/require.hpp"

namespace opass::core {

std::string serialize_assignment(const runtime::Assignment& assignment,
                                 std::uint32_t task_count) {
  OPASS_REQUIRE(runtime::is_partition(assignment, task_count),
                "assignment is not a partition of the task set");
  std::ostringstream os;
  os << "opass-plan v1\n";
  os << "processes " << assignment.size() << '\n';
  os << "tasks " << task_count << '\n';
  for (std::size_t p = 0; p < assignment.size(); ++p) {
    os << "p " << p << " :";
    for (runtime::TaskId t : assignment[p]) os << ' ' << t;
    os << '\n';
  }
  return os.str();
}

runtime::Assignment parse_assignment(const std::string& text) {
  std::istringstream is(text);
  std::string line;

  OPASS_REQUIRE(std::getline(is, line) && line == "opass-plan v1",
                "plan header missing or unsupported version");

  std::string word;
  std::size_t processes = 0, tasks = 0;
  {
    OPASS_REQUIRE(static_cast<bool>(std::getline(is, line)), "missing 'processes' line");
    std::istringstream ls(line);
    OPASS_REQUIRE(ls >> word && word == "processes" && ls >> processes && processes > 0,
                  "malformed 'processes' line");
  }
  {
    OPASS_REQUIRE(static_cast<bool>(std::getline(is, line)), "missing 'tasks' line");
    std::istringstream ls(line);
    OPASS_REQUIRE((ls >> word) && word == "tasks" && (ls >> tasks),
                  "malformed 'tasks' line");
  }

  runtime::Assignment assignment(processes);
  for (std::size_t expected = 0; expected < processes; ++expected) {
    OPASS_REQUIRE(static_cast<bool>(std::getline(is, line)),
                  "plan truncated: missing process line");
    std::istringstream ls(line);
    std::size_t p = 0;
    std::string colon;
    OPASS_REQUIRE((ls >> word) && word == "p" && (ls >> p) && (ls >> colon) && colon == ":",
                  "malformed process line: " + line);
    OPASS_REQUIRE(p == expected, "process lines out of order");
    runtime::TaskId t;
    while (ls >> t) {
      OPASS_REQUIRE(t < tasks, "task id out of range in plan");
      assignment[p].push_back(t);
    }
    OPASS_REQUIRE(ls.eof(), "trailing garbage on process line: " + line);
  }

  OPASS_REQUIRE(runtime::is_partition(assignment, static_cast<std::uint32_t>(tasks)),
                "plan is not a partition: duplicate or missing task ids");
  return assignment;
}

void save_assignment(const std::string& path, const runtime::Assignment& assignment,
                     std::uint32_t task_count) {
  std::ofstream out(path, std::ios::trunc);
  OPASS_REQUIRE(out.good(), "cannot open plan file for writing: " + path);
  out << serialize_assignment(assignment, task_count);
  OPASS_REQUIRE(out.good(), "failed writing plan file: " + path);
}

runtime::Assignment load_assignment(const std::string& path) {
  std::ifstream in(path);
  OPASS_REQUIRE(in.good(), "cannot open plan file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_assignment(buffer.str());
}

}  // namespace opass::core
