#include "opass/service.hpp"

#include <algorithm>
#include <limits>

#include "common/require.hpp"
#include "graph/flow_network.hpp"

namespace opass::core {

PlannerService::PlannerService(const dfs::NameNode& nn, ProcessPlacement placement,
                               ServiceOptions options)
    : nn_(nn), placement_(std::move(placement)), options_(options),
      batch_policy_{options.batch_window, options.max_batch_jobs, options.max_batch_tasks},
      rng_(options.seed), load_(placement_.size(), 0) {
  OPASS_REQUIRE(!placement_.empty(), "need at least one process");
  OPASS_REQUIRE(options_.batch_window >= 0, "batch window must be non-negative");
  for (dfs::NodeId node : placement_)
    OPASS_REQUIRE(node < nn.node_count(), "process placed on unknown node");
}

JobId PlannerService::submit(JobRequest request) {
  OPASS_REQUIRE(request.arrival >= now_,
                "job arrival precedes the service's current time");
  for (const auto& t : request.tasks)
    OPASS_REQUIRE(t.inputs.size() == 1, "service jobs must hold single-input tasks");
  tenants_.touch(request.tenant, request.weight);

  const JobId id = static_cast<JobId>(jobs_.size()) + 1;
  Job job;
  job.status.id = id;
  job.status.state = JobState::kQueued;
  job.status.tenant = request.tenant;
  job.status.arrival = request.arrival;
  for (const auto& t : request.tasks)
    job.status.total_bytes += nn_.chunk(t.inputs[0]).size;
  jobs_.push_back(std::move(job));

  queue_.push(PendingJob{id, std::move(request)});
  ++counters_.jobs_submitted;
  counters_.max_queue_depth = std::max(counters_.max_queue_depth, queue_depth());
  if (probe_ != nullptr)
    probe_->on_job_queued(now_, jobs_.back().status, queue_depth());
  return id;
}

const JobStatus& PlannerService::status(JobId id) const {
  OPASS_REQUIRE(id != kInvalidJob && id <= jobs_.size(), "unknown job id");
  return jobs_[static_cast<std::size_t>(id - 1)].status;
}

bool PlannerService::cancel(JobId id) {
  OPASS_REQUIRE(id != kInvalidJob && id <= jobs_.size(), "unknown job id");
  Job& job = jobs_[static_cast<std::size_t>(id - 1)];
  switch (job.status.state) {
    case JobState::kQueued: {
      const bool removed = queue_.cancel(id);
      OPASS_CHECK(removed, "queued job missing from admission queue");
      break;
    }
    case JobState::kPlanned:
      // Incremental re-plan: free the capacity and the fairness charge so
      // the next batch's quotas and tenant splits see the withdrawal.
      for (std::uint32_t p = 0; p < load_.size(); ++p) {
        OPASS_CHECK(load_[p] >= job.process_tasks[p], "load underflow on cancel");
        load_[p] -= job.process_tasks[p];
      }
      tenants_.refund(job.status.tenant, job.status.local_bytes);
      break;
    case JobState::kCompleted:
    case JobState::kCancelled:
      return false;
  }
  job.status.state = JobState::kCancelled;
  ++counters_.jobs_cancelled;
  if (probe_ != nullptr) probe_->on_job_cancelled(now_, job.status, queue_depth());
  return true;
}

bool PlannerService::complete(JobId id) {
  OPASS_REQUIRE(id != kInvalidJob && id <= jobs_.size(), "unknown job id");
  Job& job = jobs_[static_cast<std::size_t>(id - 1)];
  if (job.status.state != JobState::kPlanned) return false;
  for (std::uint32_t p = 0; p < load_.size(); ++p) {
    OPASS_CHECK(load_[p] >= job.process_tasks[p], "load underflow on complete");
    load_[p] -= job.process_tasks[p];
  }
  job.status.state = JobState::kCompleted;
  ++counters_.jobs_completed;
  return true;
}

void PlannerService::advance_to(Seconds t) {
  OPASS_REQUIRE(t >= now_, "virtual time must not move backwards");
  // A batch is cut once its coalescing window closes: head arrival + window.
  while (!queue_.empty() && queue_.next_arrival() + options_.batch_window <= t) {
    const Seconds cut = queue_.next_arrival() + options_.batch_window;
    plan_batch(queue_.pop_batch(t, batch_policy_), cut);
  }
  now_ = t;
}

void PlannerService::drain() {
  while (!queue_.empty()) {
    const Seconds cut = queue_.next_arrival() + options_.batch_window;
    plan_batch(queue_.pop_batch(cut, batch_policy_), cut);
    now_ = std::max(now_, cut);
  }
}

namespace {

/// One task of a merged batch: which job it came from plus its input chunk.
struct BatchTask {
  std::uint32_t job = 0;  ///< index into the batch's job vector
  runtime::TaskId id = 0;
  dfs::ChunkId chunk = 0;
  std::uint32_t tenant_slot = 0;  ///< index into the batch tenant vector
};

}  // namespace

void PlannerService::plan_batch(std::vector<PendingJob> batch, Seconds cut) {
  const auto m = static_cast<std::uint32_t>(placement_.size());
  const auto job_count = static_cast<std::uint32_t>(batch.size());
  OPASS_CHECK(job_count > 0, "plan_batch called with an empty batch");

  // Flatten the batch: tasks in (queue order, task order), tenants in
  // first-appearance order.
  std::vector<BatchTask> tasks;
  std::vector<TenantId> tenant_ids;
  std::vector<std::uint32_t> tenant_demand;
  for (std::uint32_t j = 0; j < job_count; ++j) {
    const JobRequest& request = batch[j].request;
    std::uint32_t slot = 0;
    for (; slot < tenant_ids.size(); ++slot)
      if (tenant_ids[slot] == request.tenant) break;
    if (slot == tenant_ids.size()) {
      tenant_ids.push_back(request.tenant);
      tenant_demand.push_back(0);
    }
    for (const auto& t : request.tasks) {
      tasks.push_back(BatchTask{j, t.id, t.inputs[0], slot});
      ++tenant_demand[slot];
    }
  }
  const auto b = static_cast<std::uint32_t>(tasks.size());
  const auto tenant_count = static_cast<std::uint32_t>(tenant_ids.size());

  // Batch quotas: the incremental planner's batch-adjusted fair share —
  // grant each slot to the least cumulatively loaded process so active
  // loads stay within one across batches.
  std::vector<std::uint32_t> quota(m, 0);
  for (std::uint32_t granted = 0; granted < b; ++granted) {
    std::uint32_t best = 0;
    for (std::uint32_t p = 1; p < m; ++p)
      if (load_[p] + quota[p] < load_[best] + quota[best]) best = p;
    ++quota[best];
  }

  // Tenant-layered Fig. 5 network: s -> tenant -> task -> process -> t.
  // Edge-id layout (dense, insertion order): [0, T) tenant caps, [T, T + b)
  // tenant->task, [T + b, T + b + pt) task->process, then process->t, then
  // any top-up s->tenant edges appended by the fair-share passes.
  graph::FlowNetwork& net = workspace_.network;
  const graph::NodeIdx s = 0;
  const graph::NodeIdx t = 1;
  const graph::NodeIdx tenant0 = 2;
  const graph::NodeIdx task0 = 2 + tenant_count;
  const graph::NodeIdx proc0 = task0 + b;
  std::uint32_t pt_count = 0;
  const auto build = [&](const std::vector<std::uint32_t>& tenant_caps) {
    net.clear(proc0 + m);
    for (std::uint32_t i = 0; i < tenant_count; ++i)
      net.add_edge(s, tenant0 + i, static_cast<graph::Cap>(tenant_caps[i]));
    for (std::uint32_t k = 0; k < b; ++k)
      net.add_edge(tenant0 + tasks[k].tenant_slot, task0 + k, 1);
    pt_count = 0;
    for (std::uint32_t k = 0; k < b; ++k) {
      const auto& chunk = nn_.chunk(tasks[k].chunk);
      for (std::uint32_t p = 0; p < m; ++p) {
        if (chunk.has_replica_on(placement_[p])) {
          net.add_edge(task0 + k, proc0 + p, 1);
          ++pt_count;
        }
      }
    }
    for (std::uint32_t p = 0; p < m; ++p)
      net.add_edge(proc0 + p, t, static_cast<graph::Cap>(quota[p]));
  };

  std::vector<std::uint32_t> fair_slots = tenant_demand;
  if (b > 0) {
    // Pass 0: unconstrained solve — the batch's locality budget L.
    build(tenant_demand);
    const graph::Cap budget = graph::max_flow(workspace_, s, t, options_.algorithm);

    if (options_.fair_share && tenant_count > 1 && budget > 0) {
      // Split L among the batch's tenants by weight against cumulative
      // usage, then re-solve under the fair caps and top the caps back up
      // so unclaimed locality is never wasted (work-conserving).
      Bytes batch_bytes = 0;
      for (const auto& task : tasks) batch_bytes += nn_.chunk(task.chunk).size;
      const Bytes bytes_per_slot = std::max<Bytes>(1, batch_bytes / b);
      fair_slots = tenants_.split_slots(static_cast<std::uint32_t>(budget), tenant_ids,
                                        tenant_demand, bytes_per_slot);
      build(fair_slots);
      (void)graph::max_flow(workspace_, s, t, options_.algorithm);
      bool topped_up = false;
      for (std::uint32_t i = 0; i < tenant_count; ++i) {
        if (tenant_demand[i] > fair_slots[i]) {
          net.add_edge(s, tenant0 + i,
                       static_cast<graph::Cap>(tenant_demand[i] - fair_slots[i]));
          topped_up = true;
        }
      }
      if (topped_up) (void)graph::max_flow(workspace_, s, t, options_.algorithm);
    }
  }

  // Read the matching back off the task->process edges, then random-fill
  // the leftovers against remaining process quota (the service Rng).
  std::vector<std::uint32_t> assigned_to(b, m);  // m = unassigned sentinel
  std::vector<char> matched(b, 0);
  std::vector<std::uint32_t> used(m, 0);
  if (b > 0) {
    const graph::EdgeIdx pt0 = tenant_count + b;
    for (graph::EdgeIdx e = pt0; e < pt0 + pt_count; ++e) {
      if (net.flow(e) == 1) {
        const std::uint32_t k = net.edge_from(e) - task0;
        const std::uint32_t p = net.edge_to(e) - proc0;
        assigned_to[k] = p;
        matched[k] = 1;
        ++used[p];
      }
    }
  }
  std::vector<std::uint32_t> open;
  for (std::uint32_t p = 0; p < m; ++p)
    if (used[p] < quota[p]) open.push_back(p);
  std::vector<std::uint32_t> leftovers;
  for (std::uint32_t k = 0; k < b; ++k)
    if (!matched[k]) leftovers.push_back(k);
  rng_.shuffle(leftovers);
  std::uint32_t randomly_filled = 0;
  for (std::uint32_t k : leftovers) {
    OPASS_CHECK(!open.empty(), "no process has remaining batch quota");
    const auto pick = rng_.uniform(open.size());
    const std::uint32_t p = open[pick];
    assigned_to[k] = p;
    ++used[p];
    ++randomly_filled;
    if (used[p] == quota[p]) {
      open[pick] = open.back();
      open.pop_back();
    }
  }

  // Write the batch back into job statuses, the load vector, the tenant
  // ledger and the batch report.
  ++counters_.batches;
  BatchReport report;
  report.batch = counters_.batches;
  report.planned_at = cut;
  report.jobs = job_count;
  report.tasks = b;
  report.randomly_filled = randomly_filled;
  report.tenants.resize(tenant_count);
  for (std::uint32_t i = 0; i < tenant_count; ++i) {
    report.tenants[i].tenant = tenant_ids[i];
    report.tenants[i].tasks = tenant_demand[i];
    report.tenants[i].fair_slots = fair_slots[i];
  }

  for (std::uint32_t j = 0; j < job_count; ++j) {
    Job& job = jobs_[static_cast<std::size_t>(batch[j].id - 1)];
    job.status.state = JobState::kPlanned;
    job.status.planned_at = cut;
    job.status.batch = counters_.batches;
    job.status.assignment.assign(m, {});
    job.process_tasks.assign(m, 0);
  }
  for (std::uint32_t k = 0; k < b; ++k) {
    const std::uint32_t p = assigned_to[k];
    OPASS_CHECK(p < m, "batch task left unassigned");
    Job& job = jobs_[static_cast<std::size_t>(batch[tasks[k].job].id - 1)];
    job.status.assignment[p].push_back(tasks[k].id);
    ++job.process_tasks[p];
    ++load_[p];
    const auto& chunk = nn_.chunk(tasks[k].chunk);
    const bool local = chunk.has_replica_on(placement_[p]);
    if (matched[k]) {
      ++job.status.locally_matched;
      ++report.locally_matched;
      ++report.tenants[tasks[k].tenant_slot].locally_matched;
    } else {
      ++job.status.randomly_filled;
    }
    if (local) {
      job.status.local_bytes += chunk.size;
      report.tenants[tasks[k].tenant_slot].local_bytes += chunk.size;
    }
  }
  for (std::uint32_t j = 0; j < job_count; ++j) {
    const Job& job = jobs_[static_cast<std::size_t>(batch[j].id - 1)];
    tenants_.charge(job.status.tenant, job.status.local_bytes);
  }

  counters_.jobs_planned += job_count;
  counters_.tasks_planned += b;
  counters_.locally_matched += report.locally_matched;
  counters_.randomly_filled += randomly_filled;
  counters_.max_batch_tasks = std::max(counters_.max_batch_tasks, b);
  report.queue_depth_after = queue_depth();
  if (probe_ != nullptr) probe_->on_batch_planned(report);
}

}  // namespace opass::core
