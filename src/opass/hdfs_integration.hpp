// Building the Opass locality graph through the public libhdfs-style API.
//
// On a real deployment Opass cannot touch NameNode internals; it issues the
// layout query the paper describes ("we retrieve the data layout information
// from the underlying distributed file system") — hdfsGetHosts /
// getFileBlockLocations — per input file. This helper does exactly that:
// everything it learns comes from hdfsGetPathInfo and hdfsGetHosts, so the
// resulting graph is what a production integration would see.
#pragma once

#include <string>
#include <vector>

#include "dfs/hdfs_api.hpp"
#include "graph/bipartite_graph.hpp"
#include "opass/locality_graph.hpp"

namespace opass::core {

/// Identity of one block discovered through the API.
struct HdfsBlockRef {
  std::string path;
  std::uint32_t block_index = 0;  ///< ordinal within its file
  Bytes size = 0;
};

/// Locality graph (processes x blocks) plus the block table giving each
/// right-hand vertex its (path, index, size) identity.
struct HdfsLocalityGraph {
  graph::BipartiteGraph graph;
  std::vector<HdfsBlockRef> blocks;  ///< index = right vertex id

  HdfsLocalityGraph() : graph(0, 0) {}
};

/// Query the layout of `paths` (every path must exist) and build the
/// co-location graph for `placement`. Right-hand vertices are numbered in
/// (path order, block order) — matching chunk creation order when paths are
/// given in creation order.
HdfsLocalityGraph build_locality_via_hdfs(hdfs::hdfsFS fs,
                                          const std::vector<std::string>& paths,
                                          const ProcessPlacement& placement);

}  // namespace opass::core
