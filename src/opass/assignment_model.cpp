#include "opass/assignment_model.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace opass::core {

std::vector<double> expected_bytes_served(const dfs::NameNode& nn,
                                          const std::vector<runtime::Task>& tasks,
                                          const runtime::Assignment& assignment,
                                          const std::vector<dfs::NodeId>& placement) {
  OPASS_REQUIRE(assignment.size() == placement.size(),
                "assignment and placement disagree on process count");
  std::vector<double> served(nn.node_count(), 0.0);
  for (std::size_t p = 0; p < assignment.size(); ++p) {
    const dfs::NodeId reader = placement[p];
    OPASS_REQUIRE(reader < nn.node_count(), "process placed on unknown node");
    for (runtime::TaskId t : assignment[p]) {
      OPASS_REQUIRE(t < tasks.size(), "assignment references unknown task");
      for (dfs::ChunkId c : tasks[t].inputs) {
        const auto& chunk = nn.chunk(c);
        if (chunk.has_replica_on(reader)) {
          served[reader] += static_cast<double>(chunk.size);
        } else {
          OPASS_REQUIRE(!chunk.replicas.empty(), "chunk has no replicas");
          const double share =
              static_cast<double>(chunk.size) / static_cast<double>(chunk.replicas.size());
          for (dfs::NodeId rep : chunk.replicas) served[rep] += share;
        }
      }
    }
  }
  return served;
}

Seconds makespan_lower_bound(const dfs::NameNode& nn,
                             const std::vector<runtime::Task>& tasks,
                             const runtime::Assignment& assignment,
                             const std::vector<dfs::NodeId>& placement,
                             BytesPerSec disk_bandwidth) {
  const auto served = expected_bytes_served(nn, tasks, assignment, placement);
  double hottest = 0;
  for (double b : served) hottest = std::max(hottest, b);

  double reader_max = 0;
  for (std::size_t p = 0; p < assignment.size(); ++p) {
    double bytes = 0;
    for (runtime::TaskId t : assignment[p])
      bytes += static_cast<double>(tasks[t].input_bytes(nn));
    reader_max = std::max(reader_max, bytes);
  }
  return std::max(hottest, reader_max) / disk_bandwidth;
}

}  // namespace opass::core
