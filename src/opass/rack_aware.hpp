// Rack-aware single-data assignment (extension beyond the paper).
//
// Marmot hangs every node off one switch, so the paper only distinguishes
// local vs remote. Production HDFS clusters are racked with oversubscribed
// cores, giving three locality levels: node-local, rack-local, off-rack.
// This matcher extends the Fig. 5 construction to two phases:
//
//   phase 1  node-local max-flow (identical to assign_single_data);
//   phase 2  rack-local max-flow over the tasks and quota left unmatched,
//            with an edge (p, f) when f has a replica in p's rack;
//   phase 3  random fill for whatever remains.
//
// Off-rack traffic is what the oversubscribed core punishes, so maximizing
// the first two levels in order is the natural generalization of the
// paper's objective.
#pragma once

#include "common/rng.hpp"
#include "dfs/namenode.hpp"
#include "graph/max_flow.hpp"
#include "opass/locality_graph.hpp"
#include "runtime/static_partitioner.hpp"
#include "runtime/task.hpp"

namespace opass::core {

/// Knobs for the rack-aware assigner (options-last on every entry point).
struct RackAwareOptions {
  graph::MaxFlowAlgorithm algorithm = graph::MaxFlowAlgorithm::kDinic;
  /// Optional reusable network + solver arenas shared by both match phases.
  graph::FlowWorkspace* workspace = nullptr;
};

/// Result of the three-phase matching.
struct [[nodiscard]] RackAwarePlan {
  runtime::Assignment assignment;
  std::uint32_t node_local = 0;  ///< tasks matched on the process's node
  std::uint32_t rack_local = 0;  ///< tasks matched within the process's rack
  std::uint32_t random_filled = 0;

  std::uint32_t task_count() const { return node_local + rack_local + random_filled; }
};

/// Compute the rack-aware assignment. Single-input tasks; quotas n/m as in
/// assign_single_data.
RackAwarePlan assign_single_data_rack_aware(const dfs::NameNode& nn,
                                            const std::vector<runtime::Task>& tasks,
                                            const ProcessPlacement& placement, Rng& rng,
                                            RackAwareOptions options = {});

/// Legacy algorithm-enum form, kept source-compatible; prefer the
/// options-last overload (or the plan() facade).
inline RackAwarePlan assign_single_data_rack_aware(const dfs::NameNode& nn,
                                                   const std::vector<runtime::Task>& tasks,
                                                   const ProcessPlacement& placement, Rng& rng,
                                                   graph::MaxFlowAlgorithm algorithm) {
  return assign_single_data_rack_aware(nn, tasks, placement, rng,
                                       RackAwareOptions{algorithm, nullptr});
}

}  // namespace opass::core
