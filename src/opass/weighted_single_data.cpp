#include "opass/weighted_single_data.hpp"

#include <algorithm>

#include "common/require.hpp"
#include "graph/flow_network.hpp"

namespace opass::core {

WeightedPlan assign_single_data_weighted(const dfs::NameNode& nn,
                                         const std::vector<runtime::Task>& tasks,
                                         const ProcessPlacement& placement, Rng& rng,
                                         WeightedOptions options) {
  const auto m = static_cast<std::uint32_t>(placement.size());
  const auto n = static_cast<std::uint32_t>(tasks.size());
  OPASS_REQUIRE(m > 0, "need at least one process");
  for (const auto& t : tasks)
    OPASS_REQUIRE(t.inputs.size() == 1, "single-data tasks must have exactly one input");

  WeightedPlan plan;
  plan.assignment.assign(m, {});
  if (n == 0) return plan;

  std::vector<Bytes> size(n);
  for (std::uint32_t ti = 0; ti < n; ++ti) {
    size[ti] = nn.chunk(tasks[ti].inputs[0]).size;
    plan.total_bytes += size[ti];
  }
  const Bytes quota = plan.total_bytes / m + (plan.total_bytes % m ? 1 : 0);

  // Processes per node, so locality edges are found from replica lists in
  // O(n * r) instead of all m * n pairs (same scheme as assign_single_data).
  std::vector<std::vector<std::uint32_t>> procs_on_node(nn.node_count());
  for (std::uint32_t p = 0; p < m; ++p) {
    const dfs::NodeId node = placement[p];
    OPASS_REQUIRE(node < nn.node_count(), "process placed on unknown node");
    procs_on_node[node].push_back(p);
  }

  // Fig. 5 with byte capacities, built into the reusable workspace. Edge ids
  // are dense in insertion order: s->p edges [0, m), p->task edges
  // [m, m + k), task->t edges afterwards.
  graph::FlowWorkspace local_ws;
  graph::FlowWorkspace& ws = options.workspace ? *options.workspace : local_ws;
  graph::FlowNetwork& net = ws.network;
  net.clear(2 + m + n);
  const graph::NodeIdx s = 0;
  const graph::NodeIdx t = 1;
  const graph::NodeIdx proc0 = 2;
  const graph::NodeIdx task0 = 2 + m;
  for (std::uint32_t p = 0; p < m; ++p)
    net.add_edge(s, proc0 + p, static_cast<graph::Cap>(quota));

  for (std::uint32_t ti = 0; ti < n; ++ti) {
    for (dfs::NodeId rep : nn.chunk(tasks[ti].inputs[0]).replicas) {
      for (std::uint32_t p : procs_on_node[rep])
        net.add_edge(proc0 + p, task0 + ti, static_cast<graph::Cap>(size[ti]));
    }
  }
  const auto pt_count = static_cast<std::uint32_t>(net.edge_count()) - m;
  for (std::uint32_t ti = 0; ti < n; ++ti)
    net.add_edge(task0 + ti, t, static_cast<graph::Cap>(size[ti]));

  graph::max_flow(ws, s, t, options.algorithm);

  // Task -> co-located process carrying the most of its flow.
  std::vector<std::uint32_t> owner(n, UINT32_MAX);
  std::vector<graph::Cap> best_flow(n, 0);
  for (graph::EdgeIdx e = m; e < m + pt_count; ++e) {
    const graph::Cap f = net.flow(e);
    if (f <= 0) continue;
    const std::uint32_t p = net.edge_from(e) - proc0;
    const std::uint32_t ti = net.edge_to(e) - task0;
    if (f > best_flow[ti] || (f == best_flow[ti] && owner[ti] != UINT32_MAX && p < owner[ti])) {
      best_flow[ti] = f;
      owner[ti] = p;
    }
  }

  std::vector<Bytes> load(m, 0);
  for (std::uint32_t ti = 0; ti < n; ++ti) {
    if (owner[ti] == UINT32_MAX) continue;
    plan.assignment[owner[ti]].push_back(ti);
    load[owner[ti]] += size[ti];
    plan.local_bytes += size[ti];
    ++plan.flow_assigned;
  }

  // Balance fill: tasks with no flow go to the lightest process, largest
  // task first (LPT — the classic makespan heuristic); the shuffle before
  // the stable sort randomizes ties between equal-sized tasks.
  std::vector<std::uint32_t> order(n);
  for (std::uint32_t ti = 0; ti < n; ++ti) order[ti] = ti;
  rng.shuffle(order);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) { return size[a] > size[b]; });
  for (std::uint32_t ti : order) {
    if (owner[ti] != UINT32_MAX) continue;
    std::uint32_t lightest = 0;
    for (std::uint32_t p = 1; p < m; ++p)
      if (load[p] < load[lightest]) lightest = p;
    plan.assignment[lightest].push_back(ti);
    load[lightest] += size[ti];
    ++plan.fill_assigned;
  }

  plan.max_process_bytes = *std::max_element(load.begin(), load.end());
  plan.min_process_bytes = *std::min_element(load.begin(), load.end());
  for (auto& list : plan.assignment) std::sort(list.begin(), list.end());
  return plan;
}

}  // namespace opass::core
