#include "opass/single_data.hpp"

#include <algorithm>

#include "common/require.hpp"
#include "graph/flow_network.hpp"

namespace opass::core {

std::vector<std::uint32_t> equal_quotas(std::uint32_t task_count, std::uint32_t process_count) {
  OPASS_REQUIRE(process_count > 0, "need at least one process");
  std::vector<std::uint32_t> quotas(process_count, task_count / process_count);
  for (std::uint32_t i = 0; i < task_count % process_count; ++i) ++quotas[i];
  return quotas;
}

SingleDataPlan assign_single_data(const dfs::NameNode& nn,
                                  const std::vector<runtime::Task>& tasks,
                                  const ProcessPlacement& placement, Rng& rng,
                                  SingleDataOptions options) {
  const auto m = static_cast<std::uint32_t>(placement.size());
  const auto n = static_cast<std::uint32_t>(tasks.size());
  OPASS_REQUIRE(m > 0, "need at least one process");
  for (const auto& t : tasks)
    OPASS_REQUIRE(t.inputs.size() == 1, "single-data tasks must have exactly one input");

  const auto quotas = equal_quotas(n, m);

  // Processes hosted on each node, so locality edges are discovered from the
  // replica lists in O(n * r) instead of scanning all m * n pairs.
  std::vector<std::vector<std::uint32_t>> procs_on_node(nn.node_count());
  for (std::uint32_t p = 0; p < m; ++p) {
    const dfs::NodeId node = placement[p];
    OPASS_REQUIRE(node < nn.node_count(), "process placed on unknown node");
    procs_on_node[node].push_back(p);
  }

  // Build the Fig. 5 network into the (possibly caller-provided) workspace:
  // node 0 = s, node 1 = t, then processes, then tasks. Edge ids are dense in
  // insertion order — s->p edges are [0, m), p->task edges [m, m + k), task->t
  // edges [m + k, m + k + n) — so flows are read back without an id map.
  graph::FlowWorkspace local_ws;
  graph::FlowWorkspace& ws = options.workspace ? *options.workspace : local_ws;
  graph::FlowNetwork& net = ws.network;
  net.clear(2 + m + n);
  const graph::NodeIdx s = 0;
  const graph::NodeIdx t = 1;
  const graph::NodeIdx proc0 = 2;
  const graph::NodeIdx task0 = 2 + m;

  for (std::uint32_t p = 0; p < m; ++p) net.add_edge(s, proc0 + p, quotas[p]);
  for (std::uint32_t ti = 0; ti < n; ++ti) {
    for (dfs::NodeId rep : nn.chunk(tasks[ti].inputs[0]).replicas) {
      for (std::uint32_t p : procs_on_node[rep]) net.add_edge(proc0 + p, task0 + ti, 1);
    }
  }
  const auto pt_count = static_cast<std::uint32_t>(net.edge_count()) - m;
  for (std::uint32_t ti = 0; ti < n; ++ti) net.add_edge(task0 + ti, t, 1);

  const graph::Cap flow = graph::max_flow(ws, s, t, options.algorithm);
  OPASS_CHECK(flow >= 0 && flow <= n, "max-flow value out of range");

  SingleDataPlan plan;
  plan.assignment.assign(m, {});
  std::vector<char> task_assigned(n, 0);
  std::vector<std::uint32_t> used(m, 0);
  for (graph::EdgeIdx e = m; e < m + pt_count; ++e) {
    if (net.flow(e) == 1) {
      const std::uint32_t p = net.edge_from(e) - proc0;
      const std::uint32_t ti = net.edge_to(e) - task0;
      plan.assignment[p].push_back(ti);
      task_assigned[ti] = 1;
      ++used[p];
      ++plan.locally_matched;
    }
  }
  OPASS_CHECK(plan.locally_matched == static_cast<std::uint32_t>(flow),
              "flow value disagrees with matched edges");

  // Random fill: unmatched tasks go to randomly chosen processes with
  // remaining quota ("we randomly assign unmatched tasks to each such
  // process until all processes are matched to TotalSize/m of data").
  std::vector<runtime::TaskId> unmatched;
  for (std::uint32_t ti = 0; ti < n; ++ti)
    if (!task_assigned[ti]) unmatched.push_back(ti);
  rng.shuffle(unmatched);

  std::vector<std::uint32_t> open;  // processes below quota
  for (std::uint32_t p = 0; p < m; ++p)
    if (used[p] < quotas[p]) open.push_back(p);

  for (runtime::TaskId ti : unmatched) {
    OPASS_CHECK(!open.empty(), "no process has remaining quota for fill");
    const auto pick = rng.uniform(open.size());
    const std::uint32_t p = open[pick];
    plan.assignment[p].push_back(ti);
    ++used[p];
    ++plan.randomly_filled;
    if (used[p] == quotas[p]) {
      open[pick] = open.back();
      open.pop_back();
    }
  }

  plan.full_matching = plan.randomly_filled == 0 && n > 0;

  // Keep each process's reads in task order for reproducible traces.
  for (auto& list : plan.assignment) std::sort(list.begin(), list.end());
  return plan;
}

}  // namespace opass::core
