#include "opass/single_data.hpp"

#include <algorithm>

#include "common/require.hpp"
#include "graph/flow_network.hpp"

namespace opass::core {

std::vector<std::uint32_t> equal_quotas(std::uint32_t task_count, std::uint32_t process_count) {
  OPASS_REQUIRE(process_count > 0, "need at least one process");
  std::vector<std::uint32_t> quotas(process_count, task_count / process_count);
  for (std::uint32_t i = 0; i < task_count % process_count; ++i) ++quotas[i];
  return quotas;
}

SingleDataPlan assign_single_data(const dfs::NameNode& nn,
                                  const std::vector<runtime::Task>& tasks,
                                  const ProcessPlacement& placement, Rng& rng,
                                  SingleDataOptions options) {
  const auto m = static_cast<std::uint32_t>(placement.size());
  const auto n = static_cast<std::uint32_t>(tasks.size());
  OPASS_REQUIRE(m > 0, "need at least one process");
  for (const auto& t : tasks)
    OPASS_REQUIRE(t.inputs.size() == 1, "single-data tasks must have exactly one input");

  const auto quotas = equal_quotas(n, m);

  // Build the Fig. 5 network: node 0 = s, node 1 = t, then processes, then
  // tasks.
  graph::FlowNetwork net;
  const auto s = net.add_nodes(1);
  const auto t = net.add_nodes(1);
  const auto proc0 = net.add_nodes(m);
  const auto task0 = net.add_nodes(n);

  for (std::uint32_t p = 0; p < m; ++p) net.add_edge(s, proc0 + p, quotas[p]);

  // Process -> task edges where the task's chunk is co-located. Track the
  // edge ids so flows can be read back into an assignment.
  std::vector<std::pair<graph::EdgeIdx, std::pair<std::uint32_t, std::uint32_t>>> pt_edges;
  for (std::uint32_t p = 0; p < m; ++p) {
    const dfs::NodeId node = placement[p];
    OPASS_REQUIRE(node < nn.node_count(), "process placed on unknown node");
    for (std::uint32_t ti = 0; ti < n; ++ti) {
      if (nn.chunk(tasks[ti].inputs[0]).has_replica_on(node)) {
        pt_edges.push_back({net.add_edge(proc0 + p, task0 + ti, 1), {p, ti}});
      }
    }
  }
  for (std::uint32_t ti = 0; ti < n; ++ti) net.add_edge(task0 + ti, t, 1);

  const graph::Cap flow = graph::max_flow(net, s, t, options.algorithm);
  OPASS_CHECK(flow >= 0 && flow <= n, "max-flow value out of range");

  SingleDataPlan plan;
  plan.assignment.assign(m, {});
  std::vector<char> task_assigned(n, 0);
  std::vector<std::uint32_t> used(m, 0);
  for (const auto& [edge, pt] : pt_edges) {
    if (net.flow(edge) == 1) {
      const auto [p, ti] = pt;
      plan.assignment[p].push_back(ti);
      task_assigned[ti] = 1;
      ++used[p];
      ++plan.locally_matched;
    }
  }
  OPASS_CHECK(plan.locally_matched == static_cast<std::uint32_t>(flow),
              "flow value disagrees with matched edges");

  // Random fill: unmatched tasks go to randomly chosen processes with
  // remaining quota ("we randomly assign unmatched tasks to each such
  // process until all processes are matched to TotalSize/m of data").
  std::vector<runtime::TaskId> unmatched;
  for (std::uint32_t ti = 0; ti < n; ++ti)
    if (!task_assigned[ti]) unmatched.push_back(ti);
  rng.shuffle(unmatched);

  std::vector<std::uint32_t> open;  // processes below quota
  for (std::uint32_t p = 0; p < m; ++p)
    if (used[p] < quotas[p]) open.push_back(p);

  for (runtime::TaskId ti : unmatched) {
    OPASS_CHECK(!open.empty(), "no process has remaining quota for fill");
    const auto pick = rng.uniform(open.size());
    const std::uint32_t p = open[pick];
    plan.assignment[p].push_back(ti);
    ++used[p];
    ++plan.randomly_filled;
    if (used[p] == quotas[p]) {
      open[pick] = open.back();
      open.pop_back();
    }
  }

  plan.full_matching = plan.randomly_filled == 0 && n > 0;

  // Keep each process's reads in task order for reproducible traces.
  for (auto& list : plan.assignment) std::sort(list.begin(), list.end());
  return plan;
}

}  // namespace opass::core
