#include "opass/incremental.hpp"

#include <algorithm>

#include "common/require.hpp"
#include "graph/flow_network.hpp"

namespace opass::core {

IncrementalPlanner::IncrementalPlanner(const dfs::NameNode& nn, ProcessPlacement placement,
                                       graph::MaxFlowAlgorithm algorithm)
    : nn_(nn), placement_(std::move(placement)), algorithm_(algorithm),
      load_(placement_.size(), 0) {
  OPASS_REQUIRE(!placement_.empty(), "need at least one process");
  for (dfs::NodeId node : placement_)
    OPASS_REQUIRE(node < nn.node_count(), "process placed on unknown node");
}

BatchPlan IncrementalPlanner::match_batch(const std::vector<runtime::Task>& batch, Rng& rng) {
  PlanOptions options;
  options.algorithm = algorithm_;
  return match_batch(batch, rng, options);
}

BatchPlan IncrementalPlanner::match_batch(const std::vector<runtime::Task>& batch, Rng& rng,
                                          const PlanOptions& options) {
  const auto m = static_cast<std::uint32_t>(placement_.size());
  const auto b = static_cast<std::uint32_t>(batch.size());
  for (const auto& t : batch)
    OPASS_REQUIRE(t.inputs.size() == 1, "single-data tasks must have exactly one input");

  BatchPlan plan;
  plan.assignment.assign(m, {});
  ++batches_;
  if (b == 0) return plan;

  // Batch quotas: repeatedly grant one slot to the least cumulatively loaded
  // process, so cumulative loads stay within one across batches.
  std::vector<std::uint32_t> quota(m, 0);
  for (std::uint32_t granted = 0; granted < b; ++granted) {
    std::uint32_t best = 0;
    for (std::uint32_t p = 1; p < m; ++p)
      if (load_[p] + quota[p] < load_[best] + quota[best]) best = p;
    ++quota[best];
  }

  // Fig. 5 flow over this batch only, with the batch quotas as capacities.
  // The workspace is cleared, not reconstructed, so steady-state batches do
  // no allocation. Edge ids are dense in insertion order: s->p edges [0, m),
  // p->task edges [m, m + k), task->t edges afterwards.
  graph::FlowWorkspace& workspace = options.workspace ? *options.workspace : workspace_;
  graph::FlowNetwork& net = workspace.network;
  net.clear(2 + m + b);
  const graph::NodeIdx s = 0;
  const graph::NodeIdx t = 1;
  const graph::NodeIdx proc0 = 2;
  const graph::NodeIdx task0 = 2 + m;
  for (std::uint32_t p = 0; p < m; ++p)
    net.add_edge(s, proc0 + p, static_cast<graph::Cap>(quota[p]));
  for (std::uint32_t p = 0; p < m; ++p) {
    for (std::uint32_t i = 0; i < b; ++i) {
      if (nn_.chunk(batch[i].inputs[0]).has_replica_on(placement_[p]))
        net.add_edge(proc0 + p, task0 + i, 1);
    }
  }
  const auto pt_count = static_cast<std::uint32_t>(net.edge_count()) - m;
  for (std::uint32_t i = 0; i < b; ++i) net.add_edge(task0 + i, t, 1);

  graph::max_flow(workspace, s, t, options.algorithm);

  std::vector<char> assigned(b, 0);
  std::vector<std::uint32_t> used(m, 0);
  for (graph::EdgeIdx e = m; e < m + pt_count; ++e) {
    if (net.flow(e) == 1) {
      const std::uint32_t p = net.edge_from(e) - proc0;
      const std::uint32_t i = net.edge_to(e) - task0;
      plan.assignment[p].push_back(batch[i].id);
      assigned[i] = 1;
      ++used[p];
      ++plan.locally_matched;
      plan.stats.local_bytes += nn_.chunk(batch[i].inputs[0]).size;
    }
  }

  // Random fill onto processes with remaining batch quota.
  std::vector<std::uint32_t> open;
  for (std::uint32_t p = 0; p < m; ++p)
    if (used[p] < quota[p]) open.push_back(p);
  std::vector<std::uint32_t> leftovers;
  for (std::uint32_t i = 0; i < b; ++i)
    if (!assigned[i]) leftovers.push_back(i);
  rng.shuffle(leftovers);
  for (std::uint32_t i : leftovers) {
    OPASS_CHECK(!open.empty(), "no process has remaining batch quota");
    const auto pick = rng.uniform(open.size());
    const std::uint32_t p = open[pick];
    plan.assignment[p].push_back(batch[i].id);
    ++used[p];
    ++plan.randomly_filled;
    // A fill can still land on a replica holder by luck; count it local.
    if (nn_.chunk(batch[i].inputs[0]).has_replica_on(placement_[p]))
      plan.stats.local_bytes += nn_.chunk(batch[i].inputs[0]).size;
    if (used[p] == quota[p]) {
      open[pick] = open.back();
      open.pop_back();
    }
  }

  // Batch-local profile (the assignment holds caller ids, so a global
  // evaluate_assignment() pass does not apply — accumulate directly).
  plan.stats.task_count = b;
  for (const auto& task : batch) plan.stats.total_bytes += nn_.chunk(task.inputs[0]).size;
  plan.stats.min_tasks_per_process = UINT32_MAX;
  for (std::uint32_t p = 0; p < m; ++p) {
    plan.stats.max_tasks_per_process = std::max(plan.stats.max_tasks_per_process, used[p]);
    plan.stats.min_tasks_per_process = std::min(plan.stats.min_tasks_per_process, used[p]);
    load_[p] += used[p];
  }
  return plan;
}

}  // namespace opass::core
