#include "opass/rack_aware.hpp"

#include <algorithm>
#include <functional>

#include "common/require.hpp"
#include "graph/flow_network.hpp"
#include "opass/single_data.hpp"  // equal_quotas

namespace opass::core {

namespace {

/// One max-flow phase: match `open` tasks to processes with remaining quota
/// along `has_edge(p, t)`. Updates owner/used; returns the matched count.
std::uint32_t match_phase(std::uint32_t m, const std::vector<std::uint32_t>& quotas,
                          std::vector<std::uint32_t>& used,
                          std::vector<std::uint32_t>& owner,
                          const std::vector<std::uint32_t>& open,
                          const std::function<bool(std::uint32_t, std::uint32_t)>& has_edge,
                          graph::MaxFlowAlgorithm algorithm, graph::FlowWorkspace& ws) {
  const auto open_count = static_cast<graph::NodeIdx>(open.size());
  graph::FlowNetwork& net = ws.network;
  net.clear(2 + m + open_count);
  const graph::NodeIdx s = 0;
  const graph::NodeIdx t = 1;
  const graph::NodeIdx proc0 = 2;
  const graph::NodeIdx task0 = 2 + m;
  for (std::uint32_t p = 0; p < m; ++p)
    net.add_edge(s, proc0 + p, static_cast<graph::Cap>(quotas[p] - used[p]));

  for (std::uint32_t p = 0; p < m; ++p) {
    for (std::uint32_t oi = 0; oi < open_count; ++oi) {
      if (has_edge(p, open[oi])) net.add_edge(proc0 + p, task0 + oi, 1);
    }
  }
  const auto pt_count = static_cast<std::uint32_t>(net.edge_count()) - m;
  for (std::uint32_t oi = 0; oi < open_count; ++oi) net.add_edge(task0 + oi, t, 1);

  graph::max_flow(ws, s, t, algorithm);

  std::uint32_t matched = 0;
  for (graph::EdgeIdx e = m; e < m + pt_count; ++e) {
    if (net.flow(e) == 1) {
      const std::uint32_t p = net.edge_from(e) - proc0;
      const std::uint32_t task = open[net.edge_to(e) - task0];
      owner[task] = p;
      ++used[p];
      ++matched;
    }
  }
  return matched;
}

}  // namespace

RackAwarePlan assign_single_data_rack_aware(const dfs::NameNode& nn,
                                            const std::vector<runtime::Task>& tasks,
                                            const ProcessPlacement& placement, Rng& rng,
                                            RackAwareOptions options) {
  const auto m = static_cast<std::uint32_t>(placement.size());
  const auto n = static_cast<std::uint32_t>(tasks.size());
  OPASS_REQUIRE(m > 0, "need at least one process");
  for (const auto& t : tasks)
    OPASS_REQUIRE(t.inputs.size() == 1, "single-data tasks must have exactly one input");
  for (dfs::NodeId node : placement)
    OPASS_REQUIRE(node < nn.node_count(), "process placed on unknown node");

  const auto quotas = equal_quotas(n, m);
  const auto& topo = nn.topology();

  graph::FlowWorkspace local_ws;
  graph::FlowWorkspace& ws = options.workspace ? *options.workspace : local_ws;

  std::vector<std::uint32_t> owner(n, UINT32_MAX);
  std::vector<std::uint32_t> used(m, 0);
  RackAwarePlan plan;

  // Phase 1: node-local.
  std::vector<std::uint32_t> open;
  for (std::uint32_t t = 0; t < n; ++t) open.push_back(t);
  plan.node_local = match_phase(
      m, quotas, used, owner, open,
      [&](std::uint32_t p, std::uint32_t t) {
        return nn.chunk(tasks[t].inputs[0]).has_replica_on(placement[p]);
      },
      options.algorithm, ws);

  // Phase 2: rack-local over the remainder.
  open.clear();
  for (std::uint32_t t = 0; t < n; ++t)
    if (owner[t] == UINT32_MAX) open.push_back(t);
  if (!open.empty() && topo.rack_count() > 1) {
    plan.rack_local = match_phase(
        m, quotas, used, owner, open,
        [&](std::uint32_t p, std::uint32_t t) {
          const auto rack = topo.rack_of(placement[p]);
          for (dfs::NodeId rep : nn.chunk(tasks[t].inputs[0]).replicas)
            if (topo.rack_of(rep) == rack) return true;
          return false;
        },
        options.algorithm, ws);
  }

  // Phase 3: random fill of the rest.
  std::vector<std::uint32_t> unmatched;
  for (std::uint32_t t = 0; t < n; ++t)
    if (owner[t] == UINT32_MAX) unmatched.push_back(t);
  rng.shuffle(unmatched);
  std::vector<std::uint32_t> open_procs;
  for (std::uint32_t p = 0; p < m; ++p)
    if (used[p] < quotas[p]) open_procs.push_back(p);
  for (std::uint32_t t : unmatched) {
    OPASS_CHECK(!open_procs.empty(), "no process has remaining quota for fill");
    const auto pick = rng.uniform(open_procs.size());
    const std::uint32_t p = open_procs[pick];
    owner[t] = p;
    ++plan.random_filled;
    if (++used[p] == quotas[p]) {
      open_procs[pick] = open_procs.back();
      open_procs.pop_back();
    }
  }

  plan.assignment.assign(m, {});
  for (std::uint32_t t = 0; t < n; ++t) plan.assignment[owner[t]].push_back(t);
  for (auto& list : plan.assignment) std::sort(list.begin(), list.end());
  return plan;
}

}  // namespace opass::core
