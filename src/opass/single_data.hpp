// Opass for parallel single-data access (paper Section IV-B, Fig. 5).
//
// Each task reads exactly one chunk and every process must end up with an
// equal share of the work. The assignment is encoded as a flow network:
//
//   s --(quota_i)--> p_i --(1)--> f_j --(1)--> t
//
// with a p_i -> f_j edge whenever f_j has a replica co-located with p_i.
// Capacities are in *task units*: the paper's byte capacities (TotalSize/m,
// file size) reduce to unit capacities because every task is one chunk file
// and quotas are an equal number of tasks; unit capacities also guarantee
// that an integral max-flow never splits a task between processes.
//
// The max-flow (Dinic by default; Edmonds–Karp — the paper's Ford–Fulkerson
// with BFS — retained for parity testing) yields the maximum number of
// locally served tasks. When the layout is too skewed for a full matching,
// the unmatched tasks are distributed randomly over processes with remaining
// quota, exactly as Section IV-B prescribes.
//
// Prefer the unified opass::core::plan() facade (planner.hpp) in new code;
// this free function remains as the documented low-level entry point the
// facade dispatches to.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "dfs/namenode.hpp"
#include "graph/max_flow.hpp"
#include "opass/locality_graph.hpp"
#include "runtime/static_partitioner.hpp"
#include "runtime/task.hpp"

namespace opass::core {

/// Knobs for the single-data assigner (options-last on every entry point).
struct SingleDataOptions {
  graph::MaxFlowAlgorithm algorithm = graph::MaxFlowAlgorithm::kDinic;
  /// When set, the network and solver scratch are built into this workspace
  /// and reused across calls — repeated replanning allocates nothing once
  /// the arenas are warm.
  graph::FlowWorkspace* workspace = nullptr;
};

/// Result of the flow-based assignment.
struct [[nodiscard]] SingleDataPlan {
  runtime::Assignment assignment;   ///< per-process task lists
  std::uint32_t locally_matched = 0;  ///< tasks assigned to a co-located process
  std::uint32_t randomly_filled = 0;  ///< tasks placed by the random fill pass
  bool full_matching = false;         ///< every task matched locally

  std::uint32_t task_count() const { return locally_matched + randomly_filled; }
};

/// Compute the Opass single-data assignment. Every task must have exactly
/// one input chunk. Quotas are n/m tasks per process, the first n%m
/// processes taking one extra.
SingleDataPlan assign_single_data(const dfs::NameNode& nn,
                                  const std::vector<runtime::Task>& tasks,
                                  const ProcessPlacement& placement, Rng& rng,
                                  SingleDataOptions options = {});

/// Per-process quotas used by the assigner (exposed for tests).
std::vector<std::uint32_t> equal_quotas(std::uint32_t task_count, std::uint32_t process_count);

}  // namespace opass::core
