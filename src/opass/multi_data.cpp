#include "opass/multi_data.hpp"

#include <algorithm>
#include <deque>
#include <numeric>

#include "common/require.hpp"
#include "opass/single_data.hpp"  // equal_quotas

namespace opass::core {

MultiDataPlan assign_multi_data(const dfs::NameNode& nn,
                                const std::vector<runtime::Task>& tasks,
                                const ProcessPlacement& placement,
                                MultiDataOptions /*options*/) {
  const auto m = static_cast<std::uint32_t>(placement.size());
  const auto n = static_cast<std::uint32_t>(tasks.size());
  OPASS_REQUIRE(m > 0, "need at least one process");

  // Matching values m_i^j = co-located bytes between process i and task j,
  // as a dense matrix (the Fig. 6(a) table).
  std::vector<Bytes> value(static_cast<std::size_t>(m) * n, 0);
  auto val = [&](std::uint32_t p, std::uint32_t t) -> Bytes& {
    return value[static_cast<std::size_t>(p) * n + t];
  };
  for (std::uint32_t p = 0; p < m; ++p) {
    const dfs::NodeId node = placement[p];
    OPASS_REQUIRE(node < nn.node_count(), "process placed on unknown node");
    for (std::uint32_t t = 0; t < n; ++t) {
      Bytes co = 0;
      for (dfs::ChunkId c : tasks[t].inputs)
        if (nn.chunk(c).has_replica_on(node)) co += nn.chunk(c).size;
      val(p, t) = co;
    }
  }

  // Per-process preference order: tasks by descending matching value, id
  // ascending as the deterministic tie-break.
  std::vector<std::vector<std::uint32_t>> pref(m);
  for (std::uint32_t p = 0; p < m; ++p) {
    pref[p].resize(n);
    std::iota(pref[p].begin(), pref[p].end(), 0u);
    std::stable_sort(pref[p].begin(), pref[p].end(), [&](std::uint32_t a, std::uint32_t b) {
      return val(p, a) > val(p, b);
    });
  }

  const auto quotas = equal_quotas(n, m);
  std::vector<std::uint32_t> owner(n, UINT32_MAX);
  std::vector<std::uint32_t> held(m, 0);
  std::vector<std::size_t> cursor(m, 0);  // next unconsidered preference index

  MultiDataPlan plan;

  // Round-robin over deficient processes; each iteration is one proposal.
  std::deque<std::uint32_t> deficient;
  for (std::uint32_t p = 0; p < m; ++p)
    if (held[p] < quotas[p]) deficient.push_back(p);

  while (!deficient.empty()) {
    const std::uint32_t p = deficient.front();
    deficient.pop_front();
    if (held[p] >= quotas[p]) continue;  // satisfied by an earlier steal-back
    // A deficient process always has an unconsidered task left: once it has
    // considered all n tasks, all n are assigned, which forces every process
    // to its quota (sum of quotas == n) — contradiction.
    OPASS_CHECK(cursor[p] < n, "deficient process exhausted its preference list");

    const std::uint32_t tx = pref[p][cursor[p]++];
    if (owner[tx] == UINT32_MAX) {
      owner[tx] = p;
      ++held[p];
    } else if (val(owner[tx], tx) < val(p, tx)) {
      // Reassignment event (Fig. 6(b)): the current owner loses the task.
      const std::uint32_t l = owner[tx];
      owner[tx] = p;
      ++held[p];
      --held[l];
      ++plan.reassignments;
      deficient.push_back(l);
    }
    if (held[p] < quotas[p]) deficient.push_back(p);
  }

  plan.assignment.assign(m, {});
  for (std::uint32_t t = 0; t < n; ++t) {
    OPASS_CHECK(owner[t] != UINT32_MAX, "task left unassigned by Algorithm 1");
    plan.assignment[owner[t]].push_back(t);
    plan.matched_bytes += val(owner[t], t);
  }
  for (const auto& task : tasks) plan.total_bytes += task.input_bytes(nn);
  for (std::uint32_t p = 0; p < m; ++p)
    OPASS_CHECK(held[p] == quotas[p] && plan.assignment[p].size() == quotas[p],
                "process ended away from its quota");
  return plan;
}

}  // namespace opass::core
