// Static plan auditor: validates a produced assignment before it feeds the
// simulator, the executor, or a plan_io broadcast.
//
// The matcher runs once in the master process and its output fans out to
// every parallel process, so a malformed plan corrupts a whole job. The
// auditor re-derives the invariants every Opass plan must satisfy directly
// from the NameNode and process placement:
//
//   * well-formedness — every task id in [0, n) assigned to exactly one
//     process, no unknown ids, assignment and placement agree on m, every
//     process pinned to a live cluster node;
//   * capacity — for single-data plans, no process exceeds the paper's
//     TotalSize/m share (at integral task granularity: ceil(n/m) tasks,
//     and in bytes ceil(n/m) * chunk_size);
//   * byte accounting — co-located byte totals recomputed here must agree
//     with evaluate_assignment(), and with caller-recorded stats when a
//     plan travels with its claimed profile;
//   * wire stability — serialize/parse through plan_io reproduces the plan
//     exactly.
//
// Violations are collected (not thrown) so one audit reports every problem
// with a distinct code; callers gate on `AuditReport::ok()`.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "opass/assignment_stats.hpp"
#include "opass/locality_graph.hpp"
#include "runtime/static_partitioner.hpp"
#include "runtime/task.hpp"

namespace opass::core {

/// One class of invariant violation. Each failing check reports its own
/// code so tests (and operators) can tell *what* is wrong, not just that
/// something is.
enum class AuditCode {
  kProcessCountMismatch,  ///< assignment rows != placement size
  kProcessNodeOutOfRange, ///< placement pins a process to a node >= node_count
  kUnknownTask,           ///< assignment references a task id >= task count
  kDuplicateTask,         ///< a task id appears in more than one list
  kMissingTask,           ///< a task id appears in no list
  kCapacityExceeded,      ///< single-data: a process exceeds its TotalSize/m share
  kStatsMismatch,         ///< byte accounting disagrees with assignment_stats
  kRoundTripMismatch,     ///< plan_io serialize/parse does not reproduce the plan
  kTaskNotExecuted,       ///< completion audit: a task never ran
  kTaskExecutedTwice,     ///< completion audit: a task ran more than once
};

/// Stable lower-case name of a code (e.g. "duplicate-task"), for messages
/// and CLI output.
const char* audit_code_name(AuditCode code);

/// One concrete violation: its class plus a human-readable diagnostic
/// naming the offending task/process/byte counts.
struct AuditIssue {
  AuditCode code;
  std::string message;
};

/// Auditing knobs.
struct AuditOptions {
  /// Enforce the paper's per-process capacity TotalSize/m. Only meaningful
  /// for single-data plans (every task one chunk); the auditor checks it at
  /// task granularity against ceil(n/m) and in bytes against
  /// ceil(n/m) * chunk_size.
  bool enforce_capacity = false;
  /// Serialize and re-parse the plan through plan_io and require equality.
  /// Skipped automatically when the plan is not a partition (it could not
  /// serialize at all).
  bool check_round_trip = true;
  /// Stats the plan claims for itself (e.g. recorded when it was broadcast).
  /// When set, the auditor recomputes the profile and reports any field that
  /// disagrees.
  std::optional<AssignmentStats> expected_stats;
};

/// Audit result: every violation found, plus the recomputed profile when the
/// plan was well-formed enough to evaluate.
struct AuditReport {
  std::vector<AuditIssue> issues;
  std::optional<AssignmentStats> stats;

  bool ok() const { return issues.empty(); }
  bool has(AuditCode code) const;
  /// Multi-line report: one "code: message" line per issue, or "plan ok".
  std::string to_string() const;
};

/// Audit `assignment` against the cluster metadata it was computed from.
AuditReport audit_plan(const dfs::NameNode& nn, const std::vector<runtime::Task>& tasks,
                       const runtime::Assignment& assignment,
                       const ProcessPlacement& placement, const AuditOptions& options = {});

/// Exactly-once completion audit: every task id in [0, task_count) must
/// appear exactly once among `executed_tasks` (e.g. the task ids of
/// runtime::ExecutionResult::task_spans). This is the post-run half of the
/// determinism contract under faults — crash/reassign recovery must neither
/// drop nor re-run a task (DESIGN.md §11).
AuditReport audit_completion(std::uint32_t task_count,
                             const std::vector<runtime::TaskId>& executed_tasks);

}  // namespace opass::core
