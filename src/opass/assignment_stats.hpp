// Static (pre-simulation) quality metrics of a task assignment: how many
// bytes will be read locally, and how task loads spread across processes.
// These let tests and benches reason about assignments without running the
// cluster simulator.
#pragma once

#include <cstdint>

#include "dfs/namenode.hpp"
#include "opass/locality_graph.hpp"
#include "runtime/static_partitioner.hpp"
#include "runtime/task.hpp"

namespace opass::core {

/// Locality/balance profile of an assignment.
struct AssignmentStats {
  Bytes total_bytes = 0;
  Bytes local_bytes = 0;          ///< input bytes co-located with the assignee
  std::uint32_t task_count = 0;
  std::uint32_t max_tasks_per_process = 0;
  std::uint32_t min_tasks_per_process = 0;

  double local_fraction() const {
    return total_bytes ? static_cast<double>(local_bytes) / static_cast<double>(total_bytes)
                       : 0.0;
  }
};

/// Compute the profile of `assignment` for the given tasks and placement.
AssignmentStats evaluate_assignment(const dfs::NameNode& nn,
                                    const std::vector<runtime::Task>& tasks,
                                    const runtime::Assignment& assignment,
                                    const ProcessPlacement& placement);

}  // namespace opass::core
