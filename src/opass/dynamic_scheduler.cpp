#include "opass/dynamic_scheduler.hpp"

#include "common/require.hpp"

namespace opass::core {

OpassDynamicSource::OpassDynamicSource(runtime::Assignment guideline, const dfs::NameNode& nn,
                                       const std::vector<runtime::Task>& tasks,
                                       ProcessPlacement placement, DynamicOptions options)
    : nn_(nn), tasks_(tasks), placement_(std::move(placement)), options_(options) {
  OPASS_REQUIRE(guideline.size() == placement_.size(),
                "guideline and placement disagree on process count");
  lists_.resize(guideline.size());
  for (std::size_t p = 0; p < guideline.size(); ++p)
    lists_[p].assign(guideline[p].begin(), guideline[p].end());
}

Bytes OpassDynamicSource::co_located_bytes(runtime::ProcessId process,
                                           runtime::TaskId task) const {
  const dfs::NodeId node = placement_[process];
  Bytes co = 0;
  for (dfs::ChunkId c : tasks_[task].inputs)
    if (nn_.chunk(c).has_replica_on(node)) co += nn_.chunk(c).size;
  return co;
}

std::optional<runtime::TaskId> OpassDynamicSource::next_task(runtime::ProcessId process,
                                                             Seconds /*now*/) {
  OPASS_REQUIRE(process < lists_.size(), "process out of range");

  // Step 2: own list first.
  auto& own = lists_[process];
  if (!own.empty()) {
    const runtime::TaskId t = own.front();
    own.pop_front();
    ++guideline_hits_;
    return t;
  }

  // Step 3: steal from the longest remaining list, preferring the task with
  // the most co-located data for the idle process.
  std::size_t longest = lists_.size();
  for (std::size_t k = 0; k < lists_.size(); ++k) {
    if (lists_[k].empty()) continue;
    if (longest == lists_.size() || lists_[k].size() > lists_[longest].size()) longest = k;
  }
  if (longest == lists_.size()) return std::nullopt;  // all drained

  auto& victim = lists_[longest];
  std::size_t best = 0;
  if (options_.steal_policy == StealPolicy::kBestLocality) {
    Bytes best_bytes = co_located_bytes(process, victim[0]);
    for (std::size_t i = 1; i < victim.size(); ++i) {
      const Bytes b = co_located_bytes(process, victim[i]);
      if (b > best_bytes) {
        best_bytes = b;
        best = i;
      }
    }
  }
  const runtime::TaskId t = victim[best];
  victim.erase(victim.begin() + static_cast<std::ptrdiff_t>(best));
  ++steals_;
  if (co_located_bytes(process, t) > 0) ++steal_local_hits_;
  return t;
}

}  // namespace opass::core
