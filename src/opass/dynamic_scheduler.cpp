#include "opass/dynamic_scheduler.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace opass::core {

OpassDynamicSource::OpassDynamicSource(runtime::Assignment guideline, const dfs::NameNode& nn,
                                       const std::vector<runtime::Task>& tasks,
                                       ProcessPlacement placement, DynamicOptions options)
    : nn_(nn), tasks_(tasks), placement_(std::move(placement)), options_(options) {
  OPASS_REQUIRE(guideline.size() == placement_.size(),
                "guideline and placement disagree on process count");
  lists_.resize(guideline.size());
  for (std::size_t p = 0; p < guideline.size(); ++p)
    lists_[p].assign(guideline[p].begin(), guideline[p].end());
}

Bytes OpassDynamicSource::co_located_bytes(runtime::ProcessId process,
                                           runtime::TaskId task) const {
  const dfs::NodeId node = placement_[process];
  Bytes co = 0;
  for (dfs::ChunkId c : tasks_[task].inputs)
    if (nn_.chunk(c).has_replica_on(node)) co += nn_.chunk(c).size;
  return co;
}

std::optional<runtime::TaskId> OpassDynamicSource::next_task(runtime::ProcessId process,
                                                             Seconds /*now*/) {
  OPASS_REQUIRE(process < lists_.size(), "process out of range");

  // Step 2: own list first.
  auto& own = lists_[process];
  if (!own.empty()) {
    const runtime::TaskId t = own.front();
    own.pop_front();
    ++guideline_hits_;
    return t;
  }

  // Step 3: steal from the longest remaining list, preferring the task with
  // the most co-located data for the idle process.
  std::size_t longest = lists_.size();
  for (std::size_t k = 0; k < lists_.size(); ++k) {
    if (lists_[k].empty()) continue;
    if (longest == lists_.size() || lists_[k].size() > lists_[longest].size()) longest = k;
  }
  if (longest == lists_.size()) return std::nullopt;  // all drained

  auto& victim = lists_[longest];
  std::size_t best = 0;
  if (options_.steal_policy == StealPolicy::kBestLocality) {
    Bytes best_bytes = co_located_bytes(process, victim[0]);
    for (std::size_t i = 1; i < victim.size(); ++i) {
      const Bytes b = co_located_bytes(process, victim[i]);
      if (b > best_bytes) {
        best_bytes = b;
        best = i;
      }
    }
  }
  const runtime::TaskId t = victim[best];
  victim.erase(victim.begin() + static_cast<std::ptrdiff_t>(best));
  ++steals_;
  if (co_located_bytes(process, t) > 0) ++steal_local_hits_;
  return t;
}

bool OpassDynamicSource::on_dead_node(runtime::ProcessId process) const {
  return std::find(dead_nodes_.begin(), dead_nodes_.end(), placement_[process]) !=
         dead_nodes_.end();
}

void OpassDynamicSource::on_node_dead(dfs::NodeId node) {
  if (std::find(dead_nodes_.begin(), dead_nodes_.end(), node) != dead_nodes_.end()) return;
  dead_nodes_.push_back(node);

  for (std::size_t p = 0; p < lists_.size(); ++p) {
    if (placement_[p] != node) continue;
    std::deque<runtime::TaskId> orphans;
    orphans.swap(lists_[p]);
    for (runtime::TaskId t : orphans) {
      // Best co-located alive process, ties to the smallest id.
      std::size_t best = lists_.size();
      Bytes best_bytes = 0;
      for (std::size_t q = 0; q < lists_.size(); ++q) {
        if (on_dead_node(static_cast<runtime::ProcessId>(q))) continue;
        const Bytes b = co_located_bytes(static_cast<runtime::ProcessId>(q), t);
        if (best == lists_.size() || b > best_bytes) {
          best = q;
          best_bytes = b;
        }
      }
      if (best == lists_.size()) {
        lists_[p].push_back(t);  // every process is on a dead node: keep it
        continue;
      }
      if (best_bytes == 0) {
        // No surviving co-located replica anywhere: balance instead — the
        // shortest alive list takes it (ties to the smallest id).
        for (std::size_t q = 0; q < lists_.size(); ++q) {
          if (on_dead_node(static_cast<runtime::ProcessId>(q))) continue;
          if (lists_[q].size() < lists_[best].size()) best = q;
        }
      }
      lists_[best].push_back(t);
      ++failure_reassignments_;
    }
  }
}

std::uint32_t OpassDynamicSource::remaining_tasks() const {
  std::size_t n = 0;
  for (const auto& l : lists_) n += l.size();
  return static_cast<std::uint32_t>(n);
}

std::vector<runtime::TaskId> OpassDynamicSource::remaining_task_ids() const {
  std::vector<runtime::TaskId> ids;
  ids.reserve(remaining_tasks());
  for (const auto& l : lists_) ids.insert(ids.end(), l.begin(), l.end());
  std::sort(ids.begin(), ids.end());
  return ids;
}

void OpassDynamicSource::adopt_guideline(const runtime::Assignment& guideline) {
  OPASS_REQUIRE(guideline.size() == lists_.size(),
                "guideline and placement disagree on process count");
  std::vector<runtime::TaskId> incoming;
  for (const auto& l : guideline) incoming.insert(incoming.end(), l.begin(), l.end());
  std::sort(incoming.begin(), incoming.end());
  OPASS_REQUIRE(incoming == remaining_task_ids(),
                "adopted guideline must cover exactly the remaining tasks");
  for (std::size_t p = 0; p < guideline.size(); ++p)
    lists_[p].assign(guideline[p].begin(), guideline[p].end());
}

}  // namespace opass::core
