#include "opass/assignment_stats.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace opass::core {

AssignmentStats evaluate_assignment(const dfs::NameNode& nn,
                                    const std::vector<runtime::Task>& tasks,
                                    const runtime::Assignment& assignment,
                                    const ProcessPlacement& placement) {
  OPASS_REQUIRE(assignment.size() == placement.size(),
                "assignment and placement disagree on process count");
  AssignmentStats stats;
  stats.min_tasks_per_process = UINT32_MAX;
  for (std::uint32_t p = 0; p < assignment.size(); ++p) {
    const dfs::NodeId node = placement[p];
    const auto count = static_cast<std::uint32_t>(assignment[p].size());
    stats.task_count += count;
    stats.max_tasks_per_process = std::max(stats.max_tasks_per_process, count);
    stats.min_tasks_per_process = std::min(stats.min_tasks_per_process, count);
    for (runtime::TaskId t : assignment[p]) {
      OPASS_REQUIRE(t < tasks.size(), "assignment references unknown task");
      for (dfs::ChunkId c : tasks[t].inputs) {
        const auto& chunk = nn.chunk(c);
        stats.total_bytes += chunk.size;
        if (chunk.has_replica_on(node)) stats.local_bytes += chunk.size;
      }
    }
  }
  if (assignment.empty()) stats.min_tasks_per_process = 0;
  return stats;
}

}  // namespace opass::core
