// PlannerService: the session-based, multi-job planning API.
//
// The one-shot core::plan() facade answers one offline request; the ROADMAP
// north-star is a long-lived scheduler serving a *stream* of concurrent job
// arrivals over a shared cluster (the multi-job, locality-aware setting of
// PAPERS.md arXiv 2407.08584). PlannerService is that surface:
//
//   PlannerService service(nn, placement, options);
//   JobId a = service.submit({tasks_a, /*tenant=*/0, 1.0, /*arrival=*/0.0});
//   JobId b = service.submit({tasks_b, /*tenant=*/1, 2.0, /*arrival=*/0.0});
//   service.advance_to(5.0);          // plans every batch with arrival <= 5
//   service.complete(a);              // releases a's process capacity
//   service.drain();                  // flushes whatever is still queued
//
// Batching & coalescing. Submitted jobs wait in an AdmissionQueue ordered by
// (arrival, id). advance_to(t) repeatedly cuts the earliest ready batch: the
// queue head plus every job arriving within `batch_window` of it (bounded by
// max_batch_jobs/max_batch_tasks), merged into ONE flow solve over a shared
// FlowWorkspace — co-arriving jobs pay one graph build instead of one each.
//
// Capacity across batches. Per-process batch quotas are the incremental
// planner's batch-adjusted fair share (opass/incremental.hpp): each batch
// slot goes to the process with the least cumulative *active* load, so load
// stays balanced across batches, and complete()/cancel() subtract a job's
// load so later batches re-plan around freed capacity.
//
// Per-tenant fair share. When a batch mixes tenants, the batch's locality
// budget (the max-flow value L of the unconstrained solve) is split among
// its tenants by TenantAccounts::split_slots — weighted by the tenant's
// share weight against its cumulative locally-assigned bytes. The solve
// then runs over a tenant-layered Fig. 5 network
//
//     s -> tenant (fair cap) -> task (1) -> process (batch quota) -> t
//
// and a work-conserving top-up pass lifts the tenant caps to full demand so
// locality no tenant wants is never wasted. Tasks still unmatched fall to
// the random-fill pass against remaining process quota.
//
// Determinism contract. Virtual time only; the service owns a seeded Rng for
// the fill pass; queue order, tenant splits and network construction are all
// deterministic — the same submit/advance/cancel/complete sequence with the
// same seed reproduces every assignment and probe callback byte-for-byte
// (ctest: service_determinism_test).
//
// Observability. The service is metric-blind (DESIGN.md §8): it reports
// transitions through the abstract ServiceProbe; obs/timeline.hpp adapts
// them into timeline series and obs/collect.hpp reduces counters() into a
// MetricsRegistry.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "dfs/namenode.hpp"
#include "graph/max_flow.hpp"
#include "opass/admission.hpp"
#include "opass/locality_graph.hpp"
#include "opass/planner.hpp"
#include "runtime/task.hpp"

namespace opass::core {

/// Per-tenant slice of one planned batch (probe + introspection payload).
struct TenantBatchShare {
  TenantId tenant = 0;
  std::uint32_t tasks = 0;            ///< batch tasks belonging to the tenant
  std::uint32_t fair_slots = 0;       ///< locality slots granted by the split
  std::uint32_t locally_matched = 0;  ///< local placements actually won
  Bytes local_bytes = 0;              ///< bytes of those placements
};

/// Summary of one planned batch, reported through ServiceProbe.
struct BatchReport {
  std::uint32_t batch = 0;     ///< 1-based sequence number
  Seconds planned_at = 0;      ///< batch cut time
  std::uint32_t jobs = 0;
  std::uint32_t tasks = 0;
  std::uint32_t locally_matched = 0;
  std::uint32_t randomly_filled = 0;
  std::uint32_t queue_depth_after = 0;  ///< jobs still queued after the cut
  std::vector<TenantBatchShare> tenants;  ///< in first-appearance order
};

/// Abstract observation hooks (all defaulted to no-ops). Implementations
/// live in obs/ — the service never includes an observability header.
class ServiceProbe {
 public:
  virtual ~ServiceProbe() = default;
  ServiceProbe() = default;
  ServiceProbe(const ServiceProbe&) = delete;
  ServiceProbe& operator=(const ServiceProbe&) = delete;

  virtual void on_job_queued(Seconds now, const JobStatus& job,
                             std::uint32_t queue_depth) = 0;
  virtual void on_job_cancelled(Seconds now, const JobStatus& job,
                                std::uint32_t queue_depth) = 0;
  virtual void on_batch_planned(const BatchReport& report) = 0;
};

/// Monotone counters of a service's lifetime (collect_service() input).
struct ServiceCounters {
  std::uint64_t jobs_submitted = 0;
  std::uint64_t jobs_planned = 0;
  std::uint64_t jobs_cancelled = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t tasks_planned = 0;
  std::uint64_t locally_matched = 0;
  std::uint64_t randomly_filled = 0;
  std::uint32_t batches = 0;
  std::uint32_t max_batch_tasks = 0;  ///< largest merged solve so far
  std::uint32_t max_queue_depth = 0;
};

/// Long-lived, deterministic multi-job planner (see file comment).
class PlannerService {
 public:
  /// The NameNode must outlive the service; the placement is copied.
  /// Process capacity follows the paper's deployment: one planning slot
  /// stream per placement entry.
  PlannerService(const dfs::NameNode& nn, ProcessPlacement placement,
                 ServiceOptions options = {});

  /// Admit a job (tasks are moved in). Requires single-input tasks and
  /// `request.arrival >= now()`. Returns the job's handle.
  JobId submit(JobRequest request);

  /// Withdraw a job. Queued jobs leave the admission queue unplanned;
  /// planned jobs release their process load and refund their tenant's
  /// locality charge, so later batches re-plan around the freed capacity.
  /// Returns false when the job is already completed or cancelled.
  bool cancel(JobId id);

  /// Mark a planned job as finished executing: its process load is released
  /// (capacity for future batches) while its tenant charge stays (fairness
  /// is over cumulative service, not open jobs). Returns false unless the
  /// job is currently planned.
  bool complete(JobId id);

  /// Advance virtual time to `t` (monotone), planning every batch whose cut
  /// falls at or before `t`.
  void advance_to(Seconds t);

  /// Plan everything still queued, advancing time to the last batch cut.
  void drain();

  /// Status of a job (any state). `id` must have been issued by submit().
  const JobStatus& status(JobId id) const;

  Seconds now() const { return now_; }
  std::uint64_t job_count() const { return jobs_.size(); }
  std::uint32_t queue_depth() const { return static_cast<std::uint32_t>(queue_.depth()); }
  const ServiceCounters& counters() const { return counters_; }
  const TenantAccounts& tenants() const { return tenants_; }

  /// Cumulative *active* tasks per process (planned minus completed or
  /// cancelled) — the load the next batch's quotas balance against.
  const std::vector<std::uint32_t>& process_load() const { return load_; }

  /// Attach/detach the observation hook (borrowed; may be null).
  void set_probe(ServiceProbe* probe) { probe_ = probe; }

 private:
  struct Job {
    JobStatus status;
    std::vector<std::uint32_t> process_tasks;  ///< per-process task counts
  };

  void plan_batch(std::vector<PendingJob> batch, Seconds cut);

  const dfs::NameNode& nn_;
  ProcessPlacement placement_;
  ServiceOptions options_;
  BatchPolicy batch_policy_;
  Rng rng_;
  graph::FlowWorkspace workspace_;  ///< reused across batches
  AdmissionQueue queue_;
  TenantAccounts tenants_;
  std::vector<Job> jobs_;  ///< indexed by JobId - 1
  std::vector<std::uint32_t> load_;
  ServiceCounters counters_;
  ServiceProbe* probe_ = nullptr;
  Seconds now_ = 0;
};

}  // namespace opass::core
