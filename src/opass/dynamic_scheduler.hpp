// Opass for dynamic parallel data access (paper Section IV-D).
//
// For irregular workloads (gene comparison) a master assigns tasks to slaves
// at run time. Opass precomputes the matching-based assignment A* and uses
// it as a guideline:
//
//  1. before execution, slave i receives the task list L_i from the matcher;
//  2. an idle slave with a non-empty L_i is handed the next task from L_i;
//  3. an idle slave with an empty L_i steals from the *longest* remaining
//     list L_k, taking the task with the largest co-located byte count for
//     the idle slave.
//
// Implemented as a runtime::TaskSource so the executor treats it exactly
// like any other scheduler.
//
// Failure recovery (DESIGN.md §11). When the cluster loses a DataNode the
// guideline A* degrades: lists queued for processes co-located with the dead
// node were chosen *because* their inputs lived there. on_node_dead()
// re-homes those lists deterministically; adopt_guideline() swaps in a
// freshly re-planned A* over the remaining tasks (exp::run_dynamic re-plans
// through the core::plan() facade on membership changes).
//
// Thread-safety: single-threaded, like every scheduler in this repo — the
// executor calls next_task() and the recovery hooks from the one simulation
// thread. Fields would carry OPASS_GUARDED_BY (common/thread_annotations.hpp)
// once a concurrent executor shares a source across threads.
#pragma once

#include <deque>
#include <vector>

#include "dfs/namenode.hpp"
#include "opass/locality_graph.hpp"
#include "runtime/task_source.hpp"

namespace opass::core {

/// How an idle slave picks a task out of the victim's list.
enum class StealPolicy {
  /// Paper rule: scan the victim list for the task with the largest
  /// co-located byte count for the idle slave (O(list) per steal).
  kBestLocality,
  /// Cheap rule: take the victim's front task (O(1) per steal). Useful as a
  /// baseline to quantify what locality-aware stealing buys.
  kFront,
};

/// Knobs for the dynamic scheduler (options-last on every entry point).
struct DynamicOptions {
  StealPolicy steal_policy = StealPolicy::kBestLocality;
};

/// The Section IV-D scheduler.
class OpassDynamicSource final : public runtime::TaskSource {
 public:
  /// `guideline` is the precomputed A* (one list per process); `tasks`,
  /// `placement` and `nn` are used to compute co-located sizes for the
  /// stealing rule.
  ///
  /// Preconditions: guideline.size() == placement.size(); every task id in
  /// the guideline indexes `tasks`; `nn` and `tasks` outlive the source
  /// (borrowed by reference).
  OpassDynamicSource(runtime::Assignment guideline, const dfs::NameNode& nn,
                     const std::vector<runtime::Task>& tasks, ProcessPlacement placement,
                     DynamicOptions options = {});

  std::optional<runtime::TaskId> next_task(runtime::ProcessId process, Seconds now) override;

  // --- failure recovery hooks (driven by exp:: on membership events) ---

  /// React to `node` being declared dead: every *pending* task queued for a
  /// process placed on that node is re-homed to the alive process with the
  /// most co-located bytes for it (ties to the smallest process id; tasks
  /// with no surviving co-located replica go to the shortest alive list).
  ///
  /// Preconditions: none — safe to call for a node hosting no process.
  /// Postconditions: processes on dead nodes hold empty lists, so they only
  /// steal from step 3 onwards; already-dispensed tasks are untouched
  /// (exactly-once dispatch is preserved). Deterministic: a pure function
  /// of the lists and metadata at the call point, no RNG drawn.
  void on_node_dead(dfs::NodeId node);

  /// Pending (not yet dispensed) tasks across all lists.
  std::uint32_t remaining_tasks() const;

  /// Ids of all pending tasks, ascending — the re-planning work list.
  std::vector<runtime::TaskId> remaining_task_ids() const;

  /// Replace every pending list with `guideline` (a fresh A* re-planned over
  /// exactly the remaining tasks — obtain them via remaining_task_ids()).
  ///
  /// Preconditions: guideline.size() == process count; the guideline's task
  /// ids are a permutation of remaining_task_ids() (checked — re-planning
  /// must neither duplicate nor drop a pending task, or exactly-once
  /// execution breaks).
  void adopt_guideline(const runtime::Assignment& guideline);

  /// Number of steals performed so far (observability for tests/benches).
  std::uint32_t steal_count() const { return steals_; }

  /// Steals whose chosen task had at least one input replica co-located with
  /// the stealing process — the "steal locality hit rate" numerator. Under
  /// StealPolicy::kBestLocality this measures how often the paper's rule
  /// actually finds local data in the victim's list.
  std::uint32_t steal_local_hits() const { return steal_local_hits_; }

  /// Tasks handed out from a process's own guideline list L_i (step 2), as
  /// opposed to stolen ones. guideline_hits() + steal_count() equals the
  /// total number of tasks dispensed.
  std::uint32_t guideline_hits() const { return guideline_hits_; }

  /// Pending tasks re-homed by on_node_dead() so far.
  std::uint32_t failure_reassignments() const { return failure_reassignments_; }

 private:
  Bytes co_located_bytes(runtime::ProcessId process, runtime::TaskId task) const;
  bool on_dead_node(runtime::ProcessId process) const;

  std::vector<std::deque<runtime::TaskId>> lists_;
  const dfs::NameNode& nn_;
  const std::vector<runtime::Task>& tasks_;
  ProcessPlacement placement_;
  DynamicOptions options_;
  std::vector<dfs::NodeId> dead_nodes_;
  std::uint32_t steals_ = 0;
  std::uint32_t steal_local_hits_ = 0;
  std::uint32_t guideline_hits_ = 0;
  std::uint32_t failure_reassignments_ = 0;
};

}  // namespace opass::core
