// Opass for dynamic parallel data access (paper Section IV-D).
//
// For irregular workloads (gene comparison) a master assigns tasks to slaves
// at run time. Opass precomputes the matching-based assignment A* and uses
// it as a guideline:
//
//  1. before execution, slave i receives the task list L_i from the matcher;
//  2. an idle slave with a non-empty L_i is handed the next task from L_i;
//  3. an idle slave with an empty L_i steals from the *longest* remaining
//     list L_k, taking the task with the largest co-located byte count for
//     the idle slave.
//
// Implemented as a runtime::TaskSource so the executor treats it exactly
// like any other scheduler.
#pragma once

#include <deque>
#include <vector>

#include "dfs/namenode.hpp"
#include "opass/locality_graph.hpp"
#include "runtime/task_source.hpp"

namespace opass::core {

/// How an idle slave picks a task out of the victim's list.
enum class StealPolicy {
  /// Paper rule: scan the victim list for the task with the largest
  /// co-located byte count for the idle slave (O(list) per steal).
  kBestLocality,
  /// Cheap rule: take the victim's front task (O(1) per steal). Useful as a
  /// baseline to quantify what locality-aware stealing buys.
  kFront,
};

/// Knobs for the dynamic scheduler (options-last on every entry point).
struct DynamicOptions {
  StealPolicy steal_policy = StealPolicy::kBestLocality;
};

/// The Section IV-D scheduler.
class OpassDynamicSource final : public runtime::TaskSource {
 public:
  /// `guideline` is the precomputed A* (one list per process); `tasks`,
  /// `placement` and `nn` are used to compute co-located sizes for the
  /// stealing rule.
  OpassDynamicSource(runtime::Assignment guideline, const dfs::NameNode& nn,
                     const std::vector<runtime::Task>& tasks, ProcessPlacement placement,
                     DynamicOptions options = {});

  std::optional<runtime::TaskId> next_task(runtime::ProcessId process, Seconds now) override;

  /// Number of steals performed so far (observability for tests/benches).
  std::uint32_t steal_count() const { return steals_; }

  /// Steals whose chosen task had at least one input replica co-located with
  /// the stealing process — the "steal locality hit rate" numerator. Under
  /// StealPolicy::kBestLocality this measures how often the paper's rule
  /// actually finds local data in the victim's list.
  std::uint32_t steal_local_hits() const { return steal_local_hits_; }

  /// Tasks handed out from a process's own guideline list L_i (step 2), as
  /// opposed to stolen ones. guideline_hits() + steal_count() equals the
  /// total number of tasks dispensed.
  std::uint32_t guideline_hits() const { return guideline_hits_; }

 private:
  Bytes co_located_bytes(runtime::ProcessId process, runtime::TaskId task) const;

  std::vector<std::deque<runtime::TaskId>> lists_;
  const dfs::NameNode& nn_;
  const std::vector<runtime::Task>& tasks_;
  ProcessPlacement placement_;
  DynamicOptions options_;
  std::uint32_t steals_ = 0;
  std::uint32_t steal_local_hits_ = 0;
  std::uint32_t guideline_hits_ = 0;
};

}  // namespace opass::core
