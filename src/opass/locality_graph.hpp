// Building the process↔data co-location graph (paper Section IV-A, Fig. 4).
//
// Opass's first step is to "retrieve data distribution information from
// storage and build the locality relationship between processes and chunk
// files". Here that means querying the NameNode for replica locations and
// adding an edge (p, f) whenever a replica of chunk f sits on the node that
// process p runs on; the edge weight is the co-located byte count.
#pragma once

#include <vector>

#include "dfs/namenode.hpp"
#include "graph/bipartite_graph.hpp"
#include "runtime/task.hpp"

namespace opass::core {

/// Where each process runs (index = ProcessId, value = NodeId).
using ProcessPlacement = std::vector<dfs::NodeId>;

/// One process pinned to each of the first `process_count` nodes (the
/// paper's deployment); `process_count` = 0 means one per cluster node.
ProcessPlacement one_process_per_node(const dfs::NameNode& nn, std::uint32_t process_count = 0);

/// Fig. 4 graph: left = processes, right = *chunks*; an edge means the chunk
/// has a replica on the process's node, weighted by the chunk size.
graph::BipartiteGraph build_process_chunk_graph(const dfs::NameNode& nn,
                                                const ProcessPlacement& placement);

/// Fig. 6(a) table as a graph: left = processes, right = *tasks*; the weight
/// is the paper's matching value m_i^j = |d(p_i) ∩ d(t_j)| — the bytes of
/// task j's inputs co-located with process i. Tasks with no co-located bytes
/// for a process get no edge.
graph::BipartiteGraph build_process_task_graph(const dfs::NameNode& nn,
                                               const std::vector<runtime::Task>& tasks,
                                               const ProcessPlacement& placement);

}  // namespace opass::core
