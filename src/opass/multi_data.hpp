// Opass for parallel multi-data access (paper Section IV-C, Algorithm 1).
//
// Tasks with several inputs (e.g. a human + mouse + chimpanzee gene partition
// per comparison task) cannot be matched by the unit flow network, because a
// task may be partly local to several processes at once. Algorithm 1 is a
// stable-marriage-style greedy: every process must end up with n/m tasks;
// a deficient process proposes to its best not-yet-considered task (highest
// co-located byte count m_i^j); an assigned task accepts a proposal only
// from a process with a strictly larger matching value, cancelling its
// current assignment (the reassignment event of Fig. 6(b)).
//
// The result is optimal from each process's perspective (proposer-optimal,
// as in Gale–Shapley) and runs in O(m * n) proposals.
#pragma once

#include <cstdint>

#include "dfs/namenode.hpp"
#include "opass/locality_graph.hpp"
#include "runtime/static_partitioner.hpp"
#include "runtime/task.hpp"

namespace opass::core {

/// Knobs for the multi-data matcher (options-last on every entry point).
/// Algorithm 1 is a deterministic greedy with no tunables today; the struct
/// reserves the slot so future knobs don't break call sites.
struct MultiDataOptions {};

/// Result of the multi-data matching.
struct [[nodiscard]] MultiDataPlan {
  runtime::Assignment assignment;  ///< per-process task lists, quota each
  Bytes matched_bytes = 0;   ///< sum over assigned (p, t) of co-located bytes
  Bytes total_bytes = 0;     ///< sum of all task input bytes
  std::uint32_t reassignments = 0;  ///< tasks stolen by a better process

  double matched_fraction() const {
    return total_bytes ? static_cast<double>(matched_bytes) / static_cast<double>(total_bytes)
                       : 0.0;
  }
};

/// Run Algorithm 1. Works for any task arity (single-input tasks reduce to a
/// greedy locality matcher). Quotas are n/m tasks per process with the first
/// n%m processes taking one extra.
MultiDataPlan assign_multi_data(const dfs::NameNode& nn,
                                const std::vector<runtime::Task>& tasks,
                                const ProcessPlacement& placement,
                                MultiDataOptions options = {});

}  // namespace opass::core
