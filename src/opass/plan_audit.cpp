#include "opass/plan_audit.hpp"

#include <algorithm>
#include <sstream>

#include "opass/plan_io.hpp"

namespace opass::core {

namespace {

void add_issue(AuditReport& report, AuditCode code, const std::string& message) {
  report.issues.push_back({code, message});
}

/// True iff every task has exactly one input chunk — the shape the paper's
/// single-data capacity constraint applies to.
bool is_single_data(const std::vector<runtime::Task>& tasks) {
  return std::all_of(tasks.begin(), tasks.end(),
                     [](const runtime::Task& t) { return t.inputs.size() == 1; });
}

/// Exactly-once check: count occurrences of every task id across all lists.
/// Reports unknown ids, duplicates and omissions; returns true iff the
/// assignment is a clean partition of [0, n).
bool check_partition(const std::vector<runtime::Task>& tasks,
                     const runtime::Assignment& assignment, AuditReport& report) {
  const auto n = tasks.size();
  std::vector<std::uint32_t> seen(n, 0);
  bool clean = true;
  for (std::size_t p = 0; p < assignment.size(); ++p) {
    for (runtime::TaskId t : assignment[p]) {
      if (t >= n) {
        std::ostringstream os;
        os << "process " << p << " references task " << t << " but the job has only " << n
           << " tasks";
        add_issue(report, AuditCode::kUnknownTask, os.str());
        clean = false;
        continue;
      }
      ++seen[t];
    }
  }
  for (std::size_t t = 0; t < n; ++t) {
    if (seen[t] == 1) continue;
    clean = false;
    std::ostringstream os;
    if (seen[t] == 0) {
      os << "task " << t << " is assigned to no process";
      add_issue(report, AuditCode::kMissingTask, os.str());
    } else {
      os << "task " << t << " is assigned " << seen[t] << " times";
      add_issue(report, AuditCode::kDuplicateTask, os.str());
    }
  }
  return clean;
}

/// Paper constraint: each process reads at most its TotalSize/m share. At
/// integral task granularity (every task one chunk) that is ceil(n/m) tasks;
/// in bytes it is ceil(n/m) * chunk_size, since no single-data input can
/// exceed one chunk. Which processes take the ceiling is the assigner's
/// choice, so the cap is uniform rather than positional.
void check_capacity(const dfs::NameNode& nn, const std::vector<runtime::Task>& tasks,
                    const runtime::Assignment& assignment, AuditReport& report) {
  if (!is_single_data(tasks)) {
    add_issue(report, AuditCode::kCapacityExceeded,
              "capacity audit requested for a plan with multi-input tasks; the "
              "TotalSize/m constraint only applies to single-data plans");
    return;
  }
  const auto n = tasks.size();
  const auto m = assignment.size();
  const auto cap_tasks = static_cast<std::uint32_t>((n + m - 1) / m);
  const Bytes cap_bytes = static_cast<Bytes>(cap_tasks) * nn.chunk_size();
  for (std::size_t p = 0; p < m; ++p) {
    const auto count = static_cast<std::uint32_t>(assignment[p].size());
    if (count > cap_tasks) {
      std::ostringstream os;
      os << "process " << p << " holds " << count << " tasks but its TotalSize/m share is "
         << cap_tasks;
      add_issue(report, AuditCode::kCapacityExceeded, os.str());
      continue;
    }
    Bytes bytes = 0;
    for (runtime::TaskId t : assignment[p]) bytes += tasks[t].input_bytes(nn);
    if (bytes > cap_bytes) {
      std::ostringstream os;
      os << "process " << p << " reads " << bytes << " bytes but its byte capacity is "
         << cap_bytes;
      add_issue(report, AuditCode::kCapacityExceeded, os.str());
    }
  }
}

/// Independent byte accounting: walk the plan chunk by chunk (a different
/// traversal than evaluate_assignment's) and cross-check both computations,
/// plus any stats the caller recorded for the plan.
void check_stats(const dfs::NameNode& nn, const std::vector<runtime::Task>& tasks,
                 const runtime::Assignment& assignment, const ProcessPlacement& placement,
                 const AuditOptions& options, AuditReport& report) {
  Bytes total = 0, local = 0;
  for (std::size_t p = 0; p < assignment.size(); ++p) {
    for (runtime::TaskId t : assignment[p]) {
      for (dfs::ChunkId c : tasks[t].inputs) {
        const auto& chunk = nn.chunk(c);
        total += chunk.size;
        if (chunk.has_replica_on(placement[p])) local += chunk.size;
      }
    }
  }
  const AssignmentStats stats = evaluate_assignment(nn, tasks, assignment, placement);
  report.stats = stats;
  if (stats.total_bytes != total || stats.local_bytes != local) {
    std::ostringstream os;
    os << "assignment_stats disagrees with the audit recount: stats say " << stats.local_bytes
       << "/" << stats.total_bytes << " local/total bytes, recount says " << local << "/"
       << total;
    add_issue(report, AuditCode::kStatsMismatch, os.str());
  }
  if (!options.expected_stats) return;
  const AssignmentStats& want = *options.expected_stats;
  const auto mismatch = [&](const char* field, std::uint64_t got, std::uint64_t claimed) {
    std::ostringstream os;
    os << "plan claims " << field << " = " << claimed << " but the placement yields " << got;
    add_issue(report, AuditCode::kStatsMismatch, os.str());
  };
  if (want.total_bytes != stats.total_bytes)
    mismatch("total_bytes", stats.total_bytes, want.total_bytes);
  if (want.local_bytes != stats.local_bytes)
    mismatch("local_bytes", stats.local_bytes, want.local_bytes);
  if (want.task_count != stats.task_count)
    mismatch("task_count", stats.task_count, want.task_count);
  if (want.max_tasks_per_process != stats.max_tasks_per_process)
    mismatch("max_tasks_per_process", stats.max_tasks_per_process,
             want.max_tasks_per_process);
  if (want.min_tasks_per_process != stats.min_tasks_per_process)
    mismatch("min_tasks_per_process", stats.min_tasks_per_process,
             want.min_tasks_per_process);
}

void check_round_trip(const std::vector<runtime::Task>& tasks,
                      const runtime::Assignment& assignment, AuditReport& report) {
  const auto n = static_cast<std::uint32_t>(tasks.size());
  try {
    const std::string wire = serialize_assignment(assignment, n);
    const runtime::Assignment parsed = parse_assignment(wire);
    if (parsed != assignment) {
      add_issue(report, AuditCode::kRoundTripMismatch,
                "plan_io serialize/parse does not reproduce the assignment");
    }
  } catch (const std::exception& e) {
    add_issue(report, AuditCode::kRoundTripMismatch,
              std::string("plan_io round trip failed: ") + e.what());
  }
}

}  // namespace

const char* audit_code_name(AuditCode code) {
  switch (code) {
    case AuditCode::kProcessCountMismatch: return "process-count-mismatch";
    case AuditCode::kProcessNodeOutOfRange: return "process-node-out-of-range";
    case AuditCode::kUnknownTask: return "unknown-task";
    case AuditCode::kDuplicateTask: return "duplicate-task";
    case AuditCode::kMissingTask: return "missing-task";
    case AuditCode::kCapacityExceeded: return "capacity-exceeded";
    case AuditCode::kStatsMismatch: return "stats-mismatch";
    case AuditCode::kRoundTripMismatch: return "round-trip-mismatch";
    case AuditCode::kTaskNotExecuted: return "task-not-executed";
    case AuditCode::kTaskExecutedTwice: return "task-executed-twice";
  }
  return "unknown";
}

AuditReport audit_completion(std::uint32_t task_count,
                             const std::vector<runtime::TaskId>& executed_tasks) {
  AuditReport report;
  std::vector<std::uint32_t> runs(task_count, 0);
  for (runtime::TaskId t : executed_tasks) {
    if (t >= task_count) {
      std::ostringstream os;
      os << "execution reports task " << t << " but the job has only " << task_count
         << " tasks";
      add_issue(report, AuditCode::kUnknownTask, os.str());
      continue;
    }
    ++runs[t];
  }
  for (std::uint32_t t = 0; t < task_count; ++t) {
    if (runs[t] == 1) continue;
    std::ostringstream os;
    if (runs[t] == 0) {
      os << "task " << t << " never executed";
      add_issue(report, AuditCode::kTaskNotExecuted, os.str());
    } else {
      os << "task " << t << " executed " << runs[t] << " times";
      add_issue(report, AuditCode::kTaskExecutedTwice, os.str());
    }
  }
  return report;
}

bool AuditReport::has(AuditCode code) const {
  return std::any_of(issues.begin(), issues.end(),
                     [code](const AuditIssue& i) { return i.code == code; });
}

std::string AuditReport::to_string() const {
  if (issues.empty()) return "plan ok\n";
  std::ostringstream os;
  for (const auto& issue : issues)
    os << audit_code_name(issue.code) << ": " << issue.message << '\n';
  return os.str();
}

AuditReport audit_plan(const dfs::NameNode& nn, const std::vector<runtime::Task>& tasks,
                       const runtime::Assignment& assignment,
                       const ProcessPlacement& placement, const AuditOptions& options) {
  AuditReport report;

  if (assignment.size() != placement.size()) {
    std::ostringstream os;
    os << "assignment has " << assignment.size() << " process lists but the placement runs "
       << placement.size() << " processes";
    add_issue(report, AuditCode::kProcessCountMismatch, os.str());
  }
  for (std::size_t p = 0; p < placement.size(); ++p) {
    if (placement[p] >= nn.node_count()) {
      std::ostringstream os;
      os << "process " << p << " is pinned to node " << placement[p] << " but the cluster has "
         << nn.node_count() << " nodes";
      add_issue(report, AuditCode::kProcessNodeOutOfRange, os.str());
    }
  }

  const bool partition_ok = check_partition(tasks, assignment, report);

  // The byte-level checks need every referenced task and node to resolve;
  // skip them (rather than crash) when the plan is structurally broken.
  const bool shapes_ok = assignment.size() == placement.size() &&
                         !report.has(AuditCode::kUnknownTask) &&
                         !report.has(AuditCode::kProcessNodeOutOfRange);
  if (shapes_ok) {
    if (options.enforce_capacity) check_capacity(nn, tasks, assignment, report);
    check_stats(nn, tasks, assignment, placement, options, report);
  }
  if (options.check_round_trip && partition_ok && !assignment.empty())
    check_round_trip(tasks, assignment, report);

  return report;
}

}  // namespace opass::core
