#include "opass/locality_graph.hpp"

#include "common/require.hpp"

namespace opass::core {

ProcessPlacement one_process_per_node(const dfs::NameNode& nn, std::uint32_t process_count) {
  const std::uint32_t m = process_count ? process_count : nn.node_count();
  ProcessPlacement placement(m);
  for (std::uint32_t p = 0; p < m; ++p)
    placement[p] = static_cast<dfs::NodeId>(p % nn.node_count());
  return placement;
}

graph::BipartiteGraph build_process_chunk_graph(const dfs::NameNode& nn,
                                                const ProcessPlacement& placement) {
  OPASS_REQUIRE(!placement.empty(), "need at least one process");
  graph::BipartiteGraph g(static_cast<std::uint32_t>(placement.size()), nn.chunk_count());
  for (std::uint32_t p = 0; p < placement.size(); ++p) {
    OPASS_REQUIRE(placement[p] < nn.node_count(), "process placed on unknown node");
    for (dfs::ChunkId c : nn.chunks_on_node(placement[p])) {
      g.add_edge(p, c, nn.chunk(c).size);
    }
  }
  return g;
}

graph::BipartiteGraph build_process_task_graph(const dfs::NameNode& nn,
                                               const std::vector<runtime::Task>& tasks,
                                               const ProcessPlacement& placement) {
  OPASS_REQUIRE(!placement.empty(), "need at least one process");
  graph::BipartiteGraph g(static_cast<std::uint32_t>(placement.size()),
                          static_cast<std::uint32_t>(tasks.size()));
  for (std::uint32_t p = 0; p < placement.size(); ++p) {
    const dfs::NodeId node = placement[p];
    OPASS_REQUIRE(node < nn.node_count(), "process placed on unknown node");
    for (std::uint32_t t = 0; t < tasks.size(); ++t) {
      Bytes co_located = 0;
      for (dfs::ChunkId c : tasks[t].inputs) {
        if (nn.chunk(c).has_replica_on(node)) co_located += nn.chunk(c).size;
      }
      if (co_located > 0) g.add_edge(p, t, co_located);
    }
  }
  return g;
}

}  // namespace opass::core
