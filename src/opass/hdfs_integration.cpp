#include "opass/hdfs_integration.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace opass::core {

HdfsLocalityGraph build_locality_via_hdfs(hdfs::hdfsFS fs,
                                          const std::vector<std::string>& paths,
                                          const ProcessPlacement& placement) {
  OPASS_REQUIRE(!placement.empty(), "need at least one process");

  // Pass 1: enumerate blocks and their hosts via the public API only.
  HdfsLocalityGraph out;
  std::vector<std::vector<dfs::NodeId>> hosts_per_block;
  for (const auto& path : paths) {
    const auto info = hdfs::hdfsGetPathInfo(fs, path);
    OPASS_REQUIRE(info.has_value(), "input path does not exist: " + path);
    const auto hosts = hdfs::hdfsGetHosts(fs, path, 0, static_cast<hdfs::tOffset>(info->size));
    Bytes remaining = info->size;
    for (std::uint32_t bi = 0; bi < hosts.size(); ++bi) {
      HdfsBlockRef ref;
      ref.path = path;
      ref.block_index = bi;
      ref.size = std::min(remaining, info->block_size);
      remaining -= ref.size;
      out.blocks.push_back(std::move(ref));
      hosts_per_block.push_back(hosts[bi]);
    }
  }

  // Pass 2: the co-location edges.
  out.graph = graph::BipartiteGraph(static_cast<std::uint32_t>(placement.size()),
                                    static_cast<std::uint32_t>(out.blocks.size()));
  for (std::uint32_t p = 0; p < placement.size(); ++p) {
    for (std::uint32_t b = 0; b < out.blocks.size(); ++b) {
      const auto& hosts = hosts_per_block[b];
      if (std::find(hosts.begin(), hosts.end(), placement[p]) != hosts.end()) {
        out.graph.add_edge(p, b, out.blocks[b].size);
      }
    }
  }
  return out;
}

}  // namespace opass::core
