// Umbrella header for the Opass core library.
//
// Typical use:
//
//   auto placement = opass::core::one_process_per_node(nn);
//   auto plan = opass::core::plan({&nn, &tasks, &placement, &rng});
//   opass::runtime::StaticAssignmentSource source(plan.assignment);
//   auto result = opass::runtime::execute(cluster, nn, tasks, source, rng);
//
// See examples/quickstart.cpp for a complete program.
#pragma once

#include "opass/admission.hpp"
#include "opass/assignment_stats.hpp"
#include "opass/dynamic_scheduler.hpp"
#include "opass/locality_graph.hpp"
#include "opass/multi_data.hpp"
#include "opass/plan_audit.hpp"
#include "opass/plan_io.hpp"
#include "opass/hdfs_integration.hpp"
#include "opass/incremental.hpp"
#include "opass/planner.hpp"
#include "opass/rack_aware.hpp"
#include "opass/service.hpp"
#include "opass/single_data.hpp"
#include "opass/weighted_single_data.hpp"
