// Admission control for the planning service: the arrival queue and the
// per-tenant fair-share ledger.
//
// PlannerService (opass/service.hpp) answers a *stream* of job arrivals over
// a shared cluster. Two policy pieces are factored out here so they can be
// unit-tested without standing up a namespace or running a flow solve:
//
//  * AdmissionQueue — pending jobs ordered by (arrival, job id), popped as
//    *batches*: co-arriving jobs (arrivals within `BatchPolicy::window` of
//    the batch head) coalesce into one entry so the service can merge them
//    into a single flow solve. Cancellation removes a job mid-queue.
//  * TenantAccounts — cumulative locally-assigned bytes per tenant, weighted
//    by the tenant's share weight. The service uses the ledger to split a
//    batch's locality budget: slots are granted one at a time to the tenant
//    with the smallest normalized usage (charged bytes / weight), so over
//    time each tenant's local-byte share converges to its weight share —
//    the spirit of proportional storage allocations (PAPERS.md
//    arXiv 1808.07545) applied to the locality budget.
//
// Everything here is deterministic: ties break on ids, iteration follows
// insertion order, and no wall clock or unseeded randomness is involved.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "opass/planner.hpp"
#include "runtime/task.hpp"

namespace opass::core {

/// How AdmissionQueue cuts batches.
struct BatchPolicy {
  /// Jobs arriving within `window` virtual seconds of the batch head are
  /// coalesced into the head's batch (0 = only exact co-arrivals merge).
  Seconds window = 0;
  std::uint32_t max_jobs = 0;   ///< per-batch job cap (0 = unbounded)
  std::uint32_t max_tasks = 0;  ///< per-batch task cap (0 = unbounded)
};

/// One queued job: the id assigned at submit plus the caller's request.
struct PendingJob {
  JobId id = 0;
  JobRequest request;
};

/// Deterministic arrival queue with batch coalescing (see file comment).
class AdmissionQueue {
 public:
  /// Enqueue a job. Order is (arrival, id): a job submitted later but with
  /// an earlier arrival time sorts ahead, and co-arrivals keep submit order
  /// because ids are monotone.
  void push(PendingJob job);

  /// Remove a queued job by id. Returns false when no such job is queued.
  bool cancel(JobId id);

  /// True when a batch is ready at virtual time `now` (head arrival <= now).
  bool batch_ready(Seconds now) const;

  /// Pop the next batch: the head job plus every following job whose arrival
  /// falls within `policy.window` of the head's arrival (and <= `now`), up
  /// to the policy's job/task caps. Requires batch_ready(now). The head job
  /// always pops, even when it alone exceeds `max_tasks`.
  std::vector<PendingJob> pop_batch(Seconds now, const BatchPolicy& policy);

  std::size_t depth() const { return queue_.size(); }
  bool empty() const { return queue_.empty(); }

  /// Arrival time of the queue head; requires !empty().
  Seconds next_arrival() const;

  /// Total tasks across all queued jobs.
  std::uint64_t pending_tasks() const { return pending_tasks_; }

 private:
  // Sorted by (arrival, id); head at front. Batch pops consume a prefix, so
  // a vector with ordered insertion keeps pops O(batch) amortized.
  std::vector<PendingJob> queue_;
  std::uint64_t pending_tasks_ = 0;
};

/// Weighted per-tenant usage ledger (see file comment). Tenants register on
/// first touch; a tenant's weight is fixed by its first registration.
class TenantAccounts {
 public:
  /// Register `tenant` with `weight` (> 0) on first touch; later touches
  /// must agree on the weight (OPASS_REQUIRE).
  void touch(TenantId tenant, double weight);

  /// Add locally-assigned bytes to a tenant's ledger.
  void charge(TenantId tenant, Bytes local_bytes);

  /// Remove previously charged bytes (job cancelled after planning).
  void refund(TenantId tenant, Bytes local_bytes);

  bool known(TenantId tenant) const;
  double weight(TenantId tenant) const;
  Bytes charged(TenantId tenant) const;

  /// Charged bytes divided by weight — the fair-share comparison key.
  double normalized_usage(TenantId tenant) const;

  /// Tenants in first-touch order.
  const std::vector<TenantId>& tenants() const { return order_; }

  /// Split `slots` locality slots among `tenants` (distinct, registered):
  /// grant one slot at a time to the tenant with the smallest projected
  /// normalized usage (ledger bytes + granted slots * `bytes_per_slot`,
  /// divided by weight), never exceeding the tenant's `demand`; ties break
  /// on tenant id. Returns per-tenant grants aligned with `tenants`. The
  /// grand total is min(slots, sum of demands).
  std::vector<std::uint32_t> split_slots(std::uint32_t slots,
                                         const std::vector<TenantId>& tenant_ids,
                                         const std::vector<std::uint32_t>& demand,
                                         Bytes bytes_per_slot) const;

 private:
  std::size_t index_of(TenantId tenant) const;

  std::vector<TenantId> order_;
  std::vector<double> weights_;
  std::vector<Bytes> charged_;
};

}  // namespace opass::core
