// Unified planning facade over the Opass matchers.
//
// The library grew one free function per planner (single-data flow, byte-
// weighted flow, rack-aware two-phase flow, multi-data stable matching),
// each with its own result struct. Callers that switch planners — the CLI,
// the experiment harness, benchmarks — ended up with a hand-rolled dispatch
// per call site. plan() centralizes that: one request, one options struct
// (options-last, defaulted), one result carrying the assignment, uniform
// AssignmentStats, and the planner-specific counters that still matter.
//
// The per-planner free functions remain the documented low-level entry
// points; the facade dispatches to them and adds nothing but the uniform
// packaging, so existing call sites keep working unchanged.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "dfs/namenode.hpp"
#include "graph/max_flow.hpp"
#include "opass/assignment_stats.hpp"
#include "opass/dynamic_scheduler.hpp"
#include "opass/locality_graph.hpp"
#include "runtime/static_partitioner.hpp"
#include "runtime/task.hpp"

namespace opass::core {

/// Which matcher plan() dispatches to.
enum class PlannerKind {
  kSingleData,    ///< Fig. 5 unit-capacity max-flow + random fill
  kWeighted,      ///< Fig. 5 with byte capacities + balance fill
  kRackAware,     ///< two-phase (node-local, rack-local) flow + random fill
  kMultiData,     ///< Algorithm 1 stable-marriage greedy
};

/// Canonical name ("single-data", "weighted", "rack-aware", "multi-data").
const char* planner_kind_name(PlannerKind kind);

/// Inverse of planner_kind_name(); throws std::invalid_argument otherwise.
PlannerKind parse_planner_kind(const std::string& name);

/// Everything a planner needs to run. The referenced objects must outlive
/// the plan() call; nothing is copied.
struct PlanRequest {
  const dfs::NameNode* nn = nullptr;
  const std::vector<runtime::Task>* tasks = nullptr;
  const ProcessPlacement* placement = nullptr;
  /// Required by the flow planners for their random-fill phase; kMultiData
  /// is deterministic and ignores it.
  Rng* rng = nullptr;
};

/// Knobs shared by every planner (options-last on every entry point).
struct PlanOptions {
  PlannerKind planner = PlannerKind::kSingleData;
  /// Max-flow solver for the flow-based planners; ignored by kMultiData.
  graph::MaxFlowAlgorithm algorithm = graph::MaxFlowAlgorithm::kDinic;
  /// Optional reusable network + solver arenas for the flow-based planners.
  graph::FlowWorkspace* workspace = nullptr;
  /// Steal rule used by make_dynamic_source().
  StealPolicy steal_policy = StealPolicy::kBestLocality;
  /// Worker-pool opt-in (DESIGN.md §12): with more than one lane, the Dinic
  /// solves run their independent per-source-file subflows concurrently
  /// where the Fig. 5 network decomposes, falling back to the serial solver
  /// otherwise. Output is byte-identical for every value. `pool` lends an
  /// existing pool (preferred for repeated planning — takes precedence);
  /// otherwise `threads > 1` spins up a transient pool for this call.
  /// Default 1 = today's serial path.
  std::uint32_t threads = 1;
  ThreadPool* pool = nullptr;
};

/// Uniform result: the assignment, its locality/balance profile, and the
/// planner-specific counters (fields not produced by the chosen planner
/// stay zero).
struct [[nodiscard]] PlanResult {
  PlannerKind planner = PlannerKind::kSingleData;
  runtime::Assignment assignment;
  AssignmentStats stats;

  // Flow planners (kSingleData, kRackAware; kWeighted reports fill_assigned).
  std::uint32_t locally_matched = 0;  ///< tasks matched by a max-flow phase
  std::uint32_t randomly_filled = 0;  ///< tasks placed by a fill pass
  std::uint32_t rack_local = 0;       ///< kRackAware: phase-2 matches

  // kMultiData.
  std::uint32_t reassignments = 0;  ///< Algorithm 1 steal-backs
  Bytes matched_bytes = 0;          ///< co-located bytes of the final matching

  // Host wall-clock timings of the facade's two phases, measured with
  // steady_clock. These are NOT deterministic across runs or machines —
  // observability sinks must tag them as such (obs collectors register them
  // nondeterministic, so deterministic exports exclude them by default).
  double plan_wall_ms = 0;   ///< matcher dispatch (graph build + solve + fill)
  double stats_wall_ms = 0;  ///< evaluate_assignment() profiling pass

  double local_fraction() const { return stats.local_fraction(); }
};

/// Run the planner selected by `options.planner` and package the result.
PlanResult plan(const PlanRequest& request, PlanOptions options = {});

// --- session-based planning service types -----------------------------------
//
// The one-shot plan() facade answers a single offline request; the
// session-based PlannerService (opass/service.hpp) answers a stream of job
// arrivals over a shared cluster. The service's wire types live here so the
// whole public planning API — one-shot and session — reads from one header.

/// Service-issued job handle (monotone from 1; 0 is never issued).
using JobId = std::uint64_t;

/// Tenant namespace for fair-share accounting; dense small ids expected.
using TenantId = std::uint32_t;

inline constexpr JobId kInvalidJob = 0;

/// Lifecycle of a submitted job.
enum class JobState : std::uint8_t {
  kQueued,     ///< admitted, waiting for its batch
  kPlanned,    ///< assigned; occupies process capacity until complete/cancel
  kCompleted,  ///< finished executing; capacity released, usage stays charged
  kCancelled,  ///< withdrawn (queued: never planned; planned: capacity freed)
};

/// Canonical name ("queued", "planned", "completed", "cancelled").
const char* job_state_name(JobState state);

/// One job of a planning session: a set of single-input tasks arriving at a
/// virtual time on behalf of a tenant. The service copies the request, so
/// the caller keeps no obligations after submit().
struct JobRequest {
  /// Single-input tasks (ids are the caller's; returned verbatim in the
  /// job's assignment). Multi-input tasks are rejected at submit.
  std::vector<runtime::Task> tasks;
  TenantId tenant = 0;
  /// Fair-share weight of the tenant; fixed by the tenant's first job.
  double weight = 1.0;
  /// Virtual arrival time; must be >= the service's current time.
  Seconds arrival = 0;
};

/// Everything the service knows about one job. Snapshot semantics: the
/// assignment and counters are filled when the job's batch is planned.
struct JobStatus {
  JobId id = kInvalidJob;
  JobState state = JobState::kQueued;
  TenantId tenant = 0;
  Seconds arrival = 0;
  Seconds planned_at = 0;             ///< batch cut time (valid once planned)
  std::uint32_t batch = 0;            ///< 1-based batch sequence number
  std::uint32_t locally_matched = 0;  ///< tasks placed by the flow phases
  std::uint32_t randomly_filled = 0;  ///< tasks placed by the fill pass
  Bytes local_bytes = 0;              ///< co-located bytes of the assignment
  Bytes total_bytes = 0;              ///< input bytes of the job's tasks
  /// Per-process lists of the job's task ids (caller ids, empty until
  /// planned; process count = the service placement's size).
  runtime::Assignment assignment;

  double local_fraction() const {
    return total_bytes ? static_cast<double>(local_bytes) / static_cast<double>(total_bytes)
                       : 0.0;
  }
};

/// Service-wide knobs (constructor-only; options-last like PlanOptions).
struct ServiceOptions {
  /// Max-flow solver for the per-batch Fig. 5 solves.
  graph::MaxFlowAlgorithm algorithm = graph::MaxFlowAlgorithm::kDinic;
  /// Seed of the service's private Rng (random-fill phase). Same trace +
  /// same seed => byte-identical assignments (the determinism contract).
  std::uint64_t seed = 0;
  /// Coalescing window: jobs arriving within `batch_window` of a batch head
  /// merge into the head's flow solve (0 = only exact co-arrivals).
  Seconds batch_window = 0;
  std::uint32_t max_batch_jobs = 0;   ///< per-batch job cap (0 = unbounded)
  std::uint32_t max_batch_tasks = 0;  ///< per-batch task cap (0 = unbounded)
  /// When false, the per-tenant fair-share phase is skipped and batches get
  /// plain maximum locality (single flow solve).
  bool fair_share = true;
};

/// Build the Section IV-D dynamic source seeded with plan()'s assignment as
/// the guideline A*. The request's nn/tasks/placement must outlive the
/// returned source.
std::unique_ptr<OpassDynamicSource> make_dynamic_source(const PlanRequest& request,
                                                        PlanOptions options = {});

}  // namespace opass::core
