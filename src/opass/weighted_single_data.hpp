// Byte-weighted single-data assignment — the Fig. 5 network with byte
// capacities, as the paper prints it.
//
// assign_single_data() uses unit (task-count) capacities, which matches the
// paper's experiments because every chunk file there is the same size. When
// file sizes vary (e.g. a VTK series with mixed-resolution time steps),
// equalizing task *counts* leaves processes with unequal *bytes*. This
// variant equalizes bytes:
//
//   s --(ceil(TotalSize/m))--> p_i --(size_j)--> f_j --(size_j)--> t
//
// An integral max-flow on byte capacities may split a file's flow between
// two co-located processes; since a task is indivisible, each task is
// assigned to the co-located process carrying the most of its flow, and
// tasks that received no flow are filled onto the least-loaded (by bytes)
// processes. The result keeps the max-flow's locality while bounding the
// per-process byte overload by one file size.
#pragma once

#include "common/rng.hpp"
#include "dfs/namenode.hpp"
#include "graph/max_flow.hpp"
#include "opass/locality_graph.hpp"
#include "runtime/static_partitioner.hpp"
#include "runtime/task.hpp"

namespace opass::core {

/// Result of the byte-weighted assignment.
struct [[nodiscard]] WeightedPlan {
  runtime::Assignment assignment;
  Bytes local_bytes = 0;      ///< bytes assigned to a co-located process
  Bytes total_bytes = 0;
  Bytes max_process_bytes = 0;  ///< heaviest per-process byte load
  Bytes min_process_bytes = 0;  ///< lightest per-process byte load
  std::uint32_t flow_assigned = 0;  ///< tasks placed by the max-flow
  std::uint32_t fill_assigned = 0;  ///< tasks placed by the balance fill

  double local_fraction() const {
    return total_bytes ? static_cast<double>(local_bytes) / static_cast<double>(total_bytes)
                       : 0.0;
  }
};

/// Knobs for the weighted assigner (options-last on every entry point).
struct WeightedOptions {
  graph::MaxFlowAlgorithm algorithm = graph::MaxFlowAlgorithm::kDinic;
  /// Optional reusable network + solver arenas (see SingleDataOptions).
  graph::FlowWorkspace* workspace = nullptr;
};

/// Compute the byte-balanced Opass assignment. Every task must have exactly
/// one input chunk (sizes may differ).
WeightedPlan assign_single_data_weighted(const dfs::NameNode& nn,
                                         const std::vector<runtime::Task>& tasks,
                                         const ProcessPlacement& placement, Rng& rng,
                                         WeightedOptions options = {});

}  // namespace opass::core
