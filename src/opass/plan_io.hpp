// Assignment (plan) serialization.
//
// In a deployment the matcher runs once — in the master / job-submission
// process — and each parallel process receives its task list (the paper's
// L_i guideline lists). This module gives plans a stable text wire format so
// they can be broadcast, written next to a job's metadata, or diffed between
// runs. The format is line-based and versioned:
//
//   opass-plan v1
//   processes 4
//   tasks 16
//   p 0 : 0 4 8 12
//   p 1 : 1 5 9 13
//   ...
//
// Every task id in [0, tasks) must appear exactly once across the process
// lines; parsing validates this, so a corrupt plan cannot silently drop or
// duplicate work.
#pragma once

#include <string>

#include "runtime/static_partitioner.hpp"

namespace opass::core {

/// Render an assignment to the v1 text format. `task_count` is recorded in
/// the header and validated against the lists.
std::string serialize_assignment(const runtime::Assignment& assignment,
                                 std::uint32_t task_count);

/// Parse the v1 text format; throws std::invalid_argument on any malformed
/// or inconsistent input (bad header, wrong counts, duplicate/missing task).
runtime::Assignment parse_assignment(const std::string& text);

/// Convenience file wrappers.
void save_assignment(const std::string& path, const runtime::Assignment& assignment,
                     std::uint32_t task_count);
runtime::Assignment load_assignment(const std::string& path);

}  // namespace opass::core
