#include "opass/planner.hpp"

#include <chrono>
#include <optional>

#include "common/require.hpp"
#include "opass/multi_data.hpp"
#include "opass/rack_aware.hpp"
#include "opass/single_data.hpp"
#include "opass/weighted_single_data.hpp"

namespace opass::core {

const char* planner_kind_name(PlannerKind kind) {
  switch (kind) {
    case PlannerKind::kSingleData: return "single-data";
    case PlannerKind::kWeighted: return "weighted";
    case PlannerKind::kRackAware: return "rack-aware";
    case PlannerKind::kMultiData: return "multi-data";
  }
  OPASS_CHECK(false, "unhandled PlannerKind");
}

PlannerKind parse_planner_kind(const std::string& name) {
  if (name == "single-data") return PlannerKind::kSingleData;
  if (name == "weighted") return PlannerKind::kWeighted;
  if (name == "rack-aware") return PlannerKind::kRackAware;
  if (name == "multi-data") return PlannerKind::kMultiData;
  OPASS_REQUIRE(false, "unknown planner name \"" + name +
                           "\" (single-data | weighted | rack-aware | multi-data)");
}

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kPlanned: return "planned";
    case JobState::kCompleted: return "completed";
    case JobState::kCancelled: return "cancelled";
  }
  OPASS_CHECK(false, "unhandled JobState");
}

namespace {

double elapsed_ms(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - since)
      .count();
}

void validate(const PlanRequest& request, PlannerKind planner) {
  OPASS_REQUIRE(request.nn != nullptr, "PlanRequest.nn must be set");
  OPASS_REQUIRE(request.tasks != nullptr, "PlanRequest.tasks must be set");
  OPASS_REQUIRE(request.placement != nullptr, "PlanRequest.placement must be set");
  if (planner != PlannerKind::kMultiData)
    OPASS_REQUIRE(request.rng != nullptr, "PlanRequest.rng must be set for flow planners");
}

}  // namespace

PlanResult plan(const PlanRequest& request, PlanOptions options) {
  validate(request, options.planner);
  OPASS_REQUIRE(options.threads >= 1, "PlanOptions.threads must be >= 1");
  const dfs::NameNode& nn = *request.nn;
  const auto& tasks = *request.tasks;
  const auto& placement = *request.placement;

  // Worker-pool opt-in: lend the pool to the flow workspace for the duration
  // of this call (the solvers read workspace->pool). A transient pool is
  // spun up only when the caller asked for threads > 1 without lending one;
  // repeated planning should pass PlanOptions.pool to amortize thread spawn.
  std::optional<ThreadPool> transient_pool;
  ThreadPool* pool = options.pool;
  if (pool == nullptr && options.threads > 1) {
    transient_pool.emplace(options.threads);
    pool = &*transient_pool;
  }
  graph::FlowWorkspace local_workspace;
  graph::FlowWorkspace* workspace = options.workspace;
  if (workspace == nullptr && pool != nullptr) workspace = &local_workspace;
  ThreadPool* const saved_pool = workspace != nullptr ? workspace->pool : nullptr;
  if (workspace != nullptr && pool != nullptr) workspace->pool = pool;
  options.workspace = workspace;

  PlanResult result;
  result.planner = options.planner;
  const auto plan_begin = std::chrono::steady_clock::now();
  switch (options.planner) {
    case PlannerKind::kSingleData: {
      auto p = assign_single_data(nn, tasks, placement, *request.rng,
                                  {options.algorithm, options.workspace});
      result.assignment = std::move(p.assignment);
      result.locally_matched = p.locally_matched;
      result.randomly_filled = p.randomly_filled;
      break;
    }
    case PlannerKind::kWeighted: {
      auto p = assign_single_data_weighted(nn, tasks, placement, *request.rng,
                                           {options.algorithm, options.workspace});
      result.assignment = std::move(p.assignment);
      result.locally_matched = p.flow_assigned;
      result.randomly_filled = p.fill_assigned;
      result.matched_bytes = p.local_bytes;
      break;
    }
    case PlannerKind::kRackAware: {
      auto p = assign_single_data_rack_aware(nn, tasks, placement, *request.rng,
                                             RackAwareOptions{options.algorithm,
                                                              options.workspace});
      result.assignment = std::move(p.assignment);
      result.locally_matched = p.node_local;
      result.rack_local = p.rack_local;
      result.randomly_filled = p.random_filled;
      break;
    }
    case PlannerKind::kMultiData: {
      auto p = assign_multi_data(nn, tasks, placement);
      result.assignment = std::move(p.assignment);
      result.reassignments = p.reassignments;
      result.matched_bytes = p.matched_bytes;
      break;
    }
  }
  result.plan_wall_ms = elapsed_ms(plan_begin);
  if (workspace != nullptr) workspace->pool = saved_pool;
  const auto stats_begin = std::chrono::steady_clock::now();
  result.stats = evaluate_assignment(nn, tasks, result.assignment, placement);
  result.stats_wall_ms = elapsed_ms(stats_begin);
  return result;
}

std::unique_ptr<OpassDynamicSource> make_dynamic_source(const PlanRequest& request,
                                                        PlanOptions options) {
  PlanResult guideline = plan(request, options);
  return std::make_unique<OpassDynamicSource>(std::move(guideline.assignment), *request.nn,
                                              *request.tasks, *request.placement,
                                              DynamicOptions{options.steal_policy});
}

}  // namespace opass::core
