// Numerically stable binomial distribution, computed in log space via lgamma
// so that n = thousands of chunks does not overflow. Foundation of the
// Section III models.
#pragma once

#include <cstdint>

namespace opass::analysis {

/// log of the binomial coefficient C(n, k); requires 0 <= k <= n.
double log_choose(std::uint64_t n, std::uint64_t k);

/// P(X = k) for X ~ Binomial(n, p).
double binomial_pmf(std::uint64_t n, std::uint64_t k, double p);

/// P(X <= k) for X ~ Binomial(n, p). Sums pmf terms; exact enough for the
/// n <= tens-of-thousands regimes used here.
double binomial_cdf(std::uint64_t n, std::uint64_t k, double p);

/// P(X > k) = 1 - cdf, computed by summing the upper tail directly so small
/// tail probabilities keep full relative precision.
double binomial_sf(std::uint64_t n, std::uint64_t k, double p);

}  // namespace opass::analysis
