// Section III-B: imbalanced access pattern analysis.
//
// For a storage node n_j: Y = number of chunks whose replica set includes n_j
// is Binomial(n, r/m). Conditioned on Y = a, the number of chunks actually
// *served* by n_j is Binomial(a, 1/r) (each chunk's requester picks one of
// the r replicas uniformly; per Section III-A almost all requests are
// remote). By the law of total probability:
//
//   P(Z <= k) = sum_a P(Z <= k | Y = a) P(Y = a)
//
// The paper evaluates r = 3, n = 512, m = 128 and quotes the expected number
// of nodes serving <= 1 chunk and > 8 chunks.
#pragma once

#include <cstdint>
#include <vector>

namespace opass::analysis {

/// Parameters of the serve-imbalance model.
struct BalanceModel {
  std::uint32_t cluster_nodes;  ///< m
  std::uint32_t replication;    ///< r
  std::uint64_t chunks;         ///< n

  /// P(Y = a): node holds exactly a chunk replicas.
  double pmf_chunks_held(std::uint64_t a) const;

  /// P(Z <= k): node serves at most k chunk requests (law of total
  /// probability over Y).
  double cdf_chunks_served(std::uint64_t k) const;

  /// P(Z > k).
  double sf_chunks_served(std::uint64_t k) const;

  /// Expected number of cluster nodes serving at most k chunks:
  /// m * P(Z <= k). (The paper's text multiplies by n = 512 rather than
  /// m = 128 — an apparent typo; we report both, see bench/fig03.)
  double expected_nodes_serving_at_most(std::uint64_t k) const;

  /// Expected number of cluster nodes serving more than k chunks.
  double expected_nodes_serving_more_than(std::uint64_t k) const;

  /// E[Z] = n/m (every chunk is served by exactly one node).
  double expected_chunks_served() const;
};

}  // namespace opass::analysis
