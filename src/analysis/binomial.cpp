#include "analysis/binomial.hpp"

#include <cmath>

#include "common/require.hpp"

namespace opass::analysis {

double log_choose(std::uint64_t n, std::uint64_t k) {
  OPASS_REQUIRE(k <= n, "log_choose requires k <= n");
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

double binomial_pmf(std::uint64_t n, std::uint64_t k, double p) {
  OPASS_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of range");
  if (k > n) return 0.0;
  if (p == 0.0) return k == 0 ? 1.0 : 0.0;
  if (p == 1.0) return k == n ? 1.0 : 0.0;
  const double logp = log_choose(n, k) + static_cast<double>(k) * std::log(p) +
                      static_cast<double>(n - k) * std::log1p(-p);
  return std::exp(logp);
}

double binomial_cdf(std::uint64_t n, std::uint64_t k, double p) {
  if (k >= n) return 1.0;
  double acc = 0.0;
  for (std::uint64_t i = 0; i <= k; ++i) acc += binomial_pmf(n, i, p);
  return acc > 1.0 ? 1.0 : acc;
}

double binomial_sf(std::uint64_t n, std::uint64_t k, double p) {
  if (k >= n) return 0.0;
  double acc = 0.0;
  for (std::uint64_t i = k + 1; i <= n; ++i) acc += binomial_pmf(n, i, p);
  return acc > 1.0 ? 1.0 : acc;
}

}  // namespace opass::analysis
