#include "analysis/balance_model.hpp"

#include "analysis/binomial.hpp"
#include "common/require.hpp"

namespace opass::analysis {

double BalanceModel::pmf_chunks_held(std::uint64_t a) const {
  OPASS_REQUIRE(cluster_nodes > 0, "cluster must have nodes");
  OPASS_REQUIRE(replication > 0 && replication <= cluster_nodes,
                "replication factor must be in [1, m]");
  const double p = static_cast<double>(replication) / static_cast<double>(cluster_nodes);
  return binomial_pmf(chunks, a, p);
}

double BalanceModel::cdf_chunks_served(std::uint64_t k) const {
  const double serve_p = 1.0 / static_cast<double>(replication);
  double acc = 0.0;
  for (std::uint64_t a = 0; a <= chunks; ++a) {
    const double py = pmf_chunks_held(a);
    if (py == 0.0) continue;
    acc += binomial_cdf(a, k, serve_p) * py;
  }
  return acc > 1.0 ? 1.0 : acc;
}

double BalanceModel::sf_chunks_served(std::uint64_t k) const {
  const double v = 1.0 - cdf_chunks_served(k);
  return v < 0.0 ? 0.0 : v;
}

double BalanceModel::expected_nodes_serving_at_most(std::uint64_t k) const {
  return static_cast<double>(cluster_nodes) * cdf_chunks_served(k);
}

double BalanceModel::expected_nodes_serving_more_than(std::uint64_t k) const {
  return static_cast<double>(cluster_nodes) * sf_chunks_served(k);
}

double BalanceModel::expected_chunks_served() const {
  return static_cast<double>(chunks) / static_cast<double>(cluster_nodes);
}

}  // namespace opass::analysis
