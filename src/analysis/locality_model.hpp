// Section III-A: remote access pattern analysis.
//
// On an m-node cluster with r-way replication and randomly assigned chunks,
// the number of locally read chunks X is Binomial(n, p) where p is the
// per-chunk local-read probability. Two variants of p exist:
//
//  - kCoLocated (p = r/m): the chunk *can* be read locally — a replica sits
//    on the reader's node. This matches the formula the paper prints.
//  - kRandomReplica (p = 1/m): the reader picks one of the r replicas
//    uniformly with no locality preference, so a read *is* local only when
//    the chosen replica is the reader's node: (r/m)(1/r) = 1/m.
//
// The numeric values the paper quotes for Fig. 3 — P(X>5) = 81.09 / 21.43 /
// 1.64 / 0.46 % for m = 64..512 — follow the kRandomReplica variant (they
// are Binomial(512, 1/m) tails), not the printed r/m formula; we reproduce
// the paper's numbers with kRandomReplica and provide kCoLocated for the
// formula as written. See EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <vector>

namespace opass::analysis {

/// Which per-chunk local-read probability the model uses (see file comment).
enum class LocalityMode {
  kCoLocated,      ///< p = r/m — a local replica exists
  kRandomReplica,  ///< p = 1/m — uniformly chosen replica happens to be local
};

/// Parameters of the remote-access model.
struct LocalityModel {
  std::uint32_t cluster_nodes;  ///< m
  std::uint32_t replication;    ///< r
  std::uint64_t chunks;         ///< n (chunks read by the process set)
  LocalityMode mode = LocalityMode::kRandomReplica;  ///< matches Fig. 3 numbers

  /// Per-chunk local-read probability under `mode`.
  double local_probability() const;

  /// P(X <= k): CDF of the number of chunks read locally.
  double cdf_local_reads(std::uint64_t k) const;

  /// P(X > k): upper tail, e.g. the paper's P(X > 5) figures.
  double sf_local_reads(std::uint64_t k) const;

  /// E[X] = n * r / m.
  double expected_local_reads() const;

  /// CDF points for k = 0..k_max, i.e. one Fig. 3 curve.
  std::vector<double> cdf_series(std::uint64_t k_max) const;
};

}  // namespace opass::analysis
