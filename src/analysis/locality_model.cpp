#include "analysis/locality_model.hpp"

#include "analysis/binomial.hpp"
#include "common/require.hpp"

namespace opass::analysis {

double LocalityModel::local_probability() const {
  OPASS_REQUIRE(cluster_nodes > 0, "cluster must have nodes");
  OPASS_REQUIRE(replication > 0 && replication <= cluster_nodes,
                "replication factor must be in [1, m]");
  switch (mode) {
    case LocalityMode::kCoLocated:
      return static_cast<double>(replication) / static_cast<double>(cluster_nodes);
    case LocalityMode::kRandomReplica:
      return 1.0 / static_cast<double>(cluster_nodes);
  }
  OPASS_CHECK(false, "unknown locality mode");
}

double LocalityModel::cdf_local_reads(std::uint64_t k) const {
  return binomial_cdf(chunks, k, local_probability());
}

double LocalityModel::sf_local_reads(std::uint64_t k) const {
  return binomial_sf(chunks, k, local_probability());
}

double LocalityModel::expected_local_reads() const {
  return static_cast<double>(chunks) * local_probability();
}

std::vector<double> LocalityModel::cdf_series(std::uint64_t k_max) const {
  std::vector<double> out;
  out.reserve(k_max + 1);
  // Accumulate pmf terms once instead of recomputing the sum per point.
  const double p = local_probability();
  double acc = 0.0;
  for (std::uint64_t k = 0; k <= k_max; ++k) {
    acc += binomial_pmf(chunks, k, p);
    out.push_back(acc > 1.0 ? 1.0 : acc);
  }
  return out;
}

}  // namespace opass::analysis
