// Precondition / invariant checking macros.
//
// OPASS_REQUIRE is for caller-facing preconditions (throws std::invalid_argument),
// OPASS_CHECK is for internal invariants (throws std::logic_error). Both are
// always on: the library favours loud failure over silent corruption, and none
// of these checks sit on hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace opass::detail {

[[noreturn]] inline void throw_require(const char* cond, const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": requirement failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_check(const char* cond, const char* file, int line,
                                     const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": internal invariant violated: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace opass::detail

#define OPASS_REQUIRE(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) ::opass::detail::throw_require(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

#define OPASS_CHECK(cond, msg)                                            \
  do {                                                                    \
    if (!(cond)) ::opass::detail::throw_check(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)
