// ASCII table / CSV emission for bench output.
//
// Every bench binary prints the rows/series of the paper figure it reproduces;
// Table renders them aligned for a terminal and can also dump CSV so the
// series can be re-plotted.
#pragma once

#include <string>
#include <vector>

namespace opass {

/// Column-aligned ASCII table with an optional title. Cells are strings;
/// numeric helpers format with fixed precision.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Formatting helpers for building rows.
  static std::string num(double v, int precision = 2);
  static std::string integer(long long v);

  std::size_t rows() const { return rows_.size(); }

  /// Render with aligned columns and a header separator.
  std::string render(const std::string& title = {}) const;

  /// Render as CSV (no title, headers as the first line).
  std::string csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace opass
