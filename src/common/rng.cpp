#include "common/rng.hpp"

#include <cmath>
#include <unordered_set>

namespace opass {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // All-zero state is invalid for xoshiro; splitmix64 cannot produce four
  // zeros from any seed, but keep the guard for clarity.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  OPASS_REQUIRE(bound > 0, "uniform() bound must be positive");
  // Rejection sampling over the top of the range to avoid modulo bias.
  const std::uint64_t threshold = (~bound + 1) % bound;  // (2^64 - bound) mod bound
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) {
  OPASS_REQUIRE(lo <= hi, "uniform_range() requires lo <= hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next() : uniform(span));
}

double Rng::uniform01() {
  // 53-bit mantissa construction: uniform on [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::exponential(double mean) {
  OPASS_REQUIRE(mean > 0, "exponential() mean must be positive");
  double u;
  do {
    u = uniform01();
  } while (u == 0.0);
  return -mean * std::log(u);
}

double Rng::pareto(double xm, double alpha) {
  OPASS_REQUIRE(xm > 0 && alpha > 0, "pareto() parameters must be positive");
  double u;
  do {
    u = uniform01();
  } while (u == 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

std::vector<std::uint32_t> Rng::sample_without_replacement(std::uint32_t n, std::uint32_t k) {
  OPASS_REQUIRE(k <= n, "cannot sample more elements than the population holds");
  std::vector<std::uint32_t> out;
  out.reserve(k);
  if (k == 0) return out;
  if (k * 3 >= n) {
    // Dense case: partial Fisher–Yates over the full index range.
    std::vector<std::uint32_t> idx(n);
    for (std::uint32_t i = 0; i < n; ++i) idx[i] = i;
    for (std::uint32_t i = 0; i < k; ++i) {
      const auto j = i + static_cast<std::uint32_t>(uniform(n - i));
      std::swap(idx[i], idx[j]);
      out.push_back(idx[i]);
    }
    return out;
  }
  // Sparse case: rejection with a hash set.
  std::unordered_set<std::uint32_t> seen;
  seen.reserve(k * 2);
  while (out.size() < k) {
    const auto v = static_cast<std::uint32_t>(uniform(n));
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

Rng Rng::split() {
  Rng child(0);
  // Derive the child state from fresh draws so parent and child streams do
  // not overlap in practice.
  std::uint64_t seed = next() ^ rotl(next(), 13);
  child.reseed(seed);
  return child;
}

}  // namespace opass
