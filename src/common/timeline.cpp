#include "common/timeline.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/require.hpp"

namespace opass {

Timeline::Timeline(Seconds start, Seconds end, std::size_t lanes, std::size_t columns)
    : start_(start), end_(end), columns_(columns),
      rows_(lanes, std::string(columns, ' ')) {
  OPASS_REQUIRE(end > start, "timeline range must be non-empty");
  OPASS_REQUIRE(lanes > 0, "timeline needs at least one lane");
  OPASS_REQUIRE(columns > 0, "timeline needs at least one column");
}

void Timeline::add(std::size_t lane, Seconds from, Seconds to, char glyph) {
  OPASS_REQUIRE(lane < rows_.size(), "lane out of range");
  OPASS_REQUIRE(to >= from, "interval must not be reversed");
  const double scale = static_cast<double>(columns_) / (end_ - start_);
  auto col = [&](Seconds t) {
    return static_cast<std::ptrdiff_t>(std::floor((t - start_) * scale));
  };
  std::ptrdiff_t lo = std::max<std::ptrdiff_t>(0, col(from));
  std::ptrdiff_t hi = std::min<std::ptrdiff_t>(static_cast<std::ptrdiff_t>(columns_) - 1,
                                               col(to));
  if (lo > hi) return;  // fully clipped
  for (std::ptrdiff_t c = lo; c <= hi; ++c)
    rows_[lane][static_cast<std::size_t>(c)] = glyph;
}

double Timeline::lane_fill(std::size_t lane) const {
  OPASS_REQUIRE(lane < rows_.size(), "lane out of range");
  const auto painted = static_cast<double>(
      columns_ - static_cast<std::size_t>(
                     std::count(rows_[lane].begin(), rows_[lane].end(), ' ')));
  return painted / static_cast<double>(columns_);
}

std::string Timeline::render(const std::vector<std::string>& labels) const {
  OPASS_REQUIRE(labels.size() == rows_.size(), "one label per lane required");
  std::size_t width = 0;
  for (const auto& l : labels) width = std::max(width, l.size());

  std::ostringstream os;
  for (std::size_t lane = 0; lane < rows_.size(); ++lane) {
    os << labels[lane];
    for (std::size_t pad = labels[lane].size(); pad < width; ++pad) os << ' ';
    os << " |" << rows_[lane] << "|\n";
  }
  // Time axis footer.
  for (std::size_t pad = 0; pad < width; ++pad) os << ' ';
  char lo[32], hi[32];
  std::snprintf(lo, sizeof lo, " %.1fs", start_);
  std::snprintf(hi, sizeof hi, "%.1fs", end_);
  os << lo;
  const std::size_t used = std::string(lo).size() - 1;
  for (std::size_t c = used + std::string(hi).size(); c < columns_ + 2; ++c) os << ' ';
  os << hi << '\n';
  return os.str();
}

}  // namespace opass
