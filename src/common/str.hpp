// Small string helpers shared by reporting code.
#pragma once

#include <string>
#include <vector>

namespace opass {

/// printf-style formatting into a std::string.
std::string strfmt(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Join elements with a separator.
std::string join(const std::vector<std::string>& parts, const std::string& sep);

}  // namespace opass
