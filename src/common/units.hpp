// Typed byte and time units used throughout the library.
//
// Sizes are plain 64-bit byte counts (the paper works in MB-sized chunks, so
// overflow is not a concern below exabytes). Virtual time is a double in
// seconds, matching the flow-level simulator's continuous clock.
#pragma once

#include <cstdint>
#include <string>

namespace opass {

/// Data size in bytes.
using Bytes = std::uint64_t;

/// Virtual (simulated) time or duration in seconds.
using Seconds = double;

/// Transfer or service rate in bytes per second.
using BytesPerSec = double;

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;

/// The HDFS default chunk (block) size used across the paper: 64 MB.
inline constexpr Bytes kDefaultChunkSize = 64 * kMiB;

/// Convenience literal-style constructors.
constexpr Bytes mib(std::uint64_t n) { return n * kMiB; }
constexpr Bytes gib(std::uint64_t n) { return n * kGiB; }

/// Convert bytes to (fractional) MiB, for reporting.
constexpr double to_mib(Bytes b) { return static_cast<double>(b) / static_cast<double>(kMiB); }

/// Convert bytes to (fractional) GiB, for reporting.
constexpr double to_gib(Bytes b) { return static_cast<double>(b) / static_cast<double>(kGiB); }

/// Human-readable size, e.g. "64.0 MiB", "1.5 GiB".
std::string format_bytes(Bytes b);

}  // namespace opass
