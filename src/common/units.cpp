#include "common/units.hpp"

#include <cstdio>

namespace opass {

std::string format_bytes(Bytes b) {
  char buf[64];
  if (b >= kGiB) {
    std::snprintf(buf, sizeof buf, "%.1f GiB", to_gib(b));
  } else if (b >= kMiB) {
    std::snprintf(buf, sizeof buf, "%.1f MiB", to_mib(b));
  } else if (b >= kKiB) {
    std::snprintf(buf, sizeof buf, "%.1f KiB", static_cast<double>(b) / static_cast<double>(kKiB));
  } else {
    std::snprintf(buf, sizeof buf, "%llu B", static_cast<unsigned long long>(b));
  }
  return buf;
}

}  // namespace opass
