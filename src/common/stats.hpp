// Summary statistics over samples (I/O op times, per-node served bytes, ...).
//
// The paper reports min / max / average series (Figs. 7–11) and mean ± stddev
// (Fig. 12); Summary computes all of those plus order statistics in one pass
// over a sample vector.
#pragma once

#include <cstddef>
#include <vector>

namespace opass {

/// One-shot descriptive statistics of a sample.
struct Summary {
  std::size_t count = 0;
  double min = 0;
  double max = 0;
  double mean = 0;
  double stddev = 0;  ///< population standard deviation
  double median = 0;
  double p95 = 0;
  double p99 = 0;
  double sum = 0;

  /// max/min ratio; the paper quotes "max I/O time is 21X the minimum".
  /// Returns 0 when min == 0.
  double max_over_min() const { return min > 0 ? max / min : 0.0; }
};

/// Compute a Summary. An empty sample yields a zeroed Summary.
Summary summarize(const std::vector<double>& samples);

/// Linear-interpolated quantile of a *sorted* sample, q in [0, 1].
double quantile_sorted(const std::vector<double>& sorted, double q);

/// Coefficient of variation (stddev / mean); 0 for empty or zero-mean samples.
double coefficient_of_variation(const std::vector<double>& samples);

/// Jain's fairness index: (sum x)^2 / (n * sum x^2) in (0, 1]; 1 = perfectly
/// balanced. Used to quantify the balance of per-node served bytes.
double jain_fairness(const std::vector<double>& samples);

}  // namespace opass
