#include "common/table.hpp"

#include <cstdio>
#include <sstream>

#include "common/require.hpp"

namespace opass {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  OPASS_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  OPASS_REQUIRE(cells.size() == headers_.size(), "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::integer(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  return buf;
}

std::string Table::render(const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      if (row[c].size() > widths[c]) widths[c] = row[c].size();

  std::ostringstream os;
  if (!title.empty()) os << "== " << title << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << "  ";
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c ? 2 : 0);
  for (std::size_t i = 0; i < total; ++i) os << '-';
  os << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::csv() const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += "\"\"";
      else out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << ',';
    os << escape(headers_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << escape(row[c]);
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace opass
