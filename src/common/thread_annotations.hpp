// Clang thread-safety-analysis annotations (-Wthread-safety), expanding to
// nothing on other compilers. The parallelization work (worker-pool
// re-leveling, sharded executor replay) must land with every shared field
// annotated, so the analysis proves lock discipline at compile time on the
// clang CI leg while gcc builds stay untouched.
//
// Convention (enforced by review, documented in DESIGN.md "Static analysis
// & layering"):
//   - every field shared across workers:      T field_ OPASS_GUARDED_BY(mu_);
//   - every method touching guarded fields:   void f() OPASS_REQUIRES(mu_);
//   - lock wrappers, not raw std::mutex:      opass::Mutex / opass::ScopedLock
//     (raw std::mutex carries no capability attribute, so the analysis
//     cannot see it).
#pragma once

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#define OPASS_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define OPASS_THREAD_ANNOTATION__(x)  // no-op off clang
#endif

#define OPASS_CAPABILITY(x) OPASS_THREAD_ANNOTATION__(capability(x))
#define OPASS_SCOPED_CAPABILITY OPASS_THREAD_ANNOTATION__(scoped_lockable)
#define OPASS_GUARDED_BY(x) OPASS_THREAD_ANNOTATION__(guarded_by(x))
#define OPASS_PT_GUARDED_BY(x) OPASS_THREAD_ANNOTATION__(pt_guarded_by(x))
#define OPASS_ACQUIRED_BEFORE(...) OPASS_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define OPASS_ACQUIRED_AFTER(...) OPASS_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))
#define OPASS_REQUIRES(...) OPASS_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define OPASS_REQUIRES_SHARED(...) \
    OPASS_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))
#define OPASS_ACQUIRE(...) OPASS_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define OPASS_ACQUIRE_SHARED(...) \
    OPASS_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
#define OPASS_RELEASE(...) OPASS_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define OPASS_RELEASE_SHARED(...) \
    OPASS_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
#define OPASS_TRY_ACQUIRE(...) OPASS_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#define OPASS_EXCLUDES(...) OPASS_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
#define OPASS_ASSERT_CAPABILITY(x) OPASS_THREAD_ANNOTATION__(assert_capability(x))
#define OPASS_RETURN_CAPABILITY(x) OPASS_THREAD_ANNOTATION__(lock_returned(x))
#define OPASS_NO_THREAD_SAFETY_ANALYSIS OPASS_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace opass {

/// std::mutex with the capability attribute the analysis needs. Same cost,
/// same semantics — annotations are compile-time only.
class OPASS_CAPABILITY("mutex") Mutex {
 public:
  void lock() OPASS_ACQUIRE() { mu_.lock(); }
  void unlock() OPASS_RELEASE() { mu_.unlock(); }
  bool try_lock() OPASS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock over opass::Mutex, visible to the analysis as a scoped
/// capability (std::lock_guard on a Mutex would not be).
class OPASS_SCOPED_CAPABILITY ScopedLock {
 public:
  explicit ScopedLock(Mutex& mu) OPASS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~ScopedLock() OPASS_RELEASE() { mu_.unlock(); }

  ScopedLock(const ScopedLock&) = delete;
  ScopedLock& operator=(const ScopedLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace opass
