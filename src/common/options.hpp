// Minimal command-line flag parser for the examples and the CLI driver.
//
// Supports --key=value, --key value, and boolean --flag forms, with typed
// accessors, defaults, and an auto-generated usage string. Unknown flags are
// an error so typos fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace opass {

/// Declarative flag set.
class Options {
 public:
  /// Declare a flag with a default value and help text.
  Options& add(const std::string& name, const std::string& default_value,
               const std::string& help);

  /// Parse argv; returns false (and fills error()) on unknown flags or
  /// malformed input. Positional arguments are collected in positional().
  bool parse(int argc, const char* const* argv);

  /// Accessors; flags must have been declared.
  std::string str(const std::string& name) const;
  std::int64_t integer(const std::string& name) const;
  double real(const std::string& name) const;
  bool boolean(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& error() const { return error_; }

  /// Usage text listing every declared flag with default and help.
  std::string usage(const std::string& program) const;

 private:
  struct Flag {
    std::string value;
    std::string default_value;
    std::string help;
  };
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
  std::vector<std::string> positional_;
  std::string error_;
};

}  // namespace opass
