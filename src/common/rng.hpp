// Deterministic random number generation.
//
// Every stochastic decision in the library (replica placement, replica choice,
// unmatched-task fill, workload generation) draws from a seeded Rng so that
// experiments are reproducible bit-for-bit. The generator is xoshiro256**,
// seeded via splitmix64 as its authors recommend.
#pragma once

#include <cstdint>
#include <vector>

#include "common/require.hpp"

namespace opass {

/// xoshiro256** pseudo-random generator with helpers for the distributions the
/// library needs. Satisfies UniformRandomBitGenerator so it also plugs into
/// <random> and <algorithm> where convenient.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialize the state from a 64-bit seed (splitmix64 expansion).
  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() { return next(); }

  /// Uniform integer in [0, bound). Requires bound > 0. Uses rejection
  /// sampling (Lemire-style) to avoid modulo bias.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p) { return uniform01() < p; }

  /// Exponential variate with the given mean (> 0).
  double exponential(double mean);

  /// Pareto (heavy-tailed) variate with scale xm > 0 and shape alpha > 0.
  /// Used for irregular task compute times (gene comparison, Section IV-D).
  double pareto(double xm, double alpha);

  /// Fisher–Yates shuffle of a vector in place.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// k distinct indices drawn uniformly from [0, n). Requires k <= n.
  /// Order of the result is random. O(n) when k is a large fraction of n,
  /// O(k) expected otherwise.
  std::vector<std::uint32_t> sample_without_replacement(std::uint32_t n, std::uint32_t k);

  /// Split off an independent generator (for per-component streams).
  Rng split();

 private:
  std::uint64_t next();
  std::uint64_t s_[4]{};
};

}  // namespace opass
