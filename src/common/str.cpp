#include "common/str.hpp"

#include <cstdarg>
#include <cstdio>

namespace opass {

std::string strfmt(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace opass
