#include "common/thread_pool.hpp"

#include <algorithm>
#include <chrono>

namespace opass {

namespace {

double elapsed_ms(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - since)
      .count();
}

constexpr std::size_t kNoErrorChunk = static_cast<std::size_t>(-1);

}  // namespace

std::vector<std::size_t> weighted_chunk_bounds(const std::vector<std::uint64_t>& weights,
                                               std::size_t max_chunks) {
  const std::size_t count = weights.size();
  std::vector<std::size_t> bounds{0};
  if (count == 0) return bounds;
  const std::size_t chunks = std::min(std::max<std::size_t>(max_chunks, 1), count);
  std::uint64_t total = 0;
  for (std::uint64_t w : weights) total += w;
  if (chunks == 1) {
    bounds.push_back(count);
    return bounds;
  }
  if (total == 0) {
    // No weight signal: fall back to the equal-count split.
    const std::size_t per = count / chunks;
    const std::size_t extra = count % chunks;
    for (std::size_t k = 1; k < chunks; ++k)
      bounds.push_back(k * per + std::min(k, extra));
    bounds.push_back(count);
    return bounds;
  }
  // Cut after item i once the prefix crosses the k-th equal-weight target
  // (prefix * chunks >= total * k, in 128-bit to dodge overflow), but never
  // eat into the one-item-per-remaining-range reserve. One heavy item may
  // overshoot several targets; the skipped targets simply make the later
  // ranges lighter.
  std::uint64_t prefix = 0;
  std::size_t k = 1;
  for (std::size_t i = 0; i < count && k < chunks; ++i) {
    prefix += weights[i];
    const bool crossed = static_cast<unsigned __int128>(prefix) * chunks >=
                         static_cast<unsigned __int128>(total) * k;
    const bool reserve_ok = count - (i + 1) >= chunks - k;
    if (crossed && reserve_ok) {
      bounds.push_back(i + 1);
      ++k;
    }
  }
  // Any targets still unmet get the smallest suffix that keeps every
  // remaining range non-empty.
  while (k < chunks) {
    bounds.push_back(count - (chunks - k));
    ++k;
  }
  bounds.push_back(count);
  return bounds;
}

ThreadPool::ThreadPool(std::uint32_t threads)
    : thread_count_(std::max<std::uint32_t>(threads, 1)),
      lane_error_(thread_count_),
      lane_error_chunk_(thread_count_, kNoErrorChunk),
      lane_stats_(thread_count_) {
  workers_.reserve(thread_count_ - 1);
  for (std::uint32_t lane = 1; lane < thread_count_; ++lane)
    workers_.emplace_back([this, lane] { worker_main(lane); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::note_inline_batch(std::uint64_t chunks) {
  batches_ += 1;
  chunks_executed_ += chunks;
  lane_stats_[0].chunks += chunks;
}

void ThreadPool::run_lane_chunks(std::size_t lane, std::uint64_t batch) {
  // Static assignment: lane L runs chunks L, L+W, L+2W, ... in ascending
  // order, so the first failure a lane records is its lowest failing chunk.
  (void)batch;
  const auto started = std::chrono::steady_clock::now();
  auto& stats = lane_stats_[lane];
  for (std::size_t chunk = lane; chunk < batch_chunks_; chunk += thread_count_) {
    if (lane_error_[lane]) break;  // drain nothing further on this lane
    try {
      (*batch_fn_)(chunk);
    } catch (...) {
      lane_error_[lane] = std::current_exception();
      lane_error_chunk_[lane] = chunk;
      break;
    }
    stats.chunks += 1;
  }
  stats.busy_ms += elapsed_ms(started);
}

void ThreadPool::worker_main(std::size_t lane) {
  std::uint64_t seen_batch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return shutdown_ || batch_seq_ != seen_batch; });
      if (shutdown_) return;
      seen_batch = batch_seq_;
    }
    run_lane_chunks(lane, seen_batch);
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--lanes_pending_ == 0) done_cv_.notify_one();
    }
  }
}

void ThreadPool::parallel_chunks(std::size_t chunk_count,
                                 const std::function<void(std::size_t)>& chunk_fn) {
  if (chunk_count == 0) return;
  OPASS_CHECK(!in_batch_, "ThreadPool: nested parallel_chunks on the same pool");
  if (thread_count_ == 1 || chunk_count == 1) {
    // Degenerate batch: run inline on the caller, no synchronization.
    const auto started = std::chrono::steady_clock::now();
    for (std::size_t chunk = 0; chunk < chunk_count; ++chunk) chunk_fn(chunk);
    lane_stats_[0].busy_ms += elapsed_ms(started);
    note_inline_batch(chunk_count);
    return;
  }

  in_batch_ = true;
  std::fill(lane_error_.begin(), lane_error_.end(), nullptr);
  std::fill(lane_error_chunk_.begin(), lane_error_chunk_.end(), kNoErrorChunk);
  {
    std::unique_lock<std::mutex> lock(mu_);
    batch_fn_ = &chunk_fn;
    batch_chunks_ = chunk_count;
    lanes_pending_ = thread_count_ - 1;
    ++batch_seq_;
  }
  work_cv_.notify_all();

  run_lane_chunks(0, batch_seq_);

  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return lanes_pending_ == 0; });
    batch_fn_ = nullptr;
  }
  in_batch_ = false;
  batches_ += 1;
  chunks_executed_ += chunk_count;

  // Deterministic rethrow: the pending exception with the lowest chunk index
  // wins, no matter which lane finished first in real time.
  std::size_t best_lane = kNoErrorChunk;
  for (std::size_t lane = 0; lane < lane_error_.size(); ++lane) {
    if (!lane_error_[lane]) continue;
    if (best_lane == kNoErrorChunk || lane_error_chunk_[lane] < lane_error_chunk_[best_lane])
      best_lane = lane;
  }
  if (best_lane != kNoErrorChunk) std::rethrow_exception(lane_error_[best_lane]);
}

double ThreadPool::lane_busy_ms(std::uint32_t lane) const {
  OPASS_CHECK(lane < thread_count_, "ThreadPool: lane out of range");
  return lane_stats_[lane].busy_ms;
}

std::uint64_t ThreadPool::lane_chunks(std::uint32_t lane) const {
  OPASS_CHECK(lane < thread_count_, "ThreadPool: lane out of range");
  return lane_stats_[lane].chunks;
}

}  // namespace opass
