#include "common/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/require.hpp"

namespace opass {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  OPASS_REQUIRE(hi > lo, "histogram range must be non-empty");
  OPASS_REQUIRE(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double value) {
  auto bin = static_cast<std::ptrdiff_t>(std::floor((value - lo_) / width_));
  bin = std::clamp<std::ptrdiff_t>(bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

void Histogram::add_all(const std::vector<double>& values) {
  for (double v : values) add(v);
}

double Histogram::bin_lo(std::size_t bin) const {
  OPASS_REQUIRE(bin < counts_.size(), "bin out of range");
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin) + width_; }

std::string Histogram::render(std::size_t max_bar_width) const {
  std::size_t peak = 0;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    char range[64];
    std::snprintf(range, sizeof range, "[%7.2f, %7.2f)", bin_lo(b), bin_hi(b));
    os << range << "  ";
    const std::size_t bar =
        peak == 0 ? 0 : (counts_[b] * max_bar_width + peak - 1) / peak;
    for (std::size_t i = 0; i < bar; ++i) os << '#';
    os << ' ' << counts_[b] << '\n';
  }
  return os.str();
}

}  // namespace opass
