// ASCII Gantt rendering of per-lane activity intervals.
//
// Used to visualize which storage nodes are busy when: the baseline's
// hot-node convoys and idle tails are immediately visible in a terminal,
// next to Opass's uniform stripes. Generic over lanes, so it also renders
// per-process task timelines.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace opass {

/// Fixed-resolution interval renderer: lanes x time columns.
class Timeline {
 public:
  /// Time axis [start, end) mapped onto `columns` characters.
  Timeline(Seconds start, Seconds end, std::size_t lanes, std::size_t columns = 80);

  /// Paint [from, to) on `lane` with `glyph`. Intervals may overlap; later
  /// calls win. Sub-column intervals still paint one cell, so short events
  /// remain visible. Out-of-range times are clipped.
  void add(std::size_t lane, Seconds from, Seconds to, char glyph = '#');

  std::size_t lanes() const { return rows_.size(); }
  std::size_t columns() const { return columns_; }

  /// Fraction of cells painted on a lane (a crude utilization readout).
  double lane_fill(std::size_t lane) const;

  /// Render with per-lane labels and a time-axis footer:
  ///   node-03 |##LLLL   RR   |
  std::string render(const std::vector<std::string>& labels) const;

 private:
  Seconds start_, end_;
  std::size_t columns_;
  std::vector<std::string> rows_;
};

}  // namespace opass
