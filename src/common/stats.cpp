#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"

namespace opass {

double quantile_sorted(const std::vector<double>& sorted, double q) {
  OPASS_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q must be in [0,1]");
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

Summary summarize(const std::vector<double>& samples) {
  Summary s;
  if (samples.empty()) return s;
  s.count = samples.size();

  double sum = 0;
  for (double v : samples) sum += v;
  s.sum = sum;
  s.mean = sum / static_cast<double>(s.count);

  double var = 0;
  for (double v : samples) {
    const double d = v - s.mean;
    var += d * d;
  }
  s.stddev = std::sqrt(var / static_cast<double>(s.count));

  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  s.median = quantile_sorted(sorted, 0.5);
  s.p95 = quantile_sorted(sorted, 0.95);
  s.p99 = quantile_sorted(sorted, 0.99);
  return s;
}

double coefficient_of_variation(const std::vector<double>& samples) {
  const Summary s = summarize(samples);
  return s.mean != 0.0 ? s.stddev / s.mean : 0.0;
}

double jain_fairness(const std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  double sum = 0, sumsq = 0;
  for (double v : samples) {
    sum += v;
    sumsq += v * v;
  }
  if (sumsq == 0.0) return 1.0;  // all-zero: trivially balanced
  return (sum * sum) / (static_cast<double>(samples.size()) * sumsq);
}

}  // namespace opass
