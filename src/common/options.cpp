#include "common/options.hpp"

#include <cstdlib>
#include <sstream>

#include "common/require.hpp"

namespace opass {

Options& Options::add(const std::string& name, const std::string& default_value,
                      const std::string& help) {
  OPASS_REQUIRE(!name.empty() && name[0] != '-', "flag names are given without dashes");
  OPASS_REQUIRE(!flags_.count(name), "flag declared twice");
  flags_[name] = {default_value, default_value, help};
  order_.push_back(name);
  return *this;
}

bool Options::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    std::string key, value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      key = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      key = arg;
      auto it = flags_.find(key);
      if (it == flags_.end()) {
        error_ = "unknown flag --" + key;
        return false;
      }
      const bool is_bool =
          it->second.default_value == "true" || it->second.default_value == "false";
      if (is_bool) {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        error_ = "flag --" + key + " needs a value";
        return false;
      }
    }
    auto it = flags_.find(key);
    if (it == flags_.end()) {
      error_ = "unknown flag --" + key;
      return false;
    }
    it->second.value = value;
  }
  return true;
}

std::string Options::str(const std::string& name) const {
  const auto it = flags_.find(name);
  OPASS_REQUIRE(it != flags_.end(), "flag not declared");
  return it->second.value;
}

std::int64_t Options::integer(const std::string& name) const {
  const std::string v = str(name);
  char* end = nullptr;
  const long long parsed = std::strtoll(v.c_str(), &end, 10);
  OPASS_REQUIRE(end && *end == '\0' && !v.empty(), "flag --" + name + " is not an integer");
  return parsed;
}

double Options::real(const std::string& name) const {
  const std::string v = str(name);
  char* end = nullptr;
  const double parsed = std::strtod(v.c_str(), &end);
  OPASS_REQUIRE(end && *end == '\0' && !v.empty(), "flag --" + name + " is not a number");
  return parsed;
}

bool Options::boolean(const std::string& name) const {
  const std::string v = str(name);
  if (v == "true" || v == "1") return true;
  if (v == "false" || v == "0") return false;
  OPASS_REQUIRE(false, "flag --" + name + " is not a boolean");
  return false;  // unreachable
}

std::string Options::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& name : order_) {
    const auto& f = flags_.at(name);
    os << "  --" << name;
    for (std::size_t pad = name.size(); pad < 18; ++pad) os << ' ';
    os << f.help << " (default: " << f.default_value << ")\n";
  }
  return os.str();
}

}  // namespace opass
