// Fixed-size deterministic worker pool — the project's single home for raw
// threading primitives (enforced by the `no-raw-thread` lint rule: everything
// outside common/thread_pool and common/thread_annotations must express
// concurrency through this vocabulary).
//
// Determinism contract (DESIGN.md §12 "Concurrency model"): the pool is
// work-stealing-free. A batch of `chunk_count` chunks is assigned statically —
// chunk i runs on lane (i % thread_count), the calling thread serving lane 0 —
// so the partition of work onto lanes is a pure function of (chunk_count,
// thread_count), never of scheduling. Chunks may *execute* in any real-time
// order across lanes; everything order-sensitive (reductions, commits into
// shared structures) therefore happens either inside a chunk on
// chunk-disjoint state, or after the batch barrier in ascending chunk index
// order. parallel_transform_reduce() packages that rule: transforms run
// concurrently, the reduction folds the per-chunk results left-to-right in
// index order, so floating-point and container results are byte-identical to
// a serial left fold — and identical for every thread count.
//
// The shapes follow the classic thread-farm design (cf. the cs110
// thread-pool/farm exemplars and Odinfs' pinned delegation threads in
// PAPERS.md): long-lived workers parked on a condition variable, work pushed
// as batches, a barrier before results are consumed. Workers never outlive
// the pool; the destructor joins.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/require.hpp"

namespace opass {

/// Split [0, weights.size()) into at most `max_chunks` contiguous, non-empty
/// ranges of approximately equal total weight, returned as boundary indices
/// (bounds[k] .. bounds[k+1] is range k; bounds.front() == 0, bounds.back()
/// == weights.size()). Cut after item i once the weight prefix crosses the
/// next equal-share target, while always leaving at least one item per
/// remaining range. A pure function of (weights, max_chunks) — no pool or
/// scheduling state — so the partition is reproducible for any thread count
/// (the size-aware analogue of parallel_for_chunks' equal-count split; the
/// thread_pool weighted-split tests pin both purity and serial equality).
/// Zero total weight degenerates to the equal-count split.
std::vector<std::size_t> weighted_chunk_bounds(const std::vector<std::uint64_t>& weights,
                                               std::size_t max_chunks);

/// Fixed-size worker pool with deterministic (static, stealing-free) chunk
/// assignment. `threads` counts the calling thread: ThreadPool(4) spawns 3
/// workers and lane 0 runs on the caller, so a pool of 1 spawns nothing and
/// every batch degenerates to an inline serial loop.
class ThreadPool {
 public:
  explicit ThreadPool(std::uint32_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total lanes, including the calling thread. Always >= 1.
  std::uint32_t thread_count() const { return thread_count_; }

  /// Run `chunk_fn(chunk)` for every chunk in [0, chunk_count). Chunk i runs
  /// on lane i % thread_count(); the caller participates as lane 0 and the
  /// call returns only after every chunk finished (full barrier, so writes
  /// made by chunks happen-before the return). If chunks throw, the batch
  /// still drains the non-throwing lanes' chunks, and the pending exception
  /// with the lowest chunk index is rethrown — deterministic regardless of
  /// which lane hit its error first in real time.
  ///
  /// Must be called from the owning thread only, and never from inside a
  /// chunk of the same pool (no nesting — a lane waiting on its own pool
  /// would deadlock).
  void parallel_chunks(std::size_t chunk_count,
                       const std::function<void(std::size_t)>& chunk_fn);

  /// Split [0, count) into at most thread_count() contiguous ranges of at
  /// least `min_per_chunk` items (the last range takes the remainder) and
  /// run `fn(begin, end, chunk)` for each. The split is a pure function of
  /// (count, min_per_chunk, thread_count), so chunk boundaries — and
  /// therefore any per-chunk results — are reproducible.
  template <typename F>
  void parallel_for_chunks(std::size_t count, std::size_t min_per_chunk, F&& fn) {
    const std::size_t chunks = chunk_count_for(count, min_per_chunk);
    if (chunks <= 1) {
      if (count > 0) {
        fn(std::size_t{0}, count, std::size_t{0});
        note_inline_batch(1);
      }
      return;
    }
    const std::size_t per = count / chunks;
    const std::size_t extra = count % chunks;
    parallel_chunks(chunks, [&](std::size_t chunk) {
      // Ranges [begin, end): the first `extra` chunks take one extra item.
      const std::size_t begin = chunk * per + std::min(chunk, extra);
      const std::size_t end = begin + per + (chunk < extra ? 1 : 0);
      fn(begin, end, chunk);
    });
  }

  /// Size-aware variant of parallel_for_chunks: split [0, weights.size())
  /// into contiguous ranges of approximately equal total *weight* (not item
  /// count) and run `fn(begin, end, chunk)` for each. The chunk budget is
  /// min(thread_count, max(1, total_weight / max(min_weight_per_chunk, 1)))
  /// and the boundaries come from weighted_chunk_bounds — a pure function of
  /// the input shape, so per-chunk results are reproducible for every thread
  /// count. Use when item costs are skewed (one giant connected component
  /// among many singletons) and an equal-count split would leave all but one
  /// lane idle.
  template <typename F>
  void parallel_weighted_for_chunks(const std::vector<std::uint64_t>& weights,
                                    std::uint64_t min_weight_per_chunk, F&& fn) {
    const std::size_t count = weights.size();
    std::uint64_t total = 0;
    for (std::uint64_t w : weights) total += w;
    const std::uint64_t grain = std::max<std::uint64_t>(min_weight_per_chunk, 1);
    const std::size_t max_chunks = static_cast<std::size_t>(
        std::min<std::uint64_t>(thread_count_, std::max<std::uint64_t>(total / grain, 1)));
    const std::vector<std::size_t> bounds = weighted_chunk_bounds(weights, max_chunks);
    const std::size_t chunks = bounds.size() - 1;
    if (chunks <= 1) {
      if (count > 0) {
        fn(std::size_t{0}, count, std::size_t{0});
        note_inline_batch(1);
      }
      return;
    }
    parallel_chunks(chunks, [&](std::size_t chunk) {
      fn(bounds[chunk], bounds[chunk + 1], chunk);
    });
  }

  /// Map-reduce with *ordered* reduction: `transform(i)` runs concurrently
  /// (chunked as in parallel_for_chunks), but the fold is exactly
  ///   acc = reduce(std::move(acc), transform(0)); acc = reduce(..., 1); ...
  /// left-to-right in index order — byte-identical to the serial fold for
  /// any thread count, including non-associative double accumulation.
  template <typename T, typename Transform, typename Reduce>
  T parallel_transform_reduce(std::size_t count, T init, Transform&& transform,
                              Reduce&& reduce, std::size_t min_per_chunk = 1) {
    const std::size_t chunks = chunk_count_for(count, min_per_chunk);
    if (chunks <= 1) {
      T acc = std::move(init);
      for (std::size_t i = 0; i < count; ++i) acc = reduce(std::move(acc), transform(i));
      if (count > 0) note_inline_batch(1);
      return acc;
    }
    // Each chunk folds its own contiguous range left-to-right into a slot;
    // after the barrier the slots are folded in chunk order, which splices
    // the per-index sequence back together exactly.
    std::vector<std::vector<T>> partial(chunks);
    parallel_for_chunks(count, min_per_chunk, [&](std::size_t begin, std::size_t end,
                                                  std::size_t chunk) {
      auto& out = partial[chunk];
      out.reserve(end - begin);
      for (std::size_t i = begin; i < end; ++i) out.push_back(transform(i));
    });
    T acc = std::move(init);
    for (auto& chunk_results : partial)
      for (auto& r : chunk_results) acc = reduce(std::move(acc), std::move(r));
    return acc;
  }

  // --- observability (read when the pool is idle) ----------------------------

  /// Batches dispatched (every parallel_chunks / inline degenerate run).
  std::uint64_t batches() const { return batches_; }

  /// Chunks executed across all batches.
  std::uint64_t chunks_executed() const { return chunks_executed_; }

  /// Cumulative wall-clock milliseconds lane `lane` spent inside chunks.
  /// Lane 0 is the calling thread. Host timing — nondeterministic; obs
  /// collectors must tag it Determinism::kWallClock.
  double lane_busy_ms(std::uint32_t lane) const;

  /// Chunks executed by lane `lane`. Deterministic for a fixed thread count
  /// (static assignment), but *not* across thread counts.
  std::uint64_t lane_chunks(std::uint32_t lane) const;

 private:
  struct LaneStats {
    double busy_ms = 0;
    std::uint64_t chunks = 0;
  };

  std::size_t chunk_count_for(std::size_t count, std::size_t min_per_chunk) const {
    if (count == 0) return 0;
    const std::size_t cap = std::max<std::size_t>(min_per_chunk, 1);
    const std::size_t by_grain = (count + cap - 1) / cap;
    return std::min<std::size_t>(thread_count_, std::max<std::size_t>(by_grain, 1));
  }

  void note_inline_batch(std::uint64_t chunks);
  void run_lane_chunks(std::size_t lane, std::uint64_t batch);
  void worker_main(std::size_t lane);

  const std::uint32_t thread_count_;
  std::vector<std::thread> workers_;  // lanes 1..thread_count-1

  // Batch hand-off state. The mutex orders batch publication against worker
  // pickup and completion against the caller's return (the barrier).
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::uint64_t batch_seq_ = 0;          // bumped to publish a batch
  std::size_t batch_chunks_ = 0;         // chunk count of the current batch
  const std::function<void(std::size_t)>* batch_fn_ = nullptr;
  std::uint32_t lanes_pending_ = 0;      // workers still running the batch
  bool shutdown_ = false;
  bool in_batch_ = false;  // nesting guard (owner thread only)

  // Per-lane first-failure slots, merged after the barrier: rethrow the
  // lowest chunk index. Sized once; written only by the owning lane during a
  // batch, read by the caller after the barrier.
  std::vector<std::exception_ptr> lane_error_;
  std::vector<std::size_t> lane_error_chunk_;

  std::vector<LaneStats> lane_stats_;
  std::uint64_t batches_ = 0;
  std::uint64_t chunks_executed_ = 0;
};

}  // namespace opass
