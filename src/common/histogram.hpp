// Fixed-width histogram for figure-style output (e.g. the I/O-time histogram
// in Fig. 1(b) and per-op traces binned for display).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace opass {

/// Fixed-width bin histogram over [lo, hi). Values outside the range are
/// clamped into the first/last bin so no sample is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value);
  void add_all(const std::vector<double>& values);

  std::size_t bin_count() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;

  /// ASCII rendering: one line per bin with a proportional bar, e.g.
  ///   [ 0.0,  1.0)  ################ 412
  std::string render(std::size_t max_bar_width = 50) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace opass
