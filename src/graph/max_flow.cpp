#include "graph/max_flow.hpp"

#include <algorithm>
#include <limits>

namespace opass::graph {

namespace {

constexpr Cap kInf = std::numeric_limits<Cap>::max();

void check_terminals(const FlowNetwork& net, NodeIdx s, NodeIdx t) {
  OPASS_REQUIRE(s < net.node_count() && t < net.node_count(), "s/t out of range");
  OPASS_REQUIRE(s != t, "source and sink must differ");
}

Cap run_edmonds_karp(FlowNetwork& net, NodeIdx s, NodeIdx t, FlowWorkspace& ws) {
  const NodeIdx n = net.node_count();
  Cap total = 0;
  for (;;) {
    // BFS for the shortest augmenting path in the residual graph. The level
    // array doubles as the visited marker; the queue vector is consumed by a
    // moving head index so it never reallocates once warm.
    ws.level.assign(n, -1);
    ws.parent.assign(n, 0);
    ws.queue.clear();
    ws.queue.push_back(s);
    ws.level[s] = 0;
    bool reached = false;
    for (std::size_t head = 0; head < ws.queue.size() && !reached; ++head) {
      const NodeIdx u = ws.queue[head];
      for (EdgeIdx h : net.residual_adjacency(u)) {
        if (net.residual_capacity(h) <= 0) continue;
        const NodeIdx v = net.residual_to(h);
        if (ws.level[v] >= 0) continue;
        ws.level[v] = ws.level[u] + 1;
        ws.parent[v] = h;
        if (v == t) {
          reached = true;
          break;
        }
        ws.queue.push_back(v);
      }
    }
    if (!reached) break;

    // Bottleneck along the path, then augment. This is the paper's
    // "cancellation policy": pushing along a path that uses a reverse edge
    // un-assigns a task from one process and re-assigns it to another.
    Cap bottleneck = kInf;
    for (NodeIdx v = t; v != s;) {
      const EdgeIdx h = ws.parent[v];
      bottleneck = std::min(bottleneck, net.residual_capacity(h));
      v = net.residual_to(h ^ 1);
    }
    for (NodeIdx v = t; v != s;) {
      const EdgeIdx h = ws.parent[v];
      net.push(h, bottleneck);
      v = net.residual_to(h ^ 1);
    }
    total += bottleneck;
  }
  return total;
}

/// Dinic level graph: BFS from s over positive-residual edges. Returns true
/// iff t is reachable.
bool build_levels(FlowNetwork& net, NodeIdx s, NodeIdx t, FlowWorkspace& ws) {
  ws.level.assign(net.node_count(), -1);
  ws.queue.clear();
  ws.queue.push_back(s);
  ws.level[s] = 0;
  for (std::size_t head = 0; head < ws.queue.size(); ++head) {
    const NodeIdx u = ws.queue[head];
    for (EdgeIdx h : net.residual_adjacency(u)) {
      if (net.residual_capacity(h) <= 0) continue;
      const NodeIdx v = net.residual_to(h);
      if (ws.level[v] >= 0) continue;
      ws.level[v] = ws.level[u] + 1;
      ws.queue.push_back(v);
    }
  }
  return ws.level[t] >= 0;
}

/// One blocking flow over the current level graph, as an iterative DFS with
/// the current-arc optimization: arc[u] persists across augmenting paths so
/// every half-edge is inspected at most once per phase, and the explicit
/// path stack keeps deep networks off the call stack.
Cap blocking_flow(FlowNetwork& net, NodeIdx s, NodeIdx t, FlowWorkspace& ws) {
  Cap total = 0;
  ws.arc.assign(net.node_count(), 0);
  ws.path.clear();
  NodeIdx u = s;
  for (;;) {
    if (u == t) {
      Cap bottleneck = kInf;
      for (EdgeIdx h : ws.path) bottleneck = std::min(bottleneck, net.residual_capacity(h));
      for (EdgeIdx h : ws.path) net.push(h, bottleneck);
      total += bottleneck;
      // Retreat to the tail of the first saturated edge; the saturated arc
      // is skipped by the advance scan below on the next iteration.
      std::size_t i = 0;
      while (i < ws.path.size() && net.residual_capacity(ws.path[i]) > 0) ++i;
      OPASS_CHECK(i < ws.path.size(), "augmenting path saturated no edge");
      u = net.residual_to(ws.path[i] ^ 1);
      ws.path.resize(i);
      continue;
    }
    const auto adj = net.residual_adjacency(u);
    bool advanced = false;
    while (ws.arc[u] < adj.size()) {
      const EdgeIdx h = adj[ws.arc[u]];
      const NodeIdx v = net.residual_to(h);
      if (net.residual_capacity(h) > 0 && ws.level[v] == ws.level[u] + 1) {
        ws.path.push_back(h);
        u = v;
        advanced = true;
        break;
      }
      ++ws.arc[u];
    }
    if (advanced) continue;
    if (u == s) break;  // blocking flow complete
    ws.level[u] = -1;   // dead end: prune u from this phase
    const EdgeIdx back = ws.path.back();
    ws.path.pop_back();
    u = net.residual_to(back ^ 1);
    ++ws.arc[u];  // the arc into the dead end is spent
  }
  return total;
}

Cap run_dinic(FlowNetwork& net, NodeIdx s, NodeIdx t, FlowWorkspace& ws) {
  Cap total = 0;
  while (build_levels(net, s, t, ws)) total += blocking_flow(net, s, t, ws);
  return total;
}

}  // namespace

const char* max_flow_algorithm_name(MaxFlowAlgorithm algo) {
  return algo == MaxFlowAlgorithm::kEdmondsKarp ? "edmonds-karp" : "dinic";
}

MaxFlowAlgorithm parse_max_flow_algorithm(const std::string& name) {
  if (name == "edmonds-karp") return MaxFlowAlgorithm::kEdmondsKarp;
  if (name == "dinic") return MaxFlowAlgorithm::kDinic;
  OPASS_REQUIRE(false, "unknown max-flow algorithm name (dinic | edmonds-karp)");
}

Cap edmonds_karp(FlowNetwork& net, NodeIdx s, NodeIdx t) {
  check_terminals(net, s, t);
  FlowWorkspace ws;
  return run_edmonds_karp(net, s, t, ws);
}

Cap dinic(FlowNetwork& net, NodeIdx s, NodeIdx t) {
  check_terminals(net, s, t);
  FlowWorkspace ws;
  return run_dinic(net, s, t, ws);
}

Cap max_flow(FlowNetwork& net, NodeIdx s, NodeIdx t, MaxFlowAlgorithm algo) {
  check_terminals(net, s, t);
  FlowWorkspace ws;
  switch (algo) {
    case MaxFlowAlgorithm::kEdmondsKarp:
      return run_edmonds_karp(net, s, t, ws);
    case MaxFlowAlgorithm::kDinic:
      return run_dinic(net, s, t, ws);
  }
  OPASS_CHECK(false, "unknown max-flow algorithm");
}

Cap max_flow(FlowWorkspace& workspace, NodeIdx s, NodeIdx t, MaxFlowAlgorithm algo) {
  check_terminals(workspace.network, s, t);
  switch (algo) {
    case MaxFlowAlgorithm::kEdmondsKarp:
      return run_edmonds_karp(workspace.network, s, t, workspace);
    case MaxFlowAlgorithm::kDinic:
      return run_dinic(workspace.network, s, t, workspace);
  }
  OPASS_CHECK(false, "unknown max-flow algorithm");
}

}  // namespace opass::graph
