#include "graph/max_flow.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <vector>

namespace opass::graph {

namespace {
constexpr Cap kInf = std::numeric_limits<Cap>::max();
}

Cap edmonds_karp(FlowNetwork& net, NodeIdx s, NodeIdx t) {
  OPASS_REQUIRE(s < net.node_count() && t < net.node_count(), "s/t out of range");
  OPASS_REQUIRE(s != t, "source and sink must differ");
  Cap total = 0;
  std::vector<EdgeIdx> parent_edge(net.node_count());
  std::vector<char> visited(net.node_count());
  for (;;) {
    // BFS for the shortest augmenting path in the residual graph.
    std::fill(visited.begin(), visited.end(), 0);
    std::deque<NodeIdx> queue{s};
    visited[s] = 1;
    bool reached = false;
    while (!queue.empty() && !reached) {
      const NodeIdx u = queue.front();
      queue.pop_front();
      for (EdgeIdx h : net.residual_adjacency(u)) {
        if (net.residual_capacity(h) <= 0) continue;
        const NodeIdx v = net.residual_to(h);
        if (visited[v]) continue;
        visited[v] = 1;
        parent_edge[v] = h;
        if (v == t) {
          reached = true;
          break;
        }
        queue.push_back(v);
      }
    }
    if (!reached) break;

    // Bottleneck along the path, then augment. This is the paper's
    // "cancellation policy": pushing along a path that uses a reverse edge
    // un-assigns a task from one process and re-assigns it to another.
    Cap bottleneck = kInf;
    for (NodeIdx v = t; v != s;) {
      const EdgeIdx h = parent_edge[v];
      bottleneck = std::min(bottleneck, net.residual_capacity(h));
      v = net.residual_to(h ^ 1);
    }
    for (NodeIdx v = t; v != s;) {
      const EdgeIdx h = parent_edge[v];
      net.push(h, bottleneck);
      v = net.residual_to(h ^ 1);
    }
    total += bottleneck;
  }
  return total;
}

namespace {

/// Dinic state: level graph via BFS, then DFS blocking flow with iterator
/// memoization (the "current arc" optimization).
class DinicSolver {
 public:
  DinicSolver(FlowNetwork& net, NodeIdx s, NodeIdx t)
      : net_(net), s_(s), t_(t), level_(net.node_count()), it_(net.node_count()) {}

  Cap run() {
    Cap total = 0;
    while (build_levels()) {
      std::fill(it_.begin(), it_.end(), 0);
      for (;;) {
        const Cap pushed = augment(s_, kInf);
        if (pushed == 0) break;
        total += pushed;
      }
    }
    return total;
  }

 private:
  bool build_levels() {
    std::fill(level_.begin(), level_.end(), -1);
    std::deque<NodeIdx> queue{s_};
    level_[s_] = 0;
    while (!queue.empty()) {
      const NodeIdx u = queue.front();
      queue.pop_front();
      for (EdgeIdx h : net_.residual_adjacency(u)) {
        if (net_.residual_capacity(h) <= 0) continue;
        const NodeIdx v = net_.residual_to(h);
        if (level_[v] >= 0) continue;
        level_[v] = level_[u] + 1;
        queue.push_back(v);
      }
    }
    return level_[t_] >= 0;
  }

  Cap augment(NodeIdx u, Cap limit) {
    if (u == t_) return limit;
    const auto& adj = net_.residual_adjacency(u);
    for (std::size_t& i = it_[u]; i < adj.size(); ++i) {
      const EdgeIdx h = adj[i];
      const NodeIdx v = net_.residual_to(h);
      if (net_.residual_capacity(h) <= 0 || level_[v] != level_[u] + 1) continue;
      const Cap pushed = augment(v, std::min(limit, net_.residual_capacity(h)));
      if (pushed > 0) {
        net_.push(h, pushed);
        return pushed;
      }
    }
    return 0;
  }

  FlowNetwork& net_;
  NodeIdx s_, t_;
  std::vector<int> level_;
  std::vector<std::size_t> it_;
};

}  // namespace

Cap dinic(FlowNetwork& net, NodeIdx s, NodeIdx t) {
  OPASS_REQUIRE(s < net.node_count() && t < net.node_count(), "s/t out of range");
  OPASS_REQUIRE(s != t, "source and sink must differ");
  return DinicSolver(net, s, t).run();
}

Cap max_flow(FlowNetwork& net, NodeIdx s, NodeIdx t, MaxFlowAlgorithm algo) {
  switch (algo) {
    case MaxFlowAlgorithm::kEdmondsKarp:
      return edmonds_karp(net, s, t);
    case MaxFlowAlgorithm::kDinic:
      return dinic(net, s, t);
  }
  OPASS_CHECK(false, "unknown max-flow algorithm");
}

}  // namespace opass::graph
