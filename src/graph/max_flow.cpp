#include "graph/max_flow.hpp"

#include <algorithm>
#include <limits>

#include "common/thread_pool.hpp"

namespace opass::graph {

namespace {

constexpr Cap kInf = std::numeric_limits<Cap>::max();

void check_terminals(const FlowNetwork& net, NodeIdx s, NodeIdx t) {
  OPASS_REQUIRE(s < net.node_count() && t < net.node_count(), "s/t out of range");
  OPASS_REQUIRE(s != t, "source and sink must differ");
}

Cap run_edmonds_karp(FlowNetwork& net, NodeIdx s, NodeIdx t, FlowWorkspace& ws) {
  const NodeIdx n = net.node_count();
  Cap total = 0;
  for (;;) {
    // BFS for the shortest augmenting path in the residual graph. The level
    // array doubles as the visited marker; the queue vector is consumed by a
    // moving head index so it never reallocates once warm.
    ws.level.assign(n, -1);
    ws.parent.assign(n, 0);
    ws.queue.clear();
    ws.queue.push_back(s);
    ws.level[s] = 0;
    bool reached = false;
    for (std::size_t head = 0; head < ws.queue.size() && !reached; ++head) {
      const NodeIdx u = ws.queue[head];
      for (EdgeIdx h : net.residual_adjacency(u)) {
        if (net.residual_capacity(h) <= 0) continue;
        const NodeIdx v = net.residual_to(h);
        if (ws.level[v] >= 0) continue;
        ws.level[v] = ws.level[u] + 1;
        ws.parent[v] = h;
        if (v == t) {
          reached = true;
          break;
        }
        ws.queue.push_back(v);
      }
    }
    if (!reached) break;

    // Bottleneck along the path, then augment. This is the paper's
    // "cancellation policy": pushing along a path that uses a reverse edge
    // un-assigns a task from one process and re-assigns it to another.
    Cap bottleneck = kInf;
    for (NodeIdx v = t; v != s;) {
      const EdgeIdx h = ws.parent[v];
      bottleneck = std::min(bottleneck, net.residual_capacity(h));
      v = net.residual_to(h ^ 1);
    }
    for (NodeIdx v = t; v != s;) {
      const EdgeIdx h = ws.parent[v];
      net.push(h, bottleneck);
      v = net.residual_to(h ^ 1);
    }
    total += bottleneck;
  }
  return total;
}

/// Dinic level graph: BFS from s over positive-residual edges. Returns true
/// iff t is reachable.
bool build_levels(FlowNetwork& net, NodeIdx s, NodeIdx t, FlowWorkspace& ws) {
  ws.level.assign(net.node_count(), -1);
  ws.queue.clear();
  ws.queue.push_back(s);
  ws.level[s] = 0;
  for (std::size_t head = 0; head < ws.queue.size(); ++head) {
    const NodeIdx u = ws.queue[head];
    for (EdgeIdx h : net.residual_adjacency(u)) {
      if (net.residual_capacity(h) <= 0) continue;
      const NodeIdx v = net.residual_to(h);
      if (ws.level[v] >= 0) continue;
      ws.level[v] = ws.level[u] + 1;
      ws.queue.push_back(v);
    }
  }
  return ws.level[t] >= 0;
}

/// One blocking flow over the current level graph, as an iterative DFS with
/// the current-arc optimization: arc[u] persists across augmenting paths so
/// every half-edge is inspected at most once per phase, and the explicit
/// path stack keeps deep networks off the call stack.
Cap blocking_flow(FlowNetwork& net, NodeIdx s, NodeIdx t, FlowWorkspace& ws) {
  Cap total = 0;
  ws.arc.assign(net.node_count(), 0);
  ws.path.clear();
  NodeIdx u = s;
  for (;;) {
    if (u == t) {
      Cap bottleneck = kInf;
      for (EdgeIdx h : ws.path) bottleneck = std::min(bottleneck, net.residual_capacity(h));
      for (EdgeIdx h : ws.path) net.push(h, bottleneck);
      total += bottleneck;
      // Retreat to the tail of the first saturated edge; the saturated arc
      // is skipped by the advance scan below on the next iteration.
      std::size_t i = 0;
      while (i < ws.path.size() && net.residual_capacity(ws.path[i]) > 0) ++i;
      OPASS_CHECK(i < ws.path.size(), "augmenting path saturated no edge");
      u = net.residual_to(ws.path[i] ^ 1);
      ws.path.resize(i);
      continue;
    }
    const auto adj = net.residual_adjacency(u);
    bool advanced = false;
    while (ws.arc[u] < adj.size()) {
      const EdgeIdx h = adj[ws.arc[u]];
      const NodeIdx v = net.residual_to(h);
      if (net.residual_capacity(h) > 0 && ws.level[v] == ws.level[u] + 1) {
        ws.path.push_back(h);
        u = v;
        advanced = true;
        break;
      }
      ++ws.arc[u];
    }
    if (advanced) continue;
    if (u == s) break;  // blocking flow complete
    ws.level[u] = -1;   // dead end: prune u from this phase
    const EdgeIdx back = ws.path.back();
    ws.path.pop_back();
    u = net.residual_to(back ^ 1);
    ++ws.arc[u];  // the arc into the dead end is spent
  }
  return total;
}

Cap run_dinic(FlowNetwork& net, NodeIdx s, NodeIdx t, FlowWorkspace& ws) {
  Cap total = 0;
  while (build_levels(net, s, t, ws)) total += blocking_flow(net, s, t, ws);
  return total;
}

constexpr std::uint32_t kNoComp = 0xffffffffu;

/// Label the connected components of the network minus {s, t}: nodes joined
/// by an edge not incident to s or t share a label. On the Fig. 5 network
/// this groups processes with the tasks (source files) they can reach —
/// exactly the independent subproblems the assignment decomposes into.
/// Labels are assigned by ascending node id (deterministic). Returns the
/// component count.
std::uint32_t label_components(const FlowNetwork& net, NodeIdx s, NodeIdx t,
                               FlowWorkspace& ws) {
  const NodeIdx n = net.node_count();
  ws.comp.assign(n, kNoComp);
  ws.queue.clear();
  std::uint32_t comp_count = 0;
  for (NodeIdx start = 0; start < n; ++start) {
    if (start == s || start == t || ws.comp[start] != kNoComp) continue;
    const std::uint32_t c = comp_count++;
    ws.comp[start] = c;
    ws.queue.clear();
    ws.queue.push_back(start);
    for (std::size_t head = 0; head < ws.queue.size(); ++head) {
      const NodeIdx u = ws.queue[head];
      for (EdgeIdx h : net.residual_adjacency(u)) {
        const NodeIdx v = net.residual_to(h);
        if (v == s || v == t || ws.comp[v] != kNoComp) continue;
        ws.comp[v] = c;
        ws.queue.push_back(v);
      }
    }
  }
  return comp_count;
}

/// One blocking flow confined to component `c`: identical to blocking_flow()
/// except that s's adjacency is replaced by the component's own slice of
/// s-arcs (ws.comp_s_arcs[comp_s_cursor[c] .. comp_s_offsets[c+1]), in s's
/// adjacency order) so concurrent components never share the arc[s] cursor.
/// Every other node the DFS touches belongs to `c` (the DFS stops at t and
/// never advances out of s except through the component's own arcs), so all
/// level/arc/capacity writes are component-disjoint.
Cap blocking_flow_component(FlowNetwork& net, NodeIdx s, NodeIdx t, FlowWorkspace& ws,
                            std::uint32_t c, std::vector<EdgeIdx>& path) {
  Cap total = 0;
  const std::uint32_t s_end = ws.comp_s_offsets[c + 1];
  std::uint32_t& s_cursor = ws.comp_s_cursor[c];
  path.clear();
  NodeIdx u = s;
  for (;;) {
    if (u == t) {
      Cap bottleneck = kInf;
      for (EdgeIdx h : path) bottleneck = std::min(bottleneck, net.residual_capacity(h));
      for (EdgeIdx h : path) net.push(h, bottleneck);
      total += bottleneck;
      std::size_t i = 0;
      while (i < path.size() && net.residual_capacity(path[i]) > 0) ++i;
      OPASS_CHECK(i < path.size(), "augmenting path saturated no edge");
      u = net.residual_to(path[i] ^ 1);
      path.resize(i);
      continue;
    }
    bool advanced = false;
    if (u == s) {
      while (s_cursor < s_end) {
        const EdgeIdx h = ws.comp_s_arcs[s_cursor];
        const NodeIdx v = net.residual_to(h);
        if (net.residual_capacity(h) > 0 && ws.level[v] == ws.level[s] + 1) {
          path.push_back(h);
          u = v;
          advanced = true;
          break;
        }
        ++s_cursor;
      }
      if (!advanced) break;  // this component's blocking flow is complete
      continue;
    }
    const auto adj = net.residual_adjacency(u);
    while (ws.arc[u] < adj.size()) {
      const EdgeIdx h = adj[ws.arc[u]];
      const NodeIdx v = net.residual_to(h);
      if (net.residual_capacity(h) > 0 && ws.level[v] == ws.level[u] + 1) {
        path.push_back(h);
        u = v;
        advanced = true;
        break;
      }
      ++ws.arc[u];
    }
    if (advanced) continue;
    ws.level[u] = -1;  // dead end: prune u from this phase
    const EdgeIdx back = path.back();
    path.pop_back();
    u = net.residual_to(back ^ 1);
    if (u == s) {
      ++s_cursor;  // the component's arc into the dead end is spent
    } else {
      ++ws.arc[u];
    }
  }
  return total;
}

/// Dinic with per-component parallel blocking flows. Byte-exactness against
/// run_dinic(), phase by phase:
///
///  1. The level BFS is the serial one, over the whole residual graph.
///  2. Within a phase, the serial DFS's behavior restricted to one component
///     depends only on that component's state: its slice of arc[s] (visited
///     in s-adjacency order, each arc at most once per phase), its own
///     nodes' levels/arcs, and its own edges' residuals. t is shared but the
///     DFS never advances out of t, never prunes it, and never reads arc[t];
///     reverse edges into s are level-inadmissible (level[s] = 0). So
///     running components in any order — or concurrently — produces the
///     same per-edge flows as the serial interleaving.
///  3. Therefore the residual graph after each phase is identical to the
///     serial one, the next BFS sees the same graph (induction), and the
///     phase count and final flows match exactly. Flow values are integers
///     (Cap), so summing per-component totals is order-insensitive.
Cap run_dinic_parallel(FlowNetwork& net, NodeIdx s, NodeIdx t, FlowWorkspace& ws) {
  const std::uint32_t comp_count = label_components(net, s, t, ws);
  if (comp_count <= 1) return run_dinic(net, s, t, ws);

  // Any direct s->t half-edge belongs to no component; the decomposition
  // cannot carry it, so fall back (no planner network has one).
  for (EdgeIdx h : net.residual_adjacency(s))
    if (net.residual_to(h) == t) return run_dinic(net, s, t, ws);

  // Bucket s's half-edges by head component, preserving adjacency order
  // (counting sort), so each component sees exactly its slice of arc[s].
  const auto s_adj = net.residual_adjacency(s);
  ws.comp_s_offsets.assign(comp_count + 1, 0);
  for (EdgeIdx h : s_adj) ++ws.comp_s_offsets[ws.comp[net.residual_to(h)] + 1];
  for (std::uint32_t c = 0; c < comp_count; ++c)
    ws.comp_s_offsets[c + 1] += ws.comp_s_offsets[c];
  ws.comp_s_arcs.resize(s_adj.size());
  ws.comp_s_cursor.assign(ws.comp_s_offsets.begin(), ws.comp_s_offsets.end() - 1);
  for (EdgeIdx h : s_adj) ws.comp_s_arcs[ws.comp_s_cursor[ws.comp[net.residual_to(h)]]++] = h;

  ThreadPool& pool = *ws.pool;
  if (ws.comp_paths.size() < pool.thread_count()) ws.comp_paths.resize(pool.thread_count());
  ws.comp_total.resize(comp_count);

  Cap total = 0;
  while (build_levels(net, s, t, ws)) {
    ws.arc.assign(net.node_count(), 0);
    ws.comp_s_cursor.assign(ws.comp_s_offsets.begin(), ws.comp_s_offsets.end() - 1);
    pool.parallel_for_chunks(
        comp_count, /*min_per_chunk=*/1,
        [&](std::size_t begin, std::size_t end, std::size_t chunk) {
          std::vector<EdgeIdx>& path = ws.comp_paths[chunk];
          for (std::size_t c = begin; c < end; ++c)
            ws.comp_total[c] = blocking_flow_component(
                net, s, t, ws, static_cast<std::uint32_t>(c), path);
        });
    for (std::uint32_t c = 0; c < comp_count; ++c) total += ws.comp_total[c];
  }
  return total;
}

Cap run_dinic_ws(FlowNetwork& net, NodeIdx s, NodeIdx t, FlowWorkspace& ws) {
  if (ws.pool != nullptr && ws.pool->thread_count() > 1)
    return run_dinic_parallel(net, s, t, ws);
  return run_dinic(net, s, t, ws);
}

}  // namespace

const char* max_flow_algorithm_name(MaxFlowAlgorithm algo) {
  return algo == MaxFlowAlgorithm::kEdmondsKarp ? "edmonds-karp" : "dinic";
}

MaxFlowAlgorithm parse_max_flow_algorithm(const std::string& name) {
  if (name == "edmonds-karp") return MaxFlowAlgorithm::kEdmondsKarp;
  if (name == "dinic") return MaxFlowAlgorithm::kDinic;
  OPASS_REQUIRE(false, "unknown max-flow algorithm name (dinic | edmonds-karp)");
}

Cap edmonds_karp(FlowNetwork& net, NodeIdx s, NodeIdx t) {
  check_terminals(net, s, t);
  FlowWorkspace ws;
  return run_edmonds_karp(net, s, t, ws);
}

Cap dinic(FlowNetwork& net, NodeIdx s, NodeIdx t) {
  check_terminals(net, s, t);
  FlowWorkspace ws;
  return run_dinic(net, s, t, ws);
}

Cap max_flow(FlowNetwork& net, NodeIdx s, NodeIdx t, MaxFlowAlgorithm algo) {
  check_terminals(net, s, t);
  FlowWorkspace ws;
  switch (algo) {
    case MaxFlowAlgorithm::kEdmondsKarp:
      return run_edmonds_karp(net, s, t, ws);
    case MaxFlowAlgorithm::kDinic:
      return run_dinic(net, s, t, ws);
  }
  OPASS_CHECK(false, "unknown max-flow algorithm");
}

Cap max_flow(FlowWorkspace& workspace, NodeIdx s, NodeIdx t, MaxFlowAlgorithm algo) {
  check_terminals(workspace.network, s, t);
  switch (algo) {
    case MaxFlowAlgorithm::kEdmondsKarp:
      return run_edmonds_karp(workspace.network, s, t, workspace);
    case MaxFlowAlgorithm::kDinic:
      return run_dinic_ws(workspace.network, s, t, workspace);
  }
  OPASS_CHECK(false, "unknown max-flow algorithm");
}

}  // namespace opass::graph
