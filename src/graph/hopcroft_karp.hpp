// Hopcroft–Karp maximum-cardinality bipartite matching.
//
// Used as an independent oracle in tests (a full matching exists iff the flow
// formulation with unit quotas saturates) and for the "full matching"
// detectability ablation: the paper defines a *full matching* as one where all
// needed data is assigned to co-located processes.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/bipartite_graph.hpp"

namespace opass::graph {

/// Result of a maximum-cardinality matching run.
struct MatchingResult {
  /// match_left[l] = matched right vertex, or kUnmatched.
  std::vector<std::uint32_t> match_left;
  /// match_right[r] = matched left vertex, or kUnmatched.
  std::vector<std::uint32_t> match_right;
  std::uint32_t size = 0;

  static constexpr std::uint32_t kUnmatched = UINT32_MAX;
};

/// Compute a maximum-cardinality matching (weights ignored) in
/// O(E * sqrt(V)).
MatchingResult hopcroft_karp(const BipartiteGraph& g);

}  // namespace opass::graph
