// Residual flow network used by the Opass single-data assigner (the network of
// paper Fig. 5) and by the max-flow algorithms in max_flow.hpp.
//
// Edges are stored as paired forward/reverse entries in a flat arena; the
// reverse edge of edge e is e ^ 1. Capacities are 64-bit so byte-granularity
// networks (capacities up to the dataset size) are exact.
#pragma once

#include <cstdint>
#include <vector>

#include "common/require.hpp"

namespace opass::graph {

using NodeIdx = std::uint32_t;
using EdgeIdx = std::uint32_t;
using Cap = std::int64_t;

/// Directed flow network with residual edges.
class FlowNetwork {
 public:
  explicit FlowNetwork(NodeIdx node_count = 0) : adj_(node_count) {}

  /// Add `count` fresh nodes, returning the index of the first.
  NodeIdx add_nodes(NodeIdx count = 1);

  NodeIdx node_count() const { return static_cast<NodeIdx>(adj_.size()); }

  /// Number of *forward* edges added via add_edge.
  std::size_t edge_count() const { return to_.size() / 2; }

  /// Add a directed edge u -> v with the given capacity (>= 0).
  /// Returns the forward edge index (use with flow()/capacity()).
  EdgeIdx add_edge(NodeIdx u, NodeIdx v, Cap capacity);

  /// Flow currently routed through forward edge e (set by a max-flow run).
  Cap flow(EdgeIdx e) const;

  /// Original capacity of forward edge e.
  Cap capacity(EdgeIdx e) const;

  NodeIdx edge_from(EdgeIdx e) const { return from_[e * 2]; }
  NodeIdx edge_to(EdgeIdx e) const { return to_[e * 2]; }

  /// Reset all flows to zero (capacities preserved).
  void reset_flow();

  // --- residual-graph accessors used by the algorithms ---
  const std::vector<EdgeIdx>& residual_adjacency(NodeIdx u) const { return adj_[u]; }
  NodeIdx residual_to(EdgeIdx half_edge) const { return to_[half_edge]; }
  Cap residual_capacity(EdgeIdx half_edge) const { return cap_[half_edge]; }
  void push(EdgeIdx half_edge, Cap amount);

 private:
  // Half-edge arrays: entry 2e is the forward direction of logical edge e,
  // entry 2e+1 the residual reverse.
  std::vector<NodeIdx> to_;
  std::vector<NodeIdx> from_;
  std::vector<Cap> cap_;        // residual capacities
  std::vector<Cap> orig_cap_;   // original capacities (forward entries only meaningful)
  std::vector<std::vector<EdgeIdx>> adj_;
};

}  // namespace opass::graph
