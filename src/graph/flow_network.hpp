// Residual flow network used by the Opass single-data assigner (the network of
// paper Fig. 5) and by the max-flow algorithms in max_flow.hpp.
//
// Storage is a compact CSR (compressed sparse row) arena: edges are paired
// forward/reverse half-edge entries in flat arrays (the reverse of half-edge
// h is h ^ 1), and adjacency is a counting-sorted index over half-edge ids,
// built lazily on first residual query and rebuilt only after new edges are
// added. There is no per-node std::vector, so a network is four flat arrays
// plus the CSR index — cache-friendly to traverse and cheap to reuse:
// clear() resets the network to empty while keeping every arena's capacity,
// so repeated planning runs (dynamic/incremental replanning) allocate
// nothing in steady state. Capacities are 64-bit so byte-granularity
// networks (capacities up to the dataset size) are exact.
#pragma once

#include <cstdint>
#include <vector>

#include "common/require.hpp"

namespace opass::graph {

using NodeIdx = std::uint32_t;
using EdgeIdx = std::uint32_t;
using Cap = std::int64_t;

/// Directed flow network with residual edges.
class FlowNetwork {
 public:
  explicit FlowNetwork(NodeIdx node_count = 0) : nodes_(node_count) {}

  /// Reset to an empty `node_count`-node network, keeping the arenas'
  /// capacity so a reused network reaches zero steady-state allocation.
  void clear(NodeIdx node_count = 0);

  /// Add `count` fresh nodes, returning the index of the first.
  NodeIdx add_nodes(NodeIdx count = 1);

  NodeIdx node_count() const { return nodes_; }

  /// Number of *forward* edges added via add_edge.
  std::size_t edge_count() const { return to_.size() / 2; }

  /// Add a directed edge u -> v with the given capacity (>= 0).
  /// Returns the forward edge index (use with flow()/capacity()).
  EdgeIdx add_edge(NodeIdx u, NodeIdx v, Cap capacity);

  /// Flow currently routed through forward edge e (set by a max-flow run).
  Cap flow(EdgeIdx e) const;

  /// Original capacity of forward edge e.
  Cap capacity(EdgeIdx e) const;

  /// Endpoints of forward edge e. The origin is recovered from the reverse
  /// half-edge's target, so no separate from-array is stored.
  NodeIdx edge_from(EdgeIdx e) const { return to_[e * 2 + 1]; }
  NodeIdx edge_to(EdgeIdx e) const { return to_[e * 2]; }

  /// Reset all flows to zero (capacities preserved).
  void reset_flow();

  // --- residual-graph accessors used by the algorithms ---

  /// Contiguous view over the half-edge ids leaving one node.
  struct AdjacencyRange {
    const EdgeIdx* first = nullptr;
    const EdgeIdx* last = nullptr;
    const EdgeIdx* begin() const { return first; }
    const EdgeIdx* end() const { return last; }
    std::size_t size() const { return static_cast<std::size_t>(last - first); }
    EdgeIdx operator[](std::size_t i) const { return first[i]; }
  };

  /// Half-edges (both directions) incident from u. Finalizes the CSR index
  /// if edges were added since the last query.
  AdjacencyRange residual_adjacency(NodeIdx u) const;

  NodeIdx residual_to(EdgeIdx half_edge) const { return to_[half_edge]; }
  Cap residual_capacity(EdgeIdx half_edge) const { return cap_[half_edge]; }
  void push(EdgeIdx half_edge, Cap amount);

 private:
  /// Build the CSR adjacency index (counting sort of half-edges by origin).
  /// Lazily invoked from residual_adjacency; idempotent until the edge set
  /// changes. The index is derived state, hence mutable.
  void finalize() const;

  NodeIdx nodes_ = 0;
  // Half-edge arrays: entry 2e is the forward direction of logical edge e,
  // entry 2e+1 the residual reverse.
  std::vector<NodeIdx> to_;
  std::vector<Cap> cap_;        // residual capacities
  std::vector<Cap> orig_cap_;   // original capacities (forward entries only meaningful)
  mutable std::vector<EdgeIdx> csr_;             // half-edge ids grouped by origin
  mutable std::vector<std::uint32_t> offsets_;   // nodes_ + 1 bucket boundaries
  mutable std::vector<std::uint32_t> cursor_;    // counting-sort scratch
  mutable bool finalized_ = false;
};

}  // namespace opass::graph
