// Weighted bipartite graph between processes (left) and chunk files / tasks
// (right). This is the "Bipartite Matching Graph G = (P, F, E)" of paper
// Section IV-A: an edge (p, f) exists when a replica of f is co-located with
// process p, weighted by the number of co-located bytes.
#pragma once

#include <cstdint>
#include <vector>

#include "common/require.hpp"
#include "common/units.hpp"

namespace opass::graph {

/// One co-location edge: left vertex (process), right vertex (file/task),
/// weight in bytes of f's data readable locally by p.
struct BipartiteEdge {
  std::uint32_t left;
  std::uint32_t right;
  Bytes weight;
};

/// Adjacency-indexed container for the process↔file co-location graph.
class BipartiteGraph {
 public:
  BipartiteGraph(std::uint32_t left_count, std::uint32_t right_count);

  std::uint32_t left_count() const { return left_count_; }
  std::uint32_t right_count() const { return right_count_; }
  std::size_t edge_count() const { return edges_.size(); }

  /// Add an edge; duplicate (left,right) pairs are allowed and treated as
  /// independent replicas (callers that need uniqueness de-duplicate first).
  void add_edge(std::uint32_t left, std::uint32_t right, Bytes weight);

  const std::vector<BipartiteEdge>& edges() const { return edges_; }

  /// Edge indices incident to a left/right vertex.
  const std::vector<std::uint32_t>& left_adjacency(std::uint32_t left) const;
  const std::vector<std::uint32_t>& right_adjacency(std::uint32_t right) const;

  const BipartiteEdge& edge(std::uint32_t idx) const { return edges_.at(idx); }

  /// Total co-located bytes incident to a left vertex (the paper's d(p_i)).
  Bytes left_weight(std::uint32_t left) const;

  /// Number of right vertices with no incident edge (files with no co-located
  /// process — these can never be read locally and must be filled randomly).
  std::uint32_t isolated_right_count() const;

 private:
  std::uint32_t left_count_, right_count_;
  std::vector<BipartiteEdge> edges_;
  std::vector<std::vector<std::uint32_t>> left_adj_, right_adj_;
};

}  // namespace opass::graph
