// Max-flow algorithms.
//
// The paper uses Ford–Fulkerson with BFS augmenting paths (i.e. Edmonds–Karp)
// to solve the Fig. 5 network; we keep it as the reference algorithm for
// parity testing and run Dinic (level graph + iterative blocking flow with
// the current-arc optimization) as the default across the planners — on the
// planner's shallow unit networks Dinic finishes in a handful of phases
// where Edmonds–Karp pays one BFS per task. Both operate on FlowNetwork in
// place, leaving the final flow readable via FlowNetwork::flow(edge).
//
// FlowWorkspace bundles a reusable network arena with the solvers' scratch
// arrays. Planners that replan repeatedly (dynamic batches, incremental
// updates) thread one workspace through every run so steady-state planning
// performs zero allocation: clear() the network, rebuild the edges into the
// retained arenas, solve with the retained scratch.
#pragma once

#include <string>

#include "graph/flow_network.hpp"

namespace opass {
class ThreadPool;
}

namespace opass::graph {

/// Which algorithm solves the network. Results (flow values per edge) may
/// differ between algorithms, but the total max-flow value is identical.
enum class MaxFlowAlgorithm {
  kEdmondsKarp,  ///< BFS Ford–Fulkerson, O(V * E^2); the paper's choice
  kDinic,        ///< level graph + blocking flows, O(V^2 * E), ~O(E*sqrt(V)) on unit nets
};

/// Stable lower-case name ("dinic" / "edmonds-karp") for CLI flags and
/// BENCH output; parse_max_flow_algorithm is its inverse (throws
/// std::invalid_argument on unknown names).
const char* max_flow_algorithm_name(MaxFlowAlgorithm algo);
MaxFlowAlgorithm parse_max_flow_algorithm(const std::string& name);

/// Reusable solver state: the network arena plus the per-run scratch arrays.
/// Everything is sized on demand and keeps its capacity across runs.
struct FlowWorkspace {
  FlowNetwork network;            ///< build target; clear() it per plan

  /// Opt-in worker pool (borrowed, may be nullptr): when set with more than
  /// one lane, Dinic runs its blocking flows concurrently across the
  /// connected components of the network minus {s, t} — the per-source-file
  /// subflows the Fig. 5 network decomposes into — and falls back to the
  /// serial solver when the network doesn't decompose. Edge flows are
  /// byte-identical to the serial run (see run_dinic_parallel in
  /// max_flow.cpp for the proof sketch); Edmonds–Karp always runs serially.
  ThreadPool* pool = nullptr;

  // Solver scratch (contents are meaningless between runs).
  std::vector<std::int32_t> level;  ///< BFS level per node; -1 = unreached
  std::vector<EdgeIdx> parent;      ///< Edmonds–Karp: parent half-edge per node
  std::vector<std::uint32_t> arc;   ///< Dinic: current-arc cursor per node
  std::vector<NodeIdx> queue;       ///< BFS frontier
  std::vector<EdgeIdx> path;        ///< Dinic: DFS path of half-edges

  // Parallel-Dinic scratch (sized on demand, capacity retained).
  std::vector<std::uint32_t> comp;         ///< component id per node
  std::vector<EdgeIdx> comp_s_arcs;        ///< s's half-edges grouped by component (CSR)
  std::vector<std::uint32_t> comp_s_offsets;  ///< comp_count + 1 bucket bounds
  std::vector<std::uint32_t> comp_s_cursor;   ///< per-component arc[s] cursor
  std::vector<Cap> comp_total;             ///< per-component blocking-flow value
  std::vector<std::vector<EdgeIdx>> comp_paths;  ///< per-chunk DFS stacks
};

/// Run Edmonds–Karp from s to t; returns the max-flow value.
Cap edmonds_karp(FlowNetwork& net, NodeIdx s, NodeIdx t);

/// Run Dinic from s to t; returns the max-flow value.
Cap dinic(FlowNetwork& net, NodeIdx s, NodeIdx t);

/// Dispatch on the algorithm enum.
Cap max_flow(FlowNetwork& net, NodeIdx s, NodeIdx t, MaxFlowAlgorithm algo);

/// Workspace form: solve `workspace.network` in place, reusing the
/// workspace's scratch arrays (no allocation once warm).
Cap max_flow(FlowWorkspace& workspace, NodeIdx s, NodeIdx t, MaxFlowAlgorithm algo);

}  // namespace opass::graph
