// Max-flow algorithms.
//
// The paper uses Ford–Fulkerson with BFS augmenting paths (i.e. Edmonds–Karp)
// to solve the Fig. 5 network; we implement that as the reference algorithm
// and Dinic as a faster alternative for large clusters (ablated in
// bench/ablation_policies). Both operate on FlowNetwork in place, leaving the
// final flow readable via FlowNetwork::flow(edge).
#pragma once

#include "graph/flow_network.hpp"

namespace opass::graph {

/// Which algorithm solves the network. Results (flow values per edge) may
/// differ between algorithms, but the total max-flow value is identical.
enum class MaxFlowAlgorithm {
  kEdmondsKarp,  ///< BFS Ford–Fulkerson, O(V * E^2); the paper's choice
  kDinic,        ///< level graph + blocking flows, O(V^2 * E), ~O(E*sqrt(V)) on unit nets
};

/// Run Edmonds–Karp from s to t; returns the max-flow value.
Cap edmonds_karp(FlowNetwork& net, NodeIdx s, NodeIdx t);

/// Run Dinic from s to t; returns the max-flow value.
Cap dinic(FlowNetwork& net, NodeIdx s, NodeIdx t);

/// Dispatch on the algorithm enum.
Cap max_flow(FlowNetwork& net, NodeIdx s, NodeIdx t, MaxFlowAlgorithm algo);

}  // namespace opass::graph
