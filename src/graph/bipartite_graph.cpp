#include "graph/bipartite_graph.hpp"

namespace opass::graph {

BipartiteGraph::BipartiteGraph(std::uint32_t left_count, std::uint32_t right_count)
    : left_count_(left_count),
      right_count_(right_count),
      left_adj_(left_count),
      right_adj_(right_count) {}

void BipartiteGraph::add_edge(std::uint32_t left, std::uint32_t right, Bytes weight) {
  OPASS_REQUIRE(left < left_count_, "left vertex out of range");
  OPASS_REQUIRE(right < right_count_, "right vertex out of range");
  const auto idx = static_cast<std::uint32_t>(edges_.size());
  edges_.push_back({left, right, weight});
  left_adj_[left].push_back(idx);
  right_adj_[right].push_back(idx);
}

const std::vector<std::uint32_t>& BipartiteGraph::left_adjacency(std::uint32_t left) const {
  OPASS_REQUIRE(left < left_count_, "left vertex out of range");
  return left_adj_[left];
}

const std::vector<std::uint32_t>& BipartiteGraph::right_adjacency(std::uint32_t right) const {
  OPASS_REQUIRE(right < right_count_, "right vertex out of range");
  return right_adj_[right];
}

Bytes BipartiteGraph::left_weight(std::uint32_t left) const {
  Bytes total = 0;
  for (auto idx : left_adjacency(left)) total += edges_[idx].weight;
  return total;
}

std::uint32_t BipartiteGraph::isolated_right_count() const {
  std::uint32_t n = 0;
  for (const auto& adj : right_adj_)
    if (adj.empty()) ++n;
  return n;
}

}  // namespace opass::graph
