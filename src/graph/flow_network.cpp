#include "graph/flow_network.hpp"

namespace opass::graph {

void FlowNetwork::clear(NodeIdx node_count) {
  nodes_ = node_count;
  to_.clear();
  cap_.clear();
  orig_cap_.clear();
  finalized_ = false;
}

NodeIdx FlowNetwork::add_nodes(NodeIdx count) {
  const NodeIdx first = nodes_;
  nodes_ += count;
  finalized_ = false;
  return first;
}

EdgeIdx FlowNetwork::add_edge(NodeIdx u, NodeIdx v, Cap capacity) {
  OPASS_REQUIRE(u < nodes_ && v < nodes_, "edge endpoint out of range");
  OPASS_REQUIRE(capacity >= 0, "edge capacity must be non-negative");
  const auto fwd = static_cast<EdgeIdx>(to_.size());
  to_.push_back(v);
  cap_.push_back(capacity);
  orig_cap_.push_back(capacity);
  to_.push_back(u);
  cap_.push_back(0);
  orig_cap_.push_back(0);
  finalized_ = false;
  return fwd / 2;
}

Cap FlowNetwork::flow(EdgeIdx e) const {
  OPASS_REQUIRE(static_cast<std::size_t>(e) * 2 < to_.size(), "edge index out of range");
  // Flow on a forward edge equals the residual capacity accumulated on its
  // reverse half-edge.
  return cap_[e * 2 + 1];
}

Cap FlowNetwork::capacity(EdgeIdx e) const {
  OPASS_REQUIRE(static_cast<std::size_t>(e) * 2 < to_.size(), "edge index out of range");
  return orig_cap_[e * 2];
}

void FlowNetwork::reset_flow() {
  for (std::size_t h = 0; h < cap_.size(); ++h) cap_[h] = orig_cap_[h];
}

void FlowNetwork::push(EdgeIdx half_edge, Cap amount) {
  OPASS_CHECK(half_edge < cap_.size(), "half edge out of range");
  OPASS_CHECK(cap_[half_edge] >= amount, "pushing more flow than residual capacity");
  cap_[half_edge] -= amount;
  cap_[half_edge ^ 1] += amount;
}

FlowNetwork::AdjacencyRange FlowNetwork::residual_adjacency(NodeIdx u) const {
  OPASS_REQUIRE(u < nodes_, "node index out of range");
  if (!finalized_) finalize();
  const EdgeIdx* base = csr_.data();
  return {base + offsets_[u], base + offsets_[u + 1]};
}

void FlowNetwork::finalize() const {
  const auto half_count = static_cast<std::uint32_t>(to_.size());
  // Counting sort of half-edge ids by origin node. The origin of half-edge h
  // is the target of its pair h ^ 1. Insertion order is preserved within each
  // node's bucket, so traversal order matches the legacy adjacency-list
  // representation exactly (deterministic solver paths).
  offsets_.assign(static_cast<std::size_t>(nodes_) + 1, 0);
  for (std::uint32_t h = 0; h < half_count; ++h) ++offsets_[to_[h ^ 1] + 1];
  for (NodeIdx u = 0; u < nodes_; ++u) offsets_[u + 1] += offsets_[u];
  cursor_.assign(offsets_.begin(), offsets_.end() - 1);
  csr_.resize(half_count);
  for (std::uint32_t h = 0; h < half_count; ++h) csr_[cursor_[to_[h ^ 1]]++] = h;
  finalized_ = true;
}

}  // namespace opass::graph
