#include "graph/flow_network.hpp"

namespace opass::graph {

NodeIdx FlowNetwork::add_nodes(NodeIdx count) {
  const auto first = static_cast<NodeIdx>(adj_.size());
  adj_.resize(adj_.size() + count);
  return first;
}

EdgeIdx FlowNetwork::add_edge(NodeIdx u, NodeIdx v, Cap capacity) {
  OPASS_REQUIRE(u < adj_.size() && v < adj_.size(), "edge endpoint out of range");
  OPASS_REQUIRE(capacity >= 0, "edge capacity must be non-negative");
  const auto fwd = static_cast<EdgeIdx>(to_.size());
  to_.push_back(v);
  from_.push_back(u);
  cap_.push_back(capacity);
  orig_cap_.push_back(capacity);
  to_.push_back(u);
  from_.push_back(v);
  cap_.push_back(0);
  orig_cap_.push_back(0);
  adj_[u].push_back(fwd);
  adj_[v].push_back(fwd + 1);
  return fwd / 2;
}

Cap FlowNetwork::flow(EdgeIdx e) const {
  OPASS_REQUIRE(e * 2 < to_.size(), "edge index out of range");
  // Flow on a forward edge equals the residual capacity accumulated on its
  // reverse half-edge.
  return cap_[e * 2 + 1];
}

Cap FlowNetwork::capacity(EdgeIdx e) const {
  OPASS_REQUIRE(e * 2 < to_.size(), "edge index out of range");
  return orig_cap_[e * 2];
}

void FlowNetwork::reset_flow() {
  for (std::size_t h = 0; h < cap_.size(); ++h) cap_[h] = orig_cap_[h];
}

void FlowNetwork::push(EdgeIdx half_edge, Cap amount) {
  OPASS_CHECK(half_edge < cap_.size(), "half edge out of range");
  OPASS_CHECK(cap_[half_edge] >= amount, "pushing more flow than residual capacity");
  cap_[half_edge] -= amount;
  cap_[half_edge ^ 1] += amount;
}

}  // namespace opass::graph
