#include "graph/hopcroft_karp.hpp"

#include <deque>
#include <limits>

namespace opass::graph {

namespace {
constexpr std::uint32_t kNil = MatchingResult::kUnmatched;
constexpr std::uint32_t kInfDist = std::numeric_limits<std::uint32_t>::max();
}  // namespace

MatchingResult hopcroft_karp(const BipartiteGraph& g) {
  const std::uint32_t nl = g.left_count();
  MatchingResult res;
  res.match_left.assign(nl, kNil);
  res.match_right.assign(g.right_count(), kNil);

  std::vector<std::uint32_t> dist(nl);

  // BFS layering over free left vertices; returns true if an augmenting path
  // to a free right vertex exists.
  auto bfs = [&]() {
    std::deque<std::uint32_t> queue;
    bool found = false;
    for (std::uint32_t l = 0; l < nl; ++l) {
      if (res.match_left[l] == kNil) {
        dist[l] = 0;
        queue.push_back(l);
      } else {
        dist[l] = kInfDist;
      }
    }
    while (!queue.empty()) {
      const std::uint32_t l = queue.front();
      queue.pop_front();
      for (auto ei : g.left_adjacency(l)) {
        const std::uint32_t r = g.edge(ei).right;
        const std::uint32_t l2 = res.match_right[r];
        if (l2 == kNil) {
          found = true;
        } else if (dist[l2] == kInfDist) {
          dist[l2] = dist[l] + 1;
          queue.push_back(l2);
        }
      }
    }
    return found;
  };

  // DFS along the layering.
  auto dfs = [&](auto&& self, std::uint32_t l) -> bool {
    for (auto ei : g.left_adjacency(l)) {
      const std::uint32_t r = g.edge(ei).right;
      const std::uint32_t l2 = res.match_right[r];
      if (l2 == kNil || (dist[l2] == dist[l] + 1 && self(self, l2))) {
        res.match_left[l] = r;
        res.match_right[r] = l;
        return true;
      }
    }
    dist[l] = kInfDist;
    return false;
  };

  while (bfs()) {
    for (std::uint32_t l = 0; l < nl; ++l) {
      if (res.match_left[l] == kNil && dfs(dfs, l)) ++res.size;
    }
  }
  return res;
}

}  // namespace opass::graph
