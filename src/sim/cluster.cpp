#include "sim/cluster.hpp"

#include <algorithm>

namespace opass::sim {

Cluster::Cluster(std::uint32_t node_count, ClusterParams params)
    : Cluster(dfs::Topology::single_rack(node_count), params) {}

Cluster::Cluster(const dfs::Topology& topology, ClusterParams params)
    : node_count_(topology.node_count()), params_(params), inflight_(node_count_, 0),
      served_(node_count_, 0), failed_(node_count_, 0), speed_(node_count_, 1.0),
      serving_(node_count_, 0), waiting_(node_count_), admission_waits_(node_count_, 0),
      peak_queue_(node_count_, 0) {
  OPASS_REQUIRE(node_count_ > 0, "cluster needs at least one node");
  disk_.reserve(node_count_);
  nic_in_.reserve(node_count_);
  nic_out_.reserve(node_count_);
  rack_of_node_.reserve(node_count_);
  for (std::uint32_t n = 0; n < node_count_; ++n) {
    disk_.push_back(sim_.add_resource(params_.disk_bandwidth, params_.disk_beta));
    nic_in_.push_back(sim_.add_resource(params_.nic_bandwidth));
    nic_out_.push_back(sim_.add_resource(params_.nic_bandwidth));
    rack_of_node_.push_back(topology.rack_of(n));
    resource_info_.push_back({ResourceRole::kDisk, n});
    resource_info_.push_back({ResourceRole::kNicIn, n});
    resource_info_.push_back({ResourceRole::kNicOut, n});
  }
  if (params_.rack_uplink_bandwidth > 0) {
    for (dfs::RackId r = 0; r < topology.rack_count(); ++r) {
      rack_up_.push_back(sim_.add_resource(params_.rack_uplink_bandwidth));
      rack_down_.push_back(sim_.add_resource(params_.rack_uplink_bandwidth));
      resource_info_.push_back({ResourceRole::kRackUp, r});
      resource_info_.push_back({ResourceRole::kRackDown, r});
    }
  }
}

ResourceInfo Cluster::resource_info(ResourceId r) const {
  OPASS_REQUIRE(r < resource_info_.size(), "resource out of range");
  return resource_info_[r];
}

void Cluster::record_read_breakdown(bool on) {
  record_breakdown_ = on;
  sim_.record_attribution(on);
}

void Cluster::degrade_node(dfs::NodeId node, double factor) {
  OPASS_REQUIRE(node < node_count_, "node out of range");
  OPASS_REQUIRE(factor > 0 && factor <= 1.0, "speed factor must be in (0, 1]");
  speed_[node] = factor;
  speed_changes_.push_back({to_ticks(sim_.now()), node, factor});
  sim_.set_resource_capacity(disk_[node], params_.disk_bandwidth * factor);
  sim_.set_resource_capacity(nic_in_[node], params_.nic_bandwidth * factor);
  sim_.set_resource_capacity(nic_out_[node], params_.nic_bandwidth * factor);
}

void Cluster::restore_node(dfs::NodeId node) { degrade_node(node, 1.0); }

double Cluster::speed_factor(dfs::NodeId node) const {
  OPASS_REQUIRE(node < node_count_, "node out of range");
  return speed_[node];
}

dfs::NodeId Cluster::add_node(dfs::RackId rack) {
  if (!rack_up_.empty())
    OPASS_REQUIRE(rack < rack_up_.size(), "new node's rack has no modeled uplink");
  const dfs::NodeId id = node_count_++;
  disk_.push_back(sim_.add_resource(params_.disk_bandwidth, params_.disk_beta));
  nic_in_.push_back(sim_.add_resource(params_.nic_bandwidth));
  nic_out_.push_back(sim_.add_resource(params_.nic_bandwidth));
  resource_info_.push_back({ResourceRole::kDisk, id});
  resource_info_.push_back({ResourceRole::kNicIn, id});
  resource_info_.push_back({ResourceRole::kNicOut, id});
  rack_of_node_.push_back(rack);
  inflight_.push_back(0);
  served_.push_back(0);
  failed_.push_back(0);
  speed_.push_back(1.0);
  serving_.push_back(0);
  waiting_.emplace_back();
  admission_waits_.push_back(0);
  peak_queue_.push_back(0);
  return id;
}

dfs::RackId Cluster::rack_of(dfs::NodeId node) const {
  OPASS_REQUIRE(node < node_count_, "node out of range");
  return rack_of_node_[node];
}

double Cluster::disk_utilization(dfs::NodeId node) const {
  OPASS_REQUIRE(node < node_count_, "node out of range");
  return sim_.resource_utilization(disk_[node]);
}

double Cluster::nic_out_utilization(dfs::NodeId node) const {
  OPASS_REQUIRE(node < node_count_, "node out of range");
  return sim_.resource_utilization(nic_out_[node]);
}

Seconds Cluster::disk_busy_time(dfs::NodeId node) const {
  OPASS_REQUIRE(node < node_count_, "node out of range");
  return sim_.resource_busy_time(disk_[node]);
}

std::uint32_t Cluster::disk_peak_load(dfs::NodeId node) const {
  OPASS_REQUIRE(node < node_count_, "node out of range");
  return sim_.resource_peak_load(disk_[node]);
}

std::uint64_t Cluster::disk_degraded_joins(dfs::NodeId node) const {
  OPASS_REQUIRE(node < node_count_, "node out of range");
  return sim_.resource_degraded_joins(disk_[node]);
}

std::uint64_t Cluster::admission_waits(dfs::NodeId node) const {
  OPASS_REQUIRE(node < node_count_, "node out of range");
  return admission_waits_[node];
}

std::uint32_t Cluster::peak_admission_queue(dfs::NodeId node) const {
  OPASS_REQUIRE(node < node_count_, "node out of range");
  return peak_queue_[node];
}

void Cluster::read(dfs::NodeId reader, dfs::NodeId server, Bytes bytes,
                   std::function<void(Seconds)> on_complete,
                   std::function<void(Seconds)> on_failure) {
  start_read(reader, server, bytes, /*copy=*/false, std::move(on_complete),
             std::move(on_failure));
}

void Cluster::replicate(dfs::NodeId src, dfs::NodeId dst, Bytes bytes,
                        std::function<void(Seconds)> on_complete,
                        std::function<void(Seconds)> on_failure) {
  OPASS_REQUIRE(src != dst, "replication source and destination must differ");
  OPASS_REQUIRE(dst < node_count_ && !failed_[dst], "replication target is not alive");
  // A copy is a remote read issued by `dst` whose path also includes dst's
  // disk (the write side of the pipeline): same slot pool, same admission
  // gate on the serving node, same abort-on-source-failure semantics.
  start_read(dst, src, bytes, /*copy=*/true, std::move(on_complete),
             std::move(on_failure));
}

void Cluster::start_read(dfs::NodeId reader, dfs::NodeId server, Bytes bytes, bool copy,
                         std::function<void(Seconds)> on_complete,
                         std::function<void(Seconds)> on_failure) {
  OPASS_REQUIRE(reader < node_count_ && server < node_count_, "node out of range");
  if (failed_[server]) {
    // Addressing a dead server: fail after the connection-attempt latency.
    sim_.after(params_.remote_latency, [cb = std::move(on_failure)](Seconds t) {
      if (cb) cb(t);
    });
    return;
  }
  ++inflight_[server];

  std::uint32_t slot;
  if (!free_read_slots_.empty()) {
    slot = free_read_slots_.back();
    free_read_slots_.pop_back();
  } else {
    OPASS_CHECK(read_pool_.size() < 0xffffffffull, "read slot space exhausted");
    slot = static_cast<std::uint32_t>(read_pool_.size());
    read_pool_.emplace_back();
  }
  ReadOp& op = read_pool_[slot];
  OPASS_CHECK(!op.active && !op.on_complete && !op.on_failure,
              "read slot reused before being fully retired");
  op.reader = reader;
  op.server = server;
  op.bytes = bytes;
  op.tag = static_cast<std::uint32_t>(++read_seq_);
  op.active = true;
  op.admitted = false;
  op.transferring = false;
  op.copy = copy;
  op.issue_ticks = to_ticks(sim_.now());
  op.on_complete = std::move(on_complete);
  op.on_failure = std::move(on_failure);
  const ReadId id = (static_cast<ReadId>(op.tag) << 32) | slot;

  // DataNode admission gate (xceiver limit): queue when the server already
  // serves its maximum number of concurrent reads.
  if (probe_ != nullptr) probe_->on_read_issued(sim_.now(), server, bytes);
  if (params_.max_concurrent_serves > 0 &&
      serving_[server] >= params_.max_concurrent_serves) {
    waiting_[server].push_back(id);
    ++admission_waits_[server];
    peak_queue_[server] =
        std::max(peak_queue_[server], static_cast<std::uint32_t>(waiting_[server].size()));
    return;
  }
  admit(id);
}

/// Return a finished/aborted read's slot to the free list, releasing any
/// callback state it still holds.
void Cluster::retire_read(std::uint32_t slot) {
  ReadOp& op = read_pool_[slot];
  op.active = false;
  op.transferring = false;
  op.on_complete = nullptr;
  op.on_failure = nullptr;
  free_read_slots_.push_back(slot);
}

void Cluster::admit(ReadId id) {
  const std::uint32_t slot = static_cast<std::uint32_t>(id);
  ReadOp& op = read_pool_[slot];
  OPASS_CHECK(op.active && op.tag == static_cast<std::uint32_t>(id >> 32),
              "admitted read missing from the active set");
  op.admitted = true;
  op.admit_ticks = to_ticks(sim_.now());
  ++serving_[op.server];

  const bool local = op.reader == op.server;
  const bool cross_rack = rack_of_node_[op.reader] != rack_of_node_[op.server];
  const Seconds latency = params_.seek_latency + (local ? 0.0 : params_.remote_latency) +
                          (cross_rack ? params_.cross_rack_latency : 0.0);

  // The positioning latency elapses before the transfer occupies bandwidth.
  // Captures are kept to {this, id} so the std::function stays within the
  // small-buffer optimization — no per-read heap allocation here.
  sim_.after(latency, [this, id](Seconds) {
    const std::uint32_t rslot = static_cast<std::uint32_t>(id);
    ReadOp& read = read_pool_[rslot];
    if (!read.active || read.tag != static_cast<std::uint32_t>(id >> 32))
      return;  // aborted by a failure meanwhile
    std::vector<ResourceId> path;
    if (read.reader == read.server) {
      path = {disk_[read.server]};
    } else {
      path = {disk_[read.server], nic_out_[read.server], nic_in_[read.reader]};
      if (!rack_up_.empty() && rack_of_node_[read.reader] != rack_of_node_[read.server]) {
        path.push_back(rack_up_[rack_of_node_[read.server]]);
        path.push_back(rack_down_[rack_of_node_[read.reader]]);
      }
      if (read.copy) path.push_back(disk_[read.reader]);  // write side of a copy
    }
    const BytesPerSec cap = read.reader == read.server ? 0.0 : params_.remote_stream_cap;
    read.transferring = true;
    read.transfer_start_ticks = to_ticks(sim_.now());
    read.flow = sim_.start_flow(std::move(path), read.bytes,
                              [this, id](Seconds end) {
                                const std::uint32_t cslot = static_cast<std::uint32_t>(id);
                                ReadOp& done = read_pool_[cslot];
                                OPASS_CHECK(done.active &&
                                                done.tag == static_cast<std::uint32_t>(id >> 32),
                                            "completed read missing from the active set");
                                OPASS_CHECK(inflight_[done.server] > 0,
                                            "in-flight count underflow");
                                --inflight_[done.server];
                                served_[done.server] += done.bytes;
                                const dfs::NodeId server = done.server;
                                const Bytes bytes = done.bytes;
                                if (record_breakdown_) {
                                  last_breakdown_.issue_ticks = done.issue_ticks;
                                  last_breakdown_.admit_ticks = done.admit_ticks;
                                  last_breakdown_.transfer_start_ticks =
                                      done.transfer_start_ticks;
                                  last_breakdown_.end_ticks = to_ticks(end);
                                  const auto* attr = sim_.completed_attribution(done.flow);
                                  last_breakdown_.transfer =
                                      attr != nullptr ? *attr
                                                      : std::vector<BindingInterval>{};
                                }
                                auto cb = std::move(done.on_complete);
                                retire_read(cslot);
                                release_serve_slot(server);
                                if (probe_ != nullptr)
                                  probe_->on_read_finished(end, server, bytes, true);
                                if (cb) cb(end);
                              },
                              cap);
  });
}

void Cluster::release_serve_slot(dfs::NodeId server) {
  OPASS_CHECK(serving_[server] > 0, "serve-slot count underflow");
  --serving_[server];
  if (failed_[server]) return;  // the failure path drains the queue itself
  if (!waiting_[server].empty()) {
    const std::uint64_t next = waiting_[server].front();
    waiting_[server].pop_front();
    admit(next);
  }
}

void Cluster::fail_node(dfs::NodeId node, Seconds when) {
  OPASS_REQUIRE(node < node_count_, "node out of range");
  OPASS_REQUIRE(when >= sim_.now(), "cannot fail a node in the past");
  sim_.at(when, [this, node](Seconds t) {
    if (failed_[node]) return;
    failed_[node] = 1;
    any_failed_ = true;
    // Abort every read this node is serving or queueing. The pool holds one
    // slot per in-flight read (peak concurrency, not total reads), so this
    // scan is proportional to the live set.
    std::vector<std::function<void(Seconds)>> failures;
    for (std::uint32_t slot = 0; slot < read_pool_.size(); ++slot) {
      ReadOp& op = read_pool_[slot];
      if (!op.active || op.server != node) continue;
      if (op.transferring) sim_.cancel_flow(op.flow);
      if (op.admitted) {
        OPASS_CHECK(serving_[node] > 0, "serve-slot count underflow");
        --serving_[node];
      }
      OPASS_CHECK(inflight_[node] > 0, "in-flight count underflow");
      --inflight_[node];
      const Bytes bytes = op.bytes;
      if (op.on_failure) failures.push_back(std::move(op.on_failure));
      retire_read(slot);
      if (probe_ != nullptr) probe_->on_read_finished(t, node, bytes, false);
    }
    waiting_[node].clear();
    for (auto& cb : failures) cb(t);
  });
}

bool Cluster::is_failed(dfs::NodeId node) const {
  OPASS_REQUIRE(node < node_count_, "node out of range");
  return failed_[node] != 0;
}

void Cluster::send(dfs::NodeId src, dfs::NodeId dst, Bytes bytes,
                   std::function<void(Seconds)> on_complete) {
  OPASS_REQUIRE(src < node_count_ && dst < node_count_, "node out of range");
  if (src == dst) {
    // Loopback: software latency only, no NIC occupancy.
    sim_.after(params_.remote_latency, [cb = std::move(on_complete)](Seconds t) {
      if (cb) cb(t);
    });
    return;
  }
  const bool cross_rack = rack_of_node_[src] != rack_of_node_[dst];
  const Seconds latency =
      params_.remote_latency + (cross_rack ? params_.cross_rack_latency : 0.0);
  sim_.after(latency, [this, src, dst, bytes, cross_rack,
                       cb = std::move(on_complete)](Seconds) mutable {
    std::vector<ResourceId> path{nic_out_[src], nic_in_[dst]};
    if (!rack_up_.empty() && cross_rack) {
      path.push_back(rack_up_[rack_of_node_[src]]);
      path.push_back(rack_down_[rack_of_node_[dst]]);
    }
    sim_.start_flow(std::move(path), bytes, [cb = std::move(cb)](Seconds end) {
      if (cb) cb(end);
    });
  });
}

void Cluster::write_pipeline(dfs::NodeId writer, const std::vector<dfs::NodeId>& replicas,
                             Bytes bytes, std::function<void(Seconds)> on_complete) {
  OPASS_REQUIRE(writer < node_count_, "node out of range");
  OPASS_REQUIRE(!replicas.empty(), "write pipeline needs at least one replica");
  for (dfs::NodeId r : replicas) {
    OPASS_REQUIRE(r < node_count_, "node out of range");
    OPASS_REQUIRE(!failed_[r], "cannot write to a failed node");
  }

  // Resource set of the cut-through stream: each hop's NICs plus every
  // replica's disk. Duplicate resources (e.g. a node appearing twice on the
  // chain) are collapsed — the flow engine expects distinct entries.
  std::vector<ResourceId> path;
  auto add_unique = [&path](ResourceId r) {
    for (ResourceId existing : path)
      if (existing == r) return;
    path.push_back(r);
  };

  dfs::NodeId hop_src = writer;
  std::uint32_t network_hops = 0;
  for (dfs::NodeId r : replicas) {
    if (r != hop_src) {
      add_unique(nic_out_[hop_src]);
      add_unique(nic_in_[r]);
      if (!rack_up_.empty() && rack_of_node_[hop_src] != rack_of_node_[r]) {
        add_unique(rack_up_[rack_of_node_[hop_src]]);
        add_unique(rack_down_[rack_of_node_[r]]);
      }
      ++network_hops;
    }
    add_unique(disk_[r]);
    hop_src = r;
  }

  const Seconds latency =
      params_.seek_latency + params_.remote_latency * static_cast<double>(network_hops);
  sim_.after(latency, [this, path = std::move(path), bytes,
                       cb = std::move(on_complete)](Seconds) mutable {
    sim_.start_flow(std::move(path), bytes, [cb = std::move(cb)](Seconds end) {
      if (cb) cb(end);
    });
  });
}

}  // namespace opass::sim
