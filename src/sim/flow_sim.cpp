#include "sim/flow_sim.hpp"

#include <algorithm>
#include <limits>

#include "common/thread_pool.hpp"

namespace opass::sim {

namespace {
constexpr double kEps = 1e-9;      // FP slack for time comparisons (seconds)
constexpr double kByteEps = 1e-3;  // FP slack for transfer completion (bytes);
                                   // must exceed the rounding error of
                                   // rate * dt on multi-MB transfers (~1e-8 B)
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

ResourceId FlowSimulator::add_resource(BytesPerSec capacity, double beta) {
  OPASS_REQUIRE(capacity > 0, "resource capacity must be positive");
  OPASS_REQUIRE(beta >= 0, "degradation factor must be non-negative");
  Resource res;
  res.capacity = capacity;
  res.beta = beta;
  resources_.push_back(std::move(res));
  return static_cast<ResourceId>(resources_.size() - 1);
}

double FlowSimulator::bytes_left_at(const Flow& f, Seconds t) const {
  double left = f.bytes_anchor;
  if (f.rate > 0 && t > f.anchor_time) left -= f.rate * (t - f.anchor_time);
  return left;
}

void FlowSimulator::set_resource_capacity(ResourceId r, BytesPerSec capacity) {
  OPASS_REQUIRE(r < resources_.size(), "resource out of range");
  OPASS_REQUIRE(capacity > 0, "resource capacity must be positive");
  if (resources_[r].capacity == capacity) return;
  resources_[r].capacity = capacity;
  mark_dirty(r);
}

BytesPerSec FlowSimulator::resource_capacity(ResourceId r) const {
  OPASS_REQUIRE(r < resources_.size(), "resource out of range");
  return resources_[r].capacity;
}

void FlowSimulator::mark_dirty(ResourceId r) {
  Resource& res = resources_[r];
  if (!res.dirty) {
    res.dirty = true;
    dirty_resources_.push_back(r);
  }
}

void FlowSimulator::push_eta(std::uint32_t slot) {
  const Flow& f = flows_[slot];
  double eta;
  if (f.bytes_anchor <= kByteEps) {
    eta = now_;  // completes on the next event-loop step
  } else if (f.rate > 0) {
    eta = f.anchor_time + f.bytes_anchor / f.rate;
  } else {
    return;  // stalled: cannot complete until a rate change re-queues it
  }
  etas_.push_back({eta, f.seq, slot, f.epoch});
  std::push_heap(etas_.begin(), etas_.end(), std::greater<>{});
}

/// Fold the open progress interval [anchor_time, now] into the flow's byte
/// balance and its resources' served totals, and move the anchor to now.
void FlowSimulator::commit_progress(Flow& f) {
  if (now_ > f.anchor_time) {
    if (f.rate > 0) {
      const double moved = f.rate * (now_ - f.anchor_time);
      f.bytes_anchor -= moved;
      if (f.bytes_anchor < kByteEps) f.bytes_anchor = 0;
      for (ResourceId r : f.resources) resources_[r].bytes_served += moved;
    }
    f.anchor_time = now_;
  }
}

/// Record that `f`'s rate is pinned by `binding` from now on. Same-binding
/// re-levels keep the open interval; a change closes it at the current tick
/// and opens a new one. Multiple re-levels within one instant leave at most
/// one interval (zero-width predecessors are superseded in place, possibly
/// reopening an earlier same-binding interval whose stale end is rewritten
/// on the next close). Boundaries chain exactly, so durations telescope to
/// the flow's transfer time in integer math.
void FlowSimulator::note_binding(Flow& f, ResourceId binding) {
  const std::int64_t t = to_ticks(now_);
  while (!f.attr.empty()) {
    BindingInterval& last = f.attr.back();
    if (last.resource == binding) return;  // unchanged (or reopened) — stay open
    if (last.start_ticks >= t) {
      f.attr.pop_back();  // zero-width: superseded within the same instant
      continue;
    }
    last.end_ticks = t;  // close the open interval at the change point
    break;
  }
  f.attr.push_back({t, t, binding});
}

/// Close a completing flow's open interval at the completion tick and move
/// its history into the per-event stash for the completion callback to read.
void FlowSimulator::stash_attribution(std::uint32_t slot) {
  Flow& f = flows_[slot];
  const std::int64_t t = to_ticks(now_);
  while (!f.attr.empty() && f.attr.back().start_ticks >= t) f.attr.pop_back();
  if (!f.attr.empty()) f.attr.back().end_ticks = t;
  const FlowId id = (static_cast<FlowId>(static_cast<std::uint32_t>(f.seq)) << 32) | slot;
  finished_attr_.emplace_back(id, std::move(f.attr));
}

const std::vector<BindingInterval>* FlowSimulator::completed_attribution(FlowId id) const {
  for (const auto& [fid, intervals] : finished_attr_)
    if (fid == id) return &intervals;
  return nullptr;
}

void FlowSimulator::set_rate(std::uint32_t slot, double rate, ResourceId binding) {
  Flow& f = flows_[slot];
  // The binding can move between resources of equal fair share without the
  // rate changing, so note it before the unchanged-rate early return.
  if (record_attr_) note_binding(f, binding);
  if (f.rate == rate) return;  // unchanged — the queued ETA stays valid
  commit_progress(f);
  f.anchor_time = now_;
  f.rate = rate;
  ++f.epoch;  // invalidate any queued ETA computed under the old rate
  push_eta(slot);
}

FlowId FlowSimulator::start_flow(std::vector<ResourceId> resources, Bytes bytes,
                                 std::function<void(Seconds)> on_complete,
                                 BytesPerSec rate_cap) {
  OPASS_REQUIRE(!resources.empty(), "a flow must cross at least one resource");
  OPASS_REQUIRE(rate_cap >= 0, "rate cap must be non-negative");
  for (ResourceId r : resources)
    OPASS_REQUIRE(r < resources_.size(), "flow references unknown resource");

  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    OPASS_CHECK(flows_.size() < 0xffffffffull, "flow slot space exhausted");
    slot = static_cast<std::uint32_t>(flows_.size());
    flows_.emplace_back();
  }
  Flow& f = flows_[slot];
  OPASS_CHECK(!f.active && f.resources.empty() && !f.on_complete,
              "flow slot reused before being fully retired");
  f.resources = std::move(resources);
  f.bytes_anchor = static_cast<double>(bytes);
  f.anchor_time = now_;
  f.rate = 0;
  f.rate_cap = rate_cap;
  f.on_complete = std::move(on_complete);
  f.seq = ++flow_seq_;
  f.active = true;
  for (ResourceId r : f.resources) {
    Resource& res = resources_[r];
    if (res.beta > 0 && res.active > 0) ++res.degraded_joins;
    if (res.active == 0) res.busy_since = now_;
    ++res.active;
    res.peak_active = std::max(res.peak_active, res.active);
    res.flows.push_back(slot);
    mark_dirty(r);
  }
  ++flows_active_;
  peak_active_flows_ =
      std::max(peak_active_flows_, static_cast<std::uint32_t>(flows_active_));
  if (f.bytes_anchor <= kByteEps) push_eta(slot);  // zero-byte: due immediately
  return (static_cast<FlowId>(static_cast<std::uint32_t>(f.seq)) << 32) | slot;
}

void FlowSimulator::at(Seconds when, std::function<void(Seconds)> fn) {
  OPASS_REQUIRE(when >= now_ - kEps, "cannot schedule a timer in the past");
  timers_.push_back({std::max(when, now_), timer_seq_++, std::move(fn)});
  std::push_heap(timers_.begin(), timers_.end(), std::greater<>{});
}

std::uint32_t FlowSimulator::resource_load(ResourceId r) const {
  OPASS_REQUIRE(r < resources_.size(), "resource out of range");
  return resources_[r].active;
}

std::uint32_t FlowSimulator::resource_peak_load(ResourceId r) const {
  OPASS_REQUIRE(r < resources_.size(), "resource out of range");
  return resources_[r].peak_active;
}

std::uint64_t FlowSimulator::resource_degraded_joins(ResourceId r) const {
  OPASS_REQUIRE(r < resources_.size(), "resource out of range");
  return resources_[r].degraded_joins;
}

/// Detach the flow from every resource it crosses (closing busy intervals and
/// marking them for re-leveling), release its storage, and return the slot to
/// the free list. The epoch bump turns any queued ETA entries stale.
void FlowSimulator::retire_slot(std::uint32_t slot) {
  Flow& f = flows_[slot];
  for (ResourceId r : f.resources) {
    Resource& res = resources_[r];
    OPASS_CHECK(res.active > 0, "resource active count underflow");
    --res.active;
    if (res.active == 0) res.busy_time += now_ - res.busy_since;
    auto it = std::find(res.flows.begin(), res.flows.end(), slot);
    OPASS_CHECK(it != res.flows.end(), "flow missing from its resource index");
    *it = res.flows.back();
    res.flows.pop_back();
    mark_dirty(r);
  }
  f.active = false;
  f.rate = 0;
  f.bytes_anchor = 0;
  f.on_complete = nullptr;
  ++f.epoch;
  std::vector<ResourceId>().swap(f.resources);  // release storage on retirement
  std::vector<BindingInterval>().swap(f.attr);
  --flows_active_;
  free_slots_.push_back(slot);
#if defined(OPASS_SANITIZE_BUILD)
  audit_retired_slot(slot);
#endif
}

/// Exhaustive slot-reuse invariants, run on every retirement under the
/// sanitizer presets: the slot must be detached from every resource index,
/// its per-flow storage released, and the free list duplicate-free. O(cluster)
/// per retirement — far too slow for benchmarking, invaluable under ASan.
void FlowSimulator::audit_retired_slot(std::uint32_t slot) const {
  const Flow& f = flows_[slot];
  OPASS_CHECK(!f.active && f.resources.capacity() == 0 && !f.on_complete &&
                  f.attr.capacity() == 0,
              "retired flow slot still holds state");
  for (const Resource& res : resources_)
    for (std::uint32_t s : res.flows)
      OPASS_CHECK(s != slot, "retired flow slot still indexed by a resource");
  std::size_t uses = 0;
  for (std::uint32_t s : free_slots_)
    if (s == slot) ++uses;
  OPASS_CHECK(uses == 1, "flow slot free-list entry must be unique");
}

void FlowSimulator::cancel_flow(FlowId id) {
  const std::uint32_t slot = slot_of(id);
  OPASS_REQUIRE(slot < flows_.size(), "flow id out of range");
  Flow& f = flows_[slot];
  // A stale generation tag means the handle's flow already completed or was
  // cancelled and the slot moved on — same no-op contract as before.
  if (!f.active || static_cast<std::uint32_t>(f.seq) != tag_of(id)) return;
  commit_progress(f);  // progress to date stays in bytes_served
  retire_slot(slot);
}

bool FlowSimulator::flow_active(FlowId id) const {
  const std::uint32_t slot = slot_of(id);
  OPASS_REQUIRE(slot < flows_.size(), "flow id out of range");
  const Flow& f = flows_[slot];
  return f.active && static_cast<std::uint32_t>(f.seq) == tag_of(id);
}

void FlowSimulator::recompute_rates() {
  if (pool_ != nullptr && pool_->thread_count() > 1) {
    recompute_rates_parallel();
    return;
  }
  ++rate_recomputes_;
  ++visit_stamp_;
  comp_resources_.clear();
  comp_flows_.clear();

  // Only the connected component(s) of resources whose flow membership
  // changed can see different max-min allocations — everything else keeps
  // its rates (max-min is component-decomposable, and untouched components
  // see the exact same constraint structure as before). BFS the bipartite
  // resource<->flow graph out from every dirty resource.
  for (std::uint32_t r : dirty_resources_) {
    Resource& res = resources_[r];
    res.dirty = false;
    if (res.visit == visit_stamp_) continue;
    res.visit = visit_stamp_;
    comp_resources_.push_back(r);
  }
  dirty_resources_.clear();
  for (std::size_t i = 0; i < comp_resources_.size(); ++i) {
    const Resource& res = resources_[comp_resources_[i]];
    for (std::uint32_t slot : res.flows) {
      Flow& f = flows_[slot];
      if (f.visit == visit_stamp_) continue;
      f.visit = visit_stamp_;
      comp_flows_.push_back(slot);
      for (ResourceId r2 : f.resources) {
        Resource& res2 = resources_[r2];
        if (res2.visit == visit_stamp_) continue;
        res2.visit = visit_stamp_;
        comp_resources_.push_back(r2);
      }
    }
  }
  rate_recompute_touched_ += comp_flows_.size();
  max_relevel_component_ =
      std::max(max_relevel_component_, static_cast<std::uint32_t>(comp_flows_.size()));
  if (comp_flows_.empty()) return;  // e.g. the last flow on a disk retired

  // The serial path water-fills the merged component set jointly (exactly the
  // pre-pool engine), committing each pinned rate through set_rate as it
  // binds.
  water_fill(comp_resources_.data(), comp_resources_.size(), comp_flows_.data(),
             comp_flows_.size(), share_heap_, cap_heap_,
             [this](std::uint32_t slot, double share, ResourceId binding) {
               set_rate(slot, share, binding);
             });
}

/// Water-filling with per-flow caps, restricted to the given component span:
/// rates rise together until the first constraint binds. Each round, the
/// binding level is the minimum over (a) each active resource's fair share
/// and (b) each unfixed flow's own rate cap; all flows pinned by the binding
/// constraint freeze at that level and release the rest of their resources'
/// capacity. `sink(slot, share, binding)` receives every pin in binding order
/// — `binding` names the constraint that froze the flow (the bottleneck
/// resource, or kCapBinding when its own rate cap bound). The serial path
/// commits immediately via set_rate, the parallel path stages the triple for
/// the ordered commit phase.
///
/// Both minima come from lazily invalidated min-heaps instead of per-round
/// scans, making a full re-level O(incidences * log) instead of
/// O(rounds * component). This is value-exact: a queued share is recomputed
/// (and its old entry epoch-invalidated) whenever its resource's
/// remaining/unfixed change, so a surviving entry always equals the share a
/// fresh scan would compute; ties break on ascending resource id, matching
/// the reference scan's strict-< argmin.
template <typename PinSink>
void FlowSimulator::water_fill(const std::uint32_t* comp_res, std::size_t res_count,
                               const std::uint32_t* comp_flows, std::size_t flow_count,
                               std::vector<ShareEntry>& share_heap,
                               std::vector<CapEntry>& cap_heap, PinSink&& sink) {
  share_heap.clear();
  cap_heap.clear();
  for (std::size_t i = 0; i < res_count; ++i) {
    Resource& res = resources_[comp_res[i]];
    // Effective capacity for this instant: disks degrade with total
    // concurrency on them (head thrash), NICs (beta = 0) do not.
    const double k = static_cast<double>(res.active);
    res.remaining = res.active == 0
                        ? res.capacity
                        : res.capacity / (1.0 + res.beta * (k - 1.0));
    res.unfixed = 0;
  }
  for (std::size_t i = 0; i < flow_count; ++i) {
    Flow& f = flows_[comp_flows[i]];
    for (ResourceId r : f.resources) ++resources_[r].unfixed;
    if (f.rate_cap > 0) cap_heap.push_back({f.rate_cap, f.seq, comp_flows[i]});
  }
  std::make_heap(cap_heap.begin(), cap_heap.end(), std::greater<>{});
  for (std::size_t i = 0; i < res_count; ++i) {
    const ResourceId r = comp_res[i];
    const Resource& res = resources_[r];
    if (res.unfixed == 0) continue;  // a dirty seed whose last flow retired
    share_heap.push_back(
        {res.remaining / static_cast<double>(res.unfixed), r, res.wf_epoch});
  }
  std::make_heap(share_heap.begin(), share_heap.end(), std::greater<>{});

  // Freeze a flow's rate at the binding share and release the headroom on
  // every resource it crosses, re-queuing their updated fair shares.
  const auto pin = [&](std::uint32_t slot, double share, ResourceId binding) {
    Flow& f = flows_[slot];
    f.fixed = visit_stamp_;
    sink(slot, share, binding);
    for (ResourceId r : f.resources) {
      Resource& res = resources_[r];
      res.remaining = std::max(0.0, res.remaining - share);
      --res.unfixed;
      ++res.wf_epoch;
      if (res.unfixed > 0) {
        share_heap.push_back(
            {res.remaining / static_cast<double>(res.unfixed), r, res.wf_epoch});
        std::push_heap(share_heap.begin(), share_heap.end(), std::greater<>{});
      }
    }
  };

  std::size_t flows_left = flow_count;
  while (flows_left > 0) {
    // Current bottleneck resource (lowest fair share, then lowest id).
    double res_share = kInf;
    ResourceId best_r = 0;
    while (!share_heap.empty()) {
      const ShareEntry& top = share_heap.front();
      const Resource& res = resources_[top.r];
      if (top.epoch != res.wf_epoch || res.unfixed == 0) {
        std::pop_heap(share_heap.begin(), share_heap.end(), std::greater<>{});
        share_heap.pop_back();
        continue;
      }
      res_share = top.share;
      best_r = top.r;
      break;
    }
    // Tightest per-flow cap still unfixed.
    double cap_min = kInf;
    while (!cap_heap.empty()) {
      const CapEntry& top = cap_heap.front();
      if (flows_[top.slot].fixed == visit_stamp_) {
        std::pop_heap(cap_heap.begin(), cap_heap.end(), std::greater<>{});
        cap_heap.pop_back();
        continue;
      }
      cap_min = top.cap;
      break;
    }

    const bool cap_binds = cap_min < res_share;
    const double best_share = cap_binds ? cap_min : res_share;
    OPASS_CHECK(best_share < kInf, "max-min allocation found no bottleneck");

    const std::size_t before = flows_left;
    if (cap_binds) {
      // Freeze every unfixed capped flow at or below the binding level.
      while (!cap_heap.empty()) {
        const CapEntry top = cap_heap.front();
        if (flows_[top.slot].fixed != visit_stamp_ && top.cap > best_share) break;
        std::pop_heap(cap_heap.begin(), cap_heap.end(), std::greater<>{});
        cap_heap.pop_back();
        if (flows_[top.slot].fixed == visit_stamp_) continue;
        pin(top.slot, best_share, kCapBinding);
        --flows_left;
      }
    } else {
      // Freeze every unfixed flow crossing the bottleneck resource.
      for (std::uint32_t slot : resources_[best_r].flows) {
        if (flows_[slot].fixed == visit_stamp_) continue;
        pin(slot, best_share, best_r);
        --flows_left;
      }
    }
    OPASS_CHECK(flows_left < before, "water-filling made no progress");
  }
}

/// Worker-pool re-leveling (DESIGN.md §12). Byte-exactness argument, step by
/// step against the serial joint run:
///
///  1. The BFS is segmented per dirty seed instead of merged, so components
///     come out as contiguous spans. Component *membership* is identical;
///     only the order inside comp_resources_/comp_flows_ differs, and that
///     order is unobservable — it only shapes initial heap layout, and a
///     binary heap's pop sequence depends on the entry multiset and the
///     comparator (total order: share ties break on resource id, cap ties on
///     flow seq), never on layout.
///  2. Components are resource- and flow-disjoint, so concurrent water-fills
///     touch disjoint Resource/Flow scratch fields (remaining, unfixed,
///     wf_epoch, fixed) — race-free with the pool's batch barrier.
///  3. The pinned level of every flow is a component-local value: a joint
///     round pins either the flows of one bottleneck resource (share from
///     its own component's remaining/unfixed) or the cap-tied flows at their
///     own rate_cap. Interleaving across components never changes a value.
///  4. Commits are replayed through set_rate in ascending component id, and
///     inside a component in binding order — the same relative order the
///     joint run produces (a joint run's pin subsequence restricted to one
///     component is exactly that component's isolated binding sequence). A
///     resource's bytes_served accumulation order is therefore preserved
///     (flows on it all live in its own component), keeping the FP sums
///     bit-identical; the ETA heap receives the same entry multiset, and its
///     pop order is comparator-total-ordered, so eta_stale_pops_ and every
///     completion follow identically.
///  5. max_relevel_component_ counts all flows touched per recompute (the
///     joint path merges every dirty component into one count), so the stat
///     is computed on the same totals here, not per component.
void FlowSimulator::recompute_rates_parallel() {
  ++rate_recomputes_;
  ++visit_stamp_;
  comp_resources_.clear();
  comp_flows_.clear();
  comp_spans_.clear();

  // Segmented BFS: each still-unvisited dirty seed grows its full connected
  // component before the next seed starts, so every component is a
  // contiguous span of comp_resources_/comp_flows_.
  for (std::uint32_t seed : dirty_resources_) {
    Resource& seed_res = resources_[seed];
    seed_res.dirty = false;
    if (seed_res.visit == visit_stamp_) continue;  // swallowed by a prior seed
    CompSpan span;
    span.res_begin = static_cast<std::uint32_t>(comp_resources_.size());
    span.flow_begin = static_cast<std::uint32_t>(comp_flows_.size());
    seed_res.visit = visit_stamp_;
    comp_resources_.push_back(seed);
    for (std::size_t i = span.res_begin; i < comp_resources_.size(); ++i) {
      const Resource& res = resources_[comp_resources_[i]];
      for (std::uint32_t slot : res.flows) {
        Flow& f = flows_[slot];
        if (f.visit == visit_stamp_) continue;
        f.visit = visit_stamp_;
        comp_flows_.push_back(slot);
        for (ResourceId r2 : f.resources) {
          Resource& res2 = resources_[r2];
          if (res2.visit == visit_stamp_) continue;
          res2.visit = visit_stamp_;
          comp_resources_.push_back(r2);
        }
      }
    }
    span.res_end = static_cast<std::uint32_t>(comp_resources_.size());
    span.flow_end = static_cast<std::uint32_t>(comp_flows_.size());
    comp_spans_.push_back(span);
  }
  dirty_resources_.clear();
  rate_recompute_touched_ += comp_flows_.size();
  max_relevel_component_ =
      std::max(max_relevel_component_, static_cast<std::uint32_t>(comp_flows_.size()));
  if (comp_flows_.empty()) return;

  // Stage every component's pins into its own flow-span slice of pinned_
  // (a component pins each of its flows exactly once), then commit in
  // ascending component order. Chunks are contiguous component ranges; each
  // chunk index owns one scratch slot.
  pinned_.resize(comp_flows_.size());
  if (wf_scratch_.size() < pool_->thread_count()) wf_scratch_.resize(pool_->thread_count());
  // Size-aware split: water-fill cost scales with a component's flow count,
  // and component sizes are heavily skewed (one big contended component among
  // many singletons), so chunk by total flow weight rather than component
  // count. The boundaries are a pure function of the component shapes —
  // byte-identical output for every thread count, same as the equal split.
  comp_weights_.clear();
  comp_weights_.reserve(comp_spans_.size());
  for (const CompSpan& span : comp_spans_)
    comp_weights_.push_back(
        static_cast<std::uint64_t>(span.flow_end - span.flow_begin) + 1);
  pool_->parallel_weighted_for_chunks(
      comp_weights_, /*min_weight_per_chunk=*/1,
      [&](std::size_t begin, std::size_t end, std::size_t chunk) {
        WfScratch& scratch = wf_scratch_[chunk];
        for (std::size_t c = begin; c < end; ++c) {
          const CompSpan& span = comp_spans_[c];
          std::uint32_t fill = span.flow_begin;
          water_fill(comp_resources_.data() + span.res_begin, span.res_end - span.res_begin,
                     comp_flows_.data() + span.flow_begin, span.flow_end - span.flow_begin,
                     scratch.share_heap, scratch.cap_heap,
                     [&](std::uint32_t slot, double share, ResourceId binding) {
                       pinned_[fill++] = {slot, share, binding};
                     });
          OPASS_CHECK(fill == span.flow_end,
                      "parallel re-level pinned a component incompletely");
        }
      });

  // Ordered commit: ascending component id, binding order within a component.
  for (const PinnedRate& p : pinned_) set_rate(p.slot, p.share, p.binding);
}

void FlowSimulator::advance_to(Seconds t) {
  OPASS_CHECK(t - now_ >= -kEps, "time must not move backwards");
  now_ = std::max(now_, t);
}

Seconds FlowSimulator::resource_busy_time(ResourceId r) const {
  OPASS_REQUIRE(r < resources_.size(), "resource out of range");
  const Resource& res = resources_[r];
  // Closed intervals plus the still-open one, if the resource is busy now.
  return res.active > 0 ? res.busy_time + (now_ - res.busy_since) : res.busy_time;
}

double FlowSimulator::resource_bytes_served(ResourceId r) const {
  OPASS_REQUIRE(r < resources_.size(), "resource out of range");
  const Resource& res = resources_[r];
  // Committed totals plus each crossing flow's uncommitted open interval.
  double total = res.bytes_served;
  for (std::uint32_t slot : res.flows) {
    const Flow& f = flows_[slot];
    if (f.rate > 0 && now_ > f.anchor_time) total += f.rate * (now_ - f.anchor_time);
  }
  return total;
}

double FlowSimulator::resource_utilization(ResourceId r) const {
  OPASS_REQUIRE(r < resources_.size(), "resource out of range");
  return now_ > 0 ? resource_busy_time(r) / now_ : 0.0;
}

/// Earliest still-valid queued ETA; discards stale entries on the way.
double FlowSimulator::next_completion_time() {
  while (!etas_.empty()) {
    const Eta& top = etas_.front();
    const Flow& f = flows_[top.slot];
    if (f.active && f.epoch == top.epoch) return top.when;
    std::pop_heap(etas_.begin(), etas_.end(), std::greater<>{});
    etas_.pop_back();
    ++eta_stale_pops_;
  }
  return kInf;
}

Seconds FlowSimulator::run() {
  for (;;) {
    // Last step's completion attributions expire: completed_attribution() is
    // a within-callback accessor, not a history store.
    if (!finished_attr_.empty()) finished_attr_.clear();

    if (!dirty_resources_.empty()) recompute_rates();

    const double next_completion = next_completion_time();
    const double next_timer = timers_.empty() ? kInf : timers_.front().when;
    const double t = std::min(next_completion, next_timer);
    if (t == kInf) break;  // idle: no runnable flows, no timers
    advance_to(t);

    // Fire all timers due at (or before, FP-wise) the new now.
    while (!timers_.empty() && timers_.front().when <= now_ + kEps) {
      std::pop_heap(timers_.begin(), timers_.end(), std::greater<>{});
      Timer timer = std::move(timers_.back());
      timers_.pop_back();
      timer.fn(now_);
    }

    // Collect finished flows. The heap is a hint, not an authority: each due
    // entry is re-checked against the flow's exact remaining bytes, and
    // not-quite-done flows (their ETA was a hair optimistic, or a timer event
    // landed just before it) are re-queued with a fresh estimate. Requeues
    // are staged so each entry is examined at most once per event.
    completed_.clear();
    requeued_.clear();
    while (!etas_.empty()) {
      const Eta top = etas_.front();
      const Flow& f = flows_[top.slot];
      if (!f.active || f.epoch != top.epoch) {
        std::pop_heap(etas_.begin(), etas_.end(), std::greater<>{});
        etas_.pop_back();
        ++eta_stale_pops_;
        continue;
      }
      if (top.when > now_ + kEps) break;
      std::pop_heap(etas_.begin(), etas_.end(), std::greater<>{});
      etas_.pop_back();
      const double left = bytes_left_at(f, now_);
      if (left <= kByteEps) {
        completed_.push_back(top.slot);
      } else {
        OPASS_CHECK(f.rate > 0, "completion queued for a stalled flow");
        requeued_.push_back({now_ + left / f.rate, f.seq, top.slot, top.epoch});
      }
    }
    for (const Eta& e : requeued_) {
      etas_.push_back(e);
      std::push_heap(etas_.begin(), etas_.end(), std::greater<>{});
    }

    // Retire completions in creation order (matching the reference engine's
    // flow-index scan), then fire callbacks — they commonly start the
    // process's next read, so collect first.
    std::sort(completed_.begin(), completed_.end(),
              [this](std::uint32_t a, std::uint32_t b) { return flows_[a].seq < flows_[b].seq; });
    callbacks_.clear();
    for (std::uint32_t slot : completed_) {
      Flow& f = flows_[slot];
      // Commit the whole remainder since the anchor: every byte of the flow
      // lands in bytes_served exactly once (telescoping, no per-event drift).
      if (f.bytes_anchor > 0)
        for (ResourceId r : f.resources) resources_[r].bytes_served += f.bytes_anchor;
      if (record_attr_) stash_attribution(slot);
      if (f.on_complete) callbacks_.push_back(std::move(f.on_complete));
      retire_slot(slot);
    }
    for (auto& cb : callbacks_) cb(now_);
  }
  return now_;
}

}  // namespace opass::sim
