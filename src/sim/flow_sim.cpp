#include "sim/flow_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace opass::sim {

namespace {
constexpr double kEps = 1e-9;      // FP slack for time comparisons (seconds)
constexpr double kByteEps = 1e-3;  // FP slack for transfer completion (bytes);
                                   // must exceed the rounding error of
                                   // rate * dt on multi-MB transfers (~1e-8 B)
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

ResourceId FlowSimulator::add_resource(BytesPerSec capacity, double beta) {
  OPASS_REQUIRE(capacity > 0, "resource capacity must be positive");
  OPASS_REQUIRE(beta >= 0, "degradation factor must be non-negative");
  resources_.push_back({capacity, beta, 0});
  return static_cast<ResourceId>(resources_.size() - 1);
}

FlowId FlowSimulator::start_flow(std::vector<ResourceId> resources, Bytes bytes,
                                 std::function<void(Seconds)> on_complete,
                                 BytesPerSec rate_cap) {
  OPASS_REQUIRE(!resources.empty(), "a flow must cross at least one resource");
  OPASS_REQUIRE(rate_cap >= 0, "rate cap must be non-negative");
  for (ResourceId r : resources)
    OPASS_REQUIRE(r < resources_.size(), "flow references unknown resource");

  Flow f;
  f.resources = std::move(resources);
  f.bytes_left = static_cast<double>(bytes);
  f.rate_cap = rate_cap;
  f.on_complete = std::move(on_complete);
  f.active = true;
  for (ResourceId r : f.resources) {
    Resource& res = resources_[r];
    if (res.beta > 0 && res.active > 0) ++res.degraded_joins;
    ++res.active;
    res.peak_active = std::max(res.peak_active, res.active);
  }
  flows_.push_back(std::move(f));
  ++flows_active_;
  rates_dirty_ = true;
  return static_cast<FlowId>(flows_.size() - 1);
}

void FlowSimulator::at(Seconds when, std::function<void(Seconds)> fn) {
  OPASS_REQUIRE(when >= now_ - kEps, "cannot schedule a timer in the past");
  timers_.push({std::max(when, now_), timer_seq_++, std::move(fn)});
}

std::uint32_t FlowSimulator::resource_load(ResourceId r) const {
  OPASS_REQUIRE(r < resources_.size(), "resource out of range");
  return resources_[r].active;
}

std::uint32_t FlowSimulator::resource_peak_load(ResourceId r) const {
  OPASS_REQUIRE(r < resources_.size(), "resource out of range");
  return resources_[r].peak_active;
}

std::uint64_t FlowSimulator::resource_degraded_joins(ResourceId r) const {
  OPASS_REQUIRE(r < resources_.size(), "resource out of range");
  return resources_[r].degraded_joins;
}

void FlowSimulator::cancel_flow(FlowId id) {
  OPASS_REQUIRE(id < flows_.size(), "flow id out of range");
  Flow& f = flows_[id];
  if (!f.active) return;
  f.active = false;
  f.bytes_left = 0;
  f.on_complete = nullptr;
  --flows_active_;
  for (ResourceId r : f.resources) {
    OPASS_CHECK(resources_[r].active > 0, "resource active count underflow");
    --resources_[r].active;
  }
  rates_dirty_ = true;
}

bool FlowSimulator::flow_active(FlowId id) const {
  OPASS_REQUIRE(id < flows_.size(), "flow id out of range");
  return flows_[id].active;
}

void FlowSimulator::recompute_rates() {
  // Effective capacities for this instant: disks degrade with total
  // concurrency on them (head thrash), NICs (beta = 0) do not.
  std::vector<double> remaining(resources_.size());
  std::vector<std::uint32_t> unfixed_count(resources_.size(), 0);
  for (std::size_t r = 0; r < resources_.size(); ++r) {
    const auto& res = resources_[r];
    const double k = static_cast<double>(res.active);
    remaining[r] = res.active == 0
                       ? res.capacity
                       : res.capacity / (1.0 + res.beta * (k - 1.0));
  }

  std::vector<std::size_t> unfixed;
  unfixed.reserve(flows_active_);
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    if (!flows_[i].active) continue;
    unfixed.push_back(i);
    for (ResourceId r : flows_[i].resources) ++unfixed_count[r];
  }

  // Water-filling with per-flow caps: rates rise together until the first
  // constraint binds. Each round, the binding level is the minimum over
  // (a) each active resource's fair share and (b) each unfixed flow's own
  // rate cap; all flows pinned by the binding constraint freeze at that
  // level and release the rest of their resources' capacity.
  while (!unfixed.empty()) {
    double best_share = kInf;
    bool cap_binds = false;
    ResourceId best_r = 0;
    for (ResourceId r = 0; r < resources_.size(); ++r) {
      if (unfixed_count[r] == 0) continue;
      const double share = remaining[r] / static_cast<double>(unfixed_count[r]);
      if (share < best_share) {
        best_share = share;
        best_r = r;
        cap_binds = false;
      }
    }
    for (std::size_t fi : unfixed) {
      const double cap = flows_[fi].rate_cap;
      if (cap > 0 && cap < best_share) {
        best_share = cap;
        cap_binds = true;
      }
    }
    OPASS_CHECK(best_share < kInf, "max-min allocation found no bottleneck");

    std::vector<std::size_t> still_unfixed;
    still_unfixed.reserve(unfixed.size());
    for (std::size_t fi : unfixed) {
      Flow& f = flows_[fi];
      const bool pinned =
          cap_binds ? (f.rate_cap > 0 && f.rate_cap <= best_share)
                    : std::find(f.resources.begin(), f.resources.end(), best_r) !=
                          f.resources.end();
      if (!pinned) {
        still_unfixed.push_back(fi);
        continue;
      }
      f.rate = best_share;
      for (ResourceId r : f.resources) {
        remaining[r] = std::max(0.0, remaining[r] - best_share);
        --unfixed_count[r];
      }
    }
    OPASS_CHECK(still_unfixed.size() < unfixed.size(), "water-filling made no progress");
    unfixed.swap(still_unfixed);
  }
  rates_dirty_ = false;
}

void FlowSimulator::advance_to(Seconds t) {
  const double dt = t - now_;
  OPASS_CHECK(dt >= -kEps, "time must not move backwards");
  if (dt > 0) {
    for (auto& f : flows_) {
      if (!f.active) continue;
      const double moved = f.rate * dt;
      f.bytes_left -= moved;
      if (f.bytes_left < kByteEps) f.bytes_left = 0;
      for (ResourceId r : f.resources) resources_[r].bytes_served += moved;
    }
    for (auto& res : resources_) {
      if (res.active > 0) res.busy_time += dt;
    }
  }
  now_ = std::max(now_, t);
}

Seconds FlowSimulator::resource_busy_time(ResourceId r) const {
  OPASS_REQUIRE(r < resources_.size(), "resource out of range");
  return resources_[r].busy_time;
}

double FlowSimulator::resource_bytes_served(ResourceId r) const {
  OPASS_REQUIRE(r < resources_.size(), "resource out of range");
  return resources_[r].bytes_served;
}

double FlowSimulator::resource_utilization(ResourceId r) const {
  OPASS_REQUIRE(r < resources_.size(), "resource out of range");
  return now_ > 0 ? resources_[r].busy_time / now_ : 0.0;
}

Seconds FlowSimulator::run() {
  for (;;) {
    if (rates_dirty_) recompute_rates();

    // Earliest flow completion under current rates.
    double next_completion = kInf;
    for (const auto& f : flows_) {
      if (!f.active) continue;
      const double eta = f.rate > 0 ? now_ + f.bytes_left / f.rate : kInf;
      next_completion = std::min(next_completion, eta);
      if (f.bytes_left <= kByteEps) next_completion = now_;  // done already
    }
    const double next_timer = timers_.empty() ? kInf : timers_.top().when;

    const double t = std::min(next_completion, next_timer);
    if (t == kInf) break;  // idle: no flows, no timers
    advance_to(t);

    // Fire all timers due at (or before, FP-wise) the new now.
    while (!timers_.empty() && timers_.top().when <= now_ + kEps) {
      auto fn = timers_.top().fn;
      timers_.pop();
      fn(now_);
    }

    // Complete all finished flows. Completion callbacks commonly start the
    // process's next read, so collect first, then fire.
    std::vector<std::function<void(Seconds)>> callbacks;
    for (auto& f : flows_) {
      if (!f.active || f.bytes_left > kByteEps) continue;
      f.active = false;
      f.bytes_left = 0;
      --flows_active_;
      for (ResourceId r : f.resources) {
        OPASS_CHECK(resources_[r].active > 0, "resource active count underflow");
        --resources_[r].active;
      }
      rates_dirty_ = true;
      if (f.on_complete) callbacks.push_back(std::move(f.on_complete));
    }
    for (auto& cb : callbacks) cb(now_);
  }
  return now_;
}

}  // namespace opass::sim
